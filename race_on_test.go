//go:build race

package hcapp_test

// raceEnabled reports that this binary was built with the race
// detector. Its instrumentation multiplies the cost of the telemetry
// hot paths far past the 5% production budget the overhead contract
// measures, so timing guards skip themselves under -race.
const raceEnabled = true
