// Swcontrol: the §6 future-work direction — intelligent software
// controllers layered on HCAPP through the domain priority registers.
//
// The scenario is the one §6 describes: the package's work is
// imbalanced (here the GPU carries 30 % extra work and the accelerator
// 20 % less), so left alone, the CPU and SHA finish early and the GPU
// grinds out a long tail. A software policy that watches progress once
// per millisecond and de-prioritizes the leaders lets the GPU run
// hotter during the joint phase — the whole package finishes sooner.
//
// The policies see only OS-visible telemetry (progress, power, domain
// voltages) and act only through the architected software interface —
// the power limit stays HCAPP's job.
package main

import (
	"fmt"
	"log"

	"hcapp"
)

func main() {
	ev := hcapp.NewEvaluator()
	ev.WithTargetDur(8 * hcapp.Millisecond)

	combo, err := hcapp.ComboByName("Hi-Low")
	if err != nil {
		log.Fatal(err)
	}
	limit := hcapp.PackagePinLimit()
	skew := map[string]float64{"cpu": 1.0, "gpu": 1.3, "sha": 0.8}

	base, err := ev.RunPolicy(combo, limit, "", skew)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Software policies on HCAPP, %s with imbalanced work, %s limit\n\n", combo.Name, limit.Name)
	fmt.Printf("%-18s %10s %10s %10s %10s %10s\n",
		"policy", "cpu-done", "gpu-done", "sha-done", "makespan", "violates")
	show := func(name string, r hcapp.RunResult) {
		fmt.Printf("%-18s %9dµs %9dµs %9dµs %9dµs %10v\n", name,
			r.Completion["cpu"]/hcapp.Microsecond,
			r.Completion["gpu"]/hcapp.Microsecond,
			r.Completion["sha"]/hcapp.Microsecond,
			r.Duration/hcapp.Microsecond,
			r.Violated)
	}
	show("(none)", base)
	for _, policy := range []string{"static-gpu", "progress-balancer", "critical-path"} {
		r, err := ev.RunPolicy(combo, limit, policy, skew)
		if err != nil {
			log.Fatal(err)
		}
		show(policy, r)
	}

	fmt.Println("\nDe-prioritizing the early finishers shifts their watts to the GPU")
	fmt.Println("during the joint phase, so the package makespan shrinks while the")
	fmt.Println("power limit holds — \"with better intelligence in the software")
	fmt.Println("control, further speedups would be possible\" (paper §5.3/§6).")
}
