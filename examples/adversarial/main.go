// Adversarial: the §3.3.3 thought experiment. A local controller is free
// logic supplied by each component vendor — so what if one lies and
// "always uses all of the available voltage possible, ignoring any local
// metric information"? HCAPP's global controller only ever sees total
// package power, so the limit must hold anyway; the adversary can only
// steal performance from its neighbours.
//
// This example runs Hi-Hi twice — accelerator with its honest
// pass-through controller, then with the adversarial one — and shows
// that the package stays inside the power limit both times.
package main

import (
	"fmt"
	"log"

	"hcapp"
)

func main() {
	cfg := hcapp.DefaultConfig()
	combo, err := hcapp.ComboByName("Hi-Hi")
	if err != nil {
		log.Fatal(err)
	}
	limit := hcapp.PackagePinLimit()
	dur := 6 * hcapp.Millisecond

	sizing, err := hcapp.SizeWork(cfg, combo, 0.95, dur)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Adversarial accelerator local controller on %s (HCAPP, %s)\n\n", combo.Name, limit.Name)
	fmt.Printf("%-14s %12s %10s %8s %16s\n", "accelerator", "max-power/W", "violates", "PPE", "cpu completion")
	for _, adversarial := range []bool{false, true} {
		sys, err := hcapp.Build(cfg, combo, hcapp.BuildOptions{
			Scheme:           hcapp.HCAPPScheme(),
			TargetPower:      hcapp.TargetPowerFor(limit),
			CPUWork:          sizing.CPUWork,
			GPUWork:          sizing.GPUWork,
			AccelWorkGB:      sizing.AccelGB,
			AdversarialAccel: adversarial,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := sys.Engine.Run(3 * dur)
		rec := sys.Engine.Recorder()
		maxP := rec.MaxWindowAvg(limit.Window)
		name := "pass-through"
		if adversarial {
			name = "adversarial"
		}
		fmt.Printf("%-14s %12.1f %10v %7.1f%% %14dµs\n",
			name, maxP, maxP > limit.Watts, 100*rec.PPE(limit.Watts),
			res.Completion["cpu"]/hcapp.Microsecond)
	}

	fmt.Println("\nThe power limit holds either way: the global controller prices in")
	fmt.Println("whatever the adversary draws, and only its neighbours pay (§3.3.3).")
}
