// Custom: build a package that is NOT the paper's target system — two
// CPU chiplets, one GPU, two SHA accelerators — plus a user-defined
// workload loaded from JSON, and put it under HCAPP with a 150 W target.
//
// This is the §1 motivation exercised as an API: "the variety of 2.5D
// designs as different types of accelerators are added or replaced"
// makes centralized controller logic unmaintainable, while HCAPP just
// gains more local controllers. No PID retuning happens below — the
// same Eq. 2 constants drive the bigger package.
package main

import (
	"fmt"
	"log"
	"strings"

	"hcapp"
)

// A user-defined workload: a medium-activity stream kernel described
// entirely in JSON (see hcapp.WorkloadSpec for the schema).
const customWorkloads = `[
  {"name": "streamkernel", "target": "cpu", "class": "Mid", "kind": "wave",
   "correlated": true, "phases": 12, "wave_period_us": 260,
   "ipc": 1.6, "mem_frac": 0.35, "act_lo": 0.4, "act_hi": 0.75,
   "stall_act": 0.1}
]`

func main() {
	custom, err := hcapp.LoadBenchmarks(strings.NewReader(customWorkloads))
	if err != nil {
		log.Fatal(err)
	}
	swaptions, err := hcapp.BenchmarkByName("swaptions")
	if err != nil {
		log.Fatal(err)
	}
	backprop, err := hcapp.BenchmarkByName("backprop")
	if err != nil {
		log.Fatal(err)
	}

	cfg := hcapp.DefaultConfig()
	topo := hcapp.Topology{Chiplets: []hcapp.ChipletSpec{
		{Kind: "cpu", Name: "cpu0", Benchmark: swaptions},
		{Kind: "cpu", Name: "cpu1", Benchmark: custom[0], Seed: 7},
		{Kind: "gpu", Benchmark: backprop},
		{Kind: "sha", Name: "sha0"},
		{Kind: "sha", Name: "sha1", WorkScale: 1.5},
		{Kind: "mem", Watts: 16},
	}}

	const target = 150.0 // watts: a bigger package, a bigger budget
	eng, err := hcapp.BuildTopology(cfg, topo, hcapp.TopologyOptions{
		Scheme:      hcapp.HCAPPScheme(),
		TargetPower: target,
		SizingDur:   6 * hcapp.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	res := eng.Run(30 * hcapp.Millisecond)
	rec := eng.Recorder()

	fmt.Printf("Custom package: 2×CPU + GPU + 2×SHA + mem under HCAPP @ %.0f W\n\n", target)
	fmt.Printf("%-8s %12s\n", "chiplet", "completed")
	for _, name := range []string{"cpu0", "cpu1", "gpu", "sha0", "sha1"} {
		if t, ok := res.Completion[name]; ok {
			fmt.Printf("%-8s %11dµs\n", name, t/hcapp.Microsecond)
		} else {
			fmt.Printf("%-8s %12s\n", name, "-")
		}
	}
	fmt.Printf("\navg power %.1f W (%.1f%% of target), max 20µs window %.1f W\n",
		rec.AvgPower(), 100*rec.AvgPower()/target, rec.MaxWindowAvg(20*hcapp.Microsecond))
	fmt.Println("\nSame controller constants as the paper's 3-chiplet system: adding")
	fmt.Println("chiplets adds local controllers, nothing global changes (§1, §3).")
}
