// Quickstart: run one Table 3 workload combination under all four power
// control schemes at the package-pin limit (100 W / 20 µs) and compare
// maximum window power, provisioned power efficiency and speedup — a
// miniature of the paper's §5.1 evaluation.
package main

import (
	"fmt"
	"log"

	"hcapp"
)

func main() {
	ev := hcapp.NewEvaluator()
	// Short runs for a snappy demo; the full evaluation uses the
	// default 16 ms target duration.
	ev.WithTargetDur(6 * hcapp.Millisecond)

	combo, err := hcapp.ComboByName("Const-Burst")
	if err != nil {
		log.Fatal(err)
	}
	limit := hcapp.PackagePinLimit()

	schemes := []hcapp.Scheme{
		ev.FixedScheme(),
		hcapp.HCAPPScheme(),
		hcapp.RAPLLikeScheme(),
		hcapp.SWLikeScheme(),
	}

	base, err := ev.Run(hcapp.RunSpec{Combo: combo, Scheme: ev.FixedScheme(), Limit: limit})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Workload %s under the %s limit (%.0f W / %s window)\n\n",
		combo.Name, limit.Name, limit.Watts, fmtWindow(limit))
	fmt.Printf("%-18s %12s %10s %8s %9s %9s\n",
		"scheme", "max-power/W", "violates", "PPE", "speedup", "avg/W")
	for _, s := range schemes {
		res, err := ev.Run(hcapp.RunSpec{Combo: combo, Scheme: s, Limit: limit})
		if err != nil {
			log.Fatal(err)
		}
		_, speedup := res.SpeedupOver(base)
		fmt.Printf("%-18s %12.1f %10v %7.1f%% %9.3f %9.1f\n",
			s.String(), res.MaxWindowPower, res.Violated, 100*res.PPE, speedup, res.AvgPower)
	}

	fmt.Println("\nA scheme whose max power exceeds the limit is invalid for this")
	fmt.Println("window: only a fast decentralized controller tracks 20 µs bursts.")
}

func fmtWindow(l hcapp.PowerLimit) string {
	return fmt.Sprintf("%dµs", l.Window/hcapp.Microsecond)
}
