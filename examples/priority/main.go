// Priority: the §5.3 software interface. The domain controllers expose a
// priority register the OS can write; de-prioritizing a domain scales
// its share of the global voltage. This example prioritizes each
// component in turn on one workload and reports the prioritized
// component's speedup over the unprioritized HCAPP run — a single
// column of the paper's Figure 10.
package main

import (
	"fmt"
	"log"

	"hcapp"
)

func main() {
	ev := hcapp.NewEvaluator()
	ev.WithTargetDur(6 * hcapp.Millisecond)

	combo, err := hcapp.ComboByName("Mid-Mid")
	if err != nil {
		log.Fatal(err)
	}
	limit := hcapp.PackagePinLimit()
	scheme := hcapp.HCAPPScheme()

	base, err := ev.Run(hcapp.RunSpec{Combo: combo, Scheme: scheme, Limit: limit})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Static software priority on %s (HCAPP, %s limit)\n\n", combo.Name, limit.Name)
	fmt.Printf("%-12s %22s %14s %10s\n", "prioritized", "component completion", "vs base", "pkg PPE")
	for _, comp := range []string{"cpu", "gpu", "sha"} {
		res, err := ev.Run(hcapp.RunSpec{
			Combo:      combo,
			Scheme:     scheme,
			Limit:      limit,
			Priorities: hcapp.PriorityFor(comp),
		})
		if err != nil {
			log.Fatal(err)
		}
		per, _ := res.SpeedupOver(base)
		fmt.Printf("%-12s %19dµs %13.1f%% %9.1f%%\n",
			comp,
			res.Completion[comp]/hcapp.Microsecond,
			100*(per[comp]-1),
			100*res.PPE)
	}

	fmt.Println("\nPrioritization shifts voltage between domains without changing")
	fmt.Println("the package power limit: max power and PPE stay in family while")
	fmt.Println("the chosen component finishes earlier (paper Fig. 10).")
}
