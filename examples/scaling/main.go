// Scaling: the paper's third motivating problem (§1) — centralized
// controllers stop working as chiplet counts grow, because aggregating
// per-node metrics takes longer the more nodes there are, while HCAPP's
// control period is pinned by power-delivery physics (Table 1).
//
// This example sweeps the package from 1 to 8 compute-chiplet triples
// (each triple: 8-core CPU + 15-SM GPU + SHA accelerator) and compares
// HCAPP against a centralized controller whose period grows with the
// node count.
package main

import (
	"fmt"
	"log"

	"hcapp"
)

func main() {
	sc := hcapp.DefaultScalingConfig()
	sc.ChipletCounts = []int{1, 2, 4, 8}
	sc.Dur = 2 * hcapp.Millisecond // short demo runs

	res, err := hcapp.RunScaling(hcapp.DefaultConfig(), sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())

	fmt.Println()
	fmt.Println("HCAPP's column is flat: adding chiplets adds local controllers,")
	fmt.Println("not global communication. The centralized column degrades as its")
	fmt.Println("control period stretches past the workload's burst widths.")
	fmt.Println()
	fmt.Print(hcapp.Table1())
}
