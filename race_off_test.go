//go:build !race

package hcapp_test

const raceEnabled = false
