package hcapp_test

import (
	"testing"

	"hcapp"
)

// TestHeadlineClaims is the end-to-end reproduction check: on a reduced
// horizon it verifies the paper's qualitative results hold through the
// public API alone. The full-length numbers live in EXPERIMENTS.md and
// regenerate via the benchmarks / cmd/hcappsim.
func TestHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite in -short mode")
	}
	ev := hcapp.NewEvaluator().WithTargetDur(4 * hcapp.Millisecond)
	fast := hcapp.PackagePinLimit()
	slow := hcapp.OffPackageVRLimit()

	type agg struct{ maxOver, ppe, speedup float64 }
	eval := func(scheme hcapp.Scheme, limit hcapp.PowerLimit) agg {
		t.Helper()
		var a agg
		n := 0.0
		for _, combo := range hcapp.Suite() {
			base, err := ev.Run(hcapp.RunSpec{Combo: combo, Scheme: ev.FixedScheme(), Limit: limit})
			if err != nil {
				t.Fatal(err)
			}
			r, err := ev.Run(hcapp.RunSpec{Combo: combo, Scheme: scheme, Limit: limit})
			if err != nil {
				t.Fatal(err)
			}
			if r.MaxOverLimit > a.maxOver {
				a.maxOver = r.MaxOverLimit
			}
			_, sp := r.SpeedupOver(base)
			a.ppe += r.PPE
			a.speedup += sp
			n++
		}
		a.ppe /= n
		a.speedup /= n
		return a
	}

	fixedFast := eval(ev.FixedScheme(), fast)
	hcappFast := eval(hcapp.HCAPPScheme(), fast)
	raplFast := eval(hcapp.RAPLLikeScheme(), fast)

	// §5.1: under the package-pin limit, fixed voltage and HCAPP stay
	// below the limit while RAPL-like fails it.
	if fixedFast.maxOver > 1.0 {
		t.Errorf("fixed voltage violated fast limit: %.3f", fixedFast.maxOver)
	}
	if hcappFast.maxOver > 1.0 {
		t.Errorf("HCAPP violated fast limit: %.3f", hcappFast.maxOver)
	}
	if raplFast.maxOver <= 1.0 {
		t.Errorf("RAPL-like did not violate fast limit: %.3f", raplFast.maxOver)
	}

	// HCAPP improves both PPE and performance over the static baseline.
	if hcappFast.ppe <= fixedFast.ppe {
		t.Errorf("HCAPP PPE %.3f not above fixed %.3f", hcappFast.ppe, fixedFast.ppe)
	}
	if hcappFast.speedup <= 1.0 {
		t.Errorf("HCAPP fast-limit speedup %.3f, want > 1", hcappFast.speedup)
	}

	// §5.2: under the slow limit HCAPP stays legal and beats the
	// baseline by a wide margin.
	hcappSlow := eval(hcapp.HCAPPScheme(), slow)
	if hcappSlow.maxOver > 1.0 {
		t.Errorf("HCAPP violated slow limit: %.3f", hcappSlow.maxOver)
	}
	if hcappSlow.ppe <= fixedFast.ppe {
		t.Errorf("HCAPP slow-limit PPE %.3f not above fixed %.3f", hcappSlow.ppe, fixedFast.ppe)
	}
	if hcappSlow.speedup <= hcappFast.speedup {
		t.Errorf("slow-limit speedup %.3f should exceed fast-limit %.3f (smaller guardband)",
			hcappSlow.speedup, hcappFast.speedup)
	}
}

// TestSoftwarePriorityInterface verifies §5.3 end-to-end: prioritizing a
// component speeds it up without breaking the power limit.
func TestSoftwarePriorityInterface(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite in -short mode")
	}
	ev := hcapp.NewEvaluator().WithTargetDur(3 * hcapp.Millisecond)
	combo, err := hcapp.ComboByName("Mid-Mid")
	if err != nil {
		t.Fatal(err)
	}
	limit := hcapp.PackagePinLimit()
	base, err := ev.Run(hcapp.RunSpec{Combo: combo, Scheme: hcapp.HCAPPScheme(), Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []string{"cpu", "gpu", "sha"} {
		r, err := ev.Run(hcapp.RunSpec{
			Combo: combo, Scheme: hcapp.HCAPPScheme(), Limit: limit,
			Priorities: hcapp.PriorityFor(comp),
		})
		if err != nil {
			t.Fatal(err)
		}
		per, _ := r.SpeedupOver(base)
		if per[comp] <= 1.0 {
			t.Errorf("prioritized %s speedup = %.3f, want > 1", comp, per[comp])
		}
		if r.Violated {
			t.Errorf("priority run for %s violated the limit", comp)
		}
	}
}

// TestShapeChecks runs the shared shape-check suite at a reduced
// horizon (SW-like checks self-skip below its 10 ms period; the full
// set runs via cmd/hcapp-report and the benchmarks).
func TestShapeChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite in -short mode")
	}
	ev := hcapp.NewEvaluator().WithTargetDur(4 * hcapp.Millisecond)
	checks, err := ev.ShapeChecks()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 10 {
		t.Fatalf("only %d checks ran", len(checks))
	}
	for _, c := range hcapp.Failed(checks) {
		t.Errorf("shape check failed: %s (%s)", c.Name, c.Detail)
	}
}
