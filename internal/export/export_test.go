package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/experiment"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
)

func sampleMatrix() *experiment.Matrix {
	m := experiment.NewMatrix("Fig X", "ppe", []string{"HCAPP", "Fixed"}, []string{"Hi-Hi", "Low-Low"})
	m.Set("HCAPP", "Hi-Hi", 0.95)
	m.Set("HCAPP", "Low-Low", 0.93)
	m.Set("Fixed", "Hi-Hi", 0.84)
	return m
}

func TestWriteSeriesCSV(t *testing.T) {
	a := []trace.Point{{T: sim.Microsecond, P: 1}, {T: 2 * sim.Microsecond, P: 2}}
	b := []trace.Point{{T: sim.Microsecond, P: 3}, {T: 2 * sim.Microsecond, P: 4}, {T: 3 * sim.Microsecond, P: 5}}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, []string{"a", "b"}, a, b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + min(len) rows
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "time_us" || rows[0][1] != "a" || rows[0][2] != "b" {
		t.Fatalf("header %v", rows[0])
	}
	if rows[1][0] != "1.00" {
		t.Fatalf("time column %q", rows[1][0])
	}
}

func TestWriteSeriesCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, []string{"a"}, nil, nil); err == nil {
		t.Fatal("mismatched names accepted")
	}
	if err := WriteSeriesCSV(&buf, nil); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestWriteMatrixCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMatrixCSV(&buf, sampleMatrix()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][0] != "HCAPP" || rows[2][0] != "Fixed" {
		t.Fatalf("series column broken: %v", rows)
	}
	// Unset cell renders empty.
	if rows[2][2] != "" {
		t.Fatalf("unset cell = %q", rows[2][2])
	}
	if err := WriteMatrixCSV(&buf, nil); err == nil {
		t.Fatal("nil matrix accepted")
	}
}

func TestWriteMatrixJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMatrixJSON(&buf, sampleMatrix()); err != nil {
		t.Fatal(err)
	}
	var out MatrixJSON
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Title != "Fig X" || out.Series["HCAPP"]["Hi-Hi"] != 0.95 {
		t.Fatalf("round trip broken: %+v", out)
	}
	if out.Avg["HCAPP"] != 0.94 {
		t.Fatalf("average = %g", out.Avg["HCAPP"])
	}
}

func TestRunResultJSON(t *testing.T) {
	combo, err := experiment.ComboByName("Hi-Hi")
	if err != nil {
		t.Fatal(err)
	}
	r := experiment.RunResult{
		Spec: experiment.RunSpec{
			Combo:  combo,
			Scheme: config.Scheme{Kind: config.HCAPP},
			Limit:  config.PackagePinLimit(),
		},
		MaxWindowPower: 86,
		MaxOverLimit:   0.86,
		AvgPower:       80,
		PPE:            0.80,
		Duration:       12 * sim.Millisecond,
		Completed:      true,
		Completion:     map[string]sim.Time{"cpu": 11 * sim.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteRunResultJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var out RunResultJSON
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Combo != "Hi-Hi" || out.Scheme != "hcapp" || out.PPE != 0.80 {
		t.Fatalf("round trip: %+v", out)
	}
	if out.CompletionUS["cpu"] != 11000 {
		t.Fatalf("completion conversion: %g", out.CompletionUS["cpu"])
	}
	if out.DurationUS != 12000 {
		t.Fatalf("duration conversion: %g", out.DurationUS)
	}
}

func TestMatrixMarkdown(t *testing.T) {
	md := MatrixMarkdown(sampleMatrix())
	for _, want := range []string{"| Fig X (ppe) |", "| HCAPP |", "0.950", "| – |", "Ave."} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("markdown lines = %d", len(lines))
	}
	if MatrixMarkdown(nil) != "" {
		t.Fatal("nil matrix should render empty")
	}
}
