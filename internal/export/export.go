// Package export serializes experiment outputs — power traces, figure
// matrices, run results — as CSV and JSON for external plotting and for
// the report generator (cmd/hcapp-report).
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"hcapp/internal/experiment"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
)

// WriteSeriesCSV writes one or more aligned power series as CSV with a
// time_us column. Series are truncated to the shortest; names labels the
// value columns.
func WriteSeriesCSV(w io.Writer, names []string, series ...[]trace.Point) error {
	if len(names) != len(series) {
		return fmt.Errorf("export: %d names for %d series", len(names), len(series))
	}
	if len(series) == 0 {
		return fmt.Errorf("export: no series")
	}
	n := len(series[0])
	for _, s := range series[1:] {
		if len(s) < n {
			n = len(s)
		}
	}
	cw := csv.NewWriter(w)
	header := append([]string{"time_us"}, names...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < n; i++ {
		row[0] = strconv.FormatFloat(float64(series[0][i].T)/float64(sim.Microsecond), 'f', 2, 64)
		for j, s := range series {
			row[j+1] = strconv.FormatFloat(s[i].P, 'f', 6, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMatrixCSV writes a figure matrix as CSV: one row per series, one
// column per combo, plus the average.
func WriteMatrixCSV(w io.Writer, m *experiment.Matrix) error {
	if m == nil {
		return fmt.Errorf("export: nil matrix")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(append(append([]string{"series"}, m.Cols...), "average")); err != nil {
		return err
	}
	for _, r := range m.Rows {
		row := []string{r}
		for _, c := range m.Cols {
			if v, ok := m.Get(r, c); ok {
				row = append(row, strconv.FormatFloat(v, 'f', 6, 64))
			} else {
				row = append(row, "")
			}
		}
		row = append(row, strconv.FormatFloat(m.RowAvg(r), 'f', 6, 64))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// MatrixJSON is the JSON shape of a figure matrix.
type MatrixJSON struct {
	Title  string                        `json:"title"`
	Unit   string                        `json:"unit"`
	Combos []string                      `json:"combos"`
	Series map[string]map[string]float64 `json:"series"`
	Avg    map[string]float64            `json:"average"`
}

// WriteMatrixJSON writes a figure matrix as indented JSON.
func WriteMatrixJSON(w io.Writer, m *experiment.Matrix) error {
	if m == nil {
		return fmt.Errorf("export: nil matrix")
	}
	out := MatrixJSON{
		Title:  m.Title,
		Unit:   m.Unit,
		Combos: m.Cols,
		Series: make(map[string]map[string]float64, len(m.Rows)),
		Avg:    make(map[string]float64, len(m.Rows)),
	}
	for _, r := range m.Rows {
		vals := make(map[string]float64, len(m.Cols))
		for _, c := range m.Cols {
			if v, ok := m.Get(r, c); ok {
				vals[c] = v
			}
		}
		out.Series[r] = vals
		out.Avg[r] = m.RowAvg(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// RunResultJSON is the JSON shape of a single run.
type RunResultJSON struct {
	Combo          string             `json:"combo"`
	Scheme         string             `json:"scheme"`
	Limit          string             `json:"limit"`
	MaxWindowPower float64            `json:"max_window_power_w"`
	MaxOverLimit   float64            `json:"max_over_limit"`
	Violated       bool               `json:"violated"`
	AvgPower       float64            `json:"avg_power_w"`
	PPE            float64            `json:"ppe"`
	DurationUS     float64            `json:"duration_us"`
	Completed      bool               `json:"completed"`
	CompletionUS   map[string]float64 `json:"completion_us"`
}

// ToRunResultJSON converts a run result.
func ToRunResultJSON(r experiment.RunResult) RunResultJSON {
	out := RunResultJSON{
		Combo:          r.Spec.Combo.Name,
		Scheme:         string(r.Spec.Scheme.Kind),
		Limit:          r.Spec.Limit.Name,
		MaxWindowPower: r.MaxWindowPower,
		MaxOverLimit:   r.MaxOverLimit,
		Violated:       r.Violated,
		AvgPower:       r.AvgPower,
		PPE:            r.PPE,
		DurationUS:     float64(r.Duration) / float64(sim.Microsecond),
		Completed:      r.Completed,
		CompletionUS:   make(map[string]float64, len(r.Completion)),
	}
	for name, t := range r.Completion {
		out.CompletionUS[name] = float64(t) / float64(sim.Microsecond)
	}
	return out
}

// WriteRunResultJSON writes one run result as indented JSON.
func WriteRunResultJSON(w io.Writer, r experiment.RunResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToRunResultJSON(r))
}

// MatrixMarkdown renders a figure matrix as a GitHub-flavored markdown
// table for the report generator.
func MatrixMarkdown(m *experiment.Matrix) string {
	if m == nil {
		return ""
	}
	out := "| " + m.Title
	if m.Unit != "" {
		out += " (" + m.Unit + ")"
	}
	out += " |"
	for _, c := range m.Cols {
		out += " " + c + " |"
	}
	out += " Ave. |\n|"
	for i := 0; i < len(m.Cols)+2; i++ {
		out += "---|"
	}
	out += "\n"
	for _, r := range m.Rows {
		out += "| " + r + " |"
		for _, c := range m.Cols {
			if v, ok := m.Get(r, c); ok {
				out += " " + markdownCell(v) + " |"
			} else {
				out += " – |"
			}
		}
		out += " " + markdownCell(m.RowAvg(r)) + " |\n"
	}
	return out
}

// markdownCell renders one matrix value for the markdown table; NaN (a
// scheme that failed to complete every component) prints as "fail".
func markdownCell(v float64) string {
	if math.IsNaN(v) {
		return "fail"
	}
	return fmt.Sprintf("%.3f", v)
}
