package core

import (
	"math"
	"testing"

	"hcapp/internal/pid"
	"hcapp/internal/sim"
	"hcapp/internal/vr"
)

func globalCfg() GlobalConfig {
	return GlobalConfig{
		Period:      1 * sim.Microsecond,
		TargetPower: 86,
		PID: pid.Config{
			KP: 0.006, KI: 2500, FeedForward: 0.95,
			OutMin: 0.6, OutMax: 1.2, OverGain: 6,
		},
	}
}

func testReg() *vr.Regulator {
	return vr.MustRegulator(vr.RegulatorConfig{
		VMin: 0.6, VMax: 1.2, VInit: 0.95, TransitionTime: 0, SlewRate: 0,
	})
}

func TestGlobalConfigValidate(t *testing.T) {
	if err := globalCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	c := globalCfg()
	c.Period = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero period accepted")
	}
	c = globalCfg()
	c.TargetPower = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero target accepted")
	}
	c = globalCfg()
	c.PID.OutMin, c.PID.OutMax = 1, 1
	if err := c.Validate(); err == nil {
		t.Fatal("bad PID accepted")
	}
}

func TestVErr(t *testing.T) {
	// Eq. 1: VErr = cbrt(PSPEC − PNOW), signed.
	if got := VErr(100, 73); math.Abs(got-3) > 1e-12 {
		t.Fatalf("VErr(100,73) = %g, want 3", got)
	}
	if got := VErr(73, 100); math.Abs(got+3) > 1e-12 {
		t.Fatalf("VErr(73,100) = %g, want -3", got)
	}
	if got := VErr(80, 80); got != 0 {
		t.Fatalf("VErr at target = %g", got)
	}
}

func TestGlobalFiresOncePerPeriod(t *testing.T) {
	g := MustGlobal(globalCfg())
	reg := testReg()
	fired := 0
	// 30 steps of 100 ns = 3 µs → 3 firings (at 1, 2, 3 µs; the first
	// waits for a full window).
	for i := 1; i <= 30; i++ {
		if g.Step(sim.Time(i)*100, 50, reg) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times in 3 µs, want 3", fired)
	}
	if g.Cycles() != 3 {
		t.Fatalf("Cycles() = %d", g.Cycles())
	}
}

func TestGlobalRaisesVoltageWhenUnderTarget(t *testing.T) {
	g := MustGlobal(globalCfg())
	reg := testReg()
	for i := 1; i <= 50; i++ {
		g.Step(sim.Time(i)*100, 40, reg) // far below 86 W target
	}
	if g.LastCommand() <= 0.95 {
		t.Fatalf("command %g did not rise above feed-forward", g.LastCommand())
	}
}

func TestGlobalCutsVoltageWhenOverTarget(t *testing.T) {
	g := MustGlobal(globalCfg())
	reg := testReg()
	for i := 1; i <= 50; i++ {
		g.Step(sim.Time(i)*100, 150, reg)
	}
	if g.LastCommand() >= 0.95 {
		t.Fatalf("command %g did not fall below feed-forward", g.LastCommand())
	}
}

func TestGlobalWindowAveraging(t *testing.T) {
	// The controller reads the mean over its window, not the last
	// sample: a single-step spike in a 10-step window contributes 1/10.
	g := MustGlobal(globalCfg())
	reg := testReg()
	for i := 1; i <= 9; i++ {
		g.Step(sim.Time(i)*100, 86, reg)
	}
	g.Step(1000, 186, reg) // spike on the firing step
	want := (86*9 + 186) / 10.0
	if got := g.LastWindowPower(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("window power = %g, want %g", got, want)
	}
}

func TestGlobalAsymmetricResponse(t *testing.T) {
	// With OverGain > 1, a +X W error must move the voltage less than a
	// −X W error moves it down (throttle fast, recover slow).
	mk := func() (*Global, *vr.Regulator) { return MustGlobal(globalCfg()), testReg() }

	gUp, regUp := mk()
	for i := 1; i <= 10; i++ {
		gUp.Step(sim.Time(i)*100, 56, regUp) // 30 W under target
	}
	up := gUp.LastCommand() - 0.95

	gDn, regDn := mk()
	for i := 1; i <= 10; i++ {
		gDn.Step(sim.Time(i)*100, 116, regDn) // 30 W over target
	}
	down := 0.95 - gDn.LastCommand()

	if down <= up {
		t.Fatalf("throttle (%g) not faster than recovery (%g)", down, up)
	}
}

func TestGlobalSetTargetPower(t *testing.T) {
	g := MustGlobal(globalCfg())
	g.SetTargetPower(96)
	if g.Config().TargetPower != 96 {
		t.Fatalf("target = %g", g.Config().TargetPower)
	}
	g.SetTargetPower(-5) // ignored
	if g.Config().TargetPower != 96 {
		t.Fatal("negative target accepted")
	}
}

func TestGlobalReset(t *testing.T) {
	g := MustGlobal(globalCfg())
	reg := testReg()
	for i := 1; i <= 100; i++ {
		g.Step(sim.Time(i)*100, 40, reg)
	}
	g.Reset()
	if g.Cycles() != 0 || g.LastCommand() != 0.95 || g.LastWindowPower() != 0 {
		t.Fatal("reset incomplete")
	}
	// Post-reset behaviour matches a fresh controller.
	fresh := MustGlobal(globalCfg())
	regA, regB := testReg(), testReg()
	for i := 1; i <= 20; i++ {
		g.Step(sim.Time(i)*100, 60, regA)
		fresh.Step(sim.Time(i)*100, 60, regB)
	}
	if g.LastCommand() != fresh.LastCommand() {
		t.Fatalf("post-reset diverged: %g vs %g", g.LastCommand(), fresh.LastCommand())
	}
}

func TestGlobalFirstActionWaitsFullWindow(t *testing.T) {
	g := MustGlobal(globalCfg())
	reg := testReg()
	// Before one full period has elapsed, no command may fire.
	for i := 1; i < 10; i++ {
		if g.Step(sim.Time(i)*100, 0, reg) {
			t.Fatalf("fired at %d ns, before the first full window", i*100)
		}
	}
	if !g.Step(1000, 0, reg) {
		t.Fatal("did not fire at the first full window")
	}
}

func TestGlobalClosedLoopHoldsTarget(t *testing.T) {
	// Close the loop against a simple cubic plant P = k·V³ and verify
	// the controller settles near the target.
	g := MustGlobal(globalCfg())
	reg := testReg()
	k := 86 / math.Pow(0.98, 3) // target reachable just above feed-forward
	v := reg.Output()
	var p float64
	for i := 1; i <= 20000; i++ {
		now := sim.Time(i) * 100
		v = reg.Step(now, 100)
		p = k * v * v * v
		g.Step(now, p, reg)
	}
	if math.Abs(p-86) > 3 {
		t.Fatalf("closed loop settled at %.2f W, want 86±3", p)
	}
}
