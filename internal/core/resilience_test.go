package core

import (
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/pid"
	"hcapp/internal/sim"
	"hcapp/internal/vr"
)

const resDT = 100 * sim.Nanosecond

func watchdogDomain(t *testing.T, wd WatchdogConfig) *Domain {
	t.Helper()
	d := MustDomain("dom", config.DomainConfig{
		Scale: 1.0, VMin: 0.6, VMax: 1.2,
		VR: vr.RegulatorConfig{
			VMin: 0.6, VMax: 1.2, VInit: 0.95,
			TransitionTime: 130 * sim.Nanosecond, SlewRate: 5e6,
		},
	})
	d.EnableWatchdog(wd)
	return d
}

func TestWatchdogTripsOnSilence(t *testing.T) {
	timeout := 5 * sim.Microsecond
	d := watchdogDomain(t, WatchdogConfig{Timeout: timeout})
	now := sim.Time(0)
	// Healthy steps at 1.1 V: the regulator follows, watchdog stays fed.
	for i := 0; i < 100; i++ {
		now += resDT
		d.Step(now, resDT, 1.1)
	}
	if d.WatchdogTripped() {
		t.Fatal("watchdog tripped during healthy stepping")
	}
	// Hang the controller: the trip must land once silence reaches the
	// timeout, and the regulator must settle at the fail-safe floor
	// (VMin, the default).
	steps := int(timeout/resDT) + 50
	for i := 0; i < steps; i++ {
		now += resDT
		d.StepSilent(now, resDT)
	}
	if !d.WatchdogTripped() || d.WatchdogTrips() != 1 {
		t.Fatalf("tripped=%v trips=%d after %d silent", d.WatchdogTripped(), d.WatchdogTrips(), timeout)
	}
	if got := d.Output(); got != 0.6 {
		t.Fatalf("domain at %g after trip, want fail-safe 0.6", got)
	}
}

func TestWatchdogNotStarvedByShortSilences(t *testing.T) {
	d := watchdogDomain(t, WatchdogConfig{Timeout: 2 * sim.Microsecond})
	now := sim.Time(0)
	for i := 0; i < 1000; i++ {
		now += resDT
		if i%10 == 9 {
			d.Step(now, resDT, 1.0) // one pet every 9 silent steps < timeout
		} else {
			d.StepSilent(now, resDT)
		}
	}
	if d.WatchdogTrips() != 0 {
		t.Fatalf("watchdog tripped %d times despite sub-timeout silences", d.WatchdogTrips())
	}
}

// TestWatchdogRecoveryBound enforces the recovery bound documented in
// docs/FAULTS.md: after the controller resumes, the domain returns to
// its commanded target within TransitionTime + |target − FailSafeV| /
// SlewRate.
func TestWatchdogRecoveryBound(t *testing.T) {
	d := watchdogDomain(t, WatchdogConfig{Timeout: 2 * sim.Microsecond})
	vrCfg := d.Config().VR
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		now += resDT
		d.Step(now, resDT, 1.1)
	}
	for i := 0; i < 100; i++ { // well past the 20-step timeout
		now += resDT
		d.StepSilent(now, resDT)
	}
	if !d.WatchdogTripped() {
		t.Fatal("setup: watchdog did not trip")
	}
	// Controller resumes, targeting 1.1 V.
	target := 1.1
	bound := vrCfg.TransitionTime +
		sim.Time(((target-d.wd.FailSafeV)/vrCfg.SlewRate)*1e9) +
		2*resDT // discretization slack: one step to re-command, one to settle
	resumed := now
	for d.Output() != target {
		now += resDT
		d.Step(now, resDT, target)
		if now-resumed > bound {
			t.Fatalf("domain at %g, not recovered within bound %v", d.Output(), bound)
		}
	}
	if d.WatchdogTripped() {
		t.Fatal("trip flag survived recovery")
	}
}

func globalWithHoldover(t *testing.T, maxAge sim.Time) (*Global, *vr.Regulator) {
	t.Helper()
	g := MustGlobal(GlobalConfig{
		Period:      sim.Microsecond,
		TargetPower: 86,
		PID: pid.Config{
			KP: 0.006, KI: 2500, FeedForward: 0.95,
			OutMin: 0.6, OutMax: 1.2, OverGain: 12,
		},
		Holdover: HoldoverConfig{MaxAge: maxAge},
	})
	reg := vr.MustRegulator(vr.RegulatorConfig{
		VMin: 0.6, VMax: 1.2, VInit: 0.95,
		TransitionTime: 150 * sim.Nanosecond, SlewRate: 5e6,
	})
	return g, reg
}

// driveGlobal advances the controller by whole control cycles, feeding
// the same sensed power and sample age every step.
func driveGlobal(g *Global, reg *vr.Regulator, start sim.Time, cycles int, sensed float64, age sim.Time) sim.Time {
	now := start
	period := g.Config().Period
	for fired := 0; fired < cycles; {
		now += resDT
		if g.StepSensed(now, sensed, age, reg) {
			fired++
		}
		_ = period
	}
	return now
}

func TestHoldoverHoldsLastCommand(t *testing.T) {
	g, reg := globalWithHoldover(t, 20*sim.Microsecond)
	// Fresh cycles establish a live command.
	now := driveGlobal(g, reg, 0, 5, 50, 0)
	held := g.LastCommand()
	// Stale-but-in-bound cycles: command frozen, holdover counted, and
	// the PID must not integrate (the command cannot drift).
	now = driveGlobal(g, reg, now, 10, 50, 5*sim.Microsecond)
	if g.LastCommand() != held {
		t.Fatalf("held command drifted %g -> %g", held, g.LastCommand())
	}
	if g.HoldoverCycles() != 10 {
		t.Fatalf("holdover cycles %d, want 10", g.HoldoverCycles())
	}
	if g.FailsafeCycles() != 0 {
		t.Fatalf("failsafe engaged with in-bound age")
	}
	_ = now
}

func TestHoldoverFailSafePastAgeBound(t *testing.T) {
	g, reg := globalWithHoldover(t, 20*sim.Microsecond)
	now := driveGlobal(g, reg, 0, 5, 50, 0)
	now = driveGlobal(g, reg, now, 3, 50, 30*sim.Microsecond) // past bound
	if g.FailsafeCycles() != 3 {
		t.Fatalf("failsafe cycles %d, want 3", g.FailsafeCycles())
	}
	if g.LastCommand() != 0.6 {
		t.Fatalf("fail-safe commanded %g, want PID OutMin 0.6", g.LastCommand())
	}
	// Fresh samples return: the controller resumes PID control from a
	// clean state instead of integrating across the outage.
	driveGlobal(g, reg, now, 5, 50, 0)
	if g.LastCommand() == 0.6 {
		t.Fatal("controller still at fail-safe after fresh samples returned")
	}
}

func TestHoldoverDisarmedIgnoresAge(t *testing.T) {
	g, reg := globalWithHoldover(t, 0) // MaxAge 0: legacy behaviour
	driveGlobal(g, reg, 0, 5, 50, 90*sim.Microsecond)
	if g.HoldoverCycles() != 0 || g.FailsafeCycles() != 0 {
		t.Fatalf("disarmed holdover counted (%d, %d)", g.HoldoverCycles(), g.FailsafeCycles())
	}
}

func TestHoldoverConfigValidate(t *testing.T) {
	cfg := GlobalConfig{
		Period: sim.Microsecond, TargetPower: 86,
		PID:      pid.Config{KP: 0.006, KI: 2500, FeedForward: 0.95, OutMin: 0.6, OutMax: 1.2},
		Holdover: HoldoverConfig{MaxAge: -1},
	}
	if _, err := NewGlobal(cfg); err == nil {
		t.Fatal("negative holdover age accepted")
	}
}
