package core

import (
	"math"
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/sim"
	"hcapp/internal/vr"
)

func domCfg() config.DomainConfig {
	return config.DomainConfig{
		Scale: 0.75, VMin: 0.45, VMax: 0.90,
		VR: vr.RegulatorConfig{VMin: 0.45, VMax: 0.90, VInit: 0.7125, TransitionTime: 0, SlewRate: 0},
	}
}

func TestNewDomainErrors(t *testing.T) {
	c := domCfg()
	c.Scale = 0
	if _, err := NewDomain("x", c); err == nil {
		t.Fatal("zero scale accepted")
	}
	c = domCfg()
	c.VMin, c.VMax = 1, 0.5
	if _, err := NewDomain("x", c); err == nil {
		t.Fatal("inverted range accepted")
	}
	c = domCfg()
	c.VR.VInit = 99
	if _, err := NewDomain("x", c); err == nil {
		t.Fatal("bad regulator accepted")
	}
}

func TestDomainScaling(t *testing.T) {
	// Paper §4.3: "the domain controller scales the global voltage by
	// 75% to match the approximate voltage range of the GPU".
	d := MustDomain("gpu", domCfg())
	got := d.Step(100, 100, 1.0)
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("domain voltage = %g, want 0.75", got)
	}
	if d.Output() != got {
		t.Fatal("Output() disagrees with Step result")
	}
}

func TestDomainClamping(t *testing.T) {
	d := MustDomain("gpu", domCfg())
	if got := d.Step(100, 100, 2.0); got != 0.90 {
		t.Fatalf("over-range domain voltage = %g, want VMax", got)
	}
	if got := d.Step(200, 100, 0.1); got != 0.45 {
		t.Fatalf("under-range domain voltage = %g, want VMin", got)
	}
}

func TestDomainFixed(t *testing.T) {
	// Constant-voltage domain (memory) ignores the global rail.
	c := config.DomainConfig{
		Scale: 1.0, VMin: 1.0, VMax: 1.0, Fixed: true,
		VR: vr.RegulatorConfig{VMin: 0.99, VMax: 1.01, VInit: 1.0, TransitionTime: 0, SlewRate: 0},
	}
	d := MustDomain("mem", c)
	for _, vg := range []float64{0.6, 0.95, 1.2} {
		if got := d.Step(100, 100, vg); got != 1.0 {
			t.Fatalf("fixed domain at global %g = %g, want 1.0", vg, got)
		}
	}
}

func TestDomainPriority(t *testing.T) {
	// Paper §3.2: "when a domain is de-prioritized by 10%, the domain
	// voltage controller multiplies the global voltage by 0.9x before
	// doing any domain-specific scaling".
	d := MustDomain("gpu", domCfg())
	d.SetPriority(0.9)
	got := d.Step(100, 100, 1.0)
	if math.Abs(got-0.675) > 1e-12 {
		t.Fatalf("de-prioritized voltage = %g, want 0.675", got)
	}
	if d.Priority() != 0.9 {
		t.Fatalf("Priority() = %g", d.Priority())
	}
}

func TestDomainPriorityClamps(t *testing.T) {
	d := MustDomain("gpu", domCfg())
	d.SetPriority(-5)
	if d.Priority() <= 0 {
		t.Fatalf("negative priority accepted: %g", d.Priority())
	}
	d.SetPriority(99)
	if d.Priority() > 1.25 {
		t.Fatalf("unbounded priority accepted: %g", d.Priority())
	}
}

func TestDomainTransitionNotRestarted(t *testing.T) {
	// Regression test for the bug where re-commanding an unchanged
	// target every step restarted the VR transition forever.
	c := domCfg()
	c.VR.TransitionTime = 500
	c.VR.SlewRate = 5e6
	d := MustDomain("gpu", c)
	var got float64
	for now := sim.Time(100); now <= 5000; now += 100 {
		got = d.Step(now, 100, 0.6) // target 0.45 (clamped)
	}
	if math.Abs(got-0.45) > 1e-9 {
		t.Fatalf("domain never settled: %g, want 0.45", got)
	}
}

func TestDomainReset(t *testing.T) {
	d := MustDomain("gpu", domCfg())
	d.SetPriority(0.8)
	d.Step(100, 100, 1.1)
	d.Reset()
	if d.Priority() != 1.0 {
		t.Fatal("reset did not restore priority")
	}
	if d.Output() != 0.7125 {
		t.Fatalf("reset output = %g", d.Output())
	}
}

func TestDomainName(t *testing.T) {
	d := MustDomain("sha", domCfg())
	if d.Name() != "sha" {
		t.Fatalf("Name = %q", d.Name())
	}
}
