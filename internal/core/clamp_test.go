package core

import (
	"testing"

	"hcapp/internal/sim"
	"hcapp/internal/vr"
)

const clampDT = 100 * sim.Nanosecond

func clampReg() *vr.Regulator {
	return vr.MustRegulator(vr.RegulatorConfig{
		VMin: 0.6, VMax: 1.2, VInit: 1.2,
		TransitionTime: 150 * sim.Nanosecond, SlewRate: 5e6,
	})
}

func TestClampConfigValidate(t *testing.T) {
	ok := ClampConfig{CapW: 100, DT: clampDT}
	if err := ok.Validate(); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	bad := []ClampConfig{
		{CapW: 0, DT: clampDT},
		{CapW: -5, DT: clampDT},
		{CapW: 100, DT: 0},                            // missing timestep
		{CapW: 100, DT: clampDT, TripFrac: 1.5},       // above 1
		{CapW: 100, DT: clampDT, TripFrac: -0.1},      // negative
		{CapW: 100, DT: clampDT, Hold: -1},            // negative hold
		{CapW: 100, DT: clampDT, Window: clampDT / 2}, // window below step
		{CapW: 100, DT: clampDT, VGuard: -0.1},        // negative ceiling
		{CapW: 100, DT: clampDT, GuardRamp: -1},       // negative ramp
	}
	for i, cfg := range bad {
		if _, err := NewClamp(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// step drives the clamp and the regulator together the way the engine
// does: regulator settles first, clamp evaluates after.
func stepClamp(c *Clamp, reg *vr.Regulator, now sim.Time, powerW float64) (v float64, engaged bool) {
	v = reg.Step(now, clampDT)
	engaged = c.Step(now, powerW, reg)
	return v, engaged
}

func TestClampTripsOnWindowBreach(t *testing.T) {
	c := MustClamp(ClampConfig{CapW: 100, Window: 2 * sim.Microsecond, DT: clampDT})
	reg := clampReg()
	now := sim.Time(0)
	// Sustained power above the 90 W trip threshold must engage the
	// clamp within one window and drive the rail to VMin.
	for i := 0; i < 100; i++ {
		now += clampDT
		stepClamp(c, reg, now, 120)
	}
	if !c.Engaged() {
		t.Fatal("clamp not engaged on sustained 120 W above a 100 W cap")
	}
	if c.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", c.Trips())
	}
	// Let the override land and the rail settle.
	for i := 0; i < 100; i++ {
		now += clampDT
		stepClamp(c, reg, now, 50)
	}
	if got := reg.Output(); got != 0.6 {
		t.Fatalf("rail at %g while engaged, want VMin 0.6", got)
	}
}

func TestClampStaysIdleBelowThreshold(t *testing.T) {
	c := MustClamp(ClampConfig{CapW: 100, Window: 2 * sim.Microsecond, DT: clampDT})
	reg := clampReg()
	now := sim.Time(0)
	for i := 0; i < 10000; i++ {
		now += clampDT
		stepClamp(c, reg, now, 85) // below the 90 W threshold
	}
	if c.Trips() != 0 || c.EngagedSteps() != 0 {
		t.Fatalf("idle clamp tripped %d times (%d steps)", c.Trips(), c.EngagedSteps())
	}
	if got := reg.Output(); got != 1.2 {
		t.Fatalf("rail moved to %g with clamp idle", got)
	}
}

// TestClampSubWindowBurstTolerated is the design-intent test: a burst
// shorter than the limit window whose window average stays below the
// threshold must NOT trip the clamp — power limits are window-defined,
// and the controller legitimately rides out instantaneous spikes.
func TestClampSubWindowBurstTolerated(t *testing.T) {
	c := MustClamp(ClampConfig{CapW: 100, Window: 2 * sim.Microsecond, DT: clampDT})
	reg := clampReg()
	now := sim.Time(0)
	// The 2 µs window holds 20 steps. A 2-step (0.1 window) burst at
	// 150 W amid 70 W peaks the window average at
	// (2·150 + 18·70)/20 = 78, well below the 90 W trip line. Bursts
	// start after the window has filled — a half-empty ring would let
	// one burst sample dominate the average, which is a startup
	// artifact, not an operating condition.
	for i := 0; i < 2000; i++ {
		now += clampDT
		p := 70.0
		if i%200 >= 100 && i%200 < 102 {
			p = 150
		}
		stepClamp(c, reg, now, p)
	}
	if c.Trips() != 0 {
		t.Fatalf("clamp tripped %d times on sub-window bursts", c.Trips())
	}
}

func TestClampHoldAndGuardedRelease(t *testing.T) {
	cfg := ClampConfig{
		CapW: 100, Window: 2 * sim.Microsecond, DT: clampDT,
		Hold: 5 * sim.Microsecond, VGuard: 0.9,
	}
	c := MustClamp(cfg)
	reg := clampReg()
	now := sim.Time(0)
	for !c.Engaged() {
		now += clampDT
		stepClamp(c, reg, now, 120)
	}
	tripAt := now
	// Drop the load immediately: the hold must keep the clamp engaged
	// for its full hysteresis span anyway.
	var releasedAt sim.Time
	for i := 0; i < 200 && releasedAt == 0; i++ {
		now += clampDT
		if _, engaged := stepClamp(c, reg, now, 20); !engaged {
			releasedAt = now
		}
	}
	if releasedAt == 0 {
		t.Fatal("clamp never released after load dropped")
	}
	if held := releasedAt - tripAt; held < cfg.Hold {
		t.Fatalf("released after %d, want >= hold %d", held, cfg.Hold)
	}
	if !c.Guarding() {
		t.Fatal("release did not enter the guard posture")
	}
	if c.Ceiling() < 0.9 {
		t.Fatalf("guard ceiling %g below configured VGuard", c.Ceiling())
	}
	// While guarding, a controller command above the ceiling is capped
	// on the next clamp step.
	reg.Command(now, 1.2)
	now += clampDT
	stepClamp(c, reg, now, 20)
	if c.Guarding() {
		if cmd := reg.Commanded(); cmd > c.Ceiling() {
			t.Fatalf("guard let a %g command stand above ceiling %g", cmd, c.Ceiling())
		}
	}
	// The ceiling ramps; eventually the guard ends and full range returns.
	for i := 0; i < 20000 && c.Guarding(); i++ {
		now += clampDT
		stepClamp(c, reg, now, 20)
	}
	if c.Guarding() {
		t.Fatal("guard never released")
	}
}

func TestClampResetClearsState(t *testing.T) {
	c := MustClamp(ClampConfig{CapW: 100, Window: sim.Microsecond, DT: clampDT})
	reg := clampReg()
	now := sim.Time(0)
	for i := 0; i < 200; i++ {
		now += clampDT
		stepClamp(c, reg, now, 150)
	}
	if c.Trips() == 0 {
		t.Fatal("setup failed to trip")
	}
	c.Reset()
	if c.Engaged() || c.Guarding() || c.Trips() != 0 || c.EngagedSteps() != 0 || c.WindowAvg() != 0 {
		t.Fatalf("Reset left state: engaged=%v guard=%v trips=%d steps=%d avg=%g",
			c.Engaged(), c.Guarding(), c.Trips(), c.EngagedSteps(), c.WindowAvg())
	}
}
