package core

import (
	"fmt"

	"hcapp/internal/sim"
)

// Metrics is the per-epoch measurement a local controller sees. Only
// local quantities appear here — HCAPP's level 3 never sees global state
// (§3.3), which is what keeps the design decentralized.
type Metrics struct {
	// IPC is the unit's measured instructions per cycle over the epoch.
	IPC float64
	// Activity is the unit's mean switching activity over the epoch —
	// the occupancy proxy used by the GPU-CAPP "dynamic warp" design.
	Activity float64
	// TempC is the local thermal sensor reading, °C (0 if unsensed).
	TempC float64
}

// Local is the level-3 controller attached to one execution unit (CPU
// core or GPU SM). Each local epoch the owning simulator reports the
// unit's measured metrics and current domain voltage; the controller
// answers with the local voltage ratio to apply ("the ratio of the
// domain voltage to use locally", §3.3.1).
type Local interface {
	// Epoch ingests one epoch's metrics and returns the new ratio.
	Epoch(now sim.Time, m Metrics, vdomain float64) float64
	// Ratio returns the current ratio without updating.
	Ratio() float64
	// Reset rewinds the controller to its initial state.
	Reset()
}

// RatioRange bounds a local controller's output ratio.
type RatioRange struct {
	Min, Max float64
}

// DefaultRatioRange is the ratio window used by both CAPP-style
// controllers when not overridden.
var DefaultRatioRange = RatioRange{Min: 0.75, Max: 1.0}

func (r RatioRange) validate() error {
	if r.Min <= 0 || r.Min > r.Max || r.Max > 1.5 {
		return fmt.Errorf("core: invalid ratio range [%g,%g]", r.Min, r.Max)
	}
	return nil
}

func (r RatioRange) clamp(x float64) float64 {
	if x < r.Min {
		return r.Min
	}
	if x > r.Max {
		return r.Max
	}
	return x
}

// StaticIPC is the CAPP CPU local controller (§3.3.1, §4.2): fixed IPC
// thresholds expressed as fractions of the architectural maximum IPC.
// "If the core IPC exceeds 60% of the maximum possible IPC, the local
// voltage ratio is increased by 0.05. If the IPC falls below 30% ... the
// local voltage ratio is decreased by 0.05."
type StaticIPC struct {
	upper, lower float64 // absolute IPC thresholds
	step         float64
	rng          RatioRange
	ratio        float64
}

// NewStaticIPC builds the controller. maxIPC is the architectural peak;
// upperFrac/lowerFrac the threshold fractions; step the per-epoch ratio
// adjustment.
func NewStaticIPC(maxIPC, upperFrac, lowerFrac, step float64, rng RatioRange) (*StaticIPC, error) {
	if err := rng.validate(); err != nil {
		return nil, err
	}
	if maxIPC <= 0 || upperFrac <= lowerFrac || lowerFrac <= 0 || upperFrac > 1 {
		return nil, fmt.Errorf("core: invalid static IPC thresholds (max=%g upper=%g lower=%g)", maxIPC, upperFrac, lowerFrac)
	}
	if step <= 0 || step > rng.Max-rng.Min {
		return nil, fmt.Errorf("core: invalid ratio step %g", step)
	}
	return &StaticIPC{
		upper: maxIPC * upperFrac,
		lower: maxIPC * lowerFrac,
		step:  step,
		rng:   rng,
		ratio: rng.Max,
	}, nil
}

// MustStaticIPC is NewStaticIPC that panics on invalid input.
func MustStaticIPC(maxIPC, upperFrac, lowerFrac, step float64, rng RatioRange) *StaticIPC {
	c, err := NewStaticIPC(maxIPC, upperFrac, lowerFrac, step, rng)
	if err != nil {
		panic(err)
	}
	return c
}

// Epoch implements Local.
func (c *StaticIPC) Epoch(_ sim.Time, m Metrics, _ float64) float64 {
	switch {
	case m.IPC > c.upper:
		c.ratio = c.rng.clamp(c.ratio + c.step)
	case m.IPC < c.lower:
		c.ratio = c.rng.clamp(c.ratio - c.step)
	}
	return c.ratio
}

// Ratio implements Local.
func (c *StaticIPC) Ratio() float64 { return c.ratio }

// Reset implements Local.
func (c *StaticIPC) Reset() { c.ratio = c.rng.Max }

// DynamicIPC is the GPU-CAPP dynamic-IPC local controller (§3.3.2,
// §4.3): like StaticIPC, but the thresholds themselves adapt to steer the
// domain voltage toward a preset target. "The local controller increases
// the thresholds when the domain voltage is below a preset target domain
// voltage value... when the domain voltage is above the target value, the
// local controller decreases the thresholds", by ±5 % per epoch with a
// 5 % dead zone.
type DynamicIPC struct {
	upper, lower   float64
	upper0, lower0 float64
	thMin, thMax   float64
	thStep         float64 // multiplicative threshold step (0.05 = ±5 %)
	targetV        float64
	deadZone       float64 // fractional dead zone around targetV
	step           float64 // ratio step
	rng            RatioRange
	ratio          float64
	// metric extracts the controlled quantity from the epoch metrics:
	// IPC for the paper's chosen design, activity (occupancy) for the
	// GPU-CAPP "dynamic warp" alternative.
	metric func(Metrics) float64
}

// NewDynamicIPC builds the controller. The thresholds start at
// upperFrac/lowerFrac of maxIPC and adapt within [2 % of maxIPC, maxIPC].
func NewDynamicIPC(maxIPC, upperFrac, lowerFrac, step float64, targetV, deadZone, thStep float64, rng RatioRange) (*DynamicIPC, error) {
	if err := rng.validate(); err != nil {
		return nil, err
	}
	if maxIPC <= 0 || upperFrac <= lowerFrac || lowerFrac <= 0 || upperFrac > 1 {
		return nil, fmt.Errorf("core: invalid dynamic IPC thresholds (max=%g upper=%g lower=%g)", maxIPC, upperFrac, lowerFrac)
	}
	if step <= 0 || thStep <= 0 || thStep >= 1 {
		return nil, fmt.Errorf("core: invalid steps (ratio=%g threshold=%g)", step, thStep)
	}
	if targetV <= 0 || deadZone < 0 || deadZone >= 1 {
		return nil, fmt.Errorf("core: invalid target voltage %g / dead zone %g", targetV, deadZone)
	}
	return &DynamicIPC{
		upper: maxIPC * upperFrac, lower: maxIPC * lowerFrac,
		upper0: maxIPC * upperFrac, lower0: maxIPC * lowerFrac,
		thMin: maxIPC * 0.02, thMax: maxIPC,
		thStep: thStep, targetV: targetV, deadZone: deadZone,
		step: step, rng: rng, ratio: rng.Max,
		metric: func(m Metrics) float64 { return m.IPC },
	}, nil
}

// NewDynamicOccupancy builds the GPU-CAPP "dynamic warp" alternative
// local controller (§3.3.2 cites it as the other effective design): the
// same adaptive-threshold machinery keyed on the unit's occupancy
// (activity) instead of IPC. maxOcc is the occupancy treated as full
// (1.0 for an activity factor).
func NewDynamicOccupancy(maxOcc, upperFrac, lowerFrac, step float64, targetV, deadZone, thStep float64, rng RatioRange) (*DynamicIPC, error) {
	c, err := NewDynamicIPC(maxOcc, upperFrac, lowerFrac, step, targetV, deadZone, thStep, rng)
	if err != nil {
		return nil, err
	}
	c.metric = func(m Metrics) float64 { return m.Activity }
	return c, nil
}

// MustDynamicIPC is NewDynamicIPC that panics on invalid input.
func MustDynamicIPC(maxIPC, upperFrac, lowerFrac, step float64, targetV, deadZone, thStep float64, rng RatioRange) *DynamicIPC {
	c, err := NewDynamicIPC(maxIPC, upperFrac, lowerFrac, step, targetV, deadZone, thStep, rng)
	if err != nil {
		panic(err)
	}
	return c
}

// Epoch implements Local.
func (c *DynamicIPC) Epoch(_ sim.Time, m Metrics, vdomain float64) float64 {
	// Adapt thresholds to pull the domain voltage toward the target.
	lo := c.targetV * (1 - c.deadZone)
	hi := c.targetV * (1 + c.deadZone)
	switch {
	case vdomain < lo:
		c.scaleThresholds(1 + c.thStep)
	case vdomain > hi:
		c.scaleThresholds(1 - c.thStep)
	}
	v := c.metric(m)
	switch {
	case v > c.upper:
		c.ratio = c.rng.clamp(c.ratio + c.step)
	case v < c.lower:
		c.ratio = c.rng.clamp(c.ratio - c.step)
	}
	return c.ratio
}

func (c *DynamicIPC) scaleThresholds(k float64) {
	c.upper *= k
	c.lower *= k
	if c.upper > c.thMax {
		c.upper = c.thMax
	}
	if c.upper < c.thMin*2 {
		c.upper = c.thMin * 2
	}
	if c.lower > c.upper/2 {
		c.lower = c.upper / 2
	}
	if c.lower < c.thMin {
		c.lower = c.thMin
	}
}

// Thresholds exposes the adaptive thresholds for tests and traces.
func (c *DynamicIPC) Thresholds() (upper, lower float64) { return c.upper, c.lower }

// Ratio implements Local.
func (c *DynamicIPC) Ratio() float64 { return c.ratio }

// Reset implements Local.
func (c *DynamicIPC) Reset() {
	c.ratio = c.rng.Max
	c.upper, c.lower = c.upper0, c.lower0
}

// PassThrough is the accelerator local controller (§3.3.3): "a simple
// pass-through local controller which provides overvoltage and
// undervoltage protection but does not apply a local voltage ratio." The
// protection bounds are enforced by clamping the effective ratio so the
// delivered voltage stays within [VMin, VMax].
type PassThrough struct {
	VMin, VMax float64
	ratio      float64
}

// NewPassThrough builds the protection-only controller.
func NewPassThrough(vmin, vmax float64) (*PassThrough, error) {
	if vmin < 0 || vmin >= vmax {
		return nil, fmt.Errorf("core: invalid protection window [%g,%g]", vmin, vmax)
	}
	return &PassThrough{VMin: vmin, VMax: vmax, ratio: 1.0}, nil
}

// MustPassThrough is NewPassThrough that panics on invalid input.
func MustPassThrough(vmin, vmax float64) *PassThrough {
	c, err := NewPassThrough(vmin, vmax)
	if err != nil {
		panic(err)
	}
	return c
}

// Epoch implements Local: the ratio is whatever keeps v·ratio within the
// protection window, and 1.0 otherwise.
func (c *PassThrough) Epoch(_ sim.Time, _ Metrics, vdomain float64) float64 {
	c.ratio = 1.0
	if vdomain > c.VMax {
		c.ratio = c.VMax / vdomain
	}
	// Undervoltage cannot be fixed by a down-converting local VR; the
	// component's own model treats sub-VMin supplies as non-operational,
	// which is the protective behaviour.
	return c.ratio
}

// Ratio implements Local.
func (c *PassThrough) Ratio() float64 { return c.ratio }

// Reset implements Local.
func (c *PassThrough) Reset() { c.ratio = 1.0 }

// Adversarial is the worst-case local controller contemplated in §3.3.3:
// it "always uses all of the available voltage possible, ignoring any
// local metric information" — including boosting past its domain
// allocation up to whatever its silicon tolerates. HCAPP must still hold
// the package power limit with this controller in the system, because
// the global controller prices total power, not intent; only the
// adversary's neighbours pay. The ablation bench verifies that.
type Adversarial struct {
	// Boost is the ratio the controller always requests; values > 1
	// model a local VR boosting beyond the domain allocation. Zero
	// defaults to 1.25.
	Boost float64
}

// Epoch implements Local: always the maximum ratio.
func (a Adversarial) Epoch(_ sim.Time, _ Metrics, _ float64) float64 { return a.Ratio() }

// Ratio implements Local.
func (a Adversarial) Ratio() float64 {
	if a.Boost <= 0 {
		return 1.25
	}
	return a.Boost
}

// Reset implements Local.
func (Adversarial) Reset() {}

// None is a nil local controller for components without voltage-change
// capability (§3.3: the local level applies only "if applicable based on
// the subcomponent").
type None struct{}

// Epoch implements Local.
func (None) Epoch(_ sim.Time, _ Metrics, _ float64) float64 { return 1.0 }

// Ratio implements Local.
func (None) Ratio() float64 { return 1.0 }

// Reset implements Local.
func (None) Reset() {}
