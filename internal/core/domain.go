package core

import (
	"fmt"

	"hcapp/internal/config"
	"hcapp/internal/sim"
	"hcapp/internal/vr"
)

// Domain is the level-2 controller: it normalizes the global voltage to
// one chiplet's usable range through that chiplet's voltage regulator and
// applies the software priority register (§3.2).
//
// "The domain controller uses the priority value as a scaling factor for
// the domain voltage calculation. When a domain is de-prioritized by 10%,
// the domain voltage controller multiplies the global voltage by 0.9x
// before doing any domain-specific scaling."
type Domain struct {
	name       string
	cfg        config.DomainConfig
	reg        *vr.Regulator
	priority   float64
	out        float64
	lastTarget float64
	commanded  bool
}

// NewDomain constructs a domain controller for one chiplet.
func NewDomain(name string, cfg config.DomainConfig) (*Domain, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("core: domain %q scale %g not positive", name, cfg.Scale)
	}
	if cfg.VMin > cfg.VMax {
		return nil, fmt.Errorf("core: domain %q voltage range [%g,%g] empty", name, cfg.VMin, cfg.VMax)
	}
	reg, err := vr.NewRegulator(cfg.VR)
	if err != nil {
		return nil, fmt.Errorf("core: domain %q regulator: %w", name, err)
	}
	return &Domain{name: name, cfg: cfg, reg: reg, priority: 1.0, out: cfg.VR.VInit}, nil
}

// MustDomain is NewDomain that panics on invalid configuration.
func MustDomain(name string, cfg config.DomainConfig) *Domain {
	d, err := NewDomain(name, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }

// Priority returns the current software priority value.
func (d *Domain) Priority() float64 { return d.priority }

// SetPriority writes the software priority register. Values are clamped
// to (0, 1.25]; 1.0 is neutral, below 1.0 de-prioritizes the domain.
// "The operating system can change the priority value dynamically by
// modifying the register value" (§3.2).
func (d *Domain) SetPriority(p float64) {
	if p <= 0 {
		p = 0.01
	}
	if p > 1.25 {
		p = 1.25
	}
	d.priority = p
}

// Step computes the new domain voltage from the (PSN-delayed) global
// voltage and advances the domain regulator by one engine step of dt,
// returning the voltage delivered to the chiplet.
func (d *Domain) Step(now sim.Time, dt sim.Time, vglobal float64) float64 {
	var target float64
	if d.cfg.Fixed {
		// Constant-voltage domain (memory): ignore the global rail.
		target = d.cfg.VMax
	} else {
		target = vglobal * d.priority * d.cfg.Scale
		if target < d.cfg.VMin {
			target = d.cfg.VMin
		}
		if target > d.cfg.VMax {
			target = d.cfg.VMax
		}
	}
	// Only issue a command when the target moves: re-commanding every
	// step would restart the regulator's transition timer forever.
	if !d.commanded || target != d.lastTarget {
		d.reg.Command(now, target)
		d.lastTarget = target
		d.commanded = true
	}
	d.out = d.reg.Step(now, dt)
	return d.out
}

// Output returns the domain voltage currently delivered.
func (d *Domain) Output() float64 { return d.out }

// Config returns the domain configuration.
func (d *Domain) Config() config.DomainConfig { return d.cfg }

// Reset rewinds the domain regulator and priority.
func (d *Domain) Reset() {
	d.reg.Reset()
	d.priority = 1.0
	d.out = d.cfg.VR.VInit
	d.lastTarget = 0
	d.commanded = false
}
