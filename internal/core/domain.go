package core

import (
	"fmt"

	"hcapp/internal/config"
	"hcapp/internal/sim"
	"hcapp/internal/vr"
)

// Domain is the level-2 controller: it normalizes the global voltage to
// one chiplet's usable range through that chiplet's voltage regulator and
// applies the software priority register (§3.2).
//
// "The domain controller uses the priority value as a scaling factor for
// the domain voltage calculation. When a domain is de-prioritized by 10%,
// the domain voltage controller multiplies the global voltage by 0.9x
// before doing any domain-specific scaling."
type Domain struct {
	name       string
	cfg        config.DomainConfig
	reg        *vr.Regulator
	priority   float64
	out        float64
	lastTarget float64
	commanded  bool

	// Watchdog state (EnableWatchdog): the domain controller "pets" the
	// watchdog every healthy Step; StepSilent lets it starve.
	wd        WatchdogConfig
	silentFor sim.Time
	tripped   bool
	trips     int64
}

// WatchdogConfig arms a per-domain hardware watchdog: if the level-2
// controller goes silent (stops retargeting its regulator) for longer
// than Timeout, the watchdog drives the domain regulator to FailSafeV
// so a hung controller cannot strand its chiplet at an arbitrary — and
// possibly unsafe — operating point. After the controller resumes, the
// domain recovers to its commanded target within the regulator's
// transition time plus |target − FailSafeV| / SlewRate (the bound
// documented in docs/FAULTS.md and enforced by TestWatchdogRecoveryBound).
type WatchdogConfig struct {
	// Timeout is the maximum controller silence before the watchdog
	// trips. Zero leaves the watchdog disarmed.
	Timeout sim.Time
	// FailSafeV is the voltage driven on a trip; zero defaults to the
	// domain's VMin (the safe-side floor).
	FailSafeV float64
}

// NewDomain constructs a domain controller for one chiplet.
func NewDomain(name string, cfg config.DomainConfig) (*Domain, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("core: domain %q scale %g not positive", name, cfg.Scale)
	}
	if cfg.VMin > cfg.VMax {
		return nil, fmt.Errorf("core: domain %q voltage range [%g,%g] empty", name, cfg.VMin, cfg.VMax)
	}
	reg, err := vr.NewRegulator(cfg.VR)
	if err != nil {
		return nil, fmt.Errorf("core: domain %q regulator: %w", name, err)
	}
	return &Domain{name: name, cfg: cfg, reg: reg, priority: 1.0, out: cfg.VR.VInit}, nil
}

// MustDomain is NewDomain that panics on invalid configuration.
func MustDomain(name string, cfg config.DomainConfig) *Domain {
	d, err := NewDomain(name, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }

// Priority returns the current software priority value.
func (d *Domain) Priority() float64 { return d.priority }

// SetPriority writes the software priority register. Values are clamped
// to (0, 1.25]; 1.0 is neutral, below 1.0 de-prioritizes the domain.
// "The operating system can change the priority value dynamically by
// modifying the register value" (§3.2).
func (d *Domain) SetPriority(p float64) {
	if p <= 0 {
		p = 0.01
	}
	if p > 1.25 {
		p = 1.25
	}
	d.priority = p
}

// EnableWatchdog arms the domain watchdog.
func (d *Domain) EnableWatchdog(cfg WatchdogConfig) {
	if cfg.FailSafeV == 0 {
		cfg.FailSafeV = d.cfg.VMin
	}
	d.wd = cfg
}

// WatchdogTrips returns how many times the watchdog has fired.
func (d *Domain) WatchdogTrips() int64 { return d.trips }

// WatchdogTripped reports whether the watchdog currently holds the
// domain at its fail-safe voltage.
func (d *Domain) WatchdogTripped() bool { return d.tripped }

// StepSilent advances the domain with its controller hung (the
// DomainSilence fault): no new target is computed, the physical
// regulator keeps settling toward whatever was last commanded, and the
// watchdog — armed via EnableWatchdog — starves. Once silence exceeds
// the watchdog timeout, the regulator is driven to the fail-safe
// voltage.
func (d *Domain) StepSilent(now sim.Time, dt sim.Time) float64 {
	d.silentFor += dt
	if d.wd.Timeout > 0 && d.silentFor >= d.wd.Timeout && !d.tripped {
		d.tripped = true
		d.trips++
		d.reg.Command(now, d.wd.FailSafeV)
		// Record the fail-safe as the standing target so a resuming
		// controller re-commands even if its computed target matches the
		// pre-silence one.
		d.lastTarget = d.wd.FailSafeV
	}
	d.out = d.reg.Step(now, dt)
	return d.out
}

// Step computes the new domain voltage from the (PSN-delayed) global
// voltage and advances the domain regulator by one engine step of dt,
// returning the voltage delivered to the chiplet.
func (d *Domain) Step(now sim.Time, dt sim.Time, vglobal float64) float64 {
	d.silentFor = 0
	d.tripped = false
	var target float64
	if d.cfg.Fixed {
		// Constant-voltage domain (memory): ignore the global rail.
		target = d.cfg.VMax
	} else {
		target = vglobal * d.priority * d.cfg.Scale
		if target < d.cfg.VMin {
			target = d.cfg.VMin
		}
		if target > d.cfg.VMax {
			target = d.cfg.VMax
		}
	}
	// Only issue a command when the target moves: re-commanding every
	// step would restart the regulator's transition timer forever.
	if !d.commanded || target != d.lastTarget {
		d.reg.Command(now, target)
		d.lastTarget = target
		d.commanded = true
	}
	d.out = d.reg.Step(now, dt)
	return d.out
}

// SteadyAt reports whether Step(now, dt, vglobal) would leave the
// domain bitwise unchanged and return the same voltage as the last
// step: the controller is healthy (no silence, no watchdog trip), the
// target it would compute — reproduced here operation-for-operation —
// matches the standing one, and the regulator has settled on it. While
// this holds the adaptive engine can stride without stepping the
// domain at all.
func (d *Domain) SteadyAt(vglobal float64) bool {
	if d.silentFor != 0 || d.tripped || !d.commanded {
		return false
	}
	var target float64
	if d.cfg.Fixed {
		target = d.cfg.VMax
	} else {
		target = vglobal * d.priority * d.cfg.Scale
		if target < d.cfg.VMin {
			target = d.cfg.VMin
		}
		if target > d.cfg.VMax {
			target = d.cfg.VMax
		}
	}
	return target == d.lastTarget && d.reg.Settled() && d.out == d.reg.Output()
}

// Output returns the domain voltage currently delivered.
func (d *Domain) Output() float64 { return d.out }

// Config returns the domain configuration.
func (d *Domain) Config() config.DomainConfig { return d.cfg }

// Reset rewinds the domain regulator, priority, and watchdog state (the
// watchdog stays armed).
func (d *Domain) Reset() {
	d.reg.Reset()
	d.priority = 1.0
	d.out = d.cfg.VR.VInit
	d.lastTarget = 0
	d.commanded = false
	d.silentFor = 0
	d.tripped = false
	d.trips = 0
}
