// Package core implements the paper's primary contribution: the HCAPP
// (Heterogeneous Constant Average Power Processing) three-level
// decentralized power-control hierarchy (paper §3).
//
//   - Level 1, the global controller (global.go), measures total package
//     power through the global VR's sensing circuitry and adjusts the
//     global voltage with a cube-root-error PID loop (Eq. 1–2) to hold
//     the package at its power target.
//   - Level 2, the domain controllers (domain.go), normalize the global
//     voltage to each chiplet's allowable range through a per-chiplet VR
//     and expose the software priority register (§3.2) — the interface
//     validated in §5.3.
//   - Level 3, the local controllers (local.go), use purely local metrics
//     (per-core / per-SM IPC) to trim a local voltage ratio, shifting
//     power toward the units that can convert it into work: the CAPP
//     static-threshold design for CPU cores (§3.3.1), the GPU-CAPP
//     dynamic-IPC design with adaptive thresholds (§3.3.2), and the
//     pass-through (and adversarial) accelerator designs (§3.3.3).
//
// Nothing in this package communicates globally except through the power
// supply network itself — "the universal language of voltage and current"
// — which is what lets HCAPP scale with chiplet count.
package core
