package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStaticIPCConstruction(t *testing.T) {
	if _, err := NewStaticIPC(2.5, 0.6, 0.3, 0.05, DefaultRatioRange); err != nil {
		t.Fatalf("valid controller rejected: %v", err)
	}
	bad := []struct {
		name                       string
		maxIPC, upper, lower, step float64
		rng                        RatioRange
	}{
		{"zero max ipc", 0, 0.6, 0.3, 0.05, DefaultRatioRange},
		{"upper below lower", 2.5, 0.3, 0.6, 0.05, DefaultRatioRange},
		{"zero lower", 2.5, 0.6, 0, 0.05, DefaultRatioRange},
		{"upper above 1", 2.5, 1.5, 0.3, 0.05, DefaultRatioRange},
		{"zero step", 2.5, 0.6, 0.3, 0, DefaultRatioRange},
		{"step exceeds range", 2.5, 0.6, 0.3, 0.5, RatioRange{0.9, 1.0}},
		{"bad range", 2.5, 0.6, 0.3, 0.05, RatioRange{0, 1}},
		{"inverted range", 2.5, 0.6, 0.3, 0.05, RatioRange{1.0, 0.8}},
	}
	for _, c := range bad {
		if _, err := NewStaticIPC(c.maxIPC, c.upper, c.lower, c.step, c.rng); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestStaticIPCBehaviour(t *testing.T) {
	// Paper §4.2: IPC > 60 % of max → ratio += 0.05; < 30 % → −0.05.
	c := MustStaticIPC(2.5, 0.6, 0.3, 0.05, RatioRange{0.75, 1.0})
	if c.Ratio() != 1.0 {
		t.Fatalf("initial ratio %g, want max", c.Ratio())
	}
	// High IPC at the max: stays clamped.
	if got := c.Epoch(0, Metrics{IPC: 2.0}, 1.0); got != 1.0 {
		t.Fatalf("high-IPC ratio %g, want clamp at 1.0", got)
	}
	// Low IPC steps down by exactly 0.05 each epoch.
	if got := c.Epoch(0, Metrics{IPC: 0.2}, 1.0); math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("ratio after one low epoch = %g, want 0.95", got)
	}
	for i := 0; i < 10; i++ {
		c.Epoch(0, Metrics{IPC: 0.2}, 1.0)
	}
	if got := c.Ratio(); got != 0.75 {
		t.Fatalf("ratio floor = %g, want 0.75", got)
	}
	// Mid IPC holds.
	if got := c.Epoch(0, Metrics{IPC: 1.2}, 1.0); got != 0.75 {
		t.Fatalf("mid-IPC moved ratio to %g", got)
	}
	// High IPC recovers.
	if got := c.Epoch(0, Metrics{IPC: 1.6}, 1.0); math.Abs(got-0.80) > 1e-12 {
		t.Fatalf("recovery ratio %g, want 0.80", got)
	}
	c.Reset()
	if c.Ratio() != 1.0 {
		t.Fatal("reset did not restore max ratio")
	}
}

func TestStaticIPCThresholdEdges(t *testing.T) {
	c := MustStaticIPC(2.5, 0.6, 0.3, 0.05, RatioRange{0.75, 1.0})
	// Exactly at a threshold: no change (strict comparisons).
	if got := c.Epoch(0, Metrics{IPC: 1.5}, 1.0); got != 1.0 {
		t.Fatalf("at-upper-threshold ratio %g", got)
	}
	if got := c.Epoch(0, Metrics{IPC: 0.75}, 1.0); got != 1.0 {
		t.Fatalf("at-lower-threshold ratio %g", got)
	}
}

func TestStaticIPCRatioAlwaysInRange(t *testing.T) {
	c := MustStaticIPC(2.5, 0.6, 0.3, 0.05, RatioRange{0.8, 1.0})
	f := func(ipcs []float64) bool {
		for _, ipc := range ipcs {
			if math.IsNaN(ipc) {
				continue
			}
			r := c.Epoch(0, Metrics{IPC: math.Abs(ipc)}, 1.0)
			if r < 0.8-1e-12 || r > 1.0+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicIPCConstruction(t *testing.T) {
	if _, err := NewDynamicIPC(2.2, 0.6, 0.3, 0.05, 0.72, 0.05, 0.05, DefaultRatioRange); err != nil {
		t.Fatalf("valid controller rejected: %v", err)
	}
	bad := []struct {
		name     string
		targetV  float64
		deadZone float64
		thStep   float64
	}{
		{"zero target", 0, 0.05, 0.05},
		{"negative deadzone", 0.72, -0.1, 0.05},
		{"deadzone 1", 0.72, 1, 0.05},
		{"zero thstep", 0.72, 0.05, 0},
		{"thstep 1", 0.72, 0.05, 1},
	}
	for _, c := range bad {
		if _, err := NewDynamicIPC(2.2, 0.6, 0.3, 0.05, c.targetV, c.deadZone, c.thStep, DefaultRatioRange); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDynamicIPCThresholdAdaptation(t *testing.T) {
	// Paper §3.3.2: domain voltage below target → thresholds rise;
	// above target → thresholds fall; inside dead zone → unchanged.
	c := MustDynamicIPC(2.2, 0.6, 0.3, 0.05, 0.72, 0.05, 0.05, DefaultRatioRange)
	u0, l0 := c.Thresholds()

	c.Epoch(0, Metrics{IPC: 1.0}, 0.60) // well below target
	u1, l1 := c.Thresholds()
	if u1 <= u0 || l1 <= l0 {
		t.Fatalf("thresholds did not rise: %g/%g -> %g/%g", u0, l0, u1, l1)
	}

	c.Reset()
	c.Epoch(0, Metrics{IPC: 1.0}, 0.85) // well above target
	u2, l2 := c.Thresholds()
	if u2 >= u0 || l2 >= l0 {
		t.Fatalf("thresholds did not fall: %g/%g -> %g/%g", u0, l0, u2, l2)
	}

	c.Reset()
	c.Epoch(0, Metrics{IPC: 1.0}, 0.72) // inside dead zone
	u3, l3 := c.Thresholds()
	if u3 != u0 || l3 != l0 {
		t.Fatalf("thresholds moved inside dead zone: %g/%g", u3, l3)
	}
}

func TestDynamicIPCThresholdBounds(t *testing.T) {
	c := MustDynamicIPC(2.2, 0.6, 0.3, 0.05, 0.72, 0.05, 0.05, DefaultRatioRange)
	// Push thresholds up for a long time: they must stay bounded and
	// ordered (lower < upper).
	for i := 0; i < 1000; i++ {
		c.Epoch(0, Metrics{IPC: 1.0}, 0.5)
	}
	u, l := c.Thresholds()
	if u > 2.2 {
		t.Fatalf("upper threshold escaped: %g", u)
	}
	if l >= u {
		t.Fatalf("thresholds crossed: %g >= %g", l, u)
	}
	// And down.
	c.Reset()
	for i := 0; i < 1000; i++ {
		c.Epoch(0, Metrics{IPC: 1.0}, 0.9)
	}
	u, l = c.Thresholds()
	if l < 2.2*0.02-1e-12 {
		t.Fatalf("lower threshold collapsed: %g", l)
	}
	if l >= u {
		t.Fatalf("thresholds crossed after shrink: %g >= %g", l, u)
	}
}

func TestDynamicIPCRatioResponse(t *testing.T) {
	c := MustDynamicIPC(2.2, 0.6, 0.3, 0.05, 0.72, 0.05, 0.05, RatioRange{0.75, 1.0})
	// Low IPC inside dead zone reduces ratio.
	got := c.Epoch(0, Metrics{IPC: 0.1}, 0.72)
	if math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("low-IPC ratio = %g, want 0.95", got)
	}
	// The self-balancing loop: voltage above target long enough drops
	// thresholds until even a modest IPC passes, recovering the ratio.
	for i := 0; i < 200; i++ {
		c.Epoch(0, Metrics{IPC: 0.3}, 0.9)
	}
	if c.Ratio() != 1.0 {
		t.Fatalf("ratio did not recover via threshold adaptation: %g", c.Ratio())
	}
}

func TestDynamicIPCReset(t *testing.T) {
	c := MustDynamicIPC(2.2, 0.6, 0.3, 0.05, 0.72, 0.05, 0.05, DefaultRatioRange)
	u0, l0 := c.Thresholds()
	for i := 0; i < 50; i++ {
		c.Epoch(0, Metrics{IPC: 0.1}, 0.5)
	}
	c.Reset()
	u, l := c.Thresholds()
	if u != u0 || l != l0 || c.Ratio() != 1.0 {
		t.Fatalf("reset incomplete: u=%g l=%g r=%g", u, l, c.Ratio())
	}
}

func TestPassThrough(t *testing.T) {
	c := MustPassThrough(0.23, 0.95)
	// In-range voltage: unity ratio.
	if got := c.Epoch(0, Metrics{IPC: 0}, 0.7); got != 1.0 {
		t.Fatalf("in-range ratio = %g", got)
	}
	// Overvoltage: ratio clamps delivered voltage to VMax.
	got := c.Epoch(0, Metrics{IPC: 0}, 1.2)
	if math.Abs(got*1.2-0.95) > 1e-12 {
		t.Fatalf("overvoltage protection: %g · 1.2 = %g, want 0.95", got, got*1.2)
	}
	// Undervoltage: ratio stays 1 (component powers down instead).
	if got := c.Epoch(0, Metrics{IPC: 0}, 0.1); got != 1.0 {
		t.Fatalf("undervoltage ratio = %g", got)
	}
	c.Reset()
	if c.Ratio() != 1.0 {
		t.Fatal("reset ratio")
	}
}

func TestPassThroughConstruction(t *testing.T) {
	if _, err := NewPassThrough(0.5, 0.4); err == nil {
		t.Fatal("inverted window accepted")
	}
	if _, err := NewPassThrough(-0.1, 0.4); err == nil {
		t.Fatal("negative vmin accepted")
	}
}

func TestAdversarial(t *testing.T) {
	a := Adversarial{}
	if got := a.Epoch(0, Metrics{IPC: 0}, 0.5); got != 1.25 {
		t.Fatalf("default adversarial ratio = %g, want 1.25", got)
	}
	b := Adversarial{Boost: 1.1}
	if got := b.Ratio(); got != 1.1 {
		t.Fatalf("boost ratio = %g", got)
	}
	b.Reset() // must not panic
}

func TestNone(t *testing.T) {
	var n None
	if n.Epoch(0, Metrics{IPC: 5}, 0.9) != 1.0 || n.Ratio() != 1.0 {
		t.Fatal("None controller must be unity")
	}
	n.Reset()
}
