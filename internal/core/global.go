package core

import (
	"fmt"
	"math"

	"hcapp/internal/pid"
	"hcapp/internal/sim"
	"hcapp/internal/vr"
)

// GlobalConfig parameterizes the level-1 global voltage controller.
type GlobalConfig struct {
	// Period is the control cycle time: 1 µs for HCAPP, 100 µs for the
	// RAPL-like variant, 10 ms for the SW-like variant (§4.6).
	Period sim.Time
	// TargetPower is PSPEC in Eq. 1, watts. The paper is explicit that
	// this is a *target*, not the limit: "HCAPP will have maximum values
	// above the power target and those cannot exceed the power limit"
	// (§5.1), so the target carries the guardband for a given limit
	// window.
	TargetPower float64
	// PID holds the Eq. 2 gains. FeedForward is VOffset, "set to
	// approximately the average voltage expected throughout execution"
	// (§3.1). OutMin/OutMax are the global VR's range.
	PID pid.Config
	// Holdover, when non-zero, arms stale-sample resilience: see
	// HoldoverConfig.
	Holdover HoldoverConfig
}

// HoldoverConfig arms the global controller against a sensing path that
// stops delivering samples (sensor dropout, ADC hang). While the last
// good sample is younger than MaxAge the controller holds its last
// command — last-known-good holdover, no PID update, so stale data
// cannot wind up the integrator. Once the age bound is exceeded the
// controller stops trusting the sensing path entirely and commands
// FailSafeV: with the rail at the fail-safe floor the package
// physically cannot exceed its cap, which is the only guarantee
// available without a sensor.
type HoldoverConfig struct {
	// MaxAge bounds how stale the held sample may grow before fail-safe
	// engages. Zero disables holdover (legacy behaviour: stale samples
	// are consumed as if fresh).
	MaxAge sim.Time
	// FailSafeV is the voltage commanded past the age bound; zero
	// defaults to the PID's OutMin (the regulator floor).
	FailSafeV float64
}

// Validate reports whether the configuration is usable.
func (c GlobalConfig) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("core: non-positive control period %d", c.Period)
	}
	if c.TargetPower <= 0 {
		return fmt.Errorf("core: non-positive power target %g", c.TargetPower)
	}
	if c.Holdover.MaxAge < 0 {
		return fmt.Errorf("core: negative holdover age bound %d", c.Holdover.MaxAge)
	}
	return c.PID.Validate()
}

// Global is the level-1 controller. On each control cycle it converts the
// power error to a voltage error via the cube root (the approximate cubic
// relationship between power and voltage, Eq. 1), runs the PID law
// (Eq. 2) and commands the global voltage regulator.
type Global struct {
	cfg      GlobalConfig
	pid      *pid.Controller
	nextFire sim.Time
	lastCmd  float64
	cycles   int64
	accum    float64 // ∑ sensed power over the current control window
	samples  int64
	lastAvg  float64

	// Stale-sample resilience counters (Holdover armed).
	holdoverCycles int64
	failsafeCycles int64
	inFailsafe     bool
}

// NewGlobal constructs the controller.
func NewGlobal(cfg GlobalConfig) (*Global, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p, err := pid.New(cfg.PID)
	if err != nil {
		return nil, err
	}
	// The first action waits for one full control window so the
	// controller never acts on an empty energy counter.
	return &Global{cfg: cfg, pid: p, lastCmd: cfg.PID.FeedForward, nextFire: cfg.Period}, nil
}

// MustGlobal is NewGlobal that panics on invalid configuration.
func MustGlobal(cfg GlobalConfig) *Global {
	g, err := NewGlobal(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Config returns the controller configuration.
func (g *Global) Config() GlobalConfig { return g.cfg }

// SetTargetPower retargets PSPEC (the paper notes the power limit "could
// be changed dynamically during a run without needing costly PID
// analysis", §5.2).
func (g *Global) SetTargetPower(w float64) {
	if w > 0 {
		g.cfg.TargetPower = w
	}
}

// VErr computes Eq. 1: the signed cube root of the power error.
func VErr(pspec, pnow float64) float64 { return math.Cbrt(pspec - pnow) }

// Step runs the controller at time now given the sensed package power,
// commanding reg when a control-cycle boundary is crossed. It returns
// true when a control action fired. Call once per engine step.
//
// PNOW is the *running average* of the sensed power over the controller's
// own window, the way RAPL-class controllers read energy counters rather
// than instantaneous samples. A burst shorter than the control period is
// therefore diluted in a slow controller's view — which is exactly why
// the RAPL-like and SW-like variants neither react inside bursts nor
// over-throttle after them (paper §5.2's ferret discussion).
func (g *Global) Step(now sim.Time, sensedPower float64, reg *vr.Regulator) bool {
	return g.StepSensed(now, sensedPower, 0, reg)
}

// StepSensed is Step with the sensing path's sample age attached: age
// is the simulated time since the last sample actually arrived (0 for
// a healthy path). With Holdover armed, a control cycle decided on a
// stale sample holds the last command instead of updating the PID, and
// a cycle whose staleness exceeds the holdover bound commands the
// fail-safe voltage. With Holdover disarmed, age is ignored.
func (g *Global) StepSensed(now sim.Time, sensedPower float64, age sim.Time, reg *vr.Regulator) bool {
	g.accum += sensedPower
	g.samples++
	if now < g.nextFire {
		return false
	}
	g.nextFire = now + g.cfg.Period
	avg := g.accum / float64(g.samples)
	g.accum, g.samples = 0, 0
	g.lastAvg = avg
	if g.cfg.Holdover.MaxAge > 0 && age > 0 {
		g.cycles++
		if age > g.cfg.Holdover.MaxAge {
			// Past the age bound: the sensing path is gone; drop to the
			// fail-safe floor where the cap holds without measurement.
			vsafe := g.cfg.Holdover.FailSafeV
			if vsafe == 0 {
				vsafe = g.cfg.PID.OutMin
			}
			reg.Command(now, vsafe)
			g.lastCmd = vsafe
			g.failsafeCycles++
			g.inFailsafe = true
			return true
		}
		// Bounded-age holdover: keep the last command, skip the PID so
		// the integrator never winds up on replayed data.
		reg.Command(now, g.lastCmd)
		g.holdoverCycles++
		return true
	}
	if g.inFailsafe {
		// Fresh samples are back; restart the PID cleanly rather than
		// integrating across the outage.
		g.pid.Reset()
		g.inFailsafe = false
	}
	errV := VErr(g.cfg.TargetPower, avg)
	v := g.pid.Update(errV, sim.Seconds(g.cfg.Period))
	reg.Command(now, v)
	g.lastCmd = v
	g.cycles++
	return true
}

// NextFire returns the time of the next control-cycle boundary: the
// first step whose now is >= NextFire takes a control action. The
// adaptive engine ends strides strictly before this boundary.
func (g *Global) NextFire() sim.Time { return g.nextFire }

// AccumulateN replays n steps of window accumulation at a constant
// sensed power without crossing a control-cycle boundary (the caller
// bounds n by NextFire). The repeated additions reproduce StepSensed's
// per-step accumulation bitwise — a closed-form n·sensed would round
// differently.
func (g *Global) AccumulateN(sensedPower float64, n int64) {
	for i := int64(0); i < n; i++ {
		g.accum += sensedPower
	}
	g.samples += n
}

// NotifyOverrideRelease tells the controller an external override (the
// package safety clamp) just released the rail. The PID restarts
// cleanly: while the override held the rail down, the sensed power it
// observed was an artifact of the override, and integrating it would
// carry windup into the recovery.
func (g *Global) NotifyOverrideRelease() { g.pid.Reset() }

// HoldoverCycles returns how many control cycles were decided on held
// (stale but in-bound) samples.
func (g *Global) HoldoverCycles() int64 { return g.holdoverCycles }

// FailsafeCycles returns how many control cycles commanded the
// fail-safe voltage because the sample age bound was exceeded.
func (g *Global) FailsafeCycles() int64 { return g.failsafeCycles }

// LastWindowPower returns the mean power the controller saw over its
// most recent completed control window.
func (g *Global) LastWindowPower() float64 { return g.lastAvg }

// LastCommand returns the most recent commanded voltage.
func (g *Global) LastCommand() float64 { return g.lastCmd }

// Cycles returns the number of control actions taken.
func (g *Global) Cycles() int64 { return g.cycles }

// Reset rewinds controller state for reuse across runs.
func (g *Global) Reset() {
	g.pid.Reset()
	g.nextFire = g.cfg.Period
	g.lastCmd = g.cfg.PID.FeedForward
	g.cycles = 0
	g.accum, g.samples = 0, 0
	g.lastAvg = 0
	g.holdoverCycles = 0
	g.failsafeCycles = 0
	g.inFailsafe = false
}
