package core

import (
	"fmt"

	"hcapp/internal/sim"
	"hcapp/internal/vr"
)

// ClampConfig parameterizes the package-level safety clamp.
type ClampConfig struct {
	// CapW is the hard package power cap, watts. The clamp's contract is
	// that the summed package power never averages above CapW over the
	// limit window, regardless of what the sensing path reports.
	CapW float64
	// Window is the averaging window the clamp's comparator evaluates —
	// power limits are window-defined, so the clamp matches the limit's
	// form instead of punishing sub-window bursts the controller already
	// rides out. Default 20 µs (the package-pin window).
	Window sim.Time
	// DT is the engine timestep (sizes the comparator's ring buffer).
	DT sim.Time
	// TripFrac is the fraction of CapW at which the window comparator
	// engages (default 0.90). It carries the actuation-latency margin:
	// between the trip and the rail actually falling, power keeps rising
	// for one PSN delay plus the VR transition time plus the slew-down
	// time.
	TripFrac float64
	// VSafe is the voltage forced onto the global regulator while
	// tripped (default: the regulator's VMin).
	VSafe float64
	// Hold is the minimum engagement once tripped (default 10 µs):
	// hysteresis so a borderline load doesn't chatter the rail.
	Hold sim.Time
	// VGuard is the rail ceiling after a release (default: the midpoint
	// of the regulator's range). A release does not hand the rail
	// straight back: a controller blinded by a lying sensor would
	// re-command maximum voltage, and a slew-limited rail cannot cut a
	// burst at high voltage inside one limit window. Instead the clamp
	// caps the regulator target at a ceiling that starts at VGuard and
	// ramps up at GuardRamp, so voltage only returns to the top of the
	// range through a span of demonstrated-safe operation.
	VGuard float64
	// GuardRamp is the ceiling's rise rate in V/s (default: the
	// regulator's slew rate / 10).
	GuardRamp float64
}

// withDefaults fills the zero knobs.
func (c ClampConfig) withDefaults() ClampConfig {
	if c.TripFrac == 0 {
		c.TripFrac = 0.90
	}
	if c.Hold == 0 {
		c.Hold = 10 * sim.Microsecond
	}
	if c.Window == 0 {
		c.Window = 20 * sim.Microsecond
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c ClampConfig) Validate() error {
	c = c.withDefaults()
	if c.CapW <= 0 {
		return fmt.Errorf("core: clamp cap %g not positive", c.CapW)
	}
	if c.TripFrac <= 0 || c.TripFrac > 1 {
		return fmt.Errorf("core: clamp trip fraction %g outside (0,1]", c.TripFrac)
	}
	if c.Hold < 0 {
		return fmt.Errorf("core: negative clamp hold %d", c.Hold)
	}
	if c.DT <= 0 {
		return fmt.Errorf("core: clamp needs the engine timestep, got %d", c.DT)
	}
	if c.Window < c.DT {
		return fmt.Errorf("core: clamp window %d below timestep %d", c.Window, c.DT)
	}
	if c.VGuard < 0 {
		return fmt.Errorf("core: negative guard ceiling %g", c.VGuard)
	}
	if c.GuardRamp < 0 {
		return fmt.Errorf("core: negative guard ramp %g", c.GuardRamp)
	}
	return nil
}

// Clamp is the package-level safety net: an independent comparator fed
// by the summed domain-regulator output currents — a measurement path
// separate from the (fallible) global power sensor, the way real power
// stages aggregate their per-phase current monitors. It maintains its
// own sliding-window average of true package power; when that average
// crosses TripFrac × CapW it overrides the global regulator to VSafe,
// re-commanding every step so no controller command can supersede it.
// After the average falls back below the threshold and the hold
// expires, it restores the regulator's pre-trip target (essential for
// fixed-rail systems, where nothing else re-commands the rail). It is
// the mechanism that keeps the cap honest when the sensing path lies
// low, when telemetry is stale, or when the control loop is degraded.
type Clamp struct {
	cfg       ClampConfig
	tripped   bool
	holdUntil sim.Time
	restoreV  float64 // regulator target captured at trip
	trips     int64
	steps     int64 // steps spent engaged

	// Guarded re-entry state: after a release the rail target is capped
	// at ceil, which ramps toward the regulator's VMax.
	guard bool
	ceil  float64

	// Sliding-window comparator state.
	ring []float64
	idx  int
	fill int
	sum  float64
}

// NewClamp builds the clamp.
func NewClamp(cfg ClampConfig) (*Clamp, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Clamp{cfg: cfg, ring: make([]float64, cfg.Window/cfg.DT)}, nil
}

// MustClamp is NewClamp that panics on invalid configuration.
func MustClamp(cfg ClampConfig) *Clamp {
	c, err := NewClamp(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the clamp configuration (defaults resolved).
func (c *Clamp) Config() ClampConfig { return c.cfg }

// Step evaluates the clamp at time now against the true package power
// and, while engaged, forces reg to the safe voltage. It runs after the
// global controller in the engine step so its command always wins.
// Returns whether the clamp is engaged this step.
func (c *Clamp) Step(now sim.Time, truePowerW float64, reg *vr.Regulator) bool {
	// Advance the sliding window.
	c.sum += truePowerW - c.ring[c.idx]
	c.ring[c.idx] = truePowerW
	if c.idx++; c.idx == len(c.ring) {
		c.idx = 0
	}
	if c.fill < len(c.ring) {
		c.fill++
	}
	avg := c.sum / float64(c.fill)

	rcfg := reg.Config()
	if avg >= c.cfg.CapW*c.cfg.TripFrac {
		if !c.tripped {
			c.tripped = true
			c.trips++
			c.restoreV = reg.Commanded()
		}
		c.holdUntil = now + c.cfg.Hold
	} else if c.tripped && now >= c.holdUntil {
		c.tripped = false
		// Guarded re-entry: restore the pre-trip target (a controller
		// re-commands within a cycle anyway; a fixed rail never would)
		// but capped at the guard ceiling.
		c.guard = true
		c.ceil = c.cfg.VGuard
		if c.ceil == 0 {
			c.ceil = rcfg.VMin + 0.5*(rcfg.VMax-rcfg.VMin)
		}
		v := c.restoreV
		if v > c.ceil {
			v = c.ceil
		}
		reg.Command(now, v)
		return false
	}
	if c.tripped {
		vsafe := c.cfg.VSafe
		if vsafe == 0 {
			vsafe = rcfg.VMin
		}
		// Re-command only when a controller re-targeted the rail since
		// the last override: commanding every step would restart the
		// regulator's transition timer forever and freeze the rail at
		// its pre-trip voltage (the domain controller documents the same
		// trap). The comparison is against the pending command, not the
		// landed target — the transition time exceeds the engine step,
		// so the landed target lags by design. The clamp runs after the
		// controller in the engine step, so a rogue command is corrected
		// within the same step.
		if reg.Commanded() != vsafe {
			reg.Command(now, vsafe)
		}
		c.steps++
		return true
	}
	if c.guard {
		ramp := c.cfg.GuardRamp
		if ramp == 0 {
			ramp = rcfg.SlewRate / 10
		}
		c.ceil += ramp * sim.Seconds(c.cfg.DT)
		if c.ceil >= rcfg.VMax {
			c.guard = false
		} else if reg.Commanded() > c.ceil {
			reg.Command(now, c.ceil)
		}
	}
	return false
}

// SteadyAt reports whether Step(now, p, reg) would be a pure window
// rotation with no side effects on the regulator: untripped, no guard
// ramp in flight, the window full and flat at p (so sum += p−p adds
// exactly zero), and the average strictly below the trip threshold.
// While this holds the adaptive engine replays steps with AdvanceN.
func (c *Clamp) SteadyAt(p float64) bool {
	if c.tripped || c.guard || c.fill < len(c.ring) {
		return false
	}
	for _, v := range c.ring {
		if v != p {
			return false
		}
	}
	return c.sum/float64(c.fill) < c.cfg.CapW*c.cfg.TripFrac
}

// AdvanceN replays n steps of a comparator that SteadyAt verified flat:
// each step stores the value already present and rotates the index.
func (c *Clamp) AdvanceN(n int64) {
	c.idx = int((int64(c.idx) + n) % int64(len(c.ring)))
}

// WindowAvg returns the comparator's current sliding-window average.
func (c *Clamp) WindowAvg() float64 {
	if c.fill == 0 {
		return 0
	}
	return c.sum / float64(c.fill)
}

// Engaged reports whether the clamp is currently overriding the rail.
func (c *Clamp) Engaged() bool { return c.tripped }

// Guarding reports whether the post-release ceiling is still active.
func (c *Clamp) Guarding() bool { return c.guard }

// Ceiling returns the current guard ceiling (0 when not guarding).
func (c *Clamp) Ceiling() float64 {
	if !c.guard {
		return 0
	}
	return c.ceil
}

// Trips returns how many times the clamp has engaged.
func (c *Clamp) Trips() int64 { return c.trips }

// EngagedSteps returns how many engine steps the clamp has overridden.
func (c *Clamp) EngagedSteps() int64 { return c.steps }

// Reset rewinds the clamp for another run.
func (c *Clamp) Reset() {
	c.tripped = false
	c.holdUntil = 0
	c.restoreV = 0
	c.trips = 0
	c.steps = 0
	c.guard = false
	c.ceil = 0
	for i := range c.ring {
		c.ring[i] = 0
	}
	c.idx, c.fill, c.sum = 0, 0, 0
}
