// Package telemetry is a stdlib-only metrics subsystem in the shape of a
// Prometheus client library: a Registry of counter, gauge and histogram
// families with labels, rendered in the Prometheus text exposition
// format (version 0.0.4).
//
// It exists so the simulation hot path — the 100 ns engine step, executed
// tens of millions of times per run — can be instrumented without
// measurable slowdown:
//
//   - updates on an obtained handle (*Counter, *Gauge, *Histogram) are
//     single atomic operations, zero allocations;
//   - label resolution (Vec.With) is a sharded hash-map lookup guarded by
//     per-shard RWMutexes, so concurrent jobs publishing under different
//     label sets do not serialize on one lock;
//   - rendering walks a consistent snapshot without stopping writers;
//   - series can be deleted (Vec.Delete, Vec.DeletePartialMatch), so a
//     long-lived server can bound label cardinality by dropping series
//     it retires (e.g. all of an evicted job's metrics).
//
// Typical use:
//
//	reg := telemetry.NewRegistry()
//	power := reg.Gauge("hcapp_domain_power_watts",
//	    "Per-domain power.", "job", "domain")
//	g := power.With("job-1", "cpu") // resolve once, outside the hot loop
//	g.Set(42.0)                     // hot path: one atomic store
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 with atomic load/store/add, stored as IEEE 754
// bits in a uint64.
type atomicFloat struct {
	bits atomic.Uint64
}

func (a *atomicFloat) Load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicFloat) Store(v float64) { a.bits.Store(math.Float64bits(v)) }

func (a *atomicFloat) Add(v float64) {
	for {
		old := a.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Kind is a metric family's type.
type Kind string

// The supported metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// numShards splits each family's series map to spread lock contention
// across concurrently-publishing jobs. Power of two for cheap masking.
const numShards = 16

// shard is one slice of a family's label-set → series map.
type shard struct {
	mu     sync.RWMutex
	series map[string]*series
}

// series is one labelled sample stream inside a family.
type series struct {
	labelValues []string
	val         atomicFloat // counter / gauge value
	hist        *histogram  // non-nil for histogram families
}

// family is one named metric with a fixed label schema.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, sorted, no +Inf
	shards  [numShards]shard
}

// seriesKey joins label values with a separator that cannot appear
// unescaped in a label value boundary. Model byte 0xFF is invalid UTF-8,
// so two different value tuples cannot collide.
func seriesKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, 0xFF)
		}
		b = append(b, v...)
	}
	return string(b)
}

// fnv1a hashes a series key for shard selection.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// with resolves (creating if needed) the series for a label-value tuple.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label value(s), got %d",
			f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	sh := &f.shards[fnv1a(key)&(numShards-1)]
	sh.mu.RLock()
	s := sh.series[key]
	sh.mu.RUnlock()
	if s != nil {
		return s
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s = sh.series[key]; s != nil {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	if f.kind == KindHistogram {
		s.hist = newHistogram(f.buckets)
	}
	if sh.series == nil {
		sh.series = make(map[string]*series)
	}
	sh.series[key] = s
	return s
}

// remove deletes the series for an exact label-value tuple, reporting
// whether it existed.
func (f *family) remove(values []string) bool {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label value(s), got %d",
			f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	sh := &f.shards[fnv1a(key)&(numShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.series[key]; !ok {
		return false
	}
	delete(sh.series, key)
	return true
}

// removeMatching deletes every series whose labels agree with match
// (label name → required value), returning how many were dropped. A
// label name the family does not carry matches nothing.
func (f *family) removeMatching(match map[string]string) int {
	idxs := make([]int, 0, len(match))
	vals := make([]string, 0, len(match))
	for name, v := range match {
		i := -1
		for k, l := range f.labels {
			if l == name {
				i = k
				break
			}
		}
		if i < 0 {
			return 0
		}
		idxs = append(idxs, i)
		vals = append(vals, v)
	}
	n := 0
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		for key, s := range sh.series {
			matched := true
			for k, li := range idxs {
				if s.labelValues[li] != vals[k] {
					matched = false
					break
				}
			}
			if matched {
				delete(sh.series, key)
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// snapshot returns the family's series sorted by label values.
func (f *family) snapshot() []*series {
	var out []*series
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			out = append(out, s)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].labelValues, out[j].labelValues
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// Registry holds metric families and renders them for scraping.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string // sorted family names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a family or returns the existing one after a schema
// check. Re-registering with a different kind or label set is a
// programming error and panics, mirroring prometheus/client_golang.
func (r *Registry) register(name, help string, kind Kind, buckets []float64, labels []string) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on metric %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
	}
	r.families[name] = f
	i := sort.SearchStrings(r.names, name)
	r.names = append(r.names, "")
	copy(r.names[i+1:], r.names[i:])
	r.names[i] = name
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" { // "le" is reserved for histogram buckets
		return false
	}
	for i, c := range s {
		letter := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// CounterVec is a family of monotonically increasing counters.
type CounterVec struct{ f *family }

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, nil, labels)}
}

// With resolves the counter for a label-value tuple. Resolve once and
// keep the handle: updates on the handle are allocation-free.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return (*Counter)(v.f.with(labelValues))
}

// Delete drops the series for an exact label-value tuple, reporting
// whether it existed. Previously resolved handles keep working but
// update a detached series that never renders again; a later With for
// the same tuple starts a fresh series at zero.
func (v *CounterVec) Delete(labelValues ...string) bool { return v.f.remove(labelValues) }

// DeletePartialMatch drops every series whose labels agree with match
// (label name → required value), returning how many were dropped —
// e.g. all of a job's series across its label cardinality. See Delete
// for the effect on outstanding handles.
func (v *CounterVec) DeletePartialMatch(match map[string]string) int {
	return v.f.removeMatching(match)
}

// Counter is one labelled counter series.
type Counter series

// Inc adds 1.
func (c *Counter) Inc() { c.val.Add(1) }

// Add adds v; negative v panics (counters are monotonic).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("telemetry: counter decrease")
	}
	c.val.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.val.Load() }

// GaugeVec is a family of gauges.
type GaugeVec struct{ f *family }

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, nil, labels)}
}

// With resolves the gauge for a label-value tuple.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return (*Gauge)(v.f.with(labelValues))
}

// Delete drops the series for an exact label-value tuple; see
// CounterVec.Delete for semantics.
func (v *GaugeVec) Delete(labelValues ...string) bool { return v.f.remove(labelValues) }

// DeletePartialMatch drops every series whose labels agree with match;
// see CounterVec.DeletePartialMatch for semantics.
func (v *GaugeVec) DeletePartialMatch(match map[string]string) int {
	return v.f.removeMatching(match)
}

// Gauge is one labelled gauge series.
type Gauge series

// Set stores v — one atomic store.
func (g *Gauge) Set(v float64) { g.val.Store(v) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { g.val.Add(v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.val.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.val.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.val.Load() }
