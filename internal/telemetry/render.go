package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label
// values, histogram buckets cumulated with the implicit +Inf bucket.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.names))
	for _, n := range r.names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		series := f.snapshot()
		if len(series) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range series {
			if f.kind == KindHistogram {
				writeHistogram(bw, f, s)
				continue
			}
			writeSample(bw, f.name, f.labels, s.labelValues, "", "", s.val.Load())
		}
	}
	return bw.Flush()
}

// Text renders the registry to a string (tests, debugging).
func (r *Registry) Text() string {
	var b strings.Builder
	r.WriteText(&b) // strings.Builder never errors
	return b.String()
}

// Handler returns an http.Handler serving the registry in text
// exposition format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

func writeHistogram(w io.Writer, f *family, s *series) {
	cum := 0.0
	for i, ub := range s.hist.upper {
		cum += s.hist.counts[i].Load()
		writeSample(w, f.name+"_bucket", f.labels, s.labelValues, "le", formatFloat(ub), cum)
	}
	cum += s.hist.counts[len(s.hist.upper)].Load()
	writeSample(w, f.name+"_bucket", f.labels, s.labelValues, "le", "+Inf", cum)
	writeSample(w, f.name+"_sum", f.labels, s.labelValues, "", "", s.hist.sum.Load())
	writeSample(w, f.name+"_count", f.labels, s.labelValues, "", "", s.hist.count.Load())
}

// writeSample emits one exposition line; extraK/extraV append a trailing
// label (the histogram "le").
func writeSample(w io.Writer, name string, labels, values []string, extraK, extraV string, val float64) {
	io.WriteString(w, name)
	if len(labels) > 0 || extraK != "" {
		io.WriteString(w, "{")
		for i, l := range labels {
			if i > 0 {
				io.WriteString(w, ",")
			}
			// %q escapes backslash, quote and newline — exactly the
			// characters the exposition format requires escaping.
			fmt.Fprintf(w, "%s=%q", l, values[i])
		}
		if extraK != "" {
			if len(labels) > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%s=%q", extraK, extraV)
		}
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, formatFloat(val))
	io.WriteString(w, "\n")
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
