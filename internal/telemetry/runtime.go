package telemetry

import "runtime"

// RuntimeMetrics publishes Go runtime health — goroutine count, heap
// occupancy, GC activity — into a registry. The values are refreshed
// at scrape time (hcapp-serve wraps its /metrics handler with Refresh)
// rather than on a background ticker: runtime.ReadMemStats costs a
// brief stop-the-world, so it should run exactly as often as someone
// is looking, and the reading is exact at every scrape.
type RuntimeMetrics struct {
	goroutines *Gauge
	heapAlloc  *Gauge
	heapSys    *Gauge
	gcPause    *Gauge
	gcCount    *Gauge
}

// NewRuntimeMetrics registers the runtime families on reg.
func NewRuntimeMetrics(reg *Registry) *RuntimeMetrics {
	return &RuntimeMetrics{
		goroutines: reg.Gauge("hcapp_go_goroutines",
			"Live goroutines at scrape time.").With(),
		heapAlloc: reg.Gauge("hcapp_go_heap_alloc_bytes",
			"Heap bytes allocated and still in use at scrape time.").With(),
		heapSys: reg.Gauge("hcapp_go_heap_sys_bytes",
			"Heap bytes obtained from the OS.").With(),
		gcPause: reg.Gauge("hcapp_go_gc_pause_seconds_total",
			"Cumulative GC stop-the-world pause time (monotonic).").With(),
		gcCount: reg.Gauge("hcapp_go_gcs_total",
			"Completed GC cycles (monotonic).").With(),
	}
}

// Refresh re-reads the runtime and republishes every gauge.
func (m *RuntimeMetrics) Refresh() {
	if m == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.goroutines.Set(float64(runtime.NumGoroutine()))
	m.heapAlloc.Set(float64(ms.HeapAlloc))
	m.heapSys.Set(float64(ms.HeapSys))
	m.gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
	m.gcCount.Set(float64(ms.NumGC))
}
