package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the sample name (for histograms, the _bucket/_sum/_count
	// expansion, not the family name).
	Name string
	// Labels holds the label pairs in order of appearance (including a
	// histogram's "le").
	Labels [][2]string
	Value  float64
}

// Label returns the value of the named label, or "".
func (s Sample) Label(name string) string {
	for _, kv := range s.Labels {
		if kv[0] == name {
			return kv[1]
		}
	}
	return ""
}

// ParseText parses Prometheus text exposition format — the subset this
// package renders plus anything structurally equivalent — and returns
// the samples in order. It is a validating parser: malformed lines,
// samples without a preceding TYPE, and TYPE/sample name mismatches are
// errors. It exists so tests (and Go clients of hcapp-serve) can consume
// /metrics without a Prometheus dependency.
func ParseText(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []Sample
	types := map[string]Kind{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				if len(fields) < 3 {
					return nil, fmt.Errorf("telemetry: line %d: truncated %s comment", lineNo, fields[1])
				}
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						return nil, fmt.Errorf("telemetry: line %d: TYPE wants name and kind", lineNo)
					}
					k := Kind(fields[3])
					if k != KindCounter && k != KindGauge && k != KindHistogram && k != "summary" && k != "untyped" {
						return nil, fmt.Errorf("telemetry: line %d: unknown metric type %q", lineNo, fields[3])
					}
					types[fields[2]] = k
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
		if familyOf(s.Name, types) == "" {
			return nil, fmt.Errorf("telemetry: line %d: sample %q without a # TYPE declaration", lineNo, s.Name)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// familyOf maps a sample name back to its declared family, accounting
// for histogram suffix expansion.
func familyOf(name string, types map[string]Kind) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == KindHistogram {
			return base
		}
	}
	return ""
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value on sample line %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		if s.Labels, err = parseLabels(rest[1:end]); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	// A trailing timestamp (one extra integer field) is legal in the
	// format; this package never emits one but tolerates it.
	if len(fields) != 1 && len(fields) != 2 {
		return s, fmt.Errorf("want value [timestamp] after name in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	case "NaN":
		return strconv.ParseFloat("nan", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(s string) ([][2]string, error) {
	var out [][2]string
	for s != "" {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label pair missing '=' in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if name != "le" && !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = strings.TrimSpace(s[eq+1:])
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("label value for %q not quoted", name)
		}
		// Find the closing quote, honouring backslash escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		val, err := unescapeLabel(s[1:end])
		if err != nil {
			return nil, fmt.Errorf("label %q: %w", name, err)
		}
		out = append(out, [2]string{name, val})
		s = strings.TrimSpace(s[end+1:])
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

func unescapeLabel(s string) (string, error) {
	if !strings.Contains(s, `\`) {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("dangling backslash")
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("unknown escape \\%c", s[i])
		}
	}
	return b.String(), nil
}

// GatherMap flattens parsed samples into a map keyed by
// "name{k=v,...}" (labels sorted by name) — convenient for asserting on
// specific series in tests.
func GatherMap(samples []Sample) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		labels := append([][2]string(nil), s.Labels...)
		sort.Slice(labels, func(i, j int) bool { return labels[i][0] < labels[j][0] })
		var b strings.Builder
		b.WriteString(s.Name)
		if len(labels) > 0 {
			b.WriteString("{")
			for i, kv := range labels {
				if i > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, "%s=%s", kv[0], kv[1])
			}
			b.WriteString("}")
		}
		out[b.String()] = s.Value
	}
	return out
}
