package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestHistogramQuantile: PromQL-compatible linear interpolation, so
// in-process consumers (the adaptive hedge delay, the queue-wait
// ordering test) agree with histogram_quantile on dashboards.
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_test_seconds", "test", []float64{0.1, 1, 10}).With()

	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram quantile = %g, want NaN", got)
	}

	// 10 samples in (0.1, 1]: the median interpolates halfway through
	// that bucket's width.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if got, want := h.Quantile(0.5), 0.1+0.9*0.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("p50 = %g, want %g", got, want)
	}
	// All samples are ≤ 1, so p100 is that bucket's upper bound.
	if got := h.Quantile(1); got != 1 {
		t.Fatalf("p100 = %g, want 1", got)
	}

	// A quantile landing in +Inf clamps to the highest finite bound.
	h.Observe(1e6)
	if got := h.Quantile(0.999); got != 10 {
		t.Fatalf("+Inf quantile = %g, want clamp to 10", got)
	}

	for _, q := range []float64{0, -1, 1.5, math.NaN()} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Fatalf("Quantile(%g) = %g, want NaN", q, got)
		}
	}
}

// TestHistogramQuantileSkewedMix mirrors the adaptive-hedge scenario:
// a few fast samples must not drag a p90 dominated by slow ones.
func TestHistogramQuantileSkewedMix(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("mix_test_seconds", "test", DefBuckets()).With()
	for i := 0; i < 10; i++ {
		h.Observe(0.1)
	}
	for i := 0; i < 64; i++ {
		h.Observe(1.0)
	}
	p90 := h.Quantile(0.9)
	if p90 < 0.5 || p90 > 1.0 {
		t.Fatalf("p90 = %g, want within the slow bucket (0.5, 1.0]", p90)
	}
}

// TestRuntimeMetrics: Refresh publishes live runtime gauges into the
// registry text, and a nil receiver no-ops.
func TestRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	rt := NewRuntimeMetrics(reg)
	rt.Refresh()

	samples, err := ParseText(strings.NewReader(reg.Text()))
	if err != nil {
		t.Fatal(err)
	}
	m := GatherMap(samples)
	if got := m["hcapp_go_goroutines"]; got < 1 {
		t.Fatalf("hcapp_go_goroutines = %g, want >= 1", got)
	}
	if got := m["hcapp_go_heap_alloc_bytes"]; got <= 0 {
		t.Fatalf("hcapp_go_heap_alloc_bytes = %g, want > 0", got)
	}
	if got := m["hcapp_go_heap_sys_bytes"]; got <= 0 {
		t.Fatalf("hcapp_go_heap_sys_bytes = %g, want > 0", got)
	}
	if _, ok := m["hcapp_go_gcs_total"]; !ok {
		t.Fatal("hcapp_go_gcs_total missing from scrape")
	}

	var nilRT *RuntimeMetrics
	nilRT.Refresh()
}
