package telemetry

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseText drives the exposition parser with arbitrary input. The
// parser fronts every /metrics response a test or Go client consumes,
// so it must reject garbage with an error — never a panic, a hang, or a
// silently accepted malformed sample. Run longer with
//
//	go test -fuzz=FuzzParseText ./internal/telemetry
//
// (scripts/ci.sh runs a short -fuzztime pass on every build).
func FuzzParseText(f *testing.F) {
	// Seed corpus: the shapes this package itself renders (see
	// docs/METRICS.md) plus known edge and error cases.
	seeds := []string{
		"# HELP hcapp_jobs_submitted_total Jobs accepted by POST /v1/jobs.\n" +
			"# TYPE hcapp_jobs_submitted_total counter\n" +
			"hcapp_jobs_submitted_total 3\n",
		"# TYPE hcapp_package_power_watts gauge\n" +
			"hcapp_package_power_watts{job=\"a1b2\"} 85.4\n",
		"# TYPE hcapp_jobs_failed_total counter\n" +
			"hcapp_jobs_failed_total{reason=\"panic\"} 1\n" +
			"hcapp_jobs_failed_total{reason=\"timeout\"} 2\n",
		"# TYPE hcapp_job_duration_seconds histogram\n" +
			"hcapp_job_duration_seconds_bucket{le=\"0.01\"} 0\n" +
			"hcapp_job_duration_seconds_bucket{le=\"+Inf\"} 2\n" +
			"hcapp_job_duration_seconds_sum 1.5\n" +
			"hcapp_job_duration_seconds_count 2\n",
		"# TYPE m gauge\nm{l=\"esc\\\\aped \\\"quote\\\" new\\nline\"} -7e-3\n",
		"# TYPE m gauge\nm NaN\nm +Inf\nm -Inf\n",
		"# TYPE m gauge\nm 1 1700000000\n",  // trailing timestamp
		"m_without_type 1\n",                // error: no TYPE
		"# TYPE m gauge\nm{l=\"open 1\n",    // error: unterminated value
		"# TYPE m gauge\nm{l=broken} 1\n",   // error: unquoted value
		"# TYPE m bogus\n",                  // error: unknown kind
		"# TYPE m gauge\n9starts_digit 1\n", // error: bad name
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, input string) {
		samples, err := ParseText(strings.NewReader(input))
		if err != nil {
			return // rejected input: fine, as long as it never panics
		}
		// Accepted input must satisfy the parser's own documented
		// invariants.
		for _, s := range samples {
			if !validMetricName(s.Name) && familyOf(s.Name, map[string]Kind{}) == "" {
				// Histogram expansions carry suffixes; the base name must
				// still be a valid metric name.
				base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(
					s.Name, "_bucket"), "_sum"), "_count")
				if !validMetricName(base) {
					t.Fatalf("accepted invalid sample name %q", s.Name)
				}
			}
			for _, kv := range s.Labels {
				if kv[0] != "le" && !validLabelName(kv[0]) {
					t.Fatalf("accepted invalid label name %q", kv[0])
				}
				if !utf8.ValidString(kv[1]) && utf8.ValidString(input) {
					t.Fatalf("label value %q not UTF-8 for UTF-8 input", kv[1])
				}
			}
			_ = s.Label("job")
		}
		// GatherMap must handle any accepted sample set.
		if m := GatherMap(samples); len(m) > len(samples) {
			t.Fatalf("GatherMap grew: %d keys from %d samples", len(m), len(samples))
		}
	})
}
