package telemetry

import (
	"fmt"
	"math"
	"sort"
)

// histogram is the state behind one histogram series: per-bucket atomic
// counters (cumulated only at render time), plus sum and count. Observe
// is wait-free for the bucket/count increments and lock-free (CAS) for
// the float sum.
type histogram struct {
	// upper[i] is the inclusive upper bound of bucket i; the final
	// +Inf bucket is implicit at index len(upper).
	upper  []float64
	counts []atomicFloat // len(upper)+1, integral values
	sum    atomicFloat
	count  atomicFloat
}

func newHistogram(upper []float64) *histogram {
	return &histogram{upper: upper, counts: make([]atomicFloat, len(upper)+1)}
}

// DefBuckets mirrors the Prometheus default buckets: suitable for
// latencies in seconds from ~1 ms to ~10 s.
func DefBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// HistogramVec is a family of histograms with shared buckets.
type HistogramVec struct{ f *family }

// Histogram registers (or fetches) a histogram family. Buckets are upper
// bounds; they are sorted and deduplicated, and the +Inf bucket is
// implicit. Nil or empty buckets fall back to DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets()
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	dedup := b[:1]
	for _, v := range b[1:] {
		if v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	f := r.register(name, help, KindHistogram, dedup, labels)
	if len(f.buckets) != len(dedup) {
		panic(fmt.Sprintf("telemetry: histogram %q re-registered with different buckets", name))
	}
	for i := range dedup {
		if f.buckets[i] != dedup[i] {
			panic(fmt.Sprintf("telemetry: histogram %q re-registered with different buckets", name))
		}
	}
	return &HistogramVec{f: f}
}

// With resolves the histogram for a label-value tuple. Resolve once and
// keep the handle: Observe on the handle is allocation-free.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return (*Histogram)(v.f.with(labelValues))
}

// Delete drops the series for an exact label-value tuple; see
// CounterVec.Delete for semantics.
func (v *HistogramVec) Delete(labelValues ...string) bool { return v.f.remove(labelValues) }

// DeletePartialMatch drops every series whose labels agree with match;
// see CounterVec.DeletePartialMatch for semantics.
func (v *HistogramVec) DeletePartialMatch(match map[string]string) int {
	return v.f.removeMatching(match)
}

// Histogram is one labelled histogram series.
type Histogram series

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	st := h.hist
	// Binary search for the first bucket whose upper bound admits v.
	lo, hi := 0, len(st.upper)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if st.upper[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	st.counts[lo].Add(1)
	st.sum.Add(v)
	st.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() float64 { return h.hist.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.hist.sum.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts with the same linear within-bucket interpolation PromQL's
// histogram_quantile applies, so in-process consumers (the adaptive
// hedge threshold, the queue-wait ordering test) and dashboards agree
// on the estimate. It returns NaN on an empty histogram; a quantile
// landing in the +Inf bucket clamps to the highest finite bound.
//
// The snapshot is not atomic across buckets — concurrent Observes can
// skew a read by a sample, which is noise at the call sites' scale.
func (h *Histogram) Quantile(q float64) float64 {
	st := h.hist
	total := st.count.Load()
	if total == 0 || math.IsNaN(q) || q <= 0 || q > 1 {
		return math.NaN()
	}
	target := q * total
	cum := 0.0
	for i := range st.counts {
		n := st.counts[i].Load()
		if cum+n < target {
			cum += n
			continue
		}
		if i == len(st.upper) {
			// +Inf bucket: no finite upper bound to interpolate toward.
			if len(st.upper) == 0 {
				return math.NaN()
			}
			return st.upper[len(st.upper)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = st.upper[i-1]
		}
		if n == 0 {
			return st.upper[i]
		}
		return lower + (st.upper[i]-lower)*(target-cum)/n
	}
	return math.NaN()
}
