package telemetry

import "testing"

// The hot-path contract: once a handle is resolved with Vec.With, every
// update is a handful of atomic operations and zero heap allocations.
// The engine step loop relies on this — it calls Set/Inc/Observe tens of
// millions of times per simulated run.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("steps_total", "", "job").With("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if allocs := testing.AllocsPerRun(1000, c.Inc); allocs != 0 {
		b.Fatalf("Counter.Inc allocates %.0f/op, want 0", allocs)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("power_watts", "", "job", "domain").With("bench", "cpu")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
	if allocs := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); allocs != 0 {
		b.Fatalf("Gauge.Set allocates %.0f/op, want 0", allocs)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("job_seconds", "", ExpBuckets(0.001, 2, 16)).With()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 0.001)
	}
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.042) }); allocs != 0 {
		b.Fatalf("Histogram.Observe allocates %.0f/op, want 0", allocs)
	}
}

// BenchmarkCounterIncParallel exercises contention on one series from
// all procs — the CAS loop under fire.
func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("steps_total", "").With()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkVecWith measures the label-resolution slow path (the one to
// keep out of hot loops).
func BenchmarkVecWith(b *testing.B) {
	vec := NewRegistry().Gauge("power_watts", "", "job", "domain")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vec.With("job-1", "cpu").Set(1)
	}
}
