package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	reg := NewRegistry()
	vec := reg.Counter("jobs_total", "Jobs.", "state")
	done := vec.With("done")
	failed := vec.With("failed")
	done.Inc()
	done.Add(2)
	failed.Inc()
	if got := done.Value(); got != 3 {
		t.Fatalf("done = %g, want 3", got)
	}
	if got := failed.Value(); got != 1 {
		t.Fatalf("failed = %g, want 1", got)
	}
	if vec.With("done") != done {
		t.Fatal("With not idempotent")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("c_total", "").With().Add(-1)
}

func TestGaugeBasics(t *testing.T) {
	g := NewRegistry().Gauge("power_watts", "Power.", "domain").With("cpu")
	g.Set(42.5)
	g.Add(-2.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 40 {
		t.Fatalf("gauge = %g, want 40", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("lat_seconds", "", []float64{1, 2, 4}).With()
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %g, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %g, want 106", h.Sum())
	}
	st := (*series)(h).hist
	want := []float64{2, 1, 1, 1} // (-inf,1], (1,2], (2,4], (4,+inf)
	for i, w := range want {
		if got := st.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %g, want %g", i, got, w)
		}
	}
}

func TestSchemaMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m_total", "", "a")
	for _, tc := range []func(){
		func() { reg.Gauge("m_total", "", "a") },
		func() { reg.Counter("m_total", "", "b") },
		func() { reg.Counter("m_total", "", "a", "b") },
		func() { reg.Counter("m_total", "").With("x") },
		func() { reg.Counter("bad name", "") },
		func() { reg.Counter("ok_total", "", "bad label") },
		func() { reg.Histogram("h", "", []float64{1}, "le") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("schema violation did not panic")
				}
			}()
			tc()
		}()
	}
}

func TestRenderAndParseRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hcapp_steps_total", "Engine steps.", "job")
	c.With("j1").Add(100)
	c.With("j2").Add(50)
	g := reg.Gauge("hcapp_domain_power_watts", "Per-domain power.", "job", "domain")
	g.With("j1", "cpu").Set(33.25)
	g.With("j1", `we"ird\na"me`).Set(1)
	h := reg.Histogram("hcapp_job_seconds", "Job wall time.", []float64{0.1, 1})
	h.With().Observe(0.05)
	h.With().Observe(0.5)
	h.With().Observe(30)

	text := reg.Text()
	for _, want := range []string{
		"# TYPE hcapp_steps_total counter",
		"# TYPE hcapp_domain_power_watts gauge",
		"# TYPE hcapp_job_seconds histogram",
		`hcapp_steps_total{job="j1"} 100`,
		`hcapp_domain_power_watts{job="j1",domain="cpu"} 33.25`,
		`hcapp_job_seconds_bucket{le="+Inf"} 3`,
		"hcapp_job_seconds_sum 30.55",
		"hcapp_job_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered text missing %q:\n%s", want, text)
		}
	}

	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, text)
	}
	m := GatherMap(samples)
	if m["hcapp_steps_total{job=j2}"] != 50 {
		t.Fatalf("parsed j2 = %g, want 50", m["hcapp_steps_total{job=j2}"])
	}
	if m["hcapp_domain_power_watts{domain=cpu,job=j1}"] != 33.25 {
		t.Fatalf("parsed power = %g", m["hcapp_domain_power_watts{domain=cpu,job=j1}"])
	}
	if m[`hcapp_domain_power_watts{domain=we"ird\na"me,job=j1}`] != 1 {
		t.Fatalf("escaped label did not round-trip: %v", m)
	}
	if m["hcapp_job_seconds_bucket{le=0.1}"] != 1 || m["hcapp_job_seconds_bucket{le=1}"] != 2 {
		t.Fatalf("cumulative buckets wrong: %v", m)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, text := range []string{
		"orphan_sample 1\n",                             // no TYPE
		"# TYPE x counter\nx nope\n",                    // bad value
		"# TYPE x counter\nx{a=\"unterminated} 1\n",     // bad labels
		"# TYPE x counter\nx{a=unquoted} 1\n",           // unquoted value
		"# TYPE x wat\nx 1\n",                           // unknown kind
		"# TYPE x counter\nx 1 2 3\n",                   // trailing junk
		"# TYPE x histogram\nx_bucket{le=\"+Inf\"} z\n", // bad bucket value
	} {
		if _, err := ParseText(strings.NewReader(text)); err == nil {
			t.Fatalf("ParseText accepted malformed input %q", text)
		}
	}
}

func TestParseToleratesTimestamp(t *testing.T) {
	samples, err := ParseText(strings.NewReader("# TYPE x counter\nx 1 1700000000\n"))
	if err != nil || len(samples) != 1 || samples[0].Value != 1 {
		t.Fatalf("timestamped sample: %v %v", samples, err)
	}
}

func TestSpecialValues(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("inf_gauge", "").With().Set(math.Inf(1))
	reg.Gauge("nan_gauge", "").With().Set(math.NaN())
	samples, err := ParseText(strings.NewReader(reg.Text()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	m := GatherMap(samples)
	if !math.IsInf(m["inf_gauge"], 1) {
		t.Fatalf("inf_gauge = %g", m["inf_gauge"])
	}
	if !math.IsNaN(m["nan_gauge"]) {
		t.Fatalf("nan_gauge = %g", m["nan_gauge"])
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines — the
// -race CI gate proves the sharded lookup and atomic value paths are
// data-race free, and the final counts prove no lost updates.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	vec := reg.Counter("hits_total", "", "worker")
	gvec := reg.Gauge("depth", "", "worker")
	hvec := reg.Histogram("obs_seconds", "", []float64{0.5}, "worker")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			c := vec.With(name)
			g := gvec.With(name)
			h := hvec.With(name)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 2))
				if i%100 == 0 { // concurrent scrape while writing
					reg.Text()
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		name := string(rune('a' + w))
		if got := vec.With(name).Value(); got != perWorker {
			t.Fatalf("worker %s count = %g, want %d", name, got, perWorker)
		}
		if got := hvec.With(name).Count(); got != perWorker {
			t.Fatalf("worker %s observations = %g, want %d", name, got, perWorker)
		}
	}
}

func TestDeleteSeries(t *testing.T) {
	reg := NewRegistry()
	vec := reg.Gauge("power_watts", "", "job", "domain")
	vec.With("j1", "cpu").Set(1)
	vec.With("j1", "gpu").Set(2)
	vec.With("j2", "cpu").Set(3)
	cvec := reg.Counter("steps_total", "", "job")
	cvec.With("j1").Add(9)
	hvec := reg.Histogram("lat_seconds", "", []float64{1}, "job")
	hvec.With("j1").Observe(0.5)

	if !vec.Delete("j1", "cpu") {
		t.Fatal("Delete missed an existing series")
	}
	if vec.Delete("j1", "cpu") {
		t.Fatal("double Delete reported success")
	}
	if n := vec.DeletePartialMatch(map[string]string{"job": "j1"}); n != 1 {
		t.Fatalf("DeletePartialMatch dropped %d series, want 1", n)
	}
	if n := vec.DeletePartialMatch(map[string]string{"node": "x"}); n != 0 {
		t.Fatalf("label the family does not carry matched %d series", n)
	}
	if n := cvec.DeletePartialMatch(map[string]string{"job": "j1"}); n != 1 {
		t.Fatalf("counter DeletePartialMatch dropped %d, want 1", n)
	}
	if !hvec.Delete("j1") {
		t.Fatal("histogram Delete missed an existing series")
	}

	text := reg.Text()
	if strings.Contains(text, `job="j1"`) {
		t.Fatalf("deleted series still rendered:\n%s", text)
	}
	if !strings.Contains(text, `power_watts{job="j2",domain="cpu"} 3`) {
		t.Fatalf("unrelated series lost:\n%s", text)
	}
	// Re-creating a deleted tuple starts a fresh series at zero.
	if v := vec.With("j1", "cpu").Value(); v != 0 {
		t.Fatalf("recreated series = %g, want 0", v)
	}
}

// TestConcurrentDelete races With/update, Delete and rendering — the
// -race CI gate proves series removal is safe against the hot path.
func TestConcurrentDelete(t *testing.T) {
	reg := NewRegistry()
	vec := reg.Counter("hits_total", "", "job")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				id := string(rune('a' + (i+w)%8))
				vec.With(id).Inc()
				switch i % 9 {
				case 3:
					vec.Delete(id)
				case 6:
					vec.DeletePartialMatch(map[string]string{"job": id})
				}
				if i%100 == 0 {
					reg.Text()
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
