package pid

import (
	"math"
	"testing"
)

// delayedPlant is a first-order lag plus a transport delay in steps —
// the classic FOPDT process.
type delayedPlant struct {
	lag  firstOrderPlant
	line []float64
	head int
}

func newDelayedPlant(k, tau float64, delaySteps int) *delayedPlant {
	return &delayedPlant{
		lag:  firstOrderPlant{k: k, tau: tau},
		line: make([]float64, delaySteps+1),
	}
}

func (p *delayedPlant) Step(u, dt float64) float64 {
	p.line[p.head] = u
	p.head = (p.head + 1) % len(p.line)
	return p.lag.Step(p.line[p.head], dt)
}

func TestStepResponseShape(t *testing.T) {
	p := &firstOrderPlant{k: 2, tau: 0.3}
	resp := StepResponse(p, 0, 1, 0.01, 100, 500)
	if len(resp) != 500 {
		t.Fatalf("response length %d", len(resp))
	}
	if resp[0] > resp[len(resp)-1] {
		t.Fatal("step response should rise")
	}
	final := resp[len(resp)-1]
	if math.Abs(final-2) > 0.05 {
		t.Fatalf("final value %g, want ~2 (gain)", final)
	}
}

func TestEstimateFOPDT(t *testing.T) {
	p := newDelayedPlant(2.0, 0.3, 20) // 0.2 s dead time at dt=0.01
	resp := StepResponse(p, 0, 1, 0.01, 400, 800)
	m, err := EstimateFOPDT(resp, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.K-2) > 0.1 {
		t.Errorf("gain estimate %g, want ~2", m.K)
	}
	if math.Abs(m.Tau-0.3) > 0.1 {
		t.Errorf("tau estimate %g, want ~0.3", m.Tau)
	}
	if math.Abs(m.Theta-0.2) > 0.1 {
		t.Errorf("dead-time estimate %g, want ~0.2", m.Theta)
	}
}

func TestEstimateFOPDTErrors(t *testing.T) {
	if _, err := EstimateFOPDT([]float64{1, 2}, 1, 0.01); err == nil {
		t.Fatal("short response accepted")
	}
	if _, err := EstimateFOPDT([]float64{1, 2, 3, 4}, 0, 0.01); err == nil {
		t.Fatal("zero actuator step accepted")
	}
	if _, err := EstimateFOPDT([]float64{1, 1, 1, 1}, 1, 0.01); err != ErrFlatResponse {
		t.Fatal("flat response should return ErrFlatResponse")
	}
}

func TestEstimateFOPDTFallingResponse(t *testing.T) {
	p := &firstOrderPlant{k: 2, tau: 0.3}
	// Negative step: response falls.
	StepResponse(p, 1, 1, 0.01, 400, 1) // settle at 2
	resp := StepResponse(p, 1, 0, 0.01, 0, 600)
	m, err := EstimateFOPDT(resp, -1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.K-2) > 0.15 {
		t.Errorf("falling-response gain %g, want ~2", m.K)
	}
}

func TestTuneIMC(t *testing.T) {
	cfg, err := TuneIMC(FOPDT{K: 2, Tau: 0.3, Theta: 0.05}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.KP <= 0 || cfg.KI <= 0 {
		t.Fatalf("non-positive gains: %+v", cfg)
	}
	if cfg.KD != 0 {
		t.Fatal("IMC PI tune should leave KD at zero (paper §3.1)")
	}
	// A more aggressive lambda gives a larger KP.
	fast, _ := TuneIMC(FOPDT{K: 2, Tau: 0.3, Theta: 0.05}, 0.5)
	if fast.KP <= cfg.KP {
		t.Fatal("smaller lambda should raise KP")
	}
}

func TestTuneIMCErrors(t *testing.T) {
	if _, err := TuneIMC(FOPDT{K: 0, Tau: 1}, 1); err == nil {
		t.Fatal("zero gain accepted")
	}
	if _, err := TuneIMC(FOPDT{K: 1, Tau: 0}, 1); err == nil {
		t.Fatal("zero tau accepted")
	}
	if _, err := TuneIMC(FOPDT{K: 1, Tau: 1}, 0); err == nil {
		t.Fatal("zero lambda accepted")
	}
}

func TestTuneIMCClosedLoop(t *testing.T) {
	// End-to-end: identify, tune, and verify the loop settles.
	p := newDelayedPlant(2.0, 0.3, 10)
	resp := StepResponse(p, 0, 1, 0.01, 400, 800)
	m, err := EstimateFOPDT(resp, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := TuneIMC(m, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.OutMin, cfg.OutMax = -100, 100
	c := MustNew(cfg)
	plant := newDelayedPlant(2.0, 0.3, 10)
	setpoint := 5.0
	y := 0.0
	for i := 0; i < 4000; i++ {
		u := c.Update(setpoint-y, 0.01)
		y = plant.Step(u, 0.01)
	}
	if math.Abs(y-setpoint) > 0.25 {
		t.Fatalf("tuned loop settled at %g, want %g", y, setpoint)
	}
}

func TestUltimateGainFindsOscillation(t *testing.T) {
	newP := func() Plant { return newDelayedPlant(2.0, 0.2, 30) }
	ku, tu, err := UltimateGain(newP, 5, 0, -100, 100, 0.01, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if ku <= 0 {
		t.Fatalf("ultimate gain %g", ku)
	}
	if tu <= 0 {
		t.Fatalf("ultimate period %g", tu)
	}
	cfg, err := TuneZN(ku, tu)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.KP <= 0 || cfg.KI <= 0 {
		t.Fatalf("ZN gains %+v", cfg)
	}
}

func TestTuneZNErrors(t *testing.T) {
	if _, err := TuneZN(0, 1); err == nil {
		t.Fatal("zero ku accepted")
	}
	if _, err := TuneZN(1, 0); err == nil {
		t.Fatal("zero tu accepted")
	}
}

func TestPlantFunc(t *testing.T) {
	called := false
	p := PlantFunc(func(u, dt float64) float64 {
		called = true
		return u * 2
	})
	if got := p.Step(3, 0.1); got != 6 || !called {
		t.Fatalf("PlantFunc.Step = %g", got)
	}
}

func TestCrossTime(t *testing.T) {
	resp := []float64{0, 1, 2, 3, 4}
	if got := crossTime(resp, 2.5, 1); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("crossTime = %g, want 2.5", got)
	}
	if got := crossTime(resp, 10, 1); !math.IsNaN(got) {
		t.Fatalf("unreachable level should be NaN, got %g", got)
	}
	falling := []float64{4, 3, 2, 1, 0}
	if got := crossTime(falling, 1.5, 1); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("falling crossTime = %g, want 2.5", got)
	}
}

func TestPeakToPeakAndOscPeriod(t *testing.T) {
	if got := peakToPeak(nil); got != 0 {
		t.Fatalf("empty peakToPeak = %g", got)
	}
	if got := peakToPeak([]float64{1, 5, 2}); got != 4 {
		t.Fatalf("peakToPeak = %g", got)
	}
	// A sine with period 20 samples at dt=0.1 → period 2.0 s.
	var xs []float64
	for i := 0; i < 200; i++ {
		xs = append(xs, math.Sin(2*math.Pi*float64(i)/20))
	}
	got := oscPeriod(xs, 0.1)
	if math.Abs(got-2.0) > 0.2 {
		t.Fatalf("oscPeriod = %g, want ~2.0", got)
	}
	if got := oscPeriod([]float64{1, 1}, 0.1); got != 0 {
		t.Fatalf("degenerate oscPeriod = %g", got)
	}
}
