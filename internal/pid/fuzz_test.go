package pid

import (
	"math"
	"testing"
)

// FuzzUpdate checks that no input sequence can push the controller
// output outside its clamps, corrupt its integral to NaN, or panic.
func FuzzUpdate(f *testing.F) {
	f.Add(1.0, 0.001, 3.0, -2.0, 0.5)
	f.Add(-5.0, 1.0, 0.0, 0.0, 0.0)
	f.Add(1e300, 1e-9, -1e300, 42.0, -42.0)
	f.Fuzz(func(t *testing.T, e1, dt, e2, e3, e4 float64) {
		c := MustNew(Config{
			KP: 0.006, KI: 2500, KD: 1e-8, DerivTau: 1e-6,
			FeedForward: 0.95, OutMin: 0.6, OutMax: 1.2, OverGain: 6,
		})
		for _, e := range []float64{e1, e2, e3, e4, e1, e2} {
			out := c.Update(e, dt)
			if math.IsNaN(out) {
				t.Fatalf("NaN output for err=%g dt=%g", e, dt)
			}
			if out < 0.6-1e-9 || out > 1.2+1e-9 {
				t.Fatalf("output %g escaped clamps", out)
			}
			if math.IsNaN(c.Integral()) {
				t.Fatal("integral NaN")
			}
		}
	})
}
