package pid

import (
	"errors"
	"math"
)

// Plant is a discrete single-input single-output process under control:
// given the actuator setting u and a timestep dt (seconds), it advances
// one step and returns the measured process variable.
type Plant interface {
	Step(u, dt float64) float64
}

// PlantFunc adapts a closure to the Plant interface.
type PlantFunc func(u, dt float64) float64

// Step implements Plant.
func (f PlantFunc) Step(u, dt float64) float64 { return f(u, dt) }

// StepResponse drives the plant with a step from u0 to u1 and records the
// process variable for n steps of dt seconds. The result feeds
// EstimateFOPDT.
func StepResponse(p Plant, u0, u1, dt float64, warmup, n int) []float64 {
	for i := 0; i < warmup; i++ {
		p.Step(u0, dt)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = p.Step(u1, dt)
	}
	return out
}

// FOPDT is a first-order-plus-dead-time process characterization: gain K,
// time constant Tau (seconds), dead time Theta (seconds). It is the
// classic basis for PID tuning rules.
type FOPDT struct {
	K     float64
	Tau   float64
	Theta float64
}

// ErrFlatResponse is returned when the step response carries no usable
// signal (zero gain), so no tuning is possible.
var ErrFlatResponse = errors.New("pid: step response is flat; cannot tune")

// EstimateFOPDT fits a first-order-plus-dead-time model to a recorded step
// response using the two-point (28.3 % / 63.2 %) method. resp must start at
// the pre-step steady state; du is the actuator step size.
func EstimateFOPDT(resp []float64, du, dt float64) (FOPDT, error) {
	if len(resp) < 4 {
		return FOPDT{}, errors.New("pid: step response too short")
	}
	if du == 0 {
		return FOPDT{}, errors.New("pid: zero actuator step")
	}
	y0 := resp[0]
	yInf := resp[len(resp)-1]
	dy := yInf - y0
	if dy == 0 {
		return FOPDT{}, ErrFlatResponse
	}
	t283 := crossTime(resp, y0+0.283*dy, dt)
	t632 := crossTime(resp, y0+0.632*dy, dt)
	if math.IsNaN(t283) || math.IsNaN(t632) || t632 <= t283 {
		return FOPDT{}, errors.New("pid: could not locate response fractions")
	}
	tau := 1.5 * (t632 - t283)
	theta := t632 - tau
	if theta < 0 {
		theta = 0
	}
	return FOPDT{K: dy / du, Tau: tau, Theta: theta}, nil
}

// crossTime returns the first time (seconds) at which the response crosses
// level, linearly interpolated, or NaN if it never does. Works for both
// rising and falling responses.
func crossTime(resp []float64, level, dt float64) float64 {
	rising := resp[len(resp)-1] >= resp[0]
	for i := 1; i < len(resp); i++ {
		crossed := (rising && resp[i] >= level) || (!rising && resp[i] <= level)
		if !crossed {
			continue
		}
		prev, cur := resp[i-1], resp[i]
		if cur == prev {
			return float64(i) * dt
		}
		frac := (level - prev) / (cur - prev)
		return (float64(i-1) + frac) * dt
	}
	return math.NaN()
}

// TuneIMC derives PI gains from a FOPDT fit using the IMC (lambda) tuning
// rule, with lambda (the desired closed-loop time constant) expressed as a
// multiple of the process time constant. Aggressive: lambdaFactor≈0.5;
// conservative: ≥2. The derivative gain is left at zero — the paper notes
// "the derivative portion of the PID design is generally unneeded. This
// results in a PI controller" (§3.1).
func TuneIMC(m FOPDT, lambdaFactor float64) (Config, error) {
	if m.K == 0 || m.Tau <= 0 {
		return Config{}, errors.New("pid: degenerate FOPDT model")
	}
	if lambdaFactor <= 0 {
		return Config{}, errors.New("pid: non-positive lambda factor")
	}
	lambda := lambdaFactor * m.Tau
	kp := m.Tau / (m.K * (lambda + m.Theta))
	ti := m.Tau
	return Config{KP: math.Abs(kp), KI: math.Abs(kp) / ti}, nil
}

// UltimateGain performs the paper's manual procedure automatically: raise
// the proportional gain on a pure-P closed loop until the loop output
// oscillates without decaying, and report the ultimate gain Ku and period
// Tu (seconds). newPlant must return a fresh plant per trial; setpoint is
// the target process value; u is initialized to uInit.
//
// The probe runs each candidate gain for trialSteps of dt seconds and
// declares sustained oscillation when the peak-to-peak amplitude of the
// last third of the trial is at least 90 % of the middle third's.
func UltimateGain(newPlant func() Plant, setpoint, uInit, uMin, uMax, dt float64, trialSteps int) (ku, tu float64, err error) {
	for gain := 0.01; gain < 1e6; gain *= 1.5 {
		p := newPlant()
		u := uInit
		hist := make([]float64, trialSteps)
		for i := 0; i < trialSteps; i++ {
			y := p.Step(u, dt)
			hist[i] = y
			u = clamp(uInit+gain*(setpoint-y), uMin, uMax)
		}
		third := trialSteps / 3
		midAmp := peakToPeak(hist[third : 2*third])
		lateAmp := peakToPeak(hist[2*third:])
		if midAmp > 1e-12 && lateAmp >= 0.9*midAmp && lateAmp > 1e-9*math.Abs(setpoint) {
			return gain, oscPeriod(hist[2*third:], dt), nil
		}
	}
	return 0, 0, errors.New("pid: no ultimate gain found (plant may be unconditionally stable)")
}

func peakToPeak(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}

// oscPeriod estimates the oscillation period from mean crossings.
func oscPeriod(xs []float64, dt float64) float64 {
	if len(xs) < 3 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var crossings []int
	for i := 1; i < len(xs); i++ {
		if (xs[i-1] < mean) != (xs[i] < mean) {
			crossings = append(crossings, i)
		}
	}
	if len(crossings) < 3 {
		return 0
	}
	// Two crossings per period.
	span := crossings[len(crossings)-1] - crossings[0]
	periods := float64(len(crossings)-1) / 2
	return float64(span) * dt / periods
}

// TuneZN derives PI gains from the ultimate gain/period via the
// Ziegler–Nichols PI rule.
func TuneZN(ku, tu float64) (Config, error) {
	if ku <= 0 || tu <= 0 {
		return Config{}, errors.New("pid: invalid ultimate gain/period")
	}
	kp := 0.45 * ku
	ti := tu / 1.2
	return Config{KP: kp, KI: kp / ti}, nil
}
