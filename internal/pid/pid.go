// Package pid implements the closed-loop controller at the heart of
// HCAPP's global voltage controller (paper Eq. 2): a PID controller with a
// feed-forward (offset) term, output clamping, anti-windup, and a filtered
// derivative. It also provides step-response tuning helpers used by
// cmd/hcapp-tune, mirroring the manual procedure in paper §3.1 (raise KP
// until instability, then raise KI until the steady state is reached).
package pid

import (
	"fmt"
	"math"
)

// Config holds the controller gains and limits.
//
// The paper's Eq. 2 is
//
//	VNEXT = VOffset + KP·VErr + KI·∫VErr dt + KD·dVErr/dt
//
// with VOffset the open-loop feed-forward value ("set to approximately the
// average voltage expected throughout execution").
type Config struct {
	KP, KI, KD  float64
	FeedForward float64 // VOffset: open-loop operating point
	OutMin      float64 // lower output clamp
	OutMax      float64 // upper output clamp
	// DerivTau is the time constant (seconds) of the first-order filter
	// applied to the derivative term; 0 disables filtering. Filtering is
	// standard practice to keep measurement noise from dominating KD.
	DerivTau float64
	// OverGain multiplies the proportional, integral and derivative
	// contributions when the error is negative (process variable above
	// the setpoint). Power capping throttles much faster than it
	// recovers: exceeding the limit is a hardware failure while
	// undershooting it only costs performance, so the downward gain
	// carries the safety margin. The asymmetry also biases the achieved
	// average slightly below the setpoint, which is the guardband the
	// paper describes between the power target and the power limit.
	// Values ≤ 0 or 1 mean symmetric gains.
	OverGain float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.OutMin >= c.OutMax {
		return fmt.Errorf("pid: output clamp [%g,%g] is empty", c.OutMin, c.OutMax)
	}
	if c.KP < 0 || c.KI < 0 || c.KD < 0 {
		return fmt.Errorf("pid: negative gains (kp=%g ki=%g kd=%g)", c.KP, c.KI, c.KD)
	}
	if c.DerivTau < 0 {
		return fmt.Errorf("pid: negative derivative filter tau %g", c.DerivTau)
	}
	if c.OverGain < 0 {
		return fmt.Errorf("pid: negative over-gain %g", c.OverGain)
	}
	return nil
}

// overGain returns the effective proportional/derivative multiplier for
// a given error sign.
func (c Config) overGain(err float64) float64 {
	if err < 0 && c.OverGain > 1 {
		return c.OverGain
	}
	return 1
}

// Controller is a discrete PID controller. The zero value is not usable;
// construct with New.
type Controller struct {
	cfg       Config
	integ     float64 // ∫err dt
	prevErr   float64
	derivFilt float64 // filtered derivative state
	primed    bool    // first Update has happened (derivative defined)
}

// New returns a controller with the given configuration.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// MustNew is New that panics on invalid configuration.
func MustNew(cfg Config) *Controller {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Reset clears the controller's internal state (integral, derivative
// history) without changing its gains.
func (c *Controller) Reset() {
	c.integ = 0
	c.prevErr = 0
	c.derivFilt = 0
	c.primed = false
}

// Update advances the controller by dt seconds given the current error and
// returns the clamped output.
//
// Anti-windup uses conditional integration: the integral only accumulates
// when doing so would not push a saturated output further into the clamp.
// Without this, a long stretch at the voltage regulator's ceiling (e.g. a
// mostly-idle package whose power can never reach the target) would wind
// the integral up and cause a deep voltage undershoot when load returns.
func (c *Controller) Update(err, dt float64) float64 {
	if dt <= 0 || math.IsNaN(err) || math.IsInf(err, 0) {
		// Hold the previous operating point on degenerate input.
		return clamp(c.output(c.prevErr), c.cfg.OutMin, c.cfg.OutMax)
	}

	// Derivative (filtered). Undefined on the first sample. Non-finite
	// rates (an astronomically fast error swing against a tiny dt) are
	// discarded rather than poisoning the filter state: a ±Inf deriv
	// term could meet a ∓Inf integral term and emit NaN.
	var deriv float64
	if c.primed {
		raw := (err - c.prevErr) / dt
		if math.IsInf(raw, 0) || math.IsNaN(raw) {
			raw = 0
		}
		if c.cfg.DerivTau > 0 {
			alpha := dt / (c.cfg.DerivTau + dt)
			c.derivFilt += alpha * (raw - c.derivFilt)
			deriv = c.derivFilt
		} else {
			deriv = raw
		}
	}

	// Tentative integral step with conditional anti-windup. The
	// over-gain asymmetry applies to the integral accumulation itself:
	// the sustained correction must build as fast as a burst does.
	g := c.cfg.overGain(err)
	newInteg := c.integ + g*err*dt
	out := c.cfg.FeedForward + g*c.cfg.KP*err + c.cfg.KI*newInteg + g*c.cfg.KD*deriv
	if (out > c.cfg.OutMax && err > 0) || (out < c.cfg.OutMin && err < 0) {
		// Saturated and integrating further into the clamp: freeze.
		out = c.cfg.FeedForward + g*c.cfg.KP*err + c.cfg.KI*c.integ + g*c.cfg.KD*deriv
	} else {
		c.integ = newInteg
	}

	c.prevErr = err
	c.primed = true
	return clamp(out, c.cfg.OutMin, c.cfg.OutMax)
}

// output computes the unclamped output for a given error using current
// state, without mutating anything.
func (c *Controller) output(err float64) float64 {
	return c.cfg.FeedForward + c.cfg.KP*err + c.cfg.KI*c.integ
}

// Integral exposes the accumulated integral term, useful in tests and for
// diagnosing windup.
func (c *Controller) Integral() float64 { return c.integ }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
