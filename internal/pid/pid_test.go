package pid

import (
	"math"
	"testing"
	"testing/quick"
)

func baseCfg() Config {
	return Config{
		KP: 0.5, KI: 2.0, KD: 0,
		FeedForward: 1.0,
		OutMin:      0, OutMax: 10,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := baseCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"empty clamp", func(c *Config) { c.OutMin, c.OutMax = 5, 5 }},
		{"inverted clamp", func(c *Config) { c.OutMin, c.OutMax = 10, 0 }},
		{"negative kp", func(c *Config) { c.KP = -1 }},
		{"negative ki", func(c *Config) { c.KI = -1 }},
		{"negative kd", func(c *Config) { c.KD = -1 }},
		{"negative deriv tau", func(c *Config) { c.DerivTau = -1 }},
		{"negative overgain", func(c *Config) { c.OverGain = -2 }},
	}
	for _, c := range cases {
		cfg := baseCfg()
		c.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	cfg := baseCfg()
	cfg.OutMin = cfg.OutMax
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	cfg := baseCfg()
	cfg.KP = -1
	MustNew(cfg)
}

func TestProportionalResponse(t *testing.T) {
	cfg := baseCfg()
	cfg.KI = 0
	c := MustNew(cfg)
	got := c.Update(2, 0.01)
	want := cfg.FeedForward + cfg.KP*2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("P response = %g, want %g", got, want)
	}
}

func TestIntegralAccumulates(t *testing.T) {
	cfg := baseCfg()
	cfg.KP = 0
	c := MustNew(cfg)
	c.Update(1, 0.5)
	c.Update(1, 0.5)
	if got := c.Integral(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("integral = %g, want 1.0", got)
	}
	got := c.Update(0, 0.5)
	want := cfg.FeedForward + cfg.KI*1.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("output = %g, want %g", got, want)
	}
}

func TestOutputClamped(t *testing.T) {
	c := MustNew(baseCfg())
	if got := c.Update(1e9, 1); got != 10 {
		t.Fatalf("high output = %g, want clamp at 10", got)
	}
	c.Reset()
	if got := c.Update(-1e9, 1); got != 0 {
		t.Fatalf("low output = %g, want clamp at 0", got)
	}
}

func TestAntiWindup(t *testing.T) {
	// Long saturation at the top must not wind the integral up.
	c := MustNew(baseCfg())
	for i := 0; i < 1000; i++ {
		c.Update(5, 0.1) // would integrate to 5*0.1*1000 = 500 without anti-windup
	}
	saturatedInteg := c.Integral()
	if saturatedInteg*c.cfg.KI+c.cfg.FeedForward > c.cfg.OutMax+c.cfg.KP*5+1 {
		t.Fatalf("integral wound up to %g", saturatedInteg)
	}
	// Recovery after the error flips must be fast: within a few updates,
	// not hundreds.
	out := 0.0
	for i := 0; i < 5; i++ {
		out = c.Update(-5, 0.1)
	}
	if out >= c.cfg.OutMax {
		t.Fatalf("stuck at clamp after error reversal (out=%g)", out)
	}
}

func TestAntiWindupLowerClamp(t *testing.T) {
	c := MustNew(baseCfg())
	for i := 0; i < 1000; i++ {
		c.Update(-5, 0.1)
	}
	out := 0.0
	for i := 0; i < 5; i++ {
		out = c.Update(5, 0.1)
	}
	if out <= c.cfg.OutMin {
		t.Fatalf("stuck at lower clamp after error reversal (out=%g)", out)
	}
}

func TestDegenerateInputsHold(t *testing.T) {
	c := MustNew(baseCfg())
	c.Update(1, 0.1)
	before := c.Integral()
	c.Update(1, 0)           // zero dt
	c.Update(math.NaN(), 01) // NaN error
	if c.Integral() != before {
		t.Fatal("degenerate input mutated integral")
	}
}

func TestOverGainAsymmetry(t *testing.T) {
	cfg := baseCfg()
	cfg.KI = 0
	cfg.OverGain = 4
	cfg.OutMin, cfg.OutMax = -100, 100 // keep clamps out of the way
	c := MustNew(cfg)
	up := c.Update(1, 0.1) - cfg.FeedForward
	c.Reset()
	down := c.Update(-1, 0.1) - cfg.FeedForward
	if math.Abs(down/up+4) > 1e-9 {
		t.Fatalf("over-gain asymmetry wrong: up %g down %g", up, down)
	}
}

func TestOverGainOnIntegral(t *testing.T) {
	cfg := baseCfg()
	cfg.KP = 0
	cfg.OverGain = 4
	c := MustNew(cfg)
	c.Update(-1, 0.1)
	if got := c.Integral(); math.Abs(got+0.4) > 1e-12 {
		t.Fatalf("integral after over-gain step = %g, want -0.4", got)
	}
	c.Reset()
	c.Update(1, 0.1)
	if got := c.Integral(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("integral after positive step = %g, want 0.1", got)
	}
}

func TestOverGainOneIsSymmetric(t *testing.T) {
	cfg := baseCfg()
	cfg.OverGain = 1
	c := MustNew(cfg)
	up := c.Update(1, 0.1) - cfg.FeedForward
	c.Reset()
	down := c.Update(-1, 0.1) - cfg.FeedForward
	if math.Abs(up+down) > 1e-12 {
		t.Fatalf("OverGain=1 should be symmetric: %g vs %g", up, down)
	}
}

func TestDerivativeFilter(t *testing.T) {
	cfg := baseCfg()
	cfg.KP, cfg.KI = 0, 0
	cfg.KD = 1
	cfg.DerivTau = 0.0 // unfiltered
	c := MustNew(cfg)
	c.Update(0, 0.1)
	raw := c.Update(1, 0.1) - cfg.FeedForward // derivative = 10

	cfg.DerivTau = 1.0
	cf := MustNew(cfg)
	cf.Update(0, 0.1)
	filt := cf.Update(1, 0.1) - cfg.FeedForward
	if !(filt > 0 && filt < raw) {
		t.Fatalf("filtered derivative %g should be in (0, %g)", filt, raw)
	}
}

func TestDerivativeUndefinedOnFirstSample(t *testing.T) {
	cfg := baseCfg()
	cfg.KP, cfg.KI = 0, 0
	cfg.KD = 100
	c := MustNew(cfg)
	if got := c.Update(5, 0.1); got != cfg.FeedForward {
		t.Fatalf("first update used a derivative: %g", got)
	}
}

func TestReset(t *testing.T) {
	c := MustNew(baseCfg())
	c.Update(3, 0.1)
	c.Update(3, 0.1)
	c.Reset()
	if c.Integral() != 0 {
		t.Fatal("Reset did not clear integral")
	}
	got := c.Update(1, 0.1)
	fresh := MustNew(baseCfg()).Update(1, 0.1)
	if got != fresh {
		t.Fatalf("post-reset output %g differs from fresh %g", got, fresh)
	}
}

// firstOrderPlant is a discrete first-order lag: y += (K·u − y)·dt/τ.
type firstOrderPlant struct {
	y, k, tau float64
}

func (p *firstOrderPlant) Step(u, dt float64) float64 {
	p.y += (p.k*u - p.y) * dt / p.tau
	return p.y
}

func TestClosedLoopConvergence(t *testing.T) {
	// A PI loop on a first-order plant must settle at the setpoint.
	plant := &firstOrderPlant{k: 3, tau: 0.5}
	c := MustNew(Config{KP: 0.2, KI: 2.0, FeedForward: 0, OutMin: -100, OutMax: 100})
	setpoint := 6.0
	dt := 0.01
	y := 0.0
	for i := 0; i < 5000; i++ {
		u := c.Update(setpoint-y, dt)
		y = plant.Step(u, dt)
	}
	if math.Abs(y-setpoint) > 0.05 {
		t.Fatalf("loop settled at %g, want %g", y, setpoint)
	}
}

func TestOutputAlwaysWithinClampProperty(t *testing.T) {
	c := MustNew(baseCfg())
	f := func(errs []float64) bool {
		for _, e := range errs {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				continue
			}
			out := c.Update(e, 0.01)
			if out < c.cfg.OutMin || out > c.cfg.OutMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
