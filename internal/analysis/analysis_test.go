package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"hcapp/internal/trace"
)

func TestAnalyzeConstant(t *testing.T) {
	p := Analyze([]float64{5, 5, 5, 5})
	if p.Mean != 5 || p.Min != 5 || p.Max != 5 {
		t.Fatalf("constant profile %+v", p)
	}
	if p.CV != 0 || p.PeakToMean != 1 {
		t.Fatalf("constant volatility %+v", p)
	}
	if math.Abs(p.Burstiness+1) > 1e-12 {
		t.Fatalf("constant burstiness = %g, want -1", p.Burstiness)
	}
	if Classify(p) != ClassSteady {
		t.Fatalf("constant classified as %s", Classify(p))
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	p := Analyze(nil)
	if p.N != 0 {
		t.Fatalf("empty profile %+v", p)
	}
	if Classify(p) != ClassSteady {
		t.Fatal("empty classification")
	}
}

func TestAnalyzeSpiky(t *testing.T) {
	// Mostly quiet with rare tall spikes: the ferret shape.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 40
	}
	for i := 0; i < 100; i += 20 {
		xs[i] = 120
	}
	p := Analyze(xs)
	if p.PeakToMean < 1.45 {
		t.Fatalf("spiky peak/mean = %g", p.PeakToMean)
	}
	if p.DutyAboveMean > 0.45 {
		t.Fatalf("spiky duty = %g", p.DutyAboveMean)
	}
	if Classify(p) != ClassBursty {
		t.Fatalf("spiky classified as %s (%s)", Classify(p), p)
	}
}

func TestAnalyzeWave(t *testing.T) {
	var xs []float64
	for i := 0; i < 200; i++ {
		xs = append(xs, 70+25*math.Sin(float64(i)/10))
	}
	p := Analyze(xs)
	if got := Classify(p); got != ClassPhased {
		t.Fatalf("wave classified as %s (%s)", got, p)
	}
}

func TestProfileStatistics(t *testing.T) {
	p := Analyze([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if p.Mean != 5.5 {
		t.Fatalf("mean %g", p.Mean)
	}
	if p.Min != 1 || p.Max != 10 {
		t.Fatalf("range %g..%g", p.Min, p.Max)
	}
	if p.DutyAboveMean != 0.5 {
		t.Fatalf("duty %g", p.DutyAboveMean)
	}
	if p.P95OverP50 <= 1 {
		t.Fatalf("p95/p50 %g", p.P95OverP50)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2}}
	for _, c := range cases {
		if got := quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	if quantile([]float64{7}, 0.9) != 7 {
		t.Fatal("single quantile")
	}
}

func TestAnalyzePoints(t *testing.T) {
	pts := []trace.Point{{T: 1, P: 10}, {T: 2, P: 20}}
	p := AnalyzePoints(pts)
	if p.N != 2 || p.Mean != 15 {
		t.Fatalf("points profile %+v", p)
	}
}

func TestBurstinessBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, b := range raw {
			xs[i] = float64(b)
		}
		p := Analyze(xs)
		return p.Burstiness >= -1-1e-12 && p.Burstiness <= 1+1e-12 &&
			p.DutyAboveMean >= 0 && p.DutyAboveMean <= 1 &&
			p.Min <= p.Mean+1e-9 && p.Mean <= p.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileString(t *testing.T) {
	s := Analyze([]float64{1, 2, 3}).String()
	if s == "" {
		t.Fatal("empty string")
	}
}
