// Package analysis characterizes power traces and workload traces with
// the statistics the paper's benchmark selection implicitly relies on
// ("this subset captures a wide variety of power behavior", §4.2): how
// volatile a signal is, how bursty, at what timescale its phases live.
//
// The workload substitution argument in DESIGN.md §1 rests on the
// synthetic proxies having the same *class* of behaviour the paper
// assigned to each benchmark (Table 3's Low/Mid/Hi/Burst/Const labels).
// This package turns those labels into measurable quantities so the
// test suite can verify the substitution instead of asserting it.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"hcapp/internal/trace"
)

// Profile summarizes a scalar time series (power, activity, …).
type Profile struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	// PeakToMean is Max/Mean — Fig. 1's headline statistic.
	PeakToMean float64
	// CV is the coefficient of variation (stddev/mean): overall
	// volatility, scale-free.
	CV float64
	// Burstiness is the classic Goh–Barabási index
	// (σ−μ)/(σ+μ) ∈ (−1, 1): ≈ −1 for a constant signal, 0 for
	// Poisson-like variation, → 1 for heavy bursts.
	Burstiness float64
	// DutyAboveMean is the fraction of samples above the mean — low for
	// spiky signals that are quiet most of the time.
	DutyAboveMean float64
	// P95OverP50 compares the 95th and 50th percentiles: tail height.
	P95OverP50 float64
}

// Analyze computes a Profile of xs. Empty input yields a zero Profile.
func Analyze(xs []float64) Profile {
	if len(xs) == 0 {
		return Profile{}
	}
	p := Profile{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < p.Min {
			p.Min = x
		}
		if x > p.Max {
			p.Max = x
		}
	}
	p.Mean = sum / float64(len(xs))

	varSum, above := 0.0, 0
	for _, x := range xs {
		d := x - p.Mean
		varSum += d * d
		if x > p.Mean {
			above++
		}
	}
	sigma := math.Sqrt(varSum / float64(len(xs)))
	p.DutyAboveMean = float64(above) / float64(len(xs))
	if p.Mean != 0 {
		p.PeakToMean = p.Max / p.Mean
		p.CV = sigma / p.Mean
	}
	if sigma+p.Mean != 0 {
		p.Burstiness = (sigma - p.Mean) / (sigma + p.Mean)
	}

	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	p50 := quantile(sorted, 0.50)
	p95 := quantile(sorted, 0.95)
	if p50 != 0 {
		p.P95OverP50 = p95 / p50
	}
	return p
}

// quantile returns the q-quantile of a sorted slice with linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := q * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// AnalyzePoints profiles a down-sampled trace series.
func AnalyzePoints(pts []trace.Point) Profile {
	xs := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.P
	}
	return Analyze(xs)
}

// Class is a coarse behaviour classification matching Table 3's labels.
type Class string

// Behaviour classes derived from profile statistics.
const (
	ClassSteady Class = "steady"
	ClassPhased Class = "phased"
	ClassBursty Class = "bursty"
)

// Classify maps a profile to a behaviour class:
//
//   - bursty: strong tails and a minority of time above the mean (the
//     ferret/bfs shape — quiet with spikes);
//   - steady: low overall volatility;
//   - phased: everything in between (wave-like programs).
func Classify(p Profile) Class {
	if p.N == 0 {
		return ClassSteady
	}
	if p.PeakToMean > 1.45 && p.DutyAboveMean < 0.45 {
		return ClassBursty
	}
	if p.CV < 0.10 {
		return ClassSteady
	}
	return ClassPhased
}

// String renders a compact profile summary.
func (p Profile) String() string {
	return fmt.Sprintf("n=%d mean=%.3g peak/mean=%.2f cv=%.3f burstiness=%.2f duty>mean=%.2f p95/p50=%.2f",
		p.N, p.Mean, p.PeakToMean, p.CV, p.Burstiness, p.DutyAboveMean, p.P95OverP50)
}
