package central

import (
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/noc"
	"hcapp/internal/psn"
	"hcapp/internal/sched"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
	"hcapp/internal/vr"
)

func baseConfig() Config {
	return Config{
		TargetPower: 60,
		Domains:     []string{"a", "b"},
		Network:     noc.DefaultBus(),
		Nodes:       24,
		Floor:       20 * sim.Microsecond,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(baseConfig()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero target", func(c *Config) { c.TargetPower = 0 }},
		{"no domains", func(c *Config) { c.Domains = nil }},
		{"zero nodes", func(c *Config) { c.Nodes = 0 }},
		{"zero floor", func(c *Config) { c.Floor = 0 }},
		{"huge step", func(c *Config) { c.Step = 0.9 }},
		{"inverted priorities", func(c *Config) { c.PrioMin, c.PrioMax = 1.2, 0.8 }},
		{"dead band 1", func(c *Config) { c.DeadBand = 1 }},
		{"bad network", func(c *Config) { c.Network.MsgSerialization = 0 }},
	}
	for _, c := range cases {
		cfg := baseConfig()
		c.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestPeriodBoundedByNetwork(t *testing.T) {
	small := MustNew(baseConfig())
	if small.Period() != 20*sim.Microsecond {
		t.Fatalf("small-system period %d, want floor", small.Period())
	}
	big := baseConfig()
	big.Nodes = 2000
	c := MustNew(big)
	if c.Period() <= 20*sim.Microsecond {
		t.Fatal("large-system period did not grow past the floor")
	}
}

// wattComp draws fixed power scaled by voltage and progresses at a
// configurable rate per volt.
type wattComp struct {
	name     string
	watts    float64
	rate     float64
	progress float64
}

func (c *wattComp) Name() string { return c.name }
func (c *wattComp) Step(_ sim.Time, dt sim.Time, vdd float64) sim.StepResult {
	c.progress += c.rate * sim.Seconds(dt) * vdd
	if c.progress > 1 {
		c.progress = 1
	}
	return sim.StepResult{Power: c.watts * vdd}
}
func (c *wattComp) Done() bool         { return c.progress >= 1 }
func (c *wattComp) Progress() float64  { return c.progress }
func (c *wattComp) LastPower() float64 { return c.watts }
func (c *wattComp) Reset()             { c.progress = 0 }

func buildEngine(t *testing.T, sup sched.Supervisor, aWatts, bWatts float64) (*sched.Engine, *wattComp, *wattComp) {
	t.Helper()
	dt := sim.Time(100)
	gvr := vr.MustRegulator(vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 1.0})
	sensor := vr.MustSensor(vr.SensorConfig{}, dt)
	line := psn.MustDelayLine(0, dt, 1.0)
	domCfg := config.DomainConfig{
		Scale: 1, VMin: 0.6, VMax: 1.2,
		VR: vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 1.0},
	}
	// a produces far more progress per watt than b.
	a := &wattComp{name: "a", watts: aWatts, rate: 100}
	b := &wattComp{name: "b", watts: bWatts, rate: 10}
	eng := sched.MustNew(sched.Config{
		DT: dt, GlobalVR: gvr, Sensor: sensor, PSN: line,
		Slots: []sched.Slot{
			{Domain: core.MustDomain("a", domCfg), Comp: a},
			{Domain: core.MustDomain("b", domCfg), Comp: b},
		},
		Recorder:   trace.MustRecorder(dt, false),
		Supervisor: sup,
	})
	return eng, a, b
}

func TestThrottlesLeastProductiveWhenOver(t *testing.T) {
	cfg := baseConfig()
	cfg.TargetPower = 90 // a+b draw ~100 W at 1.0 V: moderately over
	ctl := MustNew(cfg)
	eng, _, _ := buildEngine(t, ctl, 50, 50)
	eng.RunFor(2 * sim.Millisecond)
	prios := ctl.Priorities()
	// b converts watts to progress 10× worse → must be the throttled one.
	if prios["b"] >= prios["a"] {
		t.Fatalf("least-productive domain not throttled: %v", prios)
	}
	if prios["b"] < cfg.PrioMin && cfg.PrioMin != 0 {
		t.Fatalf("throttle went below floor: %v", prios)
	}
	if ctl.Actions() == 0 {
		t.Fatal("controller took no actions")
	}
}

func TestBoostsMostProductiveWhenUnder(t *testing.T) {
	cfg := baseConfig()
	cfg.TargetPower = 200 // far above the ~100 W draw
	ctl := MustNew(cfg)
	eng, _, _ := buildEngine(t, ctl, 50, 50)
	eng.RunFor(2 * sim.Millisecond)
	prios := ctl.Priorities()
	if prios["a"] <= 1.0 {
		t.Fatalf("most-productive domain not boosted: %v", prios)
	}
	if prios["a"] > 1.15 {
		t.Fatalf("boost exceeded cap: %v", prios)
	}
}

func TestDeadBandHoldsSteady(t *testing.T) {
	cfg := baseConfig()
	cfg.TargetPower = 100 // exactly the draw at 1.0 V
	cfg.DeadBand = 0.10
	ctl := MustNew(cfg)
	eng, _, _ := buildEngine(t, ctl, 50, 50)
	eng.RunFor(1 * sim.Millisecond)
	if ctl.Actions() != 0 {
		t.Fatalf("controller acted inside the dead band: %d actions", ctl.Actions())
	}
}

func TestPrioritiesStayBounded(t *testing.T) {
	cfg := baseConfig()
	cfg.TargetPower = 5 // impossible: everything throttles to the floor
	ctl := MustNew(cfg)
	eng, _, _ := buildEngine(t, ctl, 50, 50)
	eng.RunFor(5 * sim.Millisecond)
	for name, p := range ctl.Priorities() {
		if p < 0.75-1e-9 || p > 1.15+1e-9 {
			t.Fatalf("%s priority %g escaped bounds", name, p)
		}
	}
}

func TestCentralizedCannotTrackFastBursts(t *testing.T) {
	// A burst shorter than the controller's period must complete before
	// any reaction: the 20 µs window max is untouched by control.
	cfg := baseConfig()
	cfg.TargetPower = 80
	ctl := MustNew(cfg)
	if ctl.Period() < 20*sim.Microsecond {
		t.Fatalf("period %s unexpectedly fast", sim.FormatTime(ctl.Period()))
	}
	// The scaling experiment in internal/experiment exercises the full
	// consequence; here we just pin the period math.
	lat, err := cfg.Network.CollectionLatency(cfg.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Period() < lat {
		t.Fatal("period shorter than one collection pass")
	}
}
