// Package central implements the design HCAPP argues against (§2): a
// structurally centralized power controller in the style of RAPL or
// Tangram. Each control cycle it gathers every component's metrics over
// a collection network (internal/noc), decides a per-domain allocation
// with global knowledge, and distributes new settings — so its control
// period is bounded below by the network round trip and grows with
// system size, and its decision logic must understand every component
// type ("designing a centralized controller with logic for how all of
// the system metrics and power information can control the various
// nodes in a system becomes increasingly difficult").
//
// The allocator is a greedy utility scheduler: when the package is over
// its power target it takes voltage away from the domain producing the
// least progress per watt; when under, it gives voltage to the domain
// producing the most. This is deliberately the *strongest reasonable*
// centralized baseline — it sees perfect metrics and spends zero cycles
// computing — and it still cannot act inside a 20 µs window at scale.
package central

import (
	"fmt"
	"math"
	"sort"

	"hcapp/internal/noc"
	"hcapp/internal/sched"
	"hcapp/internal/sim"
)

// Config parameterizes the centralized controller.
type Config struct {
	// TargetPower is the package power target, watts.
	TargetPower float64
	// Domains are the scalable domains under management.
	Domains []string
	// Network is the metric-collection interconnect; with Nodes it
	// determines the achievable control period.
	Network noc.Config
	// Nodes is the number of metric sources the controller polls.
	Nodes int
	// Floor is the fastest the decision loop itself can cycle,
	// independent of collection latency.
	Floor sim.Time
	// Step is the priority adjustment per cycle; zero defaults to 0.05.
	Step float64
	// PrioMin/PrioMax bound the per-domain allocation; zeros default to
	// 0.75 and 1.15.
	PrioMin, PrioMax float64
	// DeadBand is the fractional band around the target inside which no
	// action is taken; zero defaults to 0.03.
	DeadBand float64
	// Telemetry, when non-nil, models the health of the metric-collection
	// path: each tick the controller asks it whether a domain's sample
	// actually arrived and how old it is. The fault injector
	// (internal/fault) implements this; nil means a perfect network.
	Telemetry TelemetrySource
	// HoldoverMaxAge bounds how stale a domain's telemetry may grow
	// before the controller stops trusting it and parks the domain at
	// PrioMin (fail-safe). Inside the bound the domain's last good
	// utility is held. Zero defaults to 4× the derived control period.
	HoldoverMaxAge sim.Time
}

// TelemetrySource reports, per control tick, whether a domain's metric
// sample survived the collection network and how stale it is. age is the
// sample's age at delivery (0 = fresh); delivered=false means the sample
// was lost entirely.
type TelemetrySource interface {
	TelemetrySample(now sim.Time, domain string) (age sim.Time, delivered bool)
}

// Controller is a sched.Supervisor implementing centralized control.
type Controller struct {
	cfg    Config
	period sim.Time

	prios        map[string]float64
	prevProgress map[string]float64
	prevTime     sim.Time
	actions      int64

	// Telemetry-holdover state (Config.Telemetry set): the last good
	// utility per domain, when it was observed, and resilience tallies.
	heldUtility   map[string]float64
	lastGood      map[string]sim.Time
	holdoverTicks int64
	failsafeTicks int64
}

// New builds the controller, deriving its period from the collection
// network.
func New(cfg Config) (*Controller, error) {
	if cfg.TargetPower <= 0 {
		return nil, fmt.Errorf("central: non-positive target %g", cfg.TargetPower)
	}
	if len(cfg.Domains) == 0 {
		return nil, fmt.Errorf("central: no domains")
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("central: non-positive node count %d", cfg.Nodes)
	}
	if cfg.Floor <= 0 {
		return nil, fmt.Errorf("central: non-positive floor %d", cfg.Floor)
	}
	if cfg.Step == 0 {
		cfg.Step = 0.05
	}
	if cfg.Step <= 0 || cfg.Step > 0.5 {
		return nil, fmt.Errorf("central: step %g outside (0, 0.5]", cfg.Step)
	}
	if cfg.PrioMin == 0 {
		cfg.PrioMin = 0.75
	}
	if cfg.PrioMax == 0 {
		cfg.PrioMax = 1.15
	}
	if cfg.PrioMin <= 0 || cfg.PrioMin >= cfg.PrioMax {
		return nil, fmt.Errorf("central: priority range [%g,%g] invalid", cfg.PrioMin, cfg.PrioMax)
	}
	if cfg.DeadBand == 0 {
		cfg.DeadBand = 0.03
	}
	if cfg.DeadBand < 0 || cfg.DeadBand >= 1 {
		return nil, fmt.Errorf("central: dead band %g invalid", cfg.DeadBand)
	}
	if cfg.HoldoverMaxAge < 0 {
		return nil, fmt.Errorf("central: negative holdover age bound %d", cfg.HoldoverMaxAge)
	}
	period, err := cfg.Network.MinControlPeriod(cfg.Nodes, cfg.Floor)
	if err != nil {
		return nil, err
	}
	if cfg.Telemetry != nil && cfg.HoldoverMaxAge == 0 {
		cfg.HoldoverMaxAge = 4 * period
	}
	c := &Controller{
		cfg:          cfg,
		period:       period,
		prios:        make(map[string]float64, len(cfg.Domains)),
		prevProgress: make(map[string]float64, len(cfg.Domains)),
		heldUtility:  make(map[string]float64, len(cfg.Domains)),
		lastGood:     make(map[string]sim.Time, len(cfg.Domains)),
	}
	for _, d := range cfg.Domains {
		c.prios[d] = 1.0
	}
	return c, nil
}

// MustNew is New that panics on invalid configuration.
func MustNew(cfg Config) *Controller {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Period implements sched.Supervisor: collection latency bounds it.
func (c *Controller) Period() sim.Time { return c.period }

// Actions reports the number of allocation changes made.
func (c *Controller) Actions() int64 { return c.actions }

// HoldoverTicks reports how many per-domain decisions reused a held
// (stale but in-bound) utility because telemetry was lost or delayed.
func (c *Controller) HoldoverTicks() int64 { return c.holdoverTicks }

// FailsafeTicks reports how many per-domain decisions parked a domain
// at PrioMin because its telemetry aged past the holdover bound.
func (c *Controller) FailsafeTicks() int64 { return c.failsafeTicks }

// Priorities exposes the current allocation (for tests and traces).
func (c *Controller) Priorities() map[string]float64 {
	out := make(map[string]float64, len(c.prios))
	for k, v := range c.prios {
		out[k] = v
	}
	return out
}

type powerReporter interface{ LastPower() float64 }

// Tick implements sched.Supervisor.
func (c *Controller) Tick(now sim.Time, eng *sched.Engine) {
	total := eng.LastTotalPower()
	dtSec := sim.Seconds(now - c.prevTime)

	// Gather per-domain utility = progress per second per watt.
	type domState struct {
		name    string
		utility float64
	}
	var states []domState
	for _, name := range c.cfg.Domains {
		comp := eng.Component(name)
		if comp == nil {
			continue
		}
		if c.cfg.Telemetry != nil {
			age, delivered := c.cfg.Telemetry.TelemetrySample(now, name)
			if !delivered {
				age = now - c.lastGood[name]
			} else if age > 0 {
				// A delayed sample did arrive: it moves the last-good
				// marker to its origin time, not to now.
				if t := now - age; t > c.lastGood[name] {
					c.lastGood[name] = t
				}
			}
			if !delivered || age > 0 {
				if age > c.cfg.HoldoverMaxAge {
					// Past the age bound the controller cannot tell what
					// this domain is doing; park it at the allocation
					// floor rather than act on fiction.
					c.prios[name] = c.cfg.PrioMin
					c.failsafeTicks++
					continue
				}
				// Bounded-age holdover: reuse the last good utility so
				// the allocator keeps a sane ordering.
				c.holdoverTicks++
				states = append(states, domState{name: name, utility: c.heldUtility[name]})
				continue
			}
			c.lastGood[name] = now
		}
		prog := comp.Progress()
		var watts float64
		if pr, ok := comp.(powerReporter); ok {
			watts = pr.LastPower()
		}
		utility := 0.0
		if dtSec > 0 && watts > 0 && prog < 1 {
			utility = (prog - c.prevProgress[name]) / dtSec / watts
		}
		c.prevProgress[name] = prog
		c.heldUtility[name] = utility
		states = append(states, domState{name: name, utility: utility})
	}
	c.prevTime = now
	if len(states) == 0 {
		return
	}
	sort.Slice(states, func(i, j int) bool { return states[i].utility < states[j].utility })

	hi := c.cfg.TargetPower * (1 + c.cfg.DeadBand)
	lo := c.cfg.TargetPower * (1 - c.cfg.DeadBand)
	switch {
	case total > hi:
		// Over target: take voltage from the least productive domain
		// that still has allocation to give.
		for _, st := range states {
			if p := c.prios[st.name]; p > c.cfg.PrioMin {
				c.prios[st.name] = math.Max(c.cfg.PrioMin, p-c.cfg.Step)
				c.actions++
				break
			}
		}
	case total < lo:
		// Under target: give voltage to the most productive domain with
		// headroom; fall back to any domain with headroom (finished or
		// stalled components report zero utility).
		for i := len(states) - 1; i >= 0; i-- {
			st := states[i]
			if p := c.prios[st.name]; p < c.cfg.PrioMax {
				c.prios[st.name] = math.Min(c.cfg.PrioMax, p+c.cfg.Step)
				c.actions++
				break
			}
		}
	}
	for name, p := range c.prios {
		if d := eng.Domain(name); d != nil {
			d.SetPriority(p)
		}
	}
}
