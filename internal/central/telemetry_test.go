package central

import (
	"testing"

	"hcapp/internal/sim"
)

// scriptedTelemetry is a programmable TelemetrySource: per-domain loss
// and a uniform delivery age, mutable between engine phases.
type scriptedTelemetry struct {
	lost map[string]bool
	age  sim.Time
}

func (s *scriptedTelemetry) TelemetrySample(_ sim.Time, domain string) (sim.Time, bool) {
	if s.lost[domain] {
		return 0, false
	}
	return s.age, true
}

func TestTelemetryHoldoverWithinBound(t *testing.T) {
	src := &scriptedTelemetry{lost: map[string]bool{}}
	cfg := baseConfig()
	cfg.TargetPower = 90
	cfg.Telemetry = src
	cfg.HoldoverMaxAge = 10 * sim.Millisecond // never exceeded here
	ctl := MustNew(cfg)
	eng, _, _ := buildEngine(t, ctl, 50, 50)

	// Healthy phase establishes last-good utilities for both domains.
	eng.RunFor(sim.Millisecond)
	if ctl.HoldoverTicks() != 0 || ctl.FailsafeTicks() != 0 {
		t.Fatalf("healthy phase counted holdover %d / failsafe %d",
			ctl.HoldoverTicks(), ctl.FailsafeTicks())
	}

	// Lose domain b entirely, well inside the age bound: every decision
	// about b is a holdover, none a fail-safe, and b keeps competing on
	// its held utility instead of being parked at the floor.
	src.lost["b"] = true
	eng.RunFor(sim.Millisecond)
	if ctl.HoldoverTicks() == 0 {
		t.Fatal("no holdover ticks while b's telemetry was lost in-bound")
	}
	if ctl.FailsafeTicks() != 0 {
		t.Fatalf("fail-safe engaged %d times inside the age bound", ctl.FailsafeTicks())
	}
}

func TestTelemetryFailSafePastBound(t *testing.T) {
	src := &scriptedTelemetry{lost: map[string]bool{"b": true}}
	cfg := baseConfig()
	cfg.TargetPower = 200 // under target: healthy domains get boosted
	cfg.Telemetry = src
	cfg.HoldoverMaxAge = 40 * sim.Microsecond // two control periods
	ctl := MustNew(cfg)
	eng, _, _ := buildEngine(t, ctl, 50, 50)

	eng.RunFor(sim.Millisecond)
	if ctl.FailsafeTicks() == 0 {
		t.Fatal("fail-safe never engaged though b was dark past the bound")
	}
	floor := ctl.cfg.PrioMin // defaults resolved by New
	prios := ctl.Priorities()
	if prios["b"] != floor {
		t.Fatalf("dark domain at %g, want parked at PrioMin %g", prios["b"], floor)
	}
	if prios["a"] <= prios["b"] {
		t.Fatalf("healthy domain not preferred over dark one: %v", prios)
	}

	// Telemetry returns: fresh samples re-arm the domain and the
	// fail-safe counter stops advancing.
	src.lost["b"] = false
	atRecovery := ctl.FailsafeTicks()
	eng.RunFor(sim.Millisecond)
	if got := ctl.FailsafeTicks(); got != atRecovery {
		t.Fatalf("fail-safe kept counting after recovery: %d -> %d", atRecovery, got)
	}
	if p := ctl.Priorities()["b"]; p <= floor {
		t.Fatalf("recovered domain still parked at %g", p)
	}
}

func TestTelemetryDelayedSamplesAreHoldover(t *testing.T) {
	src := &scriptedTelemetry{lost: map[string]bool{}}
	cfg := baseConfig()
	cfg.TargetPower = 90
	cfg.Telemetry = src
	cfg.HoldoverMaxAge = 500 * sim.Microsecond
	ctl := MustNew(cfg)
	eng, _, _ := buildEngine(t, ctl, 50, 50)

	eng.RunFor(sim.Millisecond)
	// Every delivery now arrives stale but within the bound: decisions
	// for both domains become holdovers, never fail-safes. A delayed
	// sample also refreshes the last-good marker (to its origin time),
	// so the age never compounds past the bound.
	src.age = 100 * sim.Microsecond
	eng.RunFor(2 * sim.Millisecond)
	if ctl.HoldoverTicks() == 0 {
		t.Fatal("stale deliveries not counted as holdover")
	}
	if ctl.FailsafeTicks() != 0 {
		t.Fatalf("in-bound stale deliveries hit fail-safe %d times", ctl.FailsafeTicks())
	}

	// Delay past the bound: the controller must stop trusting the data.
	src.age = sim.Millisecond
	eng.RunFor(sim.Millisecond)
	if ctl.FailsafeTicks() == 0 {
		t.Fatal("fail-safe never engaged on out-of-bound sample age")
	}
}

func TestTelemetryConfigDefaultsAndValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.Telemetry = &scriptedTelemetry{}
	ctl := MustNew(cfg)
	// Zero HoldoverMaxAge with telemetry modeled defaults to 4 periods.
	if want := 4 * ctl.Period(); ctl.cfg.HoldoverMaxAge != want {
		t.Fatalf("default holdover age %v, want %v", ctl.cfg.HoldoverMaxAge, want)
	}
	cfg.HoldoverMaxAge = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative holdover age accepted")
	}
}
