// Package trace records per-step package power during a run and computes
// the power-limit metrics of the paper's evaluation: the maximum power
// over a sliding time window (the form every power limit takes, §1), the
// Provisioned Power Efficiency (Eq. 4), and down-sampled series for the
// Fig. 1 / Fig. 2 style plots.
package trace

import (
	"fmt"
	"math"

	"hcapp/internal/sim"
)

// column is one named per-step series (a component's power, a rail
// voltage). Columns live in a slice — not a map — so the engine's hot
// loop appends through a prefetched index with no hashing and no
// per-step key allocation.
type column struct {
	name    string
	samples []float64
}

// Recorder accumulates one power sample per engine step.
type Recorder struct {
	dt      sim.Time
	total   []float64
	cols    []column
	colIdx  map[string]int // name → index into cols
	track   bool
	prefix  []float64 // lazy prefix sums over total
	prefixN int
}

// NewRecorder returns a recorder for steps of dt. trackComponents enables
// per-component series (used by the trace tool; costs memory).
func NewRecorder(dt sim.Time, trackComponents bool) (*Recorder, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("trace: non-positive timestep %d", dt)
	}
	r := &Recorder{dt: dt, track: trackComponents}
	if trackComponents {
		r.colIdx = make(map[string]int)
	}
	return r, nil
}

// MustRecorder is NewRecorder that panics on invalid input.
func MustRecorder(dt sim.Time, trackComponents bool) *Recorder {
	r, err := NewRecorder(dt, trackComponents)
	if err != nil {
		panic(err)
	}
	return r
}

// Tracking reports whether per-component series are recorded.
func (r *Recorder) Tracking() bool { return r.track }

// Column registers (or looks up) a named per-component series and
// returns its index for RecordColumn. Registering up front moves the
// name hash and any string concatenation out of the step loop. Returns
// -1 when tracking is disabled.
func (r *Recorder) Column(name string) int {
	if !r.track {
		return -1
	}
	if idx, ok := r.colIdx[name]; ok {
		return idx
	}
	idx := len(r.cols)
	r.cols = append(r.cols, column{name: name})
	r.colIdx[name] = idx
	return idx
}

// Record appends one step's total package power.
func (r *Recorder) Record(total float64) {
	r.total = append(r.total, total)
}

// RecordN appends n identical total-power samples — the recorder half
// of an adaptive stride.
func (r *Recorder) RecordN(total float64, n int) {
	for i := 0; i < n; i++ {
		r.total = append(r.total, total)
	}
}

// RecordColumn appends one step's sample to a registered column. Call
// once per column per step when tracking is enabled; idx -1 (tracking
// disabled) is a no-op.
func (r *Recorder) RecordColumn(idx int, p float64) {
	if idx < 0 {
		return
	}
	c := &r.cols[idx]
	c.samples = append(c.samples, p)
}

// RecordColumnN appends n identical samples to a registered column.
func (r *Recorder) RecordColumnN(idx int, p float64, n int) {
	if idx < 0 {
		return
	}
	c := &r.cols[idx]
	for i := 0; i < n; i++ {
		c.samples = append(c.samples, p)
	}
}

// RecordComponent appends one step's power for a named component — the
// by-name convenience wrapper around Column/RecordColumn. Call once per
// component per step when tracking is enabled.
func (r *Recorder) RecordComponent(name string, p float64) {
	r.RecordColumn(r.Column(name), p)
}

// Grow reserves capacity for n more steps in the total series and every
// registered column, so a sized run appends without reallocating — the
// preallocation the engine's zero-alloc steady-state guard relies on.
func (r *Recorder) Grow(n int) {
	if n <= 0 {
		return
	}
	if cap(r.total)-len(r.total) < n {
		grown := make([]float64, len(r.total), len(r.total)+n)
		copy(grown, r.total)
		r.total = grown
	}
	for i := range r.cols {
		c := &r.cols[i]
		if cap(c.samples)-len(c.samples) < n {
			grown := make([]float64, len(c.samples), len(c.samples)+n)
			copy(grown, c.samples)
			c.samples = grown
		}
	}
}

// Steps returns the number of recorded steps.
func (r *Recorder) Steps() int { return len(r.total) }

// Totals returns the raw per-step power series. The slice is the
// recorder's own backing store — callers must treat it as read-only. It
// exists for exact-series work: bit-identical determinism checks and
// the fault-sweep recovery-time scan.
func (r *Recorder) Totals() []float64 { return r.total }

// Duration returns the recorded span.
func (r *Recorder) Duration() sim.Time { return sim.Time(len(r.total)) * r.dt }

// DT returns the recorder's timestep.
func (r *Recorder) DT() sim.Time { return r.dt }

// ensurePrefix (re)builds prefix sums to cover all samples.
func (r *Recorder) ensurePrefix() {
	if r.prefixN == len(r.total) && len(r.prefix) == len(r.total)+1 {
		return
	}
	if len(r.prefix) == 0 {
		r.prefix = make([]float64, 1, len(r.total)+1)
	}
	for i := r.prefixN; i < len(r.total); i++ {
		r.prefix = append(r.prefix, r.prefix[i]+r.total[i])
	}
	r.prefixN = len(r.total)
}

// AvgPower returns the run's average package power.
func (r *Recorder) AvgPower() float64 {
	if len(r.total) == 0 {
		return 0
	}
	r.ensurePrefix()
	return r.prefix[len(r.total)] / float64(len(r.total))
}

// PPE returns the Provisioned Power Efficiency (Eq. 4): average power
// divided by the provisioned power.
func (r *Recorder) PPE(provisionedWatts float64) float64 {
	if provisionedWatts <= 0 {
		return math.NaN()
	}
	return r.AvgPower() / provisionedWatts
}

// MaxWindowAvg returns the maximum over the run of the power averaged
// over a sliding window. Runs shorter than the window are averaged whole.
// This is the quantity a power limit constrains: "power limits dictate a
// maximum power and a time window over which that maximum power is
// evaluated".
func (r *Recorder) MaxWindowAvg(window sim.Time) float64 {
	n := len(r.total)
	if n == 0 {
		return 0
	}
	k := int(window / r.dt)
	if k < 1 {
		k = 1
	}
	r.ensurePrefix()
	if k >= n {
		return r.prefix[n] / float64(n)
	}
	maxAvg := math.Inf(-1)
	kf := float64(k)
	for i := k; i <= n; i++ {
		avg := (r.prefix[i] - r.prefix[i-k]) / kf
		if avg > maxAvg {
			maxAvg = avg
		}
	}
	return maxAvg
}

// Violates reports whether the run exceeded limitWatts over the window.
func (r *Recorder) Violates(limitWatts float64, window sim.Time) bool {
	return r.MaxWindowAvg(window) > limitWatts
}

// Point is one sample of a down-sampled series.
type Point struct {
	T sim.Time
	P float64
}

// Series returns the total-power trace averaged into buckets of
// sampleEvery — the raw data behind Fig. 1.
func (r *Recorder) Series(sampleEvery sim.Time) []Point {
	k := int(sampleEvery / r.dt)
	if k < 1 {
		k = 1
	}
	r.ensurePrefix()
	var out []Point
	for i := k; i <= len(r.total); i += k {
		avg := (r.prefix[i] - r.prefix[i-k]) / float64(k)
		out = append(out, Point{T: sim.Time(i) * r.dt, P: avg})
	}
	return out
}

// WindowSeries returns the trailing moving average over window, sampled
// every sampleEvery — the Fig. 2 view ("the power draw over different
// time windows").
func (r *Recorder) WindowSeries(window, sampleEvery sim.Time) []Point {
	k := int(window / r.dt)
	if k < 1 {
		k = 1
	}
	s := int(sampleEvery / r.dt)
	if s < 1 {
		s = 1
	}
	r.ensurePrefix()
	var out []Point
	for i := k; i <= len(r.total); i += s {
		avg := (r.prefix[i] - r.prefix[i-k]) / float64(k)
		out = append(out, Point{T: sim.Time(i) * r.dt, P: avg})
	}
	return out
}

// ComponentSeries returns a component's down-sampled series, or nil if
// tracking was disabled or the name unknown.
func (r *Recorder) ComponentSeries(name string, sampleEvery sim.Time) []Point {
	if !r.track {
		return nil
	}
	idx, ok := r.colIdx[name]
	if !ok {
		return nil
	}
	samples := r.cols[idx].samples
	k := int(sampleEvery / r.dt)
	if k < 1 {
		k = 1
	}
	var out []Point
	sum := 0.0
	for i, p := range samples {
		sum += p
		if (i+1)%k == 0 {
			out = append(out, Point{T: sim.Time(i+1) * r.dt, P: sum / float64(k)})
			sum = 0
		}
	}
	return out
}

// ComponentNames lists tracked components in registration order.
func (r *Recorder) ComponentNames() []string {
	names := make([]string, 0, len(r.cols))
	for _, c := range r.cols {
		names = append(names, c.name)
	}
	return names
}

// Reset clears all samples for reuse. Column registrations and every
// backing array's capacity are kept, so a warmed-up recorder records
// the next run without allocating.
func (r *Recorder) Reset() {
	r.total = r.total[:0]
	r.prefix = r.prefix[:0]
	r.prefixN = 0
	for i := range r.cols {
		r.cols[i].samples = r.cols[i].samples[:0]
	}
}
