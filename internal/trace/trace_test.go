package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hcapp/internal/sim"
)

func TestNewRecorderErrors(t *testing.T) {
	if _, err := NewRecorder(0, false); err == nil {
		t.Fatal("zero timestep accepted")
	}
	if _, err := NewRecorder(-5, false); err == nil {
		t.Fatal("negative timestep accepted")
	}
}

func TestMustRecorderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRecorder did not panic")
		}
	}()
	MustRecorder(0, false)
}

func TestAvgPower(t *testing.T) {
	r := MustRecorder(100, false)
	for _, p := range []float64{10, 20, 30} {
		r.Record(p)
	}
	if got := r.AvgPower(); got != 20 {
		t.Fatalf("AvgPower = %g", got)
	}
	if r.Steps() != 3 {
		t.Fatalf("Steps = %d", r.Steps())
	}
	if r.Duration() != 300 {
		t.Fatalf("Duration = %d", r.Duration())
	}
	if r.DT() != 100 {
		t.Fatalf("DT = %d", r.DT())
	}
}

func TestAvgPowerEmpty(t *testing.T) {
	r := MustRecorder(100, false)
	if got := r.AvgPower(); got != 0 {
		t.Fatalf("empty AvgPower = %g", got)
	}
	if got := r.MaxWindowAvg(1000); got != 0 {
		t.Fatalf("empty MaxWindowAvg = %g", got)
	}
}

func TestPPE(t *testing.T) {
	// Eq. 4: PPE = AveragePower / SystemProvisionedPower.
	r := MustRecorder(100, false)
	for i := 0; i < 10; i++ {
		r.Record(80)
	}
	if got := r.PPE(100); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("PPE = %g, want 0.8", got)
	}
	if !math.IsNaN(r.PPE(0)) {
		t.Fatal("PPE with zero provisioned power should be NaN")
	}
}

func TestMaxWindowAvgExact(t *testing.T) {
	r := MustRecorder(100, false)
	// 10 steps at 50 W, then 5 steps at 150 W, then 10 at 50 W.
	for i := 0; i < 10; i++ {
		r.Record(50)
	}
	for i := 0; i < 5; i++ {
		r.Record(150)
	}
	for i := 0; i < 10; i++ {
		r.Record(50)
	}
	// Window of 5 steps (500 ns) catches the full burst.
	if got := r.MaxWindowAvg(500); got != 150 {
		t.Fatalf("5-step window max = %g, want 150", got)
	}
	// Window of 10 steps: best case 5×150 + 5×50 = 100.
	if got := r.MaxWindowAvg(1000); got != 100 {
		t.Fatalf("10-step window max = %g, want 100", got)
	}
	// Window longer than the run: whole-run average.
	want := r.AvgPower()
	if got := r.MaxWindowAvg(sim.Second); got != want {
		t.Fatalf("whole-run window = %g, want %g", got, want)
	}
}

func TestMaxWindowAvgSubStepWindow(t *testing.T) {
	r := MustRecorder(100, false)
	r.Record(10)
	r.Record(99)
	if got := r.MaxWindowAvg(10); got != 99 {
		t.Fatalf("sub-step window max = %g, want peak sample", got)
	}
}

func TestViolates(t *testing.T) {
	r := MustRecorder(100, false)
	for i := 0; i < 100; i++ {
		r.Record(90)
	}
	if r.Violates(100, 1000) {
		t.Fatal("false violation")
	}
	for i := 0; i < 20; i++ {
		r.Record(130)
	}
	if !r.Violates(100, 1000) {
		t.Fatal("missed violation")
	}
}

// naiveWindowMax is the O(n·k) reference implementation.
func naiveWindowMax(ps []float64, k int) float64 {
	if len(ps) == 0 {
		return 0
	}
	if k > len(ps) {
		k = len(ps)
	}
	best := math.Inf(-1)
	for i := 0; i+k <= len(ps); i++ {
		sum := 0.0
		for _, p := range ps[i : i+k] {
			sum += p
		}
		if avg := sum / float64(k); avg > best {
			best = avg
		}
	}
	return best
}

func TestMaxWindowAvgMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%64) + 1
		k := int(kRaw%16) + 1
		r := MustRecorder(100, false)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = rng.Float64() * 150
			r.Record(ps[i])
		}
		got := r.MaxWindowAvg(sim.Time(k) * 100)
		want := naiveWindowMax(ps, k)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalPrefixConsistency(t *testing.T) {
	// Interleaving queries and records must not corrupt the prefix sums.
	r := MustRecorder(100, false)
	r.Record(10)
	_ = r.AvgPower()
	r.Record(30)
	if got := r.AvgPower(); got != 20 {
		t.Fatalf("interleaved AvgPower = %g", got)
	}
	r.Record(50)
	if got := r.MaxWindowAvg(100); got != 50 {
		t.Fatalf("interleaved window max = %g", got)
	}
}

func TestSeries(t *testing.T) {
	r := MustRecorder(100, false)
	for i := 1; i <= 10; i++ {
		r.Record(float64(i * 10))
	}
	pts := r.Series(200) // buckets of 2 samples
	if len(pts) != 5 {
		t.Fatalf("series length %d, want 5", len(pts))
	}
	if pts[0].P != 15 || pts[0].T != 200 {
		t.Fatalf("first point %+v", pts[0])
	}
	if pts[4].P != 95 {
		t.Fatalf("last point %+v", pts[4])
	}
}

func TestWindowSeries(t *testing.T) {
	r := MustRecorder(100, false)
	for i := 0; i < 20; i++ {
		p := 50.0
		if i >= 10 {
			p = 100
		}
		r.Record(p)
	}
	pts := r.WindowSeries(500, 100)
	if len(pts) == 0 {
		t.Fatal("empty window series")
	}
	// The first point (window fully inside the 50 W region) must be 50;
	// the last (fully inside 100 W) must be 100.
	if pts[0].P != 50 {
		t.Fatalf("first windowed point %g", pts[0].P)
	}
	if pts[len(pts)-1].P != 100 {
		t.Fatalf("last windowed point %g", pts[len(pts)-1].P)
	}
}

func TestComponentTracking(t *testing.T) {
	r := MustRecorder(100, true)
	for i := 0; i < 4; i++ {
		r.Record(100)
		r.RecordComponent("cpu", 60)
		r.RecordComponent("gpu", 40)
	}
	pts := r.ComponentSeries("cpu", 200)
	if len(pts) != 2 || pts[0].P != 60 {
		t.Fatalf("cpu series %+v", pts)
	}
	if r.ComponentSeries("nope", 200) != nil {
		t.Fatal("unknown component returned data")
	}
	names := r.ComponentNames()
	if len(names) != 2 {
		t.Fatalf("component names %v", names)
	}
}

func TestComponentTrackingDisabled(t *testing.T) {
	r := MustRecorder(100, false)
	r.RecordComponent("cpu", 60) // must be a no-op
	if r.ComponentSeries("cpu", 100) != nil {
		t.Fatal("tracking disabled but series returned")
	}
}

func TestReset(t *testing.T) {
	r := MustRecorder(100, true)
	for i := 0; i < 10; i++ {
		r.Record(50)
		r.RecordComponent("cpu", 25)
	}
	_ = r.AvgPower() // force prefix build
	r.Reset()
	if r.Steps() != 0 || r.AvgPower() != 0 {
		t.Fatal("reset incomplete")
	}
	if r.ComponentSeries("cpu", 100) != nil {
		t.Fatal("component data survived reset")
	}
	r.Record(70)
	if got := r.AvgPower(); got != 70 {
		t.Fatalf("post-reset AvgPower = %g", got)
	}
}
