package trace

import (
	"math"
	"testing"

	"hcapp/internal/sim"
)

// FuzzMaxWindowAvg cross-checks the prefix-sum implementation against
// the naive O(n·k) reference on fuzzer-chosen inputs.
func FuzzMaxWindowAvg(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50}, uint8(2))
	f.Add([]byte{0}, uint8(1))
	f.Add([]byte{255, 0, 255, 0, 255, 0, 255}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw uint8) {
		if len(raw) == 0 || len(raw) > 512 {
			return
		}
		k := int(kRaw%32) + 1
		r := MustRecorder(100, false)
		ps := make([]float64, len(raw))
		for i, b := range raw {
			ps[i] = float64(b)
			r.Record(ps[i])
		}
		got := r.MaxWindowAvg(sim.Time(k) * 100)
		want := naiveWindowMax(ps, k)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("k=%d: got %g want %g", k, got, want)
		}
		// The window max can never exceed the peak sample.
		peak := 0.0
		for _, p := range ps {
			peak = math.Max(peak, p)
		}
		if got > peak+1e-9 {
			t.Fatalf("window max %g above peak sample %g", got, peak)
		}
	})
}
