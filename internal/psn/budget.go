package psn

import (
	"fmt"
	"strings"

	"hcapp/internal/sim"
)

// DelayRange is a [min, max] latency interval in nanoseconds.
type DelayRange struct {
	Min, Max sim.Time
}

// Scale multiplies both endpoints by k.
func (r DelayRange) Scale(k int64) DelayRange {
	return DelayRange{Min: r.Min * k, Max: r.Max * k}
}

// Add sums two ranges endpoint-wise.
func (r DelayRange) Add(o DelayRange) DelayRange {
	return DelayRange{Min: r.Min + o.Min, Max: r.Max + o.Max}
}

func (r DelayRange) String() string {
	return fmt.Sprintf("%d-%d", r.Min, r.Max)
}

// BudgetEntry is one row of the paper's Table 1: a component of the
// control round trip with its simulated latency range and the multiplier
// applied to scale it to a 2.5D system.
type BudgetEntry struct {
	Component string
	Simulated DelayRange // per-instance latency from literature/SPICE
	Count     int64      // instances in the round trip (e.g. 2 VRs)
	ScaleUp   int64      // extra scaling (e.g. ×5 PSN for 2.5D)
}

// Scaled returns the entry's contribution to the round trip.
func (e BudgetEntry) Scaled() DelayRange {
	k := e.Count
	if k <= 0 {
		k = 1
	}
	s := e.ScaleUp
	if s <= 0 {
		s = 1
	}
	return e.Simulated.Scale(k * s)
}

// Budget is the full Table 1 delay breakdown.
type Budget struct {
	Entries       []BudgetEntry
	ControlPeriod sim.Time // the chosen HCAPP control period
}

// Table1 returns the paper's published delay budget: Raven VR transitions
// (36–226 ns ×2 for global+domain), sensing circuitry (50–60 ns),
// controller logic (10–30 ns), and the Gupta et al. PSN model ×5
// (3–15 ns → 15–75 ns), against the conservative 1 µs control period.
func Table1() Budget {
	return Budget{
		Entries: []BudgetEntry{
			{Component: "Voltage Regulator (global and domain)", Simulated: DelayRange{36, 226}, Count: 2},
			{Component: "Sensing Circuitry", Simulated: DelayRange{50, 60}, Count: 1},
			{Component: "Controller", Simulated: DelayRange{10, 30}, Count: 1},
			{Component: "Power Supply Network", Simulated: DelayRange{3, 15}, Count: 1, ScaleUp: 5},
		},
		ControlPeriod: 1 * sim.Microsecond,
	}
}

// Total returns the end-to-end round-trip latency range.
func (b Budget) Total() DelayRange {
	var t DelayRange
	for _, e := range b.Entries {
		t = t.Add(e.Scaled())
	}
	return t
}

// Feasible reports whether the control period covers the worst-case round
// trip — the condition the paper uses to call 1 µs "conservative".
func (b Budget) Feasible() bool {
	return b.Total().Max <= b.ControlPeriod
}

// Render formats the budget as the paper's Table 1.
func (b Budget) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-42s %-28s %s\n", "Component", "Simulated Transition time (ns)", "Scaled Transition time (ns)")
	for _, e := range b.Entries {
		simCol := e.Simulated.String()
		if e.Count > 1 {
			simCol += fmt.Sprintf(" (x%d)", e.Count)
		}
		if e.ScaleUp > 1 {
			simCol += fmt.Sprintf(" (x%d)", e.ScaleUp)
		}
		fmt.Fprintf(&sb, "%-42s %-28s %s\n", e.Component, simCol, e.Scaled().String())
	}
	fmt.Fprintf(&sb, "%-42s %-28s %s\n", "Total", "", b.Total().String())
	fmt.Fprintf(&sb, "%-42s %-28s %d\n", "HCAPP Control Period", "", b.ControlPeriod)
	return sb.String()
}
