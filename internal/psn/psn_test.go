package psn

import (
	"math"
	"testing"
	"testing/quick"

	"hcapp/internal/sim"
)

func TestNewDelayLineErrors(t *testing.T) {
	if _, err := NewDelayLine(100, 0, 1); err == nil {
		t.Fatal("zero timestep accepted")
	}
	if _, err := NewDelayLine(-1, 100, 1); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestMustDelayLinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDelayLine did not panic")
		}
	}()
	MustDelayLine(100, 0, 1)
}

func TestDelayLineExactDelay(t *testing.T) {
	// 500 ns at 100 ns steps → depth 5.
	d := MustDelayLine(500, 100, 0.95)
	if d.Depth() != 5 {
		t.Fatalf("depth = %d, want 5", d.Depth())
	}
	for i := 0; i < 5; i++ {
		if got := d.Step(2.0); got != 0.95 {
			t.Fatalf("initial fill emerged early at step %d: %g", i, got)
		}
	}
	if got := d.Step(2.0); got != 2.0 {
		t.Fatalf("delayed sample = %g, want 2.0", got)
	}
}

func TestDelayLineZeroDelay(t *testing.T) {
	// Sub-step delays pass straight through: the engine's step ordering
	// already imposes one step of latency.
	d := MustDelayLine(0, 100, 0)
	if got := d.Step(7); got != 7 {
		t.Fatalf("zero-delay line should pass through: got %g", got)
	}
	if got := d.Step(8); got != 8 {
		t.Fatalf("second step = %g, want 8", got)
	}
}

func TestDelayLineOutputPeek(t *testing.T) {
	d := MustDelayLine(200, 100, 1.5)
	if got := d.Output(); got != 1.5 {
		t.Fatalf("Output peek = %g", got)
	}
	d.Step(3)
	if got := d.Output(); got != 1.5 {
		t.Fatalf("peek after one push = %g, want still initial", got)
	}
}

func TestDelayLineReset(t *testing.T) {
	d := MustDelayLine(300, 100, 0.9)
	for i := 0; i < 10; i++ {
		d.Step(5)
	}
	d.Reset()
	for i := 0; i <= d.Depth(); i++ {
		if got := d.Step(1); i < d.Depth() && got != 0.9 {
			t.Fatalf("reset line leaked at %d: %g", i, got)
		}
	}
}

func TestDelayLinePreservesSequence(t *testing.T) {
	d := MustDelayLine(300, 100, 0)
	inputs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	var outputs []float64
	for _, in := range inputs {
		outputs = append(outputs, d.Step(in))
	}
	// depth 3: outputs should be 0,0,0,1,2,3,4,5
	want := []float64{0, 0, 0, 1, 2, 3, 4, 5}
	for i := range want {
		if outputs[i] != want[i] {
			t.Fatalf("outputs %v, want %v", outputs, want)
		}
	}
}

func TestDelayLineSequenceProperty(t *testing.T) {
	f := func(vals []float64, depthRaw uint8) bool {
		depth := int(depthRaw%10) + 1
		d := MustDelayLine(sim.Time(depth)*100, 100, 0)
		for i, v := range vals {
			if math.IsNaN(v) {
				return true
			}
			out := d.Step(v)
			if i >= depth && out != vals[i-depth] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDroop(t *testing.T) {
	d := Droop{R: 0.001}
	// 95 W at 0.95 V → 100 A → 0.1 V droop.
	got := d.Apply(0.95, 95)
	if math.Abs(got-0.85) > 1e-12 {
		t.Fatalf("droop = %g, want 0.85", got)
	}
}

func TestDroopDegenerateInputs(t *testing.T) {
	d := Droop{R: 0.001}
	if got := d.Apply(0.95, 0); got != 0.95 {
		t.Fatalf("zero load drooped: %g", got)
	}
	if got := d.Apply(0, 50); got != 0 {
		t.Fatalf("zero rail drooped: %g", got)
	}
	if got := (Droop{R: 0}).Apply(0.95, 50); got != 0.95 {
		t.Fatalf("zero resistance drooped: %g", got)
	}
	// Huge load cannot push the rail negative.
	if got := d.Apply(0.5, 1e6); got != 0 {
		t.Fatalf("extreme droop = %g, want clamp at 0", got)
	}
}

func TestDroopMonotoneInLoad(t *testing.T) {
	d := Droop{R: 0.0005}
	prev := math.Inf(1)
	for p := 0.0; p <= 200; p += 10 {
		v := d.Apply(1.0, p)
		if v > prev+1e-12 {
			t.Fatalf("droop not monotone at %g W", p)
		}
		prev = v
	}
}
