// Package psn models the package power supply network: the propagation
// delay between the global regulator and each chiplet's domain regulator,
// IR droop under load, and the Table 1 round-trip delay budget that
// justifies HCAPP's 1 µs control period.
//
// The paper based its PSN behaviour on Cadence Spectre simulations of the
// Gupta et al. distributed power-delivery model, scaled ×5 for 2.5D
// interposer distances (3–15 ns → 15–75 ns). Here the network is a pure
// delay line plus a resistive droop term — the properties the control loop
// actually observes.
package psn

import (
	"fmt"

	"hcapp/internal/sim"
)

// DelayLine propagates a scalar signal (a voltage) with a fixed transport
// delay, sampled on the engine clock. The zero value is unusable;
// construct with NewDelayLine.
type DelayLine struct {
	ring []float64
	head int
	init float64
}

// NewDelayLine returns a delay line with the given transport delay,
// sampled at engine timestep dt, initially outputting init everywhere.
// Delays shorter than one timestep round down to a single-step delay of
// zero extra samples (the engine's step ordering already imposes one step
// of latency).
func NewDelayLine(delay, dt sim.Time, init float64) (*DelayLine, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("psn: non-positive timestep %d", dt)
	}
	if delay < 0 {
		return nil, fmt.Errorf("psn: negative delay %d", delay)
	}
	depth := int(delay / dt)
	d := &DelayLine{ring: make([]float64, depth+1), init: init}
	for i := range d.ring {
		d.ring[i] = init
	}
	return d, nil
}

// MustDelayLine is NewDelayLine that panics on error.
func MustDelayLine(delay, dt sim.Time, init float64) *DelayLine {
	d, err := NewDelayLine(delay, dt, init)
	if err != nil {
		panic(err)
	}
	return d
}

// Step pushes the current input sample and returns the delayed output.
func (d *DelayLine) Step(in float64) float64 {
	d.ring[d.head] = in
	d.head = (d.head + 1) % len(d.ring)
	return d.ring[d.head]
}

// SteadyAt reports whether the line is flat at v: every buffered sample
// equals v, so Step(v) is a pure head rotation returning v. The
// adaptive engine strides over flat lines with AdvanceN.
func (d *DelayLine) SteadyAt(v float64) bool {
	for _, s := range d.ring {
		if s != v {
			return false
		}
	}
	return true
}

// AdvanceN replays n steps of a line that SteadyAt verified flat: each
// step stores the value already present and rotates the head.
func (d *DelayLine) AdvanceN(n int64) {
	d.head = int((int64(d.head) + n) % int64(len(d.ring)))
}

// Output returns the sample that will emerge on the next Step, without
// advancing.
func (d *DelayLine) Output() float64 { return d.ring[d.head] }

// Depth returns the delay in samples.
func (d *DelayLine) Depth() int { return len(d.ring) - 1 }

// Reset refills the line with its initial value.
func (d *DelayLine) Reset() {
	for i := range d.ring {
		d.ring[i] = d.init
	}
	d.head = 0
}

// Droop models resistive (IR) voltage droop across the delivery network:
// Vout = Vin − I·R, with the current inferred from the load power at the
// droop point (I = P/V). R is the effective lumped resistance in ohms.
type Droop struct {
	R float64
}

// Apply returns the drooped voltage at a point drawing loadPower watts
// when supplied vin volts. Degenerate inputs (vin ≤ 0) return vin
// unchanged; droop is clamped so the output never goes negative.
func (d Droop) Apply(vin, loadPower float64) float64 {
	if d.R <= 0 || vin <= 0 || loadPower <= 0 {
		return vin
	}
	i := loadPower / vin
	out := vin - i*d.R
	if out < 0 {
		return 0
	}
	return out
}
