package psn

import (
	"strings"
	"testing"

	"hcapp/internal/sim"
)

func TestDelayRangeOps(t *testing.T) {
	r := DelayRange{10, 20}
	if got := r.Scale(3); got.Min != 30 || got.Max != 60 {
		t.Fatalf("Scale = %+v", got)
	}
	if got := r.Add(DelayRange{1, 2}); got.Min != 11 || got.Max != 22 {
		t.Fatalf("Add = %+v", got)
	}
	if got := r.String(); got != "10-20" {
		t.Fatalf("String = %q", got)
	}
}

func TestBudgetEntryScaled(t *testing.T) {
	e := BudgetEntry{Simulated: DelayRange{36, 226}, Count: 2}
	if got := e.Scaled(); got.Min != 72 || got.Max != 452 {
		t.Fatalf("VR entry scaled = %+v", got)
	}
	e = BudgetEntry{Simulated: DelayRange{3, 15}, Count: 1, ScaleUp: 5}
	if got := e.Scaled(); got.Min != 15 || got.Max != 75 {
		t.Fatalf("PSN entry scaled = %+v", got)
	}
	// Zero count/scale default to 1.
	e = BudgetEntry{Simulated: DelayRange{10, 20}}
	if got := e.Scaled(); got.Min != 10 || got.Max != 20 {
		t.Fatalf("default scaled = %+v", got)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	b := Table1()
	total := b.Total()
	// Paper Table 1: total 147–617 ns scaled, against a 1 µs period.
	if total.Min != 147 || total.Max != 617 {
		t.Fatalf("Table 1 total = %+v, want 147-617", total)
	}
	if b.ControlPeriod != 1*sim.Microsecond {
		t.Fatalf("control period = %d", b.ControlPeriod)
	}
	if !b.Feasible() {
		t.Fatal("paper budget must be feasible at 1 µs")
	}
}

func TestBudgetInfeasible(t *testing.T) {
	b := Table1()
	b.ControlPeriod = 500
	if b.Feasible() {
		t.Fatal("617 ns round trip cannot fit a 500 ns period")
	}
}

func TestBudgetRender(t *testing.T) {
	out := Table1().Render()
	for _, want := range []string{
		"Voltage Regulator (global and domain)",
		"Sensing Circuitry",
		"Controller",
		"Power Supply Network",
		"147-617",
		"1000",
		"(x2)",
		"(x5)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered budget missing %q:\n%s", want, out)
		}
	}
}
