package tracing

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func handlerGet(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHandler(t *testing.T) {
	tr, _ := newTestTracer(Config{})
	root := tr.StartRoot("job", "job-7", "job-7")
	tr.StartSpan(root.Context(), "run").End()
	root.End()
	h := Handler(tr)

	// Listing.
	rec := handlerGet(t, h, "/v1/traces")
	if rec.Code != http.StatusOK {
		t.Fatalf("list status %d", rec.Code)
	}
	var list listResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.NextOffset != -1 {
		t.Fatalf("list = %+v", list)
	}
	if list.Traces[0].JobID != "job-7" || list.Traces[0].Spans != 2 {
		t.Fatalf("row = %+v", list.Traces[0])
	}

	// Per-job lookup.
	rec = handlerGet(t, h, "/v1/traces?job=job-7")
	var tresp traceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tresp); err != nil {
		t.Fatal(err)
	}
	if tresp.TraceID != TraceIDFor("job-7") || len(tresp.Spans) != 2 {
		t.Fatalf("job lookup = %+v", tresp)
	}

	// By trace id, structure view.
	rec = handlerGet(t, h, "/v1/traces?trace="+TraceIDFor("job-7")+"&view=structure")
	if !strings.HasPrefix(rec.Body.String(), "job\n  run\n") {
		t.Fatalf("structure view:\n%s", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("structure content type %q", ct)
	}

	// Errors.
	if rec := handlerGet(t, h, "/v1/traces?job=nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job status %d", rec.Code)
	}
	if rec := handlerGet(t, h, "/v1/traces?offset=x"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad offset status %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/traces", nil)
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", rec2.Code)
	}
}
