package tracing

import (
	"context"
	"net/http"
	"strings"
)

// Trace context crosses process boundaries two ways:
//
//   - context.Context, for in-process hops (job manager → runner →
//     evaluator task, manager → coordinator Execute);
//   - HTTP headers in the W3C traceparent style, for the cluster wire
//     (coordinator → worker slice posts, client → coordinator runs).
//
// The traceparent header carries version-traceid-spanid-flags; the
// companion path header carries the span's tree path, which W3C has no
// slot for but deterministic child-id derivation needs.
const (
	// TraceparentHeader is the standard W3C header name.
	TraceparentHeader = "traceparent"
	// TracePathHeader carries SpanContext.Path alongside.
	TracePathHeader = "x-hcapp-trace-path"
)

// Traceparent renders the context as a traceparent header value.
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a traceparent header value.
func ParseTraceparent(v string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	if !isHex(parts[1]) || !isHex(parts[2]) {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: parts[1], SpanID: parts[2]}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Inject writes the context onto outbound request headers; invalid
// contexts write nothing.
func Inject(h http.Header, sc SpanContext) {
	if !sc.Valid() {
		return
	}
	h.Set(TraceparentHeader, sc.Traceparent())
	if sc.Path != "" {
		h.Set(TracePathHeader, sc.Path)
	}
}

// Extract reads a span context from inbound request headers.
func Extract(h http.Header) (SpanContext, bool) {
	sc, ok := ParseTraceparent(h.Get(TraceparentHeader))
	if !ok {
		return SpanContext{}, false
	}
	sc.Path = h.Get(TracePathHeader)
	return sc, true
}

// ctxKey keys the (tracer, span) pair in a context; one key for both
// so untraced paths pay a single Value lookup.
type ctxKey struct{}

type ctxVal struct {
	t  *Tracer
	sc SpanContext
}

// ContextWith returns ctx carrying the tracer and the current span.
func ContextWith(ctx context.Context, t *Tracer, sc SpanContext) context.Context {
	if t == nil || !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: t, sc: sc})
}

// FromContext reads the tracer and current span out of ctx; ok is
// false on untraced contexts.
func FromContext(ctx context.Context) (*Tracer, SpanContext, bool) {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok {
		return nil, SpanContext{}, false
	}
	return v.t, v.sc, true
}
