// Package tracing is a stdlib-only distributed span tracer for the
// hcapp job/fleet pipeline. One submitted job (or one fleet batch)
// yields one trace: a parented tree of timed spans covering every
// stage of the request path —
//
//	job                  root: POST /v1/jobs admission to terminal state
//	├── queue-wait       job queue time (submit → worker pickup)
//	└── run              the simulation itself
//	    └── item[i]      one batch work item (a job is a 1-item batch)
//	        └── attempt[n]   one dispatch of the item (retries and
//	            │            hedges are sibling attempts, n increasing)
//	            └── engine   the engine step loop on whichever node ran it
//
// Two properties make the tracer useful in a deterministic
// reproduction repo:
//
//   - Deterministic identity. A trace id is a pure function of the job
//     id, and every span id is a pure function of (trace id, tree
//     path), e.g. "job/run/item[3]/attempt[0]/engine". Coordinator and
//     worker derive the same ids independently, so a span tree
//     assembled from two processes needs no id reconciliation — and the
//     tree *structure* (names and parentage, not durations) is
//     byte-identical across fleet widths and across fleet vs
//     standalone execution, which CI diffs (scripts/ci.sh).
//
//   - Bounded storage. Spans land in an in-memory store capped by
//     trace count (FIFO eviction) and by spans per trace (excess
//     dropped and counted), exposed as GET /v1/traces; a long serving
//     life cannot grow the store without bound.
//
// Trace context crosses the cluster HTTP wire in a W3C
// traceparent-style header plus per-item span references on the batch
// body, so a worker parents its engine spans under the coordinator's
// attempt spans; see docs/TRACING.md.
package tracing

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"sync"
	"time"

	"hcapp/internal/telemetry"
)

// Span is one finished, timed tree node. Spans are immutable once
// recorded; only finished spans enter the store.
type Span struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	// Name is the stage name with an optional index suffix
	// ("item[3]"); Path is the full slash-joined tree position the
	// span id derives from.
	Name string `json:"name"`
	Path string `json:"path"`
	// JobID tags root spans created for a server job (per-job /v1/traces
	// filtering).
	JobID string `json:"job_id,omitempty"`
	// Attrs carry small facts (worker id, outcome, step count); they
	// never contribute to identity or structure.
	Attrs         map[string]string `json:"attrs,omitempty"`
	StartUnixNano int64             `json:"start_unix_nano"`
	DurationNS    int64             `json:"duration_ns"`
}

// SpanContext is the wire-portable identity of a live span: enough for
// any process to derive child span ids deterministically.
type SpanContext struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	Path    string `json:"path"`
}

// Valid reports whether the context names a span.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// TraceIDFor derives the 32-hex trace id for a seed (the job id for
// server jobs, a random token for ad-hoc batches). Deriving instead of
// generating keeps coordinator and workers in agreement without
// shipping the id everywhere the job id already travels.
func TraceIDFor(seed string) string {
	sum := sha256.Sum256([]byte("hcapp-trace|" + seed))
	return hex.EncodeToString(sum[:16])
}

// spanIDFor derives the 16-hex span id from the trace id and the
// span's tree path.
func spanIDFor(traceID, path string) string {
	sum := sha256.Sum256([]byte(traceID + "|" + path))
	return hex.EncodeToString(sum[:8])
}

// Child derives the context a span at path+"/"+name would have — the
// pure-function core StartSpan builds on, exported so tests and remote
// processes can predict ids.
func (sc SpanContext) Child(name string) SpanContext {
	path := name
	if sc.Path != "" {
		path = sc.Path + "/" + name
	}
	return SpanContext{TraceID: sc.TraceID, SpanID: spanIDFor(sc.TraceID, path), Path: path}
}

// Config sizes a Tracer.
type Config struct {
	// MaxTraces bounds retained traces (default 256, FIFO eviction).
	MaxTraces int
	// MaxSpansPerTrace bounds one trace's span count (default 4096);
	// excess spans are dropped and counted on the trace.
	MaxSpansPerTrace int
	// Stages, when non-nil, receives every finished span's duration
	// under its stage label (the span name minus any "[i]" index) —
	// hcapp_stage_duration_seconds in the serve registry.
	Stages *telemetry.HistogramVec
	// Now is the clock (tests inject a fake one).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxTraces <= 0 {
		c.MaxTraces = 256
	}
	if c.MaxSpansPerTrace <= 0 {
		c.MaxSpansPerTrace = 4096
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Tracer creates spans and stores the finished ones. A nil *Tracer is
// valid everywhere and disables tracing: every method no-ops and
// StartRoot/StartSpan return a nil *ActiveSpan whose methods no-op
// too, so call sites need no conditionals.
type Tracer struct {
	cfg Config

	mu     sync.Mutex
	traces map[string]*traceEntry
	order  []string // insertion order, for FIFO eviction and listing
}

type traceEntry struct {
	jobID   string
	spans   []Span
	dropped int
	started time.Time
}

// New builds a tracer.
func New(cfg Config) *Tracer {
	return &Tracer{cfg: cfg.withDefaults(), traces: make(map[string]*traceEntry)}
}

// ActiveSpan is a started, not yet finished span. It is owned by one
// goroutine; End records it into the tracer and returns the finished
// value (shipped over the wire by workers).
type ActiveSpan struct {
	t     *Tracer
	span  Span
	start time.Time
	ended bool
}

// StartRoot opens a trace's root span. traceSeed feeds TraceIDFor;
// jobID (may be empty) tags the trace for /v1/traces?job= filtering.
func (t *Tracer) StartRoot(name, jobID, traceSeed string) *ActiveSpan {
	if t == nil {
		return nil
	}
	traceID := TraceIDFor(traceSeed)
	now := t.cfg.Now()
	return &ActiveSpan{
		t: t,
		span: Span{
			TraceID:       traceID,
			SpanID:        spanIDFor(traceID, name),
			Name:          name,
			Path:          name,
			JobID:         jobID,
			StartUnixNano: now.UnixNano(),
		},
		start: now,
	}
}

// StartSpan opens a child under parent (local or remote — only the
// SpanContext matters).
func (t *Tracer) StartSpan(parent SpanContext, name string) *ActiveSpan {
	if t == nil || !parent.Valid() {
		return nil
	}
	child := parent.Child(name)
	now := t.cfg.Now()
	return &ActiveSpan{
		t: t,
		span: Span{
			TraceID:       child.TraceID,
			SpanID:        child.SpanID,
			ParentID:      parent.SpanID,
			Name:          name,
			Path:          child.Path,
			StartUnixNano: now.UnixNano(),
		},
		start: now,
	}
}

// Context returns the span's wire-portable identity.
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.span.TraceID, SpanID: s.span.SpanID, Path: s.span.Path}
}

// SetAttr attaches one attribute; chainable and nil-safe.
func (s *ActiveSpan) SetAttr(k, v string) *ActiveSpan {
	if s == nil || s.ended {
		return s
	}
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 4)
	}
	s.span.Attrs[k] = v
	return s
}

// End finishes the span, records it in the tracer's store, and returns
// the finished value. Ending twice records once.
func (s *ActiveSpan) End() Span {
	if s == nil {
		return Span{}
	}
	if s.ended {
		return s.span
	}
	s.ended = true
	s.span.DurationNS = s.t.cfg.Now().Sub(s.start).Nanoseconds()
	s.t.record(s.span)
	return s.span
}

// StageOf maps a span name to its bounded-cardinality stage label:
// the name minus any "[index]" suffix ("item[12]" → "item").
func StageOf(name string) string {
	if i := strings.IndexByte(name, '['); i > 0 {
		return name[:i]
	}
	return name
}

// record lands one locally finished span: store it and feed the stage
// histogram.
func (t *Tracer) record(s Span) { t.store(s, true) }

// store lands one finished span and, when feedStages is set, observes
// its duration on the stage histogram.
func (t *Tracer) store(s Span, feedStages bool) {
	if t == nil || s.TraceID == "" {
		return
	}
	if feedStages && t.cfg.Stages != nil {
		t.cfg.Stages.With(StageOf(s.Name)).Observe(float64(s.DurationNS) / 1e9)
	}
	t.mu.Lock()
	e, ok := t.traces[s.TraceID]
	if !ok {
		e = &traceEntry{started: t.cfg.Now()}
		t.traces[s.TraceID] = e
		t.order = append(t.order, s.TraceID)
		for len(t.order) > t.cfg.MaxTraces {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
	}
	if s.JobID != "" && e.jobID == "" {
		e.jobID = s.JobID
	}
	if len(e.spans) >= t.cfg.MaxSpansPerTrace {
		e.dropped++
	} else {
		e.spans = append(e.spans, s)
	}
	t.mu.Unlock()
}

// Ingest stores spans finished elsewhere (a worker's engine spans
// shipped back in a RunResponse). The stage histogram is not fed:
// remote spans were observed on the remote node's histogram already.
func (t *Tracer) Ingest(spans []Span) {
	if t == nil {
		return
	}
	for _, s := range spans {
		if s.TraceID == "" || s.SpanID == "" {
			continue
		}
		t.store(s, false)
	}
}

// Trace returns one trace's spans (nil if unknown) plus its dropped
// count, in recording order.
func (t *Tracer) Trace(traceID string) ([]Span, int) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.traces[traceID]
	if !ok {
		return nil, 0
	}
	return append([]Span(nil), e.spans...), e.dropped
}

// TraceForJob finds the trace tagged with jobID. Job ids map 1:1 to
// trace ids (TraceIDFor(jobID)), so this is a direct lookup.
func (t *Tracer) TraceForJob(jobID string) (string, []Span, int) {
	id := TraceIDFor(jobID)
	spans, dropped := t.Trace(id)
	if spans == nil {
		return "", nil, 0
	}
	return id, spans, dropped
}

// TraceSummary is one row of the GET /v1/traces listing.
type TraceSummary struct {
	TraceID string `json:"trace_id"`
	JobID   string `json:"job_id,omitempty"`
	Root    string `json:"root,omitempty"`
	Spans   int    `json:"spans"`
	Dropped int    `json:"dropped,omitempty"`
	// StartUnixNano is the earliest recorded span start.
	StartUnixNano int64 `json:"start_unix_nano,omitempty"`
}

// Traces pages through retained traces in insertion order; next is the
// offset to continue from, or -1 when exhausted.
func (t *Tracer) Traces(offset, limit int) (rows []TraceSummary, next int) {
	if t == nil {
		return nil, -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if offset < 0 {
		offset = 0
	}
	if limit <= 0 {
		limit = 50
	}
	for i := offset; i < len(t.order) && len(rows) < limit; i++ {
		id := t.order[i]
		e := t.traces[id]
		row := TraceSummary{TraceID: id, JobID: e.jobID, Spans: len(e.spans), Dropped: e.dropped}
		for _, s := range e.spans {
			if s.ParentID == "" && row.Root == "" {
				row.Root = s.Name
			}
			if row.StartUnixNano == 0 || s.StartUnixNano < row.StartUnixNano {
				row.StartUnixNano = s.StartUnixNano
			}
		}
		rows = append(rows, row)
	}
	next = offset + len(rows)
	if next >= len(t.order) {
		next = -1
	}
	return rows, next
}

// Len reports retained trace count (eviction tests).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}
