//go:build !race

package tracing_test

const raceEnabled = false
