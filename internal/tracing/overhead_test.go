// Overhead contract for the tracing engine observer, mirroring the
// root-level TestInstrumentedStepOverhead: attaching an EngineObserver
// to the engine hot path must cost less than 5%, the budget that lets
// every traced job carry an engine span.
package tracing_test

import (
	"testing"
	"time"

	"hcapp"
	"hcapp/internal/tracing"
)

func buildBench(tb testing.TB, obs hcapp.StepObserver) *hcapp.System {
	tb.Helper()
	cfg := hcapp.DefaultConfig()
	combo, err := hcapp.ComboByName("Hi-Hi")
	if err != nil {
		tb.Fatal(err)
	}
	sys, err := hcapp.Build(cfg, combo, hcapp.BuildOptions{
		Scheme:      hcapp.HCAPPScheme(),
		TargetPower: hcapp.TargetPowerFor(hcapp.PackagePinLimit()),
		Observer:    obs,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

func stepTime(sys *hcapp.System, span hcapp.Time) time.Duration {
	best := time.Duration(1 << 62)
	for trial := 0; trial < 5; trial++ {
		start := time.Now()
		sys.Engine.RunFor(span)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestTracingStepOverhead prices the EngineObserver's two field writes
// per step against an unobserved engine and fails past the 5% budget.
func TestTracingStepOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates the observer ops being priced")
	}
	tr := tracing.New(tracing.Config{})
	root := tr.StartRoot("job", "bench", "bench")
	obs := tracing.NewEngineObserver(tr.StartSpan(root.Context(), "engine"))

	base := buildBench(t, nil)
	traced := buildBench(t, obs)
	const span = 2 * hcapp.Millisecond
	// Interleaved warm-up then measurement, so both runs see the same
	// cache/turbo conditions.
	base.Engine.RunFor(span)
	traced.Engine.RunFor(span)
	tBase := stepTime(base, span)
	tTraced := stepTime(traced, span)
	ratio := tTraced.Seconds() / tBase.Seconds()
	t.Logf("unobserved %v, traced %v, ratio %.3f", tBase, tTraced, ratio)
	if ratio > 1.05 {
		t.Errorf("tracing overhead %.1f%% exceeds the 5%% budget", 100*(ratio-1))
	}
	if obs.Steps() == 0 {
		t.Error("engine observer counted no steps")
	}
	obs.Finish(nil)
	root.End()
	if spans, _ := tr.Trace(tracing.TraceIDFor("bench")); len(spans) != 2 {
		t.Errorf("bench trace has %d spans, want 2", len(spans))
	}
}
