package tracing

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler serves the tracer's HTTP surface at GET /v1/traces:
//
//	GET /v1/traces                     page retained traces
//	    ?offset=N&limit=M              paging (limit default 50)
//	GET /v1/traces?job=<job id>        one job's full span tree (JSON)
//	GET /v1/traces?trace=<trace id>    one trace by id (JSON)
//	    &view=structure                canonical text tree instead of
//	                                   JSON (the CI-diffed form)
//
// Both hcapp-serve roles mount it: the coordinator/standalone server
// (whole job trees) and workers (their locally executed engine spans).
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSONError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
			return
		}
		q := r.URL.Query()
		traceID := q.Get("trace")
		if job := q.Get("job"); job != "" {
			traceID = TraceIDFor(job)
		}
		if traceID != "" {
			spans, dropped := t.Trace(traceID)
			if spans == nil {
				writeJSONError(w, http.StatusNotFound, "no trace %q", traceID)
				return
			}
			if q.Get("view") == "structure" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				fmt.Fprint(w, Structure(spans))
				return
			}
			writeJSONBody(w, traceResponse{TraceID: traceID, Spans: spans, Dropped: dropped})
			return
		}
		offset, ok := intParam(w, q.Get("offset"), 0)
		if !ok {
			return
		}
		limit, ok := intParam(w, q.Get("limit"), 0)
		if !ok {
			return
		}
		rows, next := t.Traces(offset, limit)
		if rows == nil {
			rows = []TraceSummary{}
		}
		writeJSONBody(w, listResponse{Traces: rows, NextOffset: next})
	})
}

// traceResponse is the single-trace JSON body.
type traceResponse struct {
	TraceID string `json:"trace_id"`
	Spans   []Span `json:"spans"`
	// Dropped counts spans lost to the per-trace cap.
	Dropped int `json:"dropped,omitempty"`
}

// listResponse is the paged listing body; NextOffset is -1 when the
// listing is exhausted.
type listResponse struct {
	Traces     []TraceSummary `json:"traces"`
	NextOffset int            `json:"next_offset"`
}

func intParam(w http.ResponseWriter, v string, def int) (int, bool) {
	if v == "" {
		return def, true
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		writeJSONError(w, http.StatusBadRequest, "bad integer parameter %q", v)
		return 0, false
	}
	return n, true
}

func writeJSONBody(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}
