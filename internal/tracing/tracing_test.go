package tracing

import (
	"context"
	"net/http"
	"testing"
	"time"

	"hcapp/internal/telemetry"
)

// fakeClock hands the tracer a deterministic time source; each call
// advances by step so spans get nonzero durations.
type fakeClock struct {
	now  time.Time
	step time.Duration
}

func (c *fakeClock) tick() time.Time {
	c.now = c.now.Add(c.step)
	return c.now
}

func newTestTracer(cfg Config) (*Tracer, *fakeClock) {
	clock := &fakeClock{now: time.Unix(1700000000, 0), step: time.Millisecond}
	cfg.Now = clock.tick
	return New(cfg), clock
}

// TestDeterministicIdentity: trace and span ids are pure functions of
// (seed, tree path) — the property the whole cross-process design
// rests on.
func TestDeterministicIdentity(t *testing.T) {
	if TraceIDFor("job-1") != TraceIDFor("job-1") {
		t.Fatal("TraceIDFor not deterministic")
	}
	if TraceIDFor("job-1") == TraceIDFor("job-2") {
		t.Fatal("distinct seeds collide")
	}
	if got := len(TraceIDFor("x")); got != 32 {
		t.Fatalf("trace id length = %d, want 32", got)
	}

	root := SpanContext{TraceID: TraceIDFor("job-1"), SpanID: spanIDFor(TraceIDFor("job-1"), "job"), Path: "job"}
	a := root.Child("run").Child("item[0]")
	b := root.Child("run").Child("item[0]")
	if a != b {
		t.Fatalf("Child derivation not deterministic: %+v vs %+v", a, b)
	}
	if a.Path != "job/run/item[0]" {
		t.Fatalf("path = %q", a.Path)
	}
	if len(a.SpanID) != 16 {
		t.Fatalf("span id length = %d, want 16", len(a.SpanID))
	}
	if c := root.Child("run").Child("item[1]"); c.SpanID == a.SpanID {
		t.Fatal("sibling items share a span id")
	}

	// Two tracers (think: coordinator and worker) derive the same ids
	// independently.
	t1, _ := newTestTracer(Config{})
	t2, _ := newTestTracer(Config{})
	s1 := t1.StartRoot("job", "j", "j")
	s2 := t2.StartSpan(s1.Context(), "run")
	if want := s1.Context().Child("run"); s2.Context() != want {
		t.Fatalf("remote child context %+v, want %+v", s2.Context(), want)
	}
}

// TestSpanLifecycle: attrs, idempotent End, parent wiring, and the
// nil-receiver no-op contract every call site leans on.
func TestSpanLifecycle(t *testing.T) {
	tr, _ := newTestTracer(Config{})

	root := tr.StartRoot("job", "job-9", "job-9")
	child := tr.StartSpan(root.Context(), "run")
	child.SetAttr("outcome", "ok").SetAttr("worker", "local")
	first := child.End()
	if first.DurationNS <= 0 {
		t.Fatalf("duration = %d, want > 0", first.DurationNS)
	}
	// SetAttr after End must not mutate the recorded span.
	child.SetAttr("late", "x")
	if _, ok := child.End().Attrs["late"]; ok {
		t.Fatal("SetAttr mutated an ended span")
	}
	if second := child.End(); second.DurationNS != first.DurationNS {
		t.Fatal("second End re-measured the span")
	}
	root.End()

	spans, dropped := tr.Trace(first.TraceID)
	if dropped != 0 || len(spans) != 2 {
		t.Fatalf("trace has %d spans (%d dropped), want 2 (0)", len(spans), dropped)
	}
	if spans[0].ParentID != root.Context().SpanID {
		t.Fatalf("child parent id %q, want root %q", spans[0].ParentID, root.Context().SpanID)
	}
	if spans[1].JobID != "job-9" {
		t.Fatalf("root JobID = %q", spans[1].JobID)
	}

	// Nil tracer and nil span: everything no-ops, nothing panics.
	var nilT *Tracer
	s := nilT.StartRoot("job", "j", "j")
	if s != nil {
		t.Fatal("nil tracer StartRoot returned a span")
	}
	s.SetAttr("k", "v")
	s.End()
	nilT.Ingest([]Span{{TraceID: "x"}})
	if got := nilT.Len(); got != 0 {
		t.Fatalf("nil tracer Len = %d", got)
	}
	if sp := tr.StartSpan(SpanContext{}, "x"); sp != nil {
		t.Fatal("invalid parent produced a span")
	}
}

func TestStageOf(t *testing.T) {
	for name, want := range map[string]string{
		"item[12]":   "item",
		"attempt[0]": "attempt",
		"engine":     "engine",
		"queue-wait": "queue-wait",
	} {
		if got := StageOf(name); got != want {
			t.Fatalf("StageOf(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestStageHistogramFeed: locally finished spans observe their duration
// under the de-indexed stage label; Ingest (remote spans) must not
// double-count — the remote node already observed them.
func TestStageHistogramFeed(t *testing.T) {
	reg := telemetry.NewRegistry()
	stages := reg.Histogram("hcapp_stage_duration_seconds", "test", telemetry.DefBuckets(), "stage")
	tr, _ := newTestTracer(Config{Stages: stages})

	root := tr.StartRoot("job", "j", "j")
	tr.StartSpan(root.Context(), "item[3]").End()
	root.End()
	if got := stages.With("item").Count(); got != 1 {
		t.Fatalf("stage item count = %g, want 1", got)
	}
	if got := stages.With("job").Count(); got != 1 {
		t.Fatalf("stage job count = %g, want 1", got)
	}

	remote := root.Context().Child("engine")
	tr.Ingest([]Span{{TraceID: remote.TraceID, SpanID: remote.SpanID, Name: "engine", Path: remote.Path, DurationNS: 1e6}})
	if got := stages.With("engine").Count(); got != 0 {
		t.Fatalf("Ingest fed the stage histogram (engine count = %g)", got)
	}
	if spans, _ := tr.Trace(remote.TraceID); len(spans) != 3 {
		t.Fatalf("ingested span not stored: %d spans", len(spans))
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: TraceIDFor("j"), SpanID: spanIDFor(TraceIDFor("j"), "job"), Path: "job"}
	got, ok := ParseTraceparent(sc.Traceparent())
	if !ok || got.TraceID != sc.TraceID || got.SpanID != sc.SpanID {
		t.Fatalf("round trip: %+v ok=%v, want %+v", got, ok, sc)
	}

	for _, bad := range []string{
		"",
		"00-abc-def-01",
		"01-" + sc.TraceID + "-" + sc.SpanID + "-01",               // unknown version
		"00-" + sc.TraceID + "-" + sc.SpanID,                       // missing flags
		"00-XYZ4567890123456789012345678901a-" + sc.SpanID + "-01", // non-hex
		"00-" + sc.TraceID + "-GGGGGGGGGGGGGGGG-01",
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent accepted %q", bad)
		}
	}

	h := make(http.Header)
	Inject(h, sc)
	out, ok := Extract(h)
	if !ok || out != sc {
		t.Fatalf("header round trip: %+v ok=%v, want %+v", out, ok, sc)
	}
	empty := make(http.Header)
	Inject(empty, SpanContext{})
	if len(empty) != 0 {
		t.Fatal("invalid context wrote headers")
	}
	if _, ok := Extract(empty); ok {
		t.Fatal("Extract succeeded on empty headers")
	}
}

func TestContextPropagation(t *testing.T) {
	tr, _ := newTestTracer(Config{})
	sc := SpanContext{TraceID: TraceIDFor("j"), SpanID: spanIDFor(TraceIDFor("j"), "job"), Path: "job"}

	ctx := ContextWith(context.Background(), tr, sc)
	gotT, gotSC, ok := FromContext(ctx)
	if !ok || gotT != tr || gotSC != sc {
		t.Fatalf("FromContext = (%v, %+v, %v)", gotT, gotSC, ok)
	}

	if _, _, ok := FromContext(context.Background()); ok {
		t.Fatal("untraced context reported a tracer")
	}
	if got := ContextWith(context.Background(), nil, sc); got != context.Background() {
		t.Fatal("nil tracer changed the context")
	}
	if got := ContextWith(context.Background(), tr, SpanContext{}); got != context.Background() {
		t.Fatal("invalid span changed the context")
	}
}
