package tracing

import (
	"sort"
	"strconv"
	"strings"
)

// Structure renders a trace's span tree in a canonical, id-free text
// form: one line per span, two-space indentation per depth, children
// ordered by name (numeric suffixes compared numerically, so item[10]
// sorts after item[9]). Durations, ids and attrs are omitted, so the
// output is a pure function of tree shape — CI diffs it across fleet
// widths and against standalone runs (scripts/ci.sh).
//
// A span whose parent is absent from the collection is an orphan: it
// renders at the end under an "orphan:" marker with its full path.
// A complete single-store trace (everything a coordinator assembled)
// must render none; a worker's local store holds only its own engine
// spans, whose parents live on the coordinator, so partial views
// legitimately show orphans (docs/TRACING.md).
func Structure(spans []Span) string {
	byID := make(map[string]int, len(spans))
	for i, s := range spans {
		byID[s.SpanID] = i
	}
	children := make(map[string][]int)
	var roots, orphans []int
	for i, s := range spans {
		switch {
		case s.ParentID == "":
			roots = append(roots, i)
		default:
			if _, ok := byID[s.ParentID]; ok {
				children[s.ParentID] = append(children[s.ParentID], i)
			} else {
				orphans = append(orphans, i)
			}
		}
	}
	order := func(idxs []int) {
		sort.Slice(idxs, func(a, b int) bool {
			return nameLess(spans[idxs[a]].Name, spans[idxs[b]].Name)
		})
	}

	var b strings.Builder
	var render func(idx, depth int)
	render = func(idx, depth int) {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		b.WriteString(spans[idx].Name)
		b.WriteByte('\n')
		kids := children[spans[idx].SpanID]
		order(kids)
		for _, k := range kids {
			render(k, depth+1)
		}
	}
	order(roots)
	for _, r := range roots {
		render(r, 0)
	}
	order(orphans)
	for _, o := range orphans {
		b.WriteString("orphan: ")
		b.WriteString(spans[o].Path)
		b.WriteByte('\n')
	}
	return b.String()
}

// nameLess orders sibling names: by prefix first, then numerically by
// any trailing "[n]" index.
func nameLess(a, b string) bool {
	pa, na := splitIndex(a)
	pb, nb := splitIndex(b)
	if pa != pb {
		return pa < pb
	}
	return na < nb
}

func splitIndex(name string) (prefix string, idx int) {
	open := strings.IndexByte(name, '[')
	if open < 0 || !strings.HasSuffix(name, "]") {
		return name, -1
	}
	n, err := strconv.Atoi(name[open+1 : len(name)-1])
	if err != nil {
		return name, -1
	}
	return name[:open], n
}

// Orphans returns the spans whose parent is not in the collection —
// the integrity check the chaos propagation test and the CI trace
// stage assert is empty for coordinator-assembled traces.
func Orphans(spans []Span) []Span {
	byID := make(map[string]bool, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = true
	}
	var out []Span
	for _, s := range spans {
		if s.ParentID != "" && !byID[s.ParentID] {
			out = append(out, s)
		}
	}
	return out
}
