package tracing

import (
	"fmt"
	"strings"
	"testing"
)

// TestMaxTracesFIFOEviction: the store retains at most MaxTraces
// traces, evicting the oldest first — a long serving life cannot grow
// the store without bound.
func TestMaxTracesFIFOEviction(t *testing.T) {
	tr, _ := newTestTracer(Config{MaxTraces: 3})
	for i := 0; i < 5; i++ {
		tr.StartRoot("job", fmt.Sprintf("job-%d", i), fmt.Sprintf("job-%d", i)).End()
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("retained %d traces, want 3", got)
	}
	// The two oldest are gone, the three newest remain.
	for i := 0; i < 2; i++ {
		if _, spans, _ := tr.TraceForJob(fmt.Sprintf("job-%d", i)); spans != nil {
			t.Fatalf("job-%d survived eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, spans, _ := tr.TraceForJob(fmt.Sprintf("job-%d", i)); len(spans) != 1 {
			t.Fatalf("job-%d evicted too early", i)
		}
	}
}

// TestMaxSpansPerTraceDropped: spans beyond the per-trace cap are
// dropped and counted rather than stored.
func TestMaxSpansPerTraceDropped(t *testing.T) {
	tr, _ := newTestTracer(Config{MaxSpansPerTrace: 4})
	root := tr.StartRoot("job", "j", "j")
	for i := 0; i < 6; i++ {
		tr.StartSpan(root.Context(), fmt.Sprintf("item[%d]", i)).End()
	}
	root.End()
	spans, dropped := tr.Trace(TraceIDFor("j"))
	if len(spans) != 4 {
		t.Fatalf("stored %d spans, want 4", len(spans))
	}
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3 (items 4, 5 and the late root)", dropped)
	}
}

func TestTracesPaging(t *testing.T) {
	tr, _ := newTestTracer(Config{})
	if rows, next := tr.Traces(0, 10); len(rows) != 0 || next != -1 {
		t.Fatalf("empty store paged (%d rows, next %d)", len(rows), next)
	}
	for i := 0; i < 5; i++ {
		tr.StartRoot("job", fmt.Sprintf("job-%d", i), fmt.Sprintf("job-%d", i)).End()
	}

	rows, next := tr.Traces(0, 2)
	if len(rows) != 2 || next != 2 {
		t.Fatalf("page 1: %d rows, next %d", len(rows), next)
	}
	if rows[0].JobID != "job-0" || rows[0].Root != "job" || rows[0].Spans != 1 {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	if rows[0].StartUnixNano == 0 {
		t.Fatal("row 0 carries no start time")
	}
	rows, next = tr.Traces(next, 2)
	if len(rows) != 2 || next != 4 {
		t.Fatalf("page 2: %d rows, next %d", len(rows), next)
	}
	rows, next = tr.Traces(next, 2)
	if len(rows) != 1 || next != -1 {
		t.Fatalf("last page: %d rows, next %d (want 1, -1)", len(rows), next)
	}

	// Default limit covers everything here.
	if rows, next := tr.Traces(0, 0); len(rows) != 5 || next != -1 {
		t.Fatalf("default limit: %d rows, next %d", len(rows), next)
	}
	var nilT *Tracer
	if rows, next := nilT.Traces(0, 0); rows != nil || next != -1 {
		t.Fatal("nil tracer paged")
	}
}

func TestTraceForJob(t *testing.T) {
	tr, _ := newTestTracer(Config{})
	root := tr.StartRoot("job", "job-42", "job-42")
	tr.StartSpan(root.Context(), "run").End()
	root.End()

	id, spans, dropped := tr.TraceForJob("job-42")
	if id != TraceIDFor("job-42") {
		t.Fatalf("trace id %q", id)
	}
	if len(spans) != 2 || dropped != 0 {
		t.Fatalf("%d spans, %d dropped", len(spans), dropped)
	}
	if id, spans, _ := tr.TraceForJob("no-such-job"); id != "" || spans != nil {
		t.Fatalf("unknown job returned (%q, %d spans)", id, len(spans))
	}
}

// TestStructure: the canonical rendering is id-free, indents by depth,
// sorts numeric indices numerically, and flags orphans — the exact
// output CI diffs across fleet widths.
func TestStructure(t *testing.T) {
	tr, _ := newTestTracer(Config{})
	root := tr.StartRoot("job", "j", "j")
	run := tr.StartSpan(root.Context(), "run")
	// End items out of order and with 2-digit indices to exercise the
	// numeric sibling sort (item[10] after item[9], not after item[1]).
	for _, i := range []int{10, 2, 0, 9, 1} {
		item := tr.StartSpan(run.Context(), fmt.Sprintf("item[%d]", i))
		att := tr.StartSpan(item.Context(), "attempt[0]")
		tr.StartSpan(att.Context(), "engine").End()
		att.End()
		item.End()
	}
	run.End()
	tr.StartSpan(root.Context(), "queue-wait").End()
	root.End()

	spans, _ := tr.Trace(TraceIDFor("j"))
	got := Structure(spans)
	want := strings.Join([]string{
		"job",
		"  queue-wait",
		"  run",
		"    item[0]",
		"      attempt[0]",
		"        engine",
		"    item[1]",
		"      attempt[0]",
		"        engine",
		"    item[2]",
		"      attempt[0]",
		"        engine",
		"    item[9]",
		"      attempt[0]",
		"        engine",
		"    item[10]",
		"      attempt[0]",
		"        engine",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("structure:\n%s\nwant:\n%s", got, want)
	}
	if orphans := Orphans(spans); len(orphans) != 0 {
		t.Fatalf("complete trace has %d orphans", len(orphans))
	}
}

// TestStructureOrphans: a span whose parent is missing renders under
// the orphan marker and is returned by Orphans — the integrity signal
// the chaos propagation test asserts never fires on assembled traces.
func TestStructureOrphans(t *testing.T) {
	tr, _ := newTestTracer(Config{})
	root := tr.StartRoot("job", "j", "j")
	// An engine span whose attempt parent never landed in this store.
	ghost := root.Context().Child("run").Child("item[0]").Child("attempt[0]")
	tr.Ingest([]Span{{
		TraceID: ghost.TraceID, SpanID: ghost.Child("engine").SpanID,
		ParentID: ghost.SpanID, Name: "engine", Path: ghost.Child("engine").Path,
	}})
	root.End()

	spans, _ := tr.Trace(TraceIDFor("j"))
	got := Structure(spans)
	if !strings.Contains(got, "orphan: job/run/item[0]/attempt[0]/engine") {
		t.Fatalf("orphan not flagged:\n%s", got)
	}
	orphans := Orphans(spans)
	if len(orphans) != 1 || orphans[0].Name != "engine" {
		t.Fatalf("Orphans = %+v", orphans)
	}
}
