package tracing

import (
	"fmt"

	"hcapp/internal/sched"
	"hcapp/internal/sim"
)

// EngineObserver is the run-level sched.StepObserver: it hangs off the
// engine's existing observer tee (sched.Observers) and prices each
// step at two plain field updates, so the engine hot path stays inside
// the <5% overhead budget (TestTracingStepOverhead). Finish stamps the
// step count and simulated horizon onto the wrapped engine span and
// ends it.
//
// A nil *EngineObserver is a valid no-op observer, but prefer not
// attaching it at all when tracing is off — sched.Observers drops
// untyped nils, not typed ones.
type EngineObserver struct {
	steps int64
	last  sim.Time
	span  *ActiveSpan
}

// NewEngineObserver wraps an engine span (usually
// tracer.StartSpan(attempt, "engine")).
func NewEngineObserver(span *ActiveSpan) *EngineObserver {
	return &EngineObserver{span: span}
}

// ObserveStep implements sched.StepObserver.
func (o *EngineObserver) ObserveStep(now sim.Time, _ float64, _ []sched.DomainSample) {
	if o == nil {
		return
	}
	o.steps++
	o.last = now
}

// Steps reports observed engine steps (tests).
func (o *EngineObserver) Steps() int64 {
	if o == nil {
		return 0
	}
	return o.steps
}

// Finish ends the engine span with outcome and progress attributes and
// returns the finished span.
func (o *EngineObserver) Finish(err error) Span {
	if o == nil || o.span == nil {
		return Span{}
	}
	o.span.SetAttr("steps", fmt.Sprintf("%d", o.steps))
	o.span.SetAttr("sim_ns", fmt.Sprintf("%d", int64(o.last)))
	o.span.SetAttr("outcome", Outcome(err))
	return o.span.End()
}

// Outcome is the conventional span outcome attribute value for an
// error: "ok" or "error".
func Outcome(err error) string {
	if err != nil {
		return "error"
	}
	return "ok"
}
