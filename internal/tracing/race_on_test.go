//go:build race

package tracing_test

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation inflates the hot-path costs the
// overhead contract measures; timing guards skip themselves under it.
const raceEnabled = true
