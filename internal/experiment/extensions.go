package experiment

import (
	"context"
	"fmt"

	"hcapp/internal/central"
	"hcapp/internal/config"
	"hcapp/internal/noc"
	"hcapp/internal/sched"
	"hcapp/internal/sim"
	"hcapp/internal/swctl"
)

// The extensions in this file go beyond the paper's published
// evaluation along the axes its §6 future work names: smarter software
// controllers on top of HCAPP, and a structurally centralized
// alternative built from the pieces HCAPP deliberately avoids (a metric
// collection network and a global allocator).

// scalableDomains are the domains software policies manage.
var scalableDomains = []string{"cpu", "gpu", "sha"}

// SoftwarePolicies returns the policy set compared by the software
// extension experiment.
func SoftwarePolicies() []swctl.Policy {
	return []swctl.Policy{
		swctl.Neutral{},
		swctl.Static{Component: "cpu"},
		swctl.ProgressBalancer{},
		&swctl.CriticalPath{},
	}
}

// policyByName instantiates a fresh policy (CriticalPath is stateful, so
// every run needs its own).
func policyByName(name string) (swctl.Policy, error) {
	switch name {
	case "", "neutral":
		return swctl.Neutral{}, nil
	case "static-cpu":
		return swctl.Static{Component: "cpu"}, nil
	case "static-gpu":
		return swctl.Static{Component: "gpu"}, nil
	case "static-sha":
		return swctl.Static{Component: "sha"}, nil
	case "progress-balancer":
		return swctl.ProgressBalancer{}, nil
	case "critical-path":
		return &swctl.CriticalPath{}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown software policy %q", name)
	}
}

// SoftwarePolicyPeriod is the OS control timescale for the policies.
const SoftwarePolicyPeriod = 1 * sim.Millisecond

// DefaultWorkSkew is the imbalanced scenario the software-policy
// extension evaluates: the GPU carries 30 % extra work and the
// accelerator finishes early — the §6 situation ("the CPU begins to
// send work to the GPU") where proactive priority shifting pays off.
// Balanced pools (every component finishing together by construction)
// leave a balancing policy nothing to reclaim.
var DefaultWorkSkew = map[string]float64{"cpu": 1.0, "gpu": 1.3, "sha": 0.8}

// RunPolicy executes one combo under HCAPP with a named software policy
// and per-component work-pool skew (nil skew means balanced pools).
// Results are not cached: stateful policies need fresh instances.
func (ev *Evaluator) RunPolicy(combo Combo, limit config.PowerLimit, policy string, skew map[string]float64) (RunResult, error) {
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return RunResult{}, err
	}
	sizing, err := ev.sizingFor(combo)
	if err != nil {
		return RunResult{}, err
	}
	skewOf := func(name string) float64 {
		if skew == nil {
			return 1
		}
		if k, ok := skew[name]; ok && k > 0 {
			return k
		}
		return 1
	}
	sup, err := buildSupervisor(policy)
	if err != nil {
		return RunResult{}, err
	}
	sys, err := Build(ev.Cfg, combo, BuildOptions{
		Scheme:      hcapp,
		TargetPower: TargetPowerFor(limit),
		CPUWork:     sizing.CPUWork * skewOf("cpu"),
		GPUWork:     sizing.GPUWork * skewOf("gpu"),
		AccelWorkGB: sizing.AccelGB * skewOf("sha"),
		Supervisor:  sup,
		Adaptive:    ev.Adaptive,
	})
	if err != nil {
		return RunResult{}, err
	}
	res := sys.Engine.Run(sim.Time(float64(ev.TargetDur) * ev.MaxDurFactor))
	return newRunResult(RunSpec{Combo: combo, Scheme: hcapp, Limit: limit, Policy: policy}, sys.Engine.Recorder(), res), nil
}

// ExtensionSoftwarePolicies compares software policies layered on HCAPP
// under the package-pin limit on the imbalanced DefaultWorkSkew
// scenario: each cell is the *makespan* speedup (package completion
// time) of the policy run over the unsupervised HCAPP run with the same
// pools. Makespan is the §6 objective — shift power toward the straggler
// so the whole package finishes sooner; HCAPP alone only reclaims the
// straggler's tail after the others idle.
func (ev *Evaluator) ExtensionSoftwarePolicies() (*Matrix, error) {
	limit := config.PackagePinLimit()
	policies := []string{"static-gpu", "progress-balancer", "critical-path"}
	m := NewMatrix("Extension: software policies on HCAPP, imbalanced pools (makespan vs unsupervised HCAPP)", "makespan speedup", policies, comboNames())

	// One flat batch of (1 unsupervised base + the policies) per combo.
	suite := Suite()
	perCombo := 1 + len(policies)
	results := make([]RunResult, perCombo*len(suite))
	err := ev.runner.Tasks(context.Background(), len(results), func(ctx context.Context, i int) error {
		combo := suite[i/perCombo]
		pname := ""
		if pi := i % perCombo; pi > 0 {
			pname = policies[pi-1]
		}
		r, err := ev.RunPolicy(combo, limit, pname, DefaultWorkSkew)
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci, combo := range suite {
		base := results[ci*perCombo]
		for pi, pname := range policies {
			r := results[ci*perCombo+1+pi]
			m.Set(pname, combo.Name, float64(base.Duration)/float64(r.Duration))
		}
	}
	return m, nil
}

// CentralizedOptions parameterizes the structural comparison.
type CentralizedOptions struct {
	// Rail is the fixed global voltage the centralized design runs at
	// (it has no fast global voltage loop; all control is per-domain
	// allocation). Zero defaults to 1.05 V.
	Rail float64
	// Network is the metric-collection interconnect.
	Network noc.Config
	// Floor is the decision loop's intrinsic minimum period.
	Floor sim.Time
}

// RunCentralized executes one combo under the structurally centralized
// controller and returns the same metrics as Evaluator.Run.
func (ev *Evaluator) RunCentralized(combo Combo, limit config.PowerLimit, opts CentralizedOptions) (RunResult, error) {
	if opts.Rail == 0 {
		opts.Rail = 1.05
	}
	if opts.Floor == 0 {
		opts.Floor = 20 * sim.Microsecond
	}
	if opts.Network.MsgSerialization == 0 {
		opts.Network = noc.DefaultBus()
	}
	sizing, err := ev.sizingFor(combo)
	if err != nil {
		return RunResult{}, err
	}
	nodes := ev.Cfg.CPU.Cores + ev.Cfg.GPU.SMs + 1
	ctl, err := central.New(central.Config{
		TargetPower: TargetPowerFor(limit),
		Domains:     scalableDomains,
		Network:     opts.Network,
		Nodes:       nodes,
		Floor:       opts.Floor,
	})
	if err != nil {
		return RunResult{}, err
	}
	sys, err := Build(ev.Cfg, combo, BuildOptions{
		Scheme:      config.Scheme{Kind: config.FixedVoltage, FixedV: opts.Rail},
		CPUWork:     sizing.CPUWork,
		GPUWork:     sizing.GPUWork,
		AccelWorkGB: sizing.AccelGB,
		Supervisor:  ctl,
		// The centralized design still needs local control enabled so
		// the comparison isolates the control *topology*, not the
		// presence of level-3 controllers.
		ForceLocalControl: true,
		Adaptive:          ev.Adaptive,
	})
	if err != nil {
		return RunResult{}, err
	}
	res := sys.Engine.Run(sim.Time(float64(ev.TargetDur) * ev.MaxDurFactor))
	return newRunResult(RunSpec{Combo: combo, Limit: limit}, sys.Engine.Recorder(), res), nil
}

// ExtensionCentralized compares HCAPP against the structurally
// centralized controller on both limits: rows are the two designs,
// values are max-power ratios (the §2 argument made quantitative).
func (ev *Evaluator) ExtensionCentralized(limit config.PowerLimit) (*Matrix, error) {
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return nil, err
	}
	rows := []string{"HCAPP", "Centralized"}
	m := NewMatrix(
		fmt.Sprintf("Extension: HCAPP vs centralized allocator, %s limit", limit.Name),
		"max power / limit", rows, comboNames())
	suite := Suite()
	results := make([]RunResult, 2*len(suite))
	err = ev.runner.Tasks(context.Background(), len(results), func(ctx context.Context, i int) error {
		combo := suite[i/2]
		var (
			r    RunResult
			rerr error
		)
		if i%2 == 0 {
			r, rerr = ev.RunContext(ctx, RunSpec{Combo: combo, Scheme: hcapp, Limit: limit})
		} else {
			r, rerr = ev.RunCentralized(combo, limit, CentralizedOptions{})
		}
		if rerr != nil {
			return rerr
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci, combo := range suite {
		m.Set("HCAPP", combo.Name, results[2*ci].MaxOverLimit)
		m.Set("Centralized", combo.Name, results[2*ci+1].MaxOverLimit)
	}
	return m, nil
}

// ValidatePolicy checks that name is a known software policy without
// instantiating a run (used by the job server's request validation).
func ValidatePolicy(name string) error {
	_, err := policyByName(name)
	return err
}

// buildSupervisor constructs the supervisor a RunSpec's policy names.
func buildSupervisor(policy string) (sched.Supervisor, error) {
	if policy == "" {
		return nil, nil
	}
	p, err := policyByName(policy)
	if err != nil {
		return nil, err
	}
	if _, ok := p.(swctl.Neutral); ok {
		return nil, nil
	}
	return swctl.New(p, SoftwarePolicyPeriod, scalableDomains)
}
