//go:build race

package experiment

// raceEnabled reports that this binary was built with the race
// detector. Its instrumentation distorts wall-clock comparisons, so
// timing-sensitive tests (the parallel-speedup contract) skip
// themselves under -race; the correctness tests still run.
const raceEnabled = true
