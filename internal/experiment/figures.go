package experiment

import (
	"context"
	"fmt"

	"hcapp/internal/config"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
)

func comboNames() []string {
	suite := Suite()
	names := make([]string, len(suite))
	for i, c := range suite {
		names[i] = c.Name
	}
	return names
}

// Fig1 reproduces Figure 1: the power trace of the heterogeneous system
// in a static (fixed-voltage, no control) configuration, normalized to
// the run's average power. The paper uses the all-components-active
// workload; Hi-Hi is the closest suite member. Returns the normalized
// series and the average power in watts.
func (ev *Evaluator) Fig1(combo Combo, sampleEvery sim.Time) ([]trace.Point, float64, error) {
	sizing, err := ev.sizingFor(combo)
	if err != nil {
		return nil, 0, err
	}
	sys, err := Build(ev.Cfg, combo, BuildOptions{
		Scheme:      ev.FixedScheme(),
		CPUWork:     sizing.CPUWork,
		GPUWork:     sizing.GPUWork,
		AccelWorkGB: sizing.AccelGB,
		Adaptive:    ev.Adaptive,
	})
	if err != nil {
		return nil, 0, err
	}
	sys.Engine.RunFor(ev.TargetDur)
	rec := sys.Engine.Recorder()
	avg := rec.AvgPower()
	pts := rec.Series(sampleEvery)
	norm := make([]trace.Point, len(pts))
	for i, p := range pts {
		norm[i] = trace.Point{T: p.T, P: p.P / avg}
	}
	return norm, avg, nil
}

// Fig2 reproduces Figure 2: the same static trace viewed through
// different power-limit time windows. Peaks visible at 20 µs vanish at
// 1 ms and 10 ms — the behaviour firmware/software controllers cannot
// see without guardbanding. Returns one normalized series per window.
func (ev *Evaluator) Fig2(combo Combo, windows []sim.Time, sampleEvery sim.Time) (map[sim.Time][]trace.Point, float64, error) {
	sizing, err := ev.sizingFor(combo)
	if err != nil {
		return nil, 0, err
	}
	sys, err := Build(ev.Cfg, combo, BuildOptions{
		Scheme:      ev.FixedScheme(),
		CPUWork:     sizing.CPUWork,
		GPUWork:     sizing.GPUWork,
		AccelWorkGB: sizing.AccelGB,
		Adaptive:    ev.Adaptive,
	})
	if err != nil {
		return nil, 0, err
	}
	sys.Engine.RunFor(ev.TargetDur)
	rec := sys.Engine.Recorder()
	avg := rec.AvgPower()
	out := make(map[sim.Time][]trace.Point, len(windows))
	for _, w := range windows {
		pts := rec.WindowSeries(w, sampleEvery)
		norm := make([]trace.Point, len(pts))
		for i, p := range pts {
			norm[i] = trace.Point{T: p.T, P: p.P / avg}
		}
		out[w] = norm
	}
	return out, avg, nil
}

// schemeSuiteSpecs builds the scheme-major spec batch behind the figure
// matrices: every scheme × every suite combo, in deterministic order.
func schemeSuiteSpecs(schemes []config.Scheme, suite []Combo, limit config.PowerLimit) []RunSpec {
	specs := make([]RunSpec, 0, len(schemes)*len(suite))
	for _, s := range schemes {
		for _, c := range suite {
			specs = append(specs, RunSpec{Combo: c, Scheme: s, Limit: limit})
		}
	}
	return specs
}

// maxPowerFigure builds a Fig. 4 / Fig. 7 style matrix: maximum
// window-averaged power relative to the limit, per scheme per combo.
// The whole scheme × combo batch is submitted to the runner at once and
// assembled in spec order.
func (ev *Evaluator) maxPowerFigure(title string, schemes []config.Scheme, limit config.PowerLimit) (*Matrix, error) {
	rows := make([]string, len(schemes))
	for i, s := range schemes {
		rows[i] = s.String()
	}
	suite := Suite()
	m := NewMatrix(title, "max power / limit", rows, comboNames())
	results, err := ev.RunSpecs(context.Background(), schemeSuiteSpecs(schemes, suite, limit))
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		m.Set(schemes[i/len(suite)].String(), suite[i%len(suite)].Name, r.MaxOverLimit)
	}
	return m, nil
}

// speedupFigure builds a Fig. 5 / Fig. 8 style matrix: per-combo Eq. 3
// total speedup of each scheme relative to the fixed-voltage baseline.
// Baseline and scheme runs go out as one batch; a scheme that also
// appears as the baseline dedupes through the single-flight cache.
func (ev *Evaluator) speedupFigure(title string, schemes []config.Scheme, limit config.PowerLimit) (*Matrix, error) {
	rows := make([]string, len(schemes))
	for i, s := range schemes {
		rows[i] = s.String()
	}
	suite := Suite()
	specs := schemeSuiteSpecs(append([]config.Scheme{ev.FixedScheme()}, schemes...), suite, limit)
	m := NewMatrix(title, "speedup vs fixed 0.95 V", rows, comboNames())
	results, err := ev.RunSpecs(context.Background(), specs)
	if err != nil {
		return nil, err
	}
	base := results[:len(suite)]
	for i, r := range results[len(suite):] {
		_, total := r.SpeedupOver(base[i%len(suite)])
		m.Set(schemes[i/len(suite)].String(), suite[i%len(suite)].Name, total)
	}
	return m, nil
}

// ppeFigure builds a Fig. 6 / Fig. 9 style matrix: provisioned power
// efficiency (Eq. 4) per scheme per combo.
func (ev *Evaluator) ppeFigure(title string, schemes []config.Scheme, limit config.PowerLimit) (*Matrix, error) {
	rows := make([]string, len(schemes))
	for i, s := range schemes {
		rows[i] = s.String()
	}
	suite := Suite()
	m := NewMatrix(title, "PPE", rows, comboNames())
	results, err := ev.RunSpecs(context.Background(), schemeSuiteSpecs(schemes, suite, limit))
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		m.Set(schemes[i/len(suite)].String(), suite[i%len(suite)].Name, r.PPE)
	}
	return m, nil
}

func (ev *Evaluator) dynamicSchemes() []config.Scheme {
	var out []config.Scheme
	for _, s := range config.StandardSchemes() {
		if s.Kind != config.FixedVoltage {
			out = append(out, s)
		}
	}
	return out
}

// Fig4 reproduces Figure 4: maximum power relative to the 100 W / 20 µs
// package-pin limit for all four schemes. RAPL-like and SW-like must
// exceed 1.0 (power failure); Fixed and HCAPP must not.
func (ev *Evaluator) Fig4() (*Matrix, error) {
	schemes := append([]config.Scheme{ev.FixedScheme()}, ev.dynamicSchemes()...)
	return ev.maxPowerFigure("Fig 4: Maximum power relative to 100 W, 20 us power limit", schemes, config.PackagePinLimit())
}

// Fig5 reproduces Figure 5: HCAPP speedup relative to the fixed-voltage
// system under the package-pin limit (paper: 21 % average).
func (ev *Evaluator) Fig5() (*Matrix, error) {
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return nil, err
	}
	return ev.speedupFigure("Fig 5: Speedup of HCAPP relative to fixed voltage (0.95 V), 20 us limit",
		[]config.Scheme{ev.FixedScheme(), hcapp}, config.PackagePinLimit())
}

// Fig6 reproduces Figure 6: PPE of HCAPP and the fixed-voltage system
// under the package-pin limit (paper: 69.1 % → 79.3 %).
func (ev *Evaluator) Fig6() (*Matrix, error) {
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return nil, err
	}
	return ev.ppeFigure("Fig 6: Provisioned power efficiency, 20 us limit",
		[]config.Scheme{ev.FixedScheme(), hcapp}, config.PackagePinLimit())
}

// Fig7 reproduces Figure 7: maximum power relative to the 100 W / 1 ms
// off-package-VR limit for the three HCAPP variants (RAPL-like narrowly
// exceeds on Const-Burst; SW-like exceeds broadly).
func (ev *Evaluator) Fig7() (*Matrix, error) {
	return ev.maxPowerFigure("Fig 7: Maximum power relative to 100 W, 1 ms power limit",
		ev.dynamicSchemes(), config.OffPackageVRLimit())
}

// Fig8 reproduces Figure 8: speedup of the three HCAPP variants vs fixed
// voltage under the slow limit (paper: HCAPP 43 %, RAPL-like 36 %,
// SW-like small; ferret combos favor RAPL-like).
func (ev *Evaluator) Fig8() (*Matrix, error) {
	return ev.speedupFigure("Fig 8: Speedup vs fixed voltage under 1 ms limit",
		ev.dynamicSchemes(), config.OffPackageVRLimit())
}

// Fig9 reproduces Figure 9: PPE of the three variants under the slow
// limit (paper: 93.9 % / 79.7 % / 69.2 %).
func (ev *Evaluator) Fig9() (*Matrix, error) {
	return ev.ppeFigure("Fig 9: Provisioned power efficiency under 1 ms limit",
		ev.dynamicSchemes(), config.OffPackageVRLimit())
}

// Fig10 reproduces Figure 10: the static-priority software interface
// (§5.3). For each combo and each component, the suite runs once with
// that component prioritized (every other scalable domain de-prioritized
// to 0.9) under HCAPP at the package-pin limit; the value is the
// prioritized component's completion-time speedup over the unprioritized
// HCAPP run. Paper averages: CPU 8.3 %, GPU 5.4 %, SHA 12 %.
func (ev *Evaluator) Fig10() (*Matrix, error) {
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return nil, err
	}
	limit := config.PackagePinLimit()
	comps := []string{"cpu", "gpu", "sha"}
	rowName := map[string]string{"cpu": "CPU", "gpu": "GPU", "sha": "SHA"}
	m := NewMatrix("Fig 10: Speedup of prioritized component vs unprioritized HCAPP", "speedup", []string{"CPU", "GPU", "SHA"}, comboNames())

	// One batch of (1 base + 3 prioritized) runs per combo, assembled in
	// spec order.
	suite := Suite()
	perCombo := 1 + len(comps)
	specs := make([]RunSpec, 0, perCombo*len(suite))
	for _, combo := range suite {
		specs = append(specs, RunSpec{Combo: combo, Scheme: hcapp, Limit: limit})
		for _, comp := range comps {
			specs = append(specs, RunSpec{Combo: combo, Scheme: hcapp, Limit: limit, Priorities: PriorityFor(comp)})
		}
	}
	results, err := ev.RunSpecs(context.Background(), specs)
	if err != nil {
		return nil, err
	}
	for ci, combo := range suite {
		base := results[ci*perCombo]
		for pi, comp := range comps {
			per, _ := results[ci*perCombo+1+pi].SpeedupOver(base)
			m.Set(rowName[comp], combo.Name, per[comp])
		}
	}
	return m, nil
}

// PriorityFor returns the §5.3 static-priority register settings that
// prioritize one component: the others' scalable domains are
// de-prioritized by 10 % ("when a domain is de-prioritized by 10%, the
// domain voltage controller multiplies the global voltage by 0.9x").
func PriorityFor(component string) map[string]float64 {
	all := []string{"cpu", "gpu", "sha"}
	prio := make(map[string]float64, len(all))
	for _, c := range all {
		if c == component {
			prio[c] = 1.0
		} else {
			prio[c] = 0.9
		}
	}
	return prio
}

// Table1 renders the delay-budget table via internal/psn.
func Table1() string {
	return fmt.Sprintf("Table 1: Breakdown of delays for HCAPP transitions\n%s", table1Render())
}
