package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"hcapp/internal/config"
	"hcapp/internal/sim"
)

// probeCounter counts runUncached entries per cache key — the ground
// truth for single-flight dedup: every RunContext call that is neither
// a cache hit nor a shared flight increments its key.
type probeCounter struct {
	mu     sync.Mutex
	counts map[string]int
}

func newProbeCounter(ev *Evaluator) *probeCounter {
	p := &probeCounter{counts: map[string]int{}}
	ev.runProbe = func(key string) {
		p.mu.Lock()
		p.counts[key]++
		p.mu.Unlock()
	}
	return p
}

func (p *probeCounter) snapshot() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.counts))
	for k, v := range p.counts {
		out[k] = v
	}
	return out
}

func (p *probeCounter) total() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, v := range p.counts {
		n += v
	}
	return n
}

// hammerSpecs returns a small overlapping spec set: two combos × two
// schemes, so concurrent callers collide on every key.
func hammerSpecs(t *testing.T) []RunSpec {
	t.Helper()
	limit := config.PackagePinLimit()
	var specs []RunSpec
	for _, name := range []string{"Low-Low", "Mid-Mid"} {
		combo := mustCombo2(t, name)
		specs = append(specs,
			RunSpec{Combo: combo, Scheme: mustScheme2(t, config.HCAPP), Limit: limit},
			RunSpec{Combo: combo, Scheme: config.Scheme{Kind: config.FixedVoltage, FixedV: 0.95}, Limit: limit},
		)
	}
	return specs
}

// TestRunnerSingleFlightDedup hammers one shared evaluator from many
// goroutines with overlapping specs. Under -race this doubles as the
// data-race check on the cache, the in-flight table and the sizing
// cache; in any mode it proves single-flight: each unique key simulates
// exactly once, and every caller sees the leader's result.
func TestRunnerSingleFlightDedup(t *testing.T) {
	ev := NewEvaluator().WithTargetDur(sim.Millisecond / 2).WithRunner(NewRunner(4))
	probe := newProbeCounter(ev)
	specs := hammerSpecs(t)

	const goroutines = 16
	results := make([][]RunResult, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the goroutines submit whole batches through the shared
			// runner, half call RunContext directly in rotated order, so
			// flights are joined from both entry points at once.
			if g%2 == 0 {
				results[g], errs[g] = ev.RunSpecs(context.Background(), specs)
				return
			}
			out := make([]RunResult, len(specs))
			for i := range specs {
				j := (i + g) % len(specs)
				r, err := ev.RunContext(context.Background(), specs[j])
				if err != nil {
					errs[g] = err
					return
				}
				out[j] = r
			}
			results[g] = out
		}(g)
	}
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	counts := probe.snapshot()
	if len(counts) != len(specs) {
		t.Fatalf("simulated %d unique keys, want %d: %v", len(counts), len(specs), counts)
	}
	for key, n := range counts {
		if n != 1 {
			t.Errorf("key %q simulated %d times, want exactly 1 (single-flight broken)", key, n)
		}
	}
	for g := 1; g < goroutines; g++ {
		for i := range specs {
			if results[g][i].MaxWindowPower != results[0][i].MaxWindowPower ||
				results[g][i].Duration != results[0][i].Duration {
				t.Fatalf("goroutine %d spec %d diverged from goroutine 0", g, i)
			}
		}
	}
}

// TestRunnerParallelMatchesSequential is the determinism contract:
// a figure rendered through a 4-worker runner must be byte-identical
// to the same figure rendered sequentially (scripts/ci.sh enforces the
// same property end to end on the hcappsim binary).
func TestRunnerParallelMatchesSequential(t *testing.T) {
	seq := NewEvaluator().WithTargetDur(sim.Millisecond / 2)
	par := NewEvaluator().WithTargetDur(sim.Millisecond / 2).WithRunner(NewRunner(4))

	mSeq, err := seq.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	mPar, err := par.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if mSeq.Render() != mPar.Render() {
		t.Fatalf("parallel Fig5 diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			mSeq.Render(), mPar.Render())
	}
}

// TestRunnerCancelsBatchOnError: one failing shard must abort the
// batch — the other shards, parked on the batch context, are released
// by the cancellation (Tasks would hang forever otherwise) and the
// batch reports the shard's error, not the cancellations it caused.
func TestRunnerCancelsBatchOnError(t *testing.T) {
	r := NewRunner(4)
	errBoom := errors.New("boom")
	arrived := make(chan struct{}, 3)
	err := r.Tasks(context.Background(), 4, func(ctx context.Context, i int) error {
		if i < 3 {
			arrived <- struct{}{}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(30 * time.Second):
				return fmt.Errorf("task %d never saw cancellation", i)
			}
		}
		// The failing shard waits until every other shard is in flight,
		// so the cancellation demonstrably unblocks running work.
		for n := 0; n < 3; n++ {
			<-arrived
		}
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Tasks returned %v, want %v", err, errBoom)
	}
}

// TestRunnerPreCancelledContext: a batch submitted on a dead context
// runs nothing and reports the cancellation.
func TestRunnerPreCancelledContext(t *testing.T) {
	for _, r := range []*Runner{nil, NewRunner(4)} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ran := false
		err := r.Tasks(ctx, 8, func(ctx context.Context, i int) error {
			ran = true
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: Tasks returned %v, want context.Canceled", r.Workers(), err)
		}
		if ran {
			t.Errorf("workers=%d: task ran on a pre-cancelled context", r.Workers())
		}
	}
}

// TestRunnerFirstErrorIsLowestIndex: when several shards fail, the
// batch error is deterministic — the failing task with the lowest
// index wins, regardless of completion order.
func TestRunnerFirstErrorIsLowestIndex(t *testing.T) {
	r := NewRunner(4)
	var barrier sync.WaitGroup
	barrier.Add(4)
	err := r.Tasks(context.Background(), 4, func(ctx context.Context, i int) error {
		// All four tasks fail simultaneously once everyone has started.
		barrier.Done()
		barrier.Wait()
		return fmt.Errorf("task %d failed", i)
	})
	if err == nil || err.Error() != "task 0 failed" {
		t.Fatalf("batch error = %v, want the lowest-index failure", err)
	}
}

// TestRunnerSequentialFallback: a nil runner and a 1-worker runner both
// execute in submission order on the calling goroutine's schedule.
func TestRunnerSequentialFallback(t *testing.T) {
	for _, r := range []*Runner{nil, NewRunner(1)} {
		var order []int
		if err := r.Tasks(context.Background(), 4, func(ctx context.Context, i int) error {
			order = append(order, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, got := range order {
			if got != i {
				t.Fatalf("sequential order %v, want ascending", order)
			}
		}
		if r.Workers() != 1 {
			t.Fatalf("Workers() = %d, want 1", r.Workers())
		}
	}
}

// TestEvaluatorReconfigureMidSequence is the regression test for the
// stale-cache bug: WithTargetDur and Cfg.Seed changes must yield fresh
// simulations for a spec already in the cache, while unchanged
// parameters keep hitting it.
func TestEvaluatorReconfigureMidSequence(t *testing.T) {
	ev := NewEvaluator().WithTargetDur(sim.Millisecond / 2)
	probe := newProbeCounter(ev)
	spec := RunSpec{
		Combo:  mustCombo2(t, "Low-Low"),
		Scheme: config.Scheme{Kind: config.FixedVoltage, FixedV: 0.95},
		Limit:  config.PackagePinLimit(),
	}

	short, err := ev.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(spec); err != nil {
		t.Fatal(err)
	}
	if n := probe.total(); n != 1 {
		t.Fatalf("unchanged config simulated %d times, want 1 (cache miss)", n)
	}

	ev.WithTargetDur(sim.Millisecond)
	long, err := ev.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if n := probe.total(); n != 2 {
		t.Fatalf("after WithTargetDur: %d simulations, want 2 (stale cache served)", n)
	}
	ratio := float64(long.Duration) / float64(short.Duration)
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("doubling the horizon scaled duration by %.2f×, want ≈2× — stale result?", ratio)
	}

	ev.Cfg.Seed = 7
	if _, err := ev.Run(spec); err != nil {
		t.Fatal(err)
	}
	if n := probe.total(); n != 3 {
		t.Fatalf("after seed change: %d simulations, want 3 (stale cache served)", n)
	}

	// Returning to already-seen parameters is a hit again: the old
	// entries were keyed, not invalidated.
	ev.Cfg.Seed = 42
	ev.WithTargetDur(sim.Millisecond / 2)
	if _, err := ev.Run(spec); err != nil {
		t.Fatal(err)
	}
	if n := probe.total(); n != 3 {
		t.Fatalf("revisiting cached parameters simulated again (%d total), want 3", n)
	}
}

// TestRunnerParallelSpeedup demonstrates the point of the scheduler: a
// batch of independent runs on 4 workers must finish at least 2× faster
// than the same batch sequentially. Skipped where the hardware cannot
// show it (fewer than 4 CPUs) or the clock is distorted (-race, -short).
func TestRunnerParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the timing being compared")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for the 2x contract, have %d", runtime.NumCPU())
	}

	// 8 unique runs (suite × one scheme) at a 1 ms horizon: enough work
	// to amortize pool overhead, small enough to keep the test quick.
	limit := config.PackagePinLimit()
	var specs []RunSpec
	for _, combo := range Suite() {
		specs = append(specs, RunSpec{Combo: combo, Scheme: mustScheme2(t, config.HCAPP), Limit: limit})
	}

	run := func(workers int) time.Duration {
		ev := NewEvaluator().WithTargetDur(sim.Millisecond)
		if workers > 1 {
			ev = ev.WithRunner(NewRunner(workers))
		}
		start := time.Now()
		if _, err := ev.RunSpecs(context.Background(), specs); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	seq := run(1)
	par := run(4)
	t.Logf("sequential %v, 4 workers %v, speedup %.2fx", seq, par, seq.Seconds()/par.Seconds())
	if par.Seconds() > seq.Seconds()/2 {
		t.Errorf("4-worker batch took %v vs %v sequential — less than the 2x contract", par, seq)
	}
}
