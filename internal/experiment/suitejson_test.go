package experiment

import (
	"strings"
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/workload"
)

func TestParseSuite(t *testing.T) {
	in := `[
		{"name": "A", "cpu": "swaptions", "gpu": "backprop"},
		{"name": "B", "cpu": "ferret", "gpu": "myocyte"}
	]`
	combos, err := ParseSuite(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 2 {
		t.Fatalf("combos = %d", len(combos))
	}
	if combos[0].CPU.Name != "swaptions" || combos[1].GPU.Name != "myocyte" {
		t.Fatalf("resolution broken: %+v", combos)
	}
}

func TestParseSuiteWithCustomBenchmarks(t *testing.T) {
	specs := `[{"name":"mycpu","target":"cpu","class":"Mid","kind":"constant",
		"phase_dur_us":100,"ipc":1.2,"mem_frac":0.2,"activity":0.5,"stall_act":0.1}]`
	custom, err := workload.ParseBenchmarks(strings.NewReader(specs))
	if err != nil {
		t.Fatal(err)
	}
	combos, err := ParseSuite(strings.NewReader(`[{"name":"X","cpu":"mycpu","gpu":"bfs"}]`), custom)
	if err != nil {
		t.Fatal(err)
	}
	if combos[0].CPU.Suite != "custom" {
		t.Fatalf("custom benchmark not resolved: %+v", combos[0].CPU)
	}
	// And the combo must actually run.
	ev := shortEvaluator()
	r, err := ev.Run(RunSpec{Combo: combos[0], Scheme: ev.FixedScheme(), Limit: config.PackagePinLimit()})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("custom combo did not complete")
	}
}

func TestParseSuiteErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad json", `{`},
		{"empty", `[]`},
		{"unknown field", `[{"name":"x","cpu":"ferret","gpu":"bfs","sha":"y"}]`},
		{"missing name", `[{"cpu":"ferret","gpu":"bfs"}]`},
		{"duplicate", `[{"name":"x","cpu":"ferret","gpu":"bfs"},{"name":"x","cpu":"ferret","gpu":"bfs"}]`},
		{"unknown cpu", `[{"name":"x","cpu":"doom","gpu":"bfs"}]`},
		{"wrong target", `[{"name":"x","cpu":"bfs","gpu":"ferret"}]`},
	}
	for _, c := range cases {
		if _, err := ParseSuite(strings.NewReader(c.in), nil); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
