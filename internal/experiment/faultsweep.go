package experiment

import (
	"context"
	"fmt"
	"strings"

	"hcapp/internal/central"
	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/fault"
	"hcapp/internal/noc"
	"hcapp/internal/sim"
	"hcapp/internal/stats"
)

// Fault-sweep experiment: run the system under deterministic fault
// scenarios (internal/fault) with the resilience mechanisms armed —
// global-controller holdover, per-domain watchdogs, the package safety
// clamp, and (for the collection-path scenarios) the centralized
// baseline's telemetry holdover — and measure what each defect costs:
// power-cap violations, throughput retained versus a paired healthy run,
// and time to reconverge with the healthy trace after the last fault
// clears.

// Resilience defaults for sweep runs (knobs documented in docs/FAULTS.md).
const (
	// DefaultWatchdogTimeout is how long a domain controller may stay
	// silent before its watchdog drives the domain to fail-safe voltage.
	DefaultWatchdogTimeout = 50 * sim.Microsecond
	// DefaultHoldoverMaxAge bounds how stale the global controller's
	// power sample may grow before it abandons holdover for fail-safe.
	DefaultHoldoverMaxAge = 20 * sim.Microsecond
	// recoveryTolerance is the fractional band around the healthy trace
	// inside which the faulted trace counts as reconverged.
	recoveryTolerance = 0.05
	// recoverySustain is how long the faulted trace must stay inside the
	// band before recovery is declared.
	recoverySustain = 50 * sim.Microsecond
)

// SweepScenario is one fault-sweep row: a fault plan plus which control
// topology it exercises. Telemetry-class faults corrupt the NoC
// collection path, which only the centralized baseline uses — HCAPP's
// global controller reads a package sensor and never crosses the NoC —
// so those scenarios run against the centralized allocator.
type SweepScenario struct {
	Plan fault.Plan
	// Centralized runs the scenario against the centralized baseline
	// (fixed rail + central allocator with telemetry holdover) instead
	// of HCAPP.
	Centralized bool
}

// DefaultFaultPlans returns the sweep's scenario set, with fault windows
// scaled to a run of dur: each plan injects over [dur/4, dur/2), leaving
// the back half of the run to measure recovery. All plans share one seed
// so the sweep is reproducible end to end.
func DefaultFaultPlans(dur sim.Time, seed int64) []SweepScenario {
	s, e := dur/4, dur/2
	mk := func(name string, events ...fault.Event) SweepScenario {
		return SweepScenario{Plan: fault.Plan{Name: name, Seed: seed, Events: events}}
	}
	central := func(sc SweepScenario) SweepScenario {
		sc.Centralized = true
		return sc
	}
	return []SweepScenario{
		mk("healthy"),
		// Worst silent sensor failure: the controller believes the
		// package draws a fraction of the target, forever.
		mk("sensor-stuck-low", fault.Event{Class: fault.SensorStuck, Start: s, End: e, Param: 20}),
		mk("sensor-noise", fault.Event{Class: fault.SensorNoise, Start: s, End: e, Param: 4}),
		// Total sensing blackout: every sample dropped, so the reading
		// ages through holdover into fail-safe.
		mk("sensor-blackout", fault.Event{Class: fault.SensorDropout, Start: s, End: e, Param: 1.0}),
		mk("sensor-dropout", fault.Event{Class: fault.SensorDropout, Start: s, End: e, Param: 0.5}),
		mk("vr-slew-degraded", fault.Event{Class: fault.VRSlew, Start: s, End: e, Param: 0.2}),
		mk("rail-droop", fault.Event{Class: fault.RailDroop, Start: s, End: e, Param: 0.04}),
		mk("gpu-ctl-silence", fault.Event{Class: fault.DomainSilence, Start: s, End: e, Domain: "gpu"}),
		central(mk("telemetry-loss", fault.Event{Class: fault.TelemetryLoss, Start: s, End: e, Param: 0.6})),
		central(mk("telemetry-delay", fault.Event{Class: fault.TelemetryDelay, Start: s, End: e,
			Param: float64(200 * sim.Microsecond)})),
	}
}

// FaultSweepRow is one scenario's resilience outcome.
type FaultSweepRow struct {
	Name        string
	Centralized bool
	// MaxOverLimit is the true max window power over the limit; above
	// 1.0 is a power failure the clamp was supposed to prevent.
	MaxOverLimit float64
	Violated     bool
	// ThroughputRetained is the geomean over cpu/gpu/sha of work done
	// under faults versus the paired healthy run (1.0 = no loss).
	ThroughputRetained float64
	// RecoveryTime is how long after the last fault cleared the power
	// trace reconverged with the healthy run (within recoveryTolerance,
	// sustained recoverySustain). Zero for the healthy scenario.
	RecoveryTime sim.Time
	// Recovered reports whether reconvergence happened before run end.
	Recovered bool
	// Resilience-mechanism activity.
	ClampTrips     int64
	WatchdogTrips  map[string]int64
	HoldoverCycles int64
	FailsafeCycles int64
	// Counts are the injector's perturbation tallies.
	Counts fault.Counts
}

// FaultSweep is the full resilience table.
type FaultSweep struct {
	Combo Combo
	Limit config.PowerLimit
	Dur   sim.Time
	Seed  int64
	Rows  []FaultSweepRow
}

// sweepRun holds one finished run's artifacts.
type sweepRun struct {
	sys     *System
	central *central.Controller
	totals  []float64
	work    map[string]float64
}

// buildSweepSystem assembles one continuous-load system for the sweep:
// zero work pools (components run forever), clamp and watchdogs armed,
// and either the HCAPP hierarchy with sensing holdover or the
// centralized baseline with telemetry holdover.
func (ev *Evaluator) buildSweepSystem(combo Combo, limit config.PowerLimit, inj *fault.Injector, centralized bool) (*sweepRun, error) {
	opts := BuildOptions{
		Injector: inj,
		Clamp:    &core.ClampConfig{CapW: limit.Watts, Window: limit.Window, DT: ev.Cfg.TimeStep},
		Watchdog: core.WatchdogConfig{Timeout: DefaultWatchdogTimeout},
		Adaptive: ev.Adaptive,
	}
	run := &sweepRun{}
	if centralized {
		nodes := ev.Cfg.CPU.Cores + ev.Cfg.GPU.SMs + 1
		ctl, err := central.New(central.Config{
			TargetPower: TargetPowerFor(limit),
			Domains:     scalableDomains,
			Network:     noc.DefaultBus(),
			Nodes:       nodes,
			Floor:       20 * sim.Microsecond,
			Telemetry:   telemetrySource(inj),
			// Never boost above neutral: the fixed rail is the safe
			// envelope, and boosting past it reproduces the centralized
			// design's known fast-window violations rather than any
			// telemetry-fault effect.
			PrioMax: 1.0,
		})
		if err != nil {
			return nil, err
		}
		run.central = ctl
		// The rail sits at the fixed-voltage operating point (not the
		// centralized extension's 1.05 V): the resilience comparison
		// isolates collection-path faults, not the centralized design's
		// already-characterized inability to hold the fast window.
		opts.Scheme = config.Scheme{Kind: config.FixedVoltage, FixedV: ev.FixedV}
		opts.Supervisor = ctl
		opts.ForceLocalControl = true
	} else {
		hcapp, err := config.SchemeByKind(config.HCAPP)
		if err != nil {
			return nil, err
		}
		opts.Scheme = hcapp
		opts.TargetPower = TargetPowerFor(limit)
		opts.Holdover = core.HoldoverConfig{MaxAge: DefaultHoldoverMaxAge}
	}
	sys, err := Build(ev.Cfg, combo, opts)
	if err != nil {
		return nil, err
	}
	run.sys = sys
	return run, nil
}

// telemetrySource converts a possibly-nil injector into a possibly-nil
// interface (a non-nil interface holding a nil *Injector would defeat
// the controller's nil check).
func telemetrySource(inj *fault.Injector) central.TelemetrySource {
	if inj == nil {
		return nil
	}
	return inj
}

// finish runs the system for dur and harvests the artifacts the row
// metrics need.
func (r *sweepRun) finish(dur sim.Time) {
	r.sys.Engine.RunFor(dur)
	r.totals = r.sys.Engine.Recorder().Totals()
	r.work = map[string]float64{
		"cpu": r.sys.CPU.DoneWork(),
		"gpu": r.sys.GPU.DoneWork(),
		"sha": r.sys.Accel.DoneWork(),
	}
}

// RunFaultSweep produces the resilience table for one combo under one
// power limit. Every scenario runs for dur (zero selects the
// evaluator's TargetDur) against a paired healthy run of the same
// control topology, so throughput-retained and recovery-time compare
// like with like. The whole sweep is deterministic: the same combo,
// limit, dur and seed reproduce the identical table.
func (ev *Evaluator) RunFaultSweep(combo Combo, limit config.PowerLimit, dur sim.Time, seed int64) (*FaultSweep, error) {
	if dur <= 0 {
		dur = ev.TargetDur
	}
	scenarios := DefaultFaultPlans(dur, seed)

	// Injectors are built up front (fault.New can reject a plan) so the
	// parallel batch below only runs simulations.
	injs := make([]*fault.Injector, len(scenarios))
	for i, sc := range scenarios {
		inj, err := fault.New(sc.Plan)
		if err != nil {
			return nil, err
		}
		injs[i] = inj
	}

	// One batch: the two healthy references (per control topology) plus
	// every scenario, fanned over the runner and harvested by index so the
	// table is identical at any worker count.
	runs := make([]*sweepRun, 2+len(scenarios))
	err := ev.runner.Tasks(context.Background(), len(runs), func(ctx context.Context, i int) error {
		var (
			inj         *fault.Injector
			centralized bool
		)
		if i < 2 {
			centralized = i == 1
		} else {
			inj = injs[i-2]
			centralized = scenarios[i-2].Centralized
		}
		run, err := ev.buildSweepSystem(combo, limit, inj, centralized)
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		run.finish(dur)
		runs[i] = run
		return nil
	})
	if err != nil {
		return nil, err
	}
	healthy := map[bool]*sweepRun{false: runs[0], true: runs[1]}

	sweep := &FaultSweep{Combo: combo, Limit: limit, Dur: dur, Seed: seed}
	for si, sc := range scenarios {
		inj := injs[si]
		run := runs[2+si]
		ref := healthy[sc.Centralized]

		row := FaultSweepRow{
			Name:          sc.Plan.Name,
			Centralized:   sc.Centralized,
			Counts:        inj.Counts(),
			WatchdogTrips: map[string]int64{},
		}
		rec := run.sys.Engine.Recorder()
		row.MaxOverLimit = rec.MaxWindowAvg(limit.Window) / limit.Watts
		row.Violated = row.MaxOverLimit > 1
		if clamp := run.sys.Engine.Clamp(); clamp != nil {
			row.ClampTrips = clamp.Trips()
		}
		for _, s := range run.sys.Engine.Slots() {
			if n := s.Domain.WatchdogTrips(); n > 0 {
				row.WatchdogTrips[s.Domain.Name()] = n
			}
		}
		if g := run.sys.Engine.GlobalController(); g != nil {
			row.HoldoverCycles = g.HoldoverCycles()
			row.FailsafeCycles = g.FailsafeCycles()
		}
		if run.central != nil {
			row.HoldoverCycles += run.central.HoldoverTicks()
			row.FailsafeCycles += run.central.FailsafeTicks()
		}

		var ratios []float64
		for _, name := range speedupComponents {
			if ref.work[name] > 0 {
				ratios = append(ratios, run.work[name]/ref.work[name])
			}
		}
		row.ThroughputRetained = stats.Geomean(ratios...)

		_, lastEnd := sc.Plan.Span()
		if len(sc.Plan.Events) == 0 {
			row.Recovered = true
		} else {
			row.RecoveryTime, row.Recovered = recoveryTime(
				run.totals, ref.totals, ev.Cfg.TimeStep, lastEnd)
		}
		sweep.Rows = append(sweep.Rows, row)
	}
	return sweep, nil
}

// recoveryTime scans the faulted and healthy power traces after the last
// fault cleared and returns how long until the faulted trace stays
// within recoveryTolerance of the healthy one for recoverySustain.
func recoveryTime(faulted, healthy []float64, dt sim.Time, lastEnd sim.Time) (sim.Time, bool) {
	n := len(faulted)
	if len(healthy) < n {
		n = len(healthy)
	}
	start := int(lastEnd / dt)
	if start < 0 {
		start = 0
	}
	sustain := int(recoverySustain / dt)
	if sustain < 1 {
		sustain = 1
	}
	run := 0
	for i := start; i < n; i++ {
		diff := faulted[i] - healthy[i]
		if diff < 0 {
			diff = -diff
		}
		if diff <= recoveryTolerance*healthy[i] {
			run++
			if run >= sustain {
				first := i - sustain + 1
				rt := sim.Time(first)*dt - lastEnd
				if rt < 0 {
					rt = 0
				}
				return rt, true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}

// Publish exports the sweep's fault and resilience tallies through a
// fault.Metrics counter set.
func (fs *FaultSweep) Publish(m *fault.Metrics) {
	for _, r := range fs.Rows {
		m.RecordRun(r.Name, r.Counts, r.ClampTrips, r.WatchdogTrips,
			r.HoldoverCycles, r.FailsafeCycles)
	}
}

// RenderFaultSweep formats the resilience table.
func RenderFaultSweep(fs *FaultSweep) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fault sweep (%s, %s limit, %.2f ms runs, seed %d)\n",
		fs.Combo.Name, fs.Limit.Name, float64(fs.Dur)/float64(sim.Millisecond), fs.Seed)
	fmt.Fprintf(&sb, "%-18s %-8s %10s %9s %8s %10s %6s %5s %9s %9s\n",
		"scenario", "ctl", "max/limit", "violated", "thruput", "recovery", "clamp", "wdog", "holdover", "failsafe")
	for _, r := range fs.Rows {
		ctl := "hcapp"
		if r.Centralized {
			ctl = "central"
		}
		recov := "n/a"
		switch {
		case len(r.WatchdogTrips) > 0 || r.ClampTrips > 0 || !r.Recovered || r.RecoveryTime > 0:
			if r.Recovered {
				recov = fmt.Sprintf("%.1f us", float64(r.RecoveryTime)/float64(sim.Microsecond))
			} else {
				recov = "never"
			}
		}
		var wdog int64
		for _, n := range r.WatchdogTrips {
			wdog += n
		}
		fmt.Fprintf(&sb, "%-18s %-8s %10.3f %9v %8.3f %10s %6d %5d %9d %9d\n",
			r.Name, ctl, r.MaxOverLimit, r.Violated, r.ThroughputRetained,
			recov, r.ClampTrips, wdog, r.HoldoverCycles, r.FailsafeCycles)
	}
	return sb.String()
}
