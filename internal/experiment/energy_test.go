package experiment

import (
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/sim"
)

func runEnergyReport(t *testing.T, workers int) *EnergyReport {
	t.Helper()
	ev := NewEvaluator().WithTargetDur(1 * sim.Millisecond)
	if workers > 1 {
		ev = ev.WithRunner(NewRunner(workers))
	}
	rep, err := ev.RunEnergyAttribution(mustCombo2(t, "Mid-Mid"), config.PackagePinLimit())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestEnergyAttributionConservation is the ISSUE's conservation
// criterion: on every suite run and every fault run, summed attributed
// joules per chiplet must match the ground-truth integrated chiplet
// energy within 1e-9 relative error.
func TestEnergyAttributionConservation(t *testing.T) {
	rep := runEnergyReport(t, 1)
	if len(rep.Suite) != len(Suite()) {
		t.Fatalf("suite rows = %d, want %d", len(rep.Suite), len(Suite()))
	}
	if len(rep.Faults) == 0 {
		t.Fatal("no fault rows")
	}
	check := func(phase string, rows []EnergyScenarioRow) {
		for _, row := range rows {
			if row.ConservationErr > 1e-9 {
				t.Errorf("%s %s: conservation error %g exceeds 1e-9",
					phase, row.Name, row.ConservationErr)
			}
			if row.TotalJ <= 0 {
				t.Errorf("%s %s: no energy integrated (TotalJ=%g)", phase, row.Name, row.TotalJ)
			}
			if row.Steps <= 0 {
				t.Errorf("%s %s: ledger saw no steps", phase, row.Name)
			}
			for _, d := range row.Domains {
				if d.EnergyJ < 0 || d.UncoreFrac < 0 || d.UncoreFrac > 1 {
					t.Errorf("%s %s: implausible domain accuracy %+v", phase, row.Name, d)
				}
			}
		}
	}
	check("suite", rep.Suite)
	check("fault", rep.Faults)
}

// TestEnergyAttributionDeterministicAcrossWidths is the ISSUE's
// determinism criterion: the rendered report must be byte-identical at
// any runner width.
func TestEnergyAttributionDeterministicAcrossWidths(t *testing.T) {
	seq := RenderEnergyAttribution(runEnergyReport(t, 1))
	par := RenderEnergyAttribution(runEnergyReport(t, 4))
	if seq != par {
		t.Fatalf("energy report differs between 1 and 4 workers:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	if seq == "" {
		t.Fatal("empty report")
	}
}

// TestRunResultEnergyGating checks that the ledger only rides along when
// asked for, and that the cache keeps energy-tracking runs in their own
// namespace.
func TestRunResultEnergyGating(t *testing.T) {
	combo := mustCombo2(t, "Mid-Mid")
	limit := config.PackagePinLimit()
	spec := RunSpec{Combo: combo, Scheme: mustScheme(t, config.HCAPP), Limit: limit}

	ev := NewEvaluator().WithTargetDur(1 * sim.Millisecond)
	plain, err := ev.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Energy != nil {
		t.Fatal("Energy present without TrackEnergy")
	}

	ev.TrackEnergy = true
	tracked, err := ev.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tracked.Energy == nil {
		t.Fatal("Energy missing with TrackEnergy — cache namespace collision?")
	}
	if tracked.AvgPower != plain.AvgPower || tracked.MaxWindowPower != plain.MaxWindowPower {
		t.Fatalf("attaching the ledger perturbed the run: avg %g vs %g, max %g vs %g",
			tracked.AvgPower, plain.AvgPower, tracked.MaxWindowPower, plain.MaxWindowPower)
	}
	// Cached re-run returns the summary too.
	again, err := ev.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.Energy == nil {
		t.Fatal("cached tracked run lost its energy summary")
	}
}

func mustScheme(t *testing.T, kind config.SchemeKind) config.Scheme {
	t.Helper()
	s, err := config.SchemeByKind(kind)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
