package experiment

import (
	"strings"
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/sim"
	"hcapp/internal/workload"
)

func mustBench3(t *testing.T, name string) workload.Benchmark {
	t.Helper()
	b, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func twoCPUTopology(t *testing.T) Topology {
	t.Helper()
	return Topology{Chiplets: []ChipletSpec{
		{Kind: "cpu", Name: "cpu0", Benchmark: mustBench3(t, "swaptions")},
		{Kind: "cpu", Name: "cpu1", Benchmark: mustBench3(t, "blackscholes"), Seed: 99},
		{Kind: "gpu", Benchmark: mustBench3(t, "backprop")},
		{Kind: "sha"},
		{Kind: "mem", Watts: 12},
	}}
}

func TestBuildTopologyRuns(t *testing.T) {
	cfg := config.Default()
	eng, err := BuildTopology(cfg, twoCPUTopology(t), TopologyOptions{
		Scheme:      config.Scheme{Kind: config.HCAPP, ControlPeriod: sim.Microsecond},
		TargetPower: 130,
		SizingDur:   1 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(5 * sim.Millisecond)
	if !res.Completed {
		t.Fatal("custom topology did not complete")
	}
	for _, name := range []string{"cpu0", "cpu1", "gpu", "sha"} {
		if _, ok := res.Completion[name]; !ok {
			t.Errorf("completion missing for %s", name)
		}
	}
	if eng.Recorder().AvgPower() <= 0 {
		t.Fatal("no power recorded")
	}
	// Both CPU domains must exist independently.
	if eng.Domain("cpu0") == nil || eng.Domain("cpu1") == nil {
		t.Fatal("named domains missing")
	}
}

func TestBuildTopologyFixedScheme(t *testing.T) {
	cfg := config.Default()
	eng, err := BuildTopology(cfg, Topology{Chiplets: []ChipletSpec{
		{Kind: "cpu", Benchmark: mustBench3(t, "swaptions")},
	}}, TopologyOptions{
		Scheme:    config.Scheme{Kind: config.FixedVoltage, FixedV: 0.95},
		SizingDur: 500 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(5 * sim.Millisecond)
	if !res.Completed {
		t.Fatal("fixed topology did not complete")
	}
}

func TestBuildTopologyErrors(t *testing.T) {
	cfg := config.Default()
	cases := []struct {
		name string
		topo Topology
		opts TopologyOptions
	}{
		{"empty", Topology{}, TopologyOptions{Scheme: config.Scheme{Kind: config.FixedVoltage, FixedV: 0.95}}},
		{"unknown kind", Topology{Chiplets: []ChipletSpec{{Kind: "fpga"}}},
			TopologyOptions{Scheme: config.Scheme{Kind: config.FixedVoltage, FixedV: 0.95}}},
		{"duplicate name", Topology{Chiplets: []ChipletSpec{{Kind: "sha"}, {Kind: "sha"}}},
			TopologyOptions{Scheme: config.Scheme{Kind: config.FixedVoltage, FixedV: 0.95}}},
		{"no target", Topology{Chiplets: []ChipletSpec{{Kind: "sha"}}},
			TopologyOptions{Scheme: config.Scheme{Kind: config.HCAPP, ControlPeriod: sim.Microsecond}}},
		{"no fixed voltage", Topology{Chiplets: []ChipletSpec{{Kind: "sha"}}},
			TopologyOptions{Scheme: config.Scheme{Kind: config.FixedVoltage}}},
		{"wrong benchmark target", Topology{Chiplets: []ChipletSpec{{Kind: "gpu", Benchmark: func() workload.Benchmark {
			b, _ := workload.ByName("ferret")
			return b
		}()}}}, TopologyOptions{Scheme: config.Scheme{Kind: config.FixedVoltage, FixedV: 0.95}}},
	}
	for _, c := range cases {
		if _, err := BuildTopology(cfg, c.topo, c.opts); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestBuildTopologyWithCustomBenchmark(t *testing.T) {
	specs := `[{"name":"housekernel","target":"cpu","class":"Mid","kind":"constant",
		"phase_dur_us":100,"ipc":1.2,"mem_frac":0.2,"activity":0.5,"stall_act":0.1}]`
	bs, err := workload.ParseBenchmarks(strings.NewReader(specs))
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	eng, err := BuildTopology(cfg, Topology{Chiplets: []ChipletSpec{
		{Kind: "cpu", Benchmark: bs[0]},
	}}, TopologyOptions{
		Scheme:      config.Scheme{Kind: config.HCAPP, ControlPeriod: sim.Microsecond},
		TargetPower: 60,
		SizingDur:   500 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(5 * sim.Millisecond)
	if !res.Completed {
		t.Fatal("custom benchmark topology did not complete")
	}
}

func TestBuildTopologyWorkScale(t *testing.T) {
	cfg := config.Default()
	mk := func(scale float64) sim.Time {
		eng, err := BuildTopology(cfg, Topology{Chiplets: []ChipletSpec{
			{Kind: "cpu", Benchmark: mustBench3(t, "swaptions"), WorkScale: scale},
		}}, TopologyOptions{
			Scheme:    config.Scheme{Kind: config.FixedVoltage, FixedV: 0.95},
			SizingDur: 500 * sim.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng.Run(10 * sim.Millisecond).Completion["cpu"]
	}
	if t1, t2 := mk(1), mk(2); t2 <= t1 {
		t.Fatalf("doubled work did not take longer: %d vs %d", t1, t2)
	}
}

func TestSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep in -short mode")
	}
	sw, err := RunSeedSweep([]int64{1, 2, 3}, config.OffPackageVRLimit(), 2*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Violations != 0 {
		t.Fatalf("HCAPP violated under %d seeds", sw.Violations)
	}
	if len(sw.HCAPPPPE) != 3 {
		t.Fatalf("per-seed results = %d", len(sw.HCAPPPPE))
	}
	// The headline ordering must hold for every seed, not just seed 42.
	for i := range sw.Seeds {
		if sw.HCAPPPPE[i] <= sw.FixedPPE[i] {
			t.Errorf("seed %d: HCAPP PPE %.3f not above fixed %.3f",
				sw.Seeds[i], sw.HCAPPPPE[i], sw.FixedPPE[i])
		}
		if sw.HCAPPSpeedup[i] <= 1.0 {
			t.Errorf("seed %d: speedup %.3f", sw.Seeds[i], sw.HCAPPSpeedup[i])
		}
	}
	out := sw.Render()
	if !strings.Contains(out, "hcapp speedup") {
		t.Errorf("render missing rows:\n%s", out)
	}
}

func TestRunSeedSweepValidation(t *testing.T) {
	if _, err := RunSeedSweep(nil, config.PackagePinLimit(), sim.Millisecond); err == nil {
		t.Fatal("empty seed list accepted")
	}
}
