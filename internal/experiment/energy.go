package experiment

import (
	"context"
	"fmt"
	"strings"

	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/energy"
	"hcapp/internal/fault"
	"hcapp/internal/sim"
)

// Energy-attribution experiment: how accurate is share-based energy
// attribution (split each domain's rail energy across units by activity
// share — the only estimator real silicon supports, since unit power is
// not individually measurable) against the ground-truth per-unit
// integration the simulator can do? Phase one runs the Table 3 suite
// under HCAPP; phase two re-measures under fault scenarios, where
// clamped rails and silenced controllers stress the estimator hardest.

// EnergyScenarioRow is one run's attribution outcome.
type EnergyScenarioRow struct {
	// Name is the combo name (suite phase) or fault-scenario name.
	Name string
	// TotalJ is the package energy over the run (domains + VR loss).
	TotalJ float64
	// Steps is how many engine steps the ledger integrated.
	Steps int64
	// ConservationErr is the worst per-domain relative mismatch between
	// summed attributed joules and integrated domain energy — the
	// accounting invariant, expected at rounding level.
	ConservationErr float64
	// Domains grades attribution per power domain.
	Domains []energy.DomainAccuracy
}

// EnergyReport is the full attribution-accuracy experiment.
type EnergyReport struct {
	Limit config.PowerLimit
	Dur   sim.Time
	Seed  int64
	// Suite holds one row per Table 3 combo (HCAPP, work-pool runs).
	Suite []EnergyScenarioRow
	// FaultCombo names the combo the fault phase stresses.
	FaultCombo string
	// Faults holds one row per HCAPP fault scenario (continuous load,
	// clamp + watchdogs + holdover armed, as in the fault sweep).
	Faults []EnergyScenarioRow
}

func energyRow(name string, s *energy.Summary) EnergyScenarioRow {
	return EnergyScenarioRow{
		Name:            name,
		TotalJ:          s.TotalJ,
		Steps:           s.Steps,
		ConservationErr: s.ConservationError(),
		Domains:         s.Accuracy(),
	}
}

// RunEnergyAttribution measures attribution accuracy across the suite
// and a fault sweep of faultCombo under the given limit, at the
// evaluator's horizon and seed. Suite runs go through the evaluator
// (runner fan-out, single-flight cache, fleet offload when Remote is
// set); fault runs build locally like the fault sweep — injectors don't
// cross the wire — fanned over the same runner with indexed slots, so
// the report is byte-identical at any worker count or fleet width.
func (ev *Evaluator) RunEnergyAttribution(faultCombo Combo, limit config.PowerLimit) (*EnergyReport, error) {
	scheme, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return nil, err
	}
	report := &EnergyReport{
		Limit:      limit,
		Dur:        ev.TargetDur,
		Seed:       ev.Cfg.Seed,
		FaultCombo: faultCombo.Name,
	}

	// A derived evaluator with energy tracking on: same parameters,
	// runner and fleet, but its own cache namespace (runKey folds
	// energy=1), so running this inside "-experiment all" can never
	// cross-contaminate the other experiments' cached results.
	evE := &Evaluator{
		Cfg:          ev.Cfg,
		TargetDur:    ev.TargetDur,
		MaxDurFactor: ev.MaxDurFactor,
		FixedV:       ev.FixedV,
		Remote:       ev.Remote,
		TrackEnergy:  true,
		runner:       ev.runner,
	}
	suite := Suite()
	specs := make([]RunSpec, len(suite))
	for i, combo := range suite {
		specs[i] = RunSpec{Combo: combo, Scheme: scheme, Limit: limit}
	}
	results, err := evE.RunSpecs(context.Background(), specs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		if res.Energy == nil {
			return nil, fmt.Errorf("experiment: energy run %s returned no ledger summary", suite[i].Name)
		}
		report.Suite = append(report.Suite, energyRow(suite[i].Name, res.Energy))
	}

	// Fault phase: the sweep's HCAPP scenarios (telemetry-class faults
	// only exist on the centralized baseline's collection path), each a
	// continuous-load run with the resilience stack armed.
	var scenarios []SweepScenario
	for _, sc := range DefaultFaultPlans(ev.TargetDur, ev.Cfg.Seed) {
		if !sc.Centralized {
			scenarios = append(scenarios, sc)
		}
	}
	rows := make([]EnergyScenarioRow, len(scenarios))
	err = ev.runner.Tasks(context.Background(), len(scenarios), func(ctx context.Context, i int) error {
		inj, err := fault.New(scenarios[i].Plan)
		if err != nil {
			return err
		}
		sys, err := Build(ev.Cfg, faultCombo, BuildOptions{
			Scheme:      scheme,
			TargetPower: TargetPowerFor(limit),
			Injector:    inj,
			Clamp:       &core.ClampConfig{CapW: limit.Watts, Window: limit.Window, DT: ev.Cfg.TimeStep},
			Watchdog:    core.WatchdogConfig{Timeout: DefaultWatchdogTimeout},
			Holdover:    core.HoldoverConfig{MaxAge: DefaultHoldoverMaxAge},
			TrackEnergy: true,
			Adaptive:    ev.Adaptive,
		})
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		sys.Engine.RunFor(ev.TargetDur)
		rows[i] = energyRow(scenarios[i].Plan.Name, sys.Energy.Summary())
		return nil
	})
	if err != nil {
		return nil, err
	}
	report.Faults = rows
	return report, nil
}

// RenderEnergyAttribution formats the attribution-accuracy report.
func RenderEnergyAttribution(r *EnergyReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Energy attribution accuracy (hcapp, %s limit, %.2f ms horizon, seed %d)\n",
		r.Limit.Name, float64(r.Dur)/float64(sim.Millisecond), r.Seed)
	fmt.Fprintf(&sb, "attributed = rail energy split by activity share; ideal = true unit energy + pro-rata uncore\n\n")
	renderEnergyRows(&sb, "Suite (Table 3 combos, hcapp work-pool runs):", r.Suite)
	fmt.Fprintf(&sb, "\n")
	renderEnergyRows(&sb, fmt.Sprintf("Fault scenarios (%s, continuous load, clamp+watchdog+holdover armed):", r.FaultCombo), r.Faults)
	return sb.String()
}

func renderEnergyRows(sb *strings.Builder, title string, rows []EnergyScenarioRow) {
	fmt.Fprintf(sb, "%s\n", title)
	fmt.Fprintf(sb, "%-18s %-7s %12s %9s %10s %13s %11s\n",
		"run", "domain", "energy_j", "uncore%", "misattr%", "max_unit_err", "conserve")
	for _, row := range rows {
		name := row.Name
		for _, d := range row.Domains {
			fmt.Fprintf(sb, "%-18s %-7s %12.6e %9.3f %10.4f %13.4e %11.1e\n",
				name, d.Domain, d.EnergyJ, 100*d.UncoreFrac, 100*d.MisattrFrac,
				d.MaxUnitErr, row.ConservationErr)
			name = "" // repeat the run name only on its first domain line
		}
	}
}
