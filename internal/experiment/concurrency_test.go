package experiment

import (
	"reflect"
	"sync"
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/sim"
)

// TestParallelEvaluatorsAreIndependent runs the same spec on several
// evaluators in parallel goroutines. Under -race this proves evaluators
// share no mutable simulation state (the property the job server's
// worker pool relies on); the equality check proves a given seed is
// deterministic regardless of what runs beside it.
func TestParallelEvaluatorsAreIndependent(t *testing.T) {
	combo, err := ComboByName("Mid-Mid")
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Combo: combo, Scheme: scheme, Limit: config.PackagePinLimit()}

	const workers = 6
	results := make([]RunResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ev := NewEvaluator().WithTargetDur(sim.Millisecond / 2)
			ev.Cfg.Seed = 42
			results[i], errs[i] = ev.Run(spec)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("evaluator %d: %v", i, err)
		}
	}
	// Compare outcomes with the spec echo zeroed: DeepEqual rejects any
	// non-nil func value, and the combo's workload generators are funcs.
	for i := range results {
		results[i].Spec = RunSpec{}
	}
	for i := 1; i < workers; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("evaluator %d diverged:\n got %+v\nwant %+v", i, results[i], results[0])
		}
	}
	if results[0].Duration <= 0 || results[0].AvgPower <= 0 {
		t.Fatalf("degenerate result %+v", results[0])
	}
}

// TestParallelEvaluatorsDistinctSeeds runs different seeds in parallel
// and checks they produce different workload outcomes — i.e. the
// parallel runs above agreeing was not vacuous.
func TestParallelEvaluatorsDistinctSeeds(t *testing.T) {
	combo, err := ComboByName("Burst-Burst")
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Combo: combo, Scheme: scheme, Limit: config.PackagePinLimit()}

	seeds := []int64{1, 2, 3, 4}
	results := make([]RunResult, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			ev := NewEvaluator().WithTargetDur(sim.Millisecond / 2)
			ev.Cfg.Seed = seed
			results[i], _ = ev.Run(spec)
		}(i, seed)
	}
	wg.Wait()

	distinct := false
	for i := 1; i < len(results); i++ {
		if results[i].AvgPower != results[0].AvgPower {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all seeds produced identical average power; seeding looks inert")
	}
}
