package experiment

import (
	"testing"

	"hcapp/internal/config"
)

func TestRunVariantKnobs(t *testing.T) {
	ev := shortEvaluator()
	combo := mustCombo2(t, "Mid-Mid")
	limit := config.PackagePinLimit()

	base, err := ev.runVariant(combo, limit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.AvgPower <= 0 {
		t.Fatal("degenerate base run")
	}

	// Guardbanded clocking must slow the package down at the same rail.
	gb, err := ev.runVariant(combo, limit, func(o *BuildOptions) { o.VoltageMargin = 0.05 })
	if err != nil {
		t.Fatal(err)
	}
	if gb.Completion["cpu"] <= base.Completion["cpu"] {
		t.Errorf("guardband did not slow the CPU: %d vs %d", gb.Completion["cpu"], base.Completion["cpu"])
	}

	// Disabling local controllers must still run and hold the limit.
	nl, err := ev.runVariant(combo, limit, func(o *BuildOptions) { o.DisableLocalControl = true })
	if err != nil {
		t.Fatal(err)
	}
	if nl.Violated {
		t.Error("no-local variant violated the limit")
	}

	// The occupancy controller must build and run.
	occ, err := ev.runVariant(combo, limit, func(o *BuildOptions) { o.GPUController = "dynamic-occupancy" })
	if err != nil {
		t.Fatal(err)
	}
	if occ.AvgPower <= 0 {
		t.Fatal("degenerate occupancy run")
	}

	// Unknown controller must fail.
	if _, err := ev.runVariant(combo, limit, func(o *BuildOptions) { o.GPUController = "psychic" }); err == nil {
		t.Fatal("unknown GPU controller accepted")
	}
}

func TestThermalCheckBelowTrip(t *testing.T) {
	ev := shortEvaluator()
	cpu, gpu, tripped, err := ev.ThermalCheck()
	if err != nil {
		t.Fatal(err)
	}
	// The §3.5 assumption: evaluation power never reaches the trip point.
	if tripped {
		t.Fatalf("thermal protection tripped (cpu %.1f, gpu %.1f °C)", cpu, gpu)
	}
	if cpu <= 45 || gpu <= 45 {
		t.Fatalf("no heating observed (cpu %.1f, gpu %.1f °C)", cpu, gpu)
	}
	out, err := ev.RenderThermalCheck()
	if err != nil || out == "" {
		t.Fatalf("render: %q, %v", out, err)
	}
}

func TestAblationClockingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite ablation in -short mode")
	}
	ev := shortEvaluator()
	m, err := ev.AblationClocking()
	if err != nil {
		t.Fatal(err)
	}
	// Guardbands tax performance monotonically (§3.5: adaptive clocking
	// exists to avoid exactly this).
	a := m.RowAvg("adaptive clocking")
	g25 := m.RowAvg("guardband 25 mV")
	g50 := m.RowAvg("guardband 50 mV")
	if !(a > g25 && g25 > g50) {
		t.Errorf("guardband tax not monotone: %g, %g, %g", a, g25, g50)
	}
}

func TestAblationLocalControllersShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite ablation in -short mode")
	}
	ev := shortEvaluator()
	m, err := ev.AblationLocalControllers()
	if err != nil {
		t.Fatal(err)
	}
	// All three variants must at least run legally and produce speedups.
	for _, row := range m.Rows {
		if got := m.RowAvg(row); got <= 0.9 {
			t.Errorf("%s: degenerate speedup %g", row, got)
		}
	}
}
