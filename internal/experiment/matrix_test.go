package experiment

import (
	"math"
	"strings"
	"testing"
)

func TestMatrixSetGet(t *testing.T) {
	m := NewMatrix("t", "u", []string{"A", "B"}, []string{"x", "y"})
	m.Set("A", "x", 1.5)
	if v, ok := m.Get("A", "x"); !ok || v != 1.5 {
		t.Fatalf("Get = %g, %v", v, ok)
	}
	if _, ok := m.Get("A", "y"); ok {
		t.Fatal("unset cell reported set")
	}
	if _, ok := m.Get("Z", "x"); ok {
		t.Fatal("unknown row reported set")
	}
}

func TestMatrixRowAvgAndMax(t *testing.T) {
	m := NewMatrix("t", "", []string{"A"}, []string{"x", "y", "z"})
	m.Set("A", "x", 1)
	m.Set("A", "y", 2)
	m.Set("A", "z", 6)
	if got := m.RowAvg("A"); got != 3 {
		t.Fatalf("RowAvg = %g", got)
	}
	if got := m.RowMax("A"); got != 6 {
		t.Fatalf("RowMax = %g", got)
	}
	// Partially filled rows average over set values only.
	m2 := NewMatrix("t", "", []string{"A"}, []string{"x", "y"})
	m2.Set("A", "x", 4)
	if got := m2.RowAvg("A"); got != 4 {
		t.Fatalf("partial RowAvg = %g", got)
	}
	// Empty rows are NaN.
	if got := m2.RowAvg("B"); !math.IsNaN(got) {
		t.Fatalf("empty RowAvg = %g, want NaN", got)
	}
}

func TestMatrixRender(t *testing.T) {
	m := NewMatrix("Fig X", "speedup", []string{"HCAPP"}, []string{"Hi-Hi", "Low-Low"})
	m.Set("HCAPP", "Hi-Hi", 1.21)
	out := m.Render()
	for _, want := range []string{"Fig X", "speedup", "HCAPP", "Hi-Hi", "Low-Low", "1.210", "Ave.", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMatrixSortedRows(t *testing.T) {
	m := NewMatrix("t", "", []string{"z", "a", "m"}, nil)
	got := m.SortedRows()
	if got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Fatalf("SortedRows = %v", got)
	}
	// Original order untouched.
	if m.Rows[0] != "z" {
		t.Fatal("SortedRows mutated row order")
	}
}
