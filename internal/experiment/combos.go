// Package experiment is the evaluation harness: it assembles the target
// system from its substrates, runs the paper's Table 3 benchmark
// combinations under each control scheme and power limit, and regenerates
// every table and figure of the evaluation (§4–§5).
package experiment

import (
	"fmt"
	"strings"

	"hcapp/internal/workload"
)

// Combo is one row of Table 3: a named combination of a CPU benchmark
// and a GPU benchmark (the SHA accelerator is "Modeled" in every row).
type Combo struct {
	// Name is the figure-axis name (e.g. "Burst-Low"); Table 3 spells
	// the ferret+myocyte row "Burst-Const", which the figures label
	// "Burst-Low" — myocyte is the Low benchmark.
	Name string
	// Alias is the Table 3 name when it differs from Name.
	Alias string
	CPU   workload.Benchmark
	GPU   workload.Benchmark
}

// String returns the combo's display name.
func (c Combo) String() string { return c.Name }

func mustCombo(name, alias, cpuClass, gpuClass string) Combo {
	cpu, err := workload.ByClass(workload.TargetCPU, workload.Class(cpuClass))
	if err != nil {
		panic(err)
	}
	gpu, err := workload.ByClass(workload.TargetGPU, workload.Class(gpuClass))
	if err != nil {
		panic(err)
	}
	return Combo{Name: name, Alias: alias, CPU: cpu, GPU: gpu}
}

// Suite returns the heterogeneous test suite of Table 3, in the order
// the figures plot it.
func Suite() []Combo {
	return []Combo{
		mustCombo("Burst-Burst", "", "Burst", "Burst"),
		mustCombo("Burst-Low", "Burst-Const", "Burst", "Low"),
		mustCombo("Const-Burst", "", "Const", "Burst"),
		mustCombo("Hi-Hi", "", "Hi", "Hi"),
		mustCombo("Hi-Low", "", "Hi", "Low"),
		mustCombo("Low-Hi", "", "Low", "Hi"),
		mustCombo("Low-Low", "", "Low", "Low"),
		mustCombo("Mid-Mid", "", "Mid", "Mid"),
	}
}

// ComboByName looks a combo up by its figure name or Table 3 alias.
func ComboByName(name string) (Combo, error) {
	for _, c := range Suite() {
		if strings.EqualFold(c.Name, name) || (c.Alias != "" && strings.EqualFold(c.Alias, name)) {
			return c, nil
		}
	}
	return Combo{}, fmt.Errorf("experiment: unknown combo %q", name)
}

// Table3 renders the benchmark combination table.
func Table3() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-14s %-10s %s\n", "Name", "CPU", "GPU", "SHA")
	for _, c := range Suite() {
		name := c.Name
		if c.Alias != "" {
			name = fmt.Sprintf("%s (%s)", c.Name, c.Alias)
		}
		fmt.Fprintf(&sb, "%-14s %-14s %-10s %s\n", name, title(c.CPU.Name), title(c.GPU.Name), "Modeled")
	}
	return sb.String()
}

func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
