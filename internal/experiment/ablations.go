package experiment

import (
	"context"
	"fmt"

	"hcapp/internal/config"
	"hcapp/internal/sim"
)

// Ablations of the design choices DESIGN.md calls out: the value of the
// level-3 local controllers (CAPP showed a local-controller-less design
// underperforms), the choice of GPU local metric (dynamic IPC vs the
// dynamic-warp/occupancy alternative, §3.3.2), and adaptive clocking vs
// static guardbanding (§3.5).

// runVariant executes one combo under HCAPP with arbitrary build-option
// mutations and returns the result (uncached).
func (ev *Evaluator) runVariant(combo Combo, limit config.PowerLimit, mutate func(*BuildOptions)) (RunResult, error) {
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return RunResult{}, err
	}
	sizing, err := ev.sizingFor(combo)
	if err != nil {
		return RunResult{}, err
	}
	opts := BuildOptions{
		Scheme:      hcapp,
		TargetPower: TargetPowerFor(limit),
		CPUWork:     sizing.CPUWork,
		GPUWork:     sizing.GPUWork,
		AccelWorkGB: sizing.AccelGB,
		Adaptive:    ev.Adaptive,
	}
	if mutate != nil {
		mutate(&opts)
	}
	sys, err := Build(ev.Cfg, combo, opts)
	if err != nil {
		return RunResult{}, err
	}
	res := sys.Engine.Run(sim.Time(float64(ev.TargetDur) * ev.MaxDurFactor))
	return newRunResult(RunSpec{Combo: combo, Scheme: hcapp, Limit: limit}, sys.Engine.Recorder(), res), nil
}

// AblationLocalControllers compares HCAPP's level-3 designs at the slow
// limit: no local controllers at all (the CAPP-without-local ablation),
// the paper's chosen static-IPC + dynamic-IPC pair, and the GPU-CAPP
// dynamic-occupancy alternative. Values are Eq. 3 total speedups over
// the fixed-voltage baseline.
func (ev *Evaluator) AblationLocalControllers() (*Matrix, error) {
	limit := config.OffPackageVRLimit()
	variants := []struct {
		name   string
		mutate func(*BuildOptions)
	}{
		{"no local controllers", func(o *BuildOptions) { o.DisableLocalControl = true }},
		{"dynamic IPC (paper)", nil},
		{"dynamic occupancy", func(o *BuildOptions) { o.GPUController = "dynamic-occupancy" }},
	}
	rows := make([]string, len(variants))
	for i, v := range variants {
		rows[i] = v.name
	}
	m := NewMatrix("Ablation: level-3 local controller designs (speedup vs fixed, 1 ms limit)", "total speedup", rows, comboNames())

	mutations := make([]func(*BuildOptions), len(variants))
	for i, v := range variants {
		mutations[i] = v.mutate
	}
	results, err := ev.variantBatch(limit, mutations)
	if err != nil {
		return nil, err
	}
	perCombo := 1 + len(variants)
	for ci, combo := range Suite() {
		base := results[ci*perCombo]
		for vi, v := range variants {
			_, total := results[ci*perCombo+1+vi].SpeedupOver(base)
			m.Set(v.name, combo.Name, total)
		}
	}
	return m, nil
}

// variantBatch runs, for every suite combo, the fixed-voltage baseline
// plus one HCAPP run per build-option mutation, fanned over the runner
// and returned in (combo-major, base-first) order.
func (ev *Evaluator) variantBatch(limit config.PowerLimit, mutations []func(*BuildOptions)) ([]RunResult, error) {
	suite := Suite()
	perCombo := 1 + len(mutations)
	results := make([]RunResult, perCombo*len(suite))
	err := ev.runner.Tasks(context.Background(), len(results), func(ctx context.Context, i int) error {
		combo := suite[i/perCombo]
		var (
			r    RunResult
			rerr error
		)
		if pi := i % perCombo; pi == 0 {
			r, rerr = ev.RunContext(ctx, RunSpec{Combo: combo, Scheme: ev.FixedScheme(), Limit: limit})
		} else {
			r, rerr = ev.runVariant(combo, limit, mutations[pi-1])
		}
		if rerr != nil {
			return rerr
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// AblationClocking compares the §3.5 timing-safety mechanisms: adaptive
// clocking (frequency tracks delivered voltage) versus static voltage
// guardbands of 25 mV and 50 mV. Values are Eq. 3 total speedups over
// the fixed-voltage baseline at the fast limit — the guardband's
// performance tax made visible.
func (ev *Evaluator) AblationClocking() (*Matrix, error) {
	limit := config.PackagePinLimit()
	variants := []struct {
		name   string
		margin float64
	}{
		{"adaptive clocking", 0},
		{"guardband 25 mV", 0.025},
		{"guardband 50 mV", 0.050},
	}
	rows := make([]string, len(variants))
	for i, v := range variants {
		rows[i] = v.name
	}
	m := NewMatrix("Ablation: adaptive clocking vs voltage guardband (speedup vs fixed, 20 us limit)", "total speedup", rows, comboNames())

	mutations := make([]func(*BuildOptions), len(variants))
	for i, v := range variants {
		margin := v.margin
		mutations[i] = func(o *BuildOptions) { o.VoltageMargin = margin }
	}
	results, err := ev.variantBatch(limit, mutations)
	if err != nil {
		return nil, err
	}
	perCombo := 1 + len(variants)
	for ci, combo := range Suite() {
		base := results[ci*perCombo]
		for vi, v := range variants {
			_, total := results[ci*perCombo+1+vi].SpeedupOver(base)
			m.Set(v.name, combo.Name, total)
		}
	}
	return m, nil
}

// ThermalCheck runs the hottest combo under HCAPP with thermal nodes
// attached and reports the peak junction temperature — verifying the
// paper's §3.5 assumption ("the power constraint is lower than the TDP
// so temperature effects are not modeled") holds on this system.
func (ev *Evaluator) ThermalCheck() (peakCPU, peakGPU float64, tripped bool, err error) {
	combo, err := ComboByName("Hi-Hi")
	if err != nil {
		return 0, 0, false, err
	}
	sizing, err := ev.sizingFor(combo)
	if err != nil {
		return 0, 0, false, err
	}
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return 0, 0, false, err
	}
	sys, err := Build(ev.Cfg, combo, BuildOptions{
		Scheme:        hcapp,
		TargetPower:   TargetPowerFor(config.OffPackageVRLimit()),
		CPUWork:       sizing.CPUWork,
		GPUWork:       sizing.GPUWork,
		AccelWorkGB:   sizing.AccelGB,
		EnableThermal: true,
		Adaptive:      ev.Adaptive,
	})
	if err != nil {
		return 0, 0, false, err
	}
	sys.Engine.Run(sim.Time(float64(ev.TargetDur) * ev.MaxDurFactor))
	return sys.CPU.PeakTemp(), sys.GPU.PeakTemp(),
		sys.CPU.ThermalTripped() || sys.GPU.ThermalTripped(), nil
}

// RenderThermalCheck formats the thermal verification.
func (ev *Evaluator) RenderThermalCheck() (string, error) {
	cpu, gpu, tripped, err := ev.ThermalCheck()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf(
		"Thermal check (Hi-Hi under HCAPP, default RC nodes): peak CPU %.1f °C, peak GPU %.1f °C, protection tripped: %v\n",
		cpu, gpu, tripped), nil
}
