package experiment

import (
	"reflect"
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/sim"
)

// adaptiveEvaluator is shortEvaluator with steady-state striding on.
func adaptiveEvaluator() *Evaluator {
	ev := shortEvaluator()
	ev.Adaptive = true
	return ev
}

// requireIdenticalResults fails unless two runs are bitwise equal in
// every measured quantity — the adaptive engine's whole contract.
func requireIdenticalResults(t *testing.T, label string, f, a RunResult) {
	t.Helper()
	if f.AvgPower != a.AvgPower || f.MaxWindowPower != a.MaxWindowPower ||
		f.MaxOverLimit != a.MaxOverLimit || f.PPE != a.PPE {
		t.Fatalf("%s: power metrics diverge:\nfixed    %+v\nadaptive %+v", label, f, a)
	}
	if f.Duration != a.Duration || f.Completed != a.Completed ||
		f.Violated != a.Violated || f.ControlCycles != a.ControlCycles {
		t.Fatalf("%s: run outcome diverges:\nfixed    %+v\nadaptive %+v", label, f, a)
	}
	if !reflect.DeepEqual(f.Completion, a.Completion) || !reflect.DeepEqual(f.Finished, a.Finished) {
		t.Fatalf("%s: completion times diverge:\nfixed    %v/%v\nadaptive %v/%v",
			label, f.Completion, f.Finished, a.Completion, a.Finished)
	}
}

// TestAdaptiveMatchesFixedAcrossMatrix is the fixed-vs-adaptive
// determinism matrix: every combo × scheme cell must produce bitwise
// identical results whether the engine strides through steady state or
// steps through it. Striding is an execution detail, never a model
// change — which is also why Adaptive is deliberately absent from the
// result cache key.
func TestAdaptiveMatchesFixedAcrossMatrix(t *testing.T) {
	fixed := shortEvaluator()
	adaptive := adaptiveEvaluator()
	limit := config.PackagePinLimit()
	schemes := []config.Scheme{fixed.FixedScheme()}
	for _, k := range []config.SchemeKind{config.HCAPP, config.RAPLLike, config.SWLike} {
		s, err := config.SchemeByKind(k)
		if err != nil {
			t.Fatal(err)
		}
		schemes = append(schemes, s)
	}
	for _, comboName := range []string{"Burst-Burst", "Hi-Hi", "Mid-Mid"} {
		combo := mustCombo2(t, comboName)
		for _, scheme := range schemes {
			spec := RunSpec{Combo: combo, Scheme: scheme, Limit: limit}
			f, err := fixed.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			a, err := adaptive.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			requireIdenticalResults(t, comboName+"/"+string(scheme.Kind), f, a)
		}
	}
}

// TestAdaptiveFaultSweepIdentical extends the matrix to the fault
// sweep: injector windows force stride boundaries, and every scenario
// row must still come out bit for bit the same.
func TestAdaptiveFaultSweepIdentical(t *testing.T) {
	run := func(adaptive bool) *FaultSweep {
		ev := shortEvaluator()
		ev.Adaptive = adaptive
		sweep, err := ev.RunFaultSweep(mustCombo2(t, "Mid-Mid"), config.PackagePinLimit(), 2*sim.Millisecond, 7)
		if err != nil {
			t.Fatal(err)
		}
		return sweep
	}
	f, a := run(false), run(true)
	if !reflect.DeepEqual(f.Rows, a.Rows) {
		t.Fatalf("fault sweep diverges under adaptive stepping:\n%s\nvs\n%s",
			RenderFaultSweep(f), RenderFaultSweep(a))
	}
}

// TestAdaptiveSeedSweepIdentical covers the seed sweep's stochastic
// injector draws: the PRNG consumption pattern must be unchanged by
// striding (strides never span an active or imminent fault window).
func TestAdaptiveSeedSweepIdentical(t *testing.T) {
	run := func(adaptive bool) *SeedSweep {
		sweep, err := RunSeedSweepWith(nil, []int64{3, 11}, config.PackagePinLimit(), 2*sim.Millisecond, adaptive)
		if err != nil {
			t.Fatal(err)
		}
		return sweep
	}
	f, a := run(false), run(true)
	if !reflect.DeepEqual(f, a) {
		t.Fatalf("seed sweep diverges under adaptive stepping:\n%+v\nvs\n%+v", f, a)
	}
}

// TestAdaptiveNotInCacheKey pins the deliberate design choice: because
// adaptive runs are bitwise identical, results are interchangeable and
// the flag must not fragment the evaluator/fleet result cache.
func TestAdaptiveNotInCacheKey(t *testing.T) {
	f, a := shortEvaluator(), adaptiveEvaluator()
	spec := RunSpec{Combo: mustCombo2(t, "Low-Low"), Scheme: f.FixedScheme(), Limit: config.PackagePinLimit()}
	if f.CacheKey(spec) != a.CacheKey(spec) {
		t.Fatal("Adaptive leaked into the run cache key")
	}
}
