package experiment

import (
	"reflect"
	"strings"
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/fault"
	"hcapp/internal/sim"
	"hcapp/internal/telemetry"
)

func runSweep(t *testing.T, seed int64) *FaultSweep {
	t.Helper()
	ev := shortEvaluator()
	combo := mustCombo2(t, "Mid-Mid")
	sweep, err := ev.RunFaultSweep(combo, config.PackagePinLimit(), 2*sim.Millisecond, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sweep
}

// TestFaultSweepDeterministic is the ISSUE's reproducibility criterion:
// the same combo, limit, duration and seed must yield the identical
// resilience table, bit for bit, across independent evaluators.
func TestFaultSweepDeterministic(t *testing.T) {
	a := runSweep(t, 7)
	b := runSweep(t, 7)
	// Combo holds trace-builder funcs, which DeepEqual can't compare;
	// the rows are the sweep's entire measured output.
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("identical sweeps differ:\n%s\nvs\n%s",
			RenderFaultSweep(a), RenderFaultSweep(b))
	}
	if a.Limit != b.Limit || a.Dur != b.Dur || a.Seed != b.Seed {
		t.Fatal("sweep headers differ across identical runs")
	}
	// A different seed must actually change the stochastic draws.
	c := runSweep(t, 8)
	same := true
	for i := range a.Rows {
		if a.Rows[i].Counts != c.Rows[i].Counts {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change did not alter any injector draws")
	}
}

// TestFaultSweepSafety is the ISSUE's safety criterion: with the clamp,
// holdover and watchdogs armed, no sweep scenario — including the
// sensor lying far below truth — may violate the package-pin window cap.
func TestFaultSweepSafety(t *testing.T) {
	sweep := runSweep(t, 42)
	if len(sweep.Rows) != len(DefaultFaultPlans(sweep.Dur, sweep.Seed)) {
		t.Fatalf("sweep has %d rows, want %d", len(sweep.Rows),
			len(DefaultFaultPlans(sweep.Dur, sweep.Seed)))
	}
	rows := map[string]FaultSweepRow{}
	for _, r := range sweep.Rows {
		if r.Violated {
			t.Errorf("%s: cap violated, max/limit %.3f", r.Name, r.MaxOverLimit)
		}
		if r.ThroughputRetained <= 0 {
			t.Errorf("%s: non-positive throughput retained %.3f", r.Name, r.ThroughputRetained)
		}
		rows[r.Name] = r
	}

	// Each resilience mechanism must have fired on the scenario built to
	// exercise it.
	if r := rows["sensor-stuck-low"]; r.ClampTrips == 0 {
		t.Error("sensor-stuck-low: clamp never tripped while the sensor lied low")
	}
	if r := rows["gpu-ctl-silence"]; r.WatchdogTrips["gpu"] == 0 {
		t.Error("gpu-ctl-silence: gpu watchdog never tripped")
	}
	if r := rows["sensor-blackout"]; r.HoldoverCycles == 0 || r.FailsafeCycles == 0 {
		t.Errorf("sensor-blackout: holdover %d / failsafe %d, want both > 0",
			r.HoldoverCycles, r.FailsafeCycles)
	}
	for _, name := range []string{"telemetry-loss", "telemetry-delay"} {
		r := rows[name]
		if !r.Centralized {
			t.Errorf("%s: should run against the centralized baseline", name)
		}
		if r.HoldoverCycles+r.FailsafeCycles == 0 {
			t.Errorf("%s: telemetry holdover never engaged", name)
		}
	}
	if r := rows["healthy"]; r.ThroughputRetained != 1 || r.ClampTrips != 0 {
		t.Errorf("healthy: thruput %.3f trips %d, want 1.000 and 0",
			r.ThroughputRetained, r.ClampTrips)
	}

	out := RenderFaultSweep(sweep)
	for _, want := range []string{"sensor-stuck-low", "central", "violated", "failsafe"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered sweep missing %q:\n%s", want, out)
		}
	}
}

// TestFaultSweepPublish: the sweep's tallies surface as telemetry
// counters, one series set per scenario.
func TestFaultSweepPublish(t *testing.T) {
	sweep := runSweep(t, 42)
	reg := telemetry.NewRegistry()
	m := fault.NewMetrics(reg)
	sweep.Publish(m)
	text := reg.Text()
	for _, want := range []string{
		`hcapp_faults_injected_total{scenario="sensor-blackout",kind="sense-dropped"}`,
		`hcapp_clamp_trips_total{scenario="sensor-stuck-low"}`,
		`hcapp_watchdog_trips_total{scenario="gpu-ctl-silence",domain="gpu"}`,
		`hcapp_holdover_cycles_total{scenario="sensor-blackout"}`,
		`hcapp_failsafe_cycles_total{scenario="telemetry-delay"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exported metrics missing %s", want)
		}
	}
}
