package experiment

import (
	"strings"
	"testing"

	"hcapp/internal/workload"
)

func TestSuiteIsTable3(t *testing.T) {
	suite := Suite()
	if len(suite) != 8 {
		t.Fatalf("suite size = %d, want 8", len(suite))
	}
	want := map[string][2]string{
		"Low-Low":     {"blackscholes", "myocyte"},
		"Low-Hi":      {"blackscholes", "backprop"},
		"Hi-Low":      {"fluidanimate", "myocyte"},
		"Hi-Hi":       {"fluidanimate", "backprop"},
		"Mid-Mid":     {"swaptions", "sradv2"},
		"Const-Burst": {"swaptions", "bfs"},
		"Burst-Low":   {"ferret", "myocyte"},
		"Burst-Burst": {"ferret", "bfs"},
	}
	seen := map[string]bool{}
	for _, c := range suite {
		w, ok := want[c.Name]
		if !ok {
			t.Errorf("unexpected combo %q", c.Name)
			continue
		}
		if c.CPU.Name != w[0] || c.GPU.Name != w[1] {
			t.Errorf("%s = %s+%s, want %s+%s", c.Name, c.CPU.Name, c.GPU.Name, w[0], w[1])
		}
		seen[c.Name] = true
	}
	if len(seen) != 8 {
		t.Fatalf("missing combos: saw %v", seen)
	}
}

func TestSuiteFigureOrder(t *testing.T) {
	// Figures plot combos in this alphabetical-ish order.
	want := []string{"Burst-Burst", "Burst-Low", "Const-Burst", "Hi-Hi", "Hi-Low", "Low-Hi", "Low-Low", "Mid-Mid"}
	for i, c := range Suite() {
		if c.Name != want[i] {
			t.Fatalf("suite[%d] = %s, want %s", i, c.Name, want[i])
		}
	}
}

func TestComboByName(t *testing.T) {
	c, err := ComboByName("hi-hi") // case-insensitive
	if err != nil || c.Name != "Hi-Hi" {
		t.Fatalf("ComboByName(hi-hi) = %+v, %v", c, err)
	}
	// Table 3 alias: Burst-Const is the figures' Burst-Low.
	c, err = ComboByName("Burst-Const")
	if err != nil || c.Name != "Burst-Low" {
		t.Fatalf("alias lookup = %+v, %v", c, err)
	}
	if _, err := ComboByName("Nope-Nope"); err == nil {
		t.Fatal("unknown combo accepted")
	}
}

func TestCombosTargetRightChiplets(t *testing.T) {
	for _, c := range Suite() {
		if c.CPU.On != workload.TargetCPU {
			t.Errorf("%s: CPU slot holds %s benchmark", c.Name, c.CPU.On)
		}
		if c.GPU.On != workload.TargetGPU {
			t.Errorf("%s: GPU slot holds %s benchmark", c.Name, c.GPU.On)
		}
	}
}

func TestTable3Render(t *testing.T) {
	out := Table3()
	for _, want := range []string{"Ferret", "Blackscholes", "Myocyte", "Sradv2", "Modeled", "Burst-Const"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, out)
		}
	}
	// Every row lists SHA as "Modeled", as in the paper.
	if got := strings.Count(out, "Modeled"); got != 8 {
		t.Errorf("Modeled rows = %d, want 8", got)
	}
}

func TestComboString(t *testing.T) {
	c, _ := ComboByName("Hi-Hi")
	if c.String() != "Hi-Hi" {
		t.Fatalf("String = %q", c.String())
	}
}
