package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"hcapp/internal/telemetry"
	"hcapp/internal/tracing"
)

// Runner fans experiment work across a bounded worker pool. The suite
// drivers (figures, seed sweep, fault sweep, scaling) submit indexed
// task batches; tasks write results by index, so assembly order — and
// therefore every rendered table — is byte-identical to a sequential
// run regardless of worker count or scheduling.
//
// A nil *Runner is valid everywhere and means sequential execution, so
// drivers take a runner without branching. The pool is shared across
// concurrent batches (the job server runs many jobs over one runner);
// tasks must not submit nested batches to the same runner, which could
// exhaust the pool and deadlock.
type Runner struct {
	workers int
	sem     chan struct{}
	metrics *RunnerMetrics
}

// NewRunner builds a pool of the given width; workers < 1 selects
// runtime.NumCPU().
func NewRunner(workers int) *Runner {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers < 1 {
		workers = 1
	}
	return &Runner{workers: workers, sem: make(chan struct{}, workers)}
}

// WithMetrics attaches per-run telemetry (duration histogram, in-flight
// and queue-depth gauges) published on every task execution.
func (r *Runner) WithMetrics(m *RunnerMetrics) *Runner {
	r.metrics = m
	return r
}

// Workers reports the pool width (1 for a nil runner).
func (r *Runner) Workers() int {
	if r == nil {
		return 1
	}
	return r.workers
}

// Tasks runs n indexed tasks over the pool and waits for them all. The
// first task error (lowest index among deterministic failures) cancels
// the batch context, so in-flight simulations stop cooperatively and
// unstarted tasks never run. A nil runner or a single-worker pool runs
// the tasks sequentially in index order.
func (r *Runner) Tasks(ctx context.Context, n int, task func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if r == nil || r.workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			tctx, finish := traceTask(ctx, i)
			err := r.observe(func() error { return task(tctx, i) })
			finish(err)
			if err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	record := func(i int, err error) {
		// Cancellation errors are a consequence of some other task's
		// failure (or the caller's context), not a finding of their own.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return
		}
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		cancel()
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.addWaiting(1)
			select {
			case r.sem <- struct{}{}:
				r.addWaiting(-1)
				defer func() { <-r.sem }()
			case <-ctx.Done():
				r.addWaiting(-1)
				return
			}
			if ctx.Err() != nil {
				return
			}
			tctx, finish := traceTask(ctx, i)
			err := r.observe(func() error { return task(tctx, i) })
			finish(err)
			if err != nil {
				record(i, err)
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// RunSpecs executes specs over the pool against one evaluator and
// returns results in spec order. Overlapping specs across concurrent
// batches dedupe through the evaluator's single-flight cache.
func (r *Runner) RunSpecs(ctx context.Context, ev *Evaluator, specs []RunSpec) ([]RunResult, error) {
	out := make([]RunResult, len(specs))
	err := r.Tasks(ctx, len(specs), func(ctx context.Context, i int) error {
		res, err := ev.RunContext(ctx, specs[i])
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// traceTask opens the item[i] span for one pool task when — and only
// when — the batch context carries trace context; untraced batches (the
// common CLI path) pay two nil checks. The task runs under the item
// span's context, so anything it submits downstream parents correctly.
func traceTask(ctx context.Context, i int) (context.Context, func(error)) {
	tr, parent, ok := tracing.FromContext(ctx)
	if !ok {
		return ctx, func(error) {}
	}
	sp := tr.StartSpan(parent, fmt.Sprintf("item[%d]", i))
	return tracing.ContextWith(ctx, tr, sp.Context()), func(err error) {
		sp.SetAttr("outcome", tracing.Outcome(err)).End()
	}
}

// observe wraps one task execution with the runner's telemetry.
func (r *Runner) observe(f func() error) error {
	if r == nil || r.metrics == nil {
		return f()
	}
	r.metrics.inFlight.Inc()
	start := time.Now()
	err := f()
	r.metrics.inFlight.Dec()
	r.metrics.duration.Observe(time.Since(start).Seconds())
	return err
}

func (r *Runner) addWaiting(d float64) {
	if r.metrics != nil {
		r.metrics.waiting.Add(d)
	}
}

// RunnerMetrics is the runner's telemetry family set; see
// docs/METRICS.md for the catalogue entries.
type RunnerMetrics struct {
	duration *telemetry.Histogram
	inFlight *telemetry.Gauge
	waiting  *telemetry.Gauge
}

// NewRunnerMetrics registers the runner families on a registry.
func NewRunnerMetrics(reg *telemetry.Registry) *RunnerMetrics {
	return &RunnerMetrics{
		duration: reg.Histogram("hcapp_run_duration_seconds",
			"Wall-clock duration of one experiment task on the runner pool (cache hits land in the lowest buckets).",
			telemetry.ExpBuckets(0.005, 2, 14)).With(),
		inFlight: reg.Gauge("hcapp_runs_in_flight",
			"Experiment tasks currently executing on the runner pool.").With(),
		waiting: reg.Gauge("hcapp_runs_waiting",
			"Experiment tasks queued for a runner worker.").With(),
	}
}
