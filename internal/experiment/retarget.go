package experiment

import (
	"fmt"
	"strings"

	"hcapp/internal/config"
	"hcapp/internal/sim"
)

// RunRetarget validates the §5.2 claim that "the power limit could be
// changed dynamically during a run without needing costly PID analysis":
// one combo runs under HCAPP with the power target switched mid-run, and
// both halves are graded against their own limits with the same PID
// constants.
type RetargetResult struct {
	Combo Combo
	// FirstTarget/SecondTarget are the PSPEC values of each half.
	FirstTarget, SecondTarget float64
	// FirstAvg/SecondAvg are the measured average powers of each half.
	FirstAvg, SecondAvg float64
	// FirstMax/SecondMax are the max window powers of each half against
	// the fast (20 µs) window.
	FirstMax, SecondMax float64
	// SwitchAt is when the target changed.
	SwitchAt sim.Time
}

// RunRetarget executes the mid-run target switch: the first half tracks
// the fast-limit target, the second half the slow-limit target.
func (ev *Evaluator) RunRetarget(combo Combo) (*RetargetResult, error) {
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return nil, err
	}
	sizing, err := ev.sizingFor(combo)
	if err != nil {
		return nil, err
	}
	t1 := TargetPowerFor(config.PackagePinLimit())
	t2 := TargetPowerFor(config.OffPackageVRLimit())
	sys, err := Build(ev.Cfg, combo, BuildOptions{
		Scheme:      hcapp,
		TargetPower: t1,
		CPUWork:     sizing.CPUWork * 10, // keep the package busy throughout
		GPUWork:     sizing.GPUWork * 10,
		AccelWorkGB: sizing.AccelGB * 10,
		Adaptive:    ev.Adaptive,
	})
	if err != nil {
		return nil, err
	}
	half := ev.TargetDur / 2
	sys.Engine.RunFor(half)
	rec := sys.Engine.Recorder()
	firstSteps := rec.Steps()
	firstAvg := rec.AvgPower()
	firstMax := rec.MaxWindowAvg(20 * sim.Microsecond)

	// The §3.2/§5.2 retarget: one register write, no retuning.
	sys.Engine.GlobalController().SetTargetPower(t2)
	sys.Engine.RunFor(half)

	// Second-half statistics from the full trace minus the first half.
	totalAvg := rec.AvgPower()
	steps := rec.Steps()
	secondAvg := (totalAvg*float64(steps) - firstAvg*float64(firstSteps)) / float64(steps-firstSteps)
	return &RetargetResult{
		Combo:        combo,
		FirstTarget:  t1,
		SecondTarget: t2,
		FirstAvg:     firstAvg,
		SecondAvg:    secondAvg,
		FirstMax:     firstMax,
		SecondMax:    rec.MaxWindowAvg(20 * sim.Microsecond),
		SwitchAt:     half,
	}, nil
}

// Render formats the retarget validation.
func (r *RetargetResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dynamic retarget (%s, HCAPP, switch at %s, same PID constants)\n",
		r.Combo.Name, sim.FormatTime(r.SwitchAt))
	fmt.Fprintf(&sb, "%-12s %10s %10s\n", "half", "target W", "avg W")
	fmt.Fprintf(&sb, "%-12s %10.1f %10.2f\n", "first", r.FirstTarget, r.FirstAvg)
	fmt.Fprintf(&sb, "%-12s %10.1f %10.2f\n", "second", r.SecondTarget, r.SecondAvg)
	return sb.String()
}
