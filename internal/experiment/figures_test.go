package experiment

import (
	"strings"
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/sim"
)

func TestFig1NormalizedTrace(t *testing.T) {
	ev := shortEvaluator()
	combo := mustCombo2(t, "Burst-Burst")
	pts, avg, err := ev.Fig1(combo, 50*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if avg <= 0 {
		t.Fatalf("avg power %g", avg)
	}
	if len(pts) < 10 {
		t.Fatalf("trace too short: %d points", len(pts))
	}
	// Normalized to the average: mean ≈ 1, and a bursty static trace
	// must swing well above and below it (Fig. 1 shows 0.6–1.8).
	sum, lo, hi := 0.0, pts[0].P, pts[0].P
	for _, p := range pts {
		sum += p.P
		if p.P < lo {
			lo = p.P
		}
		if p.P > hi {
			hi = p.P
		}
	}
	mean := sum / float64(len(pts))
	if mean < 0.95 || mean > 1.05 {
		t.Fatalf("normalized mean = %g, want ≈1", mean)
	}
	if hi < 1.2 {
		t.Fatalf("peak %g: static bursty trace should exceed 1.2× average", hi)
	}
	if lo > 0.95 {
		t.Fatalf("floor %g: static bursty trace should dip below average", lo)
	}
}

func TestFig2WindowsFlattenPeaks(t *testing.T) {
	ev := shortEvaluator()
	combo := mustCombo2(t, "Burst-Burst")
	windows := []sim.Time{20 * sim.Microsecond, 1 * sim.Millisecond}
	series, _, err := ev.Fig2(combo, windows, 20*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	peak := func(w sim.Time) float64 {
		m := 0.0
		for _, p := range series[w] {
			if p.P > m {
				m = p.P
			}
		}
		return m
	}
	p20 := peak(20 * sim.Microsecond)
	p1ms := peak(1 * sim.Millisecond)
	// "The power peaks seen at the 20µs time window are not visible at
	// the other time windows" (Fig. 2 caption).
	if p20 <= p1ms {
		t.Fatalf("20µs peak %g not above 1ms peak %g", p20, p1ms)
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite figure in -short mode")
	}
	// SW-like acts once per 10 ms, so the horizon must exceed its period
	// for its violations to appear.
	ev := NewEvaluator().WithTargetDur(12 * sim.Millisecond)
	m, err := ev.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim of §5.1: fixed voltage and HCAPP stay at or
	// below the limit; RAPL-like and SW-like exceed it.
	if got := m.RowMax("Fixed Voltage"); got > 1.0 {
		t.Errorf("fixed voltage violated the fast limit: %g", got)
	}
	if got := m.RowMax("HCAPP"); got > 1.0 {
		t.Errorf("HCAPP violated the fast limit: %g", got)
	}
	if got := m.RowMax("RAPL-like HCAPP"); got <= 1.0 {
		t.Errorf("RAPL-like did not violate the fast limit: %g", got)
	}
	if got := m.RowMax("SW-like HCAPP"); got <= 1.0 {
		t.Errorf("SW-like did not violate the fast limit: %g", got)
	}
}

func TestFig5And6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite figure in -short mode")
	}
	ev := shortEvaluator()
	speed, err := ev.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if got := speed.RowAvg("HCAPP"); got <= 1.0 {
		t.Errorf("HCAPP average speedup = %g, want > 1 (paper: 1.21)", got)
	}
	if got := speed.RowAvg("Fixed Voltage"); got != 1.0 {
		t.Errorf("fixed self-speedup = %g", got)
	}
	ppe, err := ev.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	fixed := ppe.RowAvg("Fixed Voltage")
	hc := ppe.RowAvg("HCAPP")
	if hc <= fixed {
		t.Errorf("HCAPP PPE %g not above fixed %g (paper: 79.3%% vs 69.1%%)", hc, fixed)
	}
}

func TestFig8And9Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite figure in -short mode")
	}
	// Use a longer horizon so the SW-like controller acts at least once.
	ev := NewEvaluator().WithTargetDur(12 * sim.Millisecond)
	speed, err := ev.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	h := speed.RowAvg("HCAPP")
	r := speed.RowAvg("RAPL-like HCAPP")
	s := speed.RowAvg("SW-like HCAPP")
	if !(h > r && r > s) {
		t.Errorf("speedup ordering broken: HCAPP %g, RAPL %g, SW %g (paper: 1.43 > 1.36 > ~1)", h, r, s)
	}
	ppe, err := ev.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	hp := ppe.RowAvg("HCAPP")
	rp := ppe.RowAvg("RAPL-like HCAPP")
	sp := ppe.RowAvg("SW-like HCAPP")
	if !(hp > rp && rp > sp) {
		t.Errorf("PPE ordering broken: %g, %g, %g (paper: 93.9 > 79.7 > 69.2)", hp, rp, sp)
	}
}

func TestFig10PriorityHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite figure in -short mode")
	}
	ev := shortEvaluator()
	m, err := ev.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"CPU", "GPU", "SHA"} {
		if got := m.RowAvg(row); got <= 1.0 {
			t.Errorf("%s priority average speedup = %g, want > 1", row, got)
		}
	}
}

func TestTable1(t *testing.T) {
	out := Table1()
	if !strings.Contains(out, "147-617") {
		t.Fatalf("Table 1 missing total:\n%s", out)
	}
	if !Table1Feasible() {
		t.Fatal("Table 1 budget must fit the 1 µs period")
	}
}

func TestRunScalingValidation(t *testing.T) {
	sc := DefaultScalingConfig()
	sc.ChipletCounts = []int{0}
	if _, err := RunScaling(config.Default(), sc); err == nil {
		t.Fatal("zero chiplet count accepted")
	}
}

func TestRunScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep in -short mode")
	}
	sc := DefaultScalingConfig()
	sc.ChipletCounts = []int{1, 4}
	sc.Dur = 1 * sim.Millisecond
	res, err := RunScaling(config.Default(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		// HCAPP's period is size-independent; the centralized period
		// grows with node count.
		if p.HCAPPPeriod != sim.Microsecond {
			t.Errorf("HCAPP period at n=%d: %d", p.Triples, p.HCAPPPeriod)
		}
		if p.HCAPPMax > 1.05 {
			t.Errorf("HCAPP violated at n=%d: %g", p.Triples, p.HCAPPMax)
		}
	}
	if res.Points[1].CentralPeriod <= res.Points[0].CentralPeriod {
		t.Error("centralized period did not grow with scale")
	}
	out := res.Render()
	if !strings.Contains(out, "triples") {
		t.Errorf("render missing header:\n%s", out)
	}
}
