package experiment

import (
	"context"
	"fmt"
	"strings"

	"hcapp/internal/accelsim"
	"hcapp/internal/chiplet"
	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/cpusim"
	"hcapp/internal/gpusim"
	"hcapp/internal/noc"
	"hcapp/internal/psn"
	"hcapp/internal/sched"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
	"hcapp/internal/vr"
)

// The scaling experiment operationalizes the paper's third motivating
// problem (§1, "Scaling with 2.5D integration") and the §2 critique of
// centralized designs: a centralized controller must aggregate metrics
// from every node over shared wires, so its achievable control period
// grows with the number of chiplets, while HCAPP's round trip is fixed
// by the power-delivery physics (Table 1) no matter how many chiplets
// share the rail.
//
// We model the centralized aggregation cost explicitly with the
// internal/noc collection-network model: a controller cannot cycle
// faster than it can gather a metric snapshot and scatter commands back.
// HCAPP's period stays at 1 µs regardless of n.

// ScalingConfig parameterizes the chiplet-count sweep.
type ScalingConfig struct {
	// ChipletCounts are the numbers of compute-chiplet triples
	// (CPU+GPU+SHA) to evaluate.
	ChipletCounts []int
	// Network models the centralized controller's metric-collection
	// interconnect (per §2: "getting the information from each node to
	// the centralized controller requires either separate global wires
	// or shared resources ... congestion as the system continues to
	// scale"). The default is the shared-bus case.
	Network noc.Config
	// CentralFloor is the fastest period the centralized controller
	// could cycle at even with free metrics (decision logic + command
	// distribution).
	CentralFloor sim.Time
	// LimitPerTriple scales the package power limit with system size.
	LimitPerTriple float64
	// Window is the power-limit window to evaluate.
	Window sim.Time
	// Combo selects the workload.
	Combo Combo
	// Dur is the run length.
	Dur sim.Time
	// Adaptive enables the engine's steady-state striding for locally
	// simulated cells (bitwise-identical results; see sched.Config).
	Adaptive bool
	// Cell, when non-nil, executes one (triples, period) sweep cell —
	// hcapp-sweep points it at a cluster coordinator so the fleet
	// simulates instead of this process. Nil simulates locally via
	// RunScalingCell. Implementations must match RunScalingCell
	// bit-for-bit for the rendered sweep to be node-count independent.
	Cell func(ctx context.Context, cfg config.SystemConfig, sc ScalingConfig, triples int, period sim.Time, limit float64) (maxOver, ppe float64, err error)
}

// DefaultScalingConfig returns the sweep used by the ablation bench.
func DefaultScalingConfig() ScalingConfig {
	combo, err := ComboByName("Burst-Burst")
	if err != nil {
		panic(err)
	}
	return ScalingConfig{
		ChipletCounts:  []int{1, 2, 4, 8, 16},
		Network:        noc.DefaultBus(),
		CentralFloor:   20 * sim.Microsecond,
		LimitPerTriple: 100,
		Window:         20 * sim.Microsecond,
		Combo:          combo,
		Dur:            3 * sim.Millisecond,
	}
}

// ScalingPoint is one row of the sweep result.
type ScalingPoint struct {
	Triples int
	Nodes   int // execution units feeding a centralized controller
	// HCAPPPeriod and CentralPeriod are the achievable control periods.
	HCAPPPeriod, CentralPeriod sim.Time
	// MaxOverLimit per scheme (max window power / scaled limit).
	HCAPPMax, CentralMax float64
	// PPE per scheme.
	HCAPPPPE, CentralPPE float64
}

// ScalingResult is the full sweep.
type ScalingResult struct {
	Cfg    ScalingConfig
	Points []ScalingPoint
}

// RunScaling executes the chiplet-count sweep sequentially.
func RunScaling(cfg config.SystemConfig, sc ScalingConfig) (*ScalingResult, error) {
	return RunScalingWith(nil, cfg, sc)
}

// RunScalingWith executes the sweep with the (count, scheme-variant)
// cells fanned over the runner (nil runs sequentially). Periods and
// counts are validated up front so the parallel batch only simulates.
func RunScalingWith(r *Runner, cfg config.SystemConfig, sc ScalingConfig) (*ScalingResult, error) {
	res := &ScalingResult{Cfg: sc, Points: make([]ScalingPoint, len(sc.ChipletCounts))}
	for i, n := range sc.ChipletCounts {
		if n <= 0 {
			return nil, fmt.Errorf("experiment: non-positive chiplet count %d", n)
		}
		nodes := n * (cfg.CPU.Cores + cfg.GPU.SMs + 1)
		// The centralized loop cannot cycle faster than it can gather a
		// snapshot and scatter commands over its collection network.
		centralPeriod, err := sc.Network.MinControlPeriod(nodes, sc.CentralFloor)
		if err != nil {
			return nil, err
		}
		res.Points[i] = ScalingPoint{
			Triples:       n,
			Nodes:         nodes,
			HCAPPPeriod:   1 * sim.Microsecond,
			CentralPeriod: centralPeriod,
		}
	}

	cell := sc.Cell
	if cell == nil {
		cell = RunScalingCell
	}
	err := r.Tasks(context.Background(), 2*len(sc.ChipletCounts), func(ctx context.Context, i int) error {
		pt := &res.Points[i/2]
		period := pt.HCAPPPeriod
		if i%2 == 1 {
			period = pt.CentralPeriod
		}
		limit := sc.LimitPerTriple * float64(pt.Triples)
		maxOver, ppe, err := cell(ctx, cfg, sc, pt.Triples, period, limit)
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if i%2 == 0 {
			pt.HCAPPMax = maxOver
			pt.HCAPPPPE = ppe
		} else {
			pt.CentralMax = maxOver
			pt.CentralPPE = ppe
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RunScalingCell simulates one cell of the chiplet-count sweep — an
// n-triple package under one controller period — and reduces the trace
// to the two numbers the sweep table plots. It is the unit of work the
// cluster protocol ships to fleet workers, so its signature is exactly
// the serializable sweep inputs.
func RunScalingCell(ctx context.Context, cfg config.SystemConfig, sc ScalingConfig, triples int, period sim.Time, limit float64) (maxOver, ppe float64, err error) {
	rec, err := runScaled(cfg, sc, triples, period, limit)
	if err != nil {
		return 0, 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	return rec.MaxWindowAvg(sc.Window) / limit, rec.PPE(limit), nil
}

// runScaled builds an n-triple package under a single global controller
// with the given period and runs it.
func runScaled(cfg config.SystemConfig, sc ScalingConfig, n int, period sim.Time, limit float64) (*trace.Recorder, error) {
	gvrCfg := cfg.GlobalVR
	gvr, err := vr.NewRegulator(gvrCfg)
	if err != nil {
		return nil, err
	}
	sensor, err := vr.NewSensor(cfg.Sensor, cfg.TimeStep)
	if err != nil {
		return nil, err
	}
	line, err := psn.NewDelayLine(cfg.PSNDelay, cfg.TimeStep, gvrCfg.VInit)
	if err != nil {
		return nil, err
	}
	pcfg := DefaultPIDFor(config.Scheme{Kind: config.HCAPP, ControlPeriod: period}, gvrCfg)
	global, err := core.NewGlobal(core.GlobalConfig{
		Period:      period,
		TargetPower: limit * 0.86,
		PID:         pcfg,
	})
	if err != nil {
		return nil, err
	}

	var slots []sched.Slot
	for i := 0; i < n; i++ {
		// All triples share one seed: a parallel application spanning
		// chiplets phases together, so aggregate power volatility does
		// not average away as the system grows.
		seed := cfg.Seed
		cpu, err := cpusim.New(cfg.CPU, cfg.LocalCPU, cpusim.Options{
			Benchmark: sc.Combo.CPU, Seed: seed, LocalControl: true,
		})
		if err != nil {
			return nil, err
		}
		gpu, err := gpusim.New(cfg.GPU, cfg.LocalEpoch, gpusim.Options{
			Benchmark: sc.Combo.GPU, Seed: seed, LocalControl: true,
		})
		if err != nil {
			return nil, err
		}
		acc, err := accelsim.New(cfg.Accel, accelsim.Options{})
		if err != nil {
			return nil, err
		}
		cpuDom, err := core.NewDomain(fmt.Sprintf("cpu%d", i), cfg.CPUDomain)
		if err != nil {
			return nil, err
		}
		gpuDom, err := core.NewDomain(fmt.Sprintf("gpu%d", i), cfg.GPUDomain)
		if err != nil {
			return nil, err
		}
		accDom, err := core.NewDomain(fmt.Sprintf("sha%d", i), cfg.AccelDomain)
		if err != nil {
			return nil, err
		}
		slots = append(slots,
			sched.Slot{Domain: cpuDom, Comp: cpu},
			sched.Slot{Domain: gpuDom, Comp: gpu},
			sched.Slot{Domain: accDom, Comp: acc},
		)
	}
	memDom, err := core.NewDomain("mem", cfg.MemDomain)
	if err != nil {
		return nil, err
	}
	slots = append(slots, sched.Slot{
		Domain: memDom,
		Comp:   chiplet.NewConstant("mem", cfg.Mem.Power*float64(n)),
	})

	rec, err := trace.NewRecorder(cfg.TimeStep, false)
	if err != nil {
		return nil, err
	}
	eng, err := sched.New(sched.Config{
		DT:       cfg.TimeStep,
		GlobalVR: gvr,
		Sensor:   sensor,
		PSN:      line,
		Droop:    psn.Droop{R: cfg.DroopOhms / float64(n)},
		Global:   global,
		Slots:    slots,
		Recorder: rec,
		Adaptive: sc.Adaptive,
	})
	if err != nil {
		return nil, err
	}
	eng.RunFor(sc.Dur)
	return rec, nil
}

// Render formats the sweep as a table.
func (r *ScalingResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Chiplet scaling: HCAPP vs centralized controller (limit %g W per triple, window %s)\n",
		r.Cfg.LimitPerTriple, sim.FormatTime(r.Cfg.Window))
	fmt.Fprintf(&sb, "%8s %7s %14s %16s %11s %13s %10s %12s\n",
		"triples", "nodes", "hcapp-period", "central-period", "hcapp-max", "central-max", "hcapp-ppe", "central-ppe")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%8d %7d %14s %16s %11.3f %13.3f %10.3f %12.3f\n",
			p.Triples, p.Nodes, sim.FormatTime(p.HCAPPPeriod), sim.FormatTime(p.CentralPeriod),
			p.HCAPPMax, p.CentralMax, p.HCAPPPPE, p.CentralPPE)
	}
	return sb.String()
}
