package experiment

import (
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/swctl"
)

func TestPolicyByName(t *testing.T) {
	names := []string{"", "neutral", "static-cpu", "static-gpu", "static-sha", "progress-balancer", "critical-path"}
	for _, n := range names {
		if _, err := policyByName(n); err != nil {
			t.Errorf("policyByName(%q): %v", n, err)
		}
	}
	if _, err := policyByName("anarchy"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPolicyInstancesAreFresh(t *testing.T) {
	// CriticalPath is stateful; repeated lookups must not share state.
	a, err := policyByName("critical-path")
	if err != nil {
		t.Fatal(err)
	}
	b, err := policyByName("critical-path")
	if err != nil {
		t.Fatal(err)
	}
	if a.(*swctl.CriticalPath) == b.(*swctl.CriticalPath) {
		t.Fatal("stateful policy shared between runs")
	}
}

func TestBuildSupervisor(t *testing.T) {
	if sup, err := buildSupervisor(""); err != nil || sup != nil {
		t.Fatalf("empty policy: %v, %v", sup, err)
	}
	if sup, err := buildSupervisor("neutral"); err != nil || sup != nil {
		t.Fatalf("neutral policy should yield no supervisor: %v, %v", sup, err)
	}
	sup, err := buildSupervisor("progress-balancer")
	if err != nil || sup == nil {
		t.Fatalf("balancer: %v, %v", sup, err)
	}
	if sup.Period() != SoftwarePolicyPeriod {
		t.Fatalf("period %d", sup.Period())
	}
	if _, err := buildSupervisor("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestSoftwarePolicies(t *testing.T) {
	ps := SoftwarePolicies()
	if len(ps) < 4 {
		t.Fatalf("policy set too small: %d", len(ps))
	}
}

func TestPolicyRunDiffersFromBase(t *testing.T) {
	ev := shortEvaluator()
	combo := mustCombo2(t, "Mid-Mid")
	hc := mustScheme2(t, config.HCAPP)
	limit := config.PackagePinLimit()
	base, err := ev.Run(RunSpec{Combo: combo, Scheme: hc, Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := ev.Run(RunSpec{Combo: combo, Scheme: hc, Limit: limit, Policy: "progress-balancer"})
	if err != nil {
		t.Fatal(err)
	}
	if base.Spec.key() == pol.Spec.key() {
		t.Fatal("policy missing from cache key")
	}
	if pol.Violated {
		t.Fatal("software policy broke the power limit")
	}
}

func TestRunCentralized(t *testing.T) {
	ev := shortEvaluator()
	combo := mustCombo2(t, "Mid-Mid")
	limit := config.PackagePinLimit()
	r, err := ev.RunCentralized(combo, limit, CentralizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgPower <= 0 {
		t.Fatal("no power recorded")
	}
	for _, c := range []string{"cpu", "gpu", "sha"} {
		if _, ok := r.Completion[c]; !ok {
			t.Errorf("completion missing for %s", c)
		}
	}
}

func TestExtensionCentralizedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite extension in -short mode")
	}
	ev := shortEvaluator()
	m, err := ev.ExtensionCentralized(config.PackagePinLimit())
	if err != nil {
		t.Fatal(err)
	}
	// The §2 claim quantified: the centralized allocator cannot protect
	// the 20 µs window the way HCAPP can.
	h := m.RowMax("HCAPP")
	c := m.RowMax("Centralized")
	if h > 1.0 {
		t.Errorf("HCAPP violated: %g", h)
	}
	if c <= h {
		t.Errorf("centralized max %g not above HCAPP %g", c, h)
	}
}

func TestExtensionSoftwarePoliciesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite extension in -short mode")
	}
	ev := shortEvaluator()
	m, err := ev.ExtensionSoftwarePolicies()
	if err != nil {
		t.Fatal(err)
	}
	// The balancing policies must shorten the package makespan on the
	// imbalanced scenario (they shift power to the straggler during the
	// joint phase instead of waiting for the tail).
	if got := m.RowAvg("progress-balancer"); got <= 1.0 {
		t.Errorf("progress balancer makespan speedup = %g", got)
	}
	if got := m.RowAvg("critical-path"); got <= 1.0 {
		t.Errorf("critical path makespan speedup = %g", got)
	}
}
