package experiment

import (
	"math"
	"strings"
	"testing"
)

func TestFaultInjection(t *testing.T) {
	ev := shortEvaluator()
	combo := mustCombo2(t, "Mid-Mid")
	results, err := ev.RunFaultInjection(combo)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FaultResult{}
	for _, r := range results {
		byName[r.Scenario.Name] = r
	}
	healthy, ok := byName["healthy"]
	if !ok {
		t.Fatal("healthy scenario missing")
	}
	if healthy.Violated {
		t.Fatalf("healthy sensor violated: %.3f", healthy.MaxOverLimit)
	}
	// An optimistic sensor makes the controller over-drive: true power
	// rises above the healthy case. This is the documented failure mode.
	if opt := byName["optimistic -25%"]; opt.MaxOverLimit <= healthy.MaxOverLimit {
		t.Errorf("optimistic sensor did not raise true power: %.3f vs %.3f",
			opt.MaxOverLimit, healthy.MaxOverLimit)
	}
	// A pessimistic sensor is safe but wasteful: no violation, lower PPE.
	if pes := byName["pessimistic +10%"]; pes.Violated {
		t.Errorf("pessimistic sensor violated: %.3f", pes.MaxOverLimit)
	} else if pes.PPE >= healthy.PPE {
		t.Errorf("pessimistic sensor did not cost PPE: %.3f vs %.3f", pes.PPE, healthy.PPE)
	}
	out := RenderFaultInjection(combo, results)
	if !strings.Contains(out, "stuck at target") {
		t.Errorf("render missing scenario:\n%s", out)
	}
}

func TestAblationVREfficiency(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite ablation in -short mode")
	}
	ev := shortEvaluator()
	m, err := ev.AblationVREfficiency()
	if err != nil {
		t.Fatal(err)
	}
	lossless := m.RowMax("lossless (paper)")
	lossy := m.RowMax("90% efficient")
	// Conversion losses eat guardband: the worst-case ratio must rise.
	if lossy <= lossless {
		t.Errorf("VR losses did not raise max/limit: %.3f vs %.3f", lossy, lossless)
	}
}

func TestRunRetarget(t *testing.T) {
	ev := shortEvaluator()
	combo := mustCombo2(t, "Mid-Mid")
	r, err := ev.RunRetarget(combo)
	if err != nil {
		t.Fatal(err)
	}
	// Each half must track its own target with the same PID constants —
	// the §5.2 "no costly PID analysis" claim.
	if math.Abs(r.FirstAvg-r.FirstTarget) > 0.12*r.FirstTarget {
		t.Errorf("first half avg %.1f far from target %.1f", r.FirstAvg, r.FirstTarget)
	}
	if math.Abs(r.SecondAvg-r.SecondTarget) > 0.12*r.SecondTarget {
		t.Errorf("second half avg %.1f far from target %.1f", r.SecondAvg, r.SecondTarget)
	}
	// And the second half must actually sit above the first (higher
	// target → more power).
	if r.SecondAvg <= r.FirstAvg {
		t.Errorf("retarget had no effect: %.1f -> %.1f", r.FirstAvg, r.SecondAvg)
	}
	if !strings.Contains(r.Render(), "Dynamic retarget") {
		t.Error("render broken")
	}
}
