package experiment

import (
	"hcapp/internal/psn"
)

// table1Render returns the rendered Table 1 budget.
func table1Render() string {
	return psn.Table1().Render()
}

// Table1Feasible reports whether the configured round-trip delay budget
// fits inside the HCAPP control period — the paper's justification for
// choosing 1 µs.
func Table1Feasible() bool {
	return psn.Table1().Feasible()
}
