package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"hcapp/internal/config"
	"hcapp/internal/energy"
	"hcapp/internal/sched"
	"hcapp/internal/sim"
	"hcapp/internal/stats"
	"hcapp/internal/trace"
)

// Components whose completion time defines per-component speedup (Eq. 3).
var speedupComponents = []string{"cpu", "gpu", "sha"}

// RunSpec identifies one simulation run.
type RunSpec struct {
	Combo  Combo
	Scheme config.Scheme
	Limit  config.PowerLimit
	// Priorities for the §5.3 software-interface runs (domain → value).
	Priorities map[string]float64
	// AdversarialAccel enables the §3.3.3 ablation.
	AdversarialAccel bool
	// Policy names a software policy supervising the run ("static-cpu",
	// "progress-balancer", "critical-path"); empty means none.
	Policy string
}

// key identifies the spec itself. It deliberately excludes evaluator
// state (seed, horizon, fixed voltage) — the evaluator folds those in
// via runKey, so reconfiguring an evaluator mid-sequence can never serve
// a result computed under the old parameters.
func (s RunSpec) key() string {
	k := fmt.Sprintf("%s|%s|%s", s.Combo.Name, s.Scheme.Kind, s.Limit.Name)
	if s.Scheme.Kind == config.FixedVoltage {
		k = fmt.Sprintf("%s|%s|%s|fixed=%g", s.Combo.Name, s.Scheme.Kind, s.Limit.Name, s.Scheme.FixedV)
	}
	if len(s.Priorities) > 0 {
		names := make([]string, 0, len(s.Priorities))
		for n := range s.Priorities {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			k += fmt.Sprintf("|%s=%.3f", n, s.Priorities[n])
		}
	}
	if s.AdversarialAccel {
		k += "|adversarial"
	}
	if s.Policy != "" {
		k += "|policy=" + s.Policy
	}
	return k
}

// RunResult is the outcome of one simulation run.
type RunResult struct {
	Spec RunSpec
	// MaxWindowPower is the maximum power averaged over the limit's
	// window anywhere in the run (the Fig. 4 / Fig. 7 quantity).
	MaxWindowPower float64
	// MaxOverLimit is MaxWindowPower / limit — above 1.0 is a power
	// failure.
	MaxOverLimit float64
	// Violated reports MaxOverLimit > 1.
	Violated bool
	// AvgPower is the run's mean package power.
	AvgPower float64
	// PPE is Eq. 4: AvgPower / provisioned (limit) power.
	PPE float64
	// Completion maps component name → completion time. Components that
	// did not finish within the deadline are recorded at the deadline.
	Completion map[string]sim.Time
	// Finished maps component name → whether it genuinely completed its
	// work (false means its Completion entry is the deadline clip, not a
	// finish time). A nil map — hand-built results — means every recorded
	// completion is genuine.
	Finished map[string]bool
	// Completed reports whether every component finished.
	Completed bool
	// Duration is the simulated run length.
	Duration sim.Time
	// ControlCycles counts global control actions.
	ControlCycles int64
	// Energy is the run's attribution ledger summary; non-nil only when
	// the evaluator ran with TrackEnergy (or a remote worker did).
	Energy *energy.Summary
}

// finished reports whether the named component genuinely completed.
func (r RunResult) finished(name string) bool {
	if r.Finished == nil {
		return true
	}
	return r.Finished[name]
}

// newRunResult assembles the run metrics every driver shares: window and
// average power against the limit, PPE, and per-component completion
// with deadline-clip tracking.
func newRunResult(spec RunSpec, rec *trace.Recorder, res sched.Result) RunResult {
	out := RunResult{
		Spec:           spec,
		MaxWindowPower: rec.MaxWindowAvg(spec.Limit.Window),
		AvgPower:       rec.AvgPower(),
		Completed:      res.Completed,
		Duration:       res.Duration,
		ControlCycles:  res.ControlCycles,
		Completion:     make(map[string]sim.Time, len(speedupComponents)),
		Finished:       make(map[string]bool, len(speedupComponents)),
	}
	out.MaxOverLimit = out.MaxWindowPower / spec.Limit.Watts
	out.Violated = out.MaxOverLimit > 1
	out.PPE = rec.PPE(spec.Limit.Watts)
	for _, name := range speedupComponents {
		if t, ok := res.Completion[name]; ok {
			out.Completion[name] = t
			out.Finished[name] = true
		} else {
			out.Completion[name] = res.Duration
			out.Finished[name] = false
		}
	}
	return out
}

// SpeedupOver returns per-component speedups of this run relative to a
// baseline run of the same combo, plus the Eq. 3 geometric-mean total:
// STotal = (S_CPU · S_GPU · S_Accel)^(1/3). A component that is missing
// or was clipped at the deadline in either run has no defined speedup:
// its entry and the total are NaN, matching stats.Geomean's
// poison-loudly contract — averaging only the survivors would inflate
// the total exactly when a scheme fails to complete.
func (r RunResult) SpeedupOver(base RunResult) (perComp map[string]float64, total float64) {
	perComp = make(map[string]float64, len(speedupComponents))
	vals := make([]float64, 0, len(speedupComponents))
	for _, name := range speedupComponents {
		b, okB := base.Completion[name]
		s, okS := r.Completion[name]
		if !okB || !okS || s <= 0 || !base.finished(name) || !r.finished(name) {
			perComp[name] = math.NaN()
			vals = append(vals, math.NaN())
			continue
		}
		sp := float64(b) / float64(s)
		perComp[name] = sp
		vals = append(vals, sp)
	}
	return perComp, stats.Geomean(vals...)
}

// Evaluator defaults shared by every construction site (NewEvaluator,
// the job server's cluster delegation, remote fleet workers): runs are
// bounded at DefaultMaxDurFactor × TargetDur, and the fixed-voltage
// baseline rail sits at DefaultFixedV.
const (
	DefaultMaxDurFactor = 3.0
	DefaultFixedV       = 0.95
)

// RemoteRunner executes one uncached spec somewhere else — a
// coordinator/worker fleet — under the evaluator parameters that would
// otherwise drive the local simulation. Implementations must be
// deterministic: the same (seed, targetDur, maxDurFactor, fixedV, spec)
// returns the same RunResult a local simulation would.
type RemoteRunner interface {
	RunRemote(ctx context.Context, seed int64, targetDur sim.Time, maxDurFactor, fixedV float64, spec RunSpec) (RunResult, error)
}

// Evaluator runs and caches simulations for one system configuration.
// It is safe for concurrent use: the result and sizing caches are
// single-flight, so overlapping requests for the same key simulate once
// and share the result.
type Evaluator struct {
	Cfg config.SystemConfig
	// TargetDur sizes the work pools (fixed-voltage run length).
	TargetDur sim.Time
	// MaxDurFactor bounds runs at MaxDurFactor × TargetDur.
	MaxDurFactor float64
	// FixedV is the fixed-voltage baseline's global voltage.
	FixedV float64
	// Observer, when non-nil, receives per-step telemetry from every
	// uncached Run (hcapp-serve live metrics and trace streaming).
	// Cached results replay no steps, so a caller that needs the full
	// stream should use a fresh evaluator per run, as the job server
	// does.
	Observer sched.StepObserver
	// Remote, when non-nil, executes uncached runs on a remote fleet
	// instead of simulating locally. The local result cache and
	// single-flight still apply, so a suite driver deduplicates before
	// anything crosses the network.
	Remote RemoteRunner
	// TrackEnergy attaches an energy ledger to every uncached local run
	// and copies its summary into RunResult.Energy. Folded into the
	// cache key, so toggling it never serves a result missing (or
	// needlessly carrying) energy accounting. Fleet workers always track
	// energy — the ledger is passive, so the simulated metrics are
	// identical either way.
	TrackEnergy bool
	// Adaptive enables the engine's steady-state striding on every
	// uncached local run. Results are bitwise identical to fixed-step
	// execution (the CI determinism diffs enforce it), so this is
	// deliberately NOT in the cache key: adaptive and fixed-step
	// evaluators, local or fleet, share results freely.
	Adaptive bool

	// runner, when non-nil, fans RunSpecs batches across a worker pool.
	runner *Runner

	mu           sync.Mutex
	cache        map[string]RunResult
	sizing       map[string]Sizing
	runInflight  map[string]*runFlight
	sizeInflight map[string]*sizingFlight

	// runProbe, when non-nil, is called with the cache key once per
	// actual (uncached, non-deduplicated) simulation — the test hook the
	// single-flight contract is asserted through.
	runProbe func(key string)
}

// runFlight is one in-progress uncached run; waiters block on done.
type runFlight struct {
	done chan struct{}
	res  RunResult
	err  error
}

// sizingFlight is one in-progress work-pool sizing.
type sizingFlight struct {
	done chan struct{}
	s    Sizing
	err  error
}

// NewEvaluator returns an evaluator over the default target system.
func NewEvaluator() *Evaluator {
	return &Evaluator{
		Cfg:          config.Default(),
		TargetDur:    DefaultTargetDuration,
		MaxDurFactor: DefaultMaxDurFactor,
		FixedV:       DefaultFixedV,
		cache:        make(map[string]RunResult),
		sizing:       make(map[string]Sizing),
		runInflight:  make(map[string]*runFlight),
		sizeInflight: make(map[string]*sizingFlight),
	}
}

// WithTargetDur shrinks or grows all runs (tests use short runs). The
// horizon is part of every cache key, so reconfiguring mid-sequence
// never serves results sized for the old horizon.
func (ev *Evaluator) WithTargetDur(d sim.Time) *Evaluator {
	ev.TargetDur = d
	return ev
}

// WithRunner attaches a worker pool that RunSpecs (and the suite
// drivers built on it) fan batches across. A nil runner means
// sequential execution.
func (ev *Evaluator) WithRunner(r *Runner) *Evaluator {
	ev.runner = r
	return ev
}

// ensureMapsLocked lazily initializes the cache maps for evaluators
// built as zero values. Callers hold ev.mu.
func (ev *Evaluator) ensureMapsLocked() {
	if ev.cache == nil {
		ev.cache = make(map[string]RunResult)
	}
	if ev.sizing == nil {
		ev.sizing = make(map[string]Sizing)
	}
	if ev.runInflight == nil {
		ev.runInflight = make(map[string]*runFlight)
	}
	if ev.sizeInflight == nil {
		ev.sizeInflight = make(map[string]*sizingFlight)
	}
}

// runKey is the full result-cache key: the spec plus every evaluator
// parameter that changes what a run computes. Folding seed, horizon and
// the baseline voltage in (rather than invalidating on mutation) makes
// With*-style reconfiguration and concurrent sharing safe by
// construction.
func (ev *Evaluator) runKey(spec RunSpec) string {
	key := fmt.Sprintf("seed=%d|dur=%d|maxf=%g|fv=%g|%s",
		ev.Cfg.Seed, ev.TargetDur, ev.MaxDurFactor, ev.FixedV, spec.key())
	if ev.TrackEnergy {
		key += "|energy=1"
	}
	return key
}

// CacheKey exposes the result-cache key for spec under the evaluator's
// current parameters. The cluster coordinator content-addresses its
// fleet-wide cache with this exact key, so a spec simulated by any
// worker is recognized again no matter which node — or which local
// evaluator — asks next.
func (ev *Evaluator) CacheKey(spec RunSpec) string { return ev.runKey(spec) }

// sizingKey keys the work-pool cache by combo plus the parameters
// SizeWork reads.
func (ev *Evaluator) sizingKey(combo Combo) string {
	return fmt.Sprintf("seed=%d|dur=%d|fv=%g|%s", ev.Cfg.Seed, ev.TargetDur, ev.FixedV, combo.Name)
}

// sizingFor computes (and caches, single-flight) the work pools for a
// combo.
func (ev *Evaluator) sizingFor(combo Combo) (Sizing, error) {
	key := ev.sizingKey(combo)
	ev.mu.Lock()
	ev.ensureMapsLocked()
	if s, ok := ev.sizing[key]; ok {
		ev.mu.Unlock()
		return s, nil
	}
	if f, ok := ev.sizeInflight[key]; ok {
		ev.mu.Unlock()
		<-f.done
		return f.s, f.err
	}
	f := &sizingFlight{done: make(chan struct{})}
	ev.sizeInflight[key] = f
	ev.mu.Unlock()

	s, err := SizeWork(ev.Cfg, combo, ev.FixedV, ev.TargetDur)
	f.s, f.err = s, err
	ev.mu.Lock()
	if err == nil {
		ev.sizing[key] = s
	}
	delete(ev.sizeInflight, key)
	ev.mu.Unlock()
	close(f.done)
	return s, err
}

// Run executes (or returns the cached result of) one spec.
func (ev *Evaluator) Run(spec RunSpec) (RunResult, error) {
	return ev.RunContext(context.Background(), spec)
}

// RunContext is Run under a context: a cancelled or expired context
// stops the simulation cooperatively (within a few thousand engine
// steps) and returns ctx.Err(). Cancelled runs are never cached.
//
// Concurrent callers requesting the same key are single-flighted: one
// leader simulates, the rest wait and share the result. A waiter whose
// leader was cancelled retries (its own context may still be live);
// deterministic errors — a bad spec or config — are shared.
func (ev *Evaluator) RunContext(ctx context.Context, spec RunSpec) (RunResult, error) {
	key := ev.runKey(spec)
	for {
		ev.mu.Lock()
		ev.ensureMapsLocked()
		if r, ok := ev.cache[key]; ok {
			ev.mu.Unlock()
			return r, nil
		}
		if f, ok := ev.runInflight[key]; ok {
			ev.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return RunResult{}, ctx.Err()
			}
			if f.err == nil {
				return f.res, nil
			}
			if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
				// The leader's batch was cancelled, not ours: retry
				// (and become the leader) unless our context is also
				// dead.
				if err := ctx.Err(); err != nil {
					return RunResult{}, err
				}
				continue
			}
			return RunResult{}, f.err
		}
		if err := ctx.Err(); err != nil {
			ev.mu.Unlock()
			return RunResult{}, err
		}
		f := &runFlight{done: make(chan struct{})}
		ev.runInflight[key] = f
		ev.mu.Unlock()

		res, err := ev.runUncached(ctx, spec, key)
		f.res, f.err = res, err
		ev.mu.Lock()
		if err == nil {
			ev.cache[key] = res
		}
		delete(ev.runInflight, key)
		ev.mu.Unlock()
		close(f.done)
		return res, err
	}
}

// runUncached builds and simulates one spec with no cache involvement.
func (ev *Evaluator) runUncached(ctx context.Context, spec RunSpec, key string) (RunResult, error) {
	if ev.Remote != nil {
		res, err := ev.Remote.RunRemote(ctx, ev.Cfg.Seed, ev.TargetDur, ev.MaxDurFactor, ev.FixedV, spec)
		if err != nil {
			return RunResult{}, err
		}
		// The wire result carries metrics only; reattach the spec the
		// caller asked for so renderers see a local-shaped RunResult.
		res.Spec = spec
		return res, nil
	}
	sizing, err := ev.sizingFor(spec.Combo)
	if err != nil {
		return RunResult{}, err
	}
	sup, err := buildSupervisor(spec.Policy)
	if err != nil {
		return RunResult{}, err
	}
	opts := BuildOptions{
		Scheme:           spec.Scheme,
		Priorities:       spec.Priorities,
		CPUWork:          sizing.CPUWork,
		GPUWork:          sizing.GPUWork,
		AccelWorkGB:      sizing.AccelGB,
		AdversarialAccel: spec.AdversarialAccel,
		Supervisor:       sup,
		Observer:         ev.Observer,
		TrackEnergy:      ev.TrackEnergy,
		Adaptive:         ev.Adaptive,
	}
	if spec.Scheme.Kind != config.FixedVoltage {
		opts.TargetPower = TargetPowerFor(spec.Limit)
	}
	sys, err := Build(ev.Cfg, spec.Combo, opts)
	if err != nil {
		return RunResult{}, err
	}

	maxDur := sim.Time(float64(ev.TargetDur) * ev.MaxDurFactor)
	var cancelled func() bool
	if ctx.Done() != nil {
		cancelled = func() bool { return ctx.Err() != nil }
	}
	if ev.runProbe != nil {
		ev.runProbe(key)
	}
	res := sys.Engine.RunWithCancel(maxDur, cancelled)
	if err := ctx.Err(); err != nil {
		return RunResult{}, err
	}
	out := newRunResult(spec, sys.Engine.Recorder(), res)
	if sys.Energy != nil {
		out.Energy = sys.Energy.Summary()
	}
	return out, nil
}

// RunSpecs executes a batch of specs — across the evaluator's runner
// when one is attached, sequentially otherwise — and returns results in
// spec order. One failing run cancels the rest of the batch.
func (ev *Evaluator) RunSpecs(ctx context.Context, specs []RunSpec) ([]RunResult, error) {
	return ev.runner.RunSpecs(ctx, ev, specs)
}

// RunSuite runs every Table 3 combo under one scheme and limit.
func (ev *Evaluator) RunSuite(scheme config.Scheme, limit config.PowerLimit) (map[string]RunResult, error) {
	suite := Suite()
	specs := make([]RunSpec, len(suite))
	for i, combo := range suite {
		specs[i] = RunSpec{Combo: combo, Scheme: scheme, Limit: limit}
	}
	results, err := ev.RunSpecs(context.Background(), specs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]RunResult, len(suite))
	for i, combo := range suite {
		out[combo.Name] = results[i]
	}
	return out, nil
}

// FixedScheme returns the fixed-voltage baseline scheme at the
// evaluator's voltage.
func (ev *Evaluator) FixedScheme() config.Scheme {
	return config.Scheme{Kind: config.FixedVoltage, FixedV: ev.FixedV}
}
