package experiment

import (
	"context"
	"fmt"
	"sort"

	"hcapp/internal/config"
	"hcapp/internal/sched"
	"hcapp/internal/sim"
	"hcapp/internal/stats"
)

// Components whose completion time defines per-component speedup (Eq. 3).
var speedupComponents = []string{"cpu", "gpu", "sha"}

// RunSpec identifies one simulation run.
type RunSpec struct {
	Combo  Combo
	Scheme config.Scheme
	Limit  config.PowerLimit
	// Priorities for the §5.3 software-interface runs (domain → value).
	Priorities map[string]float64
	// AdversarialAccel enables the §3.3.3 ablation.
	AdversarialAccel bool
	// Policy names a software policy supervising the run ("static-cpu",
	// "progress-balancer", "critical-path"); empty means none.
	Policy string
}

// key builds a cache key for the spec.
func (s RunSpec) key() string {
	k := fmt.Sprintf("%s|%s|%s", s.Combo.Name, s.Scheme.Kind, s.Limit.Name)
	if s.Scheme.Kind == config.FixedVoltage {
		k = fmt.Sprintf("%s|%s|%s|fixed=%g", s.Combo.Name, s.Scheme.Kind, s.Limit.Name, s.Scheme.FixedV)
	}
	if len(s.Priorities) > 0 {
		names := make([]string, 0, len(s.Priorities))
		for n := range s.Priorities {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			k += fmt.Sprintf("|%s=%.3f", n, s.Priorities[n])
		}
	}
	if s.AdversarialAccel {
		k += "|adversarial"
	}
	if s.Policy != "" {
		k += "|policy=" + s.Policy
	}
	return k
}

// RunResult is the outcome of one simulation run.
type RunResult struct {
	Spec RunSpec
	// MaxWindowPower is the maximum power averaged over the limit's
	// window anywhere in the run (the Fig. 4 / Fig. 7 quantity).
	MaxWindowPower float64
	// MaxOverLimit is MaxWindowPower / limit — above 1.0 is a power
	// failure.
	MaxOverLimit float64
	// Violated reports MaxOverLimit > 1.
	Violated bool
	// AvgPower is the run's mean package power.
	AvgPower float64
	// PPE is Eq. 4: AvgPower / provisioned (limit) power.
	PPE float64
	// Completion maps component name → completion time. Components that
	// did not finish within the deadline are recorded at the deadline.
	Completion map[string]sim.Time
	// Completed reports whether every component finished.
	Completed bool
	// Duration is the simulated run length.
	Duration sim.Time
	// ControlCycles counts global control actions.
	ControlCycles int64
}

// SpeedupOver returns per-component speedups of this run relative to a
// baseline run of the same combo, plus the Eq. 3 geometric-mean total:
// STotal = (S_CPU · S_GPU · S_Accel)^(1/3).
func (r RunResult) SpeedupOver(base RunResult) (perComp map[string]float64, total float64) {
	perComp = make(map[string]float64, len(speedupComponents))
	vals := make([]float64, 0, len(speedupComponents))
	for _, name := range speedupComponents {
		b, okB := base.Completion[name]
		s, okS := r.Completion[name]
		if !okB || !okS || s <= 0 {
			perComp[name] = 0
			continue
		}
		sp := float64(b) / float64(s)
		perComp[name] = sp
		vals = append(vals, sp)
	}
	return perComp, stats.Geomean(vals...)
}

// Evaluator runs and caches simulations for one system configuration.
type Evaluator struct {
	Cfg config.SystemConfig
	// TargetDur sizes the work pools (fixed-voltage run length).
	TargetDur sim.Time
	// MaxDurFactor bounds runs at MaxDurFactor × TargetDur.
	MaxDurFactor float64
	// FixedV is the fixed-voltage baseline's global voltage.
	FixedV float64
	// Observer, when non-nil, receives per-step telemetry from every
	// uncached Run (hcapp-serve live metrics and trace streaming).
	// Cached results replay no steps, so a caller that needs the full
	// stream should use a fresh evaluator per run, as the job server
	// does.
	Observer sched.StepObserver

	cache  map[string]RunResult
	sizing map[string]Sizing
}

// NewEvaluator returns an evaluator over the default target system.
func NewEvaluator() *Evaluator {
	return &Evaluator{
		Cfg:          config.Default(),
		TargetDur:    DefaultTargetDuration,
		MaxDurFactor: 3,
		FixedV:       0.95,
		cache:        make(map[string]RunResult),
		sizing:       make(map[string]Sizing),
	}
}

// WithTargetDur shrinks or grows all runs (tests use short runs).
func (ev *Evaluator) WithTargetDur(d sim.Time) *Evaluator {
	ev.TargetDur = d
	return ev
}

// sizingFor computes (and caches) the work pools for a combo.
func (ev *Evaluator) sizingFor(combo Combo) (Sizing, error) {
	if s, ok := ev.sizing[combo.Name]; ok {
		return s, nil
	}
	s, err := SizeWork(ev.Cfg, combo, ev.FixedV, ev.TargetDur)
	if err != nil {
		return Sizing{}, err
	}
	ev.sizing[combo.Name] = s
	return s, nil
}

// Run executes (or returns the cached result of) one spec.
func (ev *Evaluator) Run(spec RunSpec) (RunResult, error) {
	return ev.RunContext(context.Background(), spec)
}

// RunContext is Run under a context: a cancelled or expired context
// stops the simulation cooperatively (within a few thousand engine
// steps) and returns ctx.Err(). Cancelled runs are never cached.
func (ev *Evaluator) RunContext(ctx context.Context, spec RunSpec) (RunResult, error) {
	if ev.cache == nil {
		ev.cache = make(map[string]RunResult)
	}
	if ev.sizing == nil {
		ev.sizing = make(map[string]Sizing)
	}
	if r, ok := ev.cache[spec.key()]; ok {
		return r, nil
	}
	if err := ctx.Err(); err != nil {
		return RunResult{}, err
	}

	sizing, err := ev.sizingFor(spec.Combo)
	if err != nil {
		return RunResult{}, err
	}
	sup, err := buildSupervisor(spec.Policy)
	if err != nil {
		return RunResult{}, err
	}
	opts := BuildOptions{
		Scheme:           spec.Scheme,
		Priorities:       spec.Priorities,
		CPUWork:          sizing.CPUWork,
		GPUWork:          sizing.GPUWork,
		AccelWorkGB:      sizing.AccelGB,
		AdversarialAccel: spec.AdversarialAccel,
		Supervisor:       sup,
		Observer:         ev.Observer,
	}
	if spec.Scheme.Kind != config.FixedVoltage {
		opts.TargetPower = TargetPowerFor(spec.Limit)
	}
	sys, err := Build(ev.Cfg, spec.Combo, opts)
	if err != nil {
		return RunResult{}, err
	}

	maxDur := sim.Time(float64(ev.TargetDur) * ev.MaxDurFactor)
	var cancelled func() bool
	if ctx.Done() != nil {
		cancelled = func() bool { return ctx.Err() != nil }
	}
	res := sys.Engine.RunWithCancel(maxDur, cancelled)
	if err := ctx.Err(); err != nil {
		return RunResult{}, err
	}
	rec := sys.Engine.Recorder()

	out := RunResult{
		Spec:           spec,
		MaxWindowPower: rec.MaxWindowAvg(spec.Limit.Window),
		AvgPower:       rec.AvgPower(),
		Completed:      res.Completed,
		Duration:       res.Duration,
		ControlCycles:  res.ControlCycles,
		Completion:     make(map[string]sim.Time, len(speedupComponents)),
	}
	out.MaxOverLimit = out.MaxWindowPower / spec.Limit.Watts
	out.Violated = out.MaxOverLimit > 1
	out.PPE = rec.PPE(spec.Limit.Watts)
	for _, name := range speedupComponents {
		if t, ok := res.Completion[name]; ok {
			out.Completion[name] = t
		} else {
			out.Completion[name] = res.Duration
		}
	}
	ev.cache[spec.key()] = out
	return out, nil
}

// RunSuite runs every Table 3 combo under one scheme and limit.
func (ev *Evaluator) RunSuite(scheme config.Scheme, limit config.PowerLimit) (map[string]RunResult, error) {
	out := make(map[string]RunResult, len(Suite()))
	for _, combo := range Suite() {
		r, err := ev.Run(RunSpec{Combo: combo, Scheme: scheme, Limit: limit})
		if err != nil {
			return nil, err
		}
		out[combo.Name] = r
	}
	return out, nil
}

// FixedScheme returns the fixed-voltage baseline scheme at the
// evaluator's voltage.
func (ev *Evaluator) FixedScheme() config.Scheme {
	return config.Scheme{Kind: config.FixedVoltage, FixedV: ev.FixedV}
}
