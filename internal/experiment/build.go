package experiment

import (
	"fmt"

	"hcapp/internal/accelsim"
	"hcapp/internal/chiplet"
	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/cpusim"
	"hcapp/internal/energy"
	"hcapp/internal/fault"
	"hcapp/internal/gpusim"
	"hcapp/internal/pid"
	"hcapp/internal/psn"
	"hcapp/internal/sched"
	"hcapp/internal/sim"
	"hcapp/internal/thermal"
	"hcapp/internal/trace"
	"hcapp/internal/vr"
)

// DefaultTargetDuration is the nominal run length the work pools are
// sized for at the fixed-voltage operating point.
const DefaultTargetDuration = 16 * sim.Millisecond

// TargetPowerFor returns PSPEC — the global controller's power target —
// for a given limit. The target carries the guardband: a 20 µs window
// forces a larger margin below the 100 W limit than a 1 ms window
// because less overshoot can average away inside the window ("the power
// target is not the power limit because HCAPP will have maximum values
// above the power target and those cannot exceed the power limit",
// §5.1). Values come from the calibration sweep in calibrate.go
// (cmd/hcapp-tune regenerates them).
func TargetPowerFor(limit config.PowerLimit) float64 {
	if limit.Window <= 100*sim.Microsecond {
		return limit.Watts * 0.86
	}
	return limit.Watts * 0.99
}

// DefaultPID returns the Eq. 2 gains tuned for HCAPP's 1 µs control
// period per the §3.1 procedure (raise KP to the edge of instability,
// then raise KI until steady state is reached; KD unneeded → PI). The
// same continuous-time constants are reused unchanged at the RAPL-like
// and SW-like periods and across both power limits, as in the paper.
func DefaultPID(vrCfg vr.RegulatorConfig) pid.Config {
	return pid.Config{
		KP:          0.006,
		KI:          2500,
		KD:          0,
		FeedForward: 0.95, // ≈ average expected voltage (§3.1)
		OutMin:      vrCfg.VMin,
		OutMax:      vrCfg.VMax,
		// Throttle-fast/recover-slow asymmetry: over-limit excursions
		// are a hardware failure, undershoot only costs performance.
		OverGain: 12,
	}
}

// DefaultPIDFor returns the gains for one control variant. Each variant
// is the same Eq. 2 law discretized and stabilized for its own control
// period, the way the firmware (RAPL-like) or OS (SW-like) implementation
// of the same controller would be tuned: slower loops take larger
// per-update integral steps, so their continuous-time gains must shrink
// to stay stable, which is precisely why they "cannot react quickly
// enough to take advantage of the changes in power" (§5.2).
func DefaultPIDFor(scheme config.Scheme, vrCfg vr.RegulatorConfig) pid.Config {
	base := DefaultPID(vrCfg)
	switch scheme.Kind {
	case config.RAPLLike:
		base.KP, base.KI, base.OverGain = 0.003, 25, 3
	case config.SWLike:
		base.KP, base.KI, base.OverGain = 0.002, 3, 1
	}
	return base
}

// BuildOptions parameterizes system assembly.
type BuildOptions struct {
	Scheme config.Scheme
	// TargetPower is PSPEC for dynamic schemes; ignored for fixed.
	TargetPower float64
	// PID overrides DefaultPID when non-nil.
	PID *pid.Config
	// Priorities maps domain name ("cpu", "gpu", "sha") to a software
	// priority value; unlisted domains stay at 1.0 (§5.3).
	Priorities map[string]float64
	// Work pools. Zero values mean "run forever" — use SizeWork to fill
	// them against the fixed-voltage baseline.
	CPUWork, GPUWork, AccelWorkGB float64
	// TrackComponents enables per-component trace recording.
	TrackComponents bool
	// AdversarialAccel swaps the accelerator's pass-through local
	// controller for the §3.3.3 adversarial one.
	AdversarialAccel bool
	// Supervisor attaches a software-timescale controller (priority
	// register writer): a swctl policy or the centralized allocator.
	Supervisor sched.Supervisor
	// Observer receives live per-step telemetry from the engine (the
	// hcapp-serve metrics/trace hook); nil costs nothing.
	Observer sched.StepObserver
	// TrackEnergy attaches an energy ledger (internal/energy) fed from
	// the step-observer hook: share-based attributed plus ground-truth
	// per-unit energy accounting, exposed as System.Energy. Enables the
	// chiplets' per-unit meters — a few stores per unit per step, <5%
	// bench-guarded, and passive with respect to simulation state, so
	// results stay bit-identical with it on or off.
	TrackEnergy bool
	// ForceLocalControl enables level-3 controllers even under a
	// fixed-voltage rail (used by the centralized-allocator comparison,
	// which pins the rail but keeps per-unit control).
	ForceLocalControl bool
	// DisableLocalControl removes level-3 controllers from a dynamic
	// scheme — the "CAPP design lacking a local controller" ablation.
	DisableLocalControl bool
	// GPUController selects the GPU local controller design
	// ("dynamic-ipc" default, "dynamic-occupancy" for the GPU-CAPP
	// dynamic-warp alternative).
	GPUController string
	// EnableThermal attaches default thermal nodes to the CPU and GPU
	// chiplets (§3.3 protection; inert at evaluation power levels).
	EnableThermal bool
	// VoltageMargin selects guardbanded clocking instead of adaptive
	// clocking on the CPU and GPU chiplets (§3.5).
	VoltageMargin float64
	// Injector attaches a deterministic fault injector to the engine
	// step loop (internal/fault); nil costs one pointer compare per step.
	Injector *fault.Injector
	// Clamp, when non-nil, arms the package-level safety clamp with this
	// configuration (a zero CapW is filled from the power target's limit
	// by the caller — Build does not guess).
	Clamp *core.ClampConfig
	// Watchdog, when Timeout > 0, arms every scalable domain's watchdog.
	Watchdog core.WatchdogConfig
	// Holdover, when MaxAge > 0, arms the global controller's
	// stale-sample holdover (dynamic schemes only).
	Holdover core.HoldoverConfig
	// Adaptive enables the engine's steady-state striding
	// (sched.Config.Adaptive): bitwise-identical results, less wall
	// clock. Deliberately NOT part of any result cache key — it must
	// not change a single output byte.
	Adaptive bool
}

// System bundles an assembled engine with handles the experiments need.
type System struct {
	Engine *sched.Engine
	CPU    *chiplet.Chiplet
	GPU    *chiplet.Chiplet
	Accel  *accelsim.Accel
	// Energy is the attribution ledger; non-nil iff Opts.TrackEnergy.
	Energy *energy.Ledger
	Cfg    config.SystemConfig
	Opts   BuildOptions
}

// Build assembles the full target system for one combo under one scheme.
func Build(cfg config.SystemConfig, combo Combo, opts BuildOptions) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	dynamic := opts.Scheme.Kind != config.FixedVoltage
	localCtl := (dynamic || opts.ForceLocalControl) && !opts.DisableLocalControl
	var th *thermal.Config
	if opts.EnableThermal {
		t := thermal.DefaultChiplet()
		th = &t
	}
	cpu, err := cpusim.New(cfg.CPU, cfg.LocalCPU, cpusim.Options{
		Benchmark:     combo.CPU,
		Seed:          cfg.Seed,
		LocalControl:  localCtl,
		TotalWork:     opts.CPUWork,
		Thermal:       th,
		VoltageMargin: opts.VoltageMargin,
	})
	if err != nil {
		return nil, err
	}
	gpu, err := gpusim.New(cfg.GPU, cfg.LocalEpoch, gpusim.Options{
		Benchmark:     combo.GPU,
		Seed:          cfg.Seed,
		LocalControl:  localCtl,
		TotalWork:     opts.GPUWork,
		Controller:    opts.GPUController,
		Thermal:       th,
		VoltageMargin: opts.VoltageMargin,
	})
	if err != nil {
		return nil, err
	}
	var accLocal core.Local
	if opts.AdversarialAccel {
		accLocal = core.Adversarial{}
	}
	acc, err := accelsim.New(cfg.Accel, accelsim.Options{
		TotalWorkGB: opts.AccelWorkGB,
		Local:       accLocal,
	})
	if err != nil {
		return nil, err
	}
	mem := chiplet.NewConstant("mem", cfg.Mem.Power)

	// Voltage delivery.
	gvrCfg := cfg.GlobalVR
	if opts.Scheme.Kind == config.FixedVoltage {
		gvrCfg.VInit = opts.Scheme.FixedV
	}
	gvr, err := vr.NewRegulator(gvrCfg)
	if err != nil {
		return nil, err
	}
	sensor, err := vr.NewSensor(cfg.Sensor, cfg.TimeStep)
	if err != nil {
		return nil, err
	}
	line, err := psn.NewDelayLine(cfg.PSNDelay, cfg.TimeStep, gvrCfg.VInit)
	if err != nil {
		return nil, err
	}

	// Level-1 controller.
	var global *core.Global
	if dynamic {
		pcfg := DefaultPIDFor(opts.Scheme, gvrCfg)
		if opts.PID != nil {
			pcfg = *opts.PID
		}
		if opts.TargetPower <= 0 {
			return nil, fmt.Errorf("experiment: dynamic scheme %s needs a power target", opts.Scheme.Kind)
		}
		global, err = core.NewGlobal(core.GlobalConfig{
			Period:      opts.Scheme.ControlPeriod,
			TargetPower: opts.TargetPower,
			PID:         pcfg,
			Holdover:    opts.Holdover,
		})
		if err != nil {
			return nil, err
		}
	}

	// Level-2 controllers.
	mkDomain := func(name string, dc config.DomainConfig) (*core.Domain, error) {
		d, err := core.NewDomain(name, dc)
		if err != nil {
			return nil, err
		}
		if p, ok := opts.Priorities[name]; ok {
			d.SetPriority(p)
		}
		if opts.Watchdog.Timeout > 0 {
			d.EnableWatchdog(opts.Watchdog)
		}
		return d, nil
	}
	cpuDom, err := mkDomain("cpu", cfg.CPUDomain)
	if err != nil {
		return nil, err
	}
	gpuDom, err := mkDomain("gpu", cfg.GPUDomain)
	if err != nil {
		return nil, err
	}
	accDom, err := mkDomain("sha", cfg.AccelDomain)
	if err != nil {
		return nil, err
	}
	memDom, err := mkDomain("mem", cfg.MemDomain)
	if err != nil {
		return nil, err
	}

	rec, err := trace.NewRecorder(cfg.TimeStep, opts.TrackComponents)
	if err != nil {
		return nil, err
	}
	var clamp *core.Clamp
	if opts.Clamp != nil {
		clamp, err = core.NewClamp(*opts.Clamp)
		if err != nil {
			return nil, err
		}
	}
	obs := opts.Observer
	var ledger *energy.Ledger
	if opts.TrackEnergy {
		cpu.EnableUnitMeter()
		gpu.EnableUnitMeter()
		// Slot order here must mirror the sched.Config Slots below —
		// ObserveStep samples are index-aligned. Mem has no meter: its
		// constant draw is attributed to the static "benchmark" exactly.
		ledger = energy.NewLedger([]energy.SlotConfig{
			{Domain: "cpu", Benchmark: combo.CPU.Name, UnitLabel: "core", Meter: cpu},
			{Domain: "gpu", Benchmark: combo.GPU.Name, UnitLabel: "sm", Meter: gpu},
			{Domain: "sha", Benchmark: "sha256", Meter: acc},
			{Domain: "mem", Benchmark: "static"},
		})
		obs = sched.Observers(ledger, opts.Observer)
	}
	eng, err := sched.New(sched.Config{
		DT:       cfg.TimeStep,
		GlobalVR: gvr,
		Sensor:   sensor,
		PSN:      line,
		Droop:    psn.Droop{R: cfg.DroopOhms},
		Global:   global,
		Slots: []sched.Slot{
			{Domain: cpuDom, Comp: cpu},
			{Domain: gpuDom, Comp: gpu},
			{Domain: accDom, Comp: acc},
			{Domain: memDom, Comp: mem},
		},
		Recorder:        rec,
		TrackComponents: opts.TrackComponents,
		Supervisor:      opts.Supervisor,
		Observer:        obs,
		Injector:        opts.Injector,
		Clamp:           clamp,
		Adaptive:        opts.Adaptive,
	})
	if err != nil {
		return nil, err
	}
	return &System{Engine: eng, CPU: cpu, GPU: gpu, Accel: acc, Energy: ledger, Cfg: cfg, Opts: opts}, nil
}

// Sizing holds the work pools that make the fixed-voltage baseline run
// for the target duration — identical across schemes so completion-time
// speedups are comparable.
type Sizing struct {
	CPUWork, GPUWork float64
	AccelGB          float64
}

// SizeWork computes work pools for a combo from the fixed-voltage
// operating point: steady-state instruction/throughput rates at the
// fixed global voltage times the target duration.
func SizeWork(cfg config.SystemConfig, combo Combo, fixedV float64, dur sim.Time) (Sizing, error) {
	probe, err := Build(cfg, combo, BuildOptions{
		Scheme: config.Scheme{Kind: config.FixedVoltage, FixedV: fixedV},
	})
	if err != nil {
		return Sizing{}, err
	}
	sec := sim.Seconds(dur)
	return Sizing{
		CPUWork: probe.CPU.AvgIPSAt(fixedV*cfg.CPUDomain.Scale) * sec,
		GPUWork: probe.GPU.AvgIPSAt(fixedV*cfg.GPUDomain.Scale) * sec,
		AccelGB: probe.Accel.ThroughputAt(fixedV*cfg.AccelDomain.Scale) * sec,
	}, nil
}
