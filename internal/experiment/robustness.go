package experiment

import (
	"context"
	"fmt"
	"strings"

	"hcapp/internal/config"
	"hcapp/internal/sim"
	"hcapp/internal/vr"
)

// Robustness characterization: what happens to a power-capping system
// when its inputs lie. A controller is only as trustworthy as its
// sensor, so a credible release must state the failure modes, not just
// the happy path.

// FaultScenario is one sensor-defect case.
type FaultScenario struct {
	Name  string
	Fault vr.Fault
}

// DefaultFaultScenarios returns the characterized defect set.
func DefaultFaultScenarios() []FaultScenario {
	return []FaultScenario{
		{Name: "healthy", Fault: vr.Fault{}},
		{Name: "optimistic -10%", Fault: vr.Fault{Gain: 0.90}},
		{Name: "optimistic -25%", Fault: vr.Fault{Gain: 0.75}},
		{Name: "pessimistic +10%", Fault: vr.Fault{Gain: 1.10}},
		{Name: "stuck at target", Fault: vr.Fault{StuckAt: 0, StuckEnabled: true}}, // StuckAt set per run
	}
}

// FaultResult is one scenario's outcome.
type FaultResult struct {
	Scenario FaultScenario
	// MaxOverLimit is the true max window power over the limit.
	MaxOverLimit float64
	Violated     bool
	PPE          float64
}

// RunFaultInjection runs one combo under HCAPP at the fast limit with
// each sensor defect and reports the true (fault-free) power metrics.
func (ev *Evaluator) RunFaultInjection(combo Combo) ([]FaultResult, error) {
	limit := config.PackagePinLimit()
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return nil, err
	}
	sizing, err := ev.sizingFor(combo)
	if err != nil {
		return nil, err
	}
	target := TargetPowerFor(limit)

	scenarios := DefaultFaultScenarios()
	out := make([]FaultResult, len(scenarios))
	err = ev.runner.Tasks(context.Background(), len(scenarios), func(ctx context.Context, i int) error {
		sc := scenarios[i]
		fault := sc.Fault
		if fault.StuckEnabled && fault.StuckAt == 0 {
			// "Stuck at target": the worst plausible silent failure —
			// the controller believes it is exactly on target forever.
			fault.StuckAt = target
		}
		sys, err := Build(ev.Cfg, combo, BuildOptions{
			Scheme:      hcapp,
			TargetPower: target,
			CPUWork:     sizing.CPUWork,
			GPUWork:     sizing.GPUWork,
			AccelWorkGB: sizing.AccelGB,
			Adaptive:    ev.Adaptive,
		})
		if err != nil {
			return err
		}
		sys.Engine.Sensor().InjectFault(fault)
		sys.Engine.RunWithCancel(sim.Time(float64(ev.TargetDur)*ev.MaxDurFactor), func() bool { return ctx.Err() != nil })
		if err := ctx.Err(); err != nil {
			return err
		}
		rec := sys.Engine.Recorder()
		maxOver := rec.MaxWindowAvg(limit.Window) / limit.Watts
		out[i] = FaultResult{
			Scenario:     sc,
			MaxOverLimit: maxOver,
			Violated:     maxOver > 1,
			PPE:          rec.PPE(limit.Watts),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderFaultInjection formats the characterization.
func RenderFaultInjection(combo Combo, results []FaultResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sensor fault injection (%s, HCAPP, package-pin limit)\n", combo.Name)
	fmt.Fprintf(&sb, "%-18s %12s %10s %8s\n", "scenario", "max/limit", "violated", "PPE")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-18s %12.3f %10v %8.3f\n",
			r.Scenario.Name, r.MaxOverLimit, r.Violated, r.PPE)
	}
	return sb.String()
}

// AblationVREfficiency quantifies the sensitivity of the headline
// metrics to global-VR conversion losses, which the paper (and the
// default configuration) treats as lossless: the loss eats guardband,
// so an integrator deploying a real 90 %-efficient regulator must
// re-derive the power target.
func (ev *Evaluator) AblationVREfficiency() (*Matrix, error) {
	limit := config.PackagePinLimit()
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return nil, err
	}
	effs := []struct {
		name string
		eff  float64
	}{
		{"lossless (paper)", 0},
		{"95% efficient", 0.95},
		{"90% efficient", 0.90},
	}
	rows := make([]string, len(effs))
	for i, e := range effs {
		rows[i] = e.name
	}
	m := NewMatrix("Ablation: global VR conversion efficiency (max power / limit, 20 us limit)", "max/limit", rows, comboNames())

	// Flat (combo, efficiency) cell batch over the runner; cells land by
	// index and the matrix is filled sequentially afterwards.
	suite := Suite()
	cells := make([]float64, len(suite)*len(effs))
	err = ev.runner.Tasks(context.Background(), len(cells), func(ctx context.Context, i int) error {
		combo, e := suite[i/len(effs)], effs[i%len(effs)]
		sizing, err := ev.sizingFor(combo)
		if err != nil {
			return err
		}
		cfg := ev.Cfg
		cfg.GlobalVR.Efficiency = e.eff
		sys, err := Build(cfg, combo, BuildOptions{
			Scheme:      hcapp,
			TargetPower: TargetPowerFor(limit),
			CPUWork:     sizing.CPUWork,
			GPUWork:     sizing.GPUWork,
			AccelWorkGB: sizing.AccelGB,
			Adaptive:    ev.Adaptive,
		})
		if err != nil {
			return err
		}
		sys.Engine.RunWithCancel(sim.Time(float64(ev.TargetDur)*ev.MaxDurFactor), func() bool { return ctx.Err() != nil })
		if err := ctx.Err(); err != nil {
			return err
		}
		cells[i] = sys.Engine.Recorder().MaxWindowAvg(limit.Window) / limit.Watts
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, v := range cells {
		m.Set(effs[i%len(effs)].name, suite[i/len(effs)].Name, v)
	}
	return m, nil
}
