package experiment

import (
	"fmt"
	"strings"

	"hcapp/internal/config"
	"hcapp/internal/sim"
	"hcapp/internal/vr"
)

// Robustness characterization: what happens to a power-capping system
// when its inputs lie. A controller is only as trustworthy as its
// sensor, so a credible release must state the failure modes, not just
// the happy path.

// FaultScenario is one sensor-defect case.
type FaultScenario struct {
	Name  string
	Fault vr.Fault
}

// DefaultFaultScenarios returns the characterized defect set.
func DefaultFaultScenarios() []FaultScenario {
	return []FaultScenario{
		{Name: "healthy", Fault: vr.Fault{}},
		{Name: "optimistic -10%", Fault: vr.Fault{Gain: 0.90}},
		{Name: "optimistic -25%", Fault: vr.Fault{Gain: 0.75}},
		{Name: "pessimistic +10%", Fault: vr.Fault{Gain: 1.10}},
		{Name: "stuck at target", Fault: vr.Fault{StuckAt: 0, StuckEnabled: true}}, // StuckAt set per run
	}
}

// FaultResult is one scenario's outcome.
type FaultResult struct {
	Scenario FaultScenario
	// MaxOverLimit is the true max window power over the limit.
	MaxOverLimit float64
	Violated     bool
	PPE          float64
}

// RunFaultInjection runs one combo under HCAPP at the fast limit with
// each sensor defect and reports the true (fault-free) power metrics.
func (ev *Evaluator) RunFaultInjection(combo Combo) ([]FaultResult, error) {
	limit := config.PackagePinLimit()
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return nil, err
	}
	sizing, err := ev.sizingFor(combo)
	if err != nil {
		return nil, err
	}
	target := TargetPowerFor(limit)

	var out []FaultResult
	for _, sc := range DefaultFaultScenarios() {
		fault := sc.Fault
		if fault.StuckEnabled && fault.StuckAt == 0 {
			// "Stuck at target": the worst plausible silent failure —
			// the controller believes it is exactly on target forever.
			fault.StuckAt = target
		}
		sys, err := Build(ev.Cfg, combo, BuildOptions{
			Scheme:      hcapp,
			TargetPower: target,
			CPUWork:     sizing.CPUWork,
			GPUWork:     sizing.GPUWork,
			AccelWorkGB: sizing.AccelGB,
		})
		if err != nil {
			return nil, err
		}
		sys.Engine.Sensor().InjectFault(fault)
		sys.Engine.Run(sim.Time(float64(ev.TargetDur) * ev.MaxDurFactor))
		rec := sys.Engine.Recorder()
		maxOver := rec.MaxWindowAvg(limit.Window) / limit.Watts
		out = append(out, FaultResult{
			Scenario:     sc,
			MaxOverLimit: maxOver,
			Violated:     maxOver > 1,
			PPE:          rec.PPE(limit.Watts),
		})
	}
	return out, nil
}

// RenderFaultInjection formats the characterization.
func RenderFaultInjection(combo Combo, results []FaultResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sensor fault injection (%s, HCAPP, package-pin limit)\n", combo.Name)
	fmt.Fprintf(&sb, "%-18s %12s %10s %8s\n", "scenario", "max/limit", "violated", "PPE")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-18s %12.3f %10v %8.3f\n",
			r.Scenario.Name, r.MaxOverLimit, r.Violated, r.PPE)
	}
	return sb.String()
}

// AblationVREfficiency quantifies the sensitivity of the headline
// metrics to global-VR conversion losses, which the paper (and the
// default configuration) treats as lossless: the loss eats guardband,
// so an integrator deploying a real 90 %-efficient regulator must
// re-derive the power target.
func (ev *Evaluator) AblationVREfficiency() (*Matrix, error) {
	limit := config.PackagePinLimit()
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return nil, err
	}
	effs := []struct {
		name string
		eff  float64
	}{
		{"lossless (paper)", 0},
		{"95% efficient", 0.95},
		{"90% efficient", 0.90},
	}
	rows := make([]string, len(effs))
	for i, e := range effs {
		rows[i] = e.name
	}
	m := NewMatrix("Ablation: global VR conversion efficiency (max power / limit, 20 us limit)", "max/limit", rows, comboNames())

	for _, combo := range Suite() {
		sizing, err := ev.sizingFor(combo)
		if err != nil {
			return nil, err
		}
		for _, e := range effs {
			cfg := ev.Cfg
			cfg.GlobalVR.Efficiency = e.eff
			sys, err := Build(cfg, combo, BuildOptions{
				Scheme:      hcapp,
				TargetPower: TargetPowerFor(limit),
				CPUWork:     sizing.CPUWork,
				GPUWork:     sizing.GPUWork,
				AccelWorkGB: sizing.AccelGB,
			})
			if err != nil {
				return nil, err
			}
			sys.Engine.Run(sim.Time(float64(ev.TargetDur) * ev.MaxDurFactor))
			rec := sys.Engine.Recorder()
			m.Set(e.name, combo.Name, rec.MaxWindowAvg(limit.Window)/limit.Watts)
		}
	}
	return m, nil
}
