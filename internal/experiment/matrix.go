package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hcapp/internal/stats"
)

// Matrix is a figure's data: one value per (series, combo), plus a
// suite average column — the shape of Figs. 4–10.
type Matrix struct {
	Title string
	// Unit annotates the values ("× limit", "speedup", "PPE").
	Unit   string
	Rows   []string // series (scheme or prioritized component) order
	Cols   []string // combo order
	values map[string]map[string]float64
}

// NewMatrix creates a matrix with fixed row/column order.
func NewMatrix(title, unit string, rows, cols []string) *Matrix {
	return &Matrix{
		Title:  title,
		Unit:   unit,
		Rows:   append([]string(nil), rows...),
		Cols:   append([]string(nil), cols...),
		values: make(map[string]map[string]float64),
	}
}

// Set stores a value.
func (m *Matrix) Set(row, col string, v float64) {
	if m.values[row] == nil {
		m.values[row] = make(map[string]float64)
	}
	m.values[row][col] = v
}

// Get returns a value and whether it was set.
func (m *Matrix) Get(row, col string) (float64, bool) {
	v, ok := m.values[row][col]
	return v, ok
}

// RowAvg returns the arithmetic mean across the row's set values.
func (m *Matrix) RowAvg(row string) float64 {
	var vals []float64
	for _, c := range m.Cols {
		if v, ok := m.values[row][c]; ok {
			vals = append(vals, v)
		}
	}
	return stats.Mean(vals...)
}

// RowMax returns the maximum across the row's set values.
func (m *Matrix) RowMax(row string) float64 {
	var vals []float64
	for _, c := range m.Cols {
		if v, ok := m.values[row][c]; ok {
			vals = append(vals, v)
		}
	}
	return stats.Max(vals...)
}

// Render formats the matrix as an aligned text table with an Ave.
// column, the textual equivalent of the paper's bar charts.
func (m *Matrix) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s", m.Title)
	if m.Unit != "" {
		fmt.Fprintf(&sb, " (%s)", m.Unit)
	}
	sb.WriteString("\n")

	rowW := 10
	for _, r := range m.Rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	colW := 12
	fmt.Fprintf(&sb, "%-*s", rowW+2, "")
	for _, c := range m.Cols {
		fmt.Fprintf(&sb, "%*s", colW, c)
	}
	fmt.Fprintf(&sb, "%*s\n", colW, "Ave.")
	for _, r := range m.Rows {
		fmt.Fprintf(&sb, "%-*s", rowW+2, r)
		for _, c := range m.Cols {
			if v, ok := m.values[r][c]; ok {
				fmt.Fprintf(&sb, "%*s", colW, formatCell(v))
			} else {
				fmt.Fprintf(&sb, "%*s", colW, "-")
			}
		}
		fmt.Fprintf(&sb, "%*s\n", colW, formatCell(m.RowAvg(r)))
	}
	return sb.String()
}

// formatCell renders one matrix value; NaN — a run where a scheme failed
// to complete every component (Eq. 3's poison-loudly contract) — prints
// as "fail" instead of masquerading as a number.
func formatCell(v float64) string {
	if math.IsNaN(v) {
		return "fail"
	}
	return fmt.Sprintf("%.3f", v)
}

// SortedRows returns row names sorted alphabetically (for deterministic
// auxiliary output).
func (m *Matrix) SortedRows() []string {
	out := append([]string(nil), m.Rows...)
	sort.Strings(out)
	return out
}
