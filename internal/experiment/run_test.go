package experiment

import (
	"math"
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/sim"
)

// shortEvaluator returns an evaluator with runs short enough for unit
// tests (the full evaluation uses 16 ms).
func shortEvaluator() *Evaluator {
	return NewEvaluator().WithTargetDur(2 * sim.Millisecond)
}

func mustCombo2(t *testing.T, name string) Combo {
	t.Helper()
	c, err := ComboByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSizeWorkScalesWithDuration(t *testing.T) {
	cfg := config.Default()
	combo := mustCombo2(t, "Mid-Mid")
	s1, err := SizeWork(cfg, combo, 0.95, 2*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SizeWork(cfg, combo, 0.95, 4*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]float64{
		{s1.CPUWork, s2.CPUWork},
		{s1.GPUWork, s2.GPUWork},
		{s1.AccelGB, s2.AccelGB},
	} {
		if pair[0] <= 0 {
			t.Fatalf("non-positive work pool: %+v", s1)
		}
		if math.Abs(pair[1]/pair[0]-2) > 1e-9 {
			t.Fatalf("work not proportional to duration: %g vs %g", pair[0], pair[1])
		}
	}
}

func TestBuildValidation(t *testing.T) {
	cfg := config.Default()
	combo := mustCombo2(t, "Mid-Mid")
	// Dynamic scheme without a power target must fail.
	if _, err := Build(cfg, combo, BuildOptions{Scheme: mustScheme2(t, config.HCAPP)}); err == nil {
		t.Fatal("missing power target accepted")
	}
	// Corrupt config must fail.
	bad := cfg
	bad.TimeStep = 0
	if _, err := Build(bad, combo, BuildOptions{Scheme: config.Scheme{Kind: config.FixedVoltage, FixedV: 0.95}}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func mustScheme2(t *testing.T, k config.SchemeKind) config.Scheme {
	t.Helper()
	s, err := config.SchemeByKind(k)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFixedVoltageRunCompletesOnSchedule(t *testing.T) {
	ev := shortEvaluator()
	combo := mustCombo2(t, "Mid-Mid")
	r, err := ev.Run(RunSpec{Combo: combo, Scheme: ev.FixedScheme(), Limit: config.PackagePinLimit()})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("fixed run did not complete")
	}
	// Work pools are sized for the target duration at the fixed voltage.
	if r.Duration < ev.TargetDur*8/10 || r.Duration > ev.TargetDur*13/10 {
		t.Fatalf("fixed run took %s, want ≈%s", sim.FormatTime(r.Duration), sim.FormatTime(ev.TargetDur))
	}
	for _, c := range []string{"cpu", "gpu", "sha"} {
		if _, ok := r.Completion[c]; !ok {
			t.Errorf("completion missing for %s", c)
		}
	}
}

func TestRunCaching(t *testing.T) {
	ev := shortEvaluator()
	combo := mustCombo2(t, "Low-Low")
	spec := RunSpec{Combo: combo, Scheme: ev.FixedScheme(), Limit: config.PackagePinLimit()}
	r1, err := ev.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ev.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.AvgPower != r2.AvgPower || r1.Duration != r2.Duration {
		t.Fatal("cached run differs")
	}
}

func TestRunKeyDistinguishesLimitsAndPriorities(t *testing.T) {
	combo := mustCombo2(t, "Low-Low")
	fixed := config.Scheme{Kind: config.FixedVoltage, FixedV: 0.95}
	a := RunSpec{Combo: combo, Scheme: fixed, Limit: config.PackagePinLimit()}
	b := RunSpec{Combo: combo, Scheme: fixed, Limit: config.OffPackageVRLimit()}
	if a.key() == b.key() {
		t.Fatal("different limits share a cache key")
	}
	c := RunSpec{Combo: combo, Scheme: fixed, Limit: config.PackagePinLimit(),
		Priorities: map[string]float64{"cpu": 1.0, "gpu": 0.9}}
	if a.key() == c.key() {
		t.Fatal("priorities ignored in cache key")
	}
	d := c
	d.AdversarialAccel = true
	if c.key() == d.key() {
		t.Fatal("adversarial flag ignored in cache key")
	}
}

func TestHCAPPHoldsFastLimitOnSteadyCombo(t *testing.T) {
	ev := shortEvaluator()
	combo := mustCombo2(t, "Mid-Mid")
	r, err := ev.Run(RunSpec{Combo: combo, Scheme: mustScheme2(t, config.HCAPP), Limit: config.PackagePinLimit()})
	if err != nil {
		t.Fatal(err)
	}
	if r.Violated {
		t.Fatalf("HCAPP violated the fast limit: max %g", r.MaxWindowPower)
	}
	if r.MaxOverLimit != r.MaxWindowPower/100 {
		t.Fatal("MaxOverLimit inconsistent")
	}
	if r.PPE <= 0 || r.PPE > 1.2 {
		t.Fatalf("PPE = %g", r.PPE)
	}
	if r.ControlCycles <= 0 {
		t.Fatal("no control cycles recorded")
	}
}

func TestSpeedupOver(t *testing.T) {
	base := RunResult{Completion: map[string]sim.Time{"cpu": 2000, "gpu": 1000, "sha": 4000}}
	faster := RunResult{Completion: map[string]sim.Time{"cpu": 1000, "gpu": 1000, "sha": 2000}}
	per, total := faster.SpeedupOver(base)
	if per["cpu"] != 2 || per["gpu"] != 1 || per["sha"] != 2 {
		t.Fatalf("per-component speedups %v", per)
	}
	want := math.Cbrt(2 * 1 * 2)
	if math.Abs(total-want) > 1e-12 {
		t.Fatalf("Eq. 3 total = %g, want %g", total, want)
	}
}

// TestSpeedupOverMissingComponent is the Eq. 3 regression test: a
// missing completion for any of cpu/gpu/sha must poison the total to
// NaN, not silently shrink the geomean to the surviving components
// (which inflates a failing scheme's speedup).
func TestSpeedupOverMissingComponent(t *testing.T) {
	base := RunResult{Completion: map[string]sim.Time{"cpu": 2000}}
	r := RunResult{Completion: map[string]sim.Time{"cpu": 1000}}
	per, total := r.SpeedupOver(base)
	if per["cpu"] != 2 {
		t.Fatalf("cpu speedup %g", per["cpu"])
	}
	if !math.IsNaN(per["gpu"]) || !math.IsNaN(per["sha"]) {
		t.Fatalf("missing components must poison to NaN, got gpu=%g sha=%g", per["gpu"], per["sha"])
	}
	if !math.IsNaN(total) {
		t.Fatalf("Eq. 3 total over a partial run must be NaN, got %g", total)
	}
}

// TestSpeedupOverClippedComponent covers the 2-of-3-finished case: every
// component has a completion time, but one was clipped at the run
// deadline rather than genuinely finishing. The clipped component — and
// therefore the Eq. 3 total — must be NaN.
func TestSpeedupOverClippedComponent(t *testing.T) {
	allDone := map[string]bool{"cpu": true, "gpu": true, "sha": true}
	base := RunResult{
		Completion: map[string]sim.Time{"cpu": 2000, "gpu": 1000, "sha": 4000},
		Finished:   allDone,
	}
	r := RunResult{
		// gpu "completed" at the 8000-tick deadline without finishing.
		Completion: map[string]sim.Time{"cpu": 1000, "gpu": 8000, "sha": 2000},
		Finished:   map[string]bool{"cpu": true, "gpu": false, "sha": true},
	}
	per, total := r.SpeedupOver(base)
	if per["cpu"] != 2 || per["sha"] != 2 {
		t.Fatalf("finished components wrong: %v", per)
	}
	if !math.IsNaN(per["gpu"]) {
		t.Fatalf("deadline-clipped component must be NaN, got %g", per["gpu"])
	}
	if !math.IsNaN(total) {
		t.Fatalf("Eq. 3 total with a clipped component must be NaN, got %g", total)
	}
	// A clipped *baseline* poisons too: speedup against a baseline that
	// never finished is meaningless.
	clippedBase := RunResult{
		Completion: base.Completion,
		Finished:   map[string]bool{"cpu": false, "gpu": true, "sha": true},
	}
	full := RunResult{Completion: map[string]sim.Time{"cpu": 1000, "gpu": 500, "sha": 2000}, Finished: allDone}
	if _, total := full.SpeedupOver(clippedBase); !math.IsNaN(total) {
		t.Fatalf("clipped baseline must poison the total, got %g", total)
	}
}

func TestPriorityFor(t *testing.T) {
	p := PriorityFor("gpu")
	if p["gpu"] != 1.0 || p["cpu"] != 0.9 || p["sha"] != 0.9 {
		t.Fatalf("PriorityFor(gpu) = %v", p)
	}
}

func TestTargetPowerFor(t *testing.T) {
	fast := TargetPowerFor(config.PackagePinLimit())
	slow := TargetPowerFor(config.OffPackageVRLimit())
	if fast >= slow {
		t.Fatalf("fast-window target %g must carry a larger guardband than slow %g", fast, slow)
	}
	if fast >= 100 || slow >= 100 {
		t.Fatal("targets must sit below the limit (guardband)")
	}
}

func TestDefaultPIDFor(t *testing.T) {
	gvr := config.Default().GlobalVR
	h := DefaultPIDFor(mustScheme2(t, config.HCAPP), gvr)
	r := DefaultPIDFor(mustScheme2(t, config.RAPLLike), gvr)
	s := DefaultPIDFor(mustScheme2(t, config.SWLike), gvr)
	if !(h.KI > r.KI && r.KI > s.KI) {
		t.Fatalf("KI must shrink with period: %g, %g, %g", h.KI, r.KI, s.KI)
	}
	if h.OutMin != gvr.VMin || h.OutMax != gvr.VMax {
		t.Fatal("PID clamps must match the VR range")
	}
	for _, cfg := range []struct {
		name string
		c    interface{ Validate() error }
	}{{"hcapp", h}, {"rapl", r}, {"sw", s}} {
		if err := cfg.c.Validate(); err != nil {
			t.Errorf("%s PID invalid: %v", cfg.name, err)
		}
	}
}

func TestPriorityRunSpeedsUpComponent(t *testing.T) {
	ev := shortEvaluator()
	combo := mustCombo2(t, "Mid-Mid")
	hc := mustScheme2(t, config.HCAPP)
	limit := config.PackagePinLimit()
	base, err := ev.Run(RunSpec{Combo: combo, Scheme: hc, Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	prio, err := ev.Run(RunSpec{Combo: combo, Scheme: hc, Limit: limit, Priorities: PriorityFor("cpu")})
	if err != nil {
		t.Fatal(err)
	}
	per, _ := prio.SpeedupOver(base)
	if per["cpu"] <= 1.0 {
		t.Fatalf("prioritized CPU speedup = %g, want > 1", per["cpu"])
	}
}

func TestAdversarialAccelStaysUnderLimit(t *testing.T) {
	ev := shortEvaluator()
	combo := mustCombo2(t, "Hi-Hi")
	r, err := ev.Run(RunSpec{
		Combo: combo, Scheme: mustScheme2(t, config.HCAPP),
		Limit: config.PackagePinLimit(), AdversarialAccel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Violated {
		t.Fatalf("adversarial local controller broke the power limit: %g", r.MaxWindowPower)
	}
}

func TestEvaluatorDeterminism(t *testing.T) {
	run := func() RunResult {
		ev := shortEvaluator()
		r, err := ev.Run(RunSpec{
			Combo: mustCombo2(t, "Burst-Burst"), Scheme: mustScheme2(t, config.HCAPP),
			Limit: config.PackagePinLimit(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.AvgPower != b.AvgPower || a.MaxWindowPower != b.MaxWindowPower || a.Duration != b.Duration {
		t.Fatalf("evaluator runs diverged: %+v vs %+v", a, b)
	}
}
