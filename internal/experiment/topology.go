package experiment

import (
	"fmt"

	"hcapp/internal/accelsim"
	"hcapp/internal/chiplet"
	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/cpusim"
	"hcapp/internal/gpusim"
	"hcapp/internal/psn"
	"hcapp/internal/sched"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
	"hcapp/internal/vr"
	"hcapp/internal/workload"
)

// ChipletSpec describes one chiplet of a custom package topology —
// the "variety of 2.5D designs as different types of accelerators are
// added or replaced" (§1) that HCAPP is built to absorb without
// retuning.
type ChipletSpec struct {
	// Kind selects the chiplet model: "cpu", "gpu", "sha" or "mem".
	Kind string
	// Name is the unique domain/component name (defaults to Kind when
	// the topology has only one chiplet of that kind).
	Name string
	// Benchmark runs on cpu/gpu chiplets. Custom benchmarks from
	// workload.ParseBenchmarks work here too.
	Benchmark workload.Benchmark
	// WorkScale multiplies the auto-sized work pool (0 → 1.0).
	WorkScale float64
	// Watts is the constant draw for "mem" chiplets (0 → config value).
	Watts float64
	// Seed overrides the config seed for this chiplet (0 → config).
	Seed int64
}

// Topology is a custom package: any mix of chiplets under one global
// rail and one HCAPP global controller.
type Topology struct {
	Chiplets []ChipletSpec
}

// TopologyOptions parameterizes assembly of a custom package.
type TopologyOptions struct {
	// Scheme is the control scheme (fixed voltage or any HCAPP variant).
	Scheme config.Scheme
	// TargetPower is PSPEC for dynamic schemes.
	TargetPower float64
	// SizingDur sizes each compute chiplet's work pool so it runs for
	// roughly this long at the fixed 0.95 V point (0 → run forever).
	SizingDur sim.Time
	// TrackComponents enables per-component and voltage tracing.
	TrackComponents bool
}

// BuildTopology assembles a custom package. It is the generalization of
// Build that the scaling experiment and downstream users with their own
// chiplet mixes need.
func BuildTopology(cfg config.SystemConfig, topo Topology, opts TopologyOptions) (*sched.Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(topo.Chiplets) == 0 {
		return nil, fmt.Errorf("experiment: empty topology")
	}

	dynamic := opts.Scheme.Kind != config.FixedVoltage
	gvrCfg := cfg.GlobalVR
	if !dynamic {
		if opts.Scheme.FixedV == 0 {
			return nil, fmt.Errorf("experiment: fixed scheme needs a voltage")
		}
		gvrCfg.VInit = opts.Scheme.FixedV
	}
	gvr, err := vr.NewRegulator(gvrCfg)
	if err != nil {
		return nil, err
	}
	sensor, err := vr.NewSensor(cfg.Sensor, cfg.TimeStep)
	if err != nil {
		return nil, err
	}
	line, err := psn.NewDelayLine(cfg.PSNDelay, cfg.TimeStep, gvrCfg.VInit)
	if err != nil {
		return nil, err
	}
	var global *core.Global
	if dynamic {
		if opts.TargetPower <= 0 {
			return nil, fmt.Errorf("experiment: dynamic topology needs a power target")
		}
		global, err = core.NewGlobal(core.GlobalConfig{
			Period:      opts.Scheme.ControlPeriod,
			TargetPower: opts.TargetPower,
			PID:         DefaultPIDFor(opts.Scheme, gvrCfg),
		})
		if err != nil {
			return nil, err
		}
	}

	sizeSec := sim.Seconds(opts.SizingDur)
	names := map[string]bool{}
	var slots []sched.Slot
	for i, spec := range topo.Chiplets {
		name := spec.Name
		if name == "" {
			name = spec.Kind
		}
		if names[name] {
			return nil, fmt.Errorf("experiment: duplicate chiplet name %q", name)
		}
		names[name] = true
		seed := spec.Seed
		if seed == 0 {
			seed = cfg.Seed
		}
		workScale := spec.WorkScale
		if workScale == 0 {
			workScale = 1
		}

		var comp sim.Component
		var domCfg config.DomainConfig
		switch spec.Kind {
		case "cpu":
			c, err := cpusim.New(cfg.CPU, cfg.LocalCPU, cpusim.Options{
				Benchmark: spec.Benchmark, Seed: seed, LocalControl: dynamic,
			})
			if err != nil {
				return nil, fmt.Errorf("experiment: chiplet %d: %w", i, err)
			}
			if sizeSec > 0 {
				c.SetTotalWork(c.AvgIPSAt(0.95*cfg.CPUDomain.Scale) * sizeSec * workScale)
			}
			comp, domCfg = c, cfg.CPUDomain
		case "gpu":
			g, err := gpusim.New(cfg.GPU, cfg.LocalEpoch, gpusim.Options{
				Benchmark: spec.Benchmark, Seed: seed, LocalControl: dynamic,
			})
			if err != nil {
				return nil, fmt.Errorf("experiment: chiplet %d: %w", i, err)
			}
			if sizeSec > 0 {
				g.SetTotalWork(g.AvgIPSAt(0.95*cfg.GPUDomain.Scale) * sizeSec * workScale)
			}
			comp, domCfg = g, cfg.GPUDomain
		case "sha":
			a, err := accelsim.New(cfg.Accel, accelsim.Options{})
			if err != nil {
				return nil, fmt.Errorf("experiment: chiplet %d: %w", i, err)
			}
			if sizeSec > 0 {
				a.SetTotalWork(a.ThroughputAt(0.95*cfg.AccelDomain.Scale) * sizeSec * workScale)
			}
			comp, domCfg = a, cfg.AccelDomain
		case "mem":
			watts := spec.Watts
			if watts == 0 {
				watts = cfg.Mem.Power
			}
			comp, domCfg = chiplet.NewConstant(name, watts), cfg.MemDomain
		default:
			return nil, fmt.Errorf("experiment: chiplet %d: unknown kind %q", i, spec.Kind)
		}

		dom, err := core.NewDomain(name, domCfg)
		if err != nil {
			return nil, err
		}
		slots = append(slots, sched.Slot{Domain: dom, Comp: &named{Component: comp, name: name}})
	}

	rec, err := trace.NewRecorder(cfg.TimeStep, opts.TrackComponents)
	if err != nil {
		return nil, err
	}
	return sched.New(sched.Config{
		DT:              cfg.TimeStep,
		GlobalVR:        gvr,
		Sensor:          sensor,
		PSN:             line,
		Droop:           psn.Droop{R: cfg.DroopOhms},
		Global:          global,
		Slots:           slots,
		Recorder:        rec,
		TrackComponents: opts.TrackComponents,
	})
}

// named wraps a component to give it a topology-unique name while
// forwarding everything else (including optional interfaces used via
// type assertions on the embedded value).
type named struct {
	sim.Component
	name string
}

// Name overrides the wrapped component's name.
func (n *named) Name() string { return n.name }

// CompletionTime forwards when the wrapped component records one.
func (n *named) CompletionTime() sim.Time {
	if ct, ok := n.Component.(interface{ CompletionTime() sim.Time }); ok {
		return ct.CompletionTime()
	}
	return -1
}

// LastPower forwards when the wrapped component reports it.
func (n *named) LastPower() float64 {
	if pr, ok := n.Component.(interface{ LastPower() float64 }); ok {
		return pr.LastPower()
	}
	return 0
}

// Reset forwards when the wrapped component supports it.
func (n *named) Reset() {
	if r, ok := n.Component.(sim.Resetter); ok {
		r.Reset()
	}
}
