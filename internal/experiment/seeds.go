package experiment

import (
	"context"
	"fmt"
	"strings"

	"hcapp/internal/config"
	"hcapp/internal/sim"
	"hcapp/internal/stats"
)

// SeedSweep quantifies how robust the headline results are to the
// workload generator's randomness: the whole suite re-runs under each
// seed and the per-seed suite averages are summarized. The paper
// reports single numbers; a credible reproduction should show they are
// not seed artifacts.
type SeedSweep struct {
	Seeds []int64
	Limit config.PowerLimit
	// Per-seed suite averages.
	FixedPPE, HCAPPPPE, HCAPPSpeedup []float64
	// Violations counts seeds where HCAPP exceeded the limit anywhere
	// in the suite (must stay 0).
	Violations int
}

// RunSeedSweep executes the sweep sequentially at the given horizon.
func RunSeedSweep(seeds []int64, limit config.PowerLimit, dur sim.Time) (*SeedSweep, error) {
	return RunSeedSweepWith(nil, seeds, limit, dur, false)
}

// RunSeedSweepWith executes the sweep with the per-seed loop —
// embarrassingly parallel, one fresh evaluator per seed — fanned over
// the runner (nil runs sequentially). Per-seed summaries land in
// seed-index slots, so the rendered sweep is identical at any worker
// count. adaptive enables steady-state striding on every per-seed
// evaluator (bitwise-identical results, less wall clock).
func RunSeedSweepWith(r *Runner, seeds []int64, limit config.PowerLimit, dur sim.Time, adaptive bool) (*SeedSweep, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: no seeds")
	}
	out := &SeedSweep{
		Seeds:        append([]int64(nil), seeds...),
		Limit:        limit,
		FixedPPE:     make([]float64, len(seeds)),
		HCAPPPPE:     make([]float64, len(seeds)),
		HCAPPSpeedup: make([]float64, len(seeds)),
	}
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return nil, err
	}
	violated := make([]bool, len(seeds))
	err = r.Tasks(context.Background(), len(seeds), func(ctx context.Context, i int) error {
		// The inner suite loop stays sequential: nesting batches on the
		// shared pool could exhaust it and deadlock, and one seed's runs
		// already saturate a worker.
		ev := NewEvaluator().WithTargetDur(dur)
		ev.Cfg.Seed = seeds[i]
		ev.Adaptive = adaptive
		var fixedPPE, hcPPE, hcSp []float64
		for _, combo := range Suite() {
			base, err := ev.RunContext(ctx, RunSpec{Combo: combo, Scheme: ev.FixedScheme(), Limit: limit})
			if err != nil {
				return err
			}
			run, err := ev.RunContext(ctx, RunSpec{Combo: combo, Scheme: hcapp, Limit: limit})
			if err != nil {
				return err
			}
			fixedPPE = append(fixedPPE, base.PPE)
			hcPPE = append(hcPPE, run.PPE)
			_, sp := run.SpeedupOver(base)
			hcSp = append(hcSp, sp)
			if run.Violated {
				violated[i] = true
			}
		}
		out.FixedPPE[i] = stats.Mean(fixedPPE...)
		out.HCAPPPPE[i] = stats.Mean(hcPPE...)
		out.HCAPPSpeedup[i] = stats.Mean(hcSp...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, v := range violated {
		if v {
			out.Violations++
		}
	}
	return out, nil
}

// Render formats the sweep summary.
func (s *SeedSweep) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Seed robustness sweep (%d seeds, %s limit)\n", len(s.Seeds), s.Limit.Name)
	row := func(name string, xs []float64) {
		sum := stats.Summarize(xs)
		fmt.Fprintf(&sb, "%-16s mean=%.3f stddev=%.3f min=%.3f max=%.3f\n",
			name, sum.Mean, sum.Stddev, sum.Min, sum.Max)
	}
	row("fixed PPE", s.FixedPPE)
	row("hcapp PPE", s.HCAPPPPE)
	row("hcapp speedup", s.HCAPPSpeedup)
	fmt.Fprintf(&sb, "seeds with an HCAPP violation: %d (must be 0)\n", s.Violations)
	return sb.String()
}
