package experiment

import (
	"fmt"
	"strings"

	"hcapp/internal/config"
	"hcapp/internal/sim"
	"hcapp/internal/stats"
)

// SeedSweep quantifies how robust the headline results are to the
// workload generator's randomness: the whole suite re-runs under each
// seed and the per-seed suite averages are summarized. The paper
// reports single numbers; a credible reproduction should show they are
// not seed artifacts.
type SeedSweep struct {
	Seeds []int64
	Limit config.PowerLimit
	// Per-seed suite averages.
	FixedPPE, HCAPPPPE, HCAPPSpeedup []float64
	// Violations counts seeds where HCAPP exceeded the limit anywhere
	// in the suite (must stay 0).
	Violations int
}

// RunSeedSweep executes the sweep at the given horizon.
func RunSeedSweep(seeds []int64, limit config.PowerLimit, dur sim.Time) (*SeedSweep, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: no seeds")
	}
	out := &SeedSweep{Seeds: append([]int64(nil), seeds...), Limit: limit}
	hcapp, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		return nil, err
	}
	for _, seed := range seeds {
		ev := NewEvaluator().WithTargetDur(dur)
		ev.Cfg.Seed = seed
		var fixedPPE, hcPPE, hcSp []float64
		violated := false
		for _, combo := range Suite() {
			base, err := ev.Run(RunSpec{Combo: combo, Scheme: ev.FixedScheme(), Limit: limit})
			if err != nil {
				return nil, err
			}
			r, err := ev.Run(RunSpec{Combo: combo, Scheme: hcapp, Limit: limit})
			if err != nil {
				return nil, err
			}
			fixedPPE = append(fixedPPE, base.PPE)
			hcPPE = append(hcPPE, r.PPE)
			_, sp := r.SpeedupOver(base)
			hcSp = append(hcSp, sp)
			if r.Violated {
				violated = true
			}
		}
		out.FixedPPE = append(out.FixedPPE, stats.Mean(fixedPPE...))
		out.HCAPPPPE = append(out.HCAPPPPE, stats.Mean(hcPPE...))
		out.HCAPPSpeedup = append(out.HCAPPSpeedup, stats.Mean(hcSp...))
		if violated {
			out.Violations++
		}
	}
	return out, nil
}

// Render formats the sweep summary.
func (s *SeedSweep) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Seed robustness sweep (%d seeds, %s limit)\n", len(s.Seeds), s.Limit.Name)
	row := func(name string, xs []float64) {
		sum := stats.Summarize(xs)
		fmt.Fprintf(&sb, "%-16s mean=%.3f stddev=%.3f min=%.3f max=%.3f\n",
			name, sum.Mean, sum.Stddev, sum.Min, sum.Max)
	}
	row("fixed PPE", s.FixedPPE)
	row("hcapp PPE", s.HCAPPPPE)
	row("hcapp speedup", s.HCAPPSpeedup)
	fmt.Fprintf(&sb, "seeds with an HCAPP violation: %d (must be 0)\n", s.Violations)
	return sb.String()
}
