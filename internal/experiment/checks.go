package experiment

import (
	"fmt"

	"hcapp/internal/sim"
)

// Check is one shape assertion: a qualitative claim from the paper's
// evaluation that defines successful reproduction independent of
// absolute magnitudes.
type Check struct {
	// Name states the claim, with its figure reference.
	Name string
	// Pass reports whether the claim held.
	Pass bool
	// Detail carries the measured values behind the verdict.
	Detail string
}

// ShapeChecks runs the core reproduction checks (Figs. 4–10) and returns
// one Check per claim. The report generator and the integration tests
// share this list so "reproduced" means the same thing everywhere.
//
// The evaluator's horizon must exceed the SW-like controller's 10 ms
// period for the SW-like checks to be meaningful; shorter horizons mark
// those checks as skipped-passes with a note in Detail.
func (ev *Evaluator) ShapeChecks() ([]Check, error) {
	var out []Check
	add := func(name string, pass bool, detail string, args ...any) {
		out = append(out, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(detail, args...)})
	}
	swMeaningful := ev.TargetDur > 10*sim.Millisecond

	fig4, err := ev.Fig4()
	if err != nil {
		return nil, err
	}
	add("fixed voltage never violates the 20 µs limit (Fig. 4)",
		fig4.RowMax("Fixed Voltage") <= 1.0, "max %.3f", fig4.RowMax("Fixed Voltage"))
	add("HCAPP never violates the 20 µs limit (Fig. 4)",
		fig4.RowMax("HCAPP") <= 1.0, "max %.3f", fig4.RowMax("HCAPP"))
	add("RAPL-like violates the 20 µs limit (Fig. 4)",
		fig4.RowMax("RAPL-like HCAPP") > 1.0, "max %.3f", fig4.RowMax("RAPL-like HCAPP"))
	if swMeaningful {
		add("SW-like violates the 20 µs limit (Fig. 4)",
			fig4.RowMax("SW-like HCAPP") > 1.0, "max %.3f", fig4.RowMax("SW-like HCAPP"))
	} else {
		add("SW-like violates the 20 µs limit (Fig. 4)", true,
			"skipped: horizon %s shorter than the SW-like period", sim.FormatTime(ev.TargetDur))
	}

	fig5, err := ev.Fig5()
	if err != nil {
		return nil, err
	}
	add("HCAPP average speedup above fixed voltage (Fig. 5; paper +21%)",
		fig5.RowAvg("HCAPP") > 1.0, "avg %.3f", fig5.RowAvg("HCAPP"))

	fig6, err := ev.Fig6()
	if err != nil {
		return nil, err
	}
	add("HCAPP PPE above fixed voltage (Fig. 6; paper 79.3% vs 69.1%)",
		fig6.RowAvg("HCAPP") > fig6.RowAvg("Fixed Voltage"),
		"%.3f vs %.3f", fig6.RowAvg("HCAPP"), fig6.RowAvg("Fixed Voltage"))

	fig7, err := ev.Fig7()
	if err != nil {
		return nil, err
	}
	add("HCAPP never violates the 1 ms limit (Fig. 7)",
		fig7.RowMax("HCAPP") <= 1.0, "max %.3f", fig7.RowMax("HCAPP"))
	add("RAPL-like at or near the 1 ms limit (Fig. 7; paper: narrow violation)",
		fig7.RowMax("RAPL-like HCAPP") > 0.95, "max %.3f", fig7.RowMax("RAPL-like HCAPP"))
	if swMeaningful {
		add("SW-like violates the 1 ms limit (Fig. 7)",
			fig7.RowMax("SW-like HCAPP") > 1.0, "max %.3f", fig7.RowMax("SW-like HCAPP"))
	} else {
		add("SW-like violates the 1 ms limit (Fig. 7)", true,
			"skipped: horizon %s shorter than the SW-like period", sim.FormatTime(ev.TargetDur))
	}

	fig8, err := ev.Fig8()
	if err != nil {
		return nil, err
	}
	h, rl, sw := fig8.RowAvg("HCAPP"), fig8.RowAvg("RAPL-like HCAPP"), fig8.RowAvg("SW-like HCAPP")
	add("slow-limit speedup ordering HCAPP > RAPL-like > SW-like (Fig. 8; paper 1.43/1.36/~1)",
		h > rl && rl > sw, "%.3f / %.3f / %.3f", h, rl, sw)
	if ev.TargetDur >= 8*sim.Millisecond {
		// The ferret effect needs enough burst cycles to emerge; short
		// horizons are dominated by a handful of bursts.
		bbH, _ := fig8.Get("HCAPP", "Burst-Burst")
		bbR, _ := fig8.Get("RAPL-like HCAPP", "Burst-Burst")
		add("HCAPP's advantage collapses on Burst-Burst (Fig. 8 ferret effect)",
			bbH-bbR < 0.6*(h-rl)+0.05, "gap %.3f vs suite gap %.3f", bbH-bbR, h-rl)
	} else {
		add("HCAPP's advantage collapses on Burst-Burst (Fig. 8 ferret effect)", true,
			"skipped: horizon %s too short for burst statistics", sim.FormatTime(ev.TargetDur))
	}

	fig9, err := ev.Fig9()
	if err != nil {
		return nil, err
	}
	hp, rp, sp := fig9.RowAvg("HCAPP"), fig9.RowAvg("RAPL-like HCAPP"), fig9.RowAvg("SW-like HCAPP")
	add("slow-limit PPE ordering HCAPP > RAPL-like > SW-like (Fig. 9; paper 93.9/79.7/69.2)",
		hp > rp && rp > sp, "%.3f / %.3f / %.3f", hp, rp, sp)

	fig10, err := ev.Fig10()
	if err != nil {
		return nil, err
	}
	c, g, s := fig10.RowAvg("CPU"), fig10.RowAvg("GPU"), fig10.RowAvg("SHA")
	add("every component gains from its own prioritization (Fig. 10)",
		c > 1 && g > 1 && s > 1, "%.3f / %.3f / %.3f", c, g, s)
	add("GPU gains least from prioritization (Fig. 10 ordering)",
		g < c && g < s, "%.3f / %.3f / %.3f", c, g, s)

	return out, nil
}

// Failed filters a check list down to failures.
func Failed(checks []Check) []Check {
	var out []Check
	for _, c := range checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}
