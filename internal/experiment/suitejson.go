package experiment

import (
	"encoding/json"
	"fmt"
	"io"

	"hcapp/internal/workload"
)

// ComboSpecJSON is the external description of one benchmark
// combination, so downstream users can evaluate their own suites:
//
//	[{"name": "Mine-Hi", "cpu": "streamkernel", "gpu": "backprop"}]
//
// Benchmark names resolve against the built-in registry first, then
// against the supplied custom benchmarks.
type ComboSpecJSON struct {
	Name string `json:"name"`
	CPU  string `json:"cpu"`
	GPU  string `json:"gpu"`
}

// ParseSuite reads a JSON array of combo specs. custom supplies
// additional benchmarks (from workload.ParseBenchmarks); it may be nil.
func ParseSuite(r io.Reader, custom []workload.Benchmark) ([]Combo, error) {
	var specs []ComboSpecJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("experiment: parse suite: %w", err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("experiment: empty suite")
	}
	byName := make(map[string]workload.Benchmark, len(custom))
	for _, b := range custom {
		byName[b.Name] = b
	}
	resolve := func(name string, want workload.Target) (workload.Benchmark, error) {
		if b, err := workload.ByName(name); err == nil {
			if b.On != want {
				return workload.Benchmark{}, fmt.Errorf("experiment: %q targets %s, want %s", name, b.On, want)
			}
			return b, nil
		}
		if b, ok := byName[name]; ok {
			if b.On != want {
				return workload.Benchmark{}, fmt.Errorf("experiment: %q targets %s, want %s", name, b.On, want)
			}
			return b, nil
		}
		return workload.Benchmark{}, fmt.Errorf("experiment: unknown benchmark %q", name)
	}

	seen := map[string]bool{}
	out := make([]Combo, 0, len(specs))
	for _, sp := range specs {
		if sp.Name == "" {
			return nil, fmt.Errorf("experiment: combo missing name")
		}
		if seen[sp.Name] {
			return nil, fmt.Errorf("experiment: duplicate combo %q", sp.Name)
		}
		cpu, err := resolve(sp.CPU, workload.TargetCPU)
		if err != nil {
			return nil, fmt.Errorf("%w (combo %q)", err, sp.Name)
		}
		gpu, err := resolve(sp.GPU, workload.TargetGPU)
		if err != nil {
			return nil, fmt.Errorf("%w (combo %q)", err, sp.Name)
		}
		seen[sp.Name] = true
		out = append(out, Combo{Name: sp.Name, CPU: cpu, GPU: gpu})
	}
	return out, nil
}
