// Package buildinfo resolves the running binary's version from the
// embedded Go build info — one helper shared by every cmd/ binary's
// -version flag and the hcapp_build_info metric, so all surfaces report
// the same string.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Version returns the main module's version; for builds from a checkout
// (version "(devel)") it falls back to the VCS revision, with a "-dirty"
// suffix when the working tree was modified, and to "devel" when no
// build info is embedded at all (e.g. test binaries).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	return versionOf(bi)
}

// versionOf is Version over explicit build info (split out for tests —
// debug.ReadBuildInfo is not injectable).
func versionOf(bi *debug.BuildInfo) string {
	v := bi.Main.Version
	if v != "" && v != "(devel)" {
		return v
	}
	rev, dirty := "", ""
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}

// Print writes the canonical "-version" line for a binary.
func Print(w io.Writer, binary string) {
	fmt.Fprintf(w, "%s version %s (%s)\n", binary, Version(), runtime.Version())
}
