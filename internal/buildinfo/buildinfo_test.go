package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestVersionOf(t *testing.T) {
	cases := []struct {
		name string
		bi   debug.BuildInfo
		want string
	}{
		{
			name: "tagged release",
			bi:   debug.BuildInfo{Main: debug.Module{Version: "v1.2.3"}},
			want: "v1.2.3",
		},
		{
			name: "devel with revision",
			bi: debug.BuildInfo{
				Main: debug.Module{Version: "(devel)"},
				Settings: []debug.BuildSetting{
					{Key: "vcs.revision", Value: "abcdef0123456789abcdef"},
				},
			},
			want: "abcdef012345",
		},
		{
			name: "devel dirty tree",
			bi: debug.BuildInfo{
				Main: debug.Module{Version: "(devel)"},
				Settings: []debug.BuildSetting{
					{Key: "vcs.revision", Value: "abc123"},
					{Key: "vcs.modified", Value: "true"},
				},
			},
			want: "abc123-dirty",
		},
		{
			name: "nothing embedded",
			bi:   debug.BuildInfo{},
			want: "devel",
		},
	}
	for _, tc := range cases {
		if got := versionOf(&tc.bi); got != tc.want {
			t.Errorf("%s: versionOf = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestVersionNeverEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version returned an empty string")
	}
}

func TestPrintShape(t *testing.T) {
	var sb strings.Builder
	Print(&sb, "hcappsim")
	out := sb.String()
	if !strings.HasPrefix(out, "hcappsim version ") || !strings.HasSuffix(out, ")\n") {
		t.Fatalf("unexpected -version line: %q", out)
	}
}
