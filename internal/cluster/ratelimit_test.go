package cluster

import (
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source for limiter and
// liveness tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestLimiterBurstBoundary pins the inclusive boundary: a burst-sized
// request against a full bucket is admitted exactly; one more item is
// not.
func TestLimiterBurstBoundary(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(1, 8, clk.now)

	if !l.Allow("acme", 8) {
		t.Fatal("burst-sized request against a full bucket must be admitted")
	}
	if l.Allow("acme", 1) {
		t.Fatal("bucket is empty; one more item must be rejected")
	}

	// A different tenant owns its own full bucket.
	if l.Allow("other", 9) {
		t.Fatal("request above burst must be rejected even on a fresh bucket")
	}
	if !l.Allow("other", 8) {
		t.Fatal("rejection must not debit: the full burst is still available")
	}
}

// TestLimiterRefill drives the clock to verify tokens come back at
// Rate per second and cap at the burst.
func TestLimiterRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(2, 4, clk.now) // 2 tokens/s, burst 4

	if !l.Allow("t", 4) {
		t.Fatal("initial burst rejected")
	}
	if l.Allow("t", 1) {
		t.Fatal("empty bucket admitted an item")
	}
	clk.advance(time.Second) // +2 tokens
	if !l.Allow("t", 2) {
		t.Fatal("refilled tokens not granted")
	}
	clk.advance(time.Hour) // caps at burst, not 7200
	if l.Allow("t", 5) {
		t.Fatal("refill exceeded the burst cap")
	}
	if !l.Allow("t", 4) {
		t.Fatal("capped bucket should hold exactly the burst")
	}
}

// TestLimiterUnlimited: rate <= 0 disables limiting entirely.
func TestLimiterUnlimited(t *testing.T) {
	l := NewLimiter(0, 1, nil)
	if !l.Allow("t", 1<<20) {
		t.Fatal("rate 0 must admit everything")
	}
}

// TestLimiterAnonTenant: the empty tenant buckets under one shared
// "anon" identity rather than unlimited fresh buckets.
func TestLimiterAnonTenant(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(1, 2, clk.now)
	if !l.Allow("", 2) {
		t.Fatal("anon burst rejected")
	}
	if l.Allow("", 1) {
		t.Fatal("second anonymous request must share the first's bucket")
	}
	if l.Tenants() != 1 {
		t.Fatalf("anon requests created %d buckets, want 1", l.Tenants())
	}
}
