package cluster

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestPrioSemInteractiveFirst: with the single slot held, an
// interactive acquirer that arrived after a batch acquirer still gets
// the slot first.
func TestPrioSemInteractiveFirst(t *testing.T) {
	s := newPrioSem(1)
	if err := s.acquire(context.Background(), false); err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 2)
	var wg sync.WaitGroup
	start := func(class string, interactive bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.acquire(context.Background(), interactive); err != nil {
				t.Errorf("%s acquire: %v", class, err)
				return
			}
			order <- class
			s.release()
		}()
	}
	start("batch", false)
	// Let the batch waiter actually enqueue before the interactive one.
	waitForWaiters(t, s, 1)
	start("interactive", true)
	waitForWaiters(t, s, 2)

	s.release() // hand the held slot to the scheduler
	wg.Wait()
	close(order)

	got := []string{<-order, <-order}
	if got[0] != "interactive" || got[1] != "batch" {
		t.Fatalf("wake order %v, want [interactive batch]", got)
	}
}

// TestPrioSemCancelRemovesWaiter: a cancelled waiter neither blocks the
// queue nor leaks its slot.
func TestPrioSemCancelRemovesWaiter(t *testing.T) {
	s := newPrioSem(1)
	if err := s.acquire(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.acquire(ctx, true) }()
	waitForWaiters(t, s, 1)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled acquire returned %v, want context.Canceled", err)
	}
	s.release()
	// The slot must be acquirable again immediately.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := s.acquire(ctx2, false); err != nil {
		t.Fatalf("slot leaked by cancelled waiter: %v", err)
	}
}

// TestPrioSemCapacityGrowth: raising capacity wakes queued waiters.
func TestPrioSemCapacityGrowth(t *testing.T) {
	s := newPrioSem(0)
	errc := make(chan error, 1)
	go func() { errc <- s.acquire(context.Background(), false) }()
	waitForWaiters(t, s, 1)
	s.setCapacity(1)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("capacity growth did not wake the waiter")
	}
}

func waitForWaiters(t *testing.T, s *prioSem, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		got := len(s.interactive) + len(s.batch)
		s.mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d queued waiters (have %d)", n, got)
		}
		time.Sleep(time.Millisecond)
	}
}
