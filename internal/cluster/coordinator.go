package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrThrottled means the tenant's token bucket could not pay for the
	// batch (HTTP 429).
	ErrThrottled = errors.New("cluster: tenant rate limit exceeded")
	// ErrNoWorkers means no registered worker has a current heartbeat
	// (HTTP 503).
	ErrNoWorkers = errors.New("cluster: no live workers")
	// ErrBadItem wraps malformed batch items (HTTP 400).
	ErrBadItem = errors.New("cluster: invalid item")
)

// CoordinatorConfig sizes the fleet head.
type CoordinatorConfig struct {
	// HeartbeatEvery is the cadence advertised to workers (default 2 s).
	HeartbeatEvery time.Duration
	// ExpireAfter is how stale a worker's heartbeat may get before the
	// coordinator stops routing to it (default 3 × HeartbeatEvery).
	ExpireAfter time.Duration
	// TenantRate refills each tenant's token bucket, items/second;
	// <= 0 disables rate limiting.
	TenantRate float64
	// TenantBurst is the bucket size (default 256 items).
	TenantBurst int
	// MaxCacheEntries bounds the fleet result cache (default 4096,
	// oldest-first eviction).
	MaxCacheEntries int
	// BreakerThreshold is how many consecutive transport failures trip
	// a worker's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker holds the worker
	// out of rotation before half-opening for a probe (default 5 s).
	BreakerCooldown time.Duration
	// NoWorkersPatience is how long a dispatch waits out a transient
	// worker drought — registered workers exist but none is currently
	// routable (tripped breakers, missed heartbeats) — before failing
	// the batch with ErrNoWorkers. Batches against an empty registry
	// still fail fast. Default BreakerCooldown + 2 × HeartbeatEvery;
	// negative disables the patience.
	NoWorkersPatience time.Duration
	// HedgeAfter is the latency after which a slice is hedged onto a
	// second live worker, first result winning. Zero (the default)
	// adapts the threshold to recent slice latencies; negative disables
	// hedging.
	HedgeAfter time.Duration
	// Client dials workers; nil uses a default client with no overall
	// timeout (simulations are long; cancellation flows through the
	// batch context).
	Client *http.Client
	// Logf receives operational events (worker death, re-shards); nil
	// means log.Printf.
	Logf func(format string, args ...any)
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Second
	}
	if c.ExpireAfter <= 0 {
		c.ExpireAfter = 3 * c.HeartbeatEvery
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 256
	}
	if c.MaxCacheEntries <= 0 {
		c.MaxCacheEntries = 4096
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.NoWorkersPatience == 0 {
		c.NoWorkersPatience = c.BreakerCooldown + 2*c.HeartbeatEvery
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Coordinator is the fleet head: it tracks registered workers through
// registration and heartbeats, shards batches across the live ones with
// indexed result slots, re-shards slices lost to worker death, and
// fronts everything with a fleet-wide single-flight content-addressed
// result cache.
type Coordinator struct {
	cfg     CoordinatorConfig
	metrics *Metrics
	limiter *Limiter
	sem     *prioSem
	now     func() time.Time

	mu         sync.Mutex
	workers    map[string]*workerState
	cache      map[string]ItemResult
	cacheOrder []string
	inflight   map[string]*flight

	// latMu guards the recent-slice-latency ring the adaptive hedge
	// threshold derives from.
	latMu sync.Mutex
	lat   [64]time.Duration
	latN  int
}

type workerState struct {
	info     RegisterRequest
	lastSeen time.Time
	// dead marks a worker that failed a dispatch; routing stops
	// immediately (faster than heartbeat expiry) until it heartbeats or
	// re-registers.
	dead bool
	// brk holds the worker's transport circuit breaker; unlike dead, a
	// tripped breaker survives heartbeats until its cooldown expires
	// and a half-open probe succeeds.
	brk breaker
}

// flight is one in-progress batch item; fleet-wide single-flight means
// every concurrent batch wanting the same key blocks here while exactly
// one worker simulates it.
type flight struct {
	done chan struct{}
	res  ItemResult
	err  error
}

// NewCoordinator builds a coordinator with no workers yet.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		now:      time.Now,
		workers:  make(map[string]*workerState),
		cache:    make(map[string]ItemResult),
		inflight: make(map[string]*flight),
		sem:      newPrioSem(0),
	}
	c.limiter = NewLimiter(cfg.TenantRate, cfg.TenantBurst, func() time.Time { return c.now() })
	return c
}

// WithMetrics attaches the cluster telemetry families.
func (c *Coordinator) WithMetrics(m *Metrics) *Coordinator {
	c.metrics = m
	return c
}

// WithNow injects a clock (tests drive heartbeat expiry and token
// refill deterministically).
func (c *Coordinator) WithNow(now func() time.Time) *Coordinator {
	c.now = now
	return c
}

// Register records (or refreshes — registration is idempotent) a
// worker.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.ID == "" || req.Addr == "" {
		return RegisterResponse{}, fmt.Errorf("%w: register needs id and addr", ErrBadItem)
	}
	if req.Workers < 1 {
		req.Workers = 1
	}
	c.mu.Lock()
	c.workers[req.ID] = &workerState{info: req, lastSeen: c.now()}
	c.refreshLiveLocked()
	c.mu.Unlock()
	return RegisterResponse{
		HeartbeatEveryMS: c.cfg.HeartbeatEvery.Milliseconds(),
		ExpireAfterMS:    c.cfg.ExpireAfter.Milliseconds(),
	}, nil
}

// Heartbeat refreshes a worker's liveness; unknown ids report false and
// the worker must re-register. A heartbeat revives a worker previously
// declared dead (heartbeat flap), since a reachable worker is a usable
// worker.
func (c *Coordinator) Heartbeat(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return false
	}
	w.lastSeen = c.now()
	w.dead = false
	c.refreshLiveLocked()
	return true
}

// WorkersLive counts workers the coordinator would route to right now.
func (c *Coordinator) WorkersLive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.liveLocked())
}

// WorkerList snapshots every registered worker (GET /v1/cluster/workers).
func (c *Coordinator) WorkerList() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{
			ID:         w.info.ID,
			Addr:       w.info.Addr,
			Workers:    w.info.Workers,
			Live:       c.isLiveLocked(w),
			LastSeenMS: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (c *Coordinator) isLiveLocked(w *workerState) bool {
	return !w.dead && c.now().Sub(w.lastSeen) <= c.cfg.ExpireAfter && w.brk.routable(c.now())
}

// liveLocked snapshots live workers sorted by id (stable shard
// assignment within a dispatch round). Callers hold c.mu.
func (c *Coordinator) liveLocked() []*workerState {
	var ws []*workerState
	for _, w := range c.workers {
		if c.isLiveLocked(w) {
			ws = append(ws, w)
		}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].info.ID < ws[j].info.ID })
	return ws
}

// refreshLiveLocked republishes the live-worker gauge and retargets the
// dispatch semaphore at one slice per live worker.
func (c *Coordinator) refreshLiveLocked() {
	n := len(c.liveLocked())
	c.metrics.setWorkersLive(n)
	c.sem.setCapacity(n)
}

// markDead stops routing to a worker that failed a dispatch.
func (c *Coordinator) markDead(id string) {
	c.mu.Lock()
	if w, ok := c.workers[id]; ok {
		w.dead = true
	}
	c.refreshLiveLocked()
	c.mu.Unlock()
}

// Allow debits the tenant's token bucket for n items, counting a
// rejection under hcapp_tenant_throttled_total. The job manager calls
// this at admission so 429 backpressure reaches the submitting client
// synchronously.
func (c *Coordinator) Allow(tenant string, n int) bool {
	if c.limiter.Allow(tenant, n) {
		return true
	}
	c.metrics.throttled(tenant)
	return false
}

// RunBatch is the rate-limited entry: Allow + Execute.
func (c *Coordinator) RunBatch(ctx context.Context, req RunRequest) (*RunResponse, error) {
	if !c.Allow(req.Tenant, len(req.Items)) {
		return nil, ErrThrottled
	}
	return c.Execute(ctx, req)
}

// leaderItem is one item this batch must actually get simulated (cache
// miss, no other flight in progress).
type leaderItem struct {
	idx  int
	key  string
	item Item
	f    *flight
}

// Execute runs a batch to completion: resolve every item against the
// fleet cache and in-flight table, shard the remainder across live
// workers, and assemble results into index-aligned slots so the
// response is byte-identical to a single-node run regardless of fleet
// width, worker deaths, or scheduling. Rate limiting is the caller's
// concern (RunBatch applies it; hcapp-serve debits at job admission).
func (c *Coordinator) Execute(ctx context.Context, req RunRequest) (*RunResponse, error) {
	if !ValidPriority(req.Priority) {
		return nil, fmt.Errorf("%w: unknown priority %q", ErrBadItem, req.Priority)
	}
	interactive := req.Priority == PriorityInteractive

	keys := make([]string, len(req.Items))
	for i, it := range req.Items {
		k, err := it.key(req.Params)
		if err != nil {
			return nil, fmt.Errorf("%w: item %d: %v", ErrBadItem, i, err)
		}
		keys[i] = k
	}
	c.metrics.addItems(len(req.Items))

	resp := &RunResponse{Results: make([]ItemResult, len(req.Items))}
	type idxErr struct {
		idx int
		err error
	}
	var firstErr *idxErr
	record := func(i int, err error) {
		if firstErr == nil || i < firstErr.idx {
			firstErr = &idxErr{i, err}
		}
	}

	pending := make([]int, len(req.Items))
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 {
		var leaders []leaderItem
		var waiters []leaderItem
		hitsBefore := resp.CacheHits
		c.mu.Lock()
		for _, i := range pending {
			key := keys[i]
			if r, ok := c.cache[key]; ok {
				resp.Results[i] = r
				resp.CacheHits++
				continue
			}
			if f, ok := c.inflight[key]; ok {
				waiters = append(waiters, leaderItem{idx: i, key: key, f: f})
				continue
			}
			f := &flight{done: make(chan struct{})}
			c.inflight[key] = f
			leaders = append(leaders, leaderItem{idx: i, key: key, item: req.Items[i], f: f})
		}
		c.mu.Unlock()
		c.metrics.addCacheHits(resp.CacheHits - hitsBefore)

		if len(leaders) > 0 {
			c.dispatch(ctx, req.Params, interactive, leaders)
		}

		pending = pending[:0]
		for _, li := range append(leaders, waiters...) {
			select {
			case <-li.f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			switch {
			case li.f.err == nil:
				resp.Results[li.idx] = li.f.res
			case errors.Is(li.f.err, context.Canceled) || errors.Is(li.f.err, context.DeadlineExceeded):
				// Another batch's cancellation, not a verdict on the
				// item; retry unless our own context died too.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				pending = append(pending, li.idx)
			default:
				record(li.idx, li.f.err)
			}
		}
		if firstErr != nil {
			return nil, firstErr.err
		}
	}
	return resp, nil
}

// dispatch shards the leaders across live workers and resolves every
// flight. Items are striped round-robin over the id-sorted live set;
// a slice whose worker fails is re-striped over the survivors in the
// next round — idempotent, because each item is a pure function of its
// content hash, and deterministic, because results land in index slots.
func (c *Coordinator) dispatch(ctx context.Context, params Params, interactive bool, leaders []leaderItem) {
	remaining := leaders
	var droughtStart time.Time
	for len(remaining) > 0 {
		if err := ctx.Err(); err != nil {
			c.resolveAll(remaining, ItemResult{}, err)
			return
		}
		c.mu.Lock()
		ws := c.liveLocked()
		registered := len(c.workers)
		c.refreshLiveLocked()
		nslices := len(ws)
		if len(remaining) < nslices {
			nslices = len(remaining)
		}
		// Claim the selected workers' breakers before releasing the
		// lock: a half-open worker admits exactly one probe slice.
		for si := 0; si < nslices; si++ {
			ws[si].brk.take()
		}
		c.mu.Unlock()
		if len(ws) == 0 {
			// A drought with registered workers is usually transient:
			// breakers cooling down, or every worker between heartbeats.
			// Wait it out (bounded by NoWorkersPatience) instead of
			// failing a batch a breaker half-open would rescue in a few
			// hundred milliseconds. An empty registry still fails fast.
			if registered > 0 && c.cfg.NoWorkersPatience > 0 {
				if droughtStart.IsZero() {
					droughtStart = time.Now()
				}
				if time.Since(droughtStart) < c.cfg.NoWorkersPatience {
					select {
					case <-ctx.Done():
						c.resolveAll(remaining, ItemResult{}, ctx.Err())
						return
					case <-time.After(150 * time.Millisecond):
					}
					continue
				}
			}
			c.resolveAll(remaining, ItemResult{}, ErrNoWorkers)
			return
		}
		droughtStart = time.Time{}

		slices := make([][]leaderItem, nslices)
		for j, li := range remaining {
			slices[j%nslices] = append(slices[j%nslices], li)
		}

		var (
			wg     sync.WaitGroup
			mu     sync.Mutex
			failed []leaderItem
		)
		for si := range slices {
			w, slice := ws[si].info, slices[si]
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := c.sem.acquire(ctx, interactive); err != nil {
					c.breakerAbort(w.ID)
					mu.Lock()
					failed = append(failed, slice...)
					mu.Unlock()
					return
				}
				defer c.sem.release()
				results, err := c.hedgedPost(ctx, w, params, slice)
				if err != nil {
					mu.Lock()
					failed = append(failed, slice...)
					mu.Unlock()
					if ctx.Err() == nil {
						c.metrics.addResharded(len(slice))
					}
					return
				}
				for k, li := range slice {
					ir := results[k]
					if ir.Error != "" {
						c.resolve(li, ItemResult{}, errors.New(ir.Error))
					} else {
						c.resolve(li, ir, nil)
					}
				}
			}()
		}
		wg.Wait()
		remaining = failed
	}
}

// hedgedPost ships one slice to its primary worker and, if the primary
// has not answered within the hedge threshold, re-issues it to a
// second live worker — first successful response wins. Re-issuing is
// safe because every item is content-addressed: both workers compute
// the identical result, and the loser's response is discarded (its
// in-flight request is cancelled). Worker failures are recorded on the
// per-worker circuit breaker and mark the worker dead; an error return
// means every attempted worker failed and the caller should re-shard.
func (c *Coordinator) hedgedPost(ctx context.Context, primary RegisterRequest, params Params, slice []leaderItem) ([]ItemResult, error) {
	postCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		w       RegisterRequest
		results []ItemResult
		err     error
		hedge   bool
	}
	ch := make(chan outcome, 2)
	post := func(w RegisterRequest, hedge bool) {
		start := time.Now()
		results, err := c.postSlice(postCtx, w, params, slice)
		switch {
		case err == nil:
			c.noteWorkerResult(w.ID, true)
			c.observeSliceLatency(time.Since(start))
		case postCtx.Err() != nil:
			// Our own cancellation (the batch died or the other post
			// already won), not a verdict on the worker — but release the
			// probe slot a half-open breaker may be holding for us.
			c.breakerAbort(w.ID)
		default:
			c.cfg.Logf("cluster: worker %s (%s) failed a slice (%d items): %v",
				w.ID, w.Addr, len(slice), err)
			c.noteWorkerResult(w.ID, false)
			c.markDead(w.ID)
		}
		ch <- outcome{w: w, results: results, err: err, hedge: hedge}
	}
	go post(primary, false)

	var hedgeC <-chan time.Time
	if d := c.hedgeDelay(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	outstanding := 1
	var firstErr error
	for {
		select {
		case out := <-ch:
			outstanding--
			if out.err == nil {
				if out.hedge {
					c.metrics.addHedgeWins()
				}
				return out.results, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if h, ok := c.pickHedge(primary.ID); ok {
				c.metrics.addHedged(len(slice))
				outstanding++
				go post(h, true)
			}
		case <-ctx.Done():
			// The buffered channel lets the in-flight posts finish and
			// exit without a reader.
			return nil, ctx.Err()
		}
	}
}

// pickHedge claims the first live worker other than the primary as a
// hedge target.
func (c *Coordinator) pickHedge(primaryID string) (RegisterRequest, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.liveLocked() {
		if w.info.ID != primaryID {
			w.brk.take()
			return w.info, true
		}
	}
	return RegisterRequest{}, false
}

// noteWorkerResult records a slice outcome on the worker's breaker,
// tripping it after BreakerThreshold consecutive failures (or one
// failed half-open probe).
func (c *Coordinator) noteWorkerResult(id string, ok bool) {
	c.mu.Lock()
	w, exists := c.workers[id]
	if !exists {
		c.mu.Unlock()
		return
	}
	wasOpen := w.brk.state == brkOpen
	tripped := w.brk.result(ok, c.cfg.BreakerThreshold, c.now(), c.cfg.BreakerCooldown)
	fails := w.brk.consecFails
	c.metrics.setBreakerState(id, w.brk.state)
	c.refreshLiveLocked()
	c.mu.Unlock()
	if tripped && !wasOpen {
		c.metrics.addBreakerTrip()
		c.cfg.Logf("cluster: worker %s breaker tripped after %d consecutive failures (cooldown %s)",
			id, fails, c.cfg.BreakerCooldown)
	}
}

// breakerAbort releases a claimed probe slot without an outcome.
func (c *Coordinator) breakerAbort(id string) {
	c.mu.Lock()
	if w, ok := c.workers[id]; ok {
		w.brk.abort()
	}
	c.refreshLiveLocked()
	c.mu.Unlock()
}

// observeSliceLatency feeds the adaptive hedge threshold.
func (c *Coordinator) observeSliceLatency(d time.Duration) {
	c.latMu.Lock()
	c.lat[c.latN%len(c.lat)] = d
	c.latN++
	c.latMu.Unlock()
}

// hedgeDelay resolves the hedge threshold: the configured HedgeAfter
// when set, 0 (disabled) when negative, otherwise adaptively 2× the
// p90 of recent slice latencies — hedging targets stragglers, not the
// ordinary tail.
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter
	}
	if c.cfg.HedgeAfter < 0 {
		return 0
	}
	c.latMu.Lock()
	n := c.latN
	if n > len(c.lat) {
		n = len(c.lat)
	}
	sample := make([]time.Duration, n)
	copy(sample, c.lat[:n])
	c.latMu.Unlock()
	if n < 8 {
		// Too little signal to call anything a straggler yet.
		return 2 * time.Second
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	d := 2 * sample[n*9/10]
	if min := 500 * time.Millisecond; d < min {
		d = min
	}
	return d
}

// postSlice ships one slice to one worker and returns its index-aligned
// results.
func (c *Coordinator) postSlice(ctx context.Context, w RegisterRequest, params Params, slice []leaderItem) ([]ItemResult, error) {
	items := make([]Item, len(slice))
	for i, li := range slice {
		items[i] = li.item
	}
	body, err := json.Marshal(RunRequest{Params: params, Items: items})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Addr+"/v1/worker/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	hr, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker %s: status %d", w.ID, hr.StatusCode)
	}
	var resp RunResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(slice) {
		return nil, fmt.Errorf("worker %s: %d results for %d items", w.ID, len(resp.Results), len(slice))
	}
	return resp.Results, nil
}

// resolve finishes one flight: successful results enter the fleet cache
// before waiters wake, so a spec simulated by any worker is never
// simulated again.
func (c *Coordinator) resolve(li leaderItem, res ItemResult, err error) {
	c.mu.Lock()
	li.f.res, li.f.err = res, err
	delete(c.inflight, li.key)
	if err == nil {
		if _, ok := c.cache[li.key]; !ok {
			c.cache[li.key] = res
			c.cacheOrder = append(c.cacheOrder, li.key)
			for len(c.cacheOrder) > c.cfg.MaxCacheEntries {
				delete(c.cache, c.cacheOrder[0])
				c.cacheOrder = c.cacheOrder[1:]
			}
		}
	}
	c.mu.Unlock()
	close(li.f.done)
}

func (c *Coordinator) resolveAll(lis []leaderItem, res ItemResult, err error) {
	for _, li := range lis {
		c.resolve(li, res, err)
	}
}

// CacheLen reports fleet-cache occupancy (tests, introspection).
func (c *Coordinator) CacheLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}

// Handler mounts the coordinator's HTTP surface:
//
//	POST /v1/cluster/register   worker announces itself
//	POST /v1/cluster/heartbeat  worker liveness
//	POST /v1/cluster/run        execute a batch on the fleet
//	GET  /v1/cluster/workers    registered workers + liveness
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/register", c.handleRegister)
	mux.HandleFunc("/v1/cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/cluster/run", c.handleRun)
	mux.HandleFunc("/v1/cluster/workers", c.handleWorkers)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid register request: %v", err)
		return
	}
	resp, err := c.Register(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid heartbeat: %v", err)
		return
	}
	if !c.Heartbeat(req.ID) {
		writeError(w, http.StatusNotFound, "unknown worker %q: re-register", req.ID)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid run request: %v", err)
		return
	}
	resp, err := c.RunBatch(r.Context(), req)
	switch {
	case errors.Is(err, ErrThrottled):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrNoWorkers):
		// A worker may register or heartbeat back within one cadence.
		w.Header().Set("Retry-After", retryAfterSeconds(c.cfg.HeartbeatEvery))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrBadItem):
		writeError(w, http.StatusBadRequest, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Workers []WorkerInfo `json:"workers"`
	}{c.WorkerList()})
}
