package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrThrottled means the tenant's token bucket could not pay for the
	// batch (HTTP 429).
	ErrThrottled = errors.New("cluster: tenant rate limit exceeded")
	// ErrNoWorkers means no registered worker has a current heartbeat
	// (HTTP 503).
	ErrNoWorkers = errors.New("cluster: no live workers")
	// ErrBadItem wraps malformed batch items (HTTP 400).
	ErrBadItem = errors.New("cluster: invalid item")
)

// CoordinatorConfig sizes the fleet head.
type CoordinatorConfig struct {
	// HeartbeatEvery is the cadence advertised to workers (default 2 s).
	HeartbeatEvery time.Duration
	// ExpireAfter is how stale a worker's heartbeat may get before the
	// coordinator stops routing to it (default 3 × HeartbeatEvery).
	ExpireAfter time.Duration
	// TenantRate refills each tenant's token bucket, items/second;
	// <= 0 disables rate limiting.
	TenantRate float64
	// TenantBurst is the bucket size (default 256 items).
	TenantBurst int
	// MaxCacheEntries bounds the fleet result cache (default 4096,
	// oldest-first eviction).
	MaxCacheEntries int
	// Client dials workers; nil uses a default client with no overall
	// timeout (simulations are long; cancellation flows through the
	// batch context).
	Client *http.Client
	// Logf receives operational events (worker death, re-shards); nil
	// means log.Printf.
	Logf func(format string, args ...any)
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Second
	}
	if c.ExpireAfter <= 0 {
		c.ExpireAfter = 3 * c.HeartbeatEvery
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 256
	}
	if c.MaxCacheEntries <= 0 {
		c.MaxCacheEntries = 4096
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Coordinator is the fleet head: it tracks registered workers through
// registration and heartbeats, shards batches across the live ones with
// indexed result slots, re-shards slices lost to worker death, and
// fronts everything with a fleet-wide single-flight content-addressed
// result cache.
type Coordinator struct {
	cfg     CoordinatorConfig
	metrics *Metrics
	limiter *Limiter
	sem     *prioSem
	now     func() time.Time

	mu         sync.Mutex
	workers    map[string]*workerState
	cache      map[string]ItemResult
	cacheOrder []string
	inflight   map[string]*flight
}

type workerState struct {
	info     RegisterRequest
	lastSeen time.Time
	// dead marks a worker that failed a dispatch; routing stops
	// immediately (faster than heartbeat expiry) until it heartbeats or
	// re-registers.
	dead bool
}

// flight is one in-progress batch item; fleet-wide single-flight means
// every concurrent batch wanting the same key blocks here while exactly
// one worker simulates it.
type flight struct {
	done chan struct{}
	res  ItemResult
	err  error
}

// NewCoordinator builds a coordinator with no workers yet.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		now:      time.Now,
		workers:  make(map[string]*workerState),
		cache:    make(map[string]ItemResult),
		inflight: make(map[string]*flight),
		sem:      newPrioSem(0),
	}
	c.limiter = NewLimiter(cfg.TenantRate, cfg.TenantBurst, func() time.Time { return c.now() })
	return c
}

// WithMetrics attaches the cluster telemetry families.
func (c *Coordinator) WithMetrics(m *Metrics) *Coordinator {
	c.metrics = m
	return c
}

// WithNow injects a clock (tests drive heartbeat expiry and token
// refill deterministically).
func (c *Coordinator) WithNow(now func() time.Time) *Coordinator {
	c.now = now
	return c
}

// Register records (or refreshes — registration is idempotent) a
// worker.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.ID == "" || req.Addr == "" {
		return RegisterResponse{}, fmt.Errorf("%w: register needs id and addr", ErrBadItem)
	}
	if req.Workers < 1 {
		req.Workers = 1
	}
	c.mu.Lock()
	c.workers[req.ID] = &workerState{info: req, lastSeen: c.now()}
	c.refreshLiveLocked()
	c.mu.Unlock()
	return RegisterResponse{
		HeartbeatEveryMS: c.cfg.HeartbeatEvery.Milliseconds(),
		ExpireAfterMS:    c.cfg.ExpireAfter.Milliseconds(),
	}, nil
}

// Heartbeat refreshes a worker's liveness; unknown ids report false and
// the worker must re-register. A heartbeat revives a worker previously
// declared dead (heartbeat flap), since a reachable worker is a usable
// worker.
func (c *Coordinator) Heartbeat(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return false
	}
	w.lastSeen = c.now()
	w.dead = false
	c.refreshLiveLocked()
	return true
}

// WorkersLive counts workers the coordinator would route to right now.
func (c *Coordinator) WorkersLive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.liveLocked())
}

// WorkerList snapshots every registered worker (GET /v1/cluster/workers).
func (c *Coordinator) WorkerList() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{
			ID:         w.info.ID,
			Addr:       w.info.Addr,
			Workers:    w.info.Workers,
			Live:       c.isLiveLocked(w),
			LastSeenMS: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (c *Coordinator) isLiveLocked(w *workerState) bool {
	return !w.dead && c.now().Sub(w.lastSeen) <= c.cfg.ExpireAfter
}

// liveLocked snapshots live workers sorted by id (stable shard
// assignment within a dispatch round). Callers hold c.mu.
func (c *Coordinator) liveLocked() []*workerState {
	var ws []*workerState
	for _, w := range c.workers {
		if c.isLiveLocked(w) {
			ws = append(ws, w)
		}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].info.ID < ws[j].info.ID })
	return ws
}

// refreshLiveLocked republishes the live-worker gauge and retargets the
// dispatch semaphore at one slice per live worker.
func (c *Coordinator) refreshLiveLocked() {
	n := len(c.liveLocked())
	c.metrics.setWorkersLive(n)
	c.sem.setCapacity(n)
}

// markDead stops routing to a worker that failed a dispatch.
func (c *Coordinator) markDead(id string) {
	c.mu.Lock()
	if w, ok := c.workers[id]; ok {
		w.dead = true
	}
	c.refreshLiveLocked()
	c.mu.Unlock()
}

// Allow debits the tenant's token bucket for n items, counting a
// rejection under hcapp_tenant_throttled_total. The job manager calls
// this at admission so 429 backpressure reaches the submitting client
// synchronously.
func (c *Coordinator) Allow(tenant string, n int) bool {
	if c.limiter.Allow(tenant, n) {
		return true
	}
	c.metrics.throttled(tenant)
	return false
}

// RunBatch is the rate-limited entry: Allow + Execute.
func (c *Coordinator) RunBatch(ctx context.Context, req RunRequest) (*RunResponse, error) {
	if !c.Allow(req.Tenant, len(req.Items)) {
		return nil, ErrThrottled
	}
	return c.Execute(ctx, req)
}

// leaderItem is one item this batch must actually get simulated (cache
// miss, no other flight in progress).
type leaderItem struct {
	idx  int
	key  string
	item Item
	f    *flight
}

// Execute runs a batch to completion: resolve every item against the
// fleet cache and in-flight table, shard the remainder across live
// workers, and assemble results into index-aligned slots so the
// response is byte-identical to a single-node run regardless of fleet
// width, worker deaths, or scheduling. Rate limiting is the caller's
// concern (RunBatch applies it; hcapp-serve debits at job admission).
func (c *Coordinator) Execute(ctx context.Context, req RunRequest) (*RunResponse, error) {
	if !ValidPriority(req.Priority) {
		return nil, fmt.Errorf("%w: unknown priority %q", ErrBadItem, req.Priority)
	}
	interactive := req.Priority == PriorityInteractive

	keys := make([]string, len(req.Items))
	for i, it := range req.Items {
		k, err := it.key(req.Params)
		if err != nil {
			return nil, fmt.Errorf("%w: item %d: %v", ErrBadItem, i, err)
		}
		keys[i] = k
	}
	c.metrics.addItems(len(req.Items))

	resp := &RunResponse{Results: make([]ItemResult, len(req.Items))}
	type idxErr struct {
		idx int
		err error
	}
	var firstErr *idxErr
	record := func(i int, err error) {
		if firstErr == nil || i < firstErr.idx {
			firstErr = &idxErr{i, err}
		}
	}

	pending := make([]int, len(req.Items))
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 {
		var leaders []leaderItem
		var waiters []leaderItem
		hitsBefore := resp.CacheHits
		c.mu.Lock()
		for _, i := range pending {
			key := keys[i]
			if r, ok := c.cache[key]; ok {
				resp.Results[i] = r
				resp.CacheHits++
				continue
			}
			if f, ok := c.inflight[key]; ok {
				waiters = append(waiters, leaderItem{idx: i, key: key, f: f})
				continue
			}
			f := &flight{done: make(chan struct{})}
			c.inflight[key] = f
			leaders = append(leaders, leaderItem{idx: i, key: key, item: req.Items[i], f: f})
		}
		c.mu.Unlock()
		c.metrics.addCacheHits(resp.CacheHits - hitsBefore)

		if len(leaders) > 0 {
			c.dispatch(ctx, req.Params, interactive, leaders)
		}

		pending = pending[:0]
		for _, li := range append(leaders, waiters...) {
			select {
			case <-li.f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			switch {
			case li.f.err == nil:
				resp.Results[li.idx] = li.f.res
			case errors.Is(li.f.err, context.Canceled) || errors.Is(li.f.err, context.DeadlineExceeded):
				// Another batch's cancellation, not a verdict on the
				// item; retry unless our own context died too.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				pending = append(pending, li.idx)
			default:
				record(li.idx, li.f.err)
			}
		}
		if firstErr != nil {
			return nil, firstErr.err
		}
	}
	return resp, nil
}

// dispatch shards the leaders across live workers and resolves every
// flight. Items are striped round-robin over the id-sorted live set;
// a slice whose worker fails is re-striped over the survivors in the
// next round — idempotent, because each item is a pure function of its
// content hash, and deterministic, because results land in index slots.
func (c *Coordinator) dispatch(ctx context.Context, params Params, interactive bool, leaders []leaderItem) {
	remaining := leaders
	for len(remaining) > 0 {
		if err := ctx.Err(); err != nil {
			c.resolveAll(remaining, ItemResult{}, err)
			return
		}
		c.mu.Lock()
		ws := c.liveLocked()
		c.refreshLiveLocked()
		c.mu.Unlock()
		if len(ws) == 0 {
			c.resolveAll(remaining, ItemResult{}, ErrNoWorkers)
			return
		}

		nslices := len(ws)
		if len(remaining) < nslices {
			nslices = len(remaining)
		}
		slices := make([][]leaderItem, nslices)
		for j, li := range remaining {
			slices[j%nslices] = append(slices[j%nslices], li)
		}

		var (
			wg     sync.WaitGroup
			mu     sync.Mutex
			failed []leaderItem
		)
		for si := range slices {
			w, slice := ws[si].info, slices[si]
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := c.sem.acquire(ctx, interactive); err != nil {
					mu.Lock()
					failed = append(failed, slice...)
					mu.Unlock()
					return
				}
				defer c.sem.release()
				results, err := c.postSlice(ctx, w, params, slice)
				if err != nil {
					mu.Lock()
					failed = append(failed, slice...)
					mu.Unlock()
					if ctx.Err() == nil {
						// A real worker failure, not our own cancellation:
						// stop routing to it and re-shard its slice.
						c.cfg.Logf("cluster: worker %s (%s) lost mid-slice (%d items): %v; re-sharding",
							w.ID, w.Addr, len(slice), err)
						c.markDead(w.ID)
						c.metrics.addResharded(len(slice))
					}
					return
				}
				for k, li := range slice {
					ir := results[k]
					if ir.Error != "" {
						c.resolve(li, ItemResult{}, errors.New(ir.Error))
					} else {
						c.resolve(li, ir, nil)
					}
				}
			}()
		}
		wg.Wait()
		remaining = failed
	}
}

// postSlice ships one slice to one worker and returns its index-aligned
// results.
func (c *Coordinator) postSlice(ctx context.Context, w RegisterRequest, params Params, slice []leaderItem) ([]ItemResult, error) {
	items := make([]Item, len(slice))
	for i, li := range slice {
		items[i] = li.item
	}
	body, err := json.Marshal(RunRequest{Params: params, Items: items})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Addr+"/v1/worker/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	hr, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker %s: status %d", w.ID, hr.StatusCode)
	}
	var resp RunResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(slice) {
		return nil, fmt.Errorf("worker %s: %d results for %d items", w.ID, len(resp.Results), len(slice))
	}
	return resp.Results, nil
}

// resolve finishes one flight: successful results enter the fleet cache
// before waiters wake, so a spec simulated by any worker is never
// simulated again.
func (c *Coordinator) resolve(li leaderItem, res ItemResult, err error) {
	c.mu.Lock()
	li.f.res, li.f.err = res, err
	delete(c.inflight, li.key)
	if err == nil {
		if _, ok := c.cache[li.key]; !ok {
			c.cache[li.key] = res
			c.cacheOrder = append(c.cacheOrder, li.key)
			for len(c.cacheOrder) > c.cfg.MaxCacheEntries {
				delete(c.cache, c.cacheOrder[0])
				c.cacheOrder = c.cacheOrder[1:]
			}
		}
	}
	c.mu.Unlock()
	close(li.f.done)
}

func (c *Coordinator) resolveAll(lis []leaderItem, res ItemResult, err error) {
	for _, li := range lis {
		c.resolve(li, res, err)
	}
}

// CacheLen reports fleet-cache occupancy (tests, introspection).
func (c *Coordinator) CacheLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}

// Handler mounts the coordinator's HTTP surface:
//
//	POST /v1/cluster/register   worker announces itself
//	POST /v1/cluster/heartbeat  worker liveness
//	POST /v1/cluster/run        execute a batch on the fleet
//	GET  /v1/cluster/workers    registered workers + liveness
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/register", c.handleRegister)
	mux.HandleFunc("/v1/cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/cluster/run", c.handleRun)
	mux.HandleFunc("/v1/cluster/workers", c.handleWorkers)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid register request: %v", err)
		return
	}
	resp, err := c.Register(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid heartbeat: %v", err)
		return
	}
	if !c.Heartbeat(req.ID) {
		writeError(w, http.StatusNotFound, "unknown worker %q: re-register", req.ID)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid run request: %v", err)
		return
	}
	resp, err := c.RunBatch(r.Context(), req)
	switch {
	case errors.Is(err, ErrThrottled):
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrNoWorkers):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrBadItem):
		writeError(w, http.StatusBadRequest, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Workers []WorkerInfo `json:"workers"`
	}{c.WorkerList()})
}
