package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"hcapp/internal/tracing"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrThrottled means the tenant's token bucket could not pay for the
	// batch (HTTP 429).
	ErrThrottled = errors.New("cluster: tenant rate limit exceeded")
	// ErrNoWorkers means no registered worker has a current heartbeat
	// (HTTP 503).
	ErrNoWorkers = errors.New("cluster: no live workers")
	// ErrBadItem wraps malformed batch items (HTTP 400).
	ErrBadItem = errors.New("cluster: invalid item")
)

// CoordinatorConfig sizes the fleet head.
type CoordinatorConfig struct {
	// HeartbeatEvery is the cadence advertised to workers (default 2 s).
	HeartbeatEvery time.Duration
	// ExpireAfter is how stale a worker's heartbeat may get before the
	// coordinator stops routing to it (default 3 × HeartbeatEvery).
	ExpireAfter time.Duration
	// TenantRate refills each tenant's token bucket, items/second;
	// <= 0 disables rate limiting.
	TenantRate float64
	// TenantBurst is the bucket size (default 256 items).
	TenantBurst int
	// MaxCacheEntries bounds the fleet result cache (default 4096,
	// oldest-first eviction).
	MaxCacheEntries int
	// BreakerThreshold is how many consecutive transport failures trip
	// a worker's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker holds the worker
	// out of rotation before half-opening for a probe (default 5 s).
	BreakerCooldown time.Duration
	// NoWorkersPatience is how long a dispatch waits out a transient
	// worker drought — registered workers exist but none is currently
	// routable (tripped breakers, missed heartbeats) — before failing
	// the batch with ErrNoWorkers. Batches against an empty registry
	// still fail fast. Default BreakerCooldown + 2 × HeartbeatEvery;
	// negative disables the patience.
	NoWorkersPatience time.Duration
	// HedgeAfter is the latency after which a slice is hedged onto a
	// second live worker, first result winning. Zero (the default)
	// adapts the threshold to recent slice latencies; negative disables
	// hedging.
	HedgeAfter time.Duration
	// Client dials workers; nil uses a default client with no overall
	// timeout (simulations are long; cancellation flows through the
	// batch context).
	Client *http.Client
	// Logf receives operational events (worker death, re-shards); nil
	// means log.Printf.
	Logf func(format string, args ...any)
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Second
	}
	if c.ExpireAfter <= 0 {
		c.ExpireAfter = 3 * c.HeartbeatEvery
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 256
	}
	if c.MaxCacheEntries <= 0 {
		c.MaxCacheEntries = 4096
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.NoWorkersPatience == 0 {
		c.NoWorkersPatience = c.BreakerCooldown + 2*c.HeartbeatEvery
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Coordinator is the fleet head: it tracks registered workers through
// registration and heartbeats, shards batches across the live ones with
// indexed result slots, re-shards slices lost to worker death, and
// fronts everything with a fleet-wide single-flight content-addressed
// result cache.
type Coordinator struct {
	cfg     CoordinatorConfig
	metrics *Metrics
	tracer  *tracing.Tracer
	limiter *Limiter
	sem     *prioSem
	now     func() time.Time

	mu         sync.Mutex
	workers    map[string]*workerState
	cache      map[string]ItemResult
	cacheOrder []string
	inflight   map[string]*flight
}

type workerState struct {
	info     RegisterRequest
	lastSeen time.Time
	// dead marks a worker that failed a dispatch; routing stops
	// immediately (faster than heartbeat expiry) until it heartbeats or
	// re-registers.
	dead bool
	// brk holds the worker's transport circuit breaker; unlike dead, a
	// tripped breaker survives heartbeats until its cooldown expires
	// and a half-open probe succeeds.
	brk breaker
}

// flight is one in-progress batch item; fleet-wide single-flight means
// every concurrent batch wanting the same key blocks here while exactly
// one worker simulates it.
type flight struct {
	done chan struct{}
	res  ItemResult
	err  error
}

// NewCoordinator builds a coordinator with no workers yet.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		now:      time.Now,
		workers:  make(map[string]*workerState),
		cache:    make(map[string]ItemResult),
		inflight: make(map[string]*flight),
		sem:      newPrioSem(0),
	}
	c.limiter = NewLimiter(cfg.TenantRate, cfg.TenantBurst, func() time.Time { return c.now() })
	return c
}

// WithMetrics attaches the cluster telemetry families.
func (c *Coordinator) WithMetrics(m *Metrics) *Coordinator {
	c.metrics = m
	return c
}

// WithTracer attaches the span store batches record into. Span
// *emission* is driven by the submitting context (a batch whose context
// carries no trace context stays untraced); the tracer is where
// coordinator-side spans and ingested worker spans land.
func (c *Coordinator) WithTracer(t *tracing.Tracer) *Coordinator {
	c.tracer = t
	return c
}

// WithNow injects a clock (tests drive heartbeat expiry and token
// refill deterministically).
func (c *Coordinator) WithNow(now func() time.Time) *Coordinator {
	c.now = now
	return c
}

// Register records (or refreshes — registration is idempotent) a
// worker.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.ID == "" || req.Addr == "" {
		return RegisterResponse{}, fmt.Errorf("%w: register needs id and addr", ErrBadItem)
	}
	if req.Workers < 1 {
		req.Workers = 1
	}
	c.mu.Lock()
	c.workers[req.ID] = &workerState{info: req, lastSeen: c.now()}
	c.refreshLiveLocked()
	c.mu.Unlock()
	return RegisterResponse{
		HeartbeatEveryMS: c.cfg.HeartbeatEvery.Milliseconds(),
		ExpireAfterMS:    c.cfg.ExpireAfter.Milliseconds(),
	}, nil
}

// Heartbeat refreshes a worker's liveness; unknown ids report false and
// the worker must re-register. A heartbeat revives a worker previously
// declared dead (heartbeat flap), since a reachable worker is a usable
// worker.
func (c *Coordinator) Heartbeat(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return false
	}
	w.lastSeen = c.now()
	w.dead = false
	c.refreshLiveLocked()
	return true
}

// WorkersLive counts workers the coordinator would route to right now.
func (c *Coordinator) WorkersLive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.liveLocked())
}

// WorkerList snapshots every registered worker (GET /v1/cluster/workers).
func (c *Coordinator) WorkerList() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{
			ID:         w.info.ID,
			Addr:       w.info.Addr,
			Workers:    w.info.Workers,
			Live:       c.isLiveLocked(w),
			LastSeenMS: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (c *Coordinator) isLiveLocked(w *workerState) bool {
	return !w.dead && c.now().Sub(w.lastSeen) <= c.cfg.ExpireAfter && w.brk.routable(c.now())
}

// liveLocked snapshots live workers sorted by id (stable shard
// assignment within a dispatch round). Callers hold c.mu.
func (c *Coordinator) liveLocked() []*workerState {
	var ws []*workerState
	for _, w := range c.workers {
		if c.isLiveLocked(w) {
			ws = append(ws, w)
		}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].info.ID < ws[j].info.ID })
	return ws
}

// refreshLiveLocked republishes the live-worker gauge and retargets the
// dispatch semaphore at one slice per live worker.
func (c *Coordinator) refreshLiveLocked() {
	n := len(c.liveLocked())
	c.metrics.setWorkersLive(n)
	c.sem.setCapacity(n)
}

// markDead stops routing to a worker that failed a dispatch.
func (c *Coordinator) markDead(id string) {
	c.mu.Lock()
	if w, ok := c.workers[id]; ok {
		w.dead = true
	}
	c.refreshLiveLocked()
	c.mu.Unlock()
}

// Allow debits the tenant's token bucket for n items, counting a
// rejection under hcapp_tenant_throttled_total. The job manager calls
// this at admission so 429 backpressure reaches the submitting client
// synchronously.
func (c *Coordinator) Allow(tenant string, n int) bool {
	if c.limiter.Allow(tenant, n) {
		return true
	}
	c.metrics.throttled(tenant)
	return false
}

// RunBatch is the rate-limited entry: Allow + Execute.
func (c *Coordinator) RunBatch(ctx context.Context, req RunRequest) (*RunResponse, error) {
	if !c.Allow(req.Tenant, len(req.Items)) {
		return nil, ErrThrottled
	}
	return c.Execute(ctx, req)
}

// leaderItem is one item this batch must actually get simulated (cache
// miss, no other flight in progress).
type leaderItem struct {
	idx   int
	key   string
	item  Item
	f     *flight
	trace *itemTrace
}

// itemTrace is the tracing state of one batch item: the item span plus
// an attempt counter, so retries and hedges land as sibling attempt[n]
// spans under one parent instead of orphans. A nil *itemTrace no-ops,
// which is how untraced batches skip all span work.
type itemTrace struct {
	tr   *tracing.Tracer
	span *tracing.ActiveSpan

	mu       sync.Mutex
	attempts int
	done     bool
}

// newAttempt opens the next attempt[n] span; kind is "primary" or
// "hedge". The returned context travels to the worker inside the item.
func (it *itemTrace) newAttempt(worker, kind string) (*tracing.ActiveSpan, *tracing.SpanContext) {
	if it == nil {
		return nil, nil
	}
	it.mu.Lock()
	n := it.attempts
	it.attempts++
	it.mu.Unlock()
	sp := it.tr.StartSpan(it.span.Context(), fmt.Sprintf("attempt[%d]", n))
	sp.SetAttr("worker", worker).SetAttr("kind", kind)
	sc := sp.Context()
	if !sc.Valid() {
		return sp, nil
	}
	return sp, &sc
}

// finish ends the item span once; later outcomes are ignored.
func (it *itemTrace) finish(outcome string) {
	if it == nil {
		return
	}
	it.mu.Lock()
	already := it.done
	it.done = true
	it.mu.Unlock()
	if !already {
		it.span.SetAttr("outcome", outcome).End()
	}
}

// Execute runs a batch to completion: resolve every item against the
// fleet cache and in-flight table, shard the remainder across live
// workers, and assemble results into index-aligned slots so the
// response is byte-identical to a single-node run regardless of fleet
// width, worker deaths, or scheduling. Rate limiting is the caller's
// concern (RunBatch applies it; hcapp-serve debits at job admission).
func (c *Coordinator) Execute(ctx context.Context, req RunRequest) (*RunResponse, error) {
	if !ValidPriority(req.Priority) {
		return nil, fmt.Errorf("%w: unknown priority %q", ErrBadItem, req.Priority)
	}
	interactive := req.Priority == PriorityInteractive

	keys := make([]string, len(req.Items))
	for i, it := range req.Items {
		k, err := it.key(req.Params)
		if err != nil {
			return nil, fmt.Errorf("%w: item %d: %v", ErrBadItem, i, err)
		}
		keys[i] = k
	}
	c.metrics.addItems(len(req.Items))

	// Item spans exist only when the submitting context is traced. Slice
	// assignment and worker identity are span attributes, never tree
	// nodes, so the span-tree structure is identical at every fleet
	// width.
	var itemTraces []*itemTrace
	if tr, parent, ok := tracing.FromContext(ctx); ok {
		itemTraces = make([]*itemTrace, len(req.Items))
		for i := range req.Items {
			sp := tr.StartSpan(parent, fmt.Sprintf("item[%d]", i))
			itemTraces[i] = &itemTrace{tr: tr, span: sp}
		}
		defer func() {
			// Anything still open on the way out was cut short by
			// cancellation or a sibling item's failure.
			for _, it := range itemTraces {
				it.finish("cancelled")
			}
		}()
	}
	itemTraceAt := func(i int) *itemTrace {
		if itemTraces == nil {
			return nil
		}
		return itemTraces[i]
	}

	resp := &RunResponse{Results: make([]ItemResult, len(req.Items))}
	type idxErr struct {
		idx int
		err error
	}
	var firstErr *idxErr
	record := func(i int, err error) {
		if firstErr == nil || i < firstErr.idx {
			firstErr = &idxErr{i, err}
		}
	}

	pending := make([]int, len(req.Items))
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 {
		var leaders []leaderItem
		var waiters []leaderItem
		hitsBefore := resp.CacheHits
		c.mu.Lock()
		for _, i := range pending {
			key := keys[i]
			if r, ok := c.cache[key]; ok {
				resp.Results[i] = r
				resp.CacheHits++
				itemTraceAt(i).finish("cache-hit")
				continue
			}
			if f, ok := c.inflight[key]; ok {
				if it := itemTraceAt(i); it != nil {
					it.span.SetAttr("coalesced", "true")
				}
				waiters = append(waiters, leaderItem{idx: i, key: key, f: f, trace: itemTraceAt(i)})
				continue
			}
			f := &flight{done: make(chan struct{})}
			c.inflight[key] = f
			leaders = append(leaders, leaderItem{idx: i, key: key, item: req.Items[i], f: f, trace: itemTraceAt(i)})
		}
		c.mu.Unlock()
		c.metrics.addCacheHits(resp.CacheHits - hitsBefore)

		if len(leaders) > 0 {
			c.dispatch(ctx, req.Params, interactive, leaders)
		}

		pending = pending[:0]
		for _, li := range append(leaders, waiters...) {
			select {
			case <-li.f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			switch {
			case li.f.err == nil:
				resp.Results[li.idx] = li.f.res
				li.trace.finish("ok")
			case errors.Is(li.f.err, context.Canceled) || errors.Is(li.f.err, context.DeadlineExceeded):
				// Another batch's cancellation, not a verdict on the
				// item; retry unless our own context died too.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				pending = append(pending, li.idx)
			default:
				li.trace.finish("error")
				record(li.idx, li.f.err)
			}
		}
		if firstErr != nil {
			return nil, firstErr.err
		}
	}
	return resp, nil
}

// dispatch shards the leaders across live workers and resolves every
// flight. Items are striped round-robin over the id-sorted live set;
// a slice whose worker fails is re-striped over the survivors in the
// next round — idempotent, because each item is a pure function of its
// content hash, and deterministic, because results land in index slots.
func (c *Coordinator) dispatch(ctx context.Context, params Params, interactive bool, leaders []leaderItem) {
	remaining := leaders
	var droughtStart time.Time
	for len(remaining) > 0 {
		if err := ctx.Err(); err != nil {
			c.resolveAll(remaining, ItemResult{}, err)
			return
		}
		c.mu.Lock()
		ws := c.liveLocked()
		registered := len(c.workers)
		c.refreshLiveLocked()
		nslices := len(ws)
		if len(remaining) < nslices {
			nslices = len(remaining)
		}
		// Claim the selected workers' breakers before releasing the
		// lock: a half-open worker admits exactly one probe slice.
		for si := 0; si < nslices; si++ {
			ws[si].brk.take()
		}
		c.mu.Unlock()
		if len(ws) == 0 {
			// A drought with registered workers is usually transient:
			// breakers cooling down, or every worker between heartbeats.
			// Wait it out (bounded by NoWorkersPatience) instead of
			// failing a batch a breaker half-open would rescue in a few
			// hundred milliseconds. An empty registry still fails fast.
			if registered > 0 && c.cfg.NoWorkersPatience > 0 {
				if droughtStart.IsZero() {
					droughtStart = time.Now()
				}
				if time.Since(droughtStart) < c.cfg.NoWorkersPatience {
					select {
					case <-ctx.Done():
						c.resolveAll(remaining, ItemResult{}, ctx.Err())
						return
					case <-time.After(150 * time.Millisecond):
					}
					continue
				}
			}
			c.resolveAll(remaining, ItemResult{}, ErrNoWorkers)
			return
		}
		droughtStart = time.Time{}

		slices := make([][]leaderItem, nslices)
		for j, li := range remaining {
			slices[j%nslices] = append(slices[j%nslices], li)
		}

		var (
			wg     sync.WaitGroup
			mu     sync.Mutex
			failed []leaderItem
		)
		for si := range slices {
			w, slice := ws[si].info, slices[si]
			wg.Add(1)
			go func() {
				defer wg.Done()
				waitStart := time.Now()
				if err := c.sem.acquire(ctx, interactive); err != nil {
					c.breakerAbort(w.ID)
					mu.Lock()
					failed = append(failed, slice...)
					mu.Unlock()
					return
				}
				c.metrics.observeQueueWait(interactive, time.Since(waitStart))
				defer c.sem.release()
				results, err := c.hedgedPost(ctx, w, params, slice)
				if err != nil {
					mu.Lock()
					failed = append(failed, slice...)
					mu.Unlock()
					if ctx.Err() == nil {
						c.metrics.addResharded(len(slice))
					}
					return
				}
				for k, li := range slice {
					ir := results[k]
					if ir.Error != "" {
						c.resolve(li, ItemResult{}, errors.New(ir.Error))
					} else {
						c.resolve(li, ir, nil)
					}
				}
			}()
		}
		wg.Wait()
		remaining = failed
	}
}

// hedgedPost ships one slice to its primary worker and, if the primary
// has not answered within the hedge threshold, re-issues it to a
// second live worker — first successful response wins. Re-issuing is
// safe because every item is content-addressed: both workers compute
// the identical result, and the loser's response is discarded (its
// in-flight request is cancelled). Worker failures are recorded on the
// per-worker circuit breaker and mark the worker dead; an error return
// means every attempted worker failed and the caller should re-shard.
func (c *Coordinator) hedgedPost(ctx context.Context, primary RegisterRequest, params Params, slice []leaderItem) ([]ItemResult, error) {
	postCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		w     RegisterRequest
		resp  *RunResponse
		err   error
		hedge bool
	}
	ch := make(chan outcome, 2)
	post := func(w RegisterRequest, hedge bool) {
		kind := "primary"
		if hedge {
			kind = "hedge"
		}
		attempts := make([]*tracing.ActiveSpan, len(slice))
		refs := make([]*tracing.SpanContext, len(slice))
		for i, li := range slice {
			attempts[i], refs[i] = li.trace.newAttempt(w.ID, kind)
		}
		start := time.Now()
		resp, err := c.postSlice(postCtx, w, params, slice, refs)
		var spanOutcome string
		switch {
		case err == nil:
			spanOutcome = "ok"
			c.noteWorkerResult(w.ID, true)
			c.observeSliceLatency(time.Since(start))
		case postCtx.Err() != nil:
			// Our own cancellation (the batch died or the other post
			// already won), not a verdict on the worker — but release the
			// probe slot a half-open breaker may be holding for us.
			spanOutcome = "cancelled"
			c.breakerAbort(w.ID)
			c.metrics.observeSlice("cancelled", time.Since(start))
		default:
			spanOutcome = "error"
			c.cfg.Logf("cluster: worker %s (%s) failed a slice (%d items): %v",
				w.ID, w.Addr, len(slice), err)
			c.noteWorkerResult(w.ID, false)
			c.markDead(w.ID)
			c.metrics.observeSlice("error", time.Since(start))
		}
		for _, a := range attempts {
			a.SetAttr("outcome", spanOutcome)
			a.End()
		}
		ch <- outcome{w: w, resp: resp, err: err, hedge: hedge}
	}
	go post(primary, false)

	var hedgeC <-chan time.Time
	if d := c.hedgeDelay(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	outstanding := 1
	var firstErr error
	for {
		select {
		case out := <-ch:
			outstanding--
			if out.err == nil {
				if out.hedge {
					c.metrics.addHedgeWins()
				}
				// Only the winner's worker spans are ingested; a hedge
				// loser's engine spans (if any completed) are discarded
				// with its results.
				c.ingestSpans(slice, out.resp.Spans)
				return out.resp.Results, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if h, ok := c.pickHedge(primary.ID); ok {
				c.metrics.addHedged(len(slice))
				outstanding++
				go post(h, true)
			}
		case <-ctx.Done():
			// The buffered channel lets the in-flight posts finish and
			// exit without a reader.
			return nil, ctx.Err()
		}
	}
}

// pickHedge claims the first live worker other than the primary as a
// hedge target.
func (c *Coordinator) pickHedge(primaryID string) (RegisterRequest, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.liveLocked() {
		if w.info.ID != primaryID {
			w.brk.take()
			return w.info, true
		}
	}
	return RegisterRequest{}, false
}

// noteWorkerResult records a slice outcome on the worker's breaker,
// tripping it after BreakerThreshold consecutive failures (or one
// failed half-open probe).
func (c *Coordinator) noteWorkerResult(id string, ok bool) {
	c.mu.Lock()
	w, exists := c.workers[id]
	if !exists {
		c.mu.Unlock()
		return
	}
	wasOpen := w.brk.state == brkOpen
	tripped := w.brk.result(ok, c.cfg.BreakerThreshold, c.now(), c.cfg.BreakerCooldown)
	fails := w.brk.consecFails
	c.metrics.setBreakerState(id, w.brk.state)
	c.refreshLiveLocked()
	c.mu.Unlock()
	if tripped && !wasOpen {
		c.metrics.addBreakerTrip()
		c.cfg.Logf("cluster: worker %s breaker tripped after %d consecutive failures (cooldown %s)",
			id, fails, c.cfg.BreakerCooldown)
	}
}

// breakerAbort releases a claimed probe slot without an outcome.
func (c *Coordinator) breakerAbort(id string) {
	c.mu.Lock()
	if w, ok := c.workers[id]; ok {
		w.brk.abort()
	}
	c.refreshLiveLocked()
	c.mu.Unlock()
}

// observeSliceLatency records one successful slice round-trip into the
// shared slice-duration histogram — the same series /metrics exports,
// so the adaptive hedge threshold and the dashboards read one dataset.
func (c *Coordinator) observeSliceLatency(d time.Duration) {
	c.metrics.observeSlice("ok", d)
}

// hedgeDelay resolves the hedge threshold: the configured HedgeAfter
// when set, 0 (disabled) when negative, otherwise adaptively 2× the
// p90 of successful slice latencies — hedging targets stragglers, not
// the ordinary tail. With no metrics attached or too few observations
// there is no signal, so the threshold stays conservative.
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter
	}
	if c.cfg.HedgeAfter < 0 {
		return 0
	}
	count, p90 := c.metrics.sliceOKStats()
	if count < 8 {
		// Too little signal to call anything a straggler yet.
		return 2 * time.Second
	}
	d := time.Duration(2 * p90 * float64(time.Second))
	if min := 500 * time.Millisecond; d < min {
		d = min
	}
	return d
}

// ingestSpans lands a worker's engine spans in the tracer. The spans
// arrive already parented to this coordinator's attempt spans, so no
// reconciliation is needed; ingestion does not re-feed the stage
// histogram (the worker observed them on its own node).
func (c *Coordinator) ingestSpans(slice []leaderItem, spans []tracing.Span) {
	if len(spans) == 0 {
		return
	}
	t := c.tracer
	if t == nil {
		for _, li := range slice {
			if li.trace != nil {
				t = li.trace.tr
				break
			}
		}
	}
	t.Ingest(spans)
}

// postSlice ships one slice to one worker and returns its reply. refs
// (when tracing) carries each item's attempt span context to the
// worker; the batch's trace identity additionally rides a traceparent
// header, so any HTTP hop in between can follow the trace.
func (c *Coordinator) postSlice(ctx context.Context, w RegisterRequest, params Params, slice []leaderItem, refs []*tracing.SpanContext) (*RunResponse, error) {
	items := make([]Item, len(slice))
	for i, li := range slice {
		items[i] = li.item
		if refs[i] != nil {
			items[i].Trace = refs[i]
		}
	}
	body, err := json.Marshal(RunRequest{Params: params, Items: items})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Addr+"/v1/worker/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if _, sc, ok := tracing.FromContext(ctx); ok {
		tracing.Inject(req.Header, sc)
	}
	hr, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker %s: status %d", w.ID, hr.StatusCode)
	}
	var resp RunResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(slice) {
		return nil, fmt.Errorf("worker %s: %d results for %d items", w.ID, len(resp.Results), len(slice))
	}
	return &resp, nil
}

// resolve finishes one flight: successful results enter the fleet cache
// before waiters wake, so a spec simulated by any worker is never
// simulated again.
func (c *Coordinator) resolve(li leaderItem, res ItemResult, err error) {
	c.mu.Lock()
	li.f.res, li.f.err = res, err
	delete(c.inflight, li.key)
	if err == nil {
		if _, ok := c.cache[li.key]; !ok {
			c.cache[li.key] = res
			c.cacheOrder = append(c.cacheOrder, li.key)
			for len(c.cacheOrder) > c.cfg.MaxCacheEntries {
				delete(c.cache, c.cacheOrder[0])
				c.cacheOrder = c.cacheOrder[1:]
			}
		}
	}
	c.mu.Unlock()
	close(li.f.done)
}

func (c *Coordinator) resolveAll(lis []leaderItem, res ItemResult, err error) {
	for _, li := range lis {
		c.resolve(li, res, err)
	}
}

// CacheLen reports fleet-cache occupancy (tests, introspection).
func (c *Coordinator) CacheLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}

// Handler mounts the coordinator's HTTP surface:
//
//	POST /v1/cluster/register   worker announces itself
//	POST /v1/cluster/heartbeat  worker liveness
//	POST /v1/cluster/run        execute a batch on the fleet
//	GET  /v1/cluster/workers    registered workers + liveness
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/register", c.handleRegister)
	mux.HandleFunc("/v1/cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/cluster/run", c.handleRun)
	mux.HandleFunc("/v1/cluster/workers", c.handleWorkers)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid register request: %v", err)
		return
	}
	resp, err := c.Register(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid heartbeat: %v", err)
		return
	}
	if !c.Heartbeat(req.ID) {
		writeError(w, http.StatusNotFound, "unknown worker %q: re-register", req.ID)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid run request: %v", err)
		return
	}
	// A caller that already opened a trace (hcapp-serve's job manager, a
	// remote client) propagates it via the traceparent header; otherwise
	// the batch gets its own root span so direct API batches are traced
	// too.
	ctx := r.Context()
	var root *tracing.ActiveSpan
	if c.tracer != nil {
		if sc, ok := tracing.Extract(r.Header); ok {
			ctx = tracing.ContextWith(ctx, c.tracer, sc)
		} else {
			root = c.tracer.StartRoot("batch", "", randomID())
			root.SetAttr("tenant", req.Tenant).SetAttr("items", fmt.Sprintf("%d", len(req.Items)))
			ctx = tracing.ContextWith(ctx, c.tracer, root.Context())
		}
	}
	resp, err := c.RunBatch(ctx, req)
	root.SetAttr("outcome", tracing.Outcome(err)).End()
	switch {
	case errors.Is(err, ErrThrottled):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrNoWorkers):
		// A worker may register or heartbeat back within one cadence.
		w.Header().Set("Retry-After", retryAfterSeconds(c.cfg.HeartbeatEvery))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrBadItem):
		writeError(w, http.StatusBadRequest, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Workers []WorkerInfo `json:"workers"`
	}{c.WorkerList()})
}
