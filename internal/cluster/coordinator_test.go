package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"hcapp/internal/config"
	"hcapp/internal/experiment"
	"hcapp/internal/sim"
	"hcapp/internal/telemetry"
)

// testParams is the evaluator parameterization every test batch runs
// under — short enough for CI, identical on fleet and local sides.
func testParams() Params {
	return DefaultParams(42, sim.Millisecond/2)
}

// testItems builds n spec items over distinct suite combos.
func testItems(t *testing.T, n int) []Item {
	t.Helper()
	scheme, err := config.SchemeByKind(config.HCAPP)
	if err != nil {
		t.Fatal(err)
	}
	suite := experiment.Suite()
	if n > len(suite) {
		t.Fatalf("test wants %d distinct combos, suite has %d", n, len(suite))
	}
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		s := Spec{Combo: suite[i].Name, Scheme: scheme, Limit: config.PackagePinLimit()}
		items[i] = Item{Spec: &s}
	}
	return items
}

// localResults simulates the items on a plain local evaluator — the
// reference the fleet must match exactly. Workers always track the
// energy ledger, so the reference does too: the comparisons cover the
// wire-carried energy summary as well.
func localResults(t *testing.T, p Params, items []Item) []Result {
	t.Helper()
	ev := p.evaluator()
	ev.TrackEnergy = true
	out := make([]Result, len(items))
	for i, it := range items {
		spec, err := it.Spec.RunSpec()
		if err != nil {
			t.Fatal(err)
		}
		res, err := ev.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ResultOf(res)
	}
	return out
}

// startWorker boots a real worker behind an httptest listener and
// returns it with its advertise address filled in.
func startWorker(t *testing.T, id string) *Worker {
	t.Helper()
	w := NewWorker(WorkerConfig{ID: id, Workers: 2, Logf: t.Logf})
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	w.cfg.AdvertiseAddr = ts.URL
	return w
}

func registerWorker(t *testing.T, c *Coordinator, w *Worker) {
	t.Helper()
	if _, err := c.Register(RegisterRequest{ID: w.cfg.ID, Addr: w.cfg.AdvertiseAddr, Workers: w.cfg.Workers}); err != nil {
		t.Fatal(err)
	}
}

func gatherMetrics(t *testing.T, reg *telemetry.Registry) map[string]float64 {
	t.Helper()
	samples, err := telemetry.ParseText(strings.NewReader(reg.Text()))
	if err != nil {
		t.Fatal(err)
	}
	return telemetry.GatherMap(samples)
}

// TestRegisterIdempotent: re-registering an id refreshes its record
// instead of duplicating it, and the refresh adopts the new address.
func TestRegisterIdempotent(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Logf: t.Logf})
	for _, addr := range []string{"http://h1:1", "http://h1:2"} {
		if _, err := c.Register(RegisterRequest{ID: "w1", Addr: addr, Workers: 2}); err != nil {
			t.Fatal(err)
		}
	}
	ws := c.WorkerList()
	if len(ws) != 1 {
		t.Fatalf("duplicate registration produced %d records, want 1", len(ws))
	}
	if ws[0].Addr != "http://h1:2" {
		t.Fatalf("re-registration kept stale addr %q", ws[0].Addr)
	}
	if c.WorkersLive() != 1 {
		t.Fatalf("WorkersLive = %d, want 1", c.WorkersLive())
	}
}

// TestHeartbeatFlap drives an injected clock: a worker whose heartbeat
// lapses past ExpireAfter stops receiving traffic, and a late heartbeat
// revives it without re-registration.
func TestHeartbeatFlap(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(CoordinatorConfig{
		HeartbeatEvery: time.Second,
		ExpireAfter:    3 * time.Second,
		Logf:           t.Logf,
	}).WithNow(clk.now)

	if _, err := c.Register(RegisterRequest{ID: "w1", Addr: "http://h:1", Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if c.WorkersLive() != 1 {
		t.Fatal("fresh registration not live")
	}

	clk.advance(4 * time.Second)
	if c.WorkersLive() != 0 {
		t.Fatal("worker with lapsed heartbeat still live")
	}

	if !c.Heartbeat("w1") {
		t.Fatal("known worker's heartbeat rejected")
	}
	if c.WorkersLive() != 1 {
		t.Fatal("heartbeat did not revive the lapsed worker")
	}
	if c.Heartbeat("ghost") {
		t.Fatal("unknown worker's heartbeat accepted; it must re-register")
	}
}

// TestExecuteMatchesLocal: a batch sharded across two live workers
// returns exactly what a single local evaluator produces, slot for
// slot.
func TestExecuteMatchesLocal(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCoordinator(CoordinatorConfig{Logf: t.Logf}).WithMetrics(NewMetrics(reg))
	registerWorker(t, c, startWorker(t, "w-a"))
	registerWorker(t, c, startWorker(t, "w-b"))

	p := testParams()
	items := testItems(t, 4)
	resp, err := c.Execute(context.Background(), RunRequest{Priority: PriorityBatch, Params: p, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHits != 0 {
		t.Fatalf("first batch reported %d cache hits, want 0", resp.CacheHits)
	}

	want := localResults(t, p, items)
	for i := range items {
		if resp.Results[i].Error != "" {
			t.Fatalf("item %d failed: %s", i, resp.Results[i].Error)
		}
		if !reflect.DeepEqual(*resp.Results[i].Result, want[i]) {
			t.Fatalf("item %d diverged from local run:\n fleet: %+v\n local: %+v",
				i, *resp.Results[i].Result, want[i])
		}
	}
	if c.CacheLen() != len(items) {
		t.Fatalf("fleet cache holds %d entries, want %d", c.CacheLen(), len(items))
	}

	// Second identical batch: 100%% fleet cache hit rate, visible on the
	// counter, even after every worker is gone — cached results need no
	// fleet at all.
	c.markDead("w-a")
	c.markDead("w-b")
	if c.WorkersLive() != 0 {
		t.Fatal("markDead left workers live")
	}
	resp2, err := c.Execute(context.Background(), RunRequest{Priority: PriorityBatch, Params: p, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.CacheHits != len(items) {
		t.Fatalf("repeat batch hit cache %d/%d times", resp2.CacheHits, len(items))
	}
	if !reflect.DeepEqual(resp2.Results, resp.Results) {
		t.Fatal("cached results diverged from originals")
	}
	m := gatherMetrics(t, reg)
	if got := m["hcapp_cluster_cache_hits_total"]; got != float64(len(items)) {
		t.Fatalf("hcapp_cluster_cache_hits_total = %g, want %d", got, len(items))
	}
	if got := m["hcapp_cluster_workers_live"]; got != 0 {
		t.Fatalf("hcapp_cluster_workers_live = %g, want 0", got)
	}
}

// TestWorkerDeathReshards: one of two workers fails every slice; its
// share is re-sharded onto the survivor and the batch still matches the
// local reference exactly.
func TestWorkerDeathReshards(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCoordinator(CoordinatorConfig{Logf: t.Logf}).WithMetrics(NewMetrics(reg))

	// The failing worker sorts first by id, so the round-robin stripe
	// deterministically hands it items 0 and 2 of a 4-item batch.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "worker crashed", http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)
	if _, err := c.Register(RegisterRequest{ID: "a-bad", Addr: bad.URL, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	registerWorker(t, c, startWorker(t, "b-good"))

	p := testParams()
	items := testItems(t, 4)
	resp, err := c.Execute(context.Background(), RunRequest{Priority: PriorityBatch, Params: p, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	want := localResults(t, p, items)
	for i := range items {
		if resp.Results[i].Error != "" {
			t.Fatalf("item %d failed after re-shard: %s", i, resp.Results[i].Error)
		}
		if !reflect.DeepEqual(*resp.Results[i].Result, want[i]) {
			t.Fatalf("item %d diverged from local run after re-shard", i)
		}
	}

	m := gatherMetrics(t, reg)
	if got := m["hcapp_cluster_jobs_resharded_total"]; got != 2 {
		t.Fatalf("hcapp_cluster_jobs_resharded_total = %g, want 2", got)
	}
	if c.WorkersLive() != 1 {
		t.Fatalf("WorkersLive = %d after death, want 1", c.WorkersLive())
	}
}

// TestAllWorkersLost: a batch with no live workers fails with
// ErrNoWorkers rather than hanging.
func TestAllWorkersLost(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Logf: t.Logf})
	_, err := c.Execute(context.Background(), RunRequest{Params: testParams(), Items: testItems(t, 1)})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// TestDispatchWaitsOutWorkerDrought: a batch arriving while every
// registered worker is unroutable is not failed 503 immediately — the
// dispatch waits up to NoWorkersPatience, so a heartbeat inside the
// window rescues the batch. An empty registry (TestAllWorkersLost)
// still fails fast.
func TestDispatchWaitsOutWorkerDrought(t *testing.T) {
	w := startWorker(t, "drought")
	c := NewCoordinator(CoordinatorConfig{Logf: t.Logf, NoWorkersPatience: 5 * time.Second})
	registerWorker(t, c, w)
	c.markDead(w.cfg.ID)
	if c.WorkersLive() != 0 {
		t.Fatalf("WorkersLive = %d before the drought, want 0", c.WorkersLive())
	}
	go func() {
		time.Sleep(400 * time.Millisecond)
		c.Heartbeat(w.cfg.ID)
	}()
	items := testItems(t, 2)
	resp, err := c.Execute(context.Background(), RunRequest{Params: testParams(), Items: items})
	if err != nil {
		t.Fatalf("batch during a rescued drought: %v", err)
	}
	want := localResults(t, testParams(), items)
	for i, r := range resp.Results {
		if r.Error != "" {
			t.Fatalf("item %d: %s", i, r.Error)
		}
		if !reflect.DeepEqual(r.Result, &want[i]) {
			t.Fatalf("item %d result differs from local run", i)
		}
	}
}

// TestDispatchDroughtPatienceExpires: a drought nobody rescues still
// ends in ErrNoWorkers once the patience runs out.
func TestDispatchDroughtPatienceExpires(t *testing.T) {
	w := startWorker(t, "drought-expired")
	c := NewCoordinator(CoordinatorConfig{Logf: t.Logf, NoWorkersPatience: 300 * time.Millisecond})
	registerWorker(t, c, w)
	c.markDead(w.cfg.ID)
	start := time.Now()
	_, err := c.Execute(context.Background(), RunRequest{Params: testParams(), Items: testItems(t, 1)})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
	if waited := time.Since(start); waited < 300*time.Millisecond {
		t.Fatalf("gave up after %s, before the %s patience", waited, 300*time.Millisecond)
	}
}

// TestRunBatchThrottles: the tenant bucket rejects whole batches it
// cannot pay for and counts them per tenant; an affordable batch from
// the same tenant passes the limiter.
func TestRunBatchThrottles(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	c := NewCoordinator(CoordinatorConfig{
		TenantRate:  1,
		TenantBurst: 2,
		Logf:        t.Logf,
	}).WithMetrics(NewMetrics(reg)).WithNow(clk.now)

	over := RunRequest{Tenant: "acme", Params: testParams(), Items: testItems(t, 3)}
	if _, err := c.RunBatch(context.Background(), over); !errors.Is(err, ErrThrottled) {
		t.Fatalf("3-item batch against burst 2: err = %v, want ErrThrottled", err)
	}
	// Exactly at the burst: admitted past the limiter (it then fails on
	// the empty fleet, proving the limiter was not what stopped it).
	exact := RunRequest{Tenant: "acme", Params: testParams(), Items: testItems(t, 2)}
	if _, err := c.RunBatch(context.Background(), exact); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("burst-sized batch: err = %v, want ErrNoWorkers (admitted)", err)
	}
	// Bucket now empty; one more item is throttled.
	one := RunRequest{Tenant: "acme", Params: testParams(), Items: testItems(t, 1)}
	if _, err := c.RunBatch(context.Background(), one); !errors.Is(err, ErrThrottled) {
		t.Fatalf("post-burst item: err = %v, want ErrThrottled", err)
	}

	m := gatherMetrics(t, reg)
	if got := m[`hcapp_tenant_throttled_total{tenant=acme}`]; got != 2 {
		t.Fatalf("hcapp_tenant_throttled_total{tenant=acme} = %g, want 2", got)
	}
}

// TestExecuteRejectsBadItems: malformed items and unknown priorities
// fail fast with ErrBadItem.
func TestExecuteRejectsBadItems(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Logf: t.Logf})
	_, err := c.Execute(context.Background(), RunRequest{Params: testParams(), Items: []Item{{}}})
	if !errors.Is(err, ErrBadItem) {
		t.Fatalf("empty item: err = %v, want ErrBadItem", err)
	}
	_, err = c.Execute(context.Background(), RunRequest{Priority: "urgent", Params: testParams(), Items: testItems(t, 1)})
	if !errors.Is(err, ErrBadItem) {
		t.Fatalf("unknown priority: err = %v, want ErrBadItem", err)
	}
}

// TestHTTPProtocolEndToEnd exercises the real wire path: workers
// register and heartbeat over HTTP, a Client submits a batch, and the
// response matches the local reference byte for byte after JSON
// round-tripping.
func TestHTTPProtocolEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCoordinator(CoordinatorConfig{Logf: t.Logf}).WithMetrics(NewMetrics(reg))
	coordTS := httptest.NewServer(c.Handler())
	t.Cleanup(coordTS.Close)

	for i := 0; i < 2; i++ {
		w := NewWorker(WorkerConfig{ID: fmt.Sprintf("w-%d", i), Coordinator: coordTS.URL, Workers: 2, Logf: t.Logf})
		ts := httptest.NewServer(w.Handler())
		t.Cleanup(ts.Close)
		w.cfg.AdvertiseAddr = ts.URL
		if w.Ready() {
			t.Fatal("unregistered worker claims ready")
		}
		if err := w.Register(context.Background()); err != nil {
			t.Fatal(err)
		}
		if !w.Ready() {
			t.Fatal("registered worker claims unready")
		}
		if err := w.heartbeat(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if c.WorkersLive() != 2 {
		t.Fatalf("WorkersLive = %d, want 2", c.WorkersLive())
	}

	cl, err := NewClient(coordTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	items := testItems(t, 3)
	resp, err := cl.Run(context.Background(), p, items)
	if err != nil {
		t.Fatal(err)
	}
	want := localResults(t, p, items)
	for i := range items {
		if !reflect.DeepEqual(*resp.Results[i].Result, want[i]) {
			t.Fatalf("item %d diverged over the wire:\n fleet: %+v\n local: %+v",
				i, *resp.Results[i].Result, want[i])
		}
	}
}

// TestRemoteRunnerAndScalingCell: the Evaluator Remote hook and the
// sweep Cell hook both route through the fleet and reproduce local
// results exactly.
func TestRemoteRunnerAndScalingCell(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Logf: t.Logf})
	coordTS := httptest.NewServer(c.Handler())
	t.Cleanup(coordTS.Close)
	registerWorker(t, c, startWorker(t, "w-a"))

	cl, err := NewClient(coordTS.URL)
	if err != nil {
		t.Fatal(err)
	}

	// Remote evaluator run.
	p := testParams()
	item := testItems(t, 1)[0]
	spec, err := item.Spec.RunSpec()
	if err != nil {
		t.Fatal(err)
	}
	remote := p.evaluator()
	remote.Remote = cl
	got, err := remote.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	local := p.evaluator()
	local.TrackEnergy = true // workers always track; match the reference
	want, err := local.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the wire projections: RunSpec.Combo carries benchmark
	// builder funcs, which DeepEqual refuses regardless of identity.
	if !reflect.DeepEqual(ResultOf(got), ResultOf(want)) {
		t.Fatalf("remote evaluator run diverged:\n fleet: %+v\n local: %+v", got, want)
	}
	if got.Spec.Combo.Name != spec.Combo.Name {
		t.Fatalf("remote result lost its spec: %q", got.Spec.Combo.Name)
	}

	// Scaling sweep cell.
	sc := experiment.DefaultScalingConfig()
	sc.Dur = sim.Millisecond / 2
	cfg := config.Default()
	const (
		triples = 1
		period  = sim.Microsecond
	)
	limit := sc.LimitPerTriple
	fleetMax, fleetPPE, err := cl.ScalingCellFunc()(context.Background(), cfg, sc, triples, period, limit)
	if err != nil {
		t.Fatal(err)
	}
	localMax, localPPE, err := experiment.RunScalingCell(context.Background(), cfg, sc, triples, period, limit)
	if err != nil {
		t.Fatal(err)
	}
	if fleetMax != localMax || fleetPPE != localPPE {
		t.Fatalf("scaling cell diverged: fleet (%v, %v) local (%v, %v)", fleetMax, fleetPPE, localMax, localPPE)
	}
}
