package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// runServer serves /v1/cluster/run with a per-attempt script and counts
// attempts.
func runServer(t *testing.T, script func(attempt int64, w http.ResponseWriter, r *http.Request)) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		script(attempts.Add(1), w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &attempts
}

func testClient(t *testing.T, base string, delays *[]time.Duration) *Client {
	t.Helper()
	c, err := NewClient(base)
	if err != nil {
		t.Fatal(err)
	}
	c.Backoff = recordedBackoff(delays, 0)
	return c
}

func okBody(results int) []byte {
	rr := RunResponse{Results: make([]ItemResult, results)}
	for i := range rr.Results {
		rr.Results[i] = ItemResult{Error: "placeholder"}
	}
	b, _ := json.Marshal(rr)
	return b
}

// TestClientRetriesTruncatedResponse: a response body cut off mid-JSON
// is a transport failure — the client retries the whole batch and
// returns only the complete second response, never a partially
// assembled one.
func TestClientRetriesTruncatedResponse(t *testing.T) {
	full := okBody(2)
	ts, attempts := runServer(t, func(attempt int64, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if attempt == 1 {
			// Declare the full length but send half: the decoder sees
			// io.ErrUnexpectedEOF, exactly what chaos truncation produces.
			w.Header().Set("Content-Length", strconv.Itoa(len(full)))
			w.WriteHeader(http.StatusOK)
			w.Write(full[:len(full)/2])
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write(full)
	})
	var delays []time.Duration
	c := testClient(t, ts.URL, &delays)
	resp, err := c.Run(context.Background(), testParams(), make([]Item, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2 (one truncated, one clean)", got)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("assembled %d results, want 2", len(resp.Results))
	}
	for i, ir := range resp.Results {
		if ir.Error != "placeholder" {
			t.Fatalf("result %d = %+v: partial assembly leaked through", i, ir)
		}
	}
}

// TestClientShortResponseRetried: a well-formed body with the wrong
// result count is treated like truncation — retried, never returned.
func TestClientShortResponseRetried(t *testing.T) {
	ts, attempts := runServer(t, func(attempt int64, w http.ResponseWriter, r *http.Request) {
		if attempt == 1 {
			w.Write(okBody(1)) // 1 result for a 3-item batch
			return
		}
		w.Write(okBody(3))
	})
	var delays []time.Duration
	c := testClient(t, ts.URL, &delays)
	resp, err := c.Run(context.Background(), testParams(), make([]Item, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("assembled %d results, want 3", len(resp.Results))
	}
}

// TestClientHonoursRetryAfter: a 429 with Retry-After floors the next
// delay at the server's hint even when the client's own jittered delay
// would be shorter.
func TestClientHonoursRetryAfter(t *testing.T) {
	ts, _ := runServer(t, func(attempt int64, w http.ResponseWriter, r *http.Request) {
		if attempt == 1 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"throttled"}`))
			return
		}
		w.Write(okBody(1))
	})
	var delays []time.Duration
	c := testClient(t, ts.URL, &delays) // variate 0: own delay would be 0
	if _, err := c.Run(context.Background(), testParams(), make([]Item, 1)); err != nil {
		t.Fatal(err)
	}
	if len(delays) != 1 || delays[0] != 2*time.Second {
		t.Fatalf("recorded delays %v, want exactly [2s] from the Retry-After floor", delays)
	}
}

// TestClientThrottledErrorWraps: exhausting attempts on 429s surfaces
// ErrThrottled so callers can tell backpressure from breakage.
func TestClientThrottledErrorWraps(t *testing.T) {
	ts, attempts := runServer(t, func(attempt int64, w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"throttled"}`))
	})
	var delays []time.Duration
	c := testClient(t, ts.URL, &delays)
	c.MaxAttempts = 3
	_, err := c.Run(context.Background(), testParams(), make([]Item, 1))
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("err = %v, want ErrThrottled", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want MaxAttempts=3", got)
	}
}

// TestClientPermanent4xxNotRetried: a 400 is the server's verdict on
// the request — retrying it cannot help, so the client fails fast.
func TestClientPermanent4xxNotRetried(t *testing.T) {
	ts, attempts := runServer(t, func(attempt int64, w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad item"}`))
	})
	var delays []time.Duration
	c := testClient(t, ts.URL, &delays)
	if _, err := c.Run(context.Background(), testParams(), make([]Item, 1)); err == nil {
		t.Fatal("bad request succeeded")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retries on a permanent 4xx)", got)
	}
	if len(delays) != 0 {
		t.Fatalf("client slept %v before a permanent failure", delays)
	}
}

// TestClientRetries5xx: server errors are transient; the client backs
// off and the batch eventually lands.
func TestClientRetries5xx(t *testing.T) {
	ts, attempts := runServer(t, func(attempt int64, w http.ResponseWriter, r *http.Request) {
		if attempt <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"transient"}`))
			return
		}
		w.Write(okBody(1))
	})
	var delays []time.Duration
	c := testClient(t, ts.URL, &delays)
	if _, err := c.Run(context.Background(), testParams(), make([]Item, 1)); err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if len(delays) != 2 {
		t.Fatalf("recorded %d backoff sleeps, want 2", len(delays))
	}
}
