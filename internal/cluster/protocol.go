// Package cluster turns hcapp-serve from a single process into a job
// fleet: N workers register with one coordinator over HTTP and
// heartbeat; the coordinator shards simulation batches across the live
// workers with the same indexed-slot assembly internal/experiment.Runner
// uses, so results — and everything rendered from them — are
// byte-identical to a single-node run at any fleet width.
//
// The coordinator also owns the fleet-wide single-flight result cache
// (content-addressed by the Evaluator cache key), job priority classes
// (interactive ahead of batch), per-tenant token-bucket rate limits with
// 429 backpressure, and retry-on-worker-loss: a batch slice whose worker
// dies is re-sharded across the survivors, idempotent because the work
// items are pure functions of their hashed spec.
//
// Topology, protocol and failure semantics are documented in
// docs/CLUSTER.md.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"hcapp/internal/config"
	"hcapp/internal/energy"
	"hcapp/internal/experiment"
	"hcapp/internal/noc"
	"hcapp/internal/sim"
	"hcapp/internal/tracing"
)

// Priority classes. Interactive work (hcapp-serve jobs submitted by a
// waiting client) is dispatched ahead of batch work (CLI suite sweeps)
// whenever the fleet is contended.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

// ValidPriority reports whether p names a priority class ("" means
// batch).
func ValidPriority(p string) bool {
	return p == "" || p == PriorityInteractive || p == PriorityBatch
}

// Params are the evaluator parameters a batch executes under — exactly
// the values the Evaluator folds into its result-cache key, so a
// (Params, Spec) pair content-addresses one deterministic simulation.
// The fleet simulates the default target system; only the workload seed
// varies, matching the local Evaluator whose cache key folds Cfg.Seed
// alone.
type Params struct {
	Seed         int64    `json:"seed"`
	TargetDurNS  sim.Time `json:"target_dur_ns"`
	MaxDurFactor float64  `json:"max_dur_factor"`
	FixedV       float64  `json:"fixed_v"`
}

// DefaultParams returns the parameters a standalone hcapp-serve job
// evaluator would use for the given seed and horizon.
func DefaultParams(seed int64, targetDur sim.Time) Params {
	return Params{
		Seed:         seed,
		TargetDurNS:  targetDur,
		MaxDurFactor: experiment.DefaultMaxDurFactor,
		FixedV:       experiment.DefaultFixedV,
	}
}

// evaluator builds a fresh local evaluator configured with the params —
// the worker-side execution context, and the key generator both sides
// share.
func (p Params) evaluator() *experiment.Evaluator {
	ev := experiment.NewEvaluator().WithTargetDur(p.TargetDurNS)
	ev.Cfg.Seed = p.Seed
	ev.MaxDurFactor = p.MaxDurFactor
	ev.FixedV = p.FixedV
	return ev
}

// Spec is the wire form of experiment.RunSpec: the combo travels by
// name (benchmarks carry unexported builders), scheme and limit are
// pure data and travel whole.
type Spec struct {
	Combo            string             `json:"combo"`
	Scheme           config.Scheme      `json:"scheme"`
	Limit            config.PowerLimit  `json:"limit"`
	Priorities       map[string]float64 `json:"priorities,omitempty"`
	AdversarialAccel bool               `json:"adversarial_accel,omitempty"`
	Policy           string             `json:"policy,omitempty"`
}

// SpecOf projects a RunSpec onto the wire.
func SpecOf(s experiment.RunSpec) Spec {
	return Spec{
		Combo:            s.Combo.Name,
		Scheme:           s.Scheme,
		Limit:            s.Limit,
		Priorities:       s.Priorities,
		AdversarialAccel: s.AdversarialAccel,
		Policy:           s.Policy,
	}
}

// RunSpec resolves the wire spec back to an executable one.
func (s Spec) RunSpec() (experiment.RunSpec, error) {
	combo, err := experiment.ComboByName(s.Combo)
	if err != nil {
		return experiment.RunSpec{}, err
	}
	return experiment.RunSpec{
		Combo:            combo,
		Scheme:           s.Scheme,
		Limit:            s.Limit,
		Priorities:       s.Priorities,
		AdversarialAccel: s.AdversarialAccel,
		Policy:           s.Policy,
	}, nil
}

// ScalingCell is the wire form of one chiplet-count sweep cell
// (experiment.RunScalingCell's serializable inputs).
type ScalingCell struct {
	Combo          string     `json:"combo"`
	Network        noc.Config `json:"network"`
	Triples        int        `json:"triples"`
	PeriodNS       sim.Time   `json:"period_ns"`
	LimitW         float64    `json:"limit_w"`
	WindowNS       sim.Time   `json:"window_ns"`
	DurNS          sim.Time   `json:"dur_ns"`
	CentralFloorNS sim.Time   `json:"central_floor_ns"`
	LimitPerTriple float64    `json:"limit_per_triple"`
	Seed           int64      `json:"seed"`
}

// Item is one unit of batch work: exactly one of Spec or Scaling is
// set.
type Item struct {
	Spec    *Spec        `json:"spec,omitempty"`
	Scaling *ScalingCell `json:"scaling,omitempty"`
	// Trace is the coordinator-side attempt span this item executes
	// under; the worker derives its engine span's id from it, so the
	// span tree assembles across processes without reconciliation.
	// Deliberately excluded from the item's content-address (key):
	// tracing identity must never change what counts as the same work.
	Trace *tracing.SpanContext `json:"trace,omitempty"`
}

// ItemResult is one slot of a batch response: exactly one of Result or
// Scaling is set on success; Error carries a worker-side failure.
type ItemResult struct {
	Result  *Result            `json:"result,omitempty"`
	Scaling *ScalingCellResult `json:"scaling,omitempty"`
	Error   string             `json:"error,omitempty"`
}

// Result is the wire form of experiment.RunResult minus the spec echo
// (the submitting side reattaches the spec it asked about, avoiding
// round-tripping benchmark builders).
type Result struct {
	MaxWindowPower float64             `json:"max_window_power"`
	MaxOverLimit   float64             `json:"max_over_limit"`
	Violated       bool                `json:"violated"`
	AvgPower       float64             `json:"avg_power"`
	PPE            float64             `json:"ppe"`
	Completion     map[string]sim.Time `json:"completion,omitempty"`
	Finished       map[string]bool     `json:"finished,omitempty"`
	Completed      bool                `json:"completed"`
	DurationNS     sim.Time            `json:"duration_ns"`
	ControlCycles  int64               `json:"control_cycles"`
	// Energy is the worker's attribution ledger summary. Workers always
	// track energy (the ledger is passive, so the metrics above are
	// unaffected), which keeps every fleet-cached result usable for
	// chargeback no matter which client asked first.
	Energy *energy.Summary `json:"energy,omitempty"`
}

// ResultOf projects a RunResult onto the wire.
func ResultOf(r experiment.RunResult) Result {
	return Result{
		MaxWindowPower: r.MaxWindowPower,
		MaxOverLimit:   r.MaxOverLimit,
		Violated:       r.Violated,
		AvgPower:       r.AvgPower,
		PPE:            r.PPE,
		Completion:     r.Completion,
		Finished:       r.Finished,
		Completed:      r.Completed,
		DurationNS:     r.Duration,
		ControlCycles:  r.ControlCycles,
		Energy:         r.Energy,
	}
}

// RunResult rebuilds a local-shaped RunResult around the given spec.
func (r Result) RunResult(spec experiment.RunSpec) experiment.RunResult {
	return experiment.RunResult{
		Spec:           spec,
		MaxWindowPower: r.MaxWindowPower,
		MaxOverLimit:   r.MaxOverLimit,
		Violated:       r.Violated,
		AvgPower:       r.AvgPower,
		PPE:            r.PPE,
		Completion:     r.Completion,
		Finished:       r.Finished,
		Completed:      r.Completed,
		Duration:       r.DurationNS,
		ControlCycles:  r.ControlCycles,
		Energy:         r.Energy,
	}
}

// ScalingCellResult is the two numbers a sweep cell reduces to.
type ScalingCellResult struct {
	MaxOverLimit float64 `json:"max_over_limit"`
	PPE          float64 `json:"ppe"`
}

// key content-addresses an item: the Evaluator cache key for specs (so
// the fleet cache and every local cache agree on identity), a canonical
// field dump for scaling cells. The sha256 makes the key a fixed-size
// handle, safe to log and index no matter how long priority maps get.
func (it Item) key(p Params) (string, error) {
	switch {
	case it.Spec != nil && it.Scaling == nil:
		rs, err := it.Spec.RunSpec()
		if err != nil {
			return "", err
		}
		return hashKey("spec|" + p.evaluator().CacheKey(rs)), nil
	case it.Scaling != nil && it.Spec == nil:
		c := *it.Scaling
		return hashKey(fmt.Sprintf("scaling|combo=%s|net=%+v|n=%d|period=%d|limit=%g|win=%d|dur=%d|floor=%d|lpt=%g|seed=%d",
			c.Combo, c.Network, c.Triples, c.PeriodNS, c.LimitW, c.WindowNS, c.DurNS, c.CentralFloorNS, c.LimitPerTriple, c.Seed)), nil
	default:
		return "", fmt.Errorf("cluster: item must set exactly one of spec, scaling")
	}
}

func hashKey(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// RegisterRequest is the POST /v1/cluster/register body: a worker
// announcing itself. Addr is the base URL the coordinator dials back
// ("http://host:port"). Registration is idempotent — re-registering an
// id refreshes its record instead of duplicating it.
type RegisterRequest struct {
	ID      string `json:"id"`
	Addr    string `json:"addr"`
	Workers int    `json:"workers"`
}

// RegisterResponse tells the worker the heartbeat cadence the
// coordinator expects.
type RegisterResponse struct {
	HeartbeatEveryMS int64 `json:"heartbeat_every_ms"`
	ExpireAfterMS    int64 `json:"expire_after_ms"`
}

// HeartbeatRequest is the POST /v1/cluster/heartbeat body. An unknown
// id gets 404: the worker must re-register.
type HeartbeatRequest struct {
	ID string `json:"id"`
}

// RunRequest is the POST /v1/cluster/run body (and the in-process shape
// hcapp-serve's job manager submits in coordinator role).
type RunRequest struct {
	// Tenant buckets the request for rate limiting; empty means "anon".
	Tenant string `json:"tenant,omitempty"`
	// Priority is "interactive" or "batch" (default).
	Priority string `json:"priority,omitempty"`
	Params   Params `json:"params"`
	Items    []Item `json:"items"`
}

// RunResponse is the coordinator's (and worker's) batch reply; Results
// is index-aligned with the request's Items.
type RunResponse struct {
	Results []ItemResult `json:"results"`
	// CacheHits counts items served from the fleet cache (coordinator
	// responses only).
	CacheHits int `json:"cache_hits"`
	// Spans carries the worker's engine spans back to the coordinator
	// (worker responses only; already parented under the request's
	// per-item attempt contexts).
	Spans []tracing.Span `json:"spans,omitempty"`
}

// WorkerInfo is one row of GET /v1/cluster/workers.
type WorkerInfo struct {
	ID         string `json:"id"`
	Addr       string `json:"addr"`
	Workers    int    `json:"workers"`
	Live       bool   `json:"live"`
	LastSeenMS int64  `json:"last_seen_ms_ago"`
}
