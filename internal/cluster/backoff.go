package cluster

import (
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Backoff computes capped exponential retry delays with full jitter:
// attempt n waits a uniform duration in [0, min(Max, Base·2ⁿ)]. Full
// jitter (rather than equal or decorrelated jitter) is what breaks up
// thundering herds — after a coordinator restart, a fleet of workers
// retrying in lockstep would otherwise arrive in synchronized waves.
//
// The zero value is usable and uses the defaults below. Rand and Sleep
// are injectable so tests assert pacing without sleeping.
type Backoff struct {
	// Base is the first attempt's delay ceiling (default 100 ms).
	Base time.Duration
	// Max caps the delay ceiling (default 5 s).
	Max time.Duration
	// Rand returns a uniform variate in [0, 1); nil uses math/rand's
	// locked global source.
	Rand func() float64
	// Sleep waits for d or until ctx dies; nil uses a timer. Tests
	// inject a recorder here so retry loops run instantly.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Defaults shared by every fleet retry loop.
const (
	defaultBackoffBase = 100 * time.Millisecond
	defaultBackoffMax  = 5 * time.Second
)

func (b Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return defaultBackoffBase
}

func (b Backoff) max() time.Duration {
	if b.Max > 0 {
		return b.Max
	}
	return defaultBackoffMax
}

func (b Backoff) rand() float64 {
	if b.Rand != nil {
		return b.Rand()
	}
	return rand.Float64()
}

// Delay returns the jittered delay for attempt n (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	ceil := b.base()
	for i := 0; i < attempt && ceil < b.max(); i++ {
		ceil *= 2
	}
	if ceil > b.max() {
		ceil = b.max()
	}
	return time.Duration(b.rand() * float64(ceil))
}

// Wait sleeps for attempt n's jittered delay, honouring ctx.
func (b Backoff) Wait(ctx context.Context, attempt int) error {
	return b.WaitAtLeast(ctx, attempt, 0)
}

// WaitAtLeast sleeps for attempt n's jittered delay raised to at least
// floor — the hook for server-directed pacing: a Retry-After header
// becomes the floor, and the jittered exponential takes over when it
// exceeds the server's hint.
func (b Backoff) WaitAtLeast(ctx context.Context, attempt int, floor time.Duration) error {
	d := b.Delay(attempt)
	if d < floor {
		d = floor
	}
	if b.Sleep != nil {
		return b.Sleep(ctx, d)
	}
	return sleepCtx(ctx, d)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// JitterPhase returns a uniform duration in [0, d) — the initial offset
// that desynchronizes periodic loops (heartbeats) across a fleet
// started at the same instant.
func (b Backoff) JitterPhase(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(b.rand() * float64(d))
}

// JitterAround returns d perturbed by ±frac (e.g. frac 0.1 yields a
// uniform duration in [0.9·d, 1.1·d]) — steady-state tick spacing that
// keeps desynchronized loops from re-synchronizing.
func (b Backoff) JitterAround(d time.Duration, frac float64) time.Duration {
	if d <= 0 || frac <= 0 {
		return d
	}
	return time.Duration(float64(d) * (1 - frac + 2*frac*b.rand()))
}

// parseRetryAfter extracts a Retry-After delay from a response header.
// Only the delta-seconds form is parsed (the fleet never sends HTTP
// dates); absent or malformed headers yield zero, meaning "no hint".
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryAfterSeconds renders a delay as a Retry-After header value,
// rounding up so a sub-second hint never becomes "0" (which clients
// read as "immediately").
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
