package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"hcapp/internal/telemetry"
)

// TestBreakerStateMachine drives the pure state machine through a full
// trip/cooldown/probe cycle.
func TestBreakerStateMachine(t *testing.T) {
	var b breaker
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	cooldown := 5 * time.Second

	if !b.routable(now) {
		t.Fatal("fresh breaker not routable")
	}
	// Two failures stay closed at threshold 3; the third trips.
	for i := 0; i < 2; i++ {
		if b.result(false, 3, now, cooldown) {
			t.Fatalf("failure %d tripped below threshold", i+1)
		}
	}
	if !b.routable(now) {
		t.Fatal("breaker opened below threshold")
	}
	if !b.result(false, 3, now, cooldown) {
		t.Fatal("threshold failure did not trip")
	}
	if b.state != brkOpen || b.routable(now) {
		t.Fatalf("tripped breaker state=%d routable=%v", b.state, b.routable(now))
	}
	// Inside the cooldown it stays closed to traffic; after, it admits
	// exactly one probe.
	if b.routable(now.Add(cooldown - time.Millisecond)) {
		t.Fatal("breaker routable inside cooldown")
	}
	after := now.Add(cooldown)
	if !b.routable(after) {
		t.Fatal("breaker not routable after cooldown")
	}
	b.take()
	if b.state != brkHalfOpen || !b.probing {
		t.Fatalf("take() gave state=%d probing=%v, want half-open probe", b.state, b.probing)
	}
	if b.routable(after) {
		t.Fatal("second probe admitted while one is in flight")
	}
	// A failed probe re-trips; a later successful probe closes.
	if !b.result(false, 3, after, cooldown) {
		t.Fatal("failed half-open probe did not re-trip")
	}
	after = after.Add(cooldown)
	b.take()
	if b.result(true, 3, after, cooldown) {
		t.Fatal("successful probe reported a trip")
	}
	if b.state != brkClosed || b.consecFails != 0 {
		t.Fatalf("successful probe left state=%d consecFails=%d", b.state, b.consecFails)
	}
	// abort releases the probe slot without a verdict.
	b.state = brkHalfOpen
	b.take()
	b.abort()
	if b.probing {
		t.Fatal("abort left the probe slot claimed")
	}
}

// flakyWorker proxies to a real worker once healthy; while unhealthy
// every slice gets a 500. Register/heartbeat always work — this is the
// worker that is alive enough to heartbeat but failing every slice,
// exactly what the breaker (and not the dead flag) defends against.
type flakyWorker struct {
	healthy atomic.Bool
	real    http.Handler
}

func (f *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !f.healthy.Load() {
		http.Error(w, "injected failure", http.StatusInternalServerError)
		return
	}
	f.real.ServeHTTP(w, r)
}

// TestBreakerTripsAndRecovers: a heartbeating-but-failing worker trips
// its breaker after BreakerThreshold consecutive slice failures and is
// held out for the cooldown even though heartbeats keep reviving the
// dead flag; after the cooldown a half-open probe readmits it once it
// answers again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	c := NewCoordinator(CoordinatorConfig{
		HeartbeatEvery:   time.Second,
		ExpireAfter:      time.Hour, // heartbeat expiry out of the picture
		BreakerThreshold: 3,
		BreakerCooldown:  5 * time.Second,
		HedgeAfter:       -1, // hedging off: this test is about the breaker
		Logf:             t.Logf,
	}).WithNow(clk.now).WithMetrics(NewMetrics(reg))

	inner := NewWorker(WorkerConfig{ID: "a-flaky", Workers: 2, Logf: t.Logf})
	flaky := &flakyWorker{real: inner.Handler()}
	ts := httptest.NewServer(flaky)
	t.Cleanup(ts.Close)
	if _, err := c.Register(RegisterRequest{ID: "a-flaky", Addr: ts.URL, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	good := startWorker(t, "b-good")
	registerWorker(t, c, good)

	p := testParams()
	items := testItems(t, 6)
	want := localResults(t, p, items)

	// Each batch round gives the flaky worker one slice failure, then
	// marks it dead; a heartbeat revives it for the next batch. Three
	// rounds reach the threshold and trip the breaker.
	for round := 0; round < 3; round++ {
		resp, err := c.Execute(context.Background(), RunRequest{Priority: PriorityBatch, Params: p, Items: items[round : round+1]})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if resp.Results[0].Error != "" {
			t.Fatalf("round %d: item failed: %s", round, resp.Results[0].Error)
		}
		c.Heartbeat("a-flaky")
	}

	m := gatherMetrics(t, reg)
	if got := m["hcapp_cluster_breaker_trips_total"]; got != 1 {
		t.Fatalf("hcapp_cluster_breaker_trips_total = %g, want 1", got)
	}
	if got := m["hcapp_cluster_breaker_state{worker=a-flaky}"]; got != brkOpen {
		t.Fatalf("breaker_state{a-flaky} = %g, want %d (open)", got, brkOpen)
	}
	// The heartbeat cleared dead, but the tripped breaker holds the
	// worker out of rotation for the whole cooldown.
	if c.WorkersLive() != 1 {
		t.Fatalf("WorkersLive = %d with breaker open, want 1", c.WorkersLive())
	}

	// Past the cooldown the worker answers again: the half-open probe
	// succeeds, the breaker closes, and both workers serve traffic.
	clk.advance(6 * time.Second)
	flaky.healthy.Store(true)
	c.Heartbeat("a-flaky")
	if c.WorkersLive() != 2 {
		t.Fatalf("WorkersLive = %d after cooldown, want 2", c.WorkersLive())
	}
	resp, err := c.Execute(context.Background(), RunRequest{Priority: PriorityBatch, Params: p, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if resp.Results[i].Error != "" {
			t.Fatalf("item %d failed after recovery: %s", i, resp.Results[i].Error)
		}
		if !reflect.DeepEqual(*resp.Results[i].Result, want[i]) {
			t.Fatalf("item %d diverged from local run after recovery", i)
		}
	}
	m = gatherMetrics(t, reg)
	if got := m["hcapp_cluster_breaker_state{worker=a-flaky}"]; got != brkClosed {
		t.Fatalf("breaker_state{a-flaky} = %g after recovery, want %d (closed)", got, brkClosed)
	}
	if got := m["hcapp_cluster_breaker_trips_total"]; got != 1 {
		t.Fatalf("hcapp_cluster_breaker_trips_total = %g after recovery, want still 1", got)
	}
}

// TestHedgeStragglerSlice: a primary worker that sits on its slice past
// HedgeAfter gets hedged onto the second live worker, the hedge's
// response wins, and the batch still matches the local reference.
func TestHedgeStragglerSlice(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCoordinator(CoordinatorConfig{
		HedgeAfter: 50 * time.Millisecond,
		Logf:       t.Logf,
	}).WithMetrics(NewMetrics(reg))

	// The straggler sorts first, so the single-slice batch routes to it.
	inner := NewWorker(WorkerConfig{ID: "a-slow", Workers: 2, Logf: t.Logf})
	innerH := inner.Handler()
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			return // cancelled: the hedge won
		case <-time.After(10 * time.Second):
		}
		innerH.ServeHTTP(w, r)
	}))
	t.Cleanup(slow.Close)
	if _, err := c.Register(RegisterRequest{ID: "a-slow", Addr: slow.URL, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	registerWorker(t, c, startWorker(t, "b-fast"))

	p := testParams()
	items := testItems(t, 1)
	done := make(chan struct{})
	var resp *RunResponse
	var execErr error
	go func() {
		defer close(done)
		resp, execErr = c.Execute(context.Background(), RunRequest{Priority: PriorityBatch, Params: p, Items: items})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hedged batch did not finish; hedge never fired?")
	}
	if execErr != nil {
		t.Fatal(execErr)
	}
	want := localResults(t, p, items)
	if resp.Results[0].Error != "" {
		t.Fatalf("hedged item failed: %s", resp.Results[0].Error)
	}
	if !reflect.DeepEqual(*resp.Results[0].Result, want[0]) {
		t.Fatal("hedged result diverged from local run")
	}

	m := gatherMetrics(t, reg)
	if got := m["hcapp_cluster_hedged_slices_total"]; got != 1 {
		t.Fatalf("hcapp_cluster_hedged_slices_total = %g, want 1", got)
	}
	if got := m["hcapp_cluster_hedge_wins_total"]; got != 1 {
		t.Fatalf("hcapp_cluster_hedge_wins_total = %g, want 1", got)
	}
}

// TestHedgeDisabled: negative HedgeAfter turns hedging off — the
// resolved delay is 0 and dispatch never arms the hedge timer.
func TestHedgeDisabled(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{HedgeAfter: -1, Logf: t.Logf})
	if d := c.hedgeDelay(); d != 0 {
		t.Fatalf("hedgeDelay() = %v with HedgeAfter<0, want 0", d)
	}
}

// TestHedgeDelayAdaptive: with no configured threshold the delay tracks
// 2× the p90 of the shared slice-duration histogram (the same series
// /metrics exports), floored at 500 ms, and falls back to a generous
// default until enough samples exist — or when no metrics are attached
// at all.
func TestHedgeDelayAdaptive(t *testing.T) {
	bare := NewCoordinator(CoordinatorConfig{Logf: t.Logf})
	for i := 0; i < 64; i++ {
		bare.observeSliceLatency(100 * time.Millisecond)
	}
	if d := bare.hedgeDelay(); d != 2*time.Second {
		t.Fatalf("hedgeDelay() = %v without metrics, want 2s default", d)
	}

	c := NewCoordinator(CoordinatorConfig{Logf: t.Logf}).
		WithMetrics(NewMetrics(telemetry.NewRegistry()))
	if d := c.hedgeDelay(); d != 2*time.Second {
		t.Fatalf("cold hedgeDelay() = %v, want 2s default", d)
	}
	for i := 0; i < 10; i++ {
		c.observeSliceLatency(100 * time.Millisecond)
	}
	if d := c.hedgeDelay(); d != 500*time.Millisecond {
		t.Fatalf("hedgeDelay() = %v with 100ms latencies, want 500ms floor", d)
	}
	for i := 0; i < 64; i++ {
		c.observeSliceLatency(time.Second)
	}
	// The 1 s samples dominate: the interpolated p90 sits high in the
	// (0.5s, 1s] bucket, so the threshold lands a bit under 2×1s.
	if d := c.hedgeDelay(); d < 1500*time.Millisecond || d > 2*time.Second {
		t.Fatalf("hedgeDelay() = %v with 1s latencies, want ~2×p90 in (1.5s, 2s]", d)
	}
}
