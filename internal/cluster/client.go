package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"hcapp/internal/config"
	"hcapp/internal/experiment"
	"hcapp/internal/sim"
	"hcapp/internal/tracing"
)

// randomID returns a 12-hex-digit random id (worker identities).
func randomID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Client submits batches to a coordinator. It implements
// experiment.RemoteRunner, so pointing Evaluator.Remote at a Client
// routes every uncached simulation of a CLI suite through the fleet
// while local caching, single-flight, and rendering stay untouched.
//
// Transport failures are retried: dropped connections, 5xx responses,
// 429 throttles, and truncated or malformed bodies all back off with
// capped exponential delays plus full jitter (Backoff) until
// MaxAttempts runs out. Retrying a batch is always safe — every item is
// a pure function of its content-addressed key, and the coordinator's
// fleet cache dedups re-submitted work. A Retry-After header on a 429
// or 503 response floors the next delay, so server-directed pacing wins
// over the client's own schedule.
type Client struct {
	base string
	http *http.Client
	// Tenant buckets this client's requests for rate limiting.
	Tenant string
	// Priority is the client's class: PriorityBatch (default for CLI
	// suites) or PriorityInteractive.
	Priority string
	// MaxAttempts bounds transport-level attempts per call (default
	// 10). 1 means fail on the first error, restoring pre-retry
	// behavior.
	MaxAttempts int
	// Backoff paces the retries; the zero value uses the shared
	// defaults (100 ms base, 5 s cap, full jitter).
	Backoff Backoff
}

// NewClient builds a client for the coordinator at base
// ("http://host:port", trailing slash tolerated).
func NewClient(base string) (*Client, error) {
	base = strings.TrimRight(base, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return nil, fmt.Errorf("cluster: coordinator URL %q must start with http:// or https://", base)
	}
	return &Client{base: base, http: &http.Client{}, Priority: PriorityBatch}, nil
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 10
}

// Ping waits until the coordinator answers /readyz (workers registered,
// not draining), retrying connection failures and 503s with jittered
// backoff until the deadline. A Retry-After header on the 503 floors
// the next probe delay. It returns an error when the coordinator stays
// unreachable or unready — the CLIs exit 2 on that.
func (c *Client) Ping(ctx context.Context, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	var last error
	probe := &http.Client{Timeout: 2 * time.Second}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
		if err != nil {
			return err
		}
		var floor time.Duration
		resp, err := probe.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			floor = parseRetryAfter(resp.Header)
			last = fmt.Errorf("coordinator %s not ready: /readyz status %d", c.base, resp.StatusCode)
		} else {
			last = fmt.Errorf("coordinator %s unreachable: %w", c.base, err)
		}
		if time.Now().After(deadline) {
			return last
		}
		if err := c.Backoff.WaitAtLeast(ctx, attempt, floor); err != nil {
			return err
		}
	}
}

// Run submits one batch and returns its index-aligned results, retrying
// transport-level failures per the client's backoff policy.
func (c *Client) Run(ctx context.Context, params Params, items []Item) (*RunResponse, error) {
	body, err := json.Marshal(RunRequest{
		Tenant:   c.Tenant,
		Priority: c.Priority,
		Params:   params,
		Items:    items,
	})
	if err != nil {
		return nil, err
	}
	attempts := c.maxAttempts()
	var last error
	var floor time.Duration
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.Backoff.WaitAtLeast(ctx, attempt-1, floor); err != nil {
				return nil, err
			}
		}
		resp, retryable, ra, err := c.runOnce(ctx, body, len(items))
		if err == nil {
			return resp, nil
		}
		if !retryable || ctx.Err() != nil {
			return nil, err
		}
		last, floor = err, ra
	}
	return nil, last
}

// runOnce performs one wire attempt. retryable classifies the failure:
// transport errors, 5xx, 429, and truncated/short bodies are transient
// (the batch is idempotent); 4xx verdicts about the request itself are
// permanent.
func (c *Client) runOnce(ctx context.Context, body []byte, n int) (_ *RunResponse, retryable bool, retryAfter time.Duration, _ error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/cluster/run", bytes.NewReader(body))
	if err != nil {
		return nil, false, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	// A traced submitting context rides the wire, so the coordinator
	// parents its batch under the caller's span instead of opening a
	// fresh root.
	if _, sc, ok := tracing.FromContext(ctx); ok {
		tracing.Inject(req.Header, sc)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, true, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ae apiError
		json.NewDecoder(resp.Body).Decode(&ae)
		if ae.Error == "" {
			ae.Error = fmt.Sprintf("status %d", resp.StatusCode)
		}
		ra := parseRetryAfter(resp.Header)
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			return nil, true, ra, fmt.Errorf("%w: %s", ErrThrottled, ae.Error)
		case resp.StatusCode >= 500:
			return nil, true, ra, fmt.Errorf("cluster: run: %s", ae.Error)
		default:
			return nil, false, 0, fmt.Errorf("cluster: run: %s", ae.Error)
		}
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		// A truncated or garbled body is a transport failure, not a
		// verdict: retry the whole batch rather than assembling a
		// partial response.
		return nil, true, 0, fmt.Errorf("cluster: run: reading response: %w", err)
	}
	if len(rr.Results) != n {
		return nil, true, 0, fmt.Errorf("cluster: run: %d results for %d items", len(rr.Results), n)
	}
	return &rr, false, 0, nil
}

// RunRemote implements experiment.RemoteRunner: one uncached spec
// becomes a one-item fleet batch.
func (c *Client) RunRemote(ctx context.Context, seed int64, targetDur sim.Time, maxDurFactor, fixedV float64, spec experiment.RunSpec) (experiment.RunResult, error) {
	wire := SpecOf(spec)
	resp, err := c.Run(ctx, Params{
		Seed:         seed,
		TargetDurNS:  targetDur,
		MaxDurFactor: maxDurFactor,
		FixedV:       fixedV,
	}, []Item{{Spec: &wire}})
	if err != nil {
		return experiment.RunResult{}, err
	}
	ir := resp.Results[0]
	if ir.Error != "" {
		return experiment.RunResult{}, fmt.Errorf("cluster: remote run: %s", ir.Error)
	}
	if ir.Result == nil {
		return experiment.RunResult{}, fmt.Errorf("cluster: remote run returned no result")
	}
	return ir.Result.RunResult(spec), nil
}

// ScalingCellFunc adapts the client to experiment.ScalingConfig.Cell so
// hcapp-sweep's chiplet-count sweep executes cell-by-cell on the fleet.
func (c *Client) ScalingCellFunc() func(ctx context.Context, cfg config.SystemConfig, sc experiment.ScalingConfig, triples int, period sim.Time, limit float64) (float64, float64, error) {
	return func(ctx context.Context, cfg config.SystemConfig, sc experiment.ScalingConfig, triples int, period sim.Time, limit float64) (float64, float64, error) {
		cell := ScalingCell{
			Combo:          sc.Combo.Name,
			Network:        sc.Network,
			Triples:        triples,
			PeriodNS:       period,
			LimitW:         limit,
			WindowNS:       sc.Window,
			DurNS:          sc.Dur,
			CentralFloorNS: sc.CentralFloor,
			LimitPerTriple: sc.LimitPerTriple,
			Seed:           cfg.Seed,
		}
		resp, err := c.Run(ctx, Params{Seed: cfg.Seed}, []Item{{Scaling: &cell}})
		if err != nil {
			return 0, 0, err
		}
		ir := resp.Results[0]
		if ir.Error != "" {
			return 0, 0, fmt.Errorf("cluster: scaling cell: %s", ir.Error)
		}
		if ir.Scaling == nil {
			return 0, 0, fmt.Errorf("cluster: scaling cell returned no result")
		}
		return ir.Scaling.MaxOverLimit, ir.Scaling.PPE, nil
	}
}
