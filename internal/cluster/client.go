package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"hcapp/internal/config"
	"hcapp/internal/experiment"
	"hcapp/internal/sim"
)

// randomID returns a 12-hex-digit random id (worker identities).
func randomID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Client submits batches to a coordinator. It implements
// experiment.RemoteRunner, so pointing Evaluator.Remote at a Client
// routes every uncached simulation of a CLI suite through the fleet
// while local caching, single-flight, and rendering stay untouched.
type Client struct {
	base string
	http *http.Client
	// Tenant buckets this client's requests for rate limiting.
	Tenant string
	// Priority is the client's class: PriorityBatch (default for CLI
	// suites) or PriorityInteractive.
	Priority string
}

// NewClient builds a client for the coordinator at base
// ("http://host:port", trailing slash tolerated).
func NewClient(base string) (*Client, error) {
	base = strings.TrimRight(base, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return nil, fmt.Errorf("cluster: coordinator URL %q must start with http:// or https://", base)
	}
	return &Client{base: base, http: &http.Client{}, Priority: PriorityBatch}, nil
}

// Ping waits until the coordinator answers /readyz (workers registered,
// not draining), retrying connection failures and 503s until the
// deadline. It returns an error when the coordinator stays unreachable
// or unready — the CLIs exit 2 on that.
func (c *Client) Ping(ctx context.Context, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	var last error
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := (&http.Client{Timeout: 2 * time.Second}).Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("coordinator %s not ready: /readyz status %d", c.base, resp.StatusCode)
		} else {
			last = fmt.Errorf("coordinator %s unreachable: %w", c.base, err)
		}
		if time.Now().After(deadline) {
			return last
		}
		select {
		case <-time.After(250 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Run submits one batch and returns its index-aligned results.
func (c *Client) Run(ctx context.Context, params Params, items []Item) (*RunResponse, error) {
	body, err := json.Marshal(RunRequest{
		Tenant:   c.Tenant,
		Priority: c.Priority,
		Params:   params,
		Items:    items,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/cluster/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ae apiError
		json.NewDecoder(resp.Body).Decode(&ae)
		if ae.Error == "" {
			ae.Error = fmt.Sprintf("status %d", resp.StatusCode)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			return nil, fmt.Errorf("%w: %s", ErrThrottled, ae.Error)
		}
		return nil, fmt.Errorf("cluster: run: %s", ae.Error)
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, err
	}
	if len(rr.Results) != len(items) {
		return nil, fmt.Errorf("cluster: run: %d results for %d items", len(rr.Results), len(items))
	}
	return &rr, nil
}

// RunRemote implements experiment.RemoteRunner: one uncached spec
// becomes a one-item fleet batch.
func (c *Client) RunRemote(ctx context.Context, seed int64, targetDur sim.Time, maxDurFactor, fixedV float64, spec experiment.RunSpec) (experiment.RunResult, error) {
	wire := SpecOf(spec)
	resp, err := c.Run(ctx, Params{
		Seed:         seed,
		TargetDurNS:  targetDur,
		MaxDurFactor: maxDurFactor,
		FixedV:       fixedV,
	}, []Item{{Spec: &wire}})
	if err != nil {
		return experiment.RunResult{}, err
	}
	ir := resp.Results[0]
	if ir.Error != "" {
		return experiment.RunResult{}, fmt.Errorf("cluster: remote run: %s", ir.Error)
	}
	if ir.Result == nil {
		return experiment.RunResult{}, fmt.Errorf("cluster: remote run returned no result")
	}
	return ir.Result.RunResult(spec), nil
}

// ScalingCellFunc adapts the client to experiment.ScalingConfig.Cell so
// hcapp-sweep's chiplet-count sweep executes cell-by-cell on the fleet.
func (c *Client) ScalingCellFunc() func(ctx context.Context, cfg config.SystemConfig, sc experiment.ScalingConfig, triples int, period sim.Time, limit float64) (float64, float64, error) {
	return func(ctx context.Context, cfg config.SystemConfig, sc experiment.ScalingConfig, triples int, period sim.Time, limit float64) (float64, float64, error) {
		cell := ScalingCell{
			Combo:          sc.Combo.Name,
			Network:        sc.Network,
			Triples:        triples,
			PeriodNS:       period,
			LimitW:         limit,
			WindowNS:       sc.Window,
			DurNS:          sc.Dur,
			CentralFloorNS: sc.CentralFloor,
			LimitPerTriple: sc.LimitPerTriple,
			Seed:           cfg.Seed,
		}
		resp, err := c.Run(ctx, Params{Seed: cfg.Seed}, []Item{{Scaling: &cell}})
		if err != nil {
			return 0, 0, err
		}
		ir := resp.Results[0]
		if ir.Error != "" {
			return 0, 0, fmt.Errorf("cluster: scaling cell: %s", ir.Error)
		}
		if ir.Scaling == nil {
			return 0, 0, fmt.Errorf("cluster: scaling cell returned no result")
		}
		return ir.Scaling.MaxOverLimit, ir.Scaling.PPE, nil
	}
}
