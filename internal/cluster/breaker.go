package cluster

import "time"

// Circuit-breaker states, as published on
// hcapp_cluster_breaker_state{worker}.
const (
	brkClosed   = 0
	brkOpen     = 1
	brkHalfOpen = 2
)

// breaker is one worker's transport circuit breaker, manipulated only
// under Coordinator.mu. It complements the dead flag: dead stops
// routing until the next heartbeat (fast reaction, fast forgiveness),
// while a tripped breaker holds the worker out of rotation for a full
// cooldown even though it keeps heartbeating — the defense against a
// worker that is alive enough to heartbeat but failing every slice
// (flapping process, asymmetric partition, chaos 5xx burst). After the
// cooldown the breaker half-opens: exactly one probe slice is routed
// to the worker, and its outcome closes the breaker or re-trips it.
type breaker struct {
	state       int
	consecFails int
	openedUntil time.Time
	// probing marks the single in-flight half-open probe; while set, no
	// other slice is routed to the worker.
	probing bool
}

// routable reports whether the breaker admits traffic at time now.
// Pure — the open→half-open transition happens in take, when a
// dispatch actually claims the worker, so a mere liveness refresh never
// wedges the probe slot.
func (b *breaker) routable(now time.Time) bool {
	switch b.state {
	case brkOpen:
		return !now.Before(b.openedUntil) && !b.probing
	case brkHalfOpen:
		return !b.probing
	default:
		return true
	}
}

// take claims the worker for a dispatch: an open (cooldown-expired) or
// half-open breaker becomes the single in-flight probe. Closed
// breakers are untouched. Callers hold Coordinator.mu and must later
// report the outcome (result or abort), or the probe slot leaks.
func (b *breaker) take() {
	if b.state == brkOpen || b.state == brkHalfOpen {
		b.state = brkHalfOpen
		b.probing = true
	}
}

// abort releases a claimed probe without an outcome (the dispatch was
// cancelled before the slice was posted).
func (b *breaker) abort() { b.probing = false }

// result records a slice outcome. It reports whether this outcome
// tripped the breaker (for logging and the trips counter): a trip is
// any transition into open — threshold consecutive failures from
// closed, or a failed half-open probe.
func (b *breaker) result(ok bool, threshold int, now time.Time, cooldown time.Duration) (tripped bool) {
	b.probing = false
	if ok {
		b.state = brkClosed
		b.consecFails = 0
		return false
	}
	b.consecFails++
	if b.state == brkHalfOpen || b.consecFails >= threshold {
		b.state = brkOpen
		b.openedUntil = now.Add(cooldown)
		return true
	}
	return false
}
