package cluster

import (
	"encoding/json"
	"testing"
)

// FuzzClusterProtocol drives the fleet's JSON decode paths — every body
// a coordinator, worker, or client parses off the wire — with arbitrary
// bytes. Chaos injection truncates and garbles exactly these bodies, so
// the decoders must fail with an error, never a panic, and anything
// they do accept must survive key derivation and re-encoding. Run
// longer with
//
//	go test -fuzz=FuzzClusterProtocol ./internal/cluster
//
// (scripts/ci.sh runs a short -fuzztime pass on every build).
func FuzzClusterProtocol(f *testing.F) {
	// Seed corpus: one well-formed instance of each wire body, plus
	// truncations and type confusions chaos or a buggy peer could send.
	seeds := []string{
		`{"id":"w1","addr":"http://h:1","workers":2}`,
		`{"id":"w1"}`,
		`{"heartbeat_every_ms":2000,"expire_after_ms":6000}`,
		`{"tenant":"t1","priority":"batch","params":{"seed":42,"target_dur_ns":500000},"items":[{"spec":{"combo":"Low-Low","scheme":{"kind":0},"limit":{}}}]}`,
		`{"params":{"seed":1},"items":[{"scaling":{"combo":"Low-Low","triples":4,"period_ns":1000,"limit_w":12.5}}]}`,
		`{"params":{"seed":1},"items":[{}]}`,
		`{"params":{"seed":1},"items":[{"spec":{},"scaling":{}}]}`,
		`{"results":[{"result":{"avg_power":1.5,"ppe":0.8,"completed":true}},{"error":"boom"}],"cache_hits":1}`,
		`{"results":[{"result":{"avg_power":1.5`, // truncated mid-object
		`{"results":null}`,
		`{"results":[{"result":{"energy":{"total_j":1}}}]}`,
		`{"id":123}`, // type confusion
		`[]`,
		`null`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var reg RegisterRequest
		if json.Unmarshal(data, &reg) == nil {
			if _, err := json.Marshal(reg); err != nil {
				t.Fatalf("re-marshal RegisterRequest: %v", err)
			}
		}
		var hb HeartbeatRequest
		_ = json.Unmarshal(data, &hb)

		var rq RunRequest
		if json.Unmarshal(data, &rq) == nil {
			// Accepted batches must survive key derivation: item.key
			// either errors (malformed item) or returns a stable handle —
			// it must never panic on decoded wire data.
			for _, it := range rq.Items {
				k1, err := it.key(rq.Params)
				if err != nil {
					continue
				}
				k2, err := it.key(rq.Params)
				if err != nil || k1 != k2 {
					t.Fatalf("item key unstable: %q then (%q, %v)", k1, k2, err)
				}
			}
			if _, err := json.Marshal(rq); err != nil {
				t.Fatalf("re-marshal RunRequest: %v", err)
			}
		}

		var rr RunResponse
		if json.Unmarshal(data, &rr) == nil {
			if _, err := json.Marshal(rr); err != nil {
				t.Fatalf("re-marshal RunResponse: %v", err)
			}
		}
	})
}
