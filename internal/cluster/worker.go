package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hcapp/internal/config"
	"hcapp/internal/experiment"
	"hcapp/internal/tracing"
)

// WorkerConfig parameterizes one fleet worker.
type WorkerConfig struct {
	// ID names the worker; empty generates a random id.
	ID string
	// Coordinator is the coordinator's base URL ("http://host:port").
	Coordinator string
	// AdvertiseAddr is the base URL the coordinator dials back for
	// slices; it must be reachable from the coordinator.
	AdvertiseAddr string
	// Workers sizes the local simulation pool (default 2).
	Workers int
	// Client talks to the coordinator; nil uses a 10 s-timeout client
	// (register/heartbeat are small control messages).
	Client *http.Client
	// Backoff paces registration retries and jitters the heartbeat
	// phase; the zero value uses the shared defaults. Tests inject a
	// recording Sleep here so retry loops run instantly.
	Backoff Backoff
	// Logf receives operational events; nil means log.Printf.
	Logf func(format string, args ...any)
	// Tracer records engine spans for items that arrive with trace
	// context. Spans both land in this worker's local store (its own
	// /v1/traces shows what it executed) and travel back to the
	// coordinator in the slice response. Nil disables worker-side spans.
	Tracer *tracing.Tracer
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.ID == "" {
		c.ID = "w-" + randomID()
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Worker executes batch slices the coordinator ships over. It holds one
// bounded Runner so slices parallelize across local cores, and builds a
// fresh evaluator per request from the wire Params — identical to the
// evaluator a standalone run would use, which is what makes fleet output
// byte-identical to single-node output.
type Worker struct {
	cfg    WorkerConfig
	runner *experiment.Runner
	// heartbeatEvery is learned from the register response.
	heartbeatEvery time.Duration
	registered     atomic.Bool
}

// NewWorker builds a worker (not yet registered).
func NewWorker(cfg WorkerConfig) *Worker {
	cfg = cfg.withDefaults()
	return &Worker{
		cfg:            cfg,
		runner:         experiment.NewRunner(cfg.Workers),
		heartbeatEvery: 2 * time.Second,
	}
}

// ID reports the worker's fleet identity.
func (w *Worker) ID() string { return w.cfg.ID }

// Ready reports whether the worker has successfully registered — the
// /readyz criterion: an unregistered worker receives no traffic, so a
// load balancer should not route to it either.
func (w *Worker) Ready() bool { return w.registered.Load() }

// Register announces the worker to the coordinator and adopts the
// advertised heartbeat cadence.
func (w *Worker) Register(ctx context.Context) error {
	body, err := json.Marshal(RegisterRequest{
		ID:      w.cfg.ID,
		Addr:    w.cfg.AdvertiseAddr,
		Workers: w.cfg.Workers,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.cfg.Coordinator+"/v1/cluster/register", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: register: coordinator returned %d", resp.StatusCode)
	}
	var rr RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return err
	}
	if rr.HeartbeatEveryMS > 0 {
		w.heartbeatEvery = time.Duration(rr.HeartbeatEveryMS) * time.Millisecond
	}
	w.registered.Store(true)
	return nil
}

// heartbeat sends one liveness ping; a 404 means the coordinator forgot
// us (restart, expiry), so re-register.
func (w *Worker) heartbeat(ctx context.Context) error {
	body, _ := json.Marshal(HeartbeatRequest{ID: w.cfg.ID})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.cfg.Coordinator+"/v1/cluster/heartbeat", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		w.registered.Store(false)
		return w.Register(ctx)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: heartbeat: coordinator returned %d", resp.StatusCode)
	}
	return nil
}

// Run registers (retrying with capped jittered backoff until ctx dies)
// and then heartbeats until ctx dies. The heartbeat loop starts at a
// random phase inside the first interval and keeps ±10% jitter on every
// tick, so a fleet of workers restarted together — or reconnecting
// after a coordinator restart — spreads its control traffic instead of
// arriving as a thundering herd. It returns nil on a clean context
// cancellation.
func (w *Worker) Run(ctx context.Context) error {
	for attempt := 0; ; attempt++ {
		if err := w.Register(ctx); err == nil {
			break
		} else {
			w.cfg.Logf("cluster: worker %s: register with %s failed: %v (retrying)",
				w.cfg.ID, w.cfg.Coordinator, err)
		}
		if err := w.cfg.Backoff.Wait(ctx, attempt); err != nil {
			return err
		}
	}
	w.cfg.Logf("cluster: worker %s registered with %s (heartbeat every %s)",
		w.cfg.ID, w.cfg.Coordinator, w.heartbeatEvery)
	// Random phase first, jittered interval thereafter.
	next := w.cfg.Backoff.JitterPhase(w.heartbeatEvery)
	for {
		t := time.NewTimer(next)
		select {
		case <-t.C:
			if err := w.heartbeat(ctx); err != nil && ctx.Err() == nil {
				w.cfg.Logf("cluster: worker %s: heartbeat failed: %v", w.cfg.ID, err)
			}
			next = w.cfg.Backoff.JitterAround(w.heartbeatEvery, 0.1)
		case <-ctx.Done():
			t.Stop()
			return nil
		}
	}
}

// Handler mounts the worker's HTTP surface:
//
//	POST /v1/worker/run  execute a batch slice
//	GET  /healthz        process liveness
//	GET  /readyz         registered with the coordinator
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/worker/run", w.handleRun)
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", func(rw http.ResponseWriter, r *http.Request) {
		if !w.Ready() {
			writeError(rw, http.StatusServiceUnavailable, "not registered with coordinator")
			return
		}
		writeJSON(rw, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

func (w *Worker) handleRun(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 8<<20)).Decode(&req); err != nil {
		writeError(rw, http.StatusBadRequest, "invalid slice request: %v", err)
		return
	}
	resp, err := w.RunSlice(r.Context(), req.Params, req.Items)
	if err != nil {
		writeError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(rw, http.StatusOK, resp)
}

// RunSlice executes the items on the local pool and returns
// index-aligned results. A panicking simulation fails only its own item
// (containment mirrors the standalone job manager): the stack is logged
// once with the item index so fleet debugging has something to go on.
func (w *Worker) RunSlice(ctx context.Context, params Params, items []Item) (*RunResponse, error) {
	resp := &RunResponse{Results: make([]ItemResult, len(items))}
	// The evaluator stays runner-less: items fan out through the pool
	// right here, and nesting RunSpecs batches inside pool tasks would
	// deadlock the shared runner.
	ev := params.evaluator()
	// Workers always carry the energy ledger: it is passive (identical
	// simulated metrics), and it makes every fleet result — and every
	// fleet-cache hit — usable for coordinator-side chargeback no matter
	// which client's request populated the cache.
	ev.TrackEnergy = true
	var spanMu sync.Mutex
	err := w.runner.Tasks(ctx, len(items), func(ctx context.Context, i int) error {
		res, span := w.runItem(ctx, ev, params, items[i], i)
		resp.Results[i] = res
		if span.SpanID != "" {
			spanMu.Lock()
			resp.Spans = append(resp.Spans, span)
			spanMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Stable order regardless of pool scheduling: responses stay
	// byte-comparable across runs.
	sort.Slice(resp.Spans, func(a, b int) bool { return resp.Spans[a].Path < resp.Spans[b].Path })
	return resp, nil
}

func (w *Worker) runItem(ctx context.Context, ev *experiment.Evaluator, params Params, it Item, idx int) (out ItemResult, engSpan tracing.Span) {
	var eng *tracing.ActiveSpan
	if w.cfg.Tracer != nil && it.Trace != nil && it.Trace.Valid() {
		eng = w.cfg.Tracer.StartSpan(*it.Trace, "engine")
		eng.SetAttr("worker", w.cfg.ID)
	}
	defer func() {
		if r := recover(); r != nil {
			w.cfg.Logf("cluster: worker %s: item %d panicked: %v\n%s", w.cfg.ID, idx, r, debug.Stack())
			out = ItemResult{Error: fmt.Sprintf("panic: %v", r)}
		}
		if eng != nil {
			outcome := "ok"
			if out.Error != "" {
				outcome = "error"
			}
			eng.SetAttr("outcome", outcome)
			if out.Result != nil {
				eng.SetAttr("sim_ns", fmt.Sprintf("%d", int64(out.Result.DurationNS)))
				eng.SetAttr("control_cycles", fmt.Sprintf("%d", out.Result.ControlCycles))
			}
			engSpan = eng.End()
		}
	}()
	switch {
	case it.Spec != nil && it.Scaling == nil:
		spec, err := it.Spec.RunSpec()
		if err != nil {
			out = ItemResult{Error: err.Error()}
			return
		}
		res, err := ev.RunContext(ctx, spec)
		if err != nil {
			out = ItemResult{Error: err.Error()}
			return
		}
		r := ResultOf(res)
		out = ItemResult{Result: &r}
	case it.Scaling != nil && it.Spec == nil:
		out = runScalingItem(ctx, *it.Scaling)
	default:
		out = ItemResult{Error: "item must set exactly one of spec, scaling"}
	}
	return
}

// runScalingItem rebuilds the sweep-cell inputs and simulates it.
func runScalingItem(ctx context.Context, cell ScalingCell) ItemResult {
	combo, err := experiment.ComboByName(cell.Combo)
	if err != nil {
		return ItemResult{Error: err.Error()}
	}
	cfg := config.Default()
	cfg.Seed = cell.Seed
	sc := experiment.ScalingConfig{
		Network:        cell.Network,
		CentralFloor:   cell.CentralFloorNS,
		LimitPerTriple: cell.LimitPerTriple,
		Window:         cell.WindowNS,
		Combo:          combo,
		Dur:            cell.DurNS,
	}
	maxOver, ppe, err := experiment.RunScalingCell(ctx, cfg, sc, cell.Triples, cell.PeriodNS, cell.LimitW)
	if err != nil {
		return ItemResult{Error: err.Error()}
	}
	return ItemResult{Scaling: &ScalingCellResult{MaxOverLimit: maxOver, PPE: ppe}}
}
