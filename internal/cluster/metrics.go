package cluster

import "hcapp/internal/telemetry"

// Metrics is the coordinator's telemetry family set; docs/METRICS.md
// catalogues every series.
type Metrics struct {
	workersLive     *telemetry.Gauge
	resharded       *telemetry.Counter
	cacheHits       *telemetry.Counter
	items           *telemetry.Counter
	tenantThrottled *telemetry.CounterVec // tenant
	breakerState    *telemetry.GaugeVec   // worker
	breakerTrips    *telemetry.Counter
	hedged          *telemetry.Counter
	hedgeWins       *telemetry.Counter
}

// NewMetrics registers the cluster families on a registry.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		workersLive: reg.Gauge("hcapp_cluster_workers_live",
			"Registered workers whose heartbeat is current.").With(),
		resharded: reg.Counter("hcapp_cluster_jobs_resharded_total",
			"Batch items re-sharded to surviving workers after a worker died mid-slice.").With(),
		cacheHits: reg.Counter("hcapp_cluster_cache_hits_total",
			"Batch items served from the fleet-wide content-addressed result cache.").With(),
		items: reg.Counter("hcapp_cluster_items_total",
			"Batch items admitted by the coordinator (cache hits included).").With(),
		tenantThrottled: reg.Counter("hcapp_tenant_throttled_total",
			"Batches rejected with 429 by the per-tenant token bucket.", "tenant"),
		breakerState: reg.Gauge("hcapp_cluster_breaker_state",
			"Per-worker circuit-breaker state: 0 closed, 1 open, 2 half-open.", "worker"),
		breakerTrips: reg.Counter("hcapp_cluster_breaker_trips_total",
			"Circuit-breaker trips (closed/half-open to open) across all workers.").With(),
		hedged: reg.Counter("hcapp_cluster_hedged_slices_total",
			"Batch items re-issued to a second live worker after the hedge latency threshold.").With(),
		hedgeWins: reg.Counter("hcapp_cluster_hedge_wins_total",
			"Hedged slices where the hedge returned before the primary worker.").With(),
	}
}

func (m *Metrics) setWorkersLive(n int) {
	if m != nil {
		m.workersLive.Set(float64(n))
	}
}

func (m *Metrics) addResharded(n int) {
	if m != nil {
		m.resharded.Add(float64(n))
	}
}

func (m *Metrics) addCacheHits(n int) {
	if m != nil && n > 0 {
		m.cacheHits.Add(float64(n))
	}
}

func (m *Metrics) addItems(n int) {
	if m != nil {
		m.items.Add(float64(n))
	}
}

func (m *Metrics) setBreakerState(worker string, state int) {
	if m != nil {
		m.breakerState.With(worker).Set(float64(state))
	}
}

func (m *Metrics) addBreakerTrip() {
	if m != nil {
		m.breakerTrips.Inc()
	}
}

func (m *Metrics) addHedged(n int) {
	if m != nil {
		m.hedged.Add(float64(n))
	}
}

func (m *Metrics) addHedgeWins() {
	if m != nil {
		m.hedgeWins.Inc()
	}
}

func (m *Metrics) throttled(tenant string) {
	if m != nil {
		if tenant == "" {
			tenant = "anon"
		}
		m.tenantThrottled.With(tenant).Inc()
	}
}
