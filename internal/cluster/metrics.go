package cluster

import (
	"time"

	"hcapp/internal/telemetry"
)

// Metrics is the coordinator's telemetry family set; docs/METRICS.md
// catalogues every series.
type Metrics struct {
	workersLive     *telemetry.Gauge
	resharded       *telemetry.Counter
	cacheHits       *telemetry.Counter
	items           *telemetry.Counter
	tenantThrottled *telemetry.CounterVec // tenant
	breakerState    *telemetry.GaugeVec   // worker
	breakerTrips    *telemetry.Counter
	hedged          *telemetry.Counter
	hedgeWins       *telemetry.Counter
	sliceSeconds    *telemetry.HistogramVec // outcome
	queueWait       *telemetry.HistogramVec // class
}

// NewMetrics registers the cluster families on a registry.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		workersLive: reg.Gauge("hcapp_cluster_workers_live",
			"Registered workers whose heartbeat is current.").With(),
		resharded: reg.Counter("hcapp_cluster_jobs_resharded_total",
			"Batch items re-sharded to surviving workers after a worker died mid-slice.").With(),
		cacheHits: reg.Counter("hcapp_cluster_cache_hits_total",
			"Batch items served from the fleet-wide content-addressed result cache.").With(),
		items: reg.Counter("hcapp_cluster_items_total",
			"Batch items admitted by the coordinator (cache hits included).").With(),
		tenantThrottled: reg.Counter("hcapp_tenant_throttled_total",
			"Batches rejected with 429 by the per-tenant token bucket.", "tenant"),
		breakerState: reg.Gauge("hcapp_cluster_breaker_state",
			"Per-worker circuit-breaker state: 0 closed, 1 open, 2 half-open.", "worker"),
		breakerTrips: reg.Counter("hcapp_cluster_breaker_trips_total",
			"Circuit-breaker trips (closed/half-open to open) across all workers.").With(),
		hedged: reg.Counter("hcapp_cluster_hedged_slices_total",
			"Batch items re-issued to a second live worker after the hedge latency threshold.").With(),
		hedgeWins: reg.Counter("hcapp_cluster_hedge_wins_total",
			"Hedged slices where the hedge returned before the primary worker.").With(),
		sliceSeconds: reg.Histogram("hcapp_cluster_slice_duration_seconds",
			"Wall-clock duration of one slice post to a worker, by outcome (ok, error, cancelled). The ok series also drives the adaptive hedge threshold.",
			telemetry.DefBuckets(), "outcome"),
		queueWait: reg.Histogram("hcapp_queue_wait_seconds",
			"Time a dispatch slice waited for a fleet execution slot, by priority class.",
			telemetry.DefBuckets(), "class"),
	}
}

func (m *Metrics) setWorkersLive(n int) {
	if m != nil {
		m.workersLive.Set(float64(n))
	}
}

func (m *Metrics) addResharded(n int) {
	if m != nil {
		m.resharded.Add(float64(n))
	}
}

func (m *Metrics) addCacheHits(n int) {
	if m != nil && n > 0 {
		m.cacheHits.Add(float64(n))
	}
}

func (m *Metrics) addItems(n int) {
	if m != nil {
		m.items.Add(float64(n))
	}
}

func (m *Metrics) setBreakerState(worker string, state int) {
	if m != nil {
		m.breakerState.With(worker).Set(float64(state))
	}
}

func (m *Metrics) addBreakerTrip() {
	if m != nil {
		m.breakerTrips.Inc()
	}
}

func (m *Metrics) addHedged(n int) {
	if m != nil {
		m.hedged.Add(float64(n))
	}
}

func (m *Metrics) addHedgeWins() {
	if m != nil {
		m.hedgeWins.Inc()
	}
}

func (m *Metrics) observeSlice(outcome string, d time.Duration) {
	if m != nil {
		m.sliceSeconds.With(outcome).Observe(d.Seconds())
	}
}

func (m *Metrics) observeQueueWait(interactive bool, d time.Duration) {
	if m != nil {
		class := PriorityBatch
		if interactive {
			class = PriorityInteractive
		}
		m.queueWait.With(class).Observe(d.Seconds())
	}
}

// sliceOKStats snapshots the successful-slice series: observation count
// and estimated p90 in seconds. The adaptive hedge threshold reads it,
// so /metrics and the hedging decision can never disagree about fleet
// latency.
func (m *Metrics) sliceOKStats() (count, p90 float64) {
	if m == nil {
		return 0, 0
	}
	h := m.sliceSeconds.With("ok")
	return h.Count(), h.Quantile(0.9)
}

func (m *Metrics) throttled(tenant string) {
	if m != nil {
		if tenant == "" {
			tenant = "anon"
		}
		m.tenantThrottled.With(tenant).Inc()
	}
}
