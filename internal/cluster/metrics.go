package cluster

import "hcapp/internal/telemetry"

// Metrics is the coordinator's telemetry family set; docs/METRICS.md
// catalogues every series.
type Metrics struct {
	workersLive     *telemetry.Gauge
	resharded       *telemetry.Counter
	cacheHits       *telemetry.Counter
	items           *telemetry.Counter
	tenantThrottled *telemetry.CounterVec // tenant
}

// NewMetrics registers the cluster families on a registry.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		workersLive: reg.Gauge("hcapp_cluster_workers_live",
			"Registered workers whose heartbeat is current.").With(),
		resharded: reg.Counter("hcapp_cluster_jobs_resharded_total",
			"Batch items re-sharded to surviving workers after a worker died mid-slice.").With(),
		cacheHits: reg.Counter("hcapp_cluster_cache_hits_total",
			"Batch items served from the fleet-wide content-addressed result cache.").With(),
		items: reg.Counter("hcapp_cluster_items_total",
			"Batch items admitted by the coordinator (cache hits included).").With(),
		tenantThrottled: reg.Counter("hcapp_tenant_throttled_total",
			"Batches rejected with 429 by the per-tenant token bucket.", "tenant"),
	}
}

func (m *Metrics) setWorkersLive(n int) {
	if m != nil {
		m.workersLive.Set(float64(n))
	}
}

func (m *Metrics) addResharded(n int) {
	if m != nil {
		m.resharded.Add(float64(n))
	}
}

func (m *Metrics) addCacheHits(n int) {
	if m != nil && n > 0 {
		m.cacheHits.Add(float64(n))
	}
}

func (m *Metrics) addItems(n int) {
	if m != nil {
		m.items.Add(float64(n))
	}
}

func (m *Metrics) throttled(tenant string) {
	if m != nil {
		if tenant == "" {
			tenant = "anon"
		}
		m.tenantThrottled.With(tenant).Inc()
	}
}
