package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hcapp/internal/chaos"
	"hcapp/internal/sim"
	"hcapp/internal/telemetry"
	"hcapp/internal/tracing"
)

// startTracedWorker is startWorker with a span store attached, so the
// worker ships engine spans back in its slice responses.
func startTracedWorker(t *testing.T, id string) *Worker {
	t.Helper()
	w := NewWorker(WorkerConfig{
		ID:      id,
		Workers: 2,
		Logf:    t.Logf,
		Tracer:  tracing.New(tracing.Config{}),
	})
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	w.cfg.AdvertiseAddr = ts.URL
	return w
}

// runTracedBatch executes one traced 3-item batch against a fleet of
// the given width and returns the assembled trace.
func runTracedBatch(t *testing.T, width int) []tracing.Span {
	t.Helper()
	tr := tracing.New(tracing.Config{})
	c := NewCoordinator(CoordinatorConfig{HedgeAfter: -1, Logf: t.Logf}).WithTracer(tr)
	for i := 0; i < width; i++ {
		registerWorker(t, c, startTracedWorker(t, fmt.Sprintf("w-%d", i)))
	}

	seed := fmt.Sprintf("batch-w%d", width)
	root := tr.StartRoot("job", seed, seed)
	run := tr.StartSpan(root.Context(), "run")
	ctx := tracing.ContextWith(context.Background(), tr, run.Context())
	resp, err := c.Execute(ctx, RunRequest{
		Priority: PriorityInteractive,
		Params:   testParams(),
		Items:    testItems(t, 3),
	})
	if err != nil {
		t.Fatalf("width %d: %v", width, err)
	}
	for i, r := range resp.Results {
		if r.Result == nil || r.Error != "" {
			t.Fatalf("width %d: item %d empty or failed: %q", width, i, r.Error)
		}
	}
	run.SetAttr("outcome", "ok").End()
	root.End()
	spans, dropped := tr.Trace(tracing.TraceIDFor(seed))
	if dropped != 0 {
		t.Fatalf("width %d dropped %d spans", width, dropped)
	}
	return spans
}

// TestTraceWidthInvariance is the acceptance property CI re-checks over
// real processes: the canonical span-tree structure of a batch is
// byte-identical at every fleet width, because slice assignment and
// worker identity are span attributes, never tree nodes.
func TestTraceWidthInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations over local fleets")
	}
	narrow := tracing.Structure(runTracedBatch(t, 1))
	wide := tracing.Structure(runTracedBatch(t, 3))
	if narrow != wide {
		t.Fatalf("structure diverged across widths:\nwidth 1:\n%s\nwidth 3:\n%s", narrow, wide)
	}
	want := strings.Join([]string{
		"job",
		"  run",
		"    item[0]",
		"      attempt[0]",
		"        engine",
		"    item[1]",
		"      attempt[0]",
		"        engine",
		"    item[2]",
		"      attempt[0]",
		"        engine",
		"",
	}, "\n")
	if narrow != want {
		t.Fatalf("structure:\n%s\nwant:\n%s", narrow, want)
	}
}

// startFakeWorker registers an httptest worker that sleeps delay per
// slice and answers placeholder results — enough to drive the dispatch
// semaphore without simulating anything.
func startFakeWorker(t *testing.T, c *Coordinator, id string, delay time.Duration) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		var req RunRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		time.Sleep(delay)
		resp := RunResponse{Results: make([]ItemResult, len(req.Items))}
		for i := range resp.Results {
			resp.Results[i] = ItemResult{Result: &Result{Completed: true}}
		}
		json.NewEncoder(rw).Encode(resp)
	}))
	t.Cleanup(ts.Close)
	if _, err := c.Register(RegisterRequest{ID: id, Addr: ts.URL, Workers: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueWaitClassOrdering: under contention for dispatch slots,
// interactive batches overtake queued batch-class ones, and the
// hcapp_queue_wait_seconds histogram records the difference — the
// interactive median wait must undercut the batch median.
func TestQueueWaitClassOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("sleeps through queued dispatches")
	}
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	c := NewCoordinator(CoordinatorConfig{HedgeAfter: -1, Logf: t.Logf}).WithMetrics(m)
	// One worker = one dispatch slot, 40 ms per slice: everything after
	// the first submission queues on the priority semaphore.
	const delay = 40 * time.Millisecond
	startFakeWorker(t, c, "slow", delay)

	execute := func(i int, priority string) error {
		// Distinct seeds make distinct item keys, so no run coalesces
		// with another through the cache or single-flight table.
		_, err := c.Execute(context.Background(), RunRequest{
			Priority: priority,
			Params:   DefaultParams(int64(1000+i), sim.Millisecond/2),
			Items:    testItems(t, 1),
		})
		return err
	}

	var wg sync.WaitGroup
	errs := make(chan error, 6)
	launch := func(i int, priority string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- execute(i, priority)
		}()
	}
	// Occupy the slot, then queue two more batch runs, then three
	// interactive ones: the interactive class must drain first.
	launch(0, PriorityBatch)
	waitForCount(t, func() float64 { return m.queueWait.With(PriorityBatch).Count() }, 1)
	launch(1, PriorityBatch)
	launch(2, PriorityBatch)
	time.Sleep(delay / 4) // let the batch runs reach the semaphore
	launch(3, PriorityInteractive)
	launch(4, PriorityInteractive)
	launch(5, PriorityInteractive)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	iHist := m.queueWait.With(PriorityInteractive)
	bHist := m.queueWait.With(PriorityBatch)
	if iHist.Count() != 3 || bHist.Count() != 3 {
		t.Fatalf("queue-wait counts interactive %g, batch %g, want 3 each", iHist.Count(), bHist.Count())
	}
	ip50, bp50 := iHist.Quantile(0.5), bHist.Quantile(0.5)
	t.Logf("queue-wait p50: interactive %.3fs, batch %.3fs", ip50, bp50)
	if !(ip50 < bp50) {
		t.Fatalf("interactive p50 %.3fs not below batch p50 %.3fs", ip50, bp50)
	}
}

// waitForCount polls a histogram count until it reaches want.
func waitForCount(t *testing.T, count func() float64, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("count stuck at %g, want %g", count(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosTracePropagation is the trace-integrity half of the chaos
// story: with transport faults injected and an aggressive hedge
// threshold, retried and hedged dispatches must land as sibling
// attempt[n] spans under their item — and the assembled tree must have
// no orphans, because worker engine spans derive their parentage from
// the per-item contexts on the wire, not from which attempt won.
func TestChaosTracePropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations over a local fleet under chaos")
	}
	profile, err := chaos.ProfileByName("light")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(7, profile).ForNode("coordinator")

	tr := tracing.New(tracing.Config{})
	c := NewCoordinator(CoordinatorConfig{
		// Hedge far inside a simulation's wall time so sibling attempts
		// are guaranteed, not just possible.
		HedgeAfter:      5 * time.Millisecond,
		BreakerCooldown: 50 * time.Millisecond,
		Client:          &http.Client{Transport: inj.RoundTripper(nil)},
		Logf:            t.Logf,
	}).WithTracer(tr)
	workers := []*Worker{
		startTracedWorker(t, "w-1"),
		startTracedWorker(t, "w-2"),
		startTracedWorker(t, "w-3"),
	}
	for _, w := range workers {
		registerWorker(t, c, w)
	}
	// Chaos kills workers faster than it reviews them; a heartbeat loop
	// stands in for the real worker's heartbeat goroutine.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				for _, w := range workers {
					c.Heartbeat(w.cfg.ID)
				}
			}
		}
	}()

	root := tr.StartRoot("job", "job-chaos", "job-chaos")
	run := tr.StartSpan(root.Context(), "run")
	ctx := tracing.ContextWith(context.Background(), tr, run.Context())
	resp, err := c.Execute(ctx, RunRequest{
		Priority: PriorityInteractive,
		Params:   testParams(),
		Items:    testItems(t, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if r.Result == nil || r.Error != "" {
			t.Fatalf("item %d empty or failed under chaos: %q", i, r.Error)
		}
	}
	run.SetAttr("outcome", "ok").End()
	root.End()

	spans, _ := tr.Trace(tracing.TraceIDFor("job-chaos"))
	if orphans := tracing.Orphans(spans); len(orphans) != 0 {
		t.Fatalf("assembled trace has %d orphans: %+v", len(orphans), orphans)
	}
	byID := make(map[string]tracing.Span, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = s
	}
	attemptsPerItem := make(map[string]int)
	for _, s := range spans {
		switch tracing.StageOf(s.Name) {
		case "attempt":
			parent, ok := byID[s.ParentID]
			if !ok || tracing.StageOf(parent.Name) != "item" {
				t.Fatalf("attempt %s parents to %q, want an item span", s.Path, parent.Name)
			}
			attemptsPerItem[parent.Path]++
		case "engine":
			parent, ok := byID[s.ParentID]
			if !ok || tracing.StageOf(parent.Name) != "attempt" {
				t.Fatalf("engine %s parents to %q, want an attempt span", s.Path, parent.Name)
			}
		}
	}
	if len(attemptsPerItem) != 4 {
		t.Fatalf("attempts recorded for %d items, want 4", len(attemptsPerItem))
	}
	max := 0
	for _, n := range attemptsPerItem {
		if n > max {
			max = n
		}
	}
	t.Logf("attempts per item: %v", attemptsPerItem)
	if max < 2 {
		t.Fatalf("no item gained a sibling attempt (max %d) — hedging never fired", max)
	}
}
