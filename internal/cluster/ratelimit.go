package cluster

import (
	"sync"
	"time"
)

// Limiter is a per-tenant token bucket: each tenant owns Burst tokens
// refilled at Rate tokens/second, and every batch item costs one token.
// A request that cannot be paid for in full is rejected whole — partial
// admission would split a deterministic batch — and surfaces as HTTP 429
// backpressure.
type Limiter struct {
	rate  float64 // tokens per second; <= 0 means unlimited
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter; rate <= 0 disables limiting entirely.
func NewLimiter(rate float64, burst int, now func() time.Time) *Limiter {
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Limiter{
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		buckets: make(map[string]*bucket),
	}
}

// Allow debits n tokens from the tenant's bucket, reporting whether the
// request is admitted. A burst-sized request against a full bucket is
// admitted exactly (the boundary is inclusive); one more item is not.
func (l *Limiter) Allow(tenant string, n int) bool {
	if l == nil || l.rate <= 0 {
		return true
	}
	if tenant == "" {
		tenant = "anon"
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if float64(n) > b.tokens {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// Tenants reports how many tenant buckets exist (tests, introspection).
func (l *Limiter) Tenants() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
