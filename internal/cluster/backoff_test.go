package cluster

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// recordedBackoff returns a Backoff whose sleeps append to *delays
// instead of blocking, with a deterministic "random" source.
func recordedBackoff(delays *[]time.Duration, variate float64) Backoff {
	return Backoff{
		Rand: func() float64 { return variate },
		Sleep: func(ctx context.Context, d time.Duration) error {
			*delays = append(*delays, d)
			return ctx.Err()
		},
	}
}

// TestBackoffDelayGrowthAndCap: with the variate pinned at 1.0 the
// delay doubles from Base and caps at Max; with 0.0 (full jitter's low
// edge) every delay is zero.
func TestBackoffDelayGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Rand: func() float64 { return 1 }}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second,
		time.Second,
	}
	for n, w := range want {
		if got := b.Delay(n); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
	b.Rand = func() float64 { return 0 }
	for n := 0; n < 6; n++ {
		if got := b.Delay(n); got != 0 {
			t.Fatalf("Delay(%d) with zero variate = %v, want 0", n, got)
		}
	}
}

// TestBackoffDefaults: the zero value is usable with the documented
// defaults.
func TestBackoffDefaults(t *testing.T) {
	b := Backoff{Rand: func() float64 { return 1 }}
	if got := b.Delay(0); got != defaultBackoffBase {
		t.Fatalf("zero-value Delay(0) = %v, want %v", got, defaultBackoffBase)
	}
	if got := b.Delay(30); got != defaultBackoffMax {
		t.Fatalf("zero-value Delay(30) = %v, want %v", got, defaultBackoffMax)
	}
}

// TestWaitAtLeastHonoursFloor: a Retry-After floor raises the sleep
// when the jittered delay is below it, and is ignored once the
// exponential exceeds it.
func TestWaitAtLeastHonoursFloor(t *testing.T) {
	var delays []time.Duration
	b := recordedBackoff(&delays, 0) // jitter low edge: delay would be 0
	if err := b.WaitAtLeast(context.Background(), 0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if delays[0] != 2*time.Second {
		t.Fatalf("floored sleep = %v, want 2s", delays[0])
	}
	b2 := recordedBackoff(&delays, 1) // jitter high edge
	b2.Base, b2.Max = time.Second, 8*time.Second
	if err := b2.WaitAtLeast(context.Background(), 3, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if delays[1] != 8*time.Second {
		t.Fatalf("sleep above floor = %v, want 8s (exponential wins)", delays[1])
	}
}

// TestWaitRespectsContext: a dead context aborts the wait with its
// error instead of sleeping.
func TestWaitRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := Backoff{Base: time.Hour, Max: time.Hour, Rand: func() float64 { return 1 }}
	start := time.Now()
	err := b.Wait(ctx, 0)
	if err != context.Canceled {
		t.Fatalf("Wait on dead ctx = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Wait slept despite dead context")
	}
}

// TestJitterHelpers: phase jitter lands in [0, d); around-jitter lands
// in [d·(1-f), d·(1+f)].
func TestJitterHelpers(t *testing.T) {
	b := Backoff{}
	d := 2 * time.Second
	for i := 0; i < 100; i++ {
		if p := b.JitterPhase(d); p < 0 || p >= d {
			t.Fatalf("JitterPhase out of range: %v", p)
		}
		if a := b.JitterAround(d, 0.1); a < 1800*time.Millisecond || a > 2200*time.Millisecond {
			t.Fatalf("JitterAround out of range: %v", a)
		}
	}
	if b.JitterAround(d, 0) != d {
		t.Fatal("JitterAround with zero frac must be identity")
	}
}

// TestParseRetryAfter: delta-seconds parse, everything else is "no
// hint"; rendering rounds sub-second hints up to 1.
func TestParseRetryAfter(t *testing.T) {
	h := http.Header{}
	if got := parseRetryAfter(h); got != 0 {
		t.Fatalf("absent header parsed as %v", got)
	}
	h.Set("Retry-After", "3")
	if got := parseRetryAfter(h); got != 3*time.Second {
		t.Fatalf("Retry-After: 3 parsed as %v", got)
	}
	for _, bad := range []string{"-1", "soon", "Tue, 29 Oct 2026 16:56:32 GMT"} {
		h.Set("Retry-After", bad)
		if got := parseRetryAfter(h); got != 0 {
			t.Fatalf("Retry-After: %q parsed as %v, want 0", bad, got)
		}
	}
	if got := retryAfterSeconds(250 * time.Millisecond); got != "1" {
		t.Fatalf("retryAfterSeconds(250ms) = %q, want 1", got)
	}
	if got := retryAfterSeconds(2500 * time.Millisecond); got != "3" {
		t.Fatalf("retryAfterSeconds(2.5s) = %q, want 3 (round up)", got)
	}
}
