package cluster

import (
	"context"
	"sync"
)

// prioSem is a two-class counting semaphore over dispatch slots: when a
// slot frees, waiting interactive acquirers are admitted before any
// batch acquirer, in FIFO order within each class. Capacity tracks the
// live worker count, so at most one slice per live worker is in flight
// and an interactive batch arriving at a busy fleet overtakes queued
// batch-class slices rather than lining up behind them.
type prioSem struct {
	mu          sync.Mutex
	capacity    int
	inUse       int
	interactive []chan struct{}
	batch       []chan struct{}
}

func newPrioSem(capacity int) *prioSem { return &prioSem{capacity: capacity} }

// setCapacity retargets the slot count (workers registered or died).
// Shrinking below inUse is fine: release simply won't hand the freed
// slot to a waiter until usage falls back under capacity.
func (s *prioSem) setCapacity(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capacity = n
	s.wakeLocked()
}

// acquire blocks until a slot frees or ctx dies.
func (s *prioSem) acquire(ctx context.Context, interactive bool) error {
	s.mu.Lock()
	if s.inUse < s.capacity {
		s.inUse++
		s.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	if interactive {
		s.interactive = append(s.interactive, ch)
	} else {
		s.batch = append(s.batch, ch)
	}
	s.mu.Unlock()

	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		// Remove ourselves; if the slot was already handed over in the
		// race, pass it on instead of leaking it.
		select {
		case <-ch:
			s.inUse--
			s.wakeLocked()
		default:
			s.interactive = removeWaiter(s.interactive, ch)
			s.batch = removeWaiter(s.batch, ch)
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

func (s *prioSem) release() {
	s.mu.Lock()
	s.inUse--
	s.wakeLocked()
	s.mu.Unlock()
}

// wakeLocked hands free slots to waiters, interactive class first.
func (s *prioSem) wakeLocked() {
	for s.inUse < s.capacity {
		var ch chan struct{}
		switch {
		case len(s.interactive) > 0:
			ch, s.interactive = s.interactive[0], s.interactive[1:]
		case len(s.batch) > 0:
			ch, s.batch = s.batch[0], s.batch[1:]
		default:
			return
		}
		s.inUse++
		close(ch)
	}
}

func removeWaiter(ws []chan struct{}, ch chan struct{}) []chan struct{} {
	for i, w := range ws {
		if w == ch {
			return append(ws[:i], ws[i+1:]...)
		}
	}
	return ws
}
