package workload

import (
	"strings"
	"testing"
)

const sampleSpecs = `[
  {"name": "mykernel", "target": "gpu", "class": "Hi", "kind": "wave",
   "correlated": true, "phases": 16, "wave_period_us": 300,
   "ipc": 1.5, "mem_frac": 0.25, "act_lo": 0.5, "act_hi": 0.9, "stall_act": 0.1},
  {"name": "mydaemon", "target": "cpu", "class": "Low", "kind": "steady",
   "phases": 10, "phase_dur_us": 120, "ipc": 1.0, "mem_frac": 0.2,
   "activity": 0.3, "stall_act": 0.05, "act_jitter": 0.05},
  {"name": "myspiky", "target": "cpu", "class": "Burst", "kind": "burst",
   "correlated": true, "bursts": 6, "gap_us": 200, "burst_us": 40,
   "ipc": 0.8, "mem_frac": 0.6, "activity": 0.2, "stall_act": 0.05,
   "burst_ipc": 2.0, "burst_mem_frac": 0.05, "burst_activity": 0.85,
   "dur_jitter": 0.2},
  {"name": "myfixed", "target": "gpu", "class": "Mid", "kind": "constant",
   "phase_dur_us": 100, "ipc": 1.2, "mem_frac": 0.3, "activity": 0.5,
   "stall_act": 0.1}
]`

func TestParseBenchmarks(t *testing.T) {
	bs, err := ParseBenchmarks(strings.NewReader(sampleSpecs))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 4 {
		t.Fatalf("parsed %d benchmarks", len(bs))
	}
	for _, b := range bs {
		fmax := 2e9
		if b.On == TargetGPU {
			fmax = 700e6
		}
		tr := b.TraceFor(7, 0, 4, fmax)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: invalid trace: %v", b.Name, err)
		}
		// Determinism carries over to custom benchmarks.
		tr2 := b.TraceFor(7, 0, 4, fmax)
		if tr.TotalInstr() != tr2.TotalInstr() {
			t.Errorf("%s: non-deterministic", b.Name)
		}
	}
}

func TestParseBenchmarksCorrelation(t *testing.T) {
	bs, err := ParseBenchmarks(strings.NewReader(sampleSpecs))
	if err != nil {
		t.Fatal(err)
	}
	var wave Benchmark
	for _, b := range bs {
		if b.Name == "mykernel" {
			wave = b
		}
	}
	a := wave.TraceFor(3, 0, 8, 700e6)
	c := wave.TraceFor(3, 5, 8, 700e6)
	if len(a.Phases) != len(c.Phases) {
		t.Fatal("correlated custom benchmark lost phase alignment")
	}
	for i := range a.Phases {
		if a.Phases[i].Instr != c.Phases[i].Instr {
			t.Fatal("correlated custom benchmark timing differs across units")
		}
	}
}

func TestParseBenchmarksErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad json", `{`},
		{"unknown field", `[{"name":"x","target":"cpu","kind":"steady","bogus":1}]`},
		{"missing name", `[{"target":"cpu","kind":"steady","phases":4,"phase_dur_us":10,"ipc":1,"activity":0.5}]`},
		{"bad target", `[{"name":"x","target":"tpu","kind":"steady","phases":4,"phase_dur_us":10,"ipc":1,"activity":0.5}]`},
		{"bad kind", `[{"name":"x","target":"cpu","kind":"zigzag","ipc":1,"activity":0.5}]`},
		{"zero ipc", `[{"name":"x","target":"cpu","kind":"steady","phases":4,"phase_dur_us":10,"activity":0.5}]`},
		{"memfrac 1", `[{"name":"x","target":"cpu","kind":"steady","phases":4,"phase_dur_us":10,"ipc":1,"mem_frac":1,"activity":0.5}]`},
		{"wave act order", `[{"name":"x","target":"cpu","kind":"wave","phases":4,"wave_period_us":100,"ipc":1,"act_lo":0.9,"act_hi":0.5}]`},
		{"burst missing", `[{"name":"x","target":"cpu","kind":"burst","ipc":1,"activity":0.5}]`},
		{"duplicate", `[
			{"name":"x","target":"cpu","kind":"constant","phase_dur_us":10,"ipc":1,"activity":0.5},
			{"name":"x","target":"cpu","kind":"constant","phase_dur_us":10,"ipc":1,"activity":0.5}]`},
		{"shadows builtin", `[{"name":"ferret","target":"cpu","kind":"constant","phase_dur_us":10,"ipc":1,"activity":0.5}]`},
	}
	for _, c := range cases {
		if _, err := ParseBenchmarks(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSpecJSONStandalone(t *testing.T) {
	sp := SpecJSON{
		Name: "solo", Target: "cpu", Kind: "constant",
		PhaseDurUS: 50, IPC: 1.4, MemFrac: 0.1, Activity: 0.6, StallAct: 0.1,
	}
	b, err := sp.Benchmark()
	if err != nil {
		t.Fatal(err)
	}
	tr := b.TraceFor(1, 0, 2, 2e9)
	if len(tr.Phases) != 1 {
		t.Fatalf("constant kind phases = %d", len(tr.Phases))
	}
	if b.Suite != "custom" {
		t.Fatalf("suite = %q", b.Suite)
	}
}
