// Package workload provides the synthetic benchmark proxies that stand in
// for the paper's PARSEC and Rodinia subsets.
//
// The paper selects benchmarks purely for their package-level power
// behaviour ("this subset captures a wide variety of power behavior",
// §4.2/§4.3) and names each combination after that behaviour in Table 3
// (Low, Hi, Mid, Burst, Const). Each proxy here is a deterministic,
// seeded generator of phase traces reproducing the named behaviour:
// ferret is long low-activity stretches punctuated by short high-power
// bursts, myocyte is low steady, backprop high steady, and so on.
//
// Phases carry the quantities the chiplet simulators need: work
// (instructions), the no-stall IPC, the fraction of time stalled on
// memory at maximum frequency (frequency-insensitive time), and switching
// activity factors for the compute and stall portions.
package workload

import (
	"fmt"

	"hcapp/internal/sim"
)

// Phase is one homogeneous region of a workload trace.
type Phase struct {
	// Instr is the number of instructions (abstract work units) retired
	// during the phase by one execution unit.
	Instr float64
	// IPC is the instructions-per-cycle achieved while not stalled.
	IPC float64
	// MemFrac is the fraction of wall time spent in frequency-insensitive
	// memory stalls when running at maximum frequency, in [0,1).
	MemFrac float64
	// Activity is the switching activity factor while computing, in (0,1].
	Activity float64
	// StallAct is the switching activity factor while stalled.
	StallAct float64
}

// Validate reports whether the phase is physically meaningful.
func (p Phase) Validate() error {
	switch {
	case p.Instr <= 0:
		return fmt.Errorf("workload: non-positive phase work %g", p.Instr)
	case p.IPC <= 0:
		return fmt.Errorf("workload: non-positive IPC %g", p.IPC)
	case p.MemFrac < 0 || p.MemFrac >= 1:
		return fmt.Errorf("workload: memory fraction %g outside [0,1)", p.MemFrac)
	case p.Activity <= 0 || p.Activity > 1:
		return fmt.Errorf("workload: activity %g outside (0,1]", p.Activity)
	case p.StallAct < 0 || p.StallAct > 1:
		return fmt.Errorf("workload: stall activity %g outside [0,1]", p.StallAct)
	}
	return nil
}

// Slowdown returns the execution-time dilation of the phase at frequency
// f relative to fmax: (1−m)·(fmax/f) + m. Compute time scales inversely
// with frequency; memory time does not (the interval model Sniper uses).
func (p Phase) Slowdown(f, fmax float64) float64 {
	if f <= 0 {
		return 0 // sentinel: cannot execute
	}
	return (1-p.MemFrac)*(fmax/f) + p.MemFrac
}

// IPS returns instructions per second at frequency f (fmax is the rated
// maximum). Zero frequency executes nothing.
func (p Phase) IPS(f, fmax float64) float64 {
	s := p.Slowdown(f, fmax)
	if s <= 0 {
		return 0
	}
	return p.IPC * fmax * (1 - p.MemFrac) / s
}

// EffActivity returns the time-weighted switching activity at frequency
// f: the stall fraction grows as frequency rises (stalls take the same
// wall time while compute shrinks).
func (p Phase) EffActivity(f, fmax float64) float64 {
	s := p.Slowdown(f, fmax)
	if s <= 0 {
		return p.StallAct
	}
	stallFrac := p.MemFrac / s
	return p.Activity*(1-stallFrac) + p.StallAct*stallFrac
}

// DurationAtFmax returns the phase's wall-clock duration at maximum
// frequency.
func (p Phase) DurationAtFmax(fmax float64) sim.Time {
	ips := p.IPS(fmax, fmax)
	if ips <= 0 {
		return 0
	}
	return sim.FromSeconds(p.Instr / ips)
}

// PhaseFor constructs a phase sized to last dur at maximum frequency fmax
// with the given characteristics.
func PhaseFor(dur sim.Time, fmax, ipc, memFrac, activity, stallAct float64) Phase {
	p := Phase{IPC: ipc, MemFrac: memFrac, Activity: activity, StallAct: stallAct}
	p.Instr = p.IPS(fmax, fmax) * sim.Seconds(dur)
	return p
}

// Trace is a looping sequence of phases executed by one unit (a CPU core
// or a GPU SM). When the cursor exhausts the last phase it restarts from
// the first, matching the paper's approach of looping short workloads to
// a common timescale (§4).
type Trace struct {
	Name   string
	Phases []Phase
}

// Validate checks every phase.
func (t *Trace) Validate() error {
	if len(t.Phases) == 0 {
		return fmt.Errorf("workload: trace %q has no phases", t.Name)
	}
	for i, p := range t.Phases {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("workload: trace %q phase %d: %w", t.Name, i, err)
		}
	}
	return nil
}

// TotalInstr returns the work in one loop of the trace.
func (t *Trace) TotalInstr() float64 {
	sum := 0.0
	for _, p := range t.Phases {
		sum += p.Instr
	}
	return sum
}

// LoopDurationAtFmax returns the wall time of one loop at fmax.
func (t *Trace) LoopDurationAtFmax(fmax float64) sim.Time {
	var d sim.Time
	for _, p := range t.Phases {
		d += p.DurationAtFmax(fmax)
	}
	return d
}

// AvgIPS returns the time-averaged instruction rate over one loop at
// constant frequency f.
func (t *Trace) AvgIPS(f, fmax float64) float64 {
	totalInstr := 0.0
	totalTime := 0.0
	for _, p := range t.Phases {
		ips := p.IPS(f, fmax)
		if ips <= 0 {
			return 0
		}
		totalInstr += p.Instr
		totalTime += p.Instr / ips
	}
	if totalTime == 0 {
		return 0
	}
	return totalInstr / totalTime
}

// StepOutcome summarizes a cursor step for the owning simulator.
type StepOutcome struct {
	Instr    float64 // instructions retired over the step
	Activity float64 // time-weighted switching activity over the step
	IPC      float64 // measured IPC over the step (retired / (f·dt))
}

// Cursor walks a trace, consuming work at the rate the supplied frequency
// permits, looping forever. It is the per-unit execution state.
type Cursor struct {
	trace     *Trace
	idx       int
	remaining float64 // instructions left in the current phase
}

// NewCursor returns a cursor at the start of the trace. startPhase allows
// units to begin at different points (decorrelating steady workloads).
func NewCursor(t *Trace, startPhase int) *Cursor {
	if len(t.Phases) == 0 {
		panic("workload: cursor over empty trace")
	}
	idx := startPhase % len(t.Phases)
	if idx < 0 {
		idx += len(t.Phases)
	}
	return &Cursor{trace: t, idx: idx, remaining: t.Phases[idx].Instr}
}

// Phase returns the current phase.
func (c *Cursor) Phase() Phase { return c.trace.Phases[c.idx] }

// Step advances the cursor by dt at frequency f, crossing phase
// boundaries as needed, and reports retired instructions and the
// time-weighted activity over the step.
func (c *Cursor) Step(dt sim.Time, f, fmax float64) StepOutcome {
	dtSec := sim.Seconds(dt)
	if f <= 0 {
		// Cannot clock: nothing retires; power is stall/leakage only.
		return StepOutcome{Activity: c.Phase().StallAct}
	}
	var out StepOutcome
	remainingTime := dtSec
	actWeighted := 0.0
	for remainingTime > 1e-18 {
		p := c.trace.Phases[c.idx]
		ips := p.IPS(f, fmax)
		if ips <= 0 {
			actWeighted += p.StallAct * remainingTime
			remainingTime = 0
			break
		}
		phaseTime := c.remaining / ips
		if phaseTime > remainingTime {
			// Phase outlasts the step.
			done := ips * remainingTime
			c.remaining -= done
			out.Instr += done
			actWeighted += p.EffActivity(f, fmax) * remainingTime
			remainingTime = 0
		} else {
			// Finish the phase and move on.
			out.Instr += c.remaining
			actWeighted += p.EffActivity(f, fmax) * phaseTime
			remainingTime -= phaseTime
			c.advance()
		}
	}
	out.Activity = actWeighted / dtSec
	out.IPC = out.Instr / (f * dtSec)
	return out
}

// steadyMargin is how many steps SteadySteps holds back from a
// float-derived event bound. The phase-boundary estimate divides the
// remaining work by the per-step retirement, while the replay subtracts
// the per-step amount repeatedly; the two drift apart by at most a few
// ulps per step (≪ 1 step over any realistic phase), so a fixed margin
// of whole steps keeps the stride strictly inside the phase.
const steadyMargin = 8

// SteadySteps reports how many consecutive Step(dt, f, fmax) calls are
// guaranteed to stay inside the current phase and return bitwise
// identical outcomes, along with the per-step Instr and Activity those
// steps produce — computed operation-for-operation as Step computes
// them. Zero means the next step may cross a phase boundary (or the
// cursor is too close to one to stride safely). The f ≤ 0 and
// stalled-phase cases mutate nothing and are steady indefinitely.
func (c *Cursor) SteadySteps(dt sim.Time, f, fmax float64) (n int64, instr, act float64) {
	dtSec := sim.Seconds(dt)
	if f <= 0 {
		return 1 << 62, 0, c.Phase().StallAct
	}
	p := c.trace.Phases[c.idx]
	ips := p.IPS(f, fmax)
	if ips <= 0 {
		return 1 << 62, 0, (p.StallAct * dtSec) / dtSec
	}
	done := ips * dtSec
	act = (p.EffActivity(f, fmax) * dtSec) / dtSec
	if c.remaining/ips <= dtSec {
		return 0, done, act
	}
	n = int64(c.remaining/done) - steadyMargin
	if n < 0 {
		n = 0
	}
	return n, done, act
}

// AdvanceSteady replays n in-phase steps at frequency f: the identical
// per-step subtraction Step performs, without boundary handling. The
// caller must bound n by SteadySteps so no replayed step could have
// crossed a phase boundary.
func (c *Cursor) AdvanceSteady(n int64, dt sim.Time, f, fmax float64) {
	if f <= 0 {
		return
	}
	p := c.trace.Phases[c.idx]
	ips := p.IPS(f, fmax)
	if ips <= 0 {
		return
	}
	done := ips * sim.Seconds(dt)
	for i := int64(0); i < n; i++ {
		c.remaining -= done
	}
}

// Remaining returns the instructions left in the current phase.
func (c *Cursor) Remaining() float64 { return c.remaining }

func (c *Cursor) advance() {
	c.idx = (c.idx + 1) % len(c.trace.Phases)
	c.remaining = c.trace.Phases[c.idx].Instr
}

// Reset rewinds the cursor to the given phase.
func (c *Cursor) Reset(startPhase int) {
	idx := startPhase % len(c.trace.Phases)
	if idx < 0 {
		idx += len(c.trace.Phases)
	}
	c.idx = idx
	c.remaining = c.trace.Phases[c.idx].Instr
}
