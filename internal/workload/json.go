package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"hcapp/internal/sim"
)

// SpecJSON is the external (JSON) description of a custom benchmark
// proxy, so downstream users can add their own workloads without
// touching Go code:
//
//	[{
//	  "name": "mykernel", "target": "gpu", "class": "Hi",
//	  "kind": "wave", "correlated": true,
//	  "phases": 16, "wave_period_us": 300,
//	  "ipc": 1.5, "mem_frac": 0.25,
//	  "act_lo": 0.5, "act_hi": 0.9, "stall_act": 0.1
//	}]
//
// Kinds: "steady", "wave", "burst", "constant". Fields irrelevant to a
// kind are ignored; required fields are validated.
type SpecJSON struct {
	Name       string `json:"name"`
	Target     string `json:"target"` // "cpu" or "gpu"
	Class      string `json:"class"`  // Low | Mid | Hi | Burst | Const
	Kind       string `json:"kind"`   // steady | wave | burst | constant
	Correlated bool   `json:"correlated"`

	// Common profile.
	IPC      float64 `json:"ipc"`
	MemFrac  float64 `json:"mem_frac"`
	Activity float64 `json:"activity"`
	StallAct float64 `json:"stall_act"`

	// steady / constant
	Phases     int     `json:"phases"`
	PhaseDurUS float64 `json:"phase_dur_us"`
	ActJitter  float64 `json:"act_jitter"`

	// wave
	WavePeriodUS float64 `json:"wave_period_us"`
	ActLo        float64 `json:"act_lo"`
	ActHi        float64 `json:"act_hi"`

	// burst
	Bursts        int     `json:"bursts"`
	GapUS         float64 `json:"gap_us"`
	BurstUS       float64 `json:"burst_us"`
	BurstIPC      float64 `json:"burst_ipc"`
	BurstMemFrac  float64 `json:"burst_mem_frac"`
	BurstActivity float64 `json:"burst_activity"`
	DurJitter     float64 `json:"dur_jitter"`
}

// validate checks the kind-relevant fields.
func (sp SpecJSON) validate() error {
	if sp.Name == "" {
		return fmt.Errorf("workload: spec missing name")
	}
	if sp.Target != "cpu" && sp.Target != "gpu" {
		return fmt.Errorf("workload: %s: target must be cpu or gpu, got %q", sp.Name, sp.Target)
	}
	if sp.IPC <= 0 {
		return fmt.Errorf("workload: %s: ipc must be positive", sp.Name)
	}
	if sp.MemFrac < 0 || sp.MemFrac >= 1 {
		return fmt.Errorf("workload: %s: mem_frac outside [0,1)", sp.Name)
	}
	switch sp.Kind {
	case "steady", "constant":
		if sp.Activity <= 0 || sp.Activity > 1 {
			return fmt.Errorf("workload: %s: activity outside (0,1]", sp.Name)
		}
		if sp.PhaseDurUS <= 0 {
			return fmt.Errorf("workload: %s: phase_dur_us must be positive", sp.Name)
		}
		if sp.Kind == "steady" && sp.Phases <= 0 {
			return fmt.Errorf("workload: %s: phases must be positive", sp.Name)
		}
	case "wave":
		if sp.Phases <= 1 {
			return fmt.Errorf("workload: %s: wave needs phases > 1", sp.Name)
		}
		if sp.WavePeriodUS <= 0 {
			return fmt.Errorf("workload: %s: wave_period_us must be positive", sp.Name)
		}
		if !(sp.ActLo > 0 && sp.ActLo <= sp.ActHi && sp.ActHi <= 1) {
			return fmt.Errorf("workload: %s: need 0 < act_lo ≤ act_hi ≤ 1", sp.Name)
		}
	case "burst":
		if sp.Bursts <= 0 || sp.GapUS <= 0 || sp.BurstUS <= 0 {
			return fmt.Errorf("workload: %s: burst needs bursts, gap_us, burst_us", sp.Name)
		}
		if sp.Activity <= 0 || sp.BurstActivity <= 0 || sp.BurstActivity > 1 {
			return fmt.Errorf("workload: %s: burst activities outside (0,1]", sp.Name)
		}
		if sp.BurstIPC <= 0 {
			return fmt.Errorf("workload: %s: burst_ipc must be positive", sp.Name)
		}
		if sp.BurstMemFrac < 0 || sp.BurstMemFrac >= 1 {
			return fmt.Errorf("workload: %s: burst_mem_frac outside [0,1)", sp.Name)
		}
	default:
		return fmt.Errorf("workload: %s: unknown kind %q", sp.Name, sp.Kind)
	}
	return nil
}

// Benchmark converts the spec to a usable Benchmark.
func (sp SpecJSON) Benchmark() (Benchmark, error) {
	if err := sp.validate(); err != nil {
		return Benchmark{}, err
	}
	target := TargetCPU
	if sp.Target == "gpu" {
		target = TargetGPU
	}
	spec := sp // capture by value
	b := Benchmark{
		Name:       sp.Name,
		Suite:      "custom",
		Class:      Class(sp.Class),
		On:         target,
		correlated: sp.Correlated,
		build: func(rng *rand.Rand, fmax float64) *Trace {
			return spec.buildTrace(rng, fmax)
		},
	}
	return b, nil
}

func (sp SpecJSON) buildTrace(rng *rand.Rand, fmax float64) *Trace {
	us := func(v float64) sim.Time { return sim.Time(v * float64(sim.Microsecond)) }
	p := profile{ipc: sp.IPC, memFrac: sp.MemFrac, activity: sp.Activity, stallAct: sp.StallAct}
	switch sp.Kind {
	case "steady":
		return SteadyTrace(sp.Name, rng, fmax, sp.Phases, us(sp.PhaseDurUS), p, sp.ActJitter)
	case "constant":
		return ConstantTrace(sp.Name, fmax, us(sp.PhaseDurUS), sp.IPC, sp.MemFrac, sp.Activity, sp.StallAct)
	case "wave":
		return WaveTrace(sp.Name, rng, fmax, sp.Phases, us(sp.WavePeriodUS), p, sp.ActLo, sp.ActHi)
	case "burst":
		burst := profile{ipc: sp.BurstIPC, memFrac: sp.BurstMemFrac, activity: sp.BurstActivity, stallAct: sp.StallAct}
		return BurstTrace(sp.Name, rng, fmax, sp.Bursts, us(sp.GapUS), us(sp.BurstUS), p, burst, sp.DurJitter)
	}
	panic("workload: unreachable kind " + sp.Kind) // validate() guards this
}

// ParseBenchmarks reads a JSON array of SpecJSON and returns the
// corresponding benchmarks. Names must be unique within the input and
// must not shadow the built-in registry.
func ParseBenchmarks(r io.Reader) ([]Benchmark, error) {
	var specs []SpecJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("workload: parse: %w", err)
	}
	seen := map[string]bool{}
	out := make([]Benchmark, 0, len(specs))
	for _, sp := range specs {
		if seen[sp.Name] {
			return nil, fmt.Errorf("workload: duplicate benchmark %q", sp.Name)
		}
		if _, err := ByName(sp.Name); err == nil {
			return nil, fmt.Errorf("workload: %q shadows a built-in benchmark", sp.Name)
		}
		b, err := sp.Benchmark()
		if err != nil {
			return nil, err
		}
		seen[sp.Name] = true
		out = append(out, b)
	}
	return out, nil
}
