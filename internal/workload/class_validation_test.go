package workload

import (
	"testing"

	"hcapp/internal/analysis"
	"hcapp/internal/sim"
)

// activitySeries samples a benchmark's activity at fmax over several
// trace loops — the signal shape the paper's Table 3 classes describe.
func activitySeries(t *testing.T, name string, fmax float64) []float64 {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := b.TraceFor(42, 0, 8, fmax)
	c := NewCursor(tr, 0)
	span := 3 * tr.LoopDurationAtFmax(fmax)
	step := 10 * sim.Microsecond
	var xs []float64
	for elapsed := sim.Time(0); elapsed < span; elapsed += step {
		xs = append(xs, c.Step(step, fmax, fmax).Activity)
	}
	return xs
}

// TestTable3ClassesAreMeasurable verifies the substitution claim of
// DESIGN.md §1 quantitatively: the synthetic proxies exhibit the
// behaviour classes the paper assigned to the real benchmarks, as
// measured by internal/analysis — not merely asserted by their names.
func TestTable3ClassesAreMeasurable(t *testing.T) {
	cases := []struct {
		bench string
		fmax  float64
		want  analysis.Class
	}{
		// "Burst" benchmarks: long quiet stretches, short tall spikes.
		{"ferret", 2e9, analysis.ClassBursty},
		{"bfs", 700e6, analysis.ClassBursty},
		// "Hi"/"Mid" wave benchmarks: pronounced phases.
		{"fluidanimate", 2e9, analysis.ClassPhased},
		{"backprop", 700e6, analysis.ClassPhased},
		{"sradv2", 700e6, analysis.ClassPhased},
		// "Low"/steady benchmarks: flat at package timescales.
		{"blackscholes", 2e9, analysis.ClassSteady},
		{"swaptions", 2e9, analysis.ClassSteady},
		{"myocyte", 700e6, analysis.ClassSteady},
	}
	for _, c := range cases {
		p := analysis.Analyze(activitySeries(t, c.bench, c.fmax))
		if got := analysis.Classify(p); got != c.want {
			t.Errorf("%s classified as %s, want %s (%s)", c.bench, got, c.want, p)
		}
	}
}

// TestBurstBenchmarksHaveHigherBurstiness orders the classes on the
// continuous burstiness scale as well.
func TestBurstBenchmarksHaveHigherBurstiness(t *testing.T) {
	ferret := analysis.Analyze(activitySeries(t, "ferret", 2e9))
	black := analysis.Analyze(activitySeries(t, "blackscholes", 2e9))
	if ferret.Burstiness <= black.Burstiness {
		t.Fatalf("ferret burstiness %.3f not above blackscholes %.3f",
			ferret.Burstiness, black.Burstiness)
	}
	if ferret.PeakToMean <= black.PeakToMean {
		t.Fatalf("ferret peak/mean %.3f not above blackscholes %.3f",
			ferret.PeakToMean, black.PeakToMean)
	}
}
