package workload

import (
	"math"
	"reflect"
	"testing"

	"hcapp/internal/sim"
)

func TestRegistryContents(t *testing.T) {
	cpu := CPUBenchmarks()
	if len(cpu) != 4 {
		t.Fatalf("CPU benchmarks = %d, want 4 (paper §4.2 subset)", len(cpu))
	}
	gpu := GPUBenchmarks()
	if len(gpu) != 4 {
		t.Fatalf("GPU benchmarks = %d, want 4 (paper §4.3 subset)", len(gpu))
	}
	wantCPU := []string{"blackscholes", "ferret", "fluidanimate", "swaptions"}
	for i, b := range cpu {
		if b.Name != wantCPU[i] {
			t.Errorf("cpu[%d] = %s, want %s", i, b.Name, wantCPU[i])
		}
		if b.On != TargetCPU || b.Suite != "PARSEC" {
			t.Errorf("%s: wrong target/suite", b.Name)
		}
	}
	wantGPU := []string{"backprop", "bfs", "myocyte", "sradv2"}
	for i, b := range gpu {
		if b.Name != wantGPU[i] {
			t.Errorf("gpu[%d] = %s, want %s", i, b.Name, wantGPU[i])
		}
		if b.On != TargetGPU || b.Suite != "Rodinia" {
			t.Errorf("%s: wrong target/suite", b.Name)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("ferret")
	if err != nil || b.Class != ClassBurst {
		t.Fatalf("ByName(ferret) = %+v, %v", b, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestByClass(t *testing.T) {
	cases := []struct {
		on   Target
		c    Class
		want string
	}{
		{TargetCPU, ClassLow, "blackscholes"},
		{TargetCPU, ClassHi, "fluidanimate"},
		{TargetCPU, ClassMid, "swaptions"},
		{TargetCPU, ClassBurst, "ferret"},
		{TargetCPU, ClassConst, "swaptions"}, // Const maps to swaptions per Table 3
		{TargetGPU, ClassLow, "myocyte"},
		{TargetGPU, ClassHi, "backprop"},
		{TargetGPU, ClassMid, "sradv2"},
		{TargetGPU, ClassBurst, "bfs"},
	}
	for _, c := range cases {
		b, err := ByClass(c.on, c.c)
		if err != nil {
			t.Fatalf("ByClass(%s, %s): %v", c.on, c.c, err)
		}
		if b.Name != c.want {
			t.Errorf("ByClass(%s, %s) = %s, want %s", c.on, c.c, b.Name, c.want)
		}
	}
	if _, err := ByClass(TargetCPU, Class("Weird")); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestTraceForDeterminism(t *testing.T) {
	for _, b := range append(CPUBenchmarks(), GPUBenchmarks()...) {
		fmax := 2e9
		t1 := b.TraceFor(42, 0, 8, fmax)
		t2 := b.TraceFor(42, 0, 8, fmax)
		if !reflect.DeepEqual(t1, t2) {
			t.Errorf("%s: same seed produced different traces", b.Name)
		}
		t3 := b.TraceFor(43, 0, 8, fmax)
		if reflect.DeepEqual(t1, t3) {
			t.Errorf("%s: different seeds produced identical traces", b.Name)
		}
	}
}

func TestTraceForValidity(t *testing.T) {
	// Every benchmark must produce valid traces for every unit over a
	// spread of seeds.
	for _, b := range append(CPUBenchmarks(), GPUBenchmarks()...) {
		fmax := 2e9
		if b.On == TargetGPU {
			fmax = 700e6
		}
		for seed := int64(0); seed < 5; seed++ {
			for unit := 0; unit < 4; unit++ {
				tr := b.TraceFor(seed, unit, 4, fmax)
				if err := tr.Validate(); err != nil {
					t.Fatalf("%s seed=%d unit=%d: %v", b.Name, seed, unit, err)
				}
			}
		}
	}
}

func TestCorrelatedBenchmarksShareTiming(t *testing.T) {
	b, err := ByName("ferret")
	if err != nil {
		t.Fatal(err)
	}
	t0 := b.TraceFor(7, 0, 8, 2e9)
	t1 := b.TraceFor(7, 5, 8, 2e9)
	if len(t0.Phases) != len(t1.Phases) {
		t.Fatal("correlated units have different phase counts")
	}
	for i := range t0.Phases {
		if t0.Phases[i].Instr != t1.Phases[i].Instr {
			t.Fatalf("phase %d work differs across correlated units", i)
		}
	}
	// Start phases must be 0 for correlated workloads.
	if got := b.StartPhase(7, 3, 8, len(t0.Phases)); got != 0 {
		t.Fatalf("correlated start phase = %d, want 0", got)
	}
}

func TestDecorrelatedBenchmarksDiffer(t *testing.T) {
	b, err := ByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	t0 := b.TraceFor(7, 0, 8, 2e9)
	t1 := b.TraceFor(7, 5, 8, 2e9)
	if reflect.DeepEqual(t0, t1) {
		t.Fatal("decorrelated units produced identical traces")
	}
	// Start phases spread over the trace.
	seen := map[int]bool{}
	for unit := 0; unit < 8; unit++ {
		seen[b.StartPhase(7, unit, 8, len(t0.Phases))] = true
	}
	if len(seen) < 2 {
		t.Fatal("decorrelated start phases all identical")
	}
}

func TestBurstClassHasHighDynamicRange(t *testing.T) {
	// The Burst benchmarks must have a large gap between their lowest
	// and highest phase activity; the steady ones must not.
	span := func(tr *Trace) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range tr.Phases {
			lo = math.Min(lo, p.Activity)
			hi = math.Max(hi, p.Activity)
		}
		return hi - lo
	}
	ferret, _ := ByName("ferret")
	black, _ := ByName("blackscholes")
	fSpan := span(ferret.TraceFor(1, 0, 8, 2e9))
	bSpan := span(black.TraceFor(1, 0, 8, 2e9))
	if fSpan < 0.4 {
		t.Fatalf("ferret activity span %g, want bursty (≥0.4)", fSpan)
	}
	if bSpan > 0.25 {
		t.Fatalf("blackscholes activity span %g, want steady (≤0.25)", bSpan)
	}
}

func TestClassActivityOrdering(t *testing.T) {
	// Mean activity must order Low < Mid < Hi for both targets.
	meanAct := func(b Benchmark, fmax float64) float64 {
		tr := b.TraceFor(3, 0, 8, fmax)
		sum := 0.0
		for _, p := range tr.Phases {
			sum += p.Activity
		}
		return sum / float64(len(tr.Phases))
	}
	for _, target := range []Target{TargetCPU, TargetGPU} {
		fmax := 2e9
		if target == TargetGPU {
			fmax = 700e6
		}
		low, _ := ByClass(target, ClassLow)
		mid, _ := ByClass(target, ClassMid)
		hi, _ := ByClass(target, ClassHi)
		l, m, h := meanAct(low, fmax), meanAct(mid, fmax), meanAct(hi, fmax)
		if !(l < m && m < h) {
			t.Errorf("%s activity ordering broken: low=%g mid=%g hi=%g", target, l, m, h)
		}
	}
}

func TestTraceForPanicsOnBadUnit(t *testing.T) {
	b, _ := ByName("ferret")
	for _, c := range []struct{ unit, n int }{{-1, 8}, {8, 8}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("unit=%d n=%d: expected panic", c.unit, c.n)
				}
			}()
			b.TraceFor(1, c.unit, c.n, 2e9)
		}()
	}
}

func TestBurstTraceHasRampPhases(t *testing.T) {
	// BurstTrace inserts ramps: gap, ramp, burst, ramp per burst.
	ferret, _ := ByName("ferret")
	tr := ferret.TraceFor(1, 0, 8, 2e9)
	if len(tr.Phases)%4 != 0 {
		t.Fatalf("burst trace phases = %d, want multiple of 4", len(tr.Phases))
	}
	// Ramp activity sits between gap and burst activity.
	gap, ramp, burst := tr.Phases[0], tr.Phases[1], tr.Phases[2]
	if !(ramp.Activity > gap.Activity && ramp.Activity < burst.Activity) {
		t.Fatalf("ramp activity %g not between gap %g and burst %g",
			ramp.Activity, gap.Activity, burst.Activity)
	}
}

func TestBuilders(t *testing.T) {
	fmax := 2e9
	// ConstantTrace: exactly one phase with the requested duration.
	ct := ConstantTrace("c", fmax, 50*sim.Microsecond, 1.5, 0.2, 0.5, 0.1)
	if len(ct.Phases) != 1 {
		t.Fatalf("ConstantTrace phases = %d", len(ct.Phases))
	}
	if err := ct.Validate(); err != nil {
		t.Fatal(err)
	}
	d := ct.Phases[0].DurationAtFmax(fmax)
	if math.Abs(float64(d-50*sim.Microsecond)) > 100 {
		t.Fatalf("ConstantTrace duration %s", sim.FormatTime(d))
	}
}

func TestMixSeedStability(t *testing.T) {
	a := mixSeed(42, "x", 1)
	b := mixSeed(42, "x", 1)
	if a != b {
		t.Fatal("mixSeed not deterministic")
	}
	if mixSeed(42, "x", 1) == mixSeed(42, "x", 2) {
		t.Fatal("mixSeed ignores unit")
	}
	if mixSeed(42, "x", 1) == mixSeed(42, "y", 1) {
		t.Fatal("mixSeed ignores label")
	}
	if mixSeed(42, "x", 1) == mixSeed(43, "x", 1) {
		t.Fatal("mixSeed ignores seed")
	}
	if mixSeed(0, "", 0) == 0 {
		t.Fatal("mixSeed must never return 0")
	}
}
