package workload

import (
	"math"
	"testing"
	"testing/quick"

	"hcapp/internal/sim"
)

func validPhase() Phase {
	return Phase{Instr: 1e6, IPC: 1.5, MemFrac: 0.3, Activity: 0.6, StallAct: 0.1}
}

func TestPhaseValidate(t *testing.T) {
	if err := validPhase().Validate(); err != nil {
		t.Fatalf("valid phase rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Phase)
	}{
		{"zero work", func(p *Phase) { p.Instr = 0 }},
		{"zero ipc", func(p *Phase) { p.IPC = 0 }},
		{"memfrac 1", func(p *Phase) { p.MemFrac = 1 }},
		{"negative memfrac", func(p *Phase) { p.MemFrac = -0.1 }},
		{"zero activity", func(p *Phase) { p.Activity = 0 }},
		{"activity over 1", func(p *Phase) { p.Activity = 1.1 }},
		{"stall over 1", func(p *Phase) { p.StallAct = 1.1 }},
	}
	for _, c := range cases {
		p := validPhase()
		c.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestSlowdownLimits(t *testing.T) {
	p := validPhase()
	if got := p.Slowdown(2e9, 2e9); math.Abs(got-1) > 1e-12 {
		t.Fatalf("slowdown at fmax = %g, want 1", got)
	}
	// Pure compute: slowdown = fmax/f.
	p.MemFrac = 0
	if got := p.Slowdown(1e9, 2e9); math.Abs(got-2) > 1e-12 {
		t.Fatalf("compute-bound slowdown = %g, want 2", got)
	}
	// Nearly memory-bound: slowdown approaches 1 regardless of f.
	p.MemFrac = 0.99
	if got := p.Slowdown(1e9, 2e9); got > 1.02 {
		t.Fatalf("memory-bound slowdown = %g, want ≈1", got)
	}
	if got := p.Slowdown(0, 2e9); got != 0 {
		t.Fatalf("zero-frequency slowdown sentinel = %g", got)
	}
}

func TestIPSAtFmax(t *testing.T) {
	p := validPhase()
	want := p.IPC * 2e9 * (1 - p.MemFrac)
	if got := p.IPS(2e9, 2e9); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("IPS(fmax) = %g, want %g", got, want)
	}
	if got := p.IPS(0, 2e9); got != 0 {
		t.Fatalf("IPS(0) = %g", got)
	}
}

func TestIPSMonotoneInFrequency(t *testing.T) {
	p := validPhase()
	f := func(a, b uint16) bool {
		f1 := 1e8 + float64(a)/65535*1.9e9
		f2 := 1e8 + float64(b)/65535*1.9e9
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		return p.IPS(f1, 2e9) <= p.IPS(f2, 2e9)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEffActivityBounds(t *testing.T) {
	p := validPhase()
	for _, f := range []float64{2e8, 1e9, 2e9} {
		a := p.EffActivity(f, 2e9)
		if a < p.StallAct-1e-12 || a > p.Activity+1e-12 {
			t.Fatalf("EffActivity(%g) = %g outside [stall, compute]", f, a)
		}
	}
	if got := p.EffActivity(0, 2e9); got != p.StallAct {
		t.Fatalf("EffActivity(0) = %g, want stall activity", got)
	}
}

func TestEffActivityStallGrowsWithFrequency(t *testing.T) {
	// At higher frequency the stall fraction of wall time grows, so
	// effective activity falls toward the stall activity.
	p := validPhase()
	lo := p.EffActivity(5e8, 2e9)
	hi := p.EffActivity(2e9, 2e9)
	if hi >= lo {
		t.Fatalf("stall weighting should grow with f: %g vs %g", lo, hi)
	}
}

func TestPhaseForDurationRoundTrip(t *testing.T) {
	fmax := 2e9
	p := PhaseFor(100*sim.Microsecond, fmax, 1.5, 0.3, 0.6, 0.1)
	got := p.DurationAtFmax(fmax)
	if math.Abs(float64(got-100*sim.Microsecond)) > 10 {
		t.Fatalf("DurationAtFmax = %s, want 100µs", sim.FormatTime(got))
	}
}

func TestTraceValidate(t *testing.T) {
	tr := &Trace{Name: "empty"}
	if err := tr.Validate(); err == nil {
		t.Fatal("empty trace accepted")
	}
	tr = &Trace{Name: "bad", Phases: []Phase{{Instr: -1, IPC: 1, Activity: 0.5}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("invalid phase accepted")
	}
	tr = &Trace{Name: "ok", Phases: []Phase{validPhase()}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestTraceTotals(t *testing.T) {
	tr := &Trace{Phases: []Phase{validPhase(), validPhase()}}
	if got := tr.TotalInstr(); got != 2e6 {
		t.Fatalf("TotalInstr = %g", got)
	}
	d := tr.LoopDurationAtFmax(2e9)
	if d <= 0 {
		t.Fatalf("loop duration %d", d)
	}
}

func TestAvgIPSBetweenPhaseRates(t *testing.T) {
	fast := Phase{Instr: 1e6, IPC: 2.0, MemFrac: 0.0, Activity: 0.9, StallAct: 0.1}
	slow := Phase{Instr: 1e6, IPC: 0.5, MemFrac: 0.5, Activity: 0.3, StallAct: 0.1}
	tr := &Trace{Phases: []Phase{fast, slow}}
	avg := tr.AvgIPS(2e9, 2e9)
	loIPS := slow.IPS(2e9, 2e9)
	hiIPS := fast.IPS(2e9, 2e9)
	if avg < loIPS || avg > hiIPS {
		t.Fatalf("AvgIPS %g outside [%g, %g]", avg, loIPS, hiIPS)
	}
	if got := tr.AvgIPS(0, 2e9); got != 0 {
		t.Fatalf("AvgIPS at f=0 should be 0, got %g", got)
	}
}

func TestCursorConsumesWork(t *testing.T) {
	tr := &Trace{Phases: []Phase{validPhase()}}
	c := NewCursor(tr, 0)
	out := c.Step(10*sim.Microsecond, 2e9, 2e9)
	want := validPhase().IPS(2e9, 2e9) * 10e-6
	if math.Abs(out.Instr-want)/want > 1e-9 {
		t.Fatalf("retired %g instr, want %g", out.Instr, want)
	}
	if out.IPC <= 0 {
		t.Fatal("measured IPC should be positive")
	}
}

func TestCursorCrossesPhaseBoundaries(t *testing.T) {
	// Two tiny phases of 1 µs each; a 3 µs step must cross both and
	// wrap around the loop.
	fmax := 2e9
	a := PhaseFor(1*sim.Microsecond, fmax, 1.0, 0, 0.9, 0.1)
	b := PhaseFor(1*sim.Microsecond, fmax, 1.0, 0, 0.2, 0.1)
	tr := &Trace{Phases: []Phase{a, b}}
	c := NewCursor(tr, 0)
	out := c.Step(3*sim.Microsecond, fmax, fmax)
	wantInstr := a.Instr + b.Instr + a.Instr
	if math.Abs(out.Instr-wantInstr)/wantInstr > 1e-9 {
		t.Fatalf("retired %g, want %g", out.Instr, wantInstr)
	}
	// Time-weighted activity: 2 µs of 0.9, 1 µs of 0.2.
	wantAct := (2*0.9 + 1*0.2) / 3
	if math.Abs(out.Activity-wantAct) > 1e-9 {
		t.Fatalf("activity %g, want %g", out.Activity, wantAct)
	}
}

func TestCursorZeroFrequency(t *testing.T) {
	tr := &Trace{Phases: []Phase{validPhase()}}
	c := NewCursor(tr, 0)
	out := c.Step(1*sim.Microsecond, 0, 2e9)
	if out.Instr != 0 {
		t.Fatalf("retired %g at f=0", out.Instr)
	}
	if out.Activity != validPhase().StallAct {
		t.Fatalf("activity %g at f=0, want stall", out.Activity)
	}
}

func TestCursorStartPhaseAndReset(t *testing.T) {
	a := validPhase()
	b := validPhase()
	b.Activity = 0.9
	tr := &Trace{Phases: []Phase{a, b}}
	c := NewCursor(tr, 1)
	if c.Phase().Activity != 0.9 {
		t.Fatal("start phase not honored")
	}
	c.Reset(0)
	if c.Phase().Activity != a.Activity {
		t.Fatal("reset start phase not honored")
	}
	// Negative and out-of-range starts wrap.
	c2 := NewCursor(tr, -1)
	if c2.Phase().Activity != 0.9 {
		t.Fatal("negative start phase should wrap to last")
	}
	c3 := NewCursor(tr, 5)
	if c3.Phase().Activity != 0.9 {
		t.Fatal("overflow start phase should wrap")
	}
}

func TestCursorWorkConservationProperty(t *testing.T) {
	// Over any sequence of steps, total retired work must equal the
	// single-step equivalent: rate doesn't depend on step partitioning.
	fmax := 2e9
	tr := &Trace{Phases: []Phase{
		PhaseFor(3*sim.Microsecond, fmax, 1.2, 0.2, 0.5, 0.1),
		PhaseFor(2*sim.Microsecond, fmax, 2.0, 0.05, 0.9, 0.1),
	}}
	f := func(nStepsRaw uint8) bool {
		nSteps := int(nStepsRaw%20) + 1
		per := 10 * sim.Microsecond / sim.Time(nSteps)
		total := per * sim.Time(nSteps)
		c1 := NewCursor(tr, 0)
		one := c1.Step(total, fmax, fmax)
		c2 := NewCursor(tr, 0)
		var sum float64
		for i := 0; i < nSteps; i++ {
			sum += c2.Step(per, fmax, fmax).Instr
		}
		return math.Abs(sum-one.Instr)/one.Instr < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
