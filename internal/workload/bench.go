package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"hcapp/internal/sim"
)

// Class is the paper's power-behaviour classification used to name the
// Table 3 combinations.
type Class string

// Power-behaviour classes from Table 3.
const (
	ClassLow   Class = "Low"
	ClassMid   Class = "Mid"
	ClassHi    Class = "Hi"
	ClassBurst Class = "Burst"
	ClassConst Class = "Const"
)

// Target identifies which chiplet a benchmark runs on.
type Target string

// Benchmark targets.
const (
	TargetCPU Target = "CPU"
	TargetGPU Target = "GPU"
)

// Benchmark is a named synthetic proxy for one of the paper's PARSEC or
// Rodinia workloads.
type Benchmark struct {
	Name  string
	Suite string // "PARSEC" or "Rodinia"
	Class Class
	On    Target
	// correlated marks bursty benchmarks whose phases must line up
	// across units so bursts appear at the package level.
	correlated bool
	build      func(rng *rand.Rand, fmax float64) *Trace
}

// TraceFor builds the trace executed by one unit (core or SM) of nUnits,
// deterministically derived from seed. Steady workloads decorrelate units
// with distinct sub-seeds and start phases; bursty workloads share the
// burst schedule across units (a kernel-level phase hits all SMs at once)
// with only slight per-unit amplitude variation.
func (b Benchmark) TraceFor(seed int64, unit, nUnits int, fmax float64) *Trace {
	if b.build == nil {
		panic(fmt.Sprintf("workload: benchmark %q has no builder", b.Name))
	}
	if unit < 0 || nUnits <= 0 || unit >= nUnits {
		panic(fmt.Sprintf("workload: unit %d of %d out of range", unit, nUnits))
	}
	var rng *rand.Rand
	if b.correlated {
		rng = rand.New(rand.NewSource(mixSeed(seed, b.Name, 0)))
	} else {
		rng = rand.New(rand.NewSource(mixSeed(seed, b.Name, unit)))
	}
	t := b.build(rng, fmax)
	if b.correlated && nUnits > 1 {
		// Per-unit amplitude variation without disturbing timing.
		urng := rand.New(rand.NewSource(mixSeed(seed, b.Name+"/amp", unit)))
		scale := 1 + 0.03*(2*urng.Float64()-1)
		for i := range t.Phases {
			a := t.Phases[i].Activity * scale
			if a > 1 {
				a = 1
			}
			if a < 0.02 {
				a = 0.02
			}
			t.Phases[i].Activity = a
		}
	}
	return t
}

// StartPhase returns the phase index a given unit should begin at, to
// decorrelate steady workloads. Correlated (bursty) workloads always
// start at phase 0.
func (b Benchmark) StartPhase(seed int64, unit, nUnits int, tracePhases int) int {
	if b.correlated || tracePhases <= 1 {
		return 0
	}
	rng := rand.New(rand.NewSource(mixSeed(seed, b.Name+"/start", unit)))
	return rng.Intn(tracePhases)
}

// mixSeed derives a stable sub-seed from (seed, label, unit).
func mixSeed(seed int64, label string, unit int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", seed, label, unit)
	v := int64(h.Sum64())
	if v == 0 {
		v = 1
	}
	return v
}

// The CPU benchmark subset (paper §4.2): "blackscholes, fluidanimate,
// ferret and swaptions. This subset captures a wide variety of power
// behavior on the CPU."
var cpuBenchmarks = []Benchmark{
	{
		Name: "blackscholes", Suite: "PARSEC", Class: ClassLow, On: TargetCPU,
		build: func(rng *rand.Rand, fmax float64) *Trace {
			return SteadyTrace("blackscholes", rng, fmax, 24, 100*sim.Microsecond,
				profile{ipc: 1.4, memFrac: 0.15, activity: 0.48, stallAct: 0.10}, 0.08)
		},
	},
	{
		Name: "fluidanimate", Suite: "PARSEC", Class: ClassHi, On: TargetCPU,
		correlated: true, // parallel phases hit all cores together
		build: func(rng *rand.Rand, fmax float64) *Trace {
			return WaveTrace("fluidanimate", rng, fmax, 16, 320*sim.Microsecond,
				profile{ipc: 1.6, memFrac: 0.20, activity: 0.75, stallAct: 0.12}, 0.55, 0.88)
		},
	},
	{
		Name: "swaptions", Suite: "PARSEC", Class: ClassMid, On: TargetCPU,
		build: func(rng *rand.Rand, fmax float64) *Trace {
			return SteadyTrace("swaptions", rng, fmax, 24, 120*sim.Microsecond,
				profile{ipc: 1.8, memFrac: 0.08, activity: 0.62, stallAct: 0.10}, 0.04)
		},
	},
	{
		Name: "ferret", Suite: "PARSEC", Class: ClassBurst, On: TargetCPU,
		correlated: true,
		build: func(rng *rand.Rand, fmax float64) *Trace {
			return BurstTrace("ferret", rng, fmax, 10,
				240*sim.Microsecond, 60*sim.Microsecond,
				profile{ipc: 0.9, memFrac: 0.75, activity: 0.26, stallAct: 0.10},
				profile{ipc: 2.0, memFrac: 0.03, activity: 0.84, stallAct: 0.10},
				0.25)
		},
	},
}

// The GPU benchmark subset (paper §4.3): "backprop, bfs, myocyte and
// sradv2. These benchmarks capture a range of power characteristics."
var gpuBenchmarks = []Benchmark{
	{
		Name: "myocyte", Suite: "Rodinia", Class: ClassLow, On: TargetGPU,
		build: func(rng *rand.Rand, fmax float64) *Trace {
			return SteadyTrace("myocyte", rng, fmax, 24, 110*sim.Microsecond,
				profile{ipc: 0.5, memFrac: 0.30, activity: 0.42, stallAct: 0.10}, 0.10)
		},
	},
	{
		Name: "backprop", Suite: "Rodinia", Class: ClassHi, On: TargetGPU,
		correlated: true, // kernel phases hit all SMs together
		build: func(rng *rand.Rand, fmax float64) *Trace {
			return WaveTrace("backprop", rng, fmax, 13, 260*sim.Microsecond,
				profile{ipc: 1.7, memFrac: 0.25, activity: 0.78, stallAct: 0.14}, 0.64, 0.88)
		},
	},
	{
		Name: "sradv2", Suite: "Rodinia", Class: ClassMid, On: TargetGPU,
		correlated: true, // kernel phases hit all SMs together
		build: func(rng *rand.Rand, fmax float64) *Trace {
			return WaveTrace("sradv2", rng, fmax, 12, 240*sim.Microsecond,
				profile{ipc: 1.3, memFrac: 0.30, activity: 0.58, stallAct: 0.10}, 0.48, 0.72)
		},
	},
	{
		Name: "bfs", Suite: "Rodinia", Class: ClassBurst, On: TargetGPU,
		correlated: true,
		build: func(rng *rand.Rand, fmax float64) *Trace {
			return BurstTrace("bfs", rng, fmax, 12,
				180*sim.Microsecond, 50*sim.Microsecond,
				profile{ipc: 0.8, memFrac: 0.68, activity: 0.36, stallAct: 0.10},
				profile{ipc: 1.8, memFrac: 0.10, activity: 0.84, stallAct: 0.12},
				0.5)
		},
	},
}

// CPUBenchmarks returns the CPU benchmark subset, sorted by name.
func CPUBenchmarks() []Benchmark { return sortedCopy(cpuBenchmarks) }

// GPUBenchmarks returns the GPU benchmark subset, sorted by name.
func GPUBenchmarks() []Benchmark { return sortedCopy(gpuBenchmarks) }

func sortedCopy(bs []Benchmark) []Benchmark {
	out := make([]Benchmark, len(bs))
	copy(out, bs)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName looks up a benchmark by name across both suites.
func ByName(name string) (Benchmark, error) {
	for _, b := range cpuBenchmarks {
		if b.Name == name {
			return b, nil
		}
	}
	for _, b := range gpuBenchmarks {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// ByClass returns the benchmark of the given class on the given target.
func ByClass(on Target, c Class) (Benchmark, error) {
	src := cpuBenchmarks
	if on == TargetGPU {
		src = gpuBenchmarks
	}
	for _, b := range src {
		if b.Class == c {
			return b, nil
		}
	}
	// Const maps to the Mid (constant-behaviour) benchmark, as in
	// Table 3 where "Const" is swaptions.
	if c == ClassConst {
		return ByClass(on, ClassMid)
	}
	return Benchmark{}, fmt.Errorf("workload: no %s benchmark of class %s", on, c)
}
