package workload

import (
	"math"
	"strings"
	"testing"

	"hcapp/internal/sim"
)

// FuzzParseBenchmarks checks that arbitrary JSON never panics the
// parser and that anything it accepts builds valid traces.
func FuzzParseBenchmarks(f *testing.F) {
	f.Add(sampleSpecs)
	f.Add(`[]`)
	f.Add(`[{"name":"a","target":"cpu","kind":"constant","phase_dur_us":10,"ipc":1,"activity":0.5}]`)
	f.Add(`[{"name":"","target":"","kind":""}]`)
	f.Add(`not json at all`)
	f.Add(`[{"name":"w","target":"gpu","kind":"wave","phases":3,"wave_period_us":1,"ipc":0.1,"act_lo":0.1,"act_hi":0.2}]`)
	f.Fuzz(func(t *testing.T, input string) {
		bs, err := ParseBenchmarks(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, b := range bs {
			tr := b.TraceFor(1, 0, 2, 1e9)
			if err := tr.Validate(); err != nil {
				t.Fatalf("accepted spec built invalid trace: %v", err)
			}
		}
	})
}

// FuzzCursorStep checks the execution-model arithmetic: any phase the
// validator accepts must step without NaNs, negative work, or activity
// outside the physical envelope.
func FuzzCursorStep(f *testing.F) {
	f.Add(1e6, 1.5, 0.3, 0.6, 0.1, int64(1000), 1e9)
	f.Add(10.0, 0.1, 0.0, 1.0, 0.0, int64(100), 1e8)
	f.Add(1e9, 3.0, 0.9, 0.02, 0.02, int64(100000), 2e9)
	f.Fuzz(func(t *testing.T, instr, ipc, mem, act, stall float64, dtRaw int64, freq float64) {
		p := Phase{Instr: instr, IPC: ipc, MemFrac: mem, Activity: act, StallAct: stall}
		if p.Validate() != nil {
			return
		}
		dt := sim.Time(dtRaw)
		if dt <= 0 || dt > sim.Second {
			return
		}
		if freq < 0 || freq > 1e11 || math.IsNaN(freq) {
			return
		}
		tr := &Trace{Name: "fuzz", Phases: []Phase{p}}
		c := NewCursor(tr, 0)
		out := c.Step(dt, freq, 2e9)
		if math.IsNaN(out.Instr) || out.Instr < 0 {
			t.Fatalf("work = %g", out.Instr)
		}
		if math.IsNaN(out.Activity) {
			t.Fatal("activity NaN")
		}
		lo := math.Min(p.Activity, p.StallAct)
		hi := math.Max(p.Activity, p.StallAct)
		if out.Activity < lo-1e-9 || out.Activity > hi+1e-9 {
			t.Fatalf("activity %g outside [%g,%g]", out.Activity, lo, hi)
		}
		if math.IsNaN(out.IPC) || out.IPC < 0 {
			t.Fatalf("ipc = %g", out.IPC)
		}
	})
}
