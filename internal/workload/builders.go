package workload

import (
	"math"
	"math/rand"

	"hcapp/internal/sim"
)

// Shape parameters reused by the builders.
type profile struct {
	ipc      float64 // no-stall IPC
	memFrac  float64
	activity float64
	stallAct float64
}

// jitter returns base perturbed by a uniform relative jitter of ±frac,
// clamped to (lo, hi).
func jitter(rng *rand.Rand, base, frac, lo, hi float64) float64 {
	v := base * (1 + frac*(2*rng.Float64()-1))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// jitterDur perturbs a duration by ±frac.
func jitterDur(rng *rand.Rand, base sim.Time, frac float64) sim.Time {
	v := sim.Time(float64(base) * (1 + frac*(2*rng.Float64()-1)))
	if v < sim.Microsecond {
		v = sim.Microsecond
	}
	return v
}

// SteadyTrace builds a trace of nPhases phases of roughly phaseDur each,
// with small random perturbations around the profile — a program whose
// power is flat at package timescales (blackscholes, swaptions, myocyte).
func SteadyTrace(name string, rng *rand.Rand, fmax float64, nPhases int, phaseDur sim.Time, p profile, actJitter float64) *Trace {
	t := &Trace{Name: name}
	for i := 0; i < nPhases; i++ {
		t.Phases = append(t.Phases, PhaseFor(
			jitterDur(rng, phaseDur, 0.2),
			fmax,
			jitter(rng, p.ipc, 0.1, 0.05, 4),
			jitter(rng, p.memFrac, 0.15, 0, 0.95),
			jitter(rng, p.activity, actJitter, 0.02, 1),
			p.stallAct,
		))
	}
	return t
}

// WaveTrace builds a trace whose activity oscillates sinusoidally between
// actLo and actHi over period wavePeriod, discretized into nPhases — a
// program with pronounced medium-timescale power phases (fluidanimate,
// sradv2).
func WaveTrace(name string, rng *rand.Rand, fmax float64, nPhases int, wavePeriod sim.Time, p profile, actLo, actHi float64) *Trace {
	t := &Trace{Name: name}
	phaseDur := wavePeriod / sim.Time(nPhases)
	for i := 0; i < nPhases; i++ {
		frac := float64(i) / float64(nPhases)
		act := actLo + (actHi-actLo)*(0.5+0.5*math.Sin(2*math.Pi*frac))
		t.Phases = append(t.Phases, PhaseFor(
			jitterDur(rng, phaseDur, 0.1),
			fmax,
			jitter(rng, p.ipc, 0.08, 0.05, 4),
			jitter(rng, p.memFrac, 0.1, 0, 0.95),
			jitter(rng, act, 0.05, 0.02, 1),
			p.stallAct,
		))
	}
	return t
}

// BurstTrace builds a trace alternating long low-power gap phases with
// short high-power bursts — the ferret/bfs behaviour that separates fast
// and slow controllers. Burst width sits between HCAPP's 1 µs and the
// RAPL-like 100 µs control periods so that only the fast controller reacts
// within a burst. Each burst has short ramp edges (pipelines fill and
// drain over a few microseconds rather than in one cycle), which is also
// what gives a microsecond-scale controller a fighting chance to clamp
// the burst before the 20 µs window integrates it.
func BurstTrace(name string, rng *rand.Rand, fmax float64, nBursts int, gapDur, burstDur sim.Time, gapP, burstP profile, durJitter float64) *Trace {
	t := &Trace{Name: name}
	rampDur := burstDur / 8
	if rampDur < 2*sim.Microsecond {
		rampDur = 2 * sim.Microsecond
	}
	for i := 0; i < nBursts; i++ {
		gap := Phase{}
		gap = PhaseFor(
			jitterDur(rng, gapDur, durJitter),
			fmax,
			jitter(rng, gapP.ipc, 0.1, 0.05, 4),
			jitter(rng, gapP.memFrac, 0.1, 0, 0.95),
			jitter(rng, gapP.activity, 0.1, 0.02, 1),
			gapP.stallAct,
		)
		burst := PhaseFor(
			jitterDur(rng, burstDur, durJitter),
			fmax,
			jitter(rng, burstP.ipc, 0.1, 0.05, 4),
			jitter(rng, burstP.memFrac, 0.1, 0, 0.95),
			jitter(rng, burstP.activity, 0.05, 0.02, 1),
			burstP.stallAct,
		)
		ramp := PhaseFor(
			rampDur,
			fmax,
			(gap.IPC+burst.IPC)/2,
			(gap.MemFrac+burst.MemFrac)/2,
			(gap.Activity+burst.Activity)/2,
			(gap.StallAct+burst.StallAct)/2,
		)
		t.Phases = append(t.Phases, gap, ramp, burst, ramp)
	}
	return t
}

// RampTrace builds a trace whose activity ramps linearly from actLo to
// actHi across the loop — useful for controller tracking tests.
func RampTrace(name string, rng *rand.Rand, fmax float64, nPhases int, totalDur sim.Time, p profile, actLo, actHi float64) *Trace {
	t := &Trace{Name: name}
	phaseDur := totalDur / sim.Time(nPhases)
	for i := 0; i < nPhases; i++ {
		frac := float64(i) / float64(nPhases-1)
		act := actLo + (actHi-actLo)*frac
		t.Phases = append(t.Phases, PhaseFor(
			phaseDur,
			fmax,
			p.ipc,
			p.memFrac,
			jitter(rng, act, 0.02, 0.02, 1),
			p.stallAct,
		))
	}
	return t
}

// ConstantTrace builds a single-phase trace with exactly the given
// profile — the simplest possible load, used heavily in unit tests and
// PID tuning.
func ConstantTrace(name string, fmax float64, dur sim.Time, ipc, memFrac, activity, stallAct float64) *Trace {
	return &Trace{
		Name:   name,
		Phases: []Phase{PhaseFor(dur, fmax, ipc, memFrac, activity, stallAct)},
	}
}
