package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"hcapp/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultChiplet().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero rth", func(c *Config) { c.RthKperW = 0 }},
		{"zero tau", func(c *Config) { c.Tau = 0 }},
		{"trip below ambient", func(c *Config) { c.TripC = c.AmbientC - 1 }},
		{"negative hysteresis", func(c *Config) { c.HystC = -1 }},
		{"hysteresis swallows margin", func(c *Config) { c.HystC = c.TripC - c.AmbientC }},
	}
	for _, c := range cases {
		cfg := DefaultChiplet()
		c.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestMustNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNode did not panic")
		}
	}()
	MustNode(Config{})
}

func TestStartsAtAmbient(t *testing.T) {
	n := MustNode(DefaultChiplet())
	if n.Temp() != 45 {
		t.Fatalf("initial temp %g", n.Temp())
	}
	if n.Tripped() {
		t.Fatal("tripped at ambient")
	}
}

func TestSteadyStateTemperature(t *testing.T) {
	cfg := DefaultChiplet()
	n := MustNode(cfg)
	// 50 W · 0.45 K/W + 45 = 67.5 °C.
	for i := 0; i < 100000; i++ {
		n.Step(1000, 50)
	}
	want := cfg.AmbientC + 50*cfg.RthKperW
	if math.Abs(n.Temp()-want) > 0.1 {
		t.Fatalf("steady temp %g, want %g", n.Temp(), want)
	}
}

func TestTimeConstant(t *testing.T) {
	cfg := DefaultChiplet()
	n := MustNode(cfg)
	// After one tau of constant power, the node reaches ~63.2 % of the
	// step.
	steps := int(cfg.Tau / 1000)
	for i := 0; i < steps; i++ {
		n.Step(1000, 50)
	}
	rise := n.Temp() - cfg.AmbientC
	want := 0.632 * 50 * cfg.RthKperW
	if math.Abs(rise-want) > 1.5 {
		t.Fatalf("rise after tau = %g, want ≈%g", rise, want)
	}
}

func TestBelowTDPNeverTrips(t *testing.T) {
	// The paper's §3.5 assumption: at evaluation power levels the
	// thermal limit is never reached.
	n := MustNode(DefaultChiplet())
	for i := 0; i < 200000; i++ {
		n.Step(1000, 60) // well above any per-chiplet average we run
	}
	if n.Tripped() {
		t.Fatalf("tripped at 60 W (%g °C): below-TDP assumption violated", n.Temp())
	}
	if n.Peak() >= 85 {
		t.Fatalf("peak %g reached trip level", n.Peak())
	}
}

func TestTripAndHysteresis(t *testing.T) {
	n := MustNode(DefaultChiplet())
	// 120 W → steady 99 °C: must trip.
	for i := 0; i < 200000 && !n.Tripped(); i++ {
		n.Step(1000, 120)
	}
	if !n.Tripped() {
		t.Fatal("never tripped at 120 W")
	}
	// Cooling just below the trip point must NOT release (hysteresis).
	for n.Temp() > 84 {
		n.Step(1000, 80) // steady 81 °C, just below trip
	}
	if !n.Tripped() {
		t.Fatal("released inside the hysteresis band")
	}
	// Cooling below trip − hysteresis releases.
	for n.Temp() >= 80 {
		n.Step(1000, 60)
	}
	n.Step(1000, 60)
	if n.Tripped() {
		t.Fatalf("still tripped at %g °C", n.Temp())
	}
}

func TestPeakTracksMaximum(t *testing.T) {
	n := MustNode(DefaultChiplet())
	for i := 0; i < 50000; i++ {
		n.Step(1000, 100)
	}
	hot := n.Temp()
	for i := 0; i < 50000; i++ {
		n.Step(1000, 0)
	}
	if n.Peak() < hot {
		t.Fatalf("peak %g below observed %g", n.Peak(), hot)
	}
	if n.Temp() >= hot {
		t.Fatal("node did not cool")
	}
}

func TestNegativePowerClamped(t *testing.T) {
	n := MustNode(DefaultChiplet())
	for i := 0; i < 100000; i++ {
		n.Step(1000, -50)
	}
	if n.Temp() < DefaultChiplet().AmbientC-0.01 {
		t.Fatalf("cooled below ambient: %g", n.Temp())
	}
}

func TestReset(t *testing.T) {
	n := MustNode(DefaultChiplet())
	for i := 0; i < 100000; i++ {
		n.Step(1000, 150)
	}
	n.Reset()
	if n.Temp() != 45 || n.Tripped() || n.Peak() != 45 {
		t.Fatal("reset incomplete")
	}
}

func TestTemperatureBoundedProperty(t *testing.T) {
	// Temperature always stays within [ambient, ambient + P·Rth] for
	// any constant power level.
	cfg := DefaultChiplet()
	f := func(powRaw uint16, stepsRaw uint8) bool {
		n := MustNode(cfg)
		p := float64(powRaw) / 655.35 // 0..100 W
		steps := int(stepsRaw) + 1
		for i := 0; i < steps; i++ {
			temp := n.Step(sim.Microsecond, p)
			if temp < cfg.AmbientC-1e-9 || temp > cfg.AmbientC+p*cfg.RthKperW+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTemperatureMonotoneTowardSteady(t *testing.T) {
	n := MustNode(DefaultChiplet())
	prev := n.Temp()
	for i := 0; i < 1000; i++ {
		cur := n.Step(sim.Microsecond, 70)
		if cur < prev-1e-12 {
			t.Fatal("heating not monotone under constant power")
		}
		prev = cur
	}
}
