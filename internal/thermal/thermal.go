// Package thermal models per-chiplet junction temperature and the local
// thermal protection the paper's level-3 controllers carry (§3.3):
//
//	"The local controller also monitors the component for any thermal
//	effects using local thermal sensors. ... If thermal effects did
//	exist throughout the workload, the local controller would reduce
//	the local voltage at the affected component to prevent failure."
//
// The model is the standard first-order RC network: a junction with
// thermal resistance Rth to ambient and time constant tau. The paper
// "assume[s] that the system is operating below the thermal limit at all
// times through careful selection of the power limit" (§3.5), so the
// default configuration never trips during the evaluation — the tests
// verify both that assumption and that protection engages when it is
// violated.
package thermal

import (
	"fmt"

	"hcapp/internal/sim"
)

// Config parameterizes one thermal node.
type Config struct {
	// RthKperW is the junction-to-ambient thermal resistance (K/W).
	RthKperW float64
	// Tau is the thermal time constant; temperature approaches its
	// steady state exponentially with this constant.
	Tau sim.Time
	// AmbientC is the ambient (and initial junction) temperature, °C.
	AmbientC float64
	// TripC engages thermal protection when the junction exceeds it.
	TripC float64
	// HystC is the hysteresis: protection releases only once the
	// junction falls below TripC − HystC, preventing throttle chatter.
	HystC float64
}

// Validate reports whether the configuration is physical.
func (c Config) Validate() error {
	switch {
	case c.RthKperW <= 0:
		return fmt.Errorf("thermal: non-positive Rth %g", c.RthKperW)
	case c.Tau <= 0:
		return fmt.Errorf("thermal: non-positive tau %d", c.Tau)
	case c.TripC <= c.AmbientC:
		return fmt.Errorf("thermal: trip %g not above ambient %g", c.TripC, c.AmbientC)
	case c.HystC < 0:
		return fmt.Errorf("thermal: negative hysteresis %g", c.HystC)
	case c.HystC >= c.TripC-c.AmbientC:
		return fmt.Errorf("thermal: hysteresis %g swallows the whole trip margin", c.HystC)
	}
	return nil
}

// DefaultChiplet returns a chiplet-scale thermal node: with the
// evaluation's per-chiplet power (≲60 W) and 0.45 K/W the junction stays
// ≤72 °C, below the 85 °C trip — the paper's below-TDP assumption.
func DefaultChiplet() Config {
	return Config{
		RthKperW: 0.45,
		Tau:      2 * sim.Millisecond,
		AmbientC: 45,
		TripC:    85,
		HystC:    5,
	}
}

// Node is one first-order thermal node with trip/hysteresis state.
type Node struct {
	cfg     Config
	tempC   float64
	tripped bool
	peakC   float64
}

// NewNode builds a node at ambient temperature.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Node{cfg: cfg, tempC: cfg.AmbientC, peakC: cfg.AmbientC}, nil
}

// MustNode is NewNode that panics on invalid configuration.
func MustNode(cfg Config) *Node {
	n, err := NewNode(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Step advances the node by dt under the given power draw and returns
// the junction temperature. The steady-state temperature for constant
// power P is Ambient + P·Rth.
func (n *Node) Step(dt sim.Time, watts float64) float64 {
	if watts < 0 {
		watts = 0
	}
	steady := n.cfg.AmbientC + watts*n.cfg.RthKperW
	alpha := float64(dt) / float64(n.cfg.Tau+dt)
	n.tempC += alpha * (steady - n.tempC)
	if n.tempC > n.peakC {
		n.peakC = n.tempC
	}
	// Trip with hysteresis.
	if n.tempC >= n.cfg.TripC {
		n.tripped = true
	} else if n.tripped && n.tempC < n.cfg.TripC-n.cfg.HystC {
		n.tripped = false
	}
	return n.tempC
}

// Temp returns the current junction temperature, °C.
func (n *Node) Temp() float64 { return n.tempC }

// Peak returns the maximum junction temperature seen, °C.
func (n *Node) Peak() float64 { return n.peakC }

// Tripped reports whether thermal protection is engaged.
func (n *Node) Tripped() bool { return n.tripped }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// Reset returns the node to ambient.
func (n *Node) Reset() {
	n.tempC = n.cfg.AmbientC
	n.peakC = n.cfg.AmbientC
	n.tripped = false
}
