package config

import (
	"strings"
	"testing"

	"hcapp/internal/sim"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesTable2(t *testing.T) {
	c := Default()
	// Table 2 of the paper.
	if c.CPU.Cores != 8 {
		t.Errorf("CPU cores = %d, want 8", c.CPU.Cores)
	}
	if c.GPU.SMs != 15 {
		t.Errorf("GPU SMs = %d, want 15", c.GPU.SMs)
	}
	if c.GPU.CoresPerSM != 1 {
		t.Errorf("cores per SM = %d, want 1", c.GPU.CoresPerSM)
	}
	if c.CPU.L1KB != 32 || c.CPU.L2KB != 256 {
		t.Errorf("CPU caches = %d/%d, want 32/256", c.CPU.L1KB, c.CPU.L2KB)
	}
	if c.GPU.L1KB != 16 || c.GPU.SharedKB != 48 || c.GPU.L2KB != 768 {
		t.Errorf("GPU caches = %d/%d/%d, want 16/48/768", c.GPU.L1KB, c.GPU.SharedKB, c.GPU.L2KB)
	}
	if c.CPU.Core.DVFS.FMax != 2e9 || c.CPU.Core.DVFS.FMin != 0.8e9 {
		t.Errorf("CPU frequency range wrong")
	}
	if c.GPU.SM.DVFS.FMax != 700e6 || c.GPU.SM.DVFS.FMin != 100e6 {
		t.Errorf("GPU frequency range wrong")
	}
}

func TestTable2Render(t *testing.T) {
	out := Default().Table2()
	for _, want := range []string{"8 Cores", "15 SMs", "2 GHz", "700 MHz", "800 MHz", "100 MHz", "32 kB", "768 kB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestPowerLimits(t *testing.T) {
	fast := PackagePinLimit()
	if fast.Watts != 100 || fast.Window != 20*sim.Microsecond {
		t.Fatalf("package pin limit %+v", fast)
	}
	slow := OffPackageVRLimit()
	if slow.Watts != 100 || slow.Window != sim.Millisecond {
		t.Fatalf("off-package VR limit %+v", slow)
	}
}

func TestStandardSchemes(t *testing.T) {
	ss := StandardSchemes()
	if len(ss) != 4 {
		t.Fatalf("schemes = %d", len(ss))
	}
	periods := map[SchemeKind]sim.Time{
		HCAPP:    1 * sim.Microsecond,
		RAPLLike: 100 * sim.Microsecond,
		SWLike:   10 * sim.Millisecond,
	}
	for kind, want := range periods {
		s, err := SchemeByKind(kind)
		if err != nil {
			t.Fatalf("SchemeByKind(%s): %v", kind, err)
		}
		if s.ControlPeriod != want {
			t.Errorf("%s period = %d, want %d", kind, s.ControlPeriod, want)
		}
	}
	fixed, err := SchemeByKind(FixedVoltage)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.FixedV != 0.95 {
		t.Errorf("fixed voltage = %g, want 0.95 (§4)", fixed.FixedV)
	}
	if _, err := SchemeByKind("bogus"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSchemeString(t *testing.T) {
	cases := map[SchemeKind]string{
		FixedVoltage: "Fixed Voltage",
		HCAPP:        "HCAPP",
		RAPLLike:     "RAPL-like HCAPP",
		SWLike:       "SW-like HCAPP",
	}
	for kind, want := range cases {
		s, _ := SchemeByKind(kind)
		if got := s.String(); got != want {
			t.Errorf("%s String = %q, want %q", kind, got, want)
		}
	}
	odd := Scheme{Kind: "weird"}
	if odd.String() != "weird" {
		t.Errorf("unknown kind String = %q", odd.String())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*SystemConfig)
	}{
		{"no cores", func(c *SystemConfig) { c.CPU.Cores = 0 }},
		{"bad core model", func(c *SystemConfig) { c.CPU.Core.CEff = 0 }},
		{"bad sm model", func(c *SystemConfig) { c.GPU.SM.CEff = -1 }},
		{"bad global vr", func(c *SystemConfig) { c.GlobalVR.VMin = c.GlobalVR.VMax }},
		{"bad sensor", func(c *SystemConfig) { c.Sensor.Delay = -1 }},
		{"lut mismatch", func(c *SystemConfig) { c.Accel.PowerW = c.Accel.PowerW[:3] }},
		{"zero timestep", func(c *SystemConfig) { c.TimeStep = 0 }},
		{"zero domain scale", func(c *SystemConfig) { c.CPUDomain.Scale = 0 }},
		{"empty domain range", func(c *SystemConfig) { c.GPUDomain.VMin = 2; c.GPUDomain.VMax = 1 }},
		{"bad domain vr", func(c *SystemConfig) { c.AccelDomain.VR.VInit = 99 }},
		{"bad local ratio", func(c *SystemConfig) { c.LocalCPU.RatioMin = 0 }},
	}
	for _, c := range cases {
		cfg := Default()
		c.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestDomainScales(t *testing.T) {
	c := Default()
	// §4.3/§4.4: GPU and accelerator domains scale the global voltage
	// by 75 %; the CPU maps 1:1; memory is fixed.
	if c.CPUDomain.Scale != 1.0 {
		t.Errorf("CPU scale = %g", c.CPUDomain.Scale)
	}
	if c.GPUDomain.Scale != 0.75 {
		t.Errorf("GPU scale = %g", c.GPUDomain.Scale)
	}
	if c.AccelDomain.Scale != 0.75 {
		t.Errorf("accel scale = %g", c.AccelDomain.Scale)
	}
	if !c.MemDomain.Fixed {
		t.Error("memory domain must be fixed voltage")
	}
}

func TestLocalCPUConfig(t *testing.T) {
	c := Default().LocalCPU
	// §4.2: 60 % / 30 % thresholds, ±0.05 steps.
	if c.UpperFrac != 0.60 || c.LowerFrac != 0.30 || c.Step != 0.05 {
		t.Errorf("local CPU thresholds %+v", c)
	}
	if c.Epoch <= 0 {
		t.Error("local epoch must be positive")
	}
}

func TestAccelLUTShape(t *testing.T) {
	c := Default().Accel
	if len(c.VPoints) < 5 {
		t.Fatal("accelerator LUT too sparse")
	}
	// Suresh et al. operating range: 230 mV – 950 mV.
	if c.VPoints[0] != 0.23 || c.VPoints[len(c.VPoints)-1] != 0.95 {
		t.Errorf("LUT voltage range [%g, %g]", c.VPoints[0], c.VPoints[len(c.VPoints)-1])
	}
	for i := 1; i < len(c.VPoints); i++ {
		if c.PowerW[i] <= c.PowerW[i-1] {
			t.Error("LUT power must increase with voltage")
		}
		if c.ThroughputGBs[i] <= c.ThroughputGBs[i-1] {
			t.Error("LUT throughput must increase with voltage")
		}
	}
}

func TestFmtHz(t *testing.T) {
	if got := fmtHz(2e9); got != "2 GHz" {
		t.Errorf("fmtHz(2e9) = %q", got)
	}
	if got := fmtHz(700e6); got != "700 MHz" {
		t.Errorf("fmtHz(700e6) = %q", got)
	}
	if got := fmtHz(50); got != "50 Hz" {
		t.Errorf("fmtHz(50) = %q", got)
	}
}
