// Package config defines the target system of the paper's evaluation
// (§4): the Table 2 CPU/GPU configurations, the SHA accelerator, the two
// power limits (100 W over 20 µs package-pin; 100 W over 1 ms off-package
// VR), the control schemes (HCAPP 1 µs, RAPL-like 100 µs, SW-like 10 ms,
// fixed voltage), and the electrical parameters of the delivery network.
//
// All numeric model constants (effective capacitances, leakage, DVFS
// envelopes) are calibrated so the simulated package reproduces the
// paper's power envelope: ~100 W peak at the fixed 0.95 V operating
// point with peak/average ≈ 1.4–1.6 (Fig. 1).
package config

import (
	"fmt"

	"hcapp/internal/power"
	"hcapp/internal/sim"
	"hcapp/internal/vr"
)

// PowerLimit is a maximum power evaluated over a sliding time window
// (paper §1: "power limits dictate a maximum power and a time window over
// which that maximum power is evaluated").
type PowerLimit struct {
	Name   string
	Watts  float64
	Window sim.Time
}

// PackagePinLimit is the fast limit: 100 W over 20 µs, "an estimate of
// the amount of time for the power draw from the components in the system
// to reach the package pins" (§5.1).
func PackagePinLimit() PowerLimit {
	return PowerLimit{Name: "package-pin", Watts: 100, Window: 20 * sim.Microsecond}
}

// OffPackageVRLimit is the slow limit: 100 W over 1 ms, "based on the
// relative time specification for max off-chip voltage regulator power
// draw" (§5.2).
func OffPackageVRLimit() PowerLimit {
	return PowerLimit{Name: "off-package-vr", Watts: 100, Window: 1 * sim.Millisecond}
}

// SchemeKind enumerates the power-control schemes compared in §4.6.
type SchemeKind string

// The four evaluated schemes.
const (
	FixedVoltage SchemeKind = "fixed-voltage"
	HCAPP        SchemeKind = "hcapp"
	RAPLLike     SchemeKind = "rapl-like"
	SWLike       SchemeKind = "sw-like"
)

// Scheme is a control-scheme configuration. RAPL-like and SW-like are
// literally HCAPP "running at two slower control frequencies" (§4.6), so
// the only structural difference between dynamic schemes is the period.
type Scheme struct {
	Kind SchemeKind
	// ControlPeriod is the global controller's cycle time; ignored for
	// fixed voltage.
	ControlPeriod sim.Time
	// FixedV is the static global voltage; used only by FixedVoltage.
	FixedV float64
}

// StandardSchemes returns the paper's four comparison points: fixed
// 0.95 V, HCAPP at 1 µs, RAPL-like at 100 µs, SW-like at 10 ms.
func StandardSchemes() []Scheme {
	return []Scheme{
		{Kind: FixedVoltage, FixedV: 0.95},
		{Kind: HCAPP, ControlPeriod: 1 * sim.Microsecond},
		{Kind: RAPLLike, ControlPeriod: 100 * sim.Microsecond},
		{Kind: SWLike, ControlPeriod: 10 * sim.Millisecond},
	}
}

// SchemeByKind returns the standard configuration of the given kind.
func SchemeByKind(k SchemeKind) (Scheme, error) {
	for _, s := range StandardSchemes() {
		if s.Kind == k {
			return s, nil
		}
	}
	return Scheme{}, fmt.Errorf("config: unknown scheme %q", k)
}

// String returns the paper's display name for the scheme.
func (s Scheme) String() string {
	switch s.Kind {
	case FixedVoltage:
		return "Fixed Voltage"
	case HCAPP:
		return "HCAPP"
	case RAPLLike:
		return "RAPL-like HCAPP"
	case SWLike:
		return "SW-like HCAPP"
	default:
		return string(s.Kind)
	}
}

// CPUConfig is the Table 2 CPU column: an 8-core Nehalem-class chiplet.
type CPUConfig struct {
	Cores int
	// Informational cache geometry from Table 2 (kB).
	L1KB, L2KB int
	// Core is the per-core power model.
	Core power.Model
	// UncoreLeak and UncoreDyn model the shared uncore: leakage at
	// nominal voltage plus a dynamic component proportional to average
	// core activity.
	UncoreLeak, UncoreDyn float64
	// MaxIPC is the architectural peak IPC used to normalize the local
	// controller's thresholds ("60% of the maximum possible IPC", §4.2).
	MaxIPC float64
}

// GPUConfig is the Table 2 GPU column: a 15-SM GTX480-class chiplet.
type GPUConfig struct {
	SMs                    int
	CoresPerSM             int
	L1KB, SharedKB, L2KB   int
	SM                     power.Model // per-SM power model
	UncoreLeak, UncoreDyn  float64
	MaxIPC                 float64
	TargetDomainV          float64 // dynamic-threshold controller target (§4.3)
	ThresholdStep          float64 // ±5% threshold adaptation
	DeadZone               float64 // 5% dead zone around the target
	InitUpperTh, InitLowTh float64 // initial IPC thresholds (fraction of MaxIPC)
}

// AccelConfig describes the SHA accelerator chiplet: a voltage →
// (throughput, power) lookup table in the style of the paper's Python
// model of the Suresh et al. design, scaled from a single 14 nm hashing
// core to a chiplet-sized array.
type AccelConfig struct {
	// VPoints, PowerW and ThroughputGBs are parallel arrays defining the
	// LUT. Voltages in volts, power in watts, throughput in GB/s.
	VPoints       []float64
	PowerW        []float64
	ThroughputGBs []float64
	// IdlePower is drawn after the work pool is exhausted.
	IdlePower float64
}

// MemConfig is the constant-voltage memory/uncore domain ("certain
// subcomponents, such as memory, need a constant voltage", §3.2).
type MemConfig struct {
	Power float64 // constant draw, watts
}

// DomainConfig describes one voltage domain's normalization (§3.2).
type DomainConfig struct {
	// Scale multiplies the global voltage ("the domain controller scales
	// the global voltage by 75% to match the approximate voltage range
	// of the GPU", §4.3).
	Scale float64
	// VMin/VMax clamp the domain output.
	VMin, VMax float64
	// Fixed pins the domain voltage to VMax regardless of the global
	// rail (memory).
	Fixed bool
	// VR models the per-chiplet domain regulator required by 2.5D
	// integration (§3.2).
	VR vr.RegulatorConfig
}

// LocalCPUConfig parameterizes the CAPP static-IPC local controller
// (§4.2: thresholds at 60 % / 30 % of max IPC, ±0.05 ratio steps).
type LocalCPUConfig struct {
	UpperFrac, LowerFrac float64 // thresholds as fractions of MaxIPC
	Step                 float64 // ratio adjustment per epoch
	RatioMin, RatioMax   float64
	Epoch                sim.Time
}

// SystemConfig is the full simulated 2.5D package.
type SystemConfig struct {
	CPU   CPUConfig
	GPU   GPUConfig
	Accel AccelConfig
	Mem   MemConfig

	CPUDomain, GPUDomain, AccelDomain, MemDomain DomainConfig

	LocalCPU LocalCPUConfig
	// LocalEpoch is the evaluation period of the GPU local controllers.
	LocalEpoch sim.Time

	GlobalVR vr.RegulatorConfig
	Sensor   vr.SensorConfig
	// PSNDelay is the transport delay from global VR to the domains.
	PSNDelay sim.Time
	// DroopOhms is the lumped PSN resistance for IR droop.
	DroopOhms float64

	// TimeStep is the engine timestep.
	TimeStep sim.Time
	// Seed drives all workload generation.
	Seed int64
}

// Default returns the calibrated evaluation system.
func Default() SystemConfig {
	cpuDVFS := power.DVFS{
		FMax: 2e9, FMin: 0.8e9, // Table 2: 2 GHz max, 800 MHz min
		VNom: 1.10, VMin: 0.60, VT: 0.55, Alpha: 2.0,
	}
	gpuDVFS := power.DVFS{
		FMax: 700e6, FMin: 100e6, // Table 2: 700 MHz max, 100 MHz min
		VNom: 0.825, VMin: 0.42, VT: 0.30, Alpha: 2.0,
	}
	return SystemConfig{
		CPU: CPUConfig{
			Cores: 8, L1KB: 32, L2KB: 256,
			Core: power.Model{
				DVFS: cpuDVFS, CEff: 4.6e-9,
				LeakNom: 0.90, LeakExp: 1.5, IdleAct: 0.03,
			},
			UncoreLeak: 2.5, UncoreDyn: 2.0,
			MaxIPC: 2.5,
		},
		GPU: GPUConfig{
			SMs: 15, CoresPerSM: 1, L1KB: 16, SharedKB: 48, L2KB: 768,
			SM: power.Model{
				DVFS: gpuDVFS, CEff: 10.6e-9,
				LeakNom: 0.45, LeakExp: 1.5, IdleAct: 0.03,
			},
			UncoreLeak: 2.0, UncoreDyn: 2.5,
			MaxIPC:        2.2,
			TargetDomainV: 0.72, ThresholdStep: 0.05, DeadZone: 0.05,
			InitUpperTh: 0.60, InitLowTh: 0.30,
		},
		Accel: AccelConfig{
			VPoints:       []float64{0.23, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95},
			PowerW:        []float64{0.22, 0.56, 1.40, 2.75, 4.90, 8.00, 12.2, 17.8, 21.1},
			ThroughputGBs: []float64{6, 14, 30, 52, 80, 113, 151, 193, 216},
			IdlePower:     0.15,
		},
		Mem: MemConfig{Power: 14.0},

		CPUDomain: DomainConfig{
			Scale: 1.0, VMin: 0.60, VMax: 1.20,
			VR: vr.RegulatorConfig{VMin: 0.60, VMax: 1.20, VInit: 0.95, TransitionTime: 130, SlewRate: 5e6},
		},
		GPUDomain: DomainConfig{
			Scale: 0.75, VMin: 0.45, VMax: 0.90,
			VR: vr.RegulatorConfig{VMin: 0.45, VMax: 0.90, VInit: 0.7125, TransitionTime: 130, SlewRate: 5e6},
		},
		AccelDomain: DomainConfig{
			Scale: 0.75, VMin: 0.23, VMax: 0.90,
			VR: vr.RegulatorConfig{VMin: 0.23, VMax: 0.90, VInit: 0.7125, TransitionTime: 130, SlewRate: 5e6},
		},
		MemDomain: DomainConfig{
			Scale: 1.0, VMin: 1.0, VMax: 1.0, Fixed: true,
			VR: vr.RegulatorConfig{VMin: 0.99, VMax: 1.01, VInit: 1.0, TransitionTime: 130, SlewRate: 5e6},
		},

		LocalCPU: LocalCPUConfig{
			UpperFrac: 0.60, LowerFrac: 0.30, Step: 0.05,
			RatioMin: 0.85, RatioMax: 1.0,
			Epoch: 5 * sim.Microsecond,
		},
		LocalEpoch: 5 * sim.Microsecond,

		GlobalVR: vr.RegulatorConfig{
			VMin: 0.60, VMax: 1.20, VInit: 0.95,
			TransitionTime: 150, SlewRate: 5e6,
		},
		Sensor:    vr.SensorConfig{Delay: 60, FilterTau: 200},
		PSNDelay:  75,
		DroopOhms: 0.0002,

		TimeStep: 100 * sim.Nanosecond,
		Seed:     42,
	}
}

// Validate checks the whole configuration.
func (c SystemConfig) Validate() error {
	if c.CPU.Cores <= 0 || c.GPU.SMs <= 0 {
		return fmt.Errorf("config: need at least one core and one SM")
	}
	if err := c.CPU.Core.Validate(); err != nil {
		return fmt.Errorf("config: cpu core model: %w", err)
	}
	if err := c.GPU.SM.Validate(); err != nil {
		return fmt.Errorf("config: gpu sm model: %w", err)
	}
	if err := c.GlobalVR.Validate(); err != nil {
		return fmt.Errorf("config: global vr: %w", err)
	}
	if err := c.Sensor.Validate(); err != nil {
		return fmt.Errorf("config: sensor: %w", err)
	}
	if len(c.Accel.VPoints) < 2 ||
		len(c.Accel.VPoints) != len(c.Accel.PowerW) ||
		len(c.Accel.VPoints) != len(c.Accel.ThroughputGBs) {
		return fmt.Errorf("config: accelerator LUT arrays malformed")
	}
	if c.TimeStep <= 0 {
		return fmt.Errorf("config: non-positive timestep %d", c.TimeStep)
	}
	for _, d := range []struct {
		name string
		d    DomainConfig
	}{
		{"cpu", c.CPUDomain}, {"gpu", c.GPUDomain},
		{"accel", c.AccelDomain}, {"mem", c.MemDomain},
	} {
		if d.d.Scale <= 0 {
			return fmt.Errorf("config: %s domain scale %g not positive", d.name, d.d.Scale)
		}
		if d.d.VMin > d.d.VMax {
			return fmt.Errorf("config: %s domain voltage range empty", d.name)
		}
		if err := d.d.VR.Validate(); err != nil {
			return fmt.Errorf("config: %s domain vr: %w", d.name, err)
		}
	}
	if c.LocalCPU.RatioMin <= 0 || c.LocalCPU.RatioMin > c.LocalCPU.RatioMax {
		return fmt.Errorf("config: cpu local ratio range invalid")
	}
	return nil
}

// Table2 renders the CPU/GPU configuration as the paper's Table 2.
func (c SystemConfig) Table2() string {
	rows := [][3]string{
		{"Component", "CPU", "GPU"},
		{"Units", fmt.Sprintf("%d Cores", c.CPU.Cores), fmt.Sprintf("%d SMs", c.GPU.SMs)},
		{"Cores per SM", "N/A", fmt.Sprintf("%d", c.GPU.CoresPerSM)},
		{"L1 Cache Size", fmt.Sprintf("%d kB", c.CPU.L1KB), fmt.Sprintf("%d kB", c.GPU.L1KB)},
		{"Shared Memory Size", "N/A", fmt.Sprintf("%d kB", c.GPU.SharedKB)},
		{"L2 Cache Size", fmt.Sprintf("%d kB", c.CPU.L2KB), fmt.Sprintf("%d kB", c.GPU.L2KB)},
		{"Maximum Frequency", fmtHz(c.CPU.Core.DVFS.FMax), fmtHz(c.GPU.SM.DVFS.FMax)},
		{"Minimum Frequency", fmtHz(c.CPU.Core.DVFS.FMin), fmtHz(c.GPU.SM.DVFS.FMin)},
	}
	out := ""
	for _, r := range rows {
		out += fmt.Sprintf("%-20s %-12s %s\n", r[0], r[1], r[2])
	}
	return out
}

func fmtHz(f float64) string {
	switch {
	case f >= 1e9:
		return fmt.Sprintf("%g GHz", f/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%g MHz", f/1e6)
	default:
		return fmt.Sprintf("%g Hz", f)
	}
}
