package accelsim

import (
	"math"
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/sim"
)

func accelCfg() config.AccelConfig {
	return config.Default().Accel
}

func TestNewErrors(t *testing.T) {
	c := accelCfg()
	c.PowerW = c.PowerW[:2]
	if _, err := New(c, Options{}); err == nil {
		t.Fatal("mismatched LUT accepted")
	}
	c = accelCfg()
	c.IdlePower = -1
	if _, err := New(c, Options{}); err == nil {
		t.Fatal("negative idle power accepted")
	}
	c = accelCfg()
	if _, err := New(c, Options{TotalWorkGB: -1}); err == nil {
		t.Fatal("negative work accepted")
	}
}

func TestPowerAndThroughputFollowLUT(t *testing.T) {
	a, err := New(accelCfg(), Options{TotalWorkGB: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	// At an exact LUT point the values must match the table.
	res := a.Step(100, 1000, 0.70)
	if math.Abs(res.Power-8.0) > 1e-9 {
		t.Fatalf("power at 0.70 V = %g, want 8.0", res.Power)
	}
	wantWork := 113.0 * 1e-6 // GB/s × 1 µs
	if math.Abs(res.Work-wantWork) > 1e-12 {
		t.Fatalf("work = %g, want %g", res.Work, wantWork)
	}
}

func TestThroughputMonotoneInVoltage(t *testing.T) {
	a, err := New(accelCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for v := 0.25; v <= 0.95; v += 0.01 {
		tp := a.ThroughputAt(v)
		if tp < prev {
			t.Fatalf("throughput not monotone at %g V", v)
		}
		prev = tp
	}
}

func TestUndervoltageProtection(t *testing.T) {
	a, err := New(accelCfg(), Options{TotalWorkGB: 10})
	if err != nil {
		t.Fatal(err)
	}
	res := a.Step(100, 1000, 0.10) // below the 0.23 V LUT floor
	if res.Work != 0 {
		t.Fatalf("work below VMin: %g", res.Work)
	}
	if res.Power != accelCfg().IdlePower {
		t.Fatalf("power below VMin = %g, want idle", res.Power)
	}
	if a.ThroughputAt(0.10) != 0 {
		t.Fatal("ThroughputAt below VMin should be 0")
	}
}

func TestWorkPoolAndIdle(t *testing.T) {
	// Pool sized to finish in exactly ~2 ms at 0.7125 V.
	a, err := New(accelCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rate := a.ThroughputAt(0.7125)
	a.SetTotalWork(rate * 2e-3)
	if a.TotalWork() != rate*2e-3 {
		t.Fatal("SetTotalWork not applied")
	}
	var now sim.Time
	for !a.Done() && now < 10*sim.Millisecond {
		now += 1000
		a.Step(now, 1000, 0.7125)
	}
	if !a.Done() {
		t.Fatal("never finished")
	}
	ct := a.CompletionTime()
	if ct < 1900*sim.Microsecond || ct > 2100*sim.Microsecond {
		t.Fatalf("completed at %s, want ≈2ms", sim.FormatTime(ct))
	}
	if a.Progress() != 1 {
		t.Fatalf("progress = %g", a.Progress())
	}
	// "When the total work is less than or equal to zero, the
	// accelerator can enter an idle state" (§4.4).
	res := a.Step(now+1000, 1000, 0.7125)
	if res.Power != accelCfg().IdlePower || res.Work != 0 {
		t.Fatalf("idle state: %+v", res)
	}
}

func TestZeroWorkRunsForever(t *testing.T) {
	a, err := New(accelCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a.Step(sim.Time(i)*1000, 1000, 0.7)
	}
	if a.Done() {
		t.Fatal("zero-work accelerator done")
	}
	if a.Progress() != 0 {
		t.Fatalf("progress = %g", a.Progress())
	}
}

func TestOvervoltageProtection(t *testing.T) {
	// The pass-through controller clamps delivered voltage at the LUT
	// ceiling: power at 2 V equals power at 0.95 V.
	a, err := New(accelCfg(), Options{TotalWorkGB: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	high := a.Step(100, 1000, 2.0).Power
	b, _ := New(accelCfg(), Options{TotalWorkGB: 1e9})
	top := b.Step(100, 1000, 0.95).Power
	if math.Abs(high-top) > 1e-9 {
		t.Fatalf("overvoltage power %g, want clamp to %g", high, top)
	}
}

func TestAdversarialLocalDrawsMore(t *testing.T) {
	honest, err := New(accelCfg(), Options{TotalWorkGB: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := New(accelCfg(), Options{TotalWorkGB: 1e9, Local: core.Adversarial{}})
	if err != nil {
		t.Fatal(err)
	}
	v := 0.70
	ph := honest.Step(100, 1000, v).Power
	pa := adv.Step(100, 1000, v).Power
	if pa <= ph {
		t.Fatalf("adversarial power %g not above honest %g", pa, ph)
	}
}

func TestReset(t *testing.T) {
	a, err := New(accelCfg(), Options{TotalWorkGB: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	a.Step(100, sim.Millisecond, 0.9)
	if !a.Done() {
		t.Fatal("setup: should be done")
	}
	a.Reset()
	if a.Done() || a.Progress() != 0 || a.CompletionTime() != -1 {
		t.Fatal("reset incomplete")
	}
}

func TestName(t *testing.T) {
	a, _ := New(accelCfg(), Options{})
	if a.Name() != "sha" {
		t.Fatalf("name %q", a.Name())
	}
}
