// Package accelsim models the SHA accelerator chiplet exactly the way the
// paper did (§4.4): a lookup table mapping supply voltage to throughput
// and power, digitized from the Suresh et al. unified SHA256/SM3 hashing
// engine (ESSCIRC 2018) and scaled from a single 14 nm core to a
// chiplet-sized array.
//
// "The total work that the accelerator has to complete is modeled as a
// fixed number. ... Each control cycle, we subtract the work done during
// that cycle from the total work. When the total work is less than or
// equal to zero, the accelerator can enter an idle state."
package accelsim

import (
	"fmt"

	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/power"
	"hcapp/internal/sim"
)

// Accel is the SHA accelerator component. It implements sim.Component.
type Accel struct {
	name      string
	powerLUT  *power.LUT
	tputLUT   *power.LUT // GB/s as a function of voltage
	vMin      float64    // undervoltage protection threshold
	vMax      float64    // overvoltage protection threshold
	idlePower float64

	local core.Local

	totalWork float64 // bytes to hash
	doneWork  float64
	doneAt    sim.Time
	lastPower float64
	lastAct   float64 // 1 while hashing, 0 power-gated (energy meter)
}

// Options selects the accelerator's work pool and local controller.
type Options struct {
	// TotalWorkGB is the number of gigabytes to hash; zero runs forever.
	TotalWorkGB float64
	// Local overrides the default pass-through local controller
	// (e.g. core.Adversarial for the §3.3.3 ablation). Nil selects
	// pass-through protection over the LUT's voltage domain.
	Local core.Local
}

// New builds the accelerator from its configuration.
func New(cfg config.AccelConfig, opts Options) (*Accel, error) {
	plut, err := power.NewLUT(cfg.VPoints, cfg.PowerW)
	if err != nil {
		return nil, fmt.Errorf("accelsim: power LUT: %w", err)
	}
	tlut, err := power.NewLUT(cfg.VPoints, cfg.ThroughputGBs)
	if err != nil {
		return nil, fmt.Errorf("accelsim: throughput LUT: %w", err)
	}
	if cfg.IdlePower < 0 {
		return nil, fmt.Errorf("accelsim: negative idle power %g", cfg.IdlePower)
	}
	if opts.TotalWorkGB < 0 {
		return nil, fmt.Errorf("accelsim: negative work %g", opts.TotalWorkGB)
	}
	lo, hi := plut.Domain()
	local := opts.Local
	if local == nil {
		pt, err := core.NewPassThrough(lo, hi)
		if err != nil {
			return nil, err
		}
		local = pt
	}
	return &Accel{
		name:      "sha",
		powerLUT:  plut,
		tputLUT:   tlut,
		vMin:      lo,
		vMax:      hi,
		idlePower: cfg.IdlePower,
		local:     local,
		totalWork: opts.TotalWorkGB,
		doneAt:    -1,
	}, nil
}

// Name implements sim.Component.
func (a *Accel) Name() string { return a.name }

// Done implements sim.Component.
func (a *Accel) Done() bool { return a.totalWork > 0 && a.doneWork >= a.totalWork }

// Progress implements sim.Component.
func (a *Accel) Progress() float64 {
	if a.totalWork <= 0 {
		return 0
	}
	p := a.doneWork / a.totalWork
	if p > 1 {
		p = 1
	}
	return p
}

// CompletionTime returns when the accelerator finished, or -1.
func (a *Accel) CompletionTime() sim.Time { return a.doneAt }

// DoneWork returns the gigabytes hashed so far (continuous-load
// throughput; Progress is meaningless with a zero work pool).
func (a *Accel) DoneWork() float64 { return a.doneWork }

// LastPower returns the power drawn on the most recent step.
func (a *Accel) LastPower() float64 { return a.lastPower }

// Units implements energy.UnitMeter: the array is metered as one unit.
func (a *Accel) Units() int { return 1 }

// ReadUnitSamples implements energy.UnitMeter. The accelerator's whole
// draw is directly measurable, so attribution against it is exact.
func (a *Accel) ReadUnitSamples(act, watts []float64) {
	act[0] = a.lastAct
	watts[0] = a.lastPower
}

// ThroughputAt exposes the LUT (GB/s at voltage v) for sizing work pools.
func (a *Accel) ThroughputAt(v float64) float64 {
	v = a.effectiveV(v)
	if v < a.vMin {
		return 0
	}
	return a.tputLUT.At(v)
}

func (a *Accel) effectiveV(vdd float64) float64 {
	// The pass-through (or adversarial) local controller supplies the
	// ratio; accelerators expose no IPC/occupancy metrics.
	ratio := a.local.Epoch(0, core.Metrics{}, vdd)
	return vdd * ratio
}

// Step implements sim.Component.
func (a *Accel) Step(now sim.Time, dt sim.Time, vdd float64) sim.StepResult {
	v := a.effectiveV(vdd)
	if a.Done() || v < a.vMin {
		// Idle, or under the undervoltage-protection threshold: the
		// array is power-gated.
		a.lastPower = a.idlePower
		a.lastAct = 0
		return sim.StepResult{Power: a.idlePower}
	}
	p := a.powerLUT.At(v)
	work := a.tputLUT.At(v) * sim.Seconds(dt)
	if a.totalWork > 0 {
		a.doneWork += work
		if a.Done() && a.doneAt < 0 {
			a.doneAt = now
		}
	}
	a.lastPower = p
	a.lastAct = 1
	return sim.StepResult{Power: p, Work: work}
}

// SteadyFor implements sim.BulkStepper: the number of future steps at
// constant vdd guaranteed to reproduce the last Step bitwise. Only the
// stateless local-controller kinds qualify (pass-through, adversarial,
// none — Epoch is a pure function of vdd for all three); a stateful
// local could retune on any step. The predicted next-step power must
// match lastPower exactly, which catches the idle transition on the
// step the work pool ran out.
func (a *Accel) SteadyFor(now sim.Time, dt sim.Time, vdd float64) int64 {
	switch a.local.(type) {
	case *core.PassThrough, core.Adversarial, *core.Adversarial, core.None, *core.None:
	default:
		return 0
	}
	v := a.effectiveV(vdd)
	if a.Done() || v < a.vMin {
		if a.idlePower != a.lastPower {
			return 0
		}
		return 1 << 62
	}
	p := a.powerLUT.At(v)
	if p != a.lastPower {
		return 0
	}
	if a.totalWork <= 0 {
		return 1 << 62
	}
	work := a.tputLUT.At(v) * sim.Seconds(dt)
	if work <= 0 {
		return 1 << 62
	}
	n := int64((a.totalWork-a.doneWork)/work) - steadyMargin
	if n < 0 {
		return 0
	}
	return n
}

// steadyMargin holds the completion bound back from the float-derived
// estimate; see the matching constant in internal/chiplet.
const steadyMargin = 8

// StepN implements sim.BulkStepper: replays n steady steps verified by
// SteadyFor, repeating the identical per-step work accumulation.
func (a *Accel) StepN(now sim.Time, dt sim.Time, vdd float64, n int64) {
	v := a.effectiveV(vdd)
	if a.Done() || v < a.vMin {
		return
	}
	if a.totalWork > 0 {
		work := a.tputLUT.At(v) * sim.Seconds(dt)
		for i := int64(0); i < n; i++ {
			a.doneWork += work
		}
	}
}

// SetTotalWork assigns the work pool in GB.
func (a *Accel) SetTotalWork(gb float64) { a.totalWork = gb }

// TotalWork returns the assigned work pool in GB.
func (a *Accel) TotalWork() float64 { return a.totalWork }

// Reset implements sim.Resetter.
func (a *Accel) Reset() {
	a.doneWork = 0
	a.doneAt = -1
	a.lastPower = 0
	a.lastAct = 0
	a.local.Reset()
}
