// Package noc models the on-chip/on-interposer network a *centralized*
// power controller would need to gather per-node metrics — the resource
// HCAPP deliberately avoids by communicating "using the universal
// language of voltage and current" over the power supply network itself.
//
// The paper's §2 critique: "getting the information from each node to
// the centralized controller requires either separate global wires or
// shared resources, such as a bus or a network. Both of these solutions
// cause issues of either wire routing or congestion as the system
// continues to scale. These are similar to the issues seen in on-chip
// networking where crossbars and fully connected networks became
// inviable."
//
// Two collection topologies are modeled:
//
//   - an aggregation tree with in-network reduction: each switch of
//     radix R combines its children's reports, so latency grows with
//     tree depth plus per-switch serialization of R messages;
//   - a shared bus/star without reduction: every node's report crosses
//     the shared medium to the controller, so latency grows linearly in
//     node count.
//
// Both are deterministic latency models, which is all the centralized
// controller's achievable period needs.
package noc

import (
	"fmt"

	"hcapp/internal/sim"
)

// Config describes the metric-collection interconnect.
type Config struct {
	// Radix is the fan-in of each aggregation switch (tree topology).
	Radix int
	// HopLatency is the wire+switch traversal latency per level.
	HopLatency sim.Time
	// MsgSerialization is the time to receive and process one metric
	// message at a switch or at the controller.
	MsgSerialization sim.Time
	// Aggregating selects in-network reduction (tree) versus a shared
	// bus that delivers every message to the controller.
	Aggregating bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Radix < 2:
		return fmt.Errorf("noc: radix %d below 2", c.Radix)
	case c.HopLatency < 0:
		return fmt.Errorf("noc: negative hop latency %d", c.HopLatency)
	case c.MsgSerialization <= 0:
		return fmt.Errorf("noc: non-positive serialization %d", c.MsgSerialization)
	}
	return nil
}

// DefaultTree returns a radix-4 aggregation tree with interposer-scale
// latencies.
func DefaultTree() Config {
	return Config{
		Radix:            4,
		HopLatency:       100 * sim.Nanosecond,
		MsgSerialization: 120 * sim.Nanosecond,
		Aggregating:      true,
	}
}

// DefaultBus returns a shared-bus collection network (no in-network
// reduction): the §2 congestion case.
func DefaultBus() Config {
	return Config{
		Radix:            2, // unused by the bus path but must validate
		HopLatency:       100 * sim.Nanosecond,
		MsgSerialization: 120 * sim.Nanosecond,
		Aggregating:      false,
	}
}

// Depth returns the aggregation-tree depth for n leaf nodes.
func (c Config) Depth(n int) int {
	if n <= 1 {
		return 0
	}
	depth := 0
	for span := 1; span < n; span *= c.Radix {
		depth++
	}
	return depth
}

// CollectionLatency returns the time for a centralized controller to
// obtain a coherent snapshot of n nodes' metrics.
func (c Config) CollectionLatency(n int) (sim.Time, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("noc: non-positive node count %d", n)
	}
	if n == 1 {
		return c.HopLatency + c.MsgSerialization, nil
	}
	if c.Aggregating {
		// Tree: each level adds a hop plus serialization of up to
		// Radix child reports at the combining switch.
		d := sim.Time(c.Depth(n))
		return d*(c.HopLatency+sim.Time(c.Radix)*c.MsgSerialization) + c.MsgSerialization, nil
	}
	// Bus/star: one hop, then every report serializes through the
	// shared medium.
	return c.HopLatency + sim.Time(n)*c.MsgSerialization, nil
}

// MinControlPeriod returns the shortest control period a centralized
// controller over this network can sustain for n nodes: a snapshot must
// complete (and a command fan out, costing the same latency again)
// within one period, and the period can never beat floor.
func (c Config) MinControlPeriod(n int, floor sim.Time) (sim.Time, error) {
	if floor <= 0 {
		return 0, fmt.Errorf("noc: non-positive period floor %d", floor)
	}
	lat, err := c.CollectionLatency(n)
	if err != nil {
		return 0, err
	}
	period := 2 * lat // gather + scatter
	if period < floor {
		period = floor
	}
	return period, nil
}
