package noc

import (
	"testing"

	"hcapp/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultTree().Validate(); err != nil {
		t.Fatalf("default tree invalid: %v", err)
	}
	if err := DefaultBus().Validate(); err != nil {
		t.Fatalf("default bus invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"radix 1", func(c *Config) { c.Radix = 1 }},
		{"negative hop", func(c *Config) { c.HopLatency = -1 }},
		{"zero serialization", func(c *Config) { c.MsgSerialization = 0 }},
	}
	for _, c := range cases {
		cfg := DefaultTree()
		c.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestDepth(t *testing.T) {
	c := Config{Radix: 4, HopLatency: 1, MsgSerialization: 1, Aggregating: true}
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {4, 1}, {5, 2}, {16, 2}, {17, 3}, {64, 3}, {65, 4},
	}
	for _, cse := range cases {
		if got := c.Depth(cse.n); got != cse.want {
			t.Errorf("Depth(%d) = %d, want %d", cse.n, got, cse.want)
		}
	}
}

func TestCollectionLatencyErrors(t *testing.T) {
	if _, err := DefaultTree().CollectionLatency(0); err == nil {
		t.Fatal("zero nodes accepted")
	}
	bad := DefaultTree()
	bad.Radix = 0
	if _, err := bad.CollectionLatency(8); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestTreeLatencyGrowsLogarithmically(t *testing.T) {
	c := DefaultTree()
	l16, err := c.CollectionLatency(16)
	if err != nil {
		t.Fatal(err)
	}
	l256, err := c.CollectionLatency(256)
	if err != nil {
		t.Fatal(err)
	}
	// 16 → 256 nodes: depth 2 → 4, so latency roughly doubles rather
	// than growing 16×.
	if l256 <= l16 {
		t.Fatalf("tree latency not growing: %d vs %d", l16, l256)
	}
	if l256 > 4*l16 {
		t.Fatalf("tree latency grew superlogarithmically: %d vs %d", l16, l256)
	}
}

func TestBusLatencyGrowsLinearly(t *testing.T) {
	c := DefaultBus()
	l10, err := c.CollectionLatency(10)
	if err != nil {
		t.Fatal(err)
	}
	l100, err := c.CollectionLatency(100)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(l100-c.HopLatency) / float64(l10-c.HopLatency)
	if ratio < 9.5 || ratio > 10.5 {
		t.Fatalf("bus latency not linear: %d vs %d (ratio %g)", l10, l100, ratio)
	}
}

func TestBusWorseThanTreeAtScale(t *testing.T) {
	tree, bus := DefaultTree(), DefaultBus()
	lt, _ := tree.CollectionLatency(384)
	lb, _ := bus.CollectionLatency(384)
	if lb <= lt {
		t.Fatalf("bus %d not worse than tree %d at 384 nodes", lb, lt)
	}
}

func TestSingleNode(t *testing.T) {
	for _, c := range []Config{DefaultTree(), DefaultBus()} {
		got, err := c.CollectionLatency(1)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.HopLatency+c.MsgSerialization {
			t.Fatalf("single-node latency %d", got)
		}
	}
}

func TestMinControlPeriod(t *testing.T) {
	c := DefaultTree()
	floor := 20 * sim.Microsecond
	// Small system: floor dominates.
	small, err := c.MinControlPeriod(8, floor)
	if err != nil {
		t.Fatal(err)
	}
	if small != floor {
		t.Fatalf("small-system period %d, want floor %d", small, floor)
	}
	// Huge bus system: gather+scatter dominates (the tree's logarithmic
	// growth keeps even a million nodes under a 20 µs floor — which is
	// exactly why reduction trees exist).
	bus := DefaultBus()
	big, err := bus.MinControlPeriod(1_000_000, floor)
	if err != nil {
		t.Fatal(err)
	}
	if big <= floor {
		t.Fatal("million-node bus system should exceed the floor")
	}
	lat, _ := bus.CollectionLatency(1_000_000)
	if big != 2*lat {
		t.Fatalf("period %d, want 2×%d", big, lat)
	}
}

func TestMinControlPeriodDegenerate(t *testing.T) {
	c := DefaultTree()
	// Invalid floors are rejected before any latency math.
	for _, floor := range []sim.Time{0, -1, -20 * sim.Microsecond} {
		if _, err := c.MinControlPeriod(8, floor); err == nil {
			t.Errorf("floor %d accepted", floor)
		}
	}
	// Node-count and config errors propagate through MinControlPeriod.
	for _, n := range []int{0, -1} {
		if _, err := c.MinControlPeriod(n, sim.Microsecond); err == nil {
			t.Errorf("node count %d accepted", n)
		}
	}
	bad := DefaultTree()
	bad.MsgSerialization = 0
	if _, err := bad.MinControlPeriod(8, sim.Microsecond); err == nil {
		t.Error("invalid config accepted by MinControlPeriod")
	}
	// Single node: gather+scatter of one report, under a sub-latency
	// floor, is exactly twice the single-node latency.
	lat, err := c.CollectionLatency(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.MinControlPeriod(1, sim.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*lat {
		t.Fatalf("single-node period %d, want 2×%d", got, lat)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero radix", Config{Radix: 0, HopLatency: 1, MsgSerialization: 1}},
		{"negative radix", Config{Radix: -4, HopLatency: 1, MsgSerialization: 1}},
		{"negative serialization", Config{Radix: 2, HopLatency: 1, MsgSerialization: -1}},
		{"zero value", Config{}},
	}
	for _, cse := range cases {
		if err := cse.cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", cse.name)
		}
	}
	// Zero hop latency is legal (an idealized wire), unlike zero
	// serialization.
	ok := Config{Radix: 2, HopLatency: 0, MsgSerialization: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("zero hop latency rejected: %v", err)
	}
}

func TestMonotoneInNodes(t *testing.T) {
	for _, c := range []Config{DefaultTree(), DefaultBus()} {
		prev := sim.Time(0)
		for n := 1; n <= 2048; n *= 2 {
			lat, err := c.CollectionLatency(n)
			if err != nil {
				t.Fatal(err)
			}
			if lat < prev {
				t.Fatalf("latency decreased at n=%d", n)
			}
			prev = lat
		}
	}
}
