// Package stats provides the small statistical helpers the experiment
// harness relies on: the geometric mean used for the paper's total-speedup
// metric (Eq. 3), arithmetic summaries, and percentiles.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by summaries of empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Geomean returns the geometric mean of xs. All values must be positive;
// a non-positive value or empty input returns NaN, mirroring how a
// meaningless speedup should poison downstream aggregates loudly rather
// than silently.
func Geomean(xs ...float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs ...float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or -Inf for empty input.
func Max(xs ...float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or +Inf for empty input.
func Min(xs ...float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs ...float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs, or NaN for empty input.
func Variance(xs ...float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs...)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs ...float64) float64 { return math.Sqrt(Variance(xs...)) }

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It returns an error for empty input
// or p outside [0,100].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Clamp restricts x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Summary is a compact description of a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	Stddev         float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs...),
		Min:    Min(xs...),
		Max:    Max(xs...),
		Stddev: Stddev(xs...),
	}
}
