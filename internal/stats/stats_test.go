package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestGeomeanBasic(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 1, 1}, 1},
		{[]float64{2, 8}, 4},
		{[]float64{4}, 4},
		{[]float64{1, 4, 16}, 4},
	}
	for _, c := range cases {
		if got := Geomean(c.in...); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Geomean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestGeomeanEq3Example(t *testing.T) {
	// Eq. 3 of the paper: STotal = cbrt(S_CPU * S_GPU * S_Accel).
	got := Geomean(1.083, 1.054, 1.12)
	want := math.Cbrt(1.083 * 1.054 * 1.12)
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("Eq. 3 mismatch: %g vs %g", got, want)
	}
}

func TestGeomeanRejectsNonPositive(t *testing.T) {
	for _, in := range [][]float64{{}, {0}, {-1, 2}, {1, math.NaN()}} {
		if got := Geomean(in...); !math.IsNaN(got) {
			t.Errorf("Geomean(%v) = %g, want NaN", in, got)
		}
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := Geomean(xs...)
		return g >= Min(xs...)-1e-9 && g <= Max(xs...)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeomeanLeqArithmeticMean(t *testing.T) {
	// AM-GM inequality.
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		return Geomean(xs...) <= Mean(xs...)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(1, 2, 3, 4); got != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
	if !math.IsNaN(Mean()) {
		t.Fatal("Mean() of empty should be NaN")
	}
}

func TestMaxMin(t *testing.T) {
	if got := Max(3, -1, 7, 2); got != 7 {
		t.Fatalf("Max = %g", got)
	}
	if got := Min(3, -1, 7, 2); got != -1 {
		t.Fatalf("Min = %g", got)
	}
	if !math.IsInf(Max(), -1) {
		t.Fatal("Max() of empty should be -Inf")
	}
	if !math.IsInf(Min(), 1) {
		t.Fatal("Min() of empty should be +Inf")
	}
}

func TestSum(t *testing.T) {
	if got := Sum(1, 2, 3); got != 6 {
		t.Fatalf("Sum = %g", got)
	}
	if got := Sum(); got != 0 {
		t.Fatalf("Sum() = %g, want 0", got)
	}
}

func TestVarianceStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs...); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %g, want 4", got)
	}
	if got := Stddev(xs...); !almostEq(got, 2, 1e-12) {
		t.Fatalf("Stddev = %g, want 2", got)
	}
	if got := Variance(5); got != 0 {
		t.Fatalf("Variance of single = %g, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%g): %v", c.p, err)
		}
		if !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Fatal("expected error for p < 0")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Fatal("expected error for p > 100")
	}
}

func TestPercentileSingleElement(t *testing.T) {
	got, err := Percentile([]float64{42}, 99)
	if err != nil || got != 42 {
		t.Fatalf("Percentile single = %g, %v", got, err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5}, {-1, 0, 10, 0}, {11, 0, 10, 10}, {0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(x, a, b float64) bool {
		if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Clamp(x, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatalf("empty summary N = %d", empty.N)
	}
}
