// Package swctl implements the software control layer on top of HCAPP —
// the consumer of the domain controllers' priority registers (§3.2) and
// the direction the paper's §6 future work points at:
//
//	"Software-based control can allow proactive or predictive control
//	beyond the reactive control that HCAPP implements. The software
//	controllers provide a way to use centralized information to
//	proactively adjust HCAPP parameters ... For example, the CPU begins
//	to send work to the GPU and the software detects this. Then, the
//	software controller reduces the HCAPP CPU domain voltage ratio
//	(priority) and increases the GPU domain voltage ratio."
//
// A Supervisor samples package telemetry on an OS timescale (≥1 ms) and
// writes priority registers according to a pluggable Policy:
//
//   - Static reproduces the §5.3 proof-of-concept (one component
//     prioritized for the whole run);
//   - ProgressBalancer shifts priority toward the component furthest
//     from finishing, so the package completes as a unit (power
//     shifting);
//   - CriticalPath projects completion times from observed progress
//     rates and prioritizes the projected-last finisher — the
//     "better intelligence in the software control" the paper expects
//     to unlock further speedups.
//
// All policies act ONLY through the architected software interface —
// priority registers — never by touching hardware controller state, so
// the power limit remains HCAPP's responsibility.
package swctl

import (
	"fmt"
	"math"
	"sort"

	"hcapp/internal/sched"
	"hcapp/internal/sim"
)

// Telemetry is the software-visible snapshot of the package, gathered
// once per supervision tick.
type Telemetry struct {
	Now sim.Time
	// Power is each managed component's last-step power draw, watts.
	Power map[string]float64
	// Progress is each managed component's work-completion fraction.
	Progress map[string]float64
	// DomainV is each managed domain's delivered voltage.
	DomainV map[string]float64
	// TotalPower is the package draw, watts.
	TotalPower float64
}

// Policy decides priority register values from telemetry. Returned maps
// may cover any subset of the managed domains; omitted domains keep
// their current priority.
type Policy interface {
	Name() string
	Decide(t Telemetry) map[string]float64
}

// Supervisor wires a Policy to the engine's supervision hook.
type Supervisor struct {
	policy  Policy
	period  sim.Time
	domains []string
	ticks   int64
}

// New builds a supervisor managing the named domains.
func New(policy Policy, period sim.Time, domains []string) (*Supervisor, error) {
	if policy == nil {
		return nil, fmt.Errorf("swctl: nil policy")
	}
	if period <= 0 {
		return nil, fmt.Errorf("swctl: non-positive period %d", period)
	}
	if len(domains) == 0 {
		return nil, fmt.Errorf("swctl: no domains to manage")
	}
	return &Supervisor{
		policy:  policy,
		period:  period,
		domains: append([]string(nil), domains...),
	}, nil
}

// MustNew is New that panics on invalid input.
func MustNew(policy Policy, period sim.Time, domains []string) *Supervisor {
	s, err := New(policy, period, domains)
	if err != nil {
		panic(err)
	}
	return s
}

// Period implements sched.Supervisor.
func (s *Supervisor) Period() sim.Time { return s.period }

// Ticks reports the number of supervision passes taken.
func (s *Supervisor) Ticks() int64 { return s.ticks }

// Policy returns the active policy.
func (s *Supervisor) Policy() Policy { return s.policy }

// powerReporter is implemented by components exposing last-step power.
type powerReporter interface{ LastPower() float64 }

// Tick implements sched.Supervisor: gather telemetry, run the policy,
// write priority registers.
func (s *Supervisor) Tick(now sim.Time, eng *sched.Engine) {
	t := Telemetry{
		Now:        now,
		Power:      make(map[string]float64, len(s.domains)),
		Progress:   make(map[string]float64, len(s.domains)),
		DomainV:    make(map[string]float64, len(s.domains)),
		TotalPower: eng.LastTotalPower(),
	}
	for _, name := range s.domains {
		comp := eng.Component(name)
		if comp == nil {
			continue
		}
		t.Progress[name] = comp.Progress()
		if pr, ok := comp.(powerReporter); ok {
			t.Power[name] = pr.LastPower()
		}
		if d := eng.Domain(name); d != nil {
			t.DomainV[name] = d.Output()
		}
	}
	for name, prio := range s.policy.Decide(t) {
		if d := eng.Domain(name); d != nil {
			d.SetPriority(prio)
		}
	}
	s.ticks++
}

// Static is the §5.3 proof-of-concept policy: one component holds full
// priority; all other managed domains run de-prioritized.
type Static struct {
	// Component is the prioritized domain name.
	Component string
	// Others is the priority applied to every other managed domain
	// (paper: 0.9). Zero defaults to 0.9.
	Others float64
}

// Name implements Policy.
func (p Static) Name() string { return "static-" + p.Component }

// Decide implements Policy.
func (p Static) Decide(t Telemetry) map[string]float64 {
	others := p.Others
	if others == 0 {
		others = 0.9
	}
	out := make(map[string]float64, len(t.Progress))
	for name := range t.Progress {
		if name == p.Component {
			out[name] = 1.0
		} else {
			out[name] = others
		}
	}
	return out
}

// ProgressBalancer shifts priority toward components that are behind in
// progress, so the heterogeneous package finishes together instead of
// leaving one chiplet grinding alone at the end.
type ProgressBalancer struct {
	// Gain converts a progress deficit into a priority reduction for
	// the leaders. Zero defaults to 0.5.
	Gain float64
	// Floor bounds the de-prioritization. Zero defaults to 0.85.
	Floor float64
}

// Name implements Policy.
func (p ProgressBalancer) Name() string { return "progress-balancer" }

// Decide implements Policy.
func (p ProgressBalancer) Decide(t Telemetry) map[string]float64 {
	gain := p.Gain
	if gain == 0 {
		gain = 0.5
	}
	floor := p.Floor
	if floor == 0 {
		floor = 0.85
	}
	minProg := math.Inf(1)
	for _, prog := range t.Progress {
		if prog < minProg {
			minProg = prog
		}
	}
	if math.IsInf(minProg, 1) {
		return nil
	}
	out := make(map[string]float64, len(t.Progress))
	for name, prog := range t.Progress {
		prio := 1.0 - gain*(prog-minProg)
		if prio < floor {
			prio = floor
		}
		out[name] = prio
	}
	return out
}

// CriticalPath estimates each component's completion time from its
// observed progress rate and gives full priority to the projected-last
// finisher, de-prioritizing the rest — proactive control using
// centralized information (§6).
type CriticalPath struct {
	// Others is the priority for non-critical domains; zero → 0.9.
	Others float64

	prev     map[string]float64
	prevTime sim.Time
}

// Name implements Policy.
func (p *CriticalPath) Name() string { return "critical-path" }

// Decide implements Policy.
func (p *CriticalPath) Decide(t Telemetry) map[string]float64 {
	others := p.Others
	if others == 0 {
		others = 0.9
	}
	defer func() {
		if p.prev == nil {
			p.prev = make(map[string]float64)
		}
		for name, prog := range t.Progress {
			p.prev[name] = prog
		}
		p.prevTime = t.Now
	}()

	if p.prev == nil || t.Now <= p.prevTime {
		return nil // need two samples for a rate
	}
	dtSec := sim.Seconds(t.Now - p.prevTime)

	critical, worst := "", -1.0
	names := make([]string, 0, len(t.Progress))
	for name := range t.Progress {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic tie-breaking
	for _, name := range names {
		prog := t.Progress[name]
		if prog >= 1 {
			continue // finished components have no remaining path
		}
		rate := (prog - p.prev[name]) / dtSec
		var eta float64
		if rate <= 0 {
			eta = math.Inf(1) // stalled: automatically critical
		} else {
			eta = (1 - prog) / rate
		}
		if eta > worst {
			worst, critical = eta, name
		}
	}
	if critical == "" {
		return nil
	}
	out := make(map[string]float64, len(t.Progress))
	for _, name := range names {
		if name == critical {
			out[name] = 1.0
		} else {
			out[name] = others
		}
	}
	return out
}

// Neutral is a no-op policy (useful as a control in experiments).
type Neutral struct{}

// Name implements Policy.
func (Neutral) Name() string { return "neutral" }

// Decide implements Policy.
func (Neutral) Decide(Telemetry) map[string]float64 { return nil }
