package swctl

import (
	"math"
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/psn"
	"hcapp/internal/sched"
	"hcapp/internal/sim"
	"hcapp/internal/trace"
	"hcapp/internal/vr"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, sim.Millisecond, []string{"cpu"}); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := New(Neutral{}, 0, []string{"cpu"}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := New(Neutral{}, sim.Millisecond, nil); err == nil {
		t.Fatal("empty domain list accepted")
	}
	if _, err := New(Neutral{}, sim.Millisecond, []string{"cpu"}); err != nil {
		t.Fatalf("valid supervisor rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(nil, sim.Millisecond, []string{"cpu"})
}

func TestStaticPolicy(t *testing.T) {
	p := Static{Component: "gpu"}
	tel := Telemetry{Progress: map[string]float64{"cpu": 0.5, "gpu": 0.4, "sha": 0.6}}
	out := p.Decide(tel)
	if out["gpu"] != 1.0 {
		t.Fatalf("prioritized gpu = %g", out["gpu"])
	}
	if out["cpu"] != 0.9 || out["sha"] != 0.9 {
		t.Fatalf("others = %v, want 0.9 (paper §5.3)", out)
	}
	if p.Name() != "static-gpu" {
		t.Fatalf("name %q", p.Name())
	}
	custom := Static{Component: "cpu", Others: 0.8}
	if got := custom.Decide(tel)["gpu"]; got != 0.8 {
		t.Fatalf("custom others = %g", got)
	}
}

func TestProgressBalancer(t *testing.T) {
	p := ProgressBalancer{Gain: 0.2, Floor: 0.8}
	tel := Telemetry{Progress: map[string]float64{"cpu": 0.2, "gpu": 0.5, "sha": 0.9}}
	out := p.Decide(tel)
	// The laggard gets full priority.
	if out["cpu"] != 1.0 {
		t.Fatalf("laggard priority = %g", out["cpu"])
	}
	// Leaders are de-prioritized proportionally to their lead, with a
	// floor.
	if !(out["gpu"] < 1.0 && out["gpu"] > out["sha"]) {
		t.Fatalf("ordering broken: %v", out)
	}
	if out["sha"] < 0.8 {
		t.Fatalf("floor violated: %g", out["sha"])
	}
	// The default configuration floors deep deficits.
	deep := ProgressBalancer{}.Decide(tel)
	if deep["sha"] != 0.85 {
		t.Fatalf("default floor = %g, want 0.85", deep["sha"])
	}
	if p.Decide(Telemetry{}) != nil {
		t.Fatal("empty telemetry should decide nothing")
	}
}

func TestProgressBalancerEqualProgress(t *testing.T) {
	p := ProgressBalancer{}
	out := p.Decide(Telemetry{Progress: map[string]float64{"a": 0.5, "b": 0.5}})
	if out["a"] != 1.0 || out["b"] != 1.0 {
		t.Fatalf("equal progress should be neutral: %v", out)
	}
}

func TestCriticalPath(t *testing.T) {
	p := &CriticalPath{}
	// First sample: no rate yet.
	if out := p.Decide(Telemetry{
		Now:      sim.Millisecond,
		Progress: map[string]float64{"cpu": 0.1, "gpu": 0.1},
	}); out != nil {
		t.Fatalf("first sample decided %v", out)
	}
	// Second sample: cpu progressed 0.4, gpu only 0.1 → gpu projected
	// last → prioritized.
	out := p.Decide(Telemetry{
		Now:      2 * sim.Millisecond,
		Progress: map[string]float64{"cpu": 0.5, "gpu": 0.2},
	})
	if out["gpu"] != 1.0 {
		t.Fatalf("critical component priority = %v", out)
	}
	if out["cpu"] != 0.9 {
		t.Fatalf("non-critical priority = %v", out)
	}
}

func TestCriticalPathStalledComponentWins(t *testing.T) {
	p := &CriticalPath{}
	p.Decide(Telemetry{Now: sim.Millisecond, Progress: map[string]float64{"a": 0.3, "b": 0.3}})
	out := p.Decide(Telemetry{Now: 2 * sim.Millisecond, Progress: map[string]float64{"a": 0.3, "b": 0.6}})
	if out["a"] != 1.0 {
		t.Fatalf("stalled component not critical: %v", out)
	}
}

func TestCriticalPathFinishedExcluded(t *testing.T) {
	p := &CriticalPath{}
	p.Decide(Telemetry{Now: sim.Millisecond, Progress: map[string]float64{"a": 0.5, "b": 0.9}})
	out := p.Decide(Telemetry{Now: 2 * sim.Millisecond, Progress: map[string]float64{"a": 0.6, "b": 1.0}})
	if out["a"] != 1.0 {
		t.Fatalf("unfinished component should be critical: %v", out)
	}
}

func TestNeutral(t *testing.T) {
	var n Neutral
	if n.Decide(Telemetry{Progress: map[string]float64{"a": 0.5}}) != nil {
		t.Fatal("neutral policy decided something")
	}
	if n.Name() != "neutral" {
		t.Fatalf("name %q", n.Name())
	}
}

// progComp is a minimal component with controllable progress and power.
type progComp struct {
	name     string
	progress float64
	power    float64
}

func (c *progComp) Name() string { return c.name }
func (c *progComp) Step(_ sim.Time, _ sim.Time, vdd float64) sim.StepResult {
	c.progress += 0.0001 * vdd
	return sim.StepResult{Power: c.power * vdd}
}
func (c *progComp) Done() bool         { return c.progress >= 1 }
func (c *progComp) Progress() float64  { return math.Min(1, c.progress) }
func (c *progComp) LastPower() float64 { return c.power }
func (c *progComp) Reset()             { c.progress = 0 }

// buildEngine assembles a two-component engine with a supervisor.
func buildEngine(t *testing.T, sup sched.Supervisor) (*sched.Engine, *progComp, *progComp) {
	t.Helper()
	dt := sim.Time(100)
	gvr := vr.MustRegulator(vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95})
	sensor := vr.MustSensor(vr.SensorConfig{}, dt)
	line := psn.MustDelayLine(0, dt, 0.95)
	domCfg := config.DomainConfig{
		Scale: 1, VMin: 0.6, VMax: 1.2,
		VR: vr.RegulatorConfig{VMin: 0.6, VMax: 1.2, VInit: 0.95},
	}
	a := &progComp{name: "cpu", power: 30}
	b := &progComp{name: "gpu", power: 30}
	eng := sched.MustNew(sched.Config{
		DT: dt, GlobalVR: gvr, Sensor: sensor, PSN: line,
		Slots: []sched.Slot{
			{Domain: core.MustDomain("cpu", domCfg), Comp: a},
			{Domain: core.MustDomain("gpu", domCfg), Comp: b},
		},
		Recorder:   trace.MustRecorder(dt, false),
		Supervisor: sup,
	})
	return eng, a, b
}

func TestSupervisorWritesPriorities(t *testing.T) {
	sup := MustNew(Static{Component: "cpu"}, 100*sim.Microsecond, []string{"cpu", "gpu"})
	eng, _, _ := buildEngine(t, sup)
	eng.RunFor(350 * sim.Microsecond)
	if got := eng.Domain("cpu").Priority(); got != 1.0 {
		t.Fatalf("cpu priority = %g", got)
	}
	if got := eng.Domain("gpu").Priority(); got != 0.9 {
		t.Fatalf("gpu priority = %g", got)
	}
	if sup.Ticks() != 3 {
		t.Fatalf("ticks = %d, want 3", sup.Ticks())
	}
	if eng.SupervisorTicks() != 3 {
		t.Fatalf("engine ticks = %d", eng.SupervisorTicks())
	}
}

func TestSupervisorTelemetryGathering(t *testing.T) {
	var captured Telemetry
	spy := policyFunc{
		name: "spy",
		fn: func(tel Telemetry) map[string]float64 {
			captured = tel
			return nil
		},
	}
	sup := MustNew(spy, 50*sim.Microsecond, []string{"cpu", "gpu"})
	eng, a, _ := buildEngine(t, sup)
	eng.RunFor(60 * sim.Microsecond)
	if captured.Now == 0 {
		t.Fatal("no telemetry gathered")
	}
	if captured.Power["cpu"] != a.LastPower() {
		t.Fatalf("cpu power telemetry %g", captured.Power["cpu"])
	}
	if captured.Progress["cpu"] <= 0 {
		t.Fatal("cpu progress telemetry missing")
	}
	if captured.DomainV["gpu"] <= 0 {
		t.Fatal("gpu domain voltage telemetry missing")
	}
	if captured.TotalPower <= 0 {
		t.Fatal("total power telemetry missing")
	}
}

func TestSupervisorUnknownDomainIgnored(t *testing.T) {
	sup := MustNew(Static{Component: "nope"}, 50*sim.Microsecond, []string{"nope", "cpu"})
	eng, _, _ := buildEngine(t, sup)
	eng.RunFor(120 * sim.Microsecond) // must not panic
	if got := eng.Domain("cpu").Priority(); got != 0.9 {
		t.Fatalf("cpu priority = %g", got)
	}
}

func TestBalancerConvergesProgress(t *testing.T) {
	// Two components where one progresses per volt identically, but the
	// balancer shifts voltage toward the laggard; with supervision the
	// progress gap at the end must be smaller than without.
	gap := func(sup sched.Supervisor) float64 {
		eng, a, b := buildEngine(t, sup)
		b.progress = 0.3 // head start
		eng.RunFor(500 * sim.Microsecond)
		return math.Abs(b.Progress() - a.Progress())
	}
	without := gap(nil)
	with := gap(MustNew(ProgressBalancer{}, 50*sim.Microsecond, []string{"cpu", "gpu"}))
	if with >= without {
		t.Fatalf("balancer did not close the gap: %g vs %g", with, without)
	}
}

type policyFunc struct {
	name string
	fn   func(Telemetry) map[string]float64
}

func (p policyFunc) Name() string                          { return p.name }
func (p policyFunc) Decide(t Telemetry) map[string]float64 { return p.fn(t) }
