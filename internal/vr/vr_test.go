package vr

import (
	"math"
	"testing"
	"testing/quick"

	"hcapp/internal/sim"
)

func regCfg() RegulatorConfig {
	return RegulatorConfig{
		VMin: 0.6, VMax: 1.2, VInit: 0.95,
		TransitionTime: 150, SlewRate: 5e6,
	}
}

func TestRegulatorConfigValidate(t *testing.T) {
	if err := regCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*RegulatorConfig)
	}{
		{"empty range", func(c *RegulatorConfig) { c.VMin, c.VMax = 1, 1 }},
		{"init below range", func(c *RegulatorConfig) { c.VInit = 0.1 }},
		{"init above range", func(c *RegulatorConfig) { c.VInit = 2 }},
		{"negative transition", func(c *RegulatorConfig) { c.TransitionTime = -1 }},
		{"negative slew", func(c *RegulatorConfig) { c.SlewRate = -1 }},
	}
	for _, c := range cases {
		cfg := regCfg()
		c.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestMustRegulatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegulator did not panic")
		}
	}()
	cfg := regCfg()
	cfg.VMin = cfg.VMax
	MustRegulator(cfg)
}

func TestRegulatorInitialOutput(t *testing.T) {
	r := MustRegulator(regCfg())
	if r.Output() != 0.95 {
		t.Fatalf("initial output %g", r.Output())
	}
	if got := r.Step(100, 100); got != 0.95 {
		t.Fatalf("uncommanded step moved output to %g", got)
	}
}

func TestCommandClamping(t *testing.T) {
	r := MustRegulator(regCfg())
	r.Command(0, 5.0)
	for now := sim.Time(100); now <= 2000; now += 100 {
		r.Step(now, 100)
	}
	if got := r.Output(); got != 1.2 {
		t.Fatalf("over-range command settled at %g, want VMax 1.2", got)
	}
	r.Command(2000, 0.0)
	for now := sim.Time(2100); now <= 4000; now += 100 {
		r.Step(now, 100)
	}
	if got := r.Output(); got != 0.6 {
		t.Fatalf("under-range command settled at %g, want VMin 0.6", got)
	}
}

func TestTransitionDelay(t *testing.T) {
	r := MustRegulator(regCfg())
	r.Command(0, 1.1)
	// Before the 150 ns transition lands, output must hold.
	if got := r.Step(100, 100); got != 0.95 {
		t.Fatalf("output moved before transition time: %g", got)
	}
	// At/after 150 ns the target takes effect and slews.
	got := r.Step(200, 100)
	if got <= 0.95 {
		t.Fatalf("output did not move after transition: %g", got)
	}
}

func TestSlewLimiting(t *testing.T) {
	cfg := regCfg()
	cfg.TransitionTime = 0
	cfg.SlewRate = 1e6 // 1 V per µs → 0.1 V per 100 ns step
	r := MustRegulator(cfg)
	r.Command(0, 1.15)
	got := r.Step(100, 100)
	if math.Abs(got-1.05) > 1e-9 {
		t.Fatalf("first slewed step %g, want 1.05", got)
	}
	got = r.Step(200, 100)
	if math.Abs(got-1.15) > 1e-9 {
		t.Fatalf("second slewed step %g, want 1.15", got)
	}
	// Settled: further steps hold.
	if got = r.Step(300, 100); got != 1.15 {
		t.Fatalf("settled output moved: %g", got)
	}
}

func TestSlewLimitingDownward(t *testing.T) {
	cfg := regCfg()
	cfg.TransitionTime = 0
	cfg.SlewRate = 1e6
	r := MustRegulator(cfg)
	r.Command(0, 0.65)
	got := r.Step(100, 100)
	if math.Abs(got-0.85) > 1e-9 {
		t.Fatalf("first downward step %g, want 0.85", got)
	}
}

func TestInstantSettlingWithZeroSlew(t *testing.T) {
	cfg := regCfg()
	cfg.TransitionTime = 0
	cfg.SlewRate = 0
	r := MustRegulator(cfg)
	r.Command(0, 1.1)
	if got := r.Step(100, 100); got != 1.1 {
		t.Fatalf("zero-slew output %g, want 1.1", got)
	}
}

func TestNewCommandSupersedes(t *testing.T) {
	cfg := regCfg()
	cfg.TransitionTime = 500
	r := MustRegulator(cfg)
	r.Command(0, 1.1)
	r.Command(100, 0.7) // supersedes before the first lands
	for now := sim.Time(100); now <= 5000; now += 100 {
		r.Step(now, 100)
	}
	if got := r.Output(); got != 0.7 {
		t.Fatalf("superseded command settled at %g, want 0.7", got)
	}
}

func TestRegulatorReset(t *testing.T) {
	r := MustRegulator(regCfg())
	r.Command(0, 1.15)
	for now := sim.Time(100); now <= 1000; now += 100 {
		r.Step(now, 100)
	}
	r.Reset()
	if r.Output() != 0.95 || r.Target() != 0.95 {
		t.Fatalf("reset state: out=%g target=%g", r.Output(), r.Target())
	}
	if got := r.Step(100, 100); got != 0.95 {
		t.Fatalf("post-reset pending command leaked: %g", got)
	}
}

func TestOutputAlwaysInRangeProperty(t *testing.T) {
	r := MustRegulator(regCfg())
	now := sim.Time(0)
	f := func(cmd float64) bool {
		if math.IsNaN(cmd) || math.IsInf(cmd, 0) {
			return true
		}
		r.Command(now, cmd)
		for i := 0; i < 20; i++ {
			now += 100
			out := r.Step(now, 100)
			if out < 0.6-1e-9 || out > 1.2+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRegulatorEfficiencyLoss(t *testing.T) {
	lossless := MustRegulator(regCfg())
	if got := lossless.Loss(100); got != 0 {
		t.Fatalf("default regulator lossy: %g", got)
	}
	cfg := regCfg()
	cfg.Efficiency = 0.9
	r := MustRegulator(cfg)
	want := 100 * (1/0.9 - 1)
	if got := r.Loss(100); math.Abs(got-want) > 1e-12 {
		t.Fatalf("loss = %g, want %g", got, want)
	}
	if got := r.Loss(-5); got != 0 {
		t.Fatalf("negative load loss = %g", got)
	}
	bad := regCfg()
	bad.Efficiency = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("efficiency > 1 accepted")
	}
}
