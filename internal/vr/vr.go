// Package vr models the voltage regulators and power sensing circuitry of
// the 2.5D package.
//
// The paper builds its control-cycle-time budget (Table 1) from the Raven
// switched-capacitor regulator's transition times (36–226 ns, doubled for
// the global+domain pair), sensing circuitry (50–60 ns) and controller
// logic (10–30 ns). This package models a regulator as a commanded target
// voltage reached through a transition delay followed by slew-limited
// settling, and a sensor as a delayed, first-order-filtered power
// measurement — enough fidelity that a controller running faster than the
// round trip will visibly misbehave, which is the paper's core argument
// for the 1 µs control period.
package vr

import (
	"fmt"

	"hcapp/internal/sim"
)

// RegulatorConfig describes a voltage regulator.
type RegulatorConfig struct {
	// VMin and VMax bound the output range; commands are clamped.
	VMin, VMax float64
	// VInit is the output voltage at reset.
	VInit float64
	// TransitionTime is the latency before a newly commanded target
	// begins to take effect at the output (Raven-style DC-DC mode
	// switch), in simulated time.
	TransitionTime sim.Time
	// SlewRate is the maximum output change rate in volts/second once a
	// transition is underway. Zero means instantaneous settling after
	// the transition time.
	SlewRate float64
	// Efficiency is the DC-DC conversion efficiency in (0,1]; the
	// regulator dissipates load·(1/Efficiency − 1) as loss, which the
	// engine charges against the package power budget. Zero means 1.0
	// (lossless), the paper's implicit assumption.
	Efficiency float64
}

// Validate reports whether the configuration is usable.
func (c RegulatorConfig) Validate() error {
	switch {
	case c.VMin >= c.VMax:
		return fmt.Errorf("vr: empty voltage range [%g,%g]", c.VMin, c.VMax)
	case c.VInit < c.VMin || c.VInit > c.VMax:
		return fmt.Errorf("vr: initial voltage %g outside [%g,%g]", c.VInit, c.VMin, c.VMax)
	case c.TransitionTime < 0:
		return fmt.Errorf("vr: negative transition time %d", c.TransitionTime)
	case c.SlewRate < 0:
		return fmt.Errorf("vr: negative slew rate %g", c.SlewRate)
	case c.Efficiency < 0 || c.Efficiency > 1:
		return fmt.Errorf("vr: efficiency %g outside (0,1]", c.Efficiency)
	}
	return nil
}

// Regulator is a slew-limited voltage regulator with a command transition
// delay. It is stepped on the engine clock.
type Regulator struct {
	cfg       RegulatorConfig
	out       float64  // current output voltage
	target    float64  // target once pending command lands
	pendingV  float64  // commanded voltage in flight
	pendingT  sim.Time // when the in-flight command takes effect (-1: none)
	slewScale float64  // degradation factor on SlewRate (1 = nominal)
}

// NewRegulator returns a regulator at its initial voltage.
func NewRegulator(cfg RegulatorConfig) (*Regulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Regulator{cfg: cfg, out: cfg.VInit, target: cfg.VInit, pendingT: -1, slewScale: 1}, nil
}

// MustRegulator is NewRegulator that panics on invalid configuration.
func MustRegulator(cfg RegulatorConfig) *Regulator {
	r, err := NewRegulator(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Command requests a new output voltage at time now. The command is
// clamped to the regulator's range and takes effect after the transition
// time. A new command supersedes any in-flight one (the controller always
// acts on the freshest information).
func (r *Regulator) Command(now sim.Time, v float64) {
	if v < r.cfg.VMin {
		v = r.cfg.VMin
	}
	if v > r.cfg.VMax {
		v = r.cfg.VMax
	}
	r.pendingV = v
	r.pendingT = now + r.cfg.TransitionTime
}

// Step advances the regulator to time now (one engine step of dt) and
// returns the output voltage.
func (r *Regulator) Step(now sim.Time, dt sim.Time) float64 {
	if r.pendingT >= 0 && now >= r.pendingT {
		r.target = r.pendingV
		r.pendingT = -1
	}
	if r.out != r.target {
		if r.cfg.SlewRate <= 0 {
			r.out = r.target
		} else {
			maxStep := r.cfg.SlewRate * r.slewScale * sim.Seconds(dt)
			switch {
			case r.out < r.target-maxStep:
				r.out += maxStep
			case r.out > r.target+maxStep:
				r.out -= maxStep
			default:
				r.out = r.target
			}
		}
	}
	return r.out
}

// SetSlewScale degrades (or restores) the regulator's effective slew
// rate: the configured SlewRate is multiplied by s on every step — the
// aging/thermal-derating fault mode a 2.5D integrator must survive.
// Values are clamped to (0, 1]; 1 restores nominal settling. A
// regulator with SlewRate 0 (instantaneous) is unaffected.
func (r *Regulator) SetSlewScale(s float64) {
	if s <= 0 {
		s = 0.01
	}
	if s > 1 {
		s = 1
	}
	r.slewScale = s
}

// SlewScale returns the current slew degradation factor.
func (r *Regulator) SlewScale() float64 { return r.slewScale }

// Output returns the current output voltage without advancing time.
func (r *Regulator) Output() float64 { return r.out }

// Target returns the voltage the output is settling toward.
func (r *Regulator) Target() float64 { return r.target }

// Commanded returns the most recently commanded voltage: the in-flight
// command if one has not yet cleared the transition time, else the
// landed target. Override logic (the package safety clamp) compares
// against this rather than Target() — when the transition time exceeds
// the engine step, re-commanding on every step where the *landed*
// target still differs would push the pending command out forever and
// freeze the output.
func (r *Regulator) Commanded() float64 {
	if r.pendingT >= 0 {
		return r.pendingV
	}
	return r.target
}

// Settled reports whether Step has become a pure no-op: no command is
// in flight and the output sits exactly on the target. The adaptive
// engine strides over settled regulators; any Command (even to the same
// voltage) re-arms the transition timer and unsettles the regulator
// until it lands again.
func (r *Regulator) Settled() bool {
	return r.pendingT < 0 && r.out == r.target
}

// Config returns the regulator's configuration.
func (r *Regulator) Config() RegulatorConfig { return r.cfg }

// Loss returns the conversion loss for a given load power, in watts.
func (r *Regulator) Loss(loadPower float64) float64 {
	eff := r.cfg.Efficiency
	if eff == 0 || eff == 1 {
		return 0
	}
	if loadPower <= 0 {
		return 0
	}
	return loadPower * (1/eff - 1)
}

// Reset returns the regulator to its initial state.
func (r *Regulator) Reset() {
	r.out = r.cfg.VInit
	r.target = r.cfg.VInit
	r.pendingT = -1
	r.slewScale = 1
}
