package vr

import (
	"fmt"
	"math"

	"hcapp/internal/sim"
)

// SensorConfig describes the power sensing circuitry built into the global
// voltage regulator ("sensing circuitry built into the voltage regulator
// to measure the current and voltage, as seen in commercially available
// VRs", paper §3.1).
type SensorConfig struct {
	// Delay is the sensing circuitry latency (Table 1: 50–60 ns).
	Delay sim.Time
	// FilterTau is the time constant of the first-order measurement
	// filter, in simulated time; 0 disables filtering. Real current-sense
	// amplifiers low-pass their output; the filter also models the
	// averaging inherent in sense-resistor ADC sampling.
	FilterTau sim.Time
}

// Validate reports whether the configuration is usable.
func (c SensorConfig) Validate() error {
	if c.Delay < 0 {
		return fmt.Errorf("vr: negative sensor delay %d", c.Delay)
	}
	if c.FilterTau < 0 {
		return fmt.Errorf("vr: negative filter tau %d", c.FilterTau)
	}
	return nil
}

// Fault injects a measurement defect into a sensor — the robustness
// scenarios a power-capping controller must tolerate gracefully, since
// an optimistic sensor turns the limit into a dead letter.
type Fault struct {
	// Gain scales every reading (1 = none). A gain below 1 is an
	// optimistic sensor (under-reports power).
	Gain float64
	// OffsetW adds a constant bias in watts.
	OffsetW float64
	// StuckAt, when StuckEnabled, freezes the reading at a value.
	StuckAt      float64
	StuckEnabled bool
}

// apply transforms a true reading into the faulty one.
func (f Fault) apply(p float64) float64 {
	if f.StuckEnabled {
		return f.StuckAt
	}
	g := f.Gain
	if g == 0 {
		g = 1
	}
	return p*g + f.OffsetW
}

// Sensor measures total package power with a fixed pipeline delay and an
// optional first-order filter. Samples are pushed every engine step; the
// controller reads the delayed, filtered value.
type Sensor struct {
	cfg    SensorConfig
	dt     sim.Time
	ring   []float64
	head   int
	filt   float64
	primed bool
	fault  Fault
}

// NewSensor returns a sensor sampling at engine timestep dt.
func NewSensor(cfg SensorConfig, dt sim.Time) (*Sensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dt <= 0 {
		return nil, fmt.Errorf("vr: non-positive sensor timestep %d", dt)
	}
	// Depth in steps; delay shorter than one step rounds to zero
	// (the value is visible on the next step regardless, because the
	// engine pushes before the controller reads).
	depth := int(cfg.Delay / dt)
	return &Sensor{cfg: cfg, dt: dt, ring: make([]float64, depth+1)}, nil
}

// MustSensor is NewSensor that panics on invalid configuration.
func MustSensor(cfg SensorConfig, dt sim.Time) *Sensor {
	s, err := NewSensor(cfg, dt)
	if err != nil {
		panic(err)
	}
	return s
}

// Push records an instantaneous power sample (one per engine step).
func (s *Sensor) Push(p float64) {
	s.ring[s.head] = p
	s.head = (s.head + 1) % len(s.ring)
	// The oldest sample (now at head) is what emerges from the delay.
	delayed := s.ring[s.head]
	if !s.primed {
		s.filt = delayed
		s.primed = true
		return
	}
	if s.cfg.FilterTau <= 0 {
		s.filt = delayed
		return
	}
	alpha := float64(s.dt) / float64(s.cfg.FilterTau+s.dt)
	s.filt += alpha * (delayed - s.filt)
}

// SteadyAt reports whether pushing the sample p would leave the sensor
// bitwise unchanged: the delay ring is already flat at p and the filter
// state is at its exact floating-point fixed point for input p. While
// this holds, Push(p) is a pure rotation and Read() is constant — the
// condition the adaptive engine needs when a controller reads the
// sensor during a stride.
func (s *Sensor) SteadyAt(p float64) bool {
	if !s.DelaySteadyAt(p) {
		return false
	}
	if s.cfg.FilterTau <= 0 {
		return s.filt == p
	}
	// The EWMA must have converged bitwise: one more update, computed
	// exactly as Push computes it, rounds back to the same float.
	alpha := float64(s.dt) / float64(s.cfg.FilterTau+s.dt)
	return s.filt+alpha*(p-s.filt) == s.filt
}

// DelaySteadyAt reports whether the delay ring is already flat at p (and
// the pipeline primed), so n pushes of p are exactly reproduced by
// AdvanceN(p, n) — the filter may still be converging. Sufficient for
// striding when nothing reads the sensor mid-stride (no global
// controller); SteadyAt is the stronger condition for when Read() must
// stay constant.
func (s *Sensor) DelaySteadyAt(p float64) bool {
	if !s.primed {
		return false
	}
	for _, v := range s.ring {
		if v != p {
			return false
		}
	}
	return true
}

// AdvanceN replays n pushes of the steady sample p established by a
// true DelaySteadyAt: each push stores the value already present,
// rotates the head, and applies the filter update with the identical
// operations Push performs, so sensor state is bitwise what n real
// pushes would have produced. Once the filter has converged the updates
// round back to the same float and the replay degenerates to a pure
// rotation.
func (s *Sensor) AdvanceN(p float64, n int64) {
	s.head = int((int64(s.head) + n) % int64(len(s.ring)))
	if s.cfg.FilterTau <= 0 {
		s.filt = p
		return
	}
	alpha := float64(s.dt) / float64(s.cfg.FilterTau+s.dt)
	for i := int64(0); i < n; i++ {
		s.filt += alpha * (p - s.filt)
	}
}

// Read returns the current delayed, filtered power measurement, with
// any injected fault applied.
func (s *Sensor) Read() float64 {
	if math.IsNaN(s.filt) {
		return 0
	}
	return s.fault.apply(s.filt)
}

// InjectFault installs a measurement defect (see Fault). A zero Fault
// restores healthy behaviour.
func (s *Sensor) InjectFault(f Fault) { s.fault = f }

// Fault returns the currently injected fault.
func (s *Sensor) Fault() Fault { return s.fault }

// Reset clears the sensor pipeline.
func (s *Sensor) Reset() {
	for i := range s.ring {
		s.ring[i] = 0
	}
	s.head = 0
	s.filt = 0
	s.primed = false
	s.fault = Fault{}
}
