package vr

import (
	"math"
	"testing"

	"hcapp/internal/sim"
)

func TestSensorConfigValidate(t *testing.T) {
	if err := (SensorConfig{Delay: 60, FilterTau: 200}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (SensorConfig{Delay: -1}).Validate(); err == nil {
		t.Fatal("negative delay accepted")
	}
	if err := (SensorConfig{FilterTau: -1}).Validate(); err == nil {
		t.Fatal("negative tau accepted")
	}
}

func TestNewSensorErrors(t *testing.T) {
	if _, err := NewSensor(SensorConfig{}, 0); err == nil {
		t.Fatal("zero timestep accepted")
	}
	if _, err := NewSensor(SensorConfig{Delay: -5}, 100); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestMustSensorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSensor did not panic")
		}
	}()
	MustSensor(SensorConfig{}, 0)
}

func TestSensorDelay(t *testing.T) {
	// 500 ns delay at 100 ns steps → 5 samples in flight.
	s := MustSensor(SensorConfig{Delay: 500}, 100)
	for i := 0; i < 5; i++ {
		s.Push(42)
		if got := s.Read(); got != 0 {
			t.Fatalf("sample emerged after %d pushes: %g", i+1, got)
		}
	}
	s.Push(42)
	if got := s.Read(); got != 42 {
		t.Fatalf("delayed sample = %g, want 42", got)
	}
}

func TestSensorZeroDelayImmediate(t *testing.T) {
	s := MustSensor(SensorConfig{Delay: 0}, 100)
	s.Push(17)
	if got := s.Read(); got != 17 {
		t.Fatalf("zero-delay read = %g, want 17", got)
	}
}

func TestSensorSubStepDelayRoundsDown(t *testing.T) {
	s := MustSensor(SensorConfig{Delay: 60}, 100)
	s.Push(9)
	if got := s.Read(); got != 9 {
		t.Fatalf("sub-step delay read = %g, want 9", got)
	}
}

func TestSensorFilterSmooths(t *testing.T) {
	s := MustSensor(SensorConfig{Delay: 0, FilterTau: 400}, 100)
	s.Push(100) // primes the filter
	if got := s.Read(); got != 100 {
		t.Fatalf("priming read = %g", got)
	}
	s.Push(0)
	got := s.Read()
	if got <= 0 || got >= 100 {
		t.Fatalf("filtered read = %g, want strictly between 0 and 100", got)
	}
	// Converges toward the input.
	for i := 0; i < 100; i++ {
		s.Push(0)
	}
	if got := s.Read(); math.Abs(got) > 0.1 {
		t.Fatalf("filter did not converge: %g", got)
	}
}

func TestSensorFilterTimeConstant(t *testing.T) {
	// After tau seconds, a first-order filter reaches ~63.2 % of a step.
	dt := sim.Time(100)
	tau := sim.Time(1000) // 10 steps
	s := MustSensor(SensorConfig{Delay: 0, FilterTau: tau}, dt)
	s.Push(0) // prime at 0
	for i := 0; i < 10; i++ {
		s.Push(1)
	}
	got := s.Read()
	if math.Abs(got-0.632) > 0.07 {
		t.Fatalf("step response after tau = %g, want ~0.632", got)
	}
}

func TestSensorReset(t *testing.T) {
	s := MustSensor(SensorConfig{Delay: 300, FilterTau: 200}, 100)
	for i := 0; i < 10; i++ {
		s.Push(50)
	}
	s.Reset()
	if got := s.Read(); got != 0 {
		t.Fatalf("post-reset read = %g", got)
	}
	s.Push(10)
	if got := s.Read(); got != 0 {
		t.Fatalf("post-reset pipeline leaked: %g", got)
	}
}

func TestSensorFaultInjection(t *testing.T) {
	s := MustSensor(SensorConfig{}, 100)
	s.Push(80)
	if got := s.Read(); got != 80 {
		t.Fatalf("healthy read = %g", got)
	}
	// Optimistic gain under-reports.
	s.InjectFault(Fault{Gain: 0.8})
	if got := s.Read(); math.Abs(got-64) > 1e-12 {
		t.Fatalf("gain-faulted read = %g, want 64", got)
	}
	// Bias.
	s.InjectFault(Fault{OffsetW: -10})
	if got := s.Read(); math.Abs(got-70) > 1e-12 {
		t.Fatalf("offset-faulted read = %g, want 70", got)
	}
	// Stuck-at freezes regardless of input.
	s.InjectFault(Fault{StuckAt: 42, StuckEnabled: true})
	s.Push(500)
	if got := s.Read(); got != 42 {
		t.Fatalf("stuck read = %g", got)
	}
	if !s.Fault().StuckEnabled {
		t.Fatal("fault not retained")
	}
	// Reset clears the fault.
	s.Reset()
	s.Push(30)
	if got := s.Read(); got != 30 {
		t.Fatalf("post-reset read = %g", got)
	}
}
