// Package cpusim assembles the CPU chiplet of the target system: eight
// Nehalem-class cores (paper Table 2) running PARSEC workload proxies,
// each with a CAPP static-IPC local controller (§3.3.1, §4.2). It stands
// in for the paper's Sniper + McPAT stack.
package cpusim

import (
	"fmt"

	"hcapp/internal/chiplet"
	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/sim"
	"hcapp/internal/thermal"
	"hcapp/internal/workload"
)

// Options selects the workload and control features of a CPU instance.
type Options struct {
	// Benchmark is the PARSEC proxy every core executes.
	Benchmark workload.Benchmark
	// Seed drives trace generation.
	Seed int64
	// LocalControl enables the per-core static-IPC controllers; the
	// fixed-voltage baseline runs without them ("a fixed global voltage
	// system with no local controllers", §4).
	LocalControl bool
	// TotalWork is the instruction budget; zero means run forever.
	TotalWork float64
	// Thermal optionally attaches a junction thermal node (§3.3
	// protection). Nil matches the paper's below-TDP assumption.
	Thermal *thermal.Config
	// VoltageMargin selects guardbanded clocking instead of adaptive
	// clocking (§3.5); zero is adaptive.
	VoltageMargin float64
}

// New builds the CPU chiplet from the Table 2 configuration.
func New(cfg config.CPUConfig, local config.LocalCPUConfig, opts Options) (*chiplet.Chiplet, error) {
	if opts.Benchmark.On != workload.TargetCPU {
		return nil, fmt.Errorf("cpusim: benchmark %q targets %s, not CPU", opts.Benchmark.Name, opts.Benchmark.On)
	}
	units := make([]chiplet.UnitSpec, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		tr := opts.Benchmark.TraceFor(opts.Seed, i, cfg.Cores, cfg.Core.DVFS.FMax)
		var lc core.Local
		if opts.LocalControl {
			rng := core.RatioRange{Min: local.RatioMin, Max: local.RatioMax}
			c, err := core.NewStaticIPC(cfg.MaxIPC, local.UpperFrac, local.LowerFrac, local.Step, rng)
			if err != nil {
				return nil, fmt.Errorf("cpusim: local controller: %w", err)
			}
			lc = c
		}
		units[i] = chiplet.UnitSpec{
			Trace:      tr,
			StartPhase: opts.Benchmark.StartPhase(opts.Seed, i, cfg.Cores, len(tr.Phases)),
			Local:      lc,
		}
	}
	epoch := local.Epoch
	if epoch <= 0 {
		epoch = 5 * sim.Microsecond
	}
	return chiplet.New(chiplet.Config{
		Name:          "cpu",
		Units:         units,
		Model:         cfg.Core,
		LocalEpoch:    epoch,
		UncoreLeak:    cfg.UncoreLeak,
		UncoreDyn:     cfg.UncoreDyn,
		TotalWork:     opts.TotalWork,
		Thermal:       opts.Thermal,
		VoltageMargin: opts.VoltageMargin,
	})
}
