package cpusim

import (
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/sim"
	"hcapp/internal/workload"
)

func mustBench(t *testing.T, name string) workload.Benchmark {
	t.Helper()
	b, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBuildsEightCores(t *testing.T) {
	cfg := config.Default()
	cpu, err := New(cfg.CPU, cfg.LocalCPU, Options{
		Benchmark: mustBench(t, "blackscholes"), Seed: 1, LocalControl: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Units() != 8 {
		t.Fatalf("units = %d, want 8 (Table 2)", cpu.Units())
	}
	if cpu.Name() != "cpu" {
		t.Fatalf("name %q", cpu.Name())
	}
}

func TestNewRejectsGPUBenchmark(t *testing.T) {
	cfg := config.Default()
	_, err := New(cfg.CPU, cfg.LocalCPU, Options{Benchmark: mustBench(t, "myocyte"), Seed: 1})
	if err == nil {
		t.Fatal("GPU benchmark accepted on CPU")
	}
}

func TestLocalControlToggle(t *testing.T) {
	cfg := config.Default()
	// Run a low-IPC workload: with local control the mean ratio drops,
	// without it stays at unity (the fixed-voltage baseline has "no
	// local controllers", §4).
	run := func(local bool) float64 {
		cpu, err := New(cfg.CPU, cfg.LocalCPU, Options{
			Benchmark: mustBench(t, "ferret"), Seed: 1, LocalControl: local,
		})
		if err != nil {
			t.Fatal(err)
		}
		for now := sim.Time(100); now <= 300*sim.Microsecond; now += 100 {
			cpu.Step(now, 100, 0.95)
		}
		return cpu.MeanRatio()
	}
	if got := run(false); got != 1.0 {
		t.Fatalf("uncontrolled mean ratio = %g", got)
	}
	if got := run(true); got >= 1.0 {
		t.Fatalf("controlled mean ratio = %g, want < 1 during ferret gaps", got)
	}
}

func TestPowerRespondsToVoltage(t *testing.T) {
	cfg := config.Default()
	mk := func() interface {
		Step(sim.Time, sim.Time, float64) sim.StepResult
	} {
		cpu, err := New(cfg.CPU, cfg.LocalCPU, Options{Benchmark: mustBench(t, "swaptions"), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return cpu
	}
	lo := mk().Step(100, 100, 0.70).Power
	hi := mk().Step(100, 100, 1.10).Power
	if hi <= lo {
		t.Fatalf("power not increasing with voltage: %g vs %g", lo, hi)
	}
}

func TestWorkCompletion(t *testing.T) {
	cfg := config.Default()
	cpu, err := New(cfg.CPU, cfg.LocalCPU, Options{
		Benchmark: mustBench(t, "swaptions"), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cpu.SetTotalWork(cpu.AvgIPSAt(0.95) * 500e-6) // ~500 µs of work
	var now sim.Time
	for !cpu.Done() && now < 5*sim.Millisecond {
		now += 100
		cpu.Step(now, 100, 0.95)
	}
	if !cpu.Done() {
		t.Fatal("CPU never finished")
	}
	ct := cpu.CompletionTime()
	if ct < 300*sim.Microsecond || ct > sim.Millisecond {
		t.Fatalf("completion at %s, want ≈500µs", sim.FormatTime(ct))
	}
}

func TestDeterminism(t *testing.T) {
	cfg := config.Default()
	run := func() float64 {
		cpu, err := New(cfg.CPU, cfg.LocalCPU, Options{
			Benchmark: mustBench(t, "fluidanimate"), Seed: 9, LocalControl: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for now := sim.Time(100); now <= 200*sim.Microsecond; now += 100 {
			total += cpu.Step(now, 100, 0.95).Power
		}
		return total
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %g vs %g", a, b)
	}
}

func TestDefaultEpochApplied(t *testing.T) {
	cfg := config.Default()
	local := cfg.LocalCPU
	local.Epoch = 0 // should fall back to a sane default, not error
	if _, err := New(cfg.CPU, local, Options{Benchmark: mustBench(t, "swaptions"), Seed: 1}); err != nil {
		t.Fatalf("zero epoch not defaulted: %v", err)
	}
}
