package gpusim

import (
	"testing"

	"hcapp/internal/config"
	"hcapp/internal/sim"
	"hcapp/internal/thermal"
	"hcapp/internal/workload"
)

func mustBench(t *testing.T, name string) workload.Benchmark {
	t.Helper()
	b, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBuildsFifteenSMs(t *testing.T) {
	cfg := config.Default()
	gpu, err := New(cfg.GPU, cfg.LocalEpoch, Options{
		Benchmark: mustBench(t, "backprop"), Seed: 1, LocalControl: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Units() != 15 {
		t.Fatalf("units = %d, want 15 (Table 2)", gpu.Units())
	}
	if gpu.Name() != "gpu" {
		t.Fatalf("name %q", gpu.Name())
	}
}

func TestNewRejectsCPUBenchmark(t *testing.T) {
	cfg := config.Default()
	if _, err := New(cfg.GPU, cfg.LocalEpoch, Options{Benchmark: mustBench(t, "ferret"), Seed: 1}); err == nil {
		t.Fatal("CPU benchmark accepted on GPU")
	}
}

func TestDynamicLocalReducesLowWorkloadPower(t *testing.T) {
	cfg := config.Default()
	run := func(local bool) float64 {
		gpu, err := New(cfg.GPU, cfg.LocalEpoch, Options{
			Benchmark: mustBench(t, "myocyte"), Seed: 1, LocalControl: local,
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		// Domain voltage pinned above the 0.72 V target so thresholds
		// relax but low IPC still reduces ratios initially.
		for now := sim.Time(100); now <= 200*sim.Microsecond; now += 100 {
			total += gpu.Step(now, 100, 0.7125).Power
		}
		return total
	}
	controlled := run(true)
	uncontrolled := run(false)
	if controlled >= uncontrolled {
		t.Fatalf("dynamic local controller did not reduce myocyte power: %g vs %g",
			controlled, uncontrolled)
	}
}

func TestWorkCompletion(t *testing.T) {
	cfg := config.Default()
	gpu, err := New(cfg.GPU, cfg.LocalEpoch, Options{
		Benchmark: mustBench(t, "backprop"), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	gpu.SetTotalWork(gpu.AvgIPSAt(0.7125) * 500e-6)
	var now sim.Time
	for !gpu.Done() && now < 5*sim.Millisecond {
		now += 100
		gpu.Step(now, 100, 0.7125)
	}
	if !gpu.Done() {
		t.Fatal("GPU never finished")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := config.Default()
	run := func() float64 {
		gpu, err := New(cfg.GPU, cfg.LocalEpoch, Options{
			Benchmark: mustBench(t, "bfs"), Seed: 4, LocalControl: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for now := sim.Time(100); now <= 200*sim.Microsecond; now += 100 {
			total += gpu.Step(now, 100, 0.7125).Power
		}
		return total
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %g vs %g", a, b)
	}
}

func TestZeroEpochDefaults(t *testing.T) {
	cfg := config.Default()
	if _, err := New(cfg.GPU, 0, Options{Benchmark: mustBench(t, "sradv2"), Seed: 1}); err != nil {
		t.Fatalf("zero epoch not defaulted: %v", err)
	}
}

func TestOccupancyControllerVariant(t *testing.T) {
	cfg := config.Default()
	gpu, err := New(cfg.GPU, cfg.LocalEpoch, Options{
		Benchmark: mustBench(t, "myocyte"), Seed: 1,
		LocalControl: true, Controller: "dynamic-occupancy",
	})
	if err != nil {
		t.Fatal(err)
	}
	// With the domain voltage held below the 0.72 V target, the
	// adaptive thresholds rise until myocyte's low occupancy fails
	// them and ratios step down — the §3.3.2 self-balancing loop under
	// the occupancy metric.
	for now := sim.Time(100); now <= 300*sim.Microsecond; now += 100 {
		gpu.Step(now, 100, 0.60)
	}
	if gpu.MeanRatio() >= 1.0 {
		t.Fatalf("occupancy controller idle ratio = %g, want < 1", gpu.MeanRatio())
	}
}

func TestUnknownControllerRejected(t *testing.T) {
	cfg := config.Default()
	if _, err := New(cfg.GPU, cfg.LocalEpoch, Options{
		Benchmark: mustBench(t, "myocyte"), Seed: 1,
		LocalControl: true, Controller: "telepathy",
	}); err == nil {
		t.Fatal("unknown controller accepted")
	}
}

func TestThermalAndMarginPassThrough(t *testing.T) {
	cfg := config.Default()
	th := thermal.DefaultChiplet()
	gpu, err := New(cfg.GPU, cfg.LocalEpoch, Options{
		Benchmark: mustBench(t, "backprop"), Seed: 1,
		Thermal: &th, VoltageMargin: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	for now := sim.Time(100); now <= 100*sim.Microsecond; now += 100 {
		gpu.Step(now, 100, 0.7125)
	}
	if gpu.Temp() <= th.AmbientC {
		t.Fatal("thermal node not attached")
	}
	// Guardbanded GPU retires less than adaptive at the same rail.
	plain, err := New(cfg.GPU, cfg.LocalEpoch, Options{Benchmark: mustBench(t, "backprop"), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wPlain, wMargin float64
	gpu.Reset()
	for now := sim.Time(100); now <= 100*sim.Microsecond; now += 100 {
		wMargin += gpu.Step(now, 100, 0.7125).Work
		wPlain += plain.Step(now, 100, 0.7125).Work
	}
	if wMargin >= wPlain {
		t.Fatalf("voltage margin did not cost work: %g vs %g", wMargin, wPlain)
	}
}
