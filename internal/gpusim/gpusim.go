// Package gpusim assembles the GPU chiplet of the target system: fifteen
// GTX480-class streaming multiprocessors (paper Table 2) running Rodinia
// workload proxies, each with a GPU-CAPP dynamic-IPC local controller
// whose thresholds adapt to steer the domain voltage toward its target
// (§3.3.2, §4.3). It stands in for the paper's GPGPU-Sim + GPUWattch
// stack.
package gpusim

import (
	"fmt"

	"hcapp/internal/chiplet"
	"hcapp/internal/config"
	"hcapp/internal/core"
	"hcapp/internal/sim"
	"hcapp/internal/thermal"
	"hcapp/internal/workload"
)

// Options selects the workload and control features of a GPU instance.
type Options struct {
	// Benchmark is the Rodinia proxy every SM executes.
	Benchmark workload.Benchmark
	// Seed drives trace generation.
	Seed int64
	// LocalControl enables the per-SM dynamic-IPC controllers.
	LocalControl bool
	// TotalWork is the instruction budget; zero means run forever.
	TotalWork float64
	// Controller selects the GPU-CAPP local controller design:
	// "dynamic-ipc" (default, the paper's choice) or
	// "dynamic-occupancy" (the dynamic warp alternative).
	Controller string
	// Thermal optionally attaches a junction thermal node.
	Thermal *thermal.Config
	// VoltageMargin selects guardbanded clocking (§3.5).
	VoltageMargin float64
}

// New builds the GPU chiplet from the Table 2 configuration.
func New(cfg config.GPUConfig, localEpoch sim.Time, opts Options) (*chiplet.Chiplet, error) {
	if opts.Benchmark.On != workload.TargetGPU {
		return nil, fmt.Errorf("gpusim: benchmark %q targets %s, not GPU", opts.Benchmark.Name, opts.Benchmark.On)
	}
	units := make([]chiplet.UnitSpec, cfg.SMs)
	for i := 0; i < cfg.SMs; i++ {
		tr := opts.Benchmark.TraceFor(opts.Seed, i, cfg.SMs, cfg.SM.DVFS.FMax)
		var lc core.Local
		if opts.LocalControl {
			var c core.Local
			var err error
			switch opts.Controller {
			case "", "dynamic-ipc":
				c, err = core.NewDynamicIPC(
					cfg.MaxIPC, cfg.InitUpperTh, cfg.InitLowTh, 0.05,
					cfg.TargetDomainV, cfg.DeadZone, cfg.ThresholdStep,
					core.DefaultRatioRange,
				)
			case "dynamic-occupancy":
				// Occupancy (activity) is bounded by 1.0; the threshold
				// fractions carry over directly.
				c, err = core.NewDynamicOccupancy(
					1.0, cfg.InitUpperTh, cfg.InitLowTh, 0.05,
					cfg.TargetDomainV, cfg.DeadZone, cfg.ThresholdStep,
					core.DefaultRatioRange,
				)
			default:
				return nil, fmt.Errorf("gpusim: unknown controller %q", opts.Controller)
			}
			if err != nil {
				return nil, fmt.Errorf("gpusim: local controller: %w", err)
			}
			lc = c
		}
		units[i] = chiplet.UnitSpec{
			Trace:      tr,
			StartPhase: opts.Benchmark.StartPhase(opts.Seed, i, cfg.SMs, len(tr.Phases)),
			Local:      lc,
		}
	}
	if localEpoch <= 0 {
		localEpoch = 5 * sim.Microsecond
	}
	return chiplet.New(chiplet.Config{
		Name:          "gpu",
		Units:         units,
		Model:         cfg.SM,
		LocalEpoch:    localEpoch,
		UncoreLeak:    cfg.UncoreLeak,
		UncoreDyn:     cfg.UncoreDyn,
		TotalWork:     opts.TotalWork,
		Thermal:       opts.Thermal,
		VoltageMargin: opts.VoltageMargin,
	})
}
