package fault

import (
	"hcapp/internal/telemetry"
)

// Metrics exports fault-injection and resilience counters through
// internal/telemetry, one series set per scenario. The fault-sweep
// experiment publishes into one registry per sweep; hcappsim renders it
// after the resilience table so the counters are scrapable/parsable
// with the same tooling as hcapp-serve's /metrics.
type Metrics struct {
	injected  *telemetry.CounterVec // scenario, kind
	clamp     *telemetry.CounterVec // scenario
	watchdog  *telemetry.CounterVec // scenario, domain
	holdover  *telemetry.CounterVec // scenario
	failsafes *telemetry.CounterVec // scenario
}

// NewMetrics registers the fault/recovery counter families.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		injected: reg.Counter("hcapp_faults_injected_total",
			"Perturbations applied by the fault injector, by kind.", "scenario", "kind"),
		clamp: reg.Counter("hcapp_clamp_trips_total",
			"Package safety-clamp trips.", "scenario"),
		watchdog: reg.Counter("hcapp_watchdog_trips_total",
			"Domain watchdog trips (silent controller driven to fail-safe).", "scenario", "domain"),
		holdover: reg.Counter("hcapp_holdover_cycles_total",
			"Control cycles decided on held (stale) sensor or telemetry samples.", "scenario"),
		failsafes: reg.Counter("hcapp_failsafe_cycles_total",
			"Control cycles spent in fail-safe (holdover age bound exceeded).", "scenario"),
	}
}

// RecordRun publishes one scenario run's fault and resilience tallies.
func (m *Metrics) RecordRun(scenario string, c Counts, clampTrips int64, watchdogTrips map[string]int64, holdoverCycles, failsafeCycles int64) {
	kinds := []struct {
		kind string
		n    int64
	}{
		{"sense-dropped", c.SenseDropped},
		{"sense-perturbed", c.SensePerturbed},
		{"telemetry-lost", c.TelemetryLost},
		{"telemetry-stale", c.TelemetryStale},
		{"silenced-steps", c.SilencedSteps},
		{"rail-steps", c.RailSteps},
		{"slew-steps", c.SlewSteps},
	}
	for _, k := range kinds {
		if k.n > 0 {
			m.injected.With(scenario, k.kind).Add(float64(k.n))
		}
	}
	if clampTrips > 0 {
		m.clamp.With(scenario).Add(float64(clampTrips))
	}
	for dom, n := range watchdogTrips {
		if n > 0 {
			m.watchdog.With(scenario, dom).Add(float64(n))
		}
	}
	if holdoverCycles > 0 {
		m.holdover.With(scenario).Add(float64(holdoverCycles))
	}
	if failsafeCycles > 0 {
		m.failsafes.With(scenario).Add(float64(failsafeCycles))
	}
}
