package fault

import (
	"testing"

	"hcapp/internal/sim"
)

func us(n int) sim.Time { return sim.Time(n) * sim.Microsecond }

func TestEventValidate(t *testing.T) {
	good := []Event{
		{Class: SensorStuck, Start: 0, End: us(10), Param: 20},
		{Class: SensorNoise, Start: us(1), End: us(2), Param: 0},
		{Class: SensorDropout, Start: 0, End: 1, Param: 1.0},
		{Class: TelemetryLoss, Start: 0, End: 1, Param: 0.5, Domain: "gpu"},
		{Class: TelemetryDelay, Start: 0, End: 1, Param: 200},
		{Class: VRSlew, Start: 0, End: 1, Param: 0.2},
		{Class: RailDroop, Start: 0, End: 1, Param: 0.04},
		{Class: DomainSilence, Start: 0, End: 1, Domain: "gpu"},
	}
	for _, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", e.Class, err)
		}
	}
	bad := []Event{
		{Class: "bogus", Start: 0, End: 1},
		{Class: SensorStuck, Start: 5, End: 5},  // empty window
		{Class: SensorStuck, Start: 5, End: 4},  // inverted
		{Class: SensorStuck, Start: -1, End: 4}, // negative start
		{Class: SensorDropout, Start: 0, End: 1, Param: 1.5},
		{Class: SensorDropout, Start: 0, End: 1, Param: -0.1},
		{Class: TelemetryLoss, Start: 0, End: 1, Param: 2},
		{Class: SensorNoise, Start: 0, End: 1, Param: -1},
		{Class: VRSlew, Start: 0, End: 1, Param: 0},   // zero slew factor
		{Class: VRSlew, Start: 0, End: 1, Param: 1.5}, // above nominal
		{Class: RailDroop, Start: 0, End: 1, Param: -0.1},
		{Class: TelemetryDelay, Start: 0, End: 1, Param: 0},
		{Class: DomainSilence, Start: 0, End: 1}, // missing domain
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("%s (start=%d end=%d param=%g): expected error", e.Class, e.Start, e.End, e.Param)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (Plan{Name: "healthy"}).Validate(); err != nil {
		t.Errorf("empty plan: %v", err)
	}
	if err := (Plan{}).Validate(); err == nil {
		t.Error("nameless plan accepted")
	}
	p := Plan{Name: "x", Events: []Event{{Class: "bogus", Start: 0, End: 1}}}
	if err := p.Validate(); err == nil {
		t.Error("plan with invalid event accepted")
	}
	if _, err := New(p); err == nil {
		t.Error("New accepted invalid plan")
	}
}

func TestPlanSpan(t *testing.T) {
	p := Plan{Name: "x", Events: []Event{
		{Class: RailDroop, Start: us(30), End: us(40), Param: 0.01},
		{Class: SensorStuck, Start: us(10), End: us(50), Param: 20},
	}}
	s, e := p.Span()
	if s != us(10) || e != us(50) {
		t.Fatalf("span [%d,%d), want [%d,%d)", s, e, us(10), us(50))
	}
	if s, e := (Plan{Name: "h"}).Span(); s != 0 || e != 0 {
		t.Fatalf("empty plan span [%d,%d)", s, e)
	}
}

// TestCursorActivation walks a two-event plan and checks the active
// windows are honoured exactly at their boundaries.
func TestCursorActivation(t *testing.T) {
	in := MustNew(Plan{Name: "x", Seed: 1, Events: []Event{
		{Class: RailDroop, Start: us(10), End: us(20), Param: 0.05},
		{Class: VRSlew, Start: us(15), End: us(30), Param: 0.5},
	}})
	type probe struct {
		t      sim.Time
		active bool
		rail   float64 // expected Rail(1.0)
		slew   float64
	}
	probes := []probe{
		{us(5), false, 1.0, 1.0},
		{us(10), true, 0.95, 1.0},
		{us(14), true, 0.95, 1.0},
		{us(15), true, 0.95, 0.5},
		{us(19), true, 0.95, 0.5},
		{us(20), true, 1.0, 0.5}, // droop ended (End exclusive), slew still on
		{us(29), true, 1.0, 0.5},
		{us(30), false, 1.0, 1.0},
		{us(100), false, 1.0, 1.0},
	}
	for _, p := range probes {
		got := in.BeginStep(p.t)
		if got != p.active {
			t.Fatalf("t=%d: active=%v, want %v", p.t, got, p.active)
		}
		if !got {
			continue
		}
		if v := in.Rail(1.0); v != p.rail {
			t.Errorf("t=%d: Rail(1)=%g, want %g", p.t, v, p.rail)
		}
		if s := in.SlewScale(); s != p.slew {
			t.Errorf("t=%d: SlewScale=%g, want %g", p.t, s, p.slew)
		}
	}
}

// TestDeterministicDraws proves the core reproducibility contract: two
// injectors built from the same plan, and one injector re-run after
// Reset, produce bit-identical stochastic perturbation sequences.
func TestDeterministicDraws(t *testing.T) {
	plan := Plan{Name: "x", Seed: 99, Events: []Event{
		{Class: SensorNoise, Start: 0, End: us(100), Param: 3},
		{Class: SensorDropout, Start: 0, End: us(100), Param: 0.3},
	}}
	sequence := func(in *Injector) []float64 {
		var out []float64
		for step := 0; step < 2000; step++ {
			now := sim.Time(step) * 100 * sim.Nanosecond
			if !in.BeginStep(now) {
				out = append(out, -1)
				continue
			}
			w, ok := in.Sense(50)
			if !ok {
				out = append(out, -2)
				continue
			}
			out = append(out, w)
		}
		return out
	}
	a := sequence(MustNew(plan))
	b := sequence(MustNew(plan))
	in := MustNew(plan)
	_ = sequence(in)
	in.Reset()
	c := sequence(in)
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("step %d: sequences diverge (%g, %g, %g)", i, a[i], b[i], c[i])
		}
	}
	cnt := MustNew(plan)
	_ = sequence(cnt)
	counts := cnt.Counts()
	if counts.SenseDropped == 0 || counts.SensePerturbed == 0 {
		t.Fatalf("expected both drop and perturb counts, got %+v", counts)
	}
	// Events span [0, 100µs): the first 1000 of the 2000 probed steps.
	// Every active step either drops or perturbs (noise always on).
	if counts.SenseDropped+counts.SensePerturbed != 1000 {
		t.Fatalf("drop+perturb = %d, want 1000", counts.SenseDropped+counts.SensePerturbed)
	}
}

func TestSeedChangesDraws(t *testing.T) {
	mk := func(seed int64) Plan {
		return Plan{Name: "x", Seed: seed, Events: []Event{
			{Class: SensorNoise, Start: 0, End: us(10), Param: 5},
		}}
	}
	a, b := MustNew(mk(1)), MustNew(mk(2))
	a.BeginStep(0)
	b.BeginStep(0)
	wa, _ := a.Sense(50)
	wb, _ := b.Sense(50)
	if wa == wb {
		t.Fatalf("different seeds produced identical noise %g", wa)
	}
}

func TestSensorStuckOverridesSample(t *testing.T) {
	in := MustNew(Plan{Name: "x", Events: []Event{
		{Class: SensorStuck, Start: 0, End: us(1), Param: 20},
	}})
	if !in.BeginStep(0) {
		t.Fatal("event not active at start")
	}
	if w, ok := in.Sense(123); !ok || w != 20 {
		t.Fatalf("Sense = (%g, %v), want (20, true)", w, ok)
	}
}

func TestSilencedMatchesDomain(t *testing.T) {
	in := MustNew(Plan{Name: "x", Events: []Event{
		{Class: DomainSilence, Start: 0, End: us(1), Domain: "gpu"},
	}})
	in.BeginStep(0)
	if !in.Silenced("gpu") {
		t.Error("gpu not silenced")
	}
	if in.Silenced("cpu") {
		t.Error("cpu silenced by gpu event")
	}
}

func TestTelemetrySample(t *testing.T) {
	in := MustNew(Plan{Name: "x", Seed: 7, Events: []Event{
		{Class: TelemetryLoss, Start: 0, End: us(1), Param: 1.0, Domain: "gpu"},
		{Class: TelemetryDelay, Start: 0, End: us(1), Param: float64(us(200))},
	}})
	in.BeginStep(0)
	if _, delivered := in.TelemetrySample(0, "gpu"); delivered {
		t.Error("gpu delivery survived p=1 loss")
	}
	age, delivered := in.TelemetrySample(0, "cpu")
	if !delivered || age != us(200) {
		t.Errorf("cpu sample (age=%d, delivered=%v), want (%d, true)", age, delivered, us(200))
	}
	c := in.Counts()
	if c.TelemetryLost != 1 || c.TelemetryStale == 0 {
		t.Errorf("counts %+v", c)
	}
}

func TestIdleInjectorReportsInactive(t *testing.T) {
	in := MustNew(Plan{Name: "healthy", Seed: 42})
	for step := 0; step < 100; step++ {
		if in.BeginStep(sim.Time(step) * 100) {
			t.Fatal("empty plan reported active")
		}
	}
	if c := in.Counts(); c != (Counts{}) {
		t.Fatalf("idle injector counted %+v", c)
	}
}
