// Package fault is the deterministic fault injector for the HCAPP
// co-simulation: a seed-driven perturbation source threaded through the
// engine step loop (internal/sched) that breaks the substrate the
// paper's evaluation takes for granted — true power sensors, lossless
// telemetry collection, healthy regulators, live domain controllers.
//
// A Plan is a list of timed Events, each activating one fault Class over
// a [Start, End) window of simulated time. Stochastic classes (sensor
// dropout, telemetry loss, additive sensor noise) draw from a private
// PRNG seeded by the plan, so the same plan and seed reproduce the same
// perturbation sequence bit for bit — the property the fault-sweep
// experiment's determinism test enforces. The injector is consulted by
// the engine only when attached; a nil injector costs the step loop a
// single pointer comparison (guarded in bench_test.go), and an attached
// injector with no active event costs one time comparison per step.
//
// The resilience mechanisms the injector exercises live with the
// components they protect: stale-sample holdover in core.Global,
// per-domain watchdogs in core.Domain, the package safety clamp in
// core.Clamp, and per-domain telemetry holdover in central.Controller.
// docs/FAULTS.md documents the model and the knobs.
package fault

import (
	"fmt"
	"sort"

	"hcapp/internal/sim"
)

// Class enumerates the injectable fault classes.
type Class string

// The fault classes, grouped by the path they corrupt.
const (
	// SensorStuck freezes the package power sample entering the sensing
	// path at Param watts — the silent failure a capping controller must
	// not trust (§5.1's guardband exists because sensors can lie).
	SensorStuck Class = "sensor-stuck"
	// SensorNoise adds zero-mean Gaussian noise with sigma Param watts
	// to every sample entering the sensing path.
	SensorNoise Class = "sensor-noise"
	// SensorDropout drops each sample with probability Param in [0,1];
	// the sensing pipeline holds its last value and the sample ages.
	SensorDropout Class = "sensor-dropout"
	// TelemetryLoss drops each per-domain metric delivery on the NoC
	// collection path with probability Param in [0,1]. Domain narrows
	// the loss to one domain; empty hits every domain.
	TelemetryLoss Class = "telemetry-loss"
	// TelemetryDelay delivers per-domain metric samples Param
	// nanoseconds stale (the NoC congestion case). Domain narrows it.
	TelemetryDelay Class = "telemetry-delay"
	// VRSlew degrades the global regulator's slew rate to Param × nominal
	// (Param in (0,1]) — regulator aging / thermal derating.
	VRSlew Class = "vr-slew"
	// RailDroop subtracts a transient Param volts from the post-PSN rail
	// voltage seen by every domain.
	RailDroop Class = "rail-droop"
	// DomainSilence hangs the named Domain's level-2 controller: it
	// stops retargeting its regulator (and stops petting its watchdog)
	// until the event ends.
	DomainSilence Class = "domain-silence"
)

// classes lists every valid class for validation.
var classes = map[Class]bool{
	SensorStuck: true, SensorNoise: true, SensorDropout: true,
	TelemetryLoss: true, TelemetryDelay: true,
	VRSlew: true, RailDroop: true, DomainSilence: true,
}

// Event activates one fault class over [Start, End) of simulated time.
type Event struct {
	Class Class
	// Start and End bound the active window; End <= Start is invalid.
	Start, End sim.Time
	// Domain names the afflicted domain controller (DomainSilence;
	// optional narrowing for the telemetry classes).
	Domain string
	// Param is the class-specific magnitude: stuck watts, noise sigma
	// watts, drop/loss probability, staleness ns, slew factor, droop
	// volts.
	Param float64
}

// Validate reports whether the event is usable.
func (e Event) Validate() error {
	if !classes[e.Class] {
		return fmt.Errorf("fault: unknown class %q", e.Class)
	}
	if e.Start < 0 || e.End <= e.Start {
		return fmt.Errorf("fault: %s window [%d,%d) empty or negative", e.Class, e.Start, e.End)
	}
	switch e.Class {
	case SensorDropout, TelemetryLoss:
		if e.Param < 0 || e.Param > 1 {
			return fmt.Errorf("fault: %s probability %g outside [0,1]", e.Class, e.Param)
		}
	case SensorNoise:
		if e.Param < 0 {
			return fmt.Errorf("fault: negative noise sigma %g", e.Param)
		}
	case VRSlew:
		if e.Param <= 0 || e.Param > 1 {
			return fmt.Errorf("fault: slew factor %g outside (0,1]", e.Param)
		}
	case RailDroop:
		if e.Param < 0 {
			return fmt.Errorf("fault: negative rail droop %g", e.Param)
		}
	case TelemetryDelay:
		if e.Param <= 0 {
			return fmt.Errorf("fault: non-positive telemetry delay %g", e.Param)
		}
	case DomainSilence:
		if e.Domain == "" {
			return fmt.Errorf("fault: domain-silence event needs a domain")
		}
	}
	return nil
}

// Plan is a named, seeded fault scenario: the unit the fault-sweep
// experiment iterates over.
type Plan struct {
	// Name labels the scenario in tables and metrics.
	Name string
	// Seed drives the injector's private PRNG. The same (Seed, Events)
	// pair reproduces the identical perturbation sequence.
	Seed int64
	// Events are the timed faults; an empty list is a valid (healthy)
	// plan.
	Events []Event
}

// Validate reports whether every event in the plan is usable.
func (p Plan) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("fault: plan needs a name")
	}
	for i, e := range p.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Span returns the earliest start and latest end over the plan's
// events (0,0 for an empty plan) — the window the fault-sweep recovery
// metric is measured after.
func (p Plan) Span() (start, end sim.Time) {
	for i, e := range p.Events {
		if i == 0 || e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	return start, end
}

// sortedEvents returns the events ordered by start time (stable), the
// order the injector's cursor consumes them in.
func sortedEvents(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
