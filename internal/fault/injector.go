package fault

import (
	"fmt"
	"math/rand"

	"hcapp/internal/sim"
)

// Injector evaluates a Plan against simulated time. The engine calls
// BeginStep once per step; when it returns false (no active event) every
// other hook is skipped, so an idle injector costs one time comparison
// per step and a disabled (nil) injector costs one pointer comparison.
//
// All stochastic draws happen in step order from a private PRNG seeded
// by the plan, so a given (plan, seed) is bit-reproducible.
type Injector struct {
	plan   Plan
	events []Event // sorted by Start
	rng    *rand.Rand

	next       int   // index of the next not-yet-activated event
	active     []int // indices of currently active events
	nextChange sim.Time

	// Per-step resolved state, valid when stepActive.
	stepActive  bool
	slewScale   float64
	railDelta   float64
	senseStuck  bool
	senseStuckW float64
	senseNoiseW float64
	senseDrop   bool

	counts Counts
}

// Counts tallies the perturbations an injector has applied — the
// fault-side numbers the resilience counters in internal/telemetry
// export (see Metrics).
type Counts struct {
	// SenseDropped counts power samples dropped on the sensing path.
	SenseDropped int64
	// SensePerturbed counts samples altered (stuck or noisy).
	SensePerturbed int64
	// TelemetryLost counts per-domain metric deliveries dropped.
	TelemetryLost int64
	// TelemetryStale counts per-domain deliveries aged by delay events.
	TelemetryStale int64
	// SilencedSteps counts domain-controller steps executed silent.
	SilencedSteps int64
	// RailSteps counts steps with a rail-droop perturbation applied.
	RailSteps int64
	// SlewSteps counts steps with a degraded global-VR slew.
	SlewSteps int64
}

// New builds an injector for a validated plan.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		plan:   plan,
		events: sortedEvents(plan.Events),
	}
	in.Reset()
	return in, nil
}

// MustNew is New that panics on an invalid plan.
func MustNew(plan Plan) *Injector {
	in, err := New(plan)
	if err != nil {
		panic(err)
	}
	return in
}

// Plan returns the plan the injector evaluates.
func (in *Injector) Plan() Plan { return in.plan }

// Counts returns the perturbation tallies so far.
func (in *Injector) Counts() Counts { return in.counts }

// Reset rewinds the injector for another run: the PRNG is reseeded, so
// a re-run reproduces the identical perturbation sequence.
func (in *Injector) Reset() {
	in.rng = rand.New(rand.NewSource(in.plan.Seed))
	in.next = 0
	in.active = in.active[:0]
	in.nextChange = 0
	in.stepActive = false
	in.counts = Counts{}
	if len(in.events) > 0 {
		in.nextChange = in.events[0].Start
	} else {
		in.nextChange = sim.Time(1<<62 - 1)
	}
}

// NextChange returns the next time the active-event set can change.
// While the injector is idle (BeginStep returned false), every step
// strictly before NextChange is guaranteed idle too — the bound the
// adaptive engine uses to end strides before a fault window opens.
func (in *Injector) NextChange() sim.Time { return in.nextChange }

// BeginStep advances the injector to time now and reports whether any
// event is active this step. It must be called once per engine step,
// with monotonically increasing now. The idle fast path (no active
// event, next boundary not reached) is two comparisons and inlines into
// the engine step — the property the <2% no-fault overhead guard in
// sched's bench_test.go depends on.
func (in *Injector) BeginStep(now sim.Time) bool {
	if now < in.nextChange && len(in.active) == 0 {
		return false
	}
	return in.beginSlow(now)
}

// beginSlow is BeginStep off the idle fast path: cross an event
// boundary and/or resolve the active set for this step.
func (in *Injector) beginSlow(now sim.Time) bool {
	if now >= in.nextChange {
		in.advance(now)
	}
	if len(in.active) == 0 {
		in.stepActive = false
		return false
	}
	in.resolveStep()
	return true
}

// advance updates the active set and the next time it can change.
func (in *Injector) advance(now sim.Time) {
	// Retire ended events.
	kept := in.active[:0]
	for _, i := range in.active {
		if in.events[i].End > now {
			kept = append(kept, i)
		}
	}
	in.active = kept
	// Admit newly started ones.
	for in.next < len(in.events) && in.events[in.next].Start <= now {
		if in.events[in.next].End > now {
			in.active = append(in.active, in.next)
		}
		in.next++
	}
	// Next boundary: earliest active end or next start.
	next := sim.Time(1<<62 - 1)
	for _, i := range in.active {
		if in.events[i].End < next {
			next = in.events[i].End
		}
	}
	if in.next < len(in.events) && in.events[in.next].Start < next {
		next = in.events[in.next].Start
	}
	in.nextChange = next
}

// resolveStep computes this step's perturbation state from the active
// events, drawing stochastic values in event order.
func (in *Injector) resolveStep() {
	in.stepActive = true
	in.slewScale = 1
	in.railDelta = 0
	in.senseStuck = false
	in.senseStuckW = 0
	in.senseNoiseW = 0
	in.senseDrop = false
	for _, i := range in.active {
		e := &in.events[i]
		switch e.Class {
		case SensorStuck:
			in.senseStuck = true
			in.senseStuckW = e.Param
		case SensorNoise:
			in.senseNoiseW += in.rng.NormFloat64() * e.Param
		case SensorDropout:
			if in.rng.Float64() < e.Param {
				in.senseDrop = true
			}
		case VRSlew:
			if e.Param < in.slewScale {
				in.slewScale = e.Param
			}
		case RailDroop:
			in.railDelta += e.Param
		}
	}
}

// SlewScale returns this step's global-VR slew degradation factor.
// Call only after BeginStep returned true.
func (in *Injector) SlewScale() float64 {
	if in.slewScale < 1 {
		in.counts.SlewSteps++
	}
	return in.slewScale
}

// Rail perturbs the post-PSN rail voltage (transient droop), floored at
// zero. Call only after BeginStep returned true.
func (in *Injector) Rail(v float64) float64 {
	if in.railDelta == 0 {
		return v
	}
	in.counts.RailSteps++
	v -= in.railDelta
	if v < 0 {
		v = 0
	}
	return v
}

// Sense perturbs the true package power sample entering the sensing
// path. ok=false means the sample was dropped: the sensor holds its
// last value and the reading's age grows. Call only after BeginStep
// returned true.
func (in *Injector) Sense(trueW float64) (w float64, ok bool) {
	if in.senseDrop {
		in.counts.SenseDropped++
		return 0, false
	}
	switch {
	case in.senseStuck:
		in.counts.SensePerturbed++
		return in.senseStuckW, true
	case in.senseNoiseW != 0:
		in.counts.SensePerturbed++
		return trueW + in.senseNoiseW, true
	}
	return trueW, true
}

// Silenced reports whether the named domain controller is hung this
// step. Call only after BeginStep returned true.
func (in *Injector) Silenced(domain string) bool {
	for _, i := range in.active {
		e := &in.events[i]
		if e.Class == DomainSilence && e.Domain == domain {
			in.counts.SilencedSteps++
			return true
		}
	}
	return false
}

// TelemetrySample models one per-domain metric delivery over the NoC
// collection path at time now: delivered=false is a lost sample, a
// positive age is a stale one. Healthy paths return (0, true). Called
// by the centralized controller at its own period (not per engine
// step), so it scans the active set directly.
func (in *Injector) TelemetrySample(now sim.Time, domain string) (age sim.Time, delivered bool) {
	delivered = true
	for _, i := range in.active {
		e := &in.events[i]
		if e.Domain != "" && e.Domain != domain {
			continue
		}
		switch e.Class {
		case TelemetryLoss:
			if in.rng.Float64() < e.Param {
				in.counts.TelemetryLost++
				delivered = false
			}
		case TelemetryDelay:
			if a := sim.Time(e.Param); a > age {
				in.counts.TelemetryStale++
				age = a
			}
		}
	}
	return age, delivered
}

// String summarizes the injector for logs.
func (in *Injector) String() string {
	return fmt.Sprintf("fault.Injector{plan=%s seed=%d events=%d}", in.plan.Name, in.plan.Seed, len(in.events))
}
