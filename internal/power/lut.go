package power

import (
	"fmt"
	"sort"
)

// LUT is a one-dimensional lookup table with linear interpolation between
// points and clamping outside the domain. The paper's SHA accelerator model
// is exactly this: "the points from the relevant figures in the paper were
// put into lookup tables and, based on the provided voltage, throughput and
// power for a given time period were calculated" (§4.4).
type LUT struct {
	xs, ys []float64
}

// NewLUT builds a lookup table from (x, y) points. Points are sorted by x;
// x values must be distinct and there must be at least two points.
func NewLUT(xs, ys []float64) (*LUT, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("power: LUT length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("power: LUT needs at least 2 points, got %d", len(xs))
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	l := &LUT{xs: make([]float64, len(pts)), ys: make([]float64, len(pts))}
	for i, p := range pts {
		if i > 0 && p.x == pts[i-1].x {
			return nil, fmt.Errorf("power: duplicate LUT x value %g", p.x)
		}
		l.xs[i], l.ys[i] = p.x, p.y
	}
	return l, nil
}

// MustLUT is NewLUT that panics on invalid input; for package-level tables
// built from literal data.
func MustLUT(xs, ys []float64) *LUT {
	l, err := NewLUT(xs, ys)
	if err != nil {
		panic(err)
	}
	return l
}

// At returns the interpolated value at x, clamped to the end values
// outside the table's domain.
func (l *LUT) At(x float64) float64 {
	if x <= l.xs[0] {
		return l.ys[0]
	}
	n := len(l.xs)
	if x >= l.xs[n-1] {
		return l.ys[n-1]
	}
	// Binary search for the segment containing x.
	i := sort.SearchFloat64s(l.xs, x)
	// xs[i-1] < x <= xs[i]
	x0, x1 := l.xs[i-1], l.xs[i]
	y0, y1 := l.ys[i-1], l.ys[i]
	frac := (x - x0) / (x1 - x0)
	return y0 + frac*(y1-y0)
}

// Domain returns the table's x range.
func (l *LUT) Domain() (lo, hi float64) { return l.xs[0], l.xs[len(l.xs)-1] }

// Len returns the number of points in the table.
func (l *LUT) Len() int { return len(l.xs) }
