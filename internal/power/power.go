// Package power implements the analytic power and frequency models shared
// by all chiplet simulators: CMOS dynamic power, voltage-dependent leakage,
// the alpha-power-law frequency/voltage relation used to model adaptive
// clocking, and lookup-table interpolation for measured silicon (the SHA
// accelerator's voltage → throughput/power curves).
//
// These stand in for McPAT (CPU) and GPUWattch (GPU) in the paper's stack:
// HCAPP consumes only the power numbers these models emit, so an analytic
// model with calibrated coefficients exercises the same controller paths.
package power

import (
	"fmt"
	"math"
)

// DVFS captures a component's frequency/voltage operating envelope.
//
// Frequency follows the alpha-power law f(V) ∝ (V−Vt)^α / V, the standard
// first-order model for CMOS gate delay, clamped to [FMin, FMax]. The model
// is normalized so that f(VNom) = FMax: running at nominal voltage yields
// the component's rated maximum frequency (Table 2 in the paper), and
// adaptive clocking (paper §3.5) tracks any voltage the controllers set.
type DVFS struct {
	FMax  float64 // maximum (rated) frequency, Hz, reached at VNom
	FMin  float64 // minimum operational frequency, Hz
	VNom  float64 // nominal supply voltage, V
	VMin  float64 // minimum operational voltage, V
	VT    float64 // threshold voltage, V
	Alpha float64 // velocity-saturation exponent, typically 1.2–1.5
}

// Validate reports whether the envelope is physically meaningful.
func (d DVFS) Validate() error {
	switch {
	case d.FMax <= 0 || d.FMin <= 0 || d.FMin > d.FMax:
		return fmt.Errorf("power: invalid frequency range [%g,%g]", d.FMin, d.FMax)
	case d.VNom <= d.VT:
		return fmt.Errorf("power: nominal voltage %g not above threshold %g", d.VNom, d.VT)
	case d.VMin <= d.VT:
		return fmt.Errorf("power: minimum voltage %g not above threshold %g", d.VMin, d.VT)
	case d.VMin > d.VNom:
		return fmt.Errorf("power: minimum voltage %g above nominal %g", d.VMin, d.VNom)
	case d.Alpha <= 0:
		return fmt.Errorf("power: non-positive alpha %g", d.Alpha)
	}
	return nil
}

// Freq returns the operating frequency at supply voltage v under adaptive
// clocking. Below VMin (or at/below threshold) the component cannot clock
// and the frequency is 0; otherwise the alpha-power law applies, clamped
// to [FMin, FMax].
func (d DVFS) Freq(v float64) float64 {
	if v < d.VMin || v <= d.VT {
		return 0
	}
	norm := math.Pow(d.VNom-d.VT, d.Alpha) / d.VNom
	f := d.FMax * (math.Pow(v-d.VT, d.Alpha) / v) / norm
	if f > d.FMax {
		f = d.FMax
	}
	if f < d.FMin {
		f = d.FMin
	}
	return f
}

// VoltageFor returns the lowest supply voltage at which the component
// reaches frequency f, found by bisection over [VMin, VNom]. Frequencies
// at or below f(VMin) return VMin; frequencies at or above FMax return
// VNom.
func (d DVFS) VoltageFor(f float64) float64 {
	if f >= d.FMax {
		return d.VNom
	}
	if f <= d.Freq(d.VMin) {
		return d.VMin
	}
	lo, hi := d.VMin, d.VNom
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if d.Freq(mid) < f {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Model is the per-component power model: switching (dynamic) power plus
// voltage-dependent leakage.
//
// Dynamic power is a·C·V²·f where a is the activity factor supplied per
// step by the workload, C is the effective switched capacitance (farads,
// aggregated over the whole component), and f the operating frequency.
// Leakage is modeled as LeakNom·(V/VNom)^LeakExp: subthreshold leakage
// current grows superlinearly with supply voltage, and an exponent of 2–3
// matches published McPAT/GPUWattch breakdowns well enough for control
// studies.
type Model struct {
	DVFS    DVFS
	CEff    float64 // effective switched capacitance at full activity, F
	LeakNom float64 // leakage power at nominal voltage, W
	LeakExp float64 // leakage voltage exponent
	IdleAct float64 // floor activity factor when idle (clock tree etc.)
}

// Validate reports whether the model's parameters are meaningful.
func (m Model) Validate() error {
	if err := m.DVFS.Validate(); err != nil {
		return err
	}
	switch {
	case m.CEff <= 0:
		return fmt.Errorf("power: non-positive effective capacitance %g", m.CEff)
	case m.LeakNom < 0:
		return fmt.Errorf("power: negative leakage %g", m.LeakNom)
	case m.LeakExp < 0:
		return fmt.Errorf("power: negative leakage exponent %g", m.LeakExp)
	case m.IdleAct < 0 || m.IdleAct > 1:
		return fmt.Errorf("power: idle activity %g outside [0,1]", m.IdleAct)
	}
	return nil
}

// Dynamic returns switching power at voltage v, frequency f and activity
// factor activity (clamped to [IdleAct, 1]).
func (m Model) Dynamic(v, f, activity float64) float64 {
	if activity < m.IdleAct {
		activity = m.IdleAct
	}
	if activity > 1 {
		activity = 1
	}
	return activity * m.CEff * v * v * f
}

// Leakage returns static power at voltage v.
func (m Model) Leakage(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return m.LeakNom * math.Pow(v/m.DVFS.VNom, m.LeakExp)
}

// Total returns total power at voltage v and activity factor activity,
// with frequency derived from the DVFS envelope.
func (m Model) Total(v, activity float64) float64 {
	return m.Dynamic(v, m.DVFS.Freq(v), activity) + m.Leakage(v)
}
