package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLUTErrors(t *testing.T) {
	if _, err := NewLUT([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewLUT([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := NewLUT([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("duplicate x accepted")
	}
}

func TestMustLUTPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLUT did not panic on bad input")
		}
	}()
	MustLUT([]float64{1}, []float64{1})
}

func TestLUTExactPoints(t *testing.T) {
	l := MustLUT([]float64{0.2, 0.5, 0.9}, []float64{1, 4, 10})
	for i, x := range []float64{0.2, 0.5, 0.9} {
		want := []float64{1, 4, 10}[i]
		if got := l.At(x); got != want {
			t.Errorf("At(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestLUTInterpolation(t *testing.T) {
	l := MustLUT([]float64{0, 1}, []float64{0, 10})
	for _, c := range []struct{ x, want float64 }{{0.5, 5}, {0.25, 2.5}, {0.9, 9}} {
		if got := l.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestLUTClamping(t *testing.T) {
	l := MustLUT([]float64{0.23, 0.95}, []float64{1, 20})
	if got := l.At(0.1); got != 1 {
		t.Fatalf("below-domain At = %g, want clamp to 1", got)
	}
	if got := l.At(2); got != 20 {
		t.Fatalf("above-domain At = %g, want clamp to 20", got)
	}
}

func TestLUTSortsInput(t *testing.T) {
	l := MustLUT([]float64{0.9, 0.2, 0.5}, []float64{10, 1, 4})
	if got := l.At(0.35); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("At(0.35) = %g, want 2.5 (midpoint of 1 and 4)", got)
	}
	lo, hi := l.Domain()
	if lo != 0.2 || hi != 0.9 {
		t.Fatalf("Domain = [%g,%g]", lo, hi)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestLUTMonotonePreserved(t *testing.T) {
	// A table with increasing y must interpolate monotonically.
	xs := []float64{0.23, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95}
	ys := []float64{0.22, 0.56, 1.40, 2.75, 4.90, 8.00, 12.2, 17.8, 21.1}
	l := MustLUT(xs, ys)
	prev := math.Inf(-1)
	for v := 0.2; v <= 1.0; v += 0.001 {
		y := l.At(v)
		if y < prev-1e-12 {
			t.Fatalf("interpolation not monotone at %g", v)
		}
		prev = y
	}
}

func TestLUTWithinEnvelopeProperty(t *testing.T) {
	// Interpolated values always lie within [min(y), max(y)].
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + rng.Float64()*0.5
			ys[i] = rng.NormFloat64() * 10
		}
		l, err := NewLUT(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		loY, hiY := math.Inf(1), math.Inf(-1)
		for _, y := range ys {
			loY = math.Min(loY, y)
			hiY = math.Max(hiY, y)
		}
		for probe := 0; probe < 100; probe++ {
			x := -1 + rng.Float64()*float64(n+2)
			y := l.At(x)
			if y < loY-1e-9 || y > hiY+1e-9 {
				t.Fatalf("At(%g) = %g outside [%g,%g]", x, y, loY, hiY)
			}
		}
	}
}

func TestLUTAtQuickNeverNaN(t *testing.T) {
	l := MustLUT([]float64{0, 1, 2}, []float64{5, -3, 8})
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		return !math.IsNaN(l.At(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
