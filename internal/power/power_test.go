package power

import (
	"math"
	"testing"
	"testing/quick"
)

func testDVFS() DVFS {
	return DVFS{
		FMax: 2e9, FMin: 0.8e9,
		VNom: 1.10, VMin: 0.60, VT: 0.55, Alpha: 2.0,
	}
}

func testModel() Model {
	return Model{
		DVFS: testDVFS(), CEff: 4.6e-9,
		LeakNom: 0.9, LeakExp: 1.5, IdleAct: 0.03,
	}
}

func TestDVFSValidate(t *testing.T) {
	good := testDVFS()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid envelope rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*DVFS)
	}{
		{"zero fmax", func(d *DVFS) { d.FMax = 0 }},
		{"fmin over fmax", func(d *DVFS) { d.FMin = d.FMax * 2 }},
		{"vnom below vt", func(d *DVFS) { d.VNom = d.VT }},
		{"vmin below vt", func(d *DVFS) { d.VMin = d.VT - 0.1 }},
		{"vmin above vnom", func(d *DVFS) { d.VMin = d.VNom + 0.1 }},
		{"zero alpha", func(d *DVFS) { d.Alpha = 0 }},
	}
	for _, c := range cases {
		d := testDVFS()
		c.mut(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestFreqAtNominalIsFMax(t *testing.T) {
	d := testDVFS()
	if got := d.Freq(d.VNom); math.Abs(got-d.FMax) > 1 {
		t.Fatalf("Freq(VNom) = %g, want FMax %g", got, d.FMax)
	}
}

func TestFreqBelowVMinIsZero(t *testing.T) {
	d := testDVFS()
	if got := d.Freq(d.VMin - 0.01); got != 0 {
		t.Fatalf("Freq below VMin = %g, want 0", got)
	}
	if got := d.Freq(d.VT); got != 0 {
		t.Fatalf("Freq at threshold = %g, want 0", got)
	}
}

func TestFreqClampedToRange(t *testing.T) {
	d := testDVFS()
	if got := d.Freq(5.0); got != d.FMax {
		t.Fatalf("Freq(5V) = %g, want clamp at FMax", got)
	}
	// Just above VMin the alpha-power value is tiny, so FMin clamps.
	if got := d.Freq(d.VMin + 0.001); got != d.FMin {
		t.Fatalf("Freq near VMin = %g, want FMin %g", got, d.FMin)
	}
}

func TestFreqMonotone(t *testing.T) {
	d := testDVFS()
	prev := 0.0
	for v := d.VMin; v <= d.VNom+0.2; v += 0.005 {
		f := d.Freq(v)
		if f < prev-1e-6 {
			t.Fatalf("Freq not monotone at %g: %g < %g", v, f, prev)
		}
		prev = f
	}
}

func TestFreqMonotoneProperty(t *testing.T) {
	d := testDVFS()
	f := func(a, b uint16) bool {
		v1 := d.VMin + float64(a)/65535*(d.VNom-d.VMin)
		v2 := d.VMin + float64(b)/65535*(d.VNom-d.VMin)
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		return d.Freq(v1) <= d.Freq(v2)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVoltageForInverse(t *testing.T) {
	d := testDVFS()
	for _, f := range []float64{0.9e9, 1.2e9, 1.5e9, 1.9e9} {
		v := d.VoltageFor(f)
		got := d.Freq(v)
		if math.Abs(got-f)/f > 1e-6 {
			t.Errorf("Freq(VoltageFor(%g)) = %g", f, got)
		}
	}
}

func TestVoltageForExtremes(t *testing.T) {
	d := testDVFS()
	if got := d.VoltageFor(d.FMax * 2); got != d.VNom {
		t.Fatalf("VoltageFor above FMax = %g, want VNom", got)
	}
	if got := d.VoltageFor(0); got != d.VMin {
		t.Fatalf("VoltageFor(0) = %g, want VMin", got)
	}
}

func TestModelValidate(t *testing.T) {
	m := testModel()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Model)
	}{
		{"zero ceff", func(m *Model) { m.CEff = 0 }},
		{"negative leak", func(m *Model) { m.LeakNom = -1 }},
		{"negative leak exp", func(m *Model) { m.LeakExp = -1 }},
		{"idle out of range", func(m *Model) { m.IdleAct = 1.5 }},
		{"bad dvfs", func(m *Model) { m.DVFS.Alpha = -1 }},
	}
	for _, c := range cases {
		m := testModel()
		c.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestDynamicScalesWithActivity(t *testing.T) {
	m := testModel()
	v, f := 0.95, m.DVFS.Freq(0.95)
	lo := m.Dynamic(v, f, 0.2)
	hi := m.Dynamic(v, f, 0.8)
	if math.Abs(hi/lo-4) > 1e-9 {
		t.Fatalf("dynamic power not linear in activity: %g vs %g", lo, hi)
	}
}

func TestDynamicActivityClamps(t *testing.T) {
	m := testModel()
	v, f := 0.95, m.DVFS.Freq(0.95)
	if got, floor := m.Dynamic(v, f, 0), m.Dynamic(v, f, m.IdleAct); got != floor {
		t.Fatalf("activity 0 should clamp to idle floor: %g vs %g", got, floor)
	}
	if got, cap := m.Dynamic(v, f, 2), m.Dynamic(v, f, 1); got != cap {
		t.Fatalf("activity 2 should clamp to 1: %g vs %g", got, cap)
	}
}

func TestDynamicQuadraticInVoltage(t *testing.T) {
	m := testModel()
	// At fixed frequency, dynamic power must scale exactly with V².
	f := 1e9
	p1 := m.Dynamic(0.8, f, 0.5)
	p2 := m.Dynamic(1.6, f, 0.5)
	if math.Abs(p2/p1-4) > 1e-9 {
		t.Fatalf("V² scaling broken: ratio %g", p2/p1)
	}
}

func TestLeakage(t *testing.T) {
	m := testModel()
	if got := m.Leakage(m.DVFS.VNom); math.Abs(got-m.LeakNom) > 1e-12 {
		t.Fatalf("Leakage(VNom) = %g, want %g", got, m.LeakNom)
	}
	if got := m.Leakage(0); got != 0 {
		t.Fatalf("Leakage(0) = %g, want 0", got)
	}
	if got := m.Leakage(-1); got != 0 {
		t.Fatalf("Leakage(-1) = %g, want 0", got)
	}
	if m.Leakage(0.8) >= m.Leakage(1.0) {
		t.Fatal("leakage should grow with voltage")
	}
}

func TestTotalMonotoneInVoltage(t *testing.T) {
	m := testModel()
	prev := 0.0
	for v := m.DVFS.VMin; v <= m.DVFS.VNom; v += 0.01 {
		p := m.Total(v, 0.6)
		if p < prev-1e-9 {
			t.Fatalf("total power not monotone at %g V", v)
		}
		prev = p
	}
}

func TestTotalPositiveProperty(t *testing.T) {
	m := testModel()
	f := func(vRaw, actRaw uint16) bool {
		v := 0.3 + float64(vRaw)/65535*1.2
		act := float64(actRaw) / 65535
		return m.Total(v, act) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
