package energy

import (
	"math"
	"testing"

	"hcapp/internal/sched"
	"hcapp/internal/sim"
)

// fakeMeter is a scripted UnitMeter: tests set act/watts between steps.
type fakeMeter struct {
	act   []float64
	watts []float64
}

func (m *fakeMeter) Units() int { return len(m.act) }

func (m *fakeMeter) ReadUnitSamples(act, watts []float64) {
	copy(act, m.act)
	copy(watts, m.watts)
}

func step(l *Ledger, now sim.Time, total float64, powers ...float64) {
	ds := make([]sched.DomainSample, len(powers))
	for i, p := range powers {
		ds[i].Power = p
	}
	l.ObserveStep(now, total, ds)
}

func TestLedgerActivityShareAttribution(t *testing.T) {
	m := &fakeMeter{act: []float64{3, 1}, watts: []float64{2.5, 0.5}}
	l := NewLedger([]SlotConfig{
		{Domain: "cpu", Benchmark: "bench", UnitLabel: "core", Meter: m},
	})

	// One 1 µs step at 4 W domain power: 4e-6 J split 3:1.
	step(l, sim.Microsecond, 4, 4)

	s := l.Summary()
	if s.Steps != 1 {
		t.Fatalf("steps = %d, want 1", s.Steps)
	}
	dt := sim.Seconds(sim.Microsecond)
	wantTotal := 4 * dt
	if math.Abs(s.TotalJ-wantTotal) > 1e-18 {
		t.Fatalf("TotalJ = %g, want %g", s.TotalJ, wantTotal)
	}
	if len(s.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(s.Components))
	}
	c0, c1 := s.Components[0], s.Components[1]
	if c0.Component != "cpu/core0" || c1.Component != "cpu/core1" {
		t.Fatalf("component names = %q, %q", c0.Component, c1.Component)
	}
	if c0.Benchmark != "bench" {
		t.Fatalf("benchmark = %q", c0.Benchmark)
	}
	if math.Abs(c0.AttributedJ-3*dt) > 1e-18 {
		t.Errorf("core0 attributed = %g, want %g", c0.AttributedJ, 3*dt)
	}
	if math.Abs(c1.AttributedJ-1*dt) > 1e-18 {
		t.Errorf("core1 attributed = %g, want %g", c1.AttributedJ, 1*dt)
	}
	// Ground truth integrates the scripted unit powers directly.
	if math.Abs(c0.TrueJ-2.5*dt) > 1e-18 || math.Abs(c1.TrueJ-0.5*dt) > 1e-18 {
		t.Errorf("ground truth = %g, %g; want %g, %g", c0.TrueJ, c1.TrueJ, 2.5*dt, 0.5*dt)
	}
	// Uncore = domain − Σ unit power = (4 − 3) W worth of energy.
	d := s.Domains[0]
	if math.Abs(d.UncoreJ-1*dt) > 1e-18 {
		t.Errorf("uncore = %g, want %g", d.UncoreJ, 1*dt)
	}
}

func TestLedgerEqualSplitWhenIdle(t *testing.T) {
	m := &fakeMeter{act: []float64{0, 0, 0, 0}, watts: []float64{0, 0, 0, 0}}
	l := NewLedger([]SlotConfig{
		{Domain: "gpu", Benchmark: "b", UnitLabel: "sm", Meter: m},
	})
	step(l, sim.Microsecond, 2, 2) // leakage-only step: all units idle

	s := l.Summary()
	dt := sim.Seconds(sim.Microsecond)
	for i, c := range s.Components {
		want := 2 * dt / 4
		if math.Abs(c.AttributedJ-want) > 1e-18 {
			t.Errorf("unit %d attributed = %g, want equal split %g", i, c.AttributedJ, want)
		}
	}
}

func TestLedgerConservationExactByConstruction(t *testing.T) {
	// Awkward activity values whose shares do not sum cleanly in float:
	// the remainder-to-last-unit rule must still conserve exactly.
	m := &fakeMeter{act: []float64{0.1, 0.2, 0.3}, watts: []float64{1, 1, 1}}
	l := NewLedger([]SlotConfig{
		{Domain: "cpu", Benchmark: "b", UnitLabel: "core", Meter: m},
	})
	now := sim.Time(0)
	for i := 0; i < 1000; i++ {
		now += 100 * sim.Nanosecond
		m.act[0] = 0.1 + float64(i%7)*0.013
		m.act[2] = 0.3 + float64(i%5)*0.021
		step(l, now, 3.7, 3.7)
	}
	s := l.Summary()
	// Each step's shares sum to that step's ej exactly, but the per-unit
	// accumulators sum across steps in a different order than domainJ, so
	// the totals agree to rounding (~1e-14 relative), far inside the 1e-9
	// bound the experiment suite enforces.
	if e := s.ConservationError(); e > 1e-12 {
		t.Fatalf("ConservationError = %g, want <= 1e-12", e)
	}
}

func TestLedgerUnmeteredSlot(t *testing.T) {
	l := NewLedger([]SlotConfig{
		{Domain: "mem", Benchmark: "static"},
	})
	step(l, sim.Microsecond, 1.5, 1.5)
	step(l, 2*sim.Microsecond, 1.5, 1.5)

	s := l.Summary()
	c := s.Components[0]
	if c.Component != "mem" {
		t.Fatalf("component = %q, want bare domain name", c.Component)
	}
	if c.AttributedJ != c.TrueJ || c.AttributedJ != s.Domains[0].EnergyJ {
		t.Fatalf("unmetered slot not exact: att=%g gt=%g domain=%g",
			c.AttributedJ, c.TrueJ, s.Domains[0].EnergyJ)
	}
	if s.Domains[0].UncoreJ != 0 {
		t.Fatalf("unmetered uncore = %g, want 0", s.Domains[0].UncoreJ)
	}
}

func TestLedgerAccuracy(t *testing.T) {
	// Units draw 2 W and 1 W but report equal activity, so the share
	// split charges each half the 4 W domain. The ideal splits the 1 W
	// uncore pro-rata by true energy: ideal charges are 8/3 and 4/3.
	m := &fakeMeter{act: []float64{1, 1}, watts: []float64{2, 1}}
	l := NewLedger([]SlotConfig{
		{Domain: "cpu", Benchmark: "b", UnitLabel: "core", Meter: m},
	})
	step(l, sim.Microsecond, 4, 4)

	accs := l.Summary().Accuracy()
	if len(accs) != 1 {
		t.Fatalf("accuracy rows = %d", len(accs))
	}
	a := accs[0]
	if math.Abs(a.UncoreFrac-0.25) > 1e-12 {
		t.Errorf("UncoreFrac = %g, want 0.25", a.UncoreFrac)
	}
	// att = {2, 2} (equal split of 4); ideal = {8/3, 4/3}.
	// misattr = (|2-8/3| + |2-4/3|) / (2*4) = (4/3)/8 = 1/6.
	if math.Abs(a.MisattrFrac-1.0/6) > 1e-12 {
		t.Errorf("MisattrFrac = %g, want %g", a.MisattrFrac, 1.0/6)
	}
	// Worst unit: |2-4/3|/(4/3) = 0.5.
	if math.Abs(a.MaxUnitErr-0.5) > 1e-12 {
		t.Errorf("MaxUnitErr = %g, want 0.5", a.MaxUnitErr)
	}
}

func TestLedgerReset(t *testing.T) {
	m := &fakeMeter{act: []float64{1}, watts: []float64{1}}
	l := NewLedger([]SlotConfig{{Domain: "cpu", Benchmark: "b", Meter: m}})
	step(l, sim.Microsecond, 2, 2)
	l.Reset()
	s := l.Summary()
	if s.TotalJ != 0 || s.Steps != 0 {
		t.Fatalf("after Reset: TotalJ=%g Steps=%d", s.TotalJ, s.Steps)
	}
	for _, c := range s.Components {
		if c.AttributedJ != 0 || c.TrueJ != 0 {
			t.Fatalf("after Reset: component %q att=%g gt=%g", c.Component, c.AttributedJ, c.TrueJ)
		}
	}
	// Post-reset time base restarts at zero, same as a fresh ledger.
	step(l, sim.Microsecond, 2, 2)
	if got := l.Summary().TotalJ; math.Abs(got-2*sim.Seconds(sim.Microsecond)) > 1e-18 {
		t.Fatalf("post-reset step TotalJ = %g", got)
	}
}

func TestObserversTee(t *testing.T) {
	m := &fakeMeter{act: []float64{1}, watts: []float64{1}}
	a := NewLedger([]SlotConfig{{Domain: "cpu", Benchmark: "b", Meter: m}})
	b := NewLedger([]SlotConfig{{Domain: "cpu", Benchmark: "b", Meter: m}})

	if sched.Observers() != nil {
		t.Fatal("Observers() of nothing should be nil")
	}
	if got := sched.Observers(nil, a, nil); got != sched.StepObserver(a) {
		t.Fatal("single non-nil observer should pass through unchanged")
	}

	tee := sched.Observers(a, b)
	tee.ObserveStep(sim.Microsecond, 2, []sched.DomainSample{{Power: 2}})
	if a.Summary().Steps != 1 || b.Summary().Steps != 1 {
		t.Fatalf("tee did not reach both observers: %d, %d",
			a.Summary().Steps, b.Summary().Steps)
	}
}
