package energy

import (
	"sort"
	"sync"

	"hcapp/internal/telemetry"
)

// Tombstone label values: evicted series fold into these aggregates so
// the family's summed value never decreases and scrape cardinality stays
// bounded no matter how many distinct benchmarks or tenants flow through.
const (
	TombstoneBenchmark = "other"
	TombstoneTenant    = "other"
)

// Default retention caps. Component cardinality is bounded by the
// package topology (~25 units), so the series cap really bounds the
// benchmark dimension; the tenant cap bounds the chargeback table.
const (
	DefaultMaxSeries  = 256
	DefaultMaxTenants = 64
)

// CollectorConfig sizes the retention policy. Zero fields take the
// defaults above.
type CollectorConfig struct {
	MaxSeries  int
	MaxTenants int
}

type seriesKey struct{ component, benchmark string }

type seriesState struct {
	joules  float64
	touched uint64 // record clock of last update (LRU eviction order)
}

type tenantState struct {
	joules  float64
	jobs    int64
	domains map[string]float64
	touched uint64
}

// Collector rolls ledger summaries into Prometheus counters
// (hcapp_energy_joules_total{component,benchmark} and
// hcapp_tenant_energy_joules_total{tenant}) and keeps the per-tenant
// chargeback table served by GET /v1/energy.
//
// Retention: when a Record pushes the live set past the cap, the
// least-recently-recorded series is folded into its tombstone — the
// tombstone is incremented BEFORE the victim series is deleted, so a
// concurrent scrape can see a joule twice during the swap but never not
// at all: the family's summed value is monotonic. Tombstones themselves
// are never evicted.
type Collector struct {
	mu             sync.Mutex
	cfg            CollectorConfig
	components     *telemetry.CounterVec
	tenants        *telemetry.CounterVec
	series         map[seriesKey]*seriesState
	tenantTab      map[string]*tenantState
	clock          uint64
	totalJ         float64
	jobs           int64
	evictedSeries  int64
	evictedTenants int64
}

// NewCollector registers the energy counter families on reg and returns
// a collector enforcing the configured retention caps.
func NewCollector(reg *telemetry.Registry, cfg CollectorConfig) *Collector {
	if cfg.MaxSeries <= 0 {
		cfg.MaxSeries = DefaultMaxSeries
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = DefaultMaxTenants
	}
	return &Collector{
		cfg: cfg,
		components: reg.Counter("hcapp_energy_joules_total",
			"Attributed energy per component and benchmark; evicted series fold into benchmark=\"other\".",
			"component", "benchmark"),
		tenants: reg.Counter("hcapp_tenant_energy_joules_total",
			"Total package energy charged per tenant; evicted tenants fold into tenant=\"other\".",
			"tenant"),
		series:    make(map[seriesKey]*seriesState),
		tenantTab: make(map[string]*tenantState),
	}
}

// Record charges a run's energy summary to a tenant. An empty tenant is
// charged to "anon". Safe for concurrent use.
func (c *Collector) Record(tenant string, s *Summary) {
	if s == nil {
		return
	}
	if tenant == "" {
		tenant = "anon"
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	for _, ce := range s.Components {
		k := seriesKey{ce.Component, ce.Benchmark}
		st := c.series[k]
		if st == nil {
			st = &seriesState{}
			c.series[k] = st
		}
		st.joules += ce.AttributedJ
		st.touched = c.clock
		if ce.AttributedJ > 0 {
			c.components.With(k.component, k.benchmark).Add(ce.AttributedJ)
		}
	}
	ts := c.tenantTab[tenant]
	if ts == nil {
		ts = &tenantState{domains: make(map[string]float64)}
		c.tenantTab[tenant] = ts
	}
	ts.joules += s.TotalJ
	ts.jobs++
	ts.touched = c.clock
	for _, d := range s.Domains {
		ts.domains[d.Domain] += d.EnergyJ
	}
	if s.TotalJ > 0 {
		c.tenants.With(tenant).Add(s.TotalJ)
	}
	c.totalJ += s.TotalJ
	c.jobs++
	c.evictSeriesLocked()
	c.evictTenantsLocked()
}

func (c *Collector) evictSeriesLocked() {
	for len(c.series) > c.cfg.MaxSeries {
		var vk seriesKey
		var vs *seriesState
		for k, st := range c.series {
			if k.benchmark == TombstoneBenchmark {
				continue // tombstones are retention-exempt
			}
			if vs == nil || st.touched < vs.touched ||
				(st.touched == vs.touched && lessSeriesKey(k, vk)) {
				vk, vs = k, st
			}
		}
		if vs == nil {
			return // only tombstones left; bounded by component count
		}
		tk := seriesKey{vk.component, TombstoneBenchmark}
		ts := c.series[tk]
		if ts == nil {
			ts = &seriesState{}
			c.series[tk] = ts
		}
		ts.joules += vs.joules
		if vs.touched > ts.touched {
			ts.touched = vs.touched
		}
		// Tombstone first, then delete: a scrape between the two counts
		// the evicted joules twice, never zero times — the summed family
		// value stays monotonic across eviction.
		if vs.joules > 0 {
			c.components.With(tk.component, tk.benchmark).Add(vs.joules)
		}
		c.components.Delete(vk.component, vk.benchmark)
		delete(c.series, vk)
		c.evictedSeries++
	}
}

func (c *Collector) evictTenantsLocked() {
	for len(c.tenantTab) > c.cfg.MaxTenants {
		var vk string
		var vs *tenantState
		for k, st := range c.tenantTab {
			if k == TombstoneTenant {
				continue
			}
			if vs == nil || st.touched < vs.touched ||
				(st.touched == vs.touched && k < vk) {
				vk, vs = k, st
			}
		}
		if vs == nil {
			return
		}
		ts := c.tenantTab[TombstoneTenant]
		if ts == nil {
			ts = &tenantState{domains: make(map[string]float64)}
			c.tenantTab[TombstoneTenant] = ts
		}
		ts.joules += vs.joules
		ts.jobs += vs.jobs
		for d, j := range vs.domains {
			ts.domains[d] += j
		}
		if vs.touched > ts.touched {
			ts.touched = vs.touched
		}
		if vs.joules > 0 {
			c.tenants.With(TombstoneTenant).Add(vs.joules)
		}
		c.tenants.Delete(vk)
		delete(c.tenantTab, vk)
		c.evictedTenants++
	}
}

func lessSeriesKey(a, b seriesKey) bool {
	if a.component != b.component {
		return a.component < b.component
	}
	return a.benchmark < b.benchmark
}

// TenantEnergy is one tenant's chargeback row.
type TenantEnergy struct {
	Tenant string `json:"tenant"`
	// Joules is the total package energy (all domains plus VR loss)
	// consumed by the tenant's completed jobs.
	Joules float64 `json:"joules"`
	Jobs   int64   `json:"jobs"`
	// Domains breaks the charge down per power domain.
	Domains map[string]float64 `json:"domains,omitempty"`
}

// ChargebackReport is the GET /v1/energy payload. Tenants are sorted by
// name so the rendering is deterministic.
type ChargebackReport struct {
	TotalJoules    float64        `json:"total_joules"`
	Jobs           int64          `json:"jobs"`
	Tenants        []TenantEnergy `json:"tenants"`
	SeriesLive     int            `json:"series_live"`
	SeriesEvicted  int64          `json:"series_evicted"`
	TenantsEvicted int64          `json:"tenants_evicted"`
}

// Chargeback snapshots the per-tenant accounting.
func (c *Collector) Chargeback() ChargebackReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := ChargebackReport{
		TotalJoules:    c.totalJ,
		Jobs:           c.jobs,
		Tenants:        make([]TenantEnergy, 0, len(c.tenantTab)),
		SeriesLive:     len(c.series),
		SeriesEvicted:  c.evictedSeries,
		TenantsEvicted: c.evictedTenants,
	}
	for name, ts := range c.tenantTab {
		doms := make(map[string]float64, len(ts.domains))
		for d, j := range ts.domains {
			doms[d] = j
		}
		rep.Tenants = append(rep.Tenants, TenantEnergy{
			Tenant:  name,
			Joules:  ts.joules,
			Jobs:    ts.jobs,
			Domains: doms,
		})
	}
	sort.Slice(rep.Tenants, func(i, j int) bool {
		return rep.Tenants[i].Tenant < rep.Tenants[j].Tenant
	})
	return rep
}
