package energy

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hcapp/internal/telemetry"
)

// summaryFor builds a minimal one-component summary charging j joules to
// the given component/benchmark series.
func summaryFor(component, benchmark string, j float64) *Summary {
	return &Summary{
		Components: []ComponentEnergy{{
			Domain: "cpu", Component: component, Benchmark: benchmark,
			AttributedJ: j, TrueJ: j,
		}},
		Domains: []DomainEnergy{{Domain: "cpu", EnergyJ: j, Units: 1}},
		TotalJ:  j,
		Steps:   1,
	}
}

// familySum parses the rendered exposition text and sums every sample of
// the named counter family — the scrape-side view of the family total.
func familySum(t *testing.T, reg *telemetry.Registry, family string) float64 {
	t.Helper()
	sum := 0.0
	sc := bufio.NewScanner(strings.NewReader(reg.Text()))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, family+"{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

func countSeries(t *testing.T, reg *telemetry.Registry, family string) int {
	t.Helper()
	n := 0
	sc := bufio.NewScanner(strings.NewReader(reg.Text()))
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), family+"{") {
			n++
		}
	}
	return n
}

func TestCollectorEvictionKeepsFamilyMonotonic(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCollector(reg, CollectorConfig{MaxSeries: 3, MaxTenants: 2})

	const family = "hcapp_energy_joules_total"
	charged := 0.0
	prevSum := 0.0
	for i := 0; i < 20; i++ {
		j := 1.0 + float64(i)*0.25
		c.Record("t", summaryFor("cpu/core0", fmt.Sprintf("bench-%02d", i), j))
		charged += j

		sum := familySum(t, reg, family)
		if sum < prevSum {
			t.Fatalf("family sum dipped after record %d: %g -> %g", i, prevSum, sum)
		}
		prevSum = sum
		// Between Records the tombstone has fully absorbed each victim, so
		// the scrape total equals everything ever charged — no joule lost.
		if math.Abs(sum-charged) > 1e-9 {
			t.Fatalf("family sum %g != charged %g after record %d", sum, charged, i)
		}
		if n := countSeries(t, reg, family); n > 3 {
			t.Fatalf("live series %d exceeds cap 3 after record %d", n, i)
		}
	}

	// The tombstone aggregate must exist and hold the bulk of the energy.
	if !strings.Contains(reg.Text(), `benchmark="other"`) {
		t.Fatal("expected a benchmark=\"other\" tombstone series after eviction")
	}
	rep := c.Chargeback()
	if rep.SeriesEvicted == 0 {
		t.Fatal("expected evictions with MaxSeries=3")
	}
	if rep.SeriesLive > 3 {
		t.Fatalf("SeriesLive = %d, want <= 3", rep.SeriesLive)
	}
}

func TestCollectorTombstoneExemptFromEviction(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Cap of 1 with one component: after the first eviction only the
	// tombstone fits, and the loop must terminate rather than evict it.
	c := NewCollector(reg, CollectorConfig{MaxSeries: 1, MaxTenants: 1})
	for i := 0; i < 5; i++ {
		c.Record("t", summaryFor("cpu/core0", fmt.Sprintf("b%d", i), 1))
	}
	if got := familySum(t, reg, "hcapp_energy_joules_total"); math.Abs(got-5) > 1e-12 {
		t.Fatalf("family sum = %g, want 5", got)
	}
	if !strings.Contains(reg.Text(), `benchmark="other"`) {
		t.Fatal("tombstone series missing")
	}
}

func TestCollectorTenantEviction(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCollector(reg, CollectorConfig{MaxSeries: 16, MaxTenants: 2})
	for i := 0; i < 6; i++ {
		c.Record(fmt.Sprintf("tenant-%d", i), summaryFor("cpu/core0", "b", 2))
	}

	rep := c.Chargeback()
	if len(rep.Tenants) > 2 {
		t.Fatalf("tenant table %d rows, want <= 2", len(rep.Tenants))
	}
	if rep.TenantsEvicted == 0 {
		t.Fatal("expected tenant evictions")
	}
	// Total charge survives eviction: the tombstone row absorbs victims.
	sum := 0.0
	var other *TenantEnergy
	for i := range rep.Tenants {
		sum += rep.Tenants[i].Joules
		if rep.Tenants[i].Tenant == TombstoneTenant {
			other = &rep.Tenants[i]
		}
	}
	if math.Abs(sum-12) > 1e-12 {
		t.Fatalf("tenant joules sum = %g, want 12", sum)
	}
	if other == nil {
		t.Fatal("expected a tenant=\"other\" tombstone row")
	}
	if other.Domains["cpu"] <= 0 {
		t.Fatalf("tombstone domain rollup = %v", other.Domains)
	}
	if math.Abs(rep.TotalJoules-12) > 1e-12 {
		t.Fatalf("TotalJoules = %g, want 12", rep.TotalJoules)
	}
	// Prometheus side folds the same way.
	if got := familySum(t, reg, "hcapp_tenant_energy_joules_total"); math.Abs(got-12) > 1e-12 {
		t.Fatalf("tenant family sum = %g, want 12", got)
	}
}

func TestCollectorAnonTenant(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCollector(reg, CollectorConfig{})
	c.Record("", summaryFor("cpu/core0", "b", 1))
	rep := c.Chargeback()
	if len(rep.Tenants) != 1 || rep.Tenants[0].Tenant != "anon" {
		t.Fatalf("empty tenant not folded to anon: %+v", rep.Tenants)
	}
}

func TestCollectorNilSummary(t *testing.T) {
	c := NewCollector(telemetry.NewRegistry(), CollectorConfig{})
	c.Record("t", nil) // must not panic or charge anything
	if rep := c.Chargeback(); rep.Jobs != 0 {
		t.Fatalf("nil summary charged: %+v", rep)
	}
}

func TestCollectorConcurrentRecord(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCollector(reg, CollectorConfig{MaxSeries: 4, MaxTenants: 3})

	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tenant := fmt.Sprintf("tenant-%d", (w+i)%5)
				bench := fmt.Sprintf("bench-%d", i%9)
				c.Record(tenant, summaryFor("cpu/core0", bench, 0.5))
				if i%10 == 0 {
					_ = c.Chargeback()
					_ = reg.Text()
				}
			}
		}(w)
	}
	wg.Wait()

	want := float64(workers*perWorker) * 0.5
	rep := c.Chargeback()
	if math.Abs(rep.TotalJoules-want) > 1e-9 {
		t.Fatalf("TotalJoules = %g, want %g", rep.TotalJoules, want)
	}
	if got := familySum(t, reg, "hcapp_energy_joules_total"); math.Abs(got-want) > 1e-9 {
		t.Fatalf("component family sum = %g, want %g", got, want)
	}
	if got := familySum(t, reg, "hcapp_tenant_energy_joules_total"); math.Abs(got-want) > 1e-9 {
		t.Fatalf("tenant family sum = %g, want %g", got, want)
	}
}
