// Package energy implements per-workload energy attribution for the
// simulated package: who consumed how many joules, on which chiplet,
// running which benchmark.
//
// The Ledger hangs off the sched.StepObserver hook and integrates each
// power domain's draw every step. Because unit-level power is usually
// not measurable on real silicon (only the domain rail is), the ledger
// splits each domain's energy across its execution units by activity
// share — the GPU-exporter estimator,
//
//	energy = power × interval × (util / Σ util)
//
// — while a parallel ground-truth accumulator integrates the true
// per-unit power the simulator knows, so the attribution error of the
// share-based estimate is measurable. The Collector (collector.go) rolls
// ledger summaries into bounded-cardinality Prometheus counters and
// per-tenant chargeback accounts for hcapp-serve.
package energy

import (
	"fmt"
	"math"

	"hcapp/internal/sched"
	"hcapp/internal/sim"
)

// UnitMeter is the read side of a multi-unit component's per-step
// sampling: one bulk read per domain per step, not a call per unit, so
// the observer path stays under the <5% overhead budget.
// chiplet.Chiplet (after EnableUnitMeter) and accelsim.Accel satisfy it.
type UnitMeter interface {
	Units() int
	// ReadUnitSamples copies each unit's most recent step activity and
	// power into act and watts (len >= Units()).
	ReadUnitSamples(act, watts []float64)
}

// SlotConfig binds one engine slot (in sched slot order) to its meter
// and labels. A nil Meter treats the domain as a single directly-metered
// unit (e.g. the constant memory domain): attribution is trivially exact.
type SlotConfig struct {
	// Domain is the power-domain name ("cpu", "gpu", "sha", "mem").
	Domain string
	// Benchmark labels the workload driving the domain (the Table 3
	// proxy name, "sha256", or "static").
	Benchmark string
	// UnitLabel names units "Domain/UnitLabel<i>" ("core" → "cpu/core0").
	// Empty labels a single-unit domain by its domain name alone.
	UnitLabel string
	Meter     UnitMeter
}

type slotState struct {
	cfg     SlotConfig
	names   []string  // per-unit component labels, fixed at construction
	att     []float64 // attributed joules (share-based split of domain energy)
	gt      []float64 // ground-truth joules (∫ true unit power)
	actBuf  []float64
	pwrBuf  []float64
	domainJ float64 // ∫ domain power — includes uncore the units can't see
}

// Ledger integrates attributed and ground-truth energy per unit. It
// implements sched.StepObserver, runs on the simulation goroutine, and
// is passive: it never touches simulation state, so attaching it cannot
// perturb the bit-exact simulation floats.
type Ledger struct {
	slots  []slotState
	lastT  sim.Time
	totalJ float64
	steps  int64
}

// NewLedger builds a ledger for the given slots, which must mirror the
// engine's sched slot order (ObserveStep samples are index-aligned).
func NewLedger(slots []SlotConfig) *Ledger {
	l := &Ledger{slots: make([]slotState, len(slots))}
	for i, sc := range slots {
		n := 1
		if sc.Meter != nil {
			n = sc.Meter.Units()
		}
		st := &l.slots[i]
		st.cfg = sc
		st.names = make([]string, n)
		for u := 0; u < n; u++ {
			if sc.UnitLabel == "" {
				st.names[u] = sc.Domain
				if n > 1 {
					st.names[u] = fmt.Sprintf("%s/%d", sc.Domain, u)
				}
			} else {
				st.names[u] = fmt.Sprintf("%s/%s%d", sc.Domain, sc.UnitLabel, u)
			}
		}
		st.att = make([]float64, n)
		st.gt = make([]float64, n)
		st.actBuf = make([]float64, n)
		st.pwrBuf = make([]float64, n)
	}
	return l
}

// ObserveStep implements sched.StepObserver.
func (l *Ledger) ObserveStep(now sim.Time, totalPower float64, domains []sched.DomainSample) {
	dt := sim.Seconds(now - l.lastT)
	l.lastT = now
	l.totalJ += totalPower * dt
	l.steps++
	n := len(l.slots)
	if len(domains) < n {
		n = len(domains)
	}
	for i := 0; i < n; i++ {
		st := &l.slots[i]
		ej := domains[i].Power * dt
		st.domainJ += ej
		m := st.cfg.Meter
		if m == nil {
			st.att[0] += ej
			st.gt[0] += ej
			continue
		}
		act, pwr := st.actBuf, st.pwrBuf
		m.ReadUnitSamples(act, pwr)
		actSum := 0.0
		for u := range act {
			actSum += act[u]
			st.gt[u] += pwr[u] * dt
		}
		// Split the step's domain energy by activity share (equal split
		// when everything is idle), assigning the remainder to the last
		// unit: each step's shares then sum to ej exactly, so the
		// accumulated per-domain mismatch (Σ attributed vs ∫ domain
		// power) stays at summation-rounding level instead of growing
		// with the share arithmetic.
		last := len(act) - 1
		assigned := 0.0
		if actSum > 0 {
			inv := ej / actSum
			for u := 0; u < last; u++ {
				e := act[u] * inv
				st.att[u] += e
				assigned += e
			}
		} else {
			eq := ej / float64(last+1)
			for u := 0; u < last; u++ {
				st.att[u] += eq
				assigned += eq
			}
		}
		st.att[last] += ej - assigned
	}
}

// ComponentEnergy is one unit's accumulated energy in a Summary.
type ComponentEnergy struct {
	Domain      string  `json:"domain"`
	Component   string  `json:"component"`
	Benchmark   string  `json:"benchmark"`
	AttributedJ float64 `json:"attributed_j"`
	TrueJ       float64 `json:"true_j"`
}

// DomainEnergy is one power domain's accumulated energy in a Summary.
// UncoreJ is the integrated domain energy no unit meter accounts for
// (shared uncore logic) — the irreducible ambiguity attribution faces.
type DomainEnergy struct {
	Domain  string  `json:"domain"`
	EnergyJ float64 `json:"energy_j"`
	UncoreJ float64 `json:"uncore_j"`
	Units   int     `json:"units"`
}

// Summary is a ledger snapshot: plain data with deterministic ordering
// (slot order, then unit index) that marshals to JSON for the cluster
// wire and the chargeback API.
type Summary struct {
	Components []ComponentEnergy `json:"components"`
	Domains    []DomainEnergy    `json:"domains"`
	TotalJ     float64           `json:"total_j"`
	Steps      int64             `json:"steps"`
}

// Summary snapshots the ledger. Call it after the run; it allocates.
func (l *Ledger) Summary() *Summary {
	s := &Summary{
		Components: make([]ComponentEnergy, 0, l.unitCount()),
		Domains:    make([]DomainEnergy, 0, len(l.slots)),
		TotalJ:     l.totalJ,
		Steps:      l.steps,
	}
	for i := range l.slots {
		st := &l.slots[i]
		gtSum := 0.0
		for u := range st.names {
			s.Components = append(s.Components, ComponentEnergy{
				Domain:      st.cfg.Domain,
				Component:   st.names[u],
				Benchmark:   st.cfg.Benchmark,
				AttributedJ: st.att[u],
				TrueJ:       st.gt[u],
			})
			gtSum += st.gt[u]
		}
		s.Domains = append(s.Domains, DomainEnergy{
			Domain:  st.cfg.Domain,
			EnergyJ: st.domainJ,
			UncoreJ: st.domainJ - gtSum,
			Units:   len(st.names),
		})
	}
	return s
}

func (l *Ledger) unitCount() int {
	n := 0
	for i := range l.slots {
		n += len(l.slots[i].names)
	}
	return n
}

// Reset clears the ledger for a fresh run.
func (l *Ledger) Reset() {
	l.lastT = 0
	l.totalJ = 0
	l.steps = 0
	for i := range l.slots {
		st := &l.slots[i]
		st.domainJ = 0
		for u := range st.att {
			st.att[u] = 0
			st.gt[u] = 0
		}
	}
}

// ConservationError returns the worst per-domain relative mismatch
// between summed attributed joules and the integrated domain energy.
// The ledger assigns per-step remainders explicitly, so this should sit
// at rounding level (well under 1e-9, test-enforced) — anything larger
// means the accounting leaks energy.
func (s *Summary) ConservationError() float64 {
	worst := 0.0
	for _, d := range s.Domains {
		attSum := 0.0
		for _, c := range s.Components {
			if c.Domain == d.Domain {
				attSum += c.AttributedJ
			}
		}
		if d.EnergyJ == 0 {
			if attSum != 0 {
				return math.Inf(1)
			}
			continue
		}
		if e := math.Abs(attSum-d.EnergyJ) / math.Abs(d.EnergyJ); e > worst {
			worst = e
		}
	}
	return worst
}

// DomainAccuracy grades share-based attribution against the chargeback
// ideal for one domain. The ideal charges each unit its true integrated
// energy plus a pro-rata (by true energy) share of the domain's uncore.
type DomainAccuracy struct {
	Domain  string  `json:"domain"`
	EnergyJ float64 `json:"energy_j"`
	// UncoreFrac is the fraction of domain energy no unit meter covers.
	UncoreFrac float64 `json:"uncore_frac"`
	// MisattrFrac is the fraction of domain energy charged to the wrong
	// unit: Σ|attributed − ideal| / (2 × domain energy). Zero is perfect;
	// the halving counts each misplaced joule once, not at both ends.
	MisattrFrac float64 `json:"misattr_frac"`
	// MaxUnitErr is the worst per-unit relative error vs the ideal.
	MaxUnitErr float64 `json:"max_unit_err"`
}

// Accuracy computes per-domain attribution accuracy, in domain order.
func (s *Summary) Accuracy() []DomainAccuracy {
	out := make([]DomainAccuracy, 0, len(s.Domains))
	for _, d := range s.Domains {
		acc := DomainAccuracy{Domain: d.Domain, EnergyJ: d.EnergyJ}
		if d.EnergyJ <= 0 {
			out = append(out, acc)
			continue
		}
		acc.UncoreFrac = d.UncoreJ / d.EnergyJ
		gtSum := 0.0
		units := 0
		for _, c := range s.Components {
			if c.Domain == d.Domain {
				gtSum += c.TrueJ
				units++
			}
		}
		misattr := 0.0
		for _, c := range s.Components {
			if c.Domain != d.Domain {
				continue
			}
			ideal := c.TrueJ
			if gtSum > 0 {
				ideal += d.UncoreJ * (c.TrueJ / gtSum)
			} else {
				ideal += d.UncoreJ / float64(units)
			}
			diff := math.Abs(c.AttributedJ - ideal)
			misattr += diff
			if ideal > 0 {
				if e := diff / ideal; e > acc.MaxUnitErr {
					acc.MaxUnitErr = e
				}
			}
		}
		acc.MisattrFrac = misattr / (2 * d.EnergyJ)
		out = append(out, acc)
	}
	return out
}
