// Package sim defines the shared vocabulary of the HCAPP co-simulation:
// simulated time, the Component interface implemented by every chiplet
// model, and the per-step result record.
//
// Keeping these types in a leaf package lets the chiplet simulators
// (internal/cpusim, internal/gpusim, internal/accelsim), the control
// hierarchy (internal/core) and the engine (internal/sched) depend on a
// common contract without import cycles.
package sim

import "fmt"

// Time is simulated time in integer nanoseconds. Integer time keeps the
// engine exactly reproducible: there is no accumulation of floating-point
// error across the millions of steps in a run.
type Time = int64

// Convenient duration units, all in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// FormatTime renders a simulated timestamp with a human-friendly unit.
func FormatTime(t Time) string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", t)
	}
}

// Seconds converts a simulated duration to floating-point seconds.
func Seconds(t Time) float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to simulated time, rounding
// to the nearest nanosecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// StepResult reports what a component did during one engine timestep.
type StepResult struct {
	// Power is the total power drawn by the component over the step, in
	// watts (average over the step).
	Power float64
	// Work is the number of abstract work units completed during the
	// step (instructions for CPU/GPU, bytes hashed for the accelerator).
	Work float64
}

// Component is a power-consuming element of the 2.5D package: a CPU
// chiplet, a GPU chiplet, an accelerator, or a fixed-function domain such
// as memory. The engine supplies the component's domain voltage each step;
// the component applies its own local controller (if any) internally.
type Component interface {
	// Name identifies the component in traces and reports.
	Name() string
	// Step advances the component by dt ending at time now, powered at
	// domain voltage vdd (volts), and reports power drawn and work done.
	Step(now Time, dt Time, vdd float64) StepResult
	// Done reports whether the component has finished its assigned work.
	// Finished components may still draw idle power.
	Done() bool
	// Progress reports the fraction of assigned work completed, in [0,1].
	Progress() float64
}

// Resetter is implemented by components that can be rewound to their
// initial state so a single system can be reused across runs.
type Resetter interface{ Reset() }

// BulkStepper is implemented by components that can prove a run of
// future steps will be bitwise identical to the last one and replay
// them in bulk. It powers the engine's adaptive stepping mode.
type BulkStepper interface {
	// SteadyFor returns the maximum number of consecutive future
	// Step(now+k·dt, dt, vdd) calls (k = 1..n) guaranteed to return
	// exactly the result of the last Step and to change internal state
	// only by the per-step accumulations StepN replays. Zero disables
	// striding. Implementations must compare against the last step's
	// actual outputs — bitwise — and must bound n conservatively around
	// any internal event (phase boundary, epoch, completion).
	SteadyFor(now Time, dt Time, vdd float64) int64
	// StepN replays n steady steps verified by SteadyFor: per-step
	// accumulators advance by n repetitions of the identical
	// floating-point operation Step performs (never a closed form, which
	// would round differently).
	StepN(now Time, dt Time, vdd float64, n int64)
}

// StepsBefore returns the largest n ≥ 0 such that now + k·dt < event
// for every k in 1..n — the longest stride from now that stays strictly
// before a fire-when-reached event boundary.
func StepsBefore(now, dt, event Time) int64 {
	if event <= now {
		return 0
	}
	return (event - 1 - now) / dt
}
