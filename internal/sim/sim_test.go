package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatTime(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{20 * Microsecond, "20.000µs"},
		{1 * Millisecond, "1.000ms"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := FormatTime(c.in); got != c.want {
			t.Errorf("FormatTime(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	for _, d := range []Time{0, 1, 999, Microsecond, Millisecond, Second, 123456789} {
		if got := FromSeconds(Seconds(d)); got != d {
			t.Errorf("round trip %d -> %d", d, got)
		}
	}
}

func TestSecondsRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		d := Time(raw)
		return FromSeconds(Seconds(d)) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSecondsValues(t *testing.T) {
	if got := Seconds(1500 * Microsecond); math.Abs(got-0.0015) > 1e-15 {
		t.Fatalf("Seconds = %g", got)
	}
	if got := FromSeconds(1e-6); got != Microsecond {
		t.Fatalf("FromSeconds(1e-6) = %d", got)
	}
}

func TestUnitRelations(t *testing.T) {
	if Microsecond != 1000*Nanosecond || Millisecond != 1000*Microsecond || Second != 1000*Millisecond {
		t.Fatal("unit ladder broken")
	}
}
