package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hcapp/internal/experiment"
	"hcapp/internal/sim"
	"hcapp/internal/telemetry"
)

// seedOf builds the explicit-seed pointer JobRequest.Seed wants.
func seedOf(v int64) *int64 { return &v }

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (JobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func waitForJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// TestEndToEnd is the acceptance path: submit a small experiment job
// over HTTP, poll it to completion, check the result against a direct
// internal/experiment run with the same seed, and require /metrics to
// parse as Prometheus text with per-chiplet power gauges.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full simulation")
	}
	_, ts := testServer(t, Config{Workers: 2})

	req := JobRequest{Combo: "Mid-Mid", Scheme: "hcapp", Limit: "package-pin", DurMS: 1, Seed: seedOf(42)}
	st, resp := postJob(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state = %q", st.State)
	}

	final := waitForJob(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job failed: %q", final.Error)
	}
	if final.Result == nil {
		t.Fatal("done job has no result")
	}
	if final.StartedAt == nil || final.EndedAt == nil {
		t.Fatal("done job missing timestamps")
	}
	if final.Steps == 0 || final.SimTimeNS == 0 {
		t.Fatalf("done job shows no progress: steps=%d sim=%d", final.Steps, final.SimTimeNS)
	}

	// The same request straight through internal/experiment must agree
	// exactly: same seed, same duration, one deterministic simulation.
	ev := experiment.NewEvaluator().WithTargetDur(1 * sim.Millisecond)
	ev.Cfg.Seed = 42
	spec, _, err := compile(req, 64*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ev.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := final.Result
	if got.MaxWindowPower != want.MaxWindowPower ||
		got.AvgPower != want.AvgPower ||
		got.PPE != want.PPE ||
		got.Violated != want.Violated ||
		got.Completed != want.Completed ||
		got.DurationNS != want.Duration ||
		got.ControlCycles != want.ControlCycles {
		t.Fatalf("served result diverges from direct run:\n got %+v\nwant %+v", got, want)
	}
	for comp, wantT := range want.Completion {
		if got.CompletionNS[comp] != wantT {
			t.Fatalf("completion[%s] = %d, want %d", comp, got.CompletionNS[comp], wantT)
		}
	}

	// Live trace: the job must have published downsampled power samples
	// with positive power.
	var tr traceResponse
	getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/trace", &tr)
	if len(tr.Samples) == 0 {
		t.Fatal("no trace samples")
	}
	for _, s := range tr.Samples[:3] {
		if s.Power <= 0 || s.TNS <= 0 {
			t.Fatalf("bad trace sample %+v", s)
		}
	}
	// Cursor paging.
	var tr2 traceResponse
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%s/trace?offset=%d&limit=5", ts.URL, st.ID, tr.NextOffset-5), &tr2)
	if len(tr2.Samples) != 5 || tr2.NextOffset != tr.NextOffset {
		t.Fatalf("paging: got %d samples, next %d (want 5, %d)", len(tr2.Samples), tr2.NextOffset, tr.NextOffset)
	}

	// /metrics parses as Prometheus text and carries per-chiplet power.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type %q", ct)
	}
	samples, err := telemetry.ParseText(mresp.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v", err)
	}
	m := telemetry.GatherMap(samples)
	for _, dom := range []string{"cpu", "gpu", "sha", "mem"} {
		key := fmt.Sprintf("hcapp_domain_power_watts{domain=%s,job=%s}", dom, st.ID)
		if v, ok := m[key]; !ok {
			t.Fatalf("missing per-chiplet power gauge %s in:\n%v", key, keysLike(m, "domain_power"))
		} else if dom != "sha" && v <= 0 {
			// The SHA accelerator may legitimately idle near zero, but
			// CPU/GPU/mem draw real power at this horizon.
			t.Fatalf("%s = %g, want > 0", key, v)
		}
	}
	if m["hcapp_jobs_completed_total{state=done}"] < 1 {
		t.Fatalf("jobs_completed{done} = %g", m["hcapp_jobs_completed_total{state=done}"])
	}
	if m[fmt.Sprintf("hcapp_sim_steps_total{job=%s}", st.ID)] != float64(final.Steps) {
		t.Fatalf("sim_steps_total = %g, want %d",
			m[fmt.Sprintf("hcapp_sim_steps_total{job=%s}", st.ID)], final.Steps)
	}
	if m[fmt.Sprintf("hcapp_power_limit_watts{job=%s,limit=package-pin}", st.ID)] != 100 {
		t.Fatal("power limit gauge missing or wrong")
	}
	// The job executed through the shared experiment runner, so the
	// per-run scheduler families must report it.
	if m["hcapp_run_duration_seconds_count"] < 1 {
		t.Fatalf("run_duration_seconds_count = %g, want >= 1", m["hcapp_run_duration_seconds_count"])
	}
	if m["hcapp_runs_in_flight"] != 0 || m["hcapp_runs_waiting"] != 0 {
		t.Fatalf("runner gauges nonzero after job completed: in_flight %g, waiting %g",
			m["hcapp_runs_in_flight"], m["hcapp_runs_waiting"])
	}
}

func keysLike(m map[string]float64, frag string) []string {
	var out []string
	for k := range m {
		if strings.Contains(k, frag) {
			out = append(out, k)
		}
	}
	return out
}

func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  JobRequest
		want int
	}{
		{"unknown combo", JobRequest{Combo: "Nope-Nope"}, http.StatusBadRequest},
		{"unknown scheme", JobRequest{Combo: "Hi-Hi", Scheme: "psychic"}, http.StatusBadRequest},
		{"unknown limit", JobRequest{Combo: "Hi-Hi", Limit: "vibes"}, http.StatusBadRequest},
		{"negative duration", JobRequest{Combo: "Hi-Hi", DurMS: -3}, http.StatusBadRequest},
		{"oversize duration", JobRequest{Combo: "Hi-Hi", DurMS: 1e9}, http.StatusBadRequest},
		{"bad priority domain", JobRequest{Combo: "Hi-Hi", Priorities: map[string]float64{"fpu": 2}}, http.StatusBadRequest},
		{"bad policy", JobRequest{Combo: "Hi-Hi", Policy: "anarchy"}, http.StatusBadRequest},
		{"bad fixed_v", JobRequest{Combo: "Hi-Hi", Scheme: "fixed-voltage", FixedV: 9}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if _, resp := postJob(t, ts, c.req); resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}

	// Unknown JSON fields are rejected (catches client typos).
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"combo":"Hi-Hi","comboo":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", resp.StatusCode)
	}

	// Rejections are visible in metrics.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	samples, err := telemetry.ParseText(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := telemetry.GatherMap(samples)
	if m["hcapp_jobs_rejected_total"] < float64(len(cases)+1) {
		t.Fatalf("jobs_rejected_total = %g, want >= %d", m["hcapp_jobs_rejected_total"], len(cases)+1)
	}
}

func TestNotFoundAndMethods(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	if resp := getJSON(t, ts.URL+"/v1/jobs/deadbeef", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/deadbeef", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST to job resource: %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 3, QueueDepth: 7})
	var h healthzResponse
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if h.Status != "ok" || h.Workers != 3 || h.QueueCap != 7 {
		t.Fatalf("healthz = %+v", h)
	}
	_ = s
}

func TestQueueFullShedsLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	// One worker, tiny queue: flooding must produce 429s, not hangs.
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})
	sawReject := false
	var ids []string
	for i := 0; i < 6; i++ {
		st, resp := postJob(t, ts, JobRequest{Combo: "Low-Low", DurMS: 2})
		switch resp.StatusCode {
		case http.StatusAccepted:
			ids = append(ids, st.ID)
		case http.StatusTooManyRequests:
			sawReject = true
			if ra := resp.Header.Get("Retry-After"); ra != "1" {
				t.Fatalf("429 Retry-After = %q, want \"1\"", ra)
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if !sawReject {
		t.Skip("queue drained faster than the flood; nothing shed")
	}
	for _, id := range ids {
		if st := waitForJob(t, ts, id); st.State != StateDone {
			t.Fatalf("accepted job %s ended %q: %s", id, st.State, st.Error)
		}
	}
}

func TestListOrdersNewestFirst(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, ts := testServer(t, Config{Workers: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		st, resp := postJob(t, ts, JobRequest{Combo: "Low-Low", DurMS: 0.2, Seed: seedOf(int64(i + 1))})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d: %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitForJob(t, ts, id)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 3 {
		t.Fatalf("listed %d jobs", len(list.Jobs))
	}
}

// TestGracefulShutdownDrains submits work, begins shutdown, and expects
// (a) the in-flight job to finish, (b) new submissions to be refused.
func TestGracefulShutdownDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	st, resp := postJob(t, ts, JobRequest{Combo: "Low-Low", DurMS: 0.5})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := s.Manager().Submit(JobRequest{Combo: "Low-Low"}); err != ErrShuttingDown {
		t.Fatalf("post-shutdown submit err = %v", err)
	}
	j, ok := s.Manager().Get(st.ID)
	if !ok {
		t.Fatal("job evicted during shutdown")
	}
	if got := j.Status(); got.State != StateDone {
		t.Fatalf("drained job state = %q (%s)", got.State, got.Error)
	}
}

func TestEvictionBoundsJobTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s, ts := testServer(t, Config{Workers: 1, MaxJobs: 2, QueueDepth: 8})
	var ids []string
	for i := 0; i < 4; i++ {
		st, resp := postJob(t, ts, JobRequest{Combo: "Low-Low", DurMS: 0.1, Seed: seedOf(int64(i + 1))})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d: %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
		waitForJob(t, ts, st.ID)
	}
	s.manager.mu.Lock()
	n := len(s.manager.jobs)
	s.manager.mu.Unlock()
	if n > 2 {
		t.Fatalf("job table grew to %d, cap 2", n)
	}
	if _, ok := s.Manager().Get(ids[len(ids)-1]); !ok {
		t.Fatal("newest job evicted")
	}

	// Eviction must also delete the evicted jobs' metric series — the
	// retention cap is what bounds /metrics cardinality.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	samples, err := telemetry.ParseText(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := telemetry.GatherMap(samples)
	for _, id := range ids {
		_, retained := s.Manager().Get(id)
		if got := len(keysLike(m, id)) > 0; got != retained {
			t.Errorf("job %s: retained=%v but has metric series=%v (%v)",
				id, retained, got, keysLike(m, id))
		}
	}
}

// TestSeedResolution: an omitted seed defaults to the paper's 42, and an
// explicit 0 stays 0 so served results match a direct seed-0 run.
func TestSeedResolution(t *testing.T) {
	s, _ := testServer(t, Config{Workers: 1})
	j, err := s.Manager().Submit(JobRequest{Combo: "Low-Low", DurMS: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if j.seed != 42 {
		t.Fatalf("default seed = %d, want 42", j.seed)
	}
	j0, err := s.Manager().Submit(JobRequest{Combo: "Low-Low", DurMS: 0.05, Seed: seedOf(0)})
	if err != nil {
		t.Fatal(err)
	}
	if j0.seed != 0 {
		t.Fatalf("explicit seed 0 resolved to %d", j0.seed)
	}
}

// TestSubmitShutdownRace hammers Submit concurrently with Shutdown: the
// admission path must never send on the closed queue (a panic under the
// old unlocked enqueue), accepted jobs must all drain, and losers must
// see ErrShuttingDown or ErrQueueFull — nothing else.
func TestSubmitShutdownRace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	for round := 0; round < 4; round++ {
		s := New(Config{Workers: 2, QueueDepth: 2})
		var wg sync.WaitGroup
		start := make(chan struct{})
		var accepted sync.Map
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 16; i++ {
					j, err := s.Manager().Submit(JobRequest{Combo: "Low-Low", DurMS: 0.05})
					switch err {
					case nil:
						accepted.Store(j.id, j)
					case ErrQueueFull, ErrShuttingDown:
					default:
						t.Errorf("submit: %v", err)
					}
				}
			}()
		}
		close(start)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
		cancel()
		wg.Wait()
		accepted.Range(func(_, v any) bool {
			if st := v.(*Job).Status(); st.State != StateDone {
				t.Errorf("accepted job %s ended %q: %s", st.ID, st.State, st.Error)
			}
			return true
		})
	}
}
