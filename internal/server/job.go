// Package server is the long-running face of the HCAPP reproduction:
// a concurrent simulation service that accepts experiment jobs over
// HTTP, runs them on a bounded worker pool, streams live per-step trace
// samples from running jobs, and exposes the whole system's state —
// per-chiplet power, controller voltages, queue depths, throughput — as
// Prometheus metrics through internal/telemetry.
//
// The batch CLIs (cmd/hcappsim and friends) run one experiment and
// exit; cmd/hcapp-serve mounts this package to serve many concurrent
// simulations with observability, the shape a real power-control
// supervisor service takes (cf. ControlPULP's host interface and
// my-gpu-exporter's metric surface).
package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"hcapp/internal/config"
	"hcapp/internal/experiment"
	"hcapp/internal/sim"
	"hcapp/internal/tracing"
)

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle: queued → running → (done | failed).
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// JobRequest is the POST /v1/jobs body: one simulation run, expressed
// in the same vocabulary as internal/experiment. Everything except
// Combo defaults sensibly.
type JobRequest struct {
	// Combo names a Table 3 benchmark combination ("Hi-Hi",
	// "Burst-Low", ...). Required.
	Combo string `json:"combo"`
	// Scheme is the control scheme kind: "hcapp" (default),
	// "rapl-like", "sw-like" or "fixed-voltage".
	Scheme string `json:"scheme,omitempty"`
	// FixedV overrides the fixed-voltage scheme's rail (default 0.95).
	FixedV float64 `json:"fixed_v,omitempty"`
	// Limit names the power limit: "package-pin" (default) or
	// "off-package-vr".
	Limit string `json:"limit,omitempty"`
	// DurMS is the target duration in milliseconds (default 2, capped
	// by the server's MaxDurMS).
	DurMS float64 `json:"dur_ms,omitempty"`
	// Seed drives workload generation. Omitted (null) means the
	// paper's seed, 42; an explicit 0 is honoured as seed 0, matching a
	// direct experiment run with that seed.
	Seed *int64 `json:"seed,omitempty"`
	// Priorities maps domain name → software priority (§5.3).
	Priorities map[string]float64 `json:"priorities,omitempty"`
	// AdversarialAccel enables the §3.3.3 adversarial local controller.
	AdversarialAccel bool `json:"adversarial_accel,omitempty"`
	// Policy names a software supervision policy ("static-cpu",
	// "progress-balancer", "critical-path"); empty means none.
	Policy string `json:"policy,omitempty"`
	// Tenant buckets this job for per-tenant rate limiting in
	// coordinator role; empty means the anonymous tenant. Ignored in
	// standalone role.
	Tenant string `json:"tenant,omitempty"`
}

// JobResult is the simulation outcome serialized to clients — the
// RunResult metrics, minus the internal spec echo.
type JobResult struct {
	MaxWindowPower float64 `json:"max_window_power_watts"`
	MaxOverLimit   float64 `json:"max_over_limit"`
	Violated       bool    `json:"violated"`
	AvgPower       float64 `json:"avg_power_watts"`
	PPE            float64 `json:"ppe"`
	// CompletionNS maps component → completion time in simulated ns.
	CompletionNS  map[string]sim.Time `json:"completion_ns"`
	Completed     bool                `json:"completed"`
	DurationNS    sim.Time            `json:"duration_ns"`
	ControlCycles int64               `json:"control_cycles"`
	// EnergyJoules is the run's total package energy (the amount charged
	// to the submitting tenant in /v1/energy); zero when the run carried
	// no ledger.
	EnergyJoules float64 `json:"energy_joules,omitempty"`
}

// resultFromRun projects a RunResult onto the wire type.
func resultFromRun(r experiment.RunResult) *JobResult {
	out := &JobResult{
		MaxWindowPower: r.MaxWindowPower,
		MaxOverLimit:   r.MaxOverLimit,
		Violated:       r.Violated,
		AvgPower:       r.AvgPower,
		PPE:            r.PPE,
		CompletionNS:   r.Completion,
		Completed:      r.Completed,
		DurationNS:     r.Duration,
		ControlCycles:  r.ControlCycles,
	}
	if r.Energy != nil {
		out.EnergyJoules = r.Energy.TotalJ
	}
	return out
}

// Job is one tracked simulation.
type Job struct {
	mu sync.Mutex

	id      string
	req     JobRequest
	spec    experiment.RunSpec
	dur     sim.Time
	seed    int64 // resolved from req.Seed (nil → 42)
	state   JobState
	err     string
	result  *JobResult
	created time.Time
	started time.Time
	ended   time.Time

	trace *traceBuffer

	// span/qspan are the job's root and queue-wait tracing spans (nil
	// when the server has no tracer). Created in Submit before the job
	// enters the queue; the worker goroutine that dequeues the job ends
	// them — the queue send is the happens-before edge, and ActiveSpans
	// are single-owner, so no lock is needed.
	span  *tracing.ActiveSpan
	qspan *tracing.ActiveSpan
}

// JobStatus is the GET /v1/jobs/{id} body.
type JobStatus struct {
	ID    string     `json:"id"`
	State JobState   `json:"state"`
	Req   JobRequest `json:"request"`
	// SimTimeNS is the job's live simulated-time progress.
	SimTimeNS sim.Time   `json:"sim_time_ns"`
	Steps     int64      `json:"steps"`
	Error     string     `json:"error,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	CreatedAt time.Time  `json:"created_at"`
	StartedAt *time.Time `json:"started_at,omitempty"`
	EndedAt   *time.Time `json:"ended_at,omitempty"`
}

// Status snapshots the job for serialization.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Req:       j.req,
		Error:     j.err,
		Result:    j.result,
		CreatedAt: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.ended.IsZero() {
		t := j.ended
		st.EndedAt = &t
	}
	st.SimTimeNS, st.Steps = j.trace.Progress()
	return st
}

// newJobID returns a 16-hex-digit random id.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure means the platform is broken; ids only
		// need uniqueness, so fall back to the clock.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// compile translates and validates a request against the experiment
// vocabulary, returning the run spec and target duration.
func compile(req JobRequest, maxDur sim.Time) (experiment.RunSpec, sim.Time, error) {
	var zero experiment.RunSpec
	combo, err := experiment.ComboByName(req.Combo)
	if err != nil {
		names := make([]string, 0)
		for _, c := range experiment.Suite() {
			names = append(names, c.Name)
		}
		return zero, 0, fmt.Errorf("unknown combo %q (valid: %v)", req.Combo, names)
	}

	kind := config.SchemeKind(req.Scheme)
	if req.Scheme == "" {
		kind = config.HCAPP
	}
	scheme, err := config.SchemeByKind(kind)
	if err != nil {
		return zero, 0, fmt.Errorf("unknown scheme %q (valid: hcapp, rapl-like, sw-like, fixed-voltage)", req.Scheme)
	}
	if scheme.Kind == config.FixedVoltage && req.FixedV != 0 {
		if req.FixedV < 0.3 || req.FixedV > 1.2 {
			return zero, 0, fmt.Errorf("fixed_v %g outside [0.3, 1.2]", req.FixedV)
		}
		scheme.FixedV = req.FixedV
	}

	var limit config.PowerLimit
	switch req.Limit {
	case "", config.PackagePinLimit().Name:
		limit = config.PackagePinLimit()
	case config.OffPackageVRLimit().Name:
		limit = config.OffPackageVRLimit()
	default:
		return zero, 0, fmt.Errorf("unknown limit %q (valid: %q, %q)",
			req.Limit, config.PackagePinLimit().Name, config.OffPackageVRLimit().Name)
	}

	for name := range req.Priorities {
		switch name {
		case "cpu", "gpu", "sha", "mem":
		default:
			return zero, 0, fmt.Errorf("unknown priority domain %q (valid: cpu, gpu, sha, mem)", name)
		}
	}

	if req.Policy != "" {
		if err := experiment.ValidatePolicy(req.Policy); err != nil {
			return zero, 0, err
		}
	}

	dur := sim.Time(req.DurMS * float64(sim.Millisecond))
	if req.DurMS == 0 {
		dur = 2 * sim.Millisecond
	}
	if dur <= 0 {
		return zero, 0, fmt.Errorf("dur_ms %g not positive", req.DurMS)
	}
	if dur > maxDur {
		return zero, 0, fmt.Errorf("dur_ms %g exceeds this server's maximum %g",
			req.DurMS, float64(maxDur)/float64(sim.Millisecond))
	}

	return experiment.RunSpec{
		Combo:            combo,
		Scheme:           scheme,
		Limit:            limit,
		Priorities:       req.Priorities,
		AdversarialAccel: req.AdversarialAccel,
		Policy:           req.Policy,
	}, dur, nil
}
