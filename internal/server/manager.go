package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"hcapp/internal/cluster"
	"hcapp/internal/config"
	"hcapp/internal/experiment"
	"hcapp/internal/sched"
	"hcapp/internal/sim"
	"hcapp/internal/tracing"
)

// ErrQueueFull is returned by Submit when the job queue is at capacity —
// the service sheds load instead of buffering unboundedly.
var ErrQueueFull = fmt.Errorf("server: job queue full")

// ErrShuttingDown is returned by Submit after Shutdown begins.
var ErrShuttingDown = fmt.Errorf("server: shutting down")

// ErrTenantThrottled is returned by Submit when the coordinator's
// per-tenant token bucket rejects the job (cluster mode only); the HTTP
// layer maps it to 429 so backpressure reaches the submitting client
// synchronously.
var ErrTenantThrottled = fmt.Errorf("server: tenant rate limit exceeded")

// Manager owns the job table and the bounded worker pool. Every job
// simulates on its own evaluator — the concurrency test in
// internal/experiment proves independent evaluators share no mutable
// state — so workers scale across cores without locking the engine.
type Manager struct {
	cfg     Config
	metrics *metrics
	// runner is the shared experiment scheduler all jobs execute on; its
	// width matches the worker count, so routing every simulation through
	// it adds no queuing while publishing per-run telemetry.
	runner *experiment.Runner
	// cluster, when non-nil, is the coordinator jobs delegate to instead
	// of simulating on the local runner (hcapp-serve -role coordinator).
	cluster *cluster.Coordinator
	// tracer records every job's span tree (nil disables tracing).
	tracer *tracing.Tracer
	logf   func(format string, args ...any)

	queue chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order, for listing and retention
	draining bool
	// ready flips once the worker pool is running; /readyz reports 503
	// until then (and again while draining).
	ready bool

	wg sync.WaitGroup
}

// NewManager builds a manager and starts its workers.
func NewManager(cfg Config, m *metrics) *Manager {
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	mgr := &Manager{
		cfg:     cfg,
		metrics: m,
		runner:  experiment.NewRunner(cfg.Workers).WithMetrics(m.runner),
		cluster: cfg.Cluster,
		tracer:  cfg.Tracer,
		logf:    logf,
		queue:   make(chan *Job, cfg.QueueDepth),
		jobs:    make(map[string]*Job),
	}
	for i := 0; i < cfg.Workers; i++ {
		mgr.wg.Add(1)
		go mgr.worker()
	}
	mgr.mu.Lock()
	mgr.ready = true
	mgr.mu.Unlock()
	return mgr
}

// Ready reports whether this node should receive traffic: pool up, not
// draining, and — in coordinator role — at least one live fleet worker
// to execute on.
func (mgr *Manager) Ready() bool {
	mgr.mu.Lock()
	ready := mgr.ready && !mgr.draining
	mgr.mu.Unlock()
	if ready && mgr.cluster != nil {
		ready = mgr.cluster.WorkersLive() > 0
	}
	return ready
}

// Submit validates, registers and enqueues a job.
func (mgr *Manager) Submit(req JobRequest) (*Job, error) {
	spec, dur, err := compile(req, mgr.cfg.MaxDur)
	if err != nil {
		mgr.metrics.jobsRejected.Inc()
		return nil, err
	}
	seed := int64(42) // the paper's seed
	if req.Seed != nil {
		seed = *req.Seed
	}

	// In coordinator role the per-tenant token bucket gates admission, so
	// an over-limit tenant sees 429 at submit time instead of a queued
	// job that fails later.
	if mgr.cluster != nil && !mgr.cluster.Allow(req.Tenant, 1) {
		mgr.metrics.jobsRejected.Inc()
		return nil, ErrTenantThrottled
	}

	stepsPerSample := int(mgr.cfg.TraceSampleEvery / mgr.cfg.TimeStep())
	j := &Job{
		id:      newJobID(),
		req:     req,
		spec:    spec,
		dur:     dur,
		seed:    seed,
		state:   StateQueued,
		created: time.Now(),
		trace:   newTraceBuffer(stepsPerSample, mgr.cfg.MaxTraceSamples),
	}
	// Spans exist before the queue send: the worker goroutine that
	// dequeues the job ends them, and the channel send is the
	// happens-before edge. The trace id derives from the job id, so
	// GET /v1/traces?job={id} finds the tree without an index.
	j.span = mgr.tracer.StartRoot("job", j.id, j.id)
	j.span.SetAttr("combo", req.Combo).SetAttr("tenant", req.Tenant)
	j.qspan = mgr.tracer.StartSpan(j.span.Context(), "queue-wait")

	// The whole admission — draining check, capacity check, table insert
	// — happens under mgr.mu, making it atomic with respect to
	// Shutdown's close(mgr.queue): a Submit that passed the draining
	// check cannot race the close and send on a closed channel, and a
	// full queue is detected before the job touches the table, so there
	// is no rollback to get wrong. The send never blocks (it is a
	// non-blocking select), so holding the lock across it is cheap.
	mgr.mu.Lock()
	if mgr.draining {
		mgr.mu.Unlock()
		mgr.metrics.jobsRejected.Inc()
		j.qspan.End()
		j.span.SetAttr("outcome", "rejected").End()
		return nil, ErrShuttingDown
	}
	select {
	case mgr.queue <- j:
	default:
		mgr.mu.Unlock()
		mgr.metrics.jobsRejected.Inc()
		j.qspan.End()
		j.span.SetAttr("outcome", "rejected").End()
		return nil, ErrQueueFull
	}
	mgr.jobs[j.id] = j
	mgr.order = append(mgr.order, j.id)
	mgr.evictLocked()
	mgr.mu.Unlock()

	mgr.metrics.jobsSubmitted.Inc()
	return j, nil
}

// evictLocked drops the oldest finished jobs beyond the retention cap,
// deleting each evicted job's metric series so both the job table and
// /metrics cardinality stay bounded over a long serving life. Callers
// hold mgr.mu.
func (mgr *Manager) evictLocked() {
	for len(mgr.order) > mgr.cfg.MaxJobs {
		evicted := false
		for i, id := range mgr.order {
			j := mgr.jobs[id]
			j.mu.Lock()
			terminal := j.state == StateDone || j.state == StateFailed
			j.mu.Unlock()
			if terminal {
				delete(mgr.jobs, id)
				mgr.order = append(mgr.order[:i], mgr.order[i+1:]...)
				mgr.metrics.dropJob(id)
				evicted = true
				break
			}
		}
		if !evicted {
			// Everything retained is still queued or running; the
			// queue bound keeps this transient.
			return
		}
	}
}

// Get returns the job by id.
func (mgr *Manager) Get(id string) (*Job, bool) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	j, ok := mgr.jobs[id]
	return j, ok
}

// List snapshots all retained jobs, newest first.
func (mgr *Manager) List() []JobStatus {
	mgr.mu.Lock()
	ids := append([]string(nil), mgr.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, mgr.jobs[id])
	}
	mgr.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	sort.SliceStable(out, func(i, k int) bool { return out[i].CreatedAt.After(out[k].CreatedAt) })
	return out
}

// worker drains the queue until Shutdown closes it.
func (mgr *Manager) worker() {
	defer mgr.wg.Done()
	for j := range mgr.queue {
		mgr.runJob(j)
	}
}

// runJob executes one simulation end to end. Failures are classified
// for hcapp_jobs_failed_total: "timeout" (the JobTimeout bound expired
// and cancelled the engine), "panic" (the simulation panicked — caught
// here so one bad job cannot take down the worker pool), or "error"
// (everything else, e.g. an invalid spec surviving to build time).
func (mgr *Manager) runJob(j *Job) {
	start := time.Now()
	j.mu.Lock()
	j.state = StateRunning
	j.started = start
	j.mu.Unlock()
	mgr.metrics.jobsRunning.Inc()
	defer func() {
		mgr.metrics.jobsRunning.Dec()
		mgr.metrics.jobSeconds.Observe(time.Since(start).Seconds())
	}()

	// The queue wait ends the moment a worker picks the job up; server
	// jobs are always the interactive class (fleet batch sweeps enter
	// through the coordinator API instead).
	j.qspan.SetAttr("class", "interactive").End()
	run := mgr.tracer.StartSpan(j.span.Context(), "run")

	ctx := context.Background()
	if mgr.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, mgr.cfg.JobTimeout)
		defer cancel()
	}
	if run != nil {
		ctx = tracing.ContextWith(ctx, mgr.tracer, run.Context())
	}

	var res experiment.RunResult
	var err error
	if mgr.cluster != nil {
		// Coordinator role: the fleet simulates. No per-step stream comes
		// back over the wire, so the live trace stays empty; the static
		// spec gauges still publish.
		info := jobSpecInfo{limit: j.spec.Limit}
		if !isFixed(j.spec) {
			info.target = experiment.TargetPowerFor(j.spec.Limit)
		}
		mgr.metrics.newJobObserver(j, info)
		res, err = mgr.delegate(ctx, j)
		if err == nil {
			if step := mgr.cfg.TimeStep(); step > 0 {
				j.trace.setProgress(res.Duration, int64(res.Duration/step))
			}
		}
	} else {
		// One evaluator per job: evaluators are cheap, carry the run cache
		// we do not want shared, and isolate all mutable simulation state.
		ev := experiment.NewEvaluator().WithTargetDur(j.dur)
		ev.Cfg.Seed = j.seed
		// Attribute energy on every job so chargeback works in standalone
		// role exactly as it does behind a coordinator (whose fleet
		// workers always track energy).
		ev.TrackEnergy = true
		info := jobSpecInfo{limit: j.spec.Limit}
		if !isFixed(j.spec) {
			info.target = experiment.TargetPowerFor(j.spec.Limit)
		}
		obs := mgr.metrics.newJobObserver(j, info)

		res, err = mgr.simulate(ctx, ev, j.spec, j.id, obs)
		obs.flush()
	}

	reason := ""
	if err != nil {
		reason, err = mgr.failureReason(err)
	}

	end := time.Now()
	j.mu.Lock()
	j.ended = end
	if err != nil {
		j.state = StateFailed
		j.err = err.Error()
	} else {
		j.state = StateDone
		j.result = resultFromRun(res)
	}
	state := j.state
	j.mu.Unlock()

	run.SetAttr("outcome", tracing.Outcome(err)).End()
	j.span.SetAttr("state", string(state)).SetAttr("outcome", tracing.Outcome(err)).End()

	if err != nil {
		mgr.metrics.jobsCompleted.With(string(StateFailed)).Inc()
		mgr.metrics.jobsFailed.With(reason).Inc()
		return
	}
	mgr.metrics.jobsCompleted.With(string(StateDone)).Inc()
	if res.Violated {
		mgr.metrics.jobsViolated.Inc()
	}
	// Chargeback: both roles attach a ledger to every run (standalone
	// evaluators above, fleet workers remotely — including fleet-cache
	// hits, which replay the cached wire result with its summary), so
	// standalone and coordinator bill identically for the same jobs.
	mgr.metrics.energy.Record(j.req.Tenant, res.Energy)
}

// failureReason classifies a job failure for hcapp_jobs_failed_total
// and rewrites a context deadline into a user-facing timeout message.
func (mgr *Manager) failureReason(err error) (string, error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout", fmt.Errorf("timeout after %s", mgr.cfg.JobTimeout)
	case errors.As(err, new(panicError)):
		return "panic", err
	default:
		return "error", err
	}
}

// panicError wraps a recovered simulation panic so runJob can classify
// it separately from ordinary run errors.
type panicError struct{ val any }

func (p panicError) Error() string { return fmt.Sprintf("panic: %v", p.val) }

// simulate runs the spec on the shared runner under ctx with panic
// containment: a panicking simulation fails its own job instead of
// killing a pool goroutine (which would silently shrink the pool for
// the life of the process). The recover lives inside the task closure
// because the task executes on the runner's goroutine, not this one.
// The stack is logged exactly once here, tagged with the job id —
// hcapp_jobs_failed_total{reason="panic"} counts the event, but only
// the log carries enough to debug it.
func (mgr *Manager) simulate(ctx context.Context, ev *experiment.Evaluator, spec experiment.RunSpec, jobID string, obs *jobObserver) (experiment.RunResult, error) {
	var res experiment.RunResult
	err := mgr.runner.Tasks(ctx, 1, func(ctx context.Context, _ int) (err error) {
		// The runner already opened item[0] under the run span; this task
		// adds attempt[0] and the engine span (fed by an EngineObserver on
		// the observer tee), so a standalone tree is shape-identical to a
		// fleet tree where a worker executed the engine stage.
		var attempt *tracing.ActiveSpan
		var engObs *tracing.EngineObserver
		// The recover installs before anything dereferences ev: a nil
		// evaluator must fail as a contained panic, not unwind the pool.
		defer func() {
			if r := recover(); r != nil {
				mgr.logf("hcapp-serve: job %s panicked: %v\n%s", jobID, r, debug.Stack())
				err = panicError{val: r}
			}
			engObs.Finish(err)
			attempt.SetAttr("outcome", tracing.Outcome(err)).End()
		}()
		var tee []sched.StepObserver
		if obs != nil {
			tee = append(tee, obs)
		}
		if tr, parent, ok := tracing.FromContext(ctx); ok {
			attempt = tr.StartSpan(parent, "attempt[0]")
			attempt.SetAttr("worker", "local").SetAttr("kind", "primary")
			engObs = tracing.NewEngineObserver(tr.StartSpan(attempt.Context(), "engine"))
			tee = append(tee, engObs)
		}
		ev.Observer = sched.Observers(tee...)
		res, err = ev.RunContext(ctx, spec)
		return err
	})
	return res, err
}

// delegate ships one job to the fleet as a single-item interactive
// batch. The tenant bucket was already debited at Submit, so this calls
// Execute (not RunBatch) to avoid charging twice.
func (mgr *Manager) delegate(ctx context.Context, j *Job) (experiment.RunResult, error) {
	params := cluster.DefaultParams(j.seed, j.dur)
	wire := cluster.SpecOf(j.spec)
	resp, err := mgr.cluster.Execute(ctx, cluster.RunRequest{
		Tenant:   j.req.Tenant,
		Priority: cluster.PriorityInteractive,
		Params:   params,
		Items:    []cluster.Item{{Spec: &wire}},
	})
	if err != nil {
		return experiment.RunResult{}, err
	}
	ir := resp.Results[0]
	if ir.Error != "" {
		return experiment.RunResult{}, fmt.Errorf("cluster: %s", ir.Error)
	}
	if ir.Result == nil {
		return experiment.RunResult{}, fmt.Errorf("cluster: fleet returned no result")
	}
	return ir.Result.RunResult(j.spec), nil
}

func isFixed(spec experiment.RunSpec) bool {
	return spec.Scheme.Kind == config.FixedVoltage
}

// QueueLen reports jobs waiting for a worker.
func (mgr *Manager) QueueLen() int { return len(mgr.queue) }

// Shutdown stops accepting jobs, then waits for in-flight and queued
// jobs to finish, or for ctx to expire (workers cannot be preempted
// mid-simulation; an expired ctx abandons them to the process exit).
func (mgr *Manager) Shutdown(ctx context.Context) error {
	mgr.mu.Lock()
	if !mgr.draining {
		mgr.draining = true
		close(mgr.queue)
	}
	mgr.mu.Unlock()

	done := make(chan struct{})
	go func() {
		mgr.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TimeStep exposes the engine timestep the server sizes trace buckets
// with (the default system config's step).
func (c Config) TimeStep() sim.Time {
	if c.SimTimeStep > 0 {
		return c.SimTimeStep
	}
	return 100 * sim.Nanosecond
}
