package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"hcapp/internal/cluster"
	"hcapp/internal/tracing"
)

// jobStructure fetches a finished job's canonical span-tree structure
// from GET /v1/traces.
func jobStructure(t *testing.T, ts string, jobID string) string {
	t.Helper()
	resp, err := http.Get(ts + "/v1/traces?job=" + jobID + "&view=structure")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("structure fetch for job %s: status %d", jobID, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// jobStructureGolden is the canonical standalone job tree: admission to
// terminal state, queue time, the run, its single item, one attempt,
// and the engine stage — identical whether a local pool or a fleet
// executed it.
var jobStructureGolden = strings.Join([]string{
	"job",
	"  queue-wait",
	"  run",
	"    item[0]",
	"      attempt[0]",
	"        engine",
	"",
}, "\n")

// TestJobTraceStandalone: a standalone job yields the full canonical
// span tree, reachable by job id on /v1/traces, with no orphans and an
// ok outcome on the root.
func TestJobTraceStandalone(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full simulation")
	}
	s, ts := testServer(t, Config{Workers: 1})
	st, resp := postJob(t, ts, JobRequest{Combo: "Low-Low", DurMS: 0.5, Seed: seedOf(1)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	if final := waitForJob(t, ts, st.ID); final.State != StateDone {
		t.Fatalf("job ended %q (%s)", final.State, final.Error)
	}

	if got := jobStructure(t, ts.URL, st.ID); got != jobStructureGolden {
		t.Fatalf("standalone structure:\n%s\nwant:\n%s", got, jobStructureGolden)
	}

	tracer := s.cfg.Tracer
	id, spans, dropped := tracer.TraceForJob(st.ID)
	if id == "" || dropped != 0 {
		t.Fatalf("trace lookup: id %q, dropped %d", id, dropped)
	}
	if orphans := tracing.Orphans(spans); len(orphans) != 0 {
		t.Fatalf("job trace has %d orphans", len(orphans))
	}
	for _, sp := range spans {
		if sp.Name == "job" {
			if sp.Attrs["outcome"] != "ok" || sp.Attrs["state"] != "done" {
				t.Fatalf("root outcome/state = %q/%q, want ok/done", sp.Attrs["outcome"], sp.Attrs["state"])
			}
			if sp.JobID != st.ID {
				t.Fatalf("root job id = %q, want %q", sp.JobID, st.ID)
			}
		}
		if sp.Name == "engine" && sp.Attrs["steps"] == "" {
			t.Fatal("engine span carries no step count")
		}
	}
}

// TestJobTraceFleetMatchesStandalone: the same job delegated through a
// coordinator to a fleet worker produces a byte-identical span-tree
// structure — the acceptance criterion CI re-checks over real
// processes.
func TestJobTraceFleetMatchesStandalone(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations over a local fleet")
	}
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{Logf: t.Logf})
	_, fleetTS := testServer(t, Config{Workers: 2, Cluster: coord})
	startFleetWorker(t, fleetTS.URL, "w-1")
	_, soloTS := testServer(t, Config{Workers: 2})

	req := JobRequest{Combo: "Mid-Mid", Scheme: "hcapp", DurMS: 0.5, Seed: seedOf(7)}
	stFleet, _ := postJob(t, fleetTS, req)
	stSolo, _ := postJob(t, soloTS, req)
	if got := waitForJob(t, fleetTS, stFleet.ID); got.State != StateDone {
		t.Fatalf("fleet job ended %q (%s)", got.State, got.Error)
	}
	if got := waitForJob(t, soloTS, stSolo.ID); got.State != StateDone {
		t.Fatalf("standalone job ended %q (%s)", got.State, got.Error)
	}

	fleet := jobStructure(t, fleetTS.URL, stFleet.ID)
	solo := jobStructure(t, soloTS.URL, stSolo.ID)
	if fleet != solo {
		t.Fatalf("fleet structure diverged from standalone:\nfleet:\n%s\nstandalone:\n%s", fleet, solo)
	}
	if fleet != jobStructureGolden {
		t.Fatalf("fleet structure:\n%s\nwant:\n%s", fleet, jobStructureGolden)
	}
}

// TestTracesEndpoint: the server-mounted /v1/traces lists traces, pages
// them, and 404s unknown lookups.
func TestTracesEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	_, ts := testServer(t, Config{Workers: 1})
	var ids []string
	for i := 0; i < 3; i++ {
		st, resp := postJob(t, ts, JobRequest{Combo: "Low-Low", DurMS: 0.3, Seed: seedOf(int64(10 + i))})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d: %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitForJob(t, ts, id)
	}

	var list struct {
		Traces []tracing.TraceSummary `json:"traces"`
		Next   int                    `json:"next_offset"`
	}
	if resp := getJSON(t, ts.URL+"/v1/traces", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	if len(list.Traces) != 3 || list.Next != -1 {
		t.Fatalf("list = %d traces, next %d", len(list.Traces), list.Next)
	}
	if resp := getJSON(t, ts.URL+"/v1/traces?limit=2", &list); resp.StatusCode != http.StatusOK || len(list.Traces) != 2 || list.Next != 2 {
		t.Fatalf("page 1 = %d traces, next %d", len(list.Traces), list.Next)
	}

	var tr struct {
		TraceID string         `json:"trace_id"`
		Spans   []tracing.Span `json:"spans"`
	}
	if resp := getJSON(t, ts.URL+"/v1/traces?job="+ids[0], &tr); resp.StatusCode != http.StatusOK {
		t.Fatalf("job trace status %d", resp.StatusCode)
	}
	if tr.TraceID != tracing.TraceIDFor(ids[0]) || len(tr.Spans) != 6 {
		t.Fatalf("job trace = %q with %d spans, want 6", tr.TraceID, len(tr.Spans))
	}

	resp, err := http.Get(ts.URL + "/v1/traces?job=ffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", resp.StatusCode)
	}
}
