package server

import (
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"hcapp/internal/cluster"
	"hcapp/internal/energy"
)

// TestEnergyChargebackStandalone: a completed job bills its package
// energy to the submitting tenant, visible in the job result, the
// GET /v1/energy chargeback report and the Prometheus families.
func TestEnergyChargebackStandalone(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full simulation")
	}
	_, ts := testServer(t, Config{Workers: 2})

	req := JobRequest{Combo: "Mid-Mid", Scheme: "hcapp", Limit: "package-pin", DurMS: 0.5, Seed: seedOf(42), Tenant: "acme"}
	st, _ := postJob(t, ts, req)
	final := waitForJob(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job failed: %q", final.Error)
	}
	if final.Result == nil || final.Result.EnergyJoules <= 0 {
		t.Fatalf("done job carries no energy charge: %+v", final.Result)
	}

	var rep energy.ChargebackReport
	if resp := getJSON(t, ts.URL+"/v1/energy", &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/energy status %d", resp.StatusCode)
	}
	if rep.Jobs != 1 {
		t.Fatalf("chargeback jobs = %d, want 1", rep.Jobs)
	}
	if len(rep.Tenants) != 1 || rep.Tenants[0].Tenant != "acme" {
		t.Fatalf("chargeback tenants = %+v", rep.Tenants)
	}
	acme := rep.Tenants[0]
	if acme.Joules != final.Result.EnergyJoules {
		t.Fatalf("tenant charge %g != job result energy %g", acme.Joules, final.Result.EnergyJoules)
	}
	if acme.Jobs != 1 {
		t.Fatalf("tenant jobs = %d", acme.Jobs)
	}
	// The per-domain rollup covers the package: every tracked domain is
	// present and together they account for (at most) the package charge,
	// up to summation rounding.
	for _, dom := range []string{"cpu", "gpu", "sha", "mem"} {
		if acme.Domains[dom] <= 0 {
			t.Errorf("domain %s missing from rollup: %v", dom, acme.Domains)
		}
	}
	domSum := 0.0
	for _, j := range acme.Domains {
		domSum += j
	}
	if domSum > acme.Joules*(1+1e-9) {
		t.Errorf("domain energy %g exceeds package charge %g", domSum, acme.Joules)
	}

	// Method gating.
	resp, err := http.Post(ts.URL+"/v1/energy", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/energy status %d, want 405", resp.StatusCode)
	}

	// Prometheus side: attribution counters and build info are exposed.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mr.Body)
	mr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`hcapp_energy_joules_total{component="cpu/core0"`,
		`hcapp_tenant_energy_joules_total{tenant="acme"}`,
		`hcapp_build_info{version="`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestEnergyChargebackFleetMatchesStandalone: a coordinator bills the
// same joules for a delegated job (simulated on a fleet worker, summary
// carried back over the wire) as a standalone server does for the
// identical request — chargeback is fleet-transparent.
func TestEnergyChargebackFleetMatchesStandalone(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations over a local fleet")
	}
	req := JobRequest{Combo: "Mid-Mid", Scheme: "hcapp", Limit: "package-pin", DurMS: 0.5, Seed: seedOf(7), Tenant: "acme"}

	_, standaloneTS := testServer(t, Config{Workers: 2})
	st, _ := postJob(t, standaloneTS, req)
	local := waitForJob(t, standaloneTS, st.ID)
	if local.State != StateDone {
		t.Fatalf("standalone job failed: %q", local.Error)
	}

	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{Logf: t.Logf})
	_, coordTS := testServer(t, Config{Workers: 2, Cluster: coord})
	startFleetWorker(t, coordTS.URL, "w-1")
	startFleetWorker(t, coordTS.URL, "w-2")

	st2, _ := postJob(t, coordTS, req)
	fleet := waitForJob(t, coordTS, st2.ID)
	if fleet.State != StateDone {
		t.Fatalf("delegated job failed: %q", fleet.Error)
	}

	if local.Result.EnergyJoules <= 0 {
		t.Fatal("standalone job carries no energy")
	}
	if fleet.Result.EnergyJoules != local.Result.EnergyJoules {
		t.Fatalf("fleet energy %g != standalone energy %g",
			fleet.Result.EnergyJoules, local.Result.EnergyJoules)
	}

	var lrep, frep energy.ChargebackReport
	getJSON(t, standaloneTS.URL+"/v1/energy", &lrep)
	getJSON(t, coordTS.URL+"/v1/energy", &frep)
	if len(lrep.Tenants) != 1 || len(frep.Tenants) != 1 {
		t.Fatalf("tenant rows: standalone %d, fleet %d", len(lrep.Tenants), len(frep.Tenants))
	}
	if d := math.Abs(lrep.Tenants[0].Joules - frep.Tenants[0].Joules); d != 0 {
		t.Fatalf("chargeback diverged across roles: standalone %g, fleet %g",
			lrep.Tenants[0].Joules, frep.Tenants[0].Joules)
	}
}
