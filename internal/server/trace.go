package server

import (
	"sync"
	"sync/atomic"

	"hcapp/internal/sim"
)

// TraceSample is one down-sampled point of a job's live power trace.
type TraceSample struct {
	// TNS is simulated time, nanoseconds.
	TNS sim.Time `json:"t_ns"`
	// Power is the package power averaged over the sample bucket, watts.
	Power float64 `json:"power_watts"`
}

// traceBuffer accumulates a bounded, down-sampled power trace while a
// job runs. The per-step path is lock-free: bucket accumulation state
// is owned by the single simulation goroutine, progress counters are
// atomics, and the mutex is taken only once per completed bucket.
// HTTP readers page through with an offset cursor, so a client can
// follow a running job to completion.
type traceBuffer struct {
	every int // engine steps per sample bucket
	max   int

	// sum/n are bucket accumulation state, touched only by the
	// simulation goroutine inside observe.
	sum float64
	n   int

	steps atomic.Int64
	now   atomic.Int64 // sim.Time

	mu      sync.Mutex
	samples []TraceSample
	dropped int64
}

func newTraceBuffer(every, maxSamples int) *traceBuffer {
	if every < 1 {
		every = 1
	}
	if maxSamples < 1 {
		maxSamples = 1
	}
	return &traceBuffer{every: every, max: maxSamples}
}

// observe folds one engine step into the buffer. Called from the
// simulation goroutine only.
func (b *traceBuffer) observe(now sim.Time, total float64) {
	b.steps.Add(1)
	b.now.Store(now)
	b.sum += total
	b.n++
	if b.n < b.every {
		return
	}
	s := TraceSample{TNS: now, Power: b.sum / float64(b.n)}
	b.sum, b.n = 0, 0
	b.mu.Lock()
	if len(b.samples) < b.max {
		b.samples = append(b.samples, s)
	} else {
		b.dropped++
	}
	b.mu.Unlock()
}

// Page returns samples[offset:offset+limit], the next offset, and the
// count of samples dropped after the buffer filled.
func (b *traceBuffer) Page(offset, limit int) (out []TraceSample, next int, dropped int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if offset < 0 {
		offset = 0
	}
	if offset > len(b.samples) {
		offset = len(b.samples)
	}
	end := len(b.samples)
	if limit > 0 && offset+limit < end {
		end = offset + limit
	}
	out = append(out, b.samples[offset:end]...)
	return out, end, b.dropped
}

// Progress reports the live simulated time and step count.
func (b *traceBuffer) Progress() (sim.Time, int64) {
	return b.now.Load(), b.steps.Load()
}

// setProgress backfills the progress counters for a job whose
// simulation ran elsewhere (fleet delegation): no per-step stream ever
// reached this buffer, but the finished record should still report how
// far the simulation got.
func (b *traceBuffer) setProgress(now sim.Time, steps int64) {
	b.now.Store(now)
	b.steps.Store(steps)
}
