package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hcapp/internal/chaos"
	"hcapp/internal/cluster"
	"hcapp/internal/sim"
	"hcapp/internal/tracing"
)

// Config sizes the service.
type Config struct {
	// Workers is the simulation worker-pool size (default 2).
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 32); beyond
	// it, POST /v1/jobs returns 429.
	QueueDepth int
	// MaxDur caps a single job's target duration (default 64 ms of
	// simulated time — ~30 s of wall clock on one core).
	MaxDur sim.Time
	// MaxJobs bounds the retained job table (default 256; oldest
	// finished jobs evicted first). Evicting a job also deletes its
	// per-job metric series, so this bounds /metrics cardinality too.
	MaxJobs int
	// TraceSampleEvery is the live trace down-sampling bucket in
	// simulated time (default 10 µs).
	TraceSampleEvery sim.Time
	// MaxTraceSamples bounds each job's trace buffer (default 65536).
	MaxTraceSamples int
	// MaxTraces bounds the span store behind GET /v1/traces (default
	// 256 traces, FIFO eviction; see docs/TRACING.md).
	MaxTraces int
	// Tracer overrides the span store (tests); nil builds one sized by
	// MaxTraces and wired to the hcapp_stage_duration_seconds histogram.
	Tracer *tracing.Tracer
	// SimTimeStep overrides the engine timestep used to size trace
	// buckets; leave zero for the default system's 100 ns.
	SimTimeStep sim.Time
	// JobTimeout bounds one job's wall-clock simulation time. A job that
	// exceeds it is cancelled cooperatively (the engine polls every few
	// thousand steps) and fails with a timeout reason. Zero disables the
	// bound — MaxDur already limits simulated time; this guards against
	// simulations that are slow in wall clock (a hung or mis-sized run
	// must not pin a worker forever).
	JobTimeout time.Duration
	// Cluster, when non-nil, puts the server in coordinator role: jobs
	// delegate to the fleet instead of the local pool, the cluster
	// control-plane endpoints mount under /v1/cluster/, and /readyz
	// requires at least one live fleet worker.
	Cluster *cluster.Coordinator
	// Chaos, when non-nil, is the fault injector wrapped around this
	// node's transport (hcapp-serve -chaos-seed). The server only
	// attaches its injection counters to the registry so
	// hcapp_chaos_faults_injected_total lands in the same scrape.
	Chaos *chaos.Injector
	// Logf receives operational events (panic stacks, fleet churn); nil
	// means log.Printf.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.MaxDur <= 0 {
		c.MaxDur = 64 * sim.Millisecond
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.TraceSampleEvery <= 0 {
		c.TraceSampleEvery = 10 * sim.Microsecond
	}
	if c.MaxTraceSamples <= 0 {
		c.MaxTraceSamples = 65536
	}
	return c
}

// Server is the HTTP face over a Manager: job submission and status,
// live trace paging, health and Prometheus metrics.
type Server struct {
	cfg     Config
	manager *Manager
	metrics *metrics
	mux     *http.ServeMux
}

// New builds a started server (workers running, handler ready to
// mount). Call Shutdown to drain.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := newMetrics()
	if cfg.Tracer == nil {
		cfg.Tracer = tracing.New(tracing.Config{MaxTraces: cfg.MaxTraces, Stages: m.stageSeconds})
	}
	s := &Server{
		cfg:     cfg,
		manager: NewManager(cfg, m),
		metrics: m,
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/jobs", s.counted("jobs", s.handleJobs))
	s.mux.HandleFunc("/v1/jobs/", s.counted("job", s.handleJob))
	s.mux.HandleFunc("/v1/energy", s.counted("energy", s.handleEnergy))
	s.mux.HandleFunc("/healthz", s.counted("healthz", s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.counted("readyz", s.handleReadyz))
	s.mux.Handle("/metrics", s.countedHandler("metrics", s.metricsHandler()))
	s.mux.Handle("/v1/traces", s.countedHandler("traces", tracing.Handler(cfg.Tracer)))
	if cfg.Cluster != nil {
		// The coordinator's telemetry families join the server registry so
		// one /metrics scrape covers jobs and fleet alike — and its spans
		// land in the same store, so a delegated job reads as one tree.
		cfg.Cluster.WithMetrics(cluster.NewMetrics(m.reg)).WithTracer(cfg.Tracer)
		s.mux.Handle("/v1/cluster/", s.countedHandler("cluster", cfg.Cluster.Handler()))
	}
	if cfg.Chaos != nil {
		cfg.Chaos.WithMetrics(chaos.NewMetrics(m.reg))
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Manager exposes the job manager (tests, embedding).
func (s *Server) Manager() *Manager { return s.manager }

// Shutdown drains the worker pool; see Manager.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error { return s.manager.Shutdown(ctx) }

func (s *Server) counted(name string, h http.HandlerFunc) http.HandlerFunc {
	c := s.metrics.httpRequests.With(name)
	return func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		h(w, r)
	}
}

// metricsHandler refreshes scrape-derived gauges before rendering the
// registry. Queue depth is read from the live channel here rather than
// maintained on the enqueue/dequeue paths, where updates race each
// other (and the rejection path) and let the gauge drift; the Go
// runtime gauges are read here for the same reason (ReadMemStats costs
// a brief stop-the-world, so it runs exactly once per scrape).
func (s *Server) metricsHandler() http.Handler {
	render := s.metrics.reg.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.queueDepth.Set(float64(s.manager.QueueLen()))
		s.metrics.rt.Refresh()
		render.ServeHTTP(w, r)
	})
}

func (s *Server) countedHandler(name string, h http.Handler) http.Handler {
	c := s.metrics.httpRequests.With(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		h.ServeHTTP(w, r)
	})
}

// apiError is every non-2xx body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleEnergy serves GET /v1/energy: the per-tenant chargeback table
// accumulated from every completed job's energy ledger. In coordinator
// role the table covers the whole fleet — every delegated job's summary
// comes back over the wire and is recorded here, so one endpoint bills
// all tenants regardless of which worker simulated what.
func (s *Server) handleEnergy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.energy.Chargeback())
}

// handleJobs serves POST /v1/jobs (submit) and GET /v1/jobs (list).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req JobRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.metrics.jobsRejected.Inc()
			writeError(w, http.StatusBadRequest, "invalid job request: %v", err)
			return
		}
		j, err := s.manager.Submit(req)
		switch {
		case err == ErrQueueFull:
			// Queue pressure and token buckets both clear quickly; tell
			// well-behaved clients when to come back instead of letting
			// them guess.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case err == ErrTenantThrottled:
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case err == ErrShuttingDown:
			// A drain is terminal for this process: point clients at the
			// replacement's spin-up time, not the bucket refill.
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case err != nil:
			writeError(w, http.StatusBadRequest, "%v", err)
		default:
			w.Header().Set("Location", "/v1/jobs/"+j.id)
			writeJSON(w, http.StatusAccepted, j.Status())
		}
	case http.MethodGet:
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobStatus `json:"jobs"`
		}{s.manager.List()})
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// handleJob serves GET /v1/jobs/{id} and GET /v1/jobs/{id}/trace.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	j, ok := s.manager.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	switch sub {
	case "":
		writeJSON(w, http.StatusOK, j.Status())
	case "trace":
		s.handleTrace(w, r, j)
	default:
		writeError(w, http.StatusNotFound, "no resource %q under job %q", sub, id)
	}
}

// traceResponse is the GET /v1/jobs/{id}/trace body: one page of the
// live down-sampled power trace. Clients follow a running job by
// re-requesting with offset=next_offset until state is terminal.
type traceResponse struct {
	ID         string        `json:"id"`
	State      JobState      `json:"state"`
	Samples    []TraceSample `json:"samples"`
	NextOffset int           `json:"next_offset"`
	// Dropped counts samples lost after the buffer cap; nonzero means
	// the job outran MaxTraceSamples.
	Dropped int64 `json:"dropped,omitempty"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request, j *Job) {
	q := r.URL.Query()
	offset := 0
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad offset %q", v)
			return
		}
		offset = n
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	samples, next, dropped := j.trace.Page(offset, limit)
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, traceResponse{
		ID: j.id, State: state, Samples: samples, NextOffset: next, Dropped: dropped,
	})
}

// healthzResponse is the GET /healthz body.
type healthzResponse struct {
	Status    string `json:"status"`
	Workers   int    `json:"workers"`
	QueueLen  int    `json:"queue_len"`
	QueueCap  int    `json:"queue_cap"`
	JobsKnown int    `json:"jobs_known"`
}

// handleHealthz is pure liveness: always 200 while the process can
// serve HTTP, even mid-drain — restarting a draining process loses the
// jobs it is trying to finish. Routability lives on /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.manager.mu.Lock()
	known := len(s.manager.jobs)
	draining := s.manager.draining
	s.manager.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:    status,
		Workers:   s.cfg.Workers,
		QueueLen:  s.manager.QueueLen(),
		QueueCap:  s.cfg.QueueDepth,
		JobsKnown: known,
	})
}

// readyzResponse is the GET /readyz body.
type readyzResponse struct {
	Status string `json:"status"`
	// FleetWorkers is the live fleet width (coordinator role only).
	FleetWorkers *int `json:"fleet_workers,omitempty"`
}

// handleReadyz reports routability: 503 before the worker pool is up,
// while draining, and — in coordinator role — while no fleet worker is
// live to execute on. Load balancers poll this; /healthz stays 200
// through all of it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var fleet *int
	if s.cfg.Cluster != nil {
		n := s.cfg.Cluster.WorkersLive()
		fleet = &n
	}
	if !s.manager.Ready() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{Status: "unready", FleetWorkers: fleet})
		return
	}
	writeJSON(w, http.StatusOK, readyzResponse{Status: "ready", FleetWorkers: fleet})
}
