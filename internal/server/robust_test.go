package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hcapp/internal/experiment"
	"hcapp/internal/telemetry"
)

// TestJobTimeoutFailsJob: a wall-clock JobTimeout must cancel a
// long-running simulation, fail the job with a timeout error, and count
// it under hcapp_jobs_failed_total{reason="timeout"}.
func TestJobTimeoutFailsJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s, ts := testServer(t, Config{Workers: 1, JobTimeout: 25 * time.Millisecond})

	// 60 ms of simulated time takes far longer than 25 ms of wall clock.
	st, resp := postJob(t, ts, JobRequest{Combo: "Low-Low", DurMS: 60})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	final := waitForJob(t, ts, st.ID)
	if final.State != StateFailed {
		t.Fatalf("job state = %q, want failed", final.State)
	}
	if !strings.Contains(final.Error, "timeout after 25ms") {
		t.Fatalf("error = %q, want timeout message", final.Error)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	samples, err := telemetry.ParseText(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := telemetry.GatherMap(samples)
	if got := m["hcapp_jobs_failed_total{reason=timeout}"]; got != 1 {
		t.Fatalf("timeout failures = %g, want 1 (map keys: %v)", got, keysLike(m, "failed"))
	}
	_ = s
}

// TestZeroJobTimeoutDisablesBound: the default (zero) timeout leaves
// long jobs alone.
func TestZeroJobTimeoutDisablesBound(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, ts := testServer(t, Config{Workers: 1})
	st, resp := postJob(t, ts, JobRequest{Combo: "Low-Low", DurMS: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	if final := waitForJob(t, ts, st.ID); final.State != StateDone {
		t.Fatalf("job state = %q (%s), want done", final.State, final.Error)
	}
}

// TestPanicContainedAndClassified: a panicking simulation must fail its
// own job (not the worker goroutine), carry the panic message, and be
// classified under reason "panic".
func TestPanicContainedAndClassified(t *testing.T) {
	s := New(Config{Workers: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	mgr := s.Manager()

	// A nil evaluator panics inside the simulate frame; the recover must
	// convert it into a job error instead of unwinding the worker.
	var ev *experiment.Evaluator
	_, err := mgr.simulate(context.Background(), ev, experiment.RunSpec{}, "test-job", nil)
	if err == nil {
		t.Fatal("panicking simulation returned nil error")
	}
	if !errors.As(err, new(panicError)) {
		t.Fatalf("err %T not a panicError: %v", err, err)
	}
	if !strings.Contains(err.Error(), "panic:") {
		t.Fatalf("panic error lost its message: %q", err)
	}

	reason, out := mgr.failureReason(err)
	if reason != "panic" || out != err {
		t.Fatalf("classified (%q, %v), want (panic, original error)", reason, out)
	}
}

func TestFailureReasonClassification(t *testing.T) {
	s := New(Config{Workers: 1, JobTimeout: time.Second})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	mgr := s.Manager()

	if reason, err := mgr.failureReason(context.DeadlineExceeded); reason != "timeout" {
		t.Fatalf("deadline classified %q", reason)
	} else if !strings.Contains(err.Error(), "timeout after 1s") {
		t.Fatalf("timeout error = %q", err)
	}
	if reason, _ := mgr.failureReason(panicError{val: "boom"}); reason != "panic" {
		t.Fatalf("panic classified %q", reason)
	}
	if reason, _ := mgr.failureReason(errors.New("bad spec")); reason != "error" {
		t.Fatalf("plain error classified %q", reason)
	}
}

// TestShutdownUnderLoad is the drain-timeout satellite: several queued
// jobs, a generous budget — Shutdown must refuse new work, finish every
// accepted job, and return nil.
func TestShutdownUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var ids []string
	for i := 0; i < 5; i++ {
		st, resp := postJob(t, ts, JobRequest{Combo: "Low-Low", DurMS: 0.3, Seed: seedOf(int64(i + 1))})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d: %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	// A drained server sheds new work with a Retry-After pointing at the
	// replacement process, not the refill interval.
	if _, resp := postJob(t, ts, JobRequest{Combo: "Low-Low", DurMS: 0.3}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %d, want 503", resp.StatusCode)
	} else if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Fatalf("post-drain 503 Retry-After = %q, want \"5\"", ra)
	}
	for _, id := range ids {
		j, ok := s.Manager().Get(id)
		if !ok {
			t.Fatalf("job %s lost during drain", id)
		}
		if st := j.Status(); st.State != StateDone {
			t.Fatalf("job %s drained into %q (%s)", id, st.State, st.Error)
		}
	}
}

// TestShutdownBudgetExpires: a budget too small for the in-flight work
// must surface as a deadline error rather than hanging; a second call
// with room to drain then succeeds (the job itself is bounded by
// JobTimeout, so the worker comes back).
func TestShutdownBudgetExpires(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := New(Config{Workers: 1, JobTimeout: 100 * time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	st, resp := postJob(t, ts, JobRequest{Combo: "Low-Low", DurMS: 60})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	// Give the worker a moment to pick the job up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if j, ok := s.Manager().Get(st.ID); ok {
			if j.Status().State != StateQueued {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	tight, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	err := s.Shutdown(tight)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("tight-budget shutdown err = %v, want deadline exceeded", err)
	}

	wide, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(wide); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if j, _ := s.Manager().Get(st.ID); j.Status().State != StateFailed {
		t.Fatalf("timed-out job ended %q", j.Status().State)
	}
}
