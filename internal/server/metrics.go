package server

import (
	"hcapp/internal/buildinfo"
	"hcapp/internal/config"
	"hcapp/internal/energy"
	"hcapp/internal/experiment"
	"hcapp/internal/sched"
	"hcapp/internal/sim"
	"hcapp/internal/telemetry"
)

// metrics bundles every family hcapp-serve exports. The full catalogue,
// with meanings and label schemas, is documented in docs/METRICS.md —
// keep the two in sync.
type metrics struct {
	reg *telemetry.Registry

	jobsSubmitted *telemetry.Counter
	jobsRejected  *telemetry.Counter
	jobsCompleted *telemetry.CounterVec // state
	jobsFailed    *telemetry.CounterVec // reason
	jobsViolated  *telemetry.Counter
	queueDepth    *telemetry.Gauge
	jobsRunning   *telemetry.Gauge
	jobSeconds    *telemetry.Histogram

	simSteps *telemetry.CounterVec // job
	simTime  *telemetry.GaugeVec   // job
	pkgPower *telemetry.GaugeVec   // job
	domPower *telemetry.GaugeVec   // job, domain
	domVolt  *telemetry.GaugeVec   // job, domain
	limit    *telemetry.GaugeVec   // job, limit
	target   *telemetry.GaugeVec   // job

	httpRequests *telemetry.CounterVec // handler

	// stageSeconds is the request-pipeline latency histogram the tracer
	// feeds: every locally finished span observes its duration under its
	// stage name (job, queue-wait, run, item, attempt, engine, batch).
	stageSeconds *telemetry.HistogramVec // stage
	// rt republishes Go runtime health (goroutines, heap, GC) at scrape
	// time.
	rt *telemetry.RuntimeMetrics

	// runner is the experiment scheduler's family set (per-run duration
	// histogram, in-flight and queue-depth gauges), shared by the job
	// workers' runner so /metrics reports suite progress.
	runner *experiment.RunnerMetrics

	// energy rolls per-job ledger summaries into the bounded-cardinality
	// hcapp_energy_joules_total / hcapp_tenant_energy_joules_total
	// counters and the /v1/energy chargeback table.
	energy *energy.Collector
}

func newMetrics() *metrics {
	reg := telemetry.NewRegistry()
	reg.Gauge("hcapp_build_info",
		"Build metadata carried in labels; the value is always 1.",
		"version").With(buildinfo.Version()).Set(1)
	return &metrics{
		reg: reg,
		jobsSubmitted: reg.Counter("hcapp_jobs_submitted_total",
			"Jobs accepted by POST /v1/jobs.").With(),
		jobsRejected: reg.Counter("hcapp_jobs_rejected_total",
			"Job submissions rejected (invalid request or full queue).").With(),
		jobsCompleted: reg.Counter("hcapp_jobs_completed_total",
			"Jobs finished, by terminal state.", "state"),
		jobsFailed: reg.Counter("hcapp_jobs_failed_total",
			"Failed jobs, by failure reason (error, timeout, panic).", "reason"),
		jobsViolated: reg.Counter("hcapp_jobs_violated_total",
			"Finished jobs whose run exceeded its power limit.").With(),
		// queueDepth is not touched on the submit/dequeue paths —
		// Server.handleMetrics derives it from the live channel length
		// at scrape time, so the exported value is exact at every
		// scrape instead of drifting between racy update points.
		queueDepth: reg.Gauge("hcapp_jobs_queue_depth",
			"Jobs waiting for a worker.").With(),
		jobsRunning: reg.Gauge("hcapp_jobs_running",
			"Jobs currently simulating.").With(),
		jobSeconds: reg.Histogram("hcapp_job_duration_seconds",
			"Wall-clock job duration.", telemetry.ExpBuckets(0.01, 2, 12)).With(),
		simSteps: reg.Counter("hcapp_sim_steps_total",
			"Engine steps executed (rate() gives steps/sec).", "job"),
		simTime: reg.Gauge("hcapp_sim_time_seconds",
			"Simulated time reached by the job.", "job"),
		pkgPower: reg.Gauge("hcapp_package_power_watts",
			"Live total package power.", "job"),
		domPower: reg.Gauge("hcapp_domain_power_watts",
			"Live per-chiplet (voltage domain) power.", "job", "domain"),
		domVolt: reg.Gauge("hcapp_domain_voltage_volts",
			"Live per-domain output voltage (controller state).", "job", "domain"),
		limit: reg.Gauge("hcapp_power_limit_watts",
			"The job's power limit.", "job", "limit"),
		target: reg.Gauge("hcapp_power_target_watts",
			"The global controller's power target (PSPEC).", "job"),
		httpRequests: reg.Counter("hcapp_http_requests_total",
			"API requests served.", "handler"),
		stageSeconds: reg.Histogram("hcapp_stage_duration_seconds",
			"Wall-clock duration of each request-pipeline stage (job, queue-wait, run, item, attempt, engine, batch), fed by the tracer's locally finished spans.",
			telemetry.DefBuckets(), "stage"),
		rt:     telemetry.NewRuntimeMetrics(reg),
		runner: experiment.NewRunnerMetrics(reg),
		energy: energy.NewCollector(reg, energy.CollectorConfig{}),
	}
}

// dropJob deletes every per-job series when the manager evicts a job,
// so the retention cap genuinely bounds /metrics cardinality instead of
// leaking one series set per job over a long serving life. The evicted
// job is terminal, so no observer will resurrect its series.
func (m *metrics) dropJob(jobID string) {
	match := map[string]string{"job": jobID}
	m.simSteps.DeletePartialMatch(match)
	m.simTime.DeletePartialMatch(match)
	m.pkgPower.DeletePartialMatch(match)
	m.domPower.DeletePartialMatch(match)
	m.domVolt.DeletePartialMatch(match)
	m.limit.DeletePartialMatch(match)
	m.target.DeletePartialMatch(match)
}

// metricsFlushEvery is how many engine steps a job observer batches
// before publishing gauges. Scrapes are seconds apart while steps are
// 100 ns of simulated time, so publishing every step would be pure
// overhead; at 64 the telemetry cost vanishes into the step noise while
// /metrics still lags the simulation by under 7 µs of simulated time.
const metricsFlushEvery = 64

// jobObserver implements sched.StepObserver for one running job: it
// feeds the job's live trace buffer every step and publishes telemetry
// gauges every metricsFlushEvery steps through label-cached handles.
type jobObserver struct {
	trace *traceBuffer

	steps    *telemetry.Counter
	simTime  *telemetry.Gauge
	pkgPower *telemetry.Gauge
	// domPower/domVolt are resolved lazily on the first step, in the
	// engine's slot order, from the domain names the engine reports.
	jobID    string
	m        *metrics
	domPower []*telemetry.Gauge
	domVolt  []*telemetry.Gauge

	pending int
}

func (m *metrics) newJobObserver(j *Job, spec jobSpecInfo) *jobObserver {
	o := &jobObserver{
		trace:    j.trace,
		steps:    m.simSteps.With(j.id),
		simTime:  m.simTime.With(j.id),
		pkgPower: m.pkgPower.With(j.id),
		jobID:    j.id,
		m:        m,
	}
	m.limit.With(j.id, spec.limit.Name).Set(spec.limit.Watts)
	if spec.target > 0 {
		m.target.With(j.id).Set(spec.target)
	}
	return o
}

// jobSpecInfo carries the static per-job values published once.
type jobSpecInfo struct {
	limit  config.PowerLimit
	target float64
}

func (o *jobObserver) ObserveStep(now sim.Time, total float64, domains []sched.DomainSample) {
	o.trace.observe(now, total)
	if o.domPower == nil {
		for _, d := range domains {
			o.domPower = append(o.domPower, o.m.domPower.With(o.jobID, d.Domain))
			o.domVolt = append(o.domVolt, o.m.domVolt.With(o.jobID, d.Domain))
		}
	}
	o.pending++
	if o.pending < metricsFlushEvery {
		return
	}
	o.steps.Add(float64(o.pending))
	o.pending = 0
	o.simTime.Set(sim.Seconds(now))
	o.pkgPower.Set(total)
	for i := range domains {
		o.domPower[i].Set(domains[i].Power)
		o.domVolt[i].Set(domains[i].Voltage)
	}
}

// flush publishes whatever a finished run left un-batched.
func (o *jobObserver) flush() {
	if o.pending > 0 {
		o.steps.Add(float64(o.pending))
		o.pending = 0
	}
	if now, _ := o.trace.Progress(); now > 0 {
		o.simTime.Set(sim.Seconds(now))
	}
}
