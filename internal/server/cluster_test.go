package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hcapp/internal/cluster"
	"hcapp/internal/experiment"
	"hcapp/internal/telemetry"
	"hcapp/internal/tracing"
)

// logCapture is a concurrency-safe Logf sink (simulations log from
// runner goroutines).
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
}

func (lc *logCapture) joined() string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return strings.Join(lc.lines, "\n")
}

// TestReadyzSplitFromHealthz: /healthz is liveness (200 even while
// draining); /readyz is routability (503 once draining starts).
func TestReadyzSplitFromHealthz(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var rz readyzResponse
	if resp := getJSON(t, ts.URL+"/readyz", &rz); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh /readyz status %d", resp.StatusCode)
	}
	if rz.Status != "ready" || rz.FleetWorkers != nil {
		t.Fatalf("standalone /readyz = %+v", rz)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	if resp := getJSON(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz status %d, want 503", resp.StatusCode)
	}
	var h healthzResponse
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining /healthz status %d, want 200 (liveness)", resp.StatusCode)
	}
	if h.Status != "draining" {
		t.Fatalf("draining /healthz status field %q", h.Status)
	}
}

// TestPanicLogsStack: the panic containment in simulate must log the
// stack once, tagged with the job id, in addition to classifying the
// failure.
func TestPanicLogsStack(t *testing.T) {
	var lc logCapture
	s := New(Config{Workers: 1, Logf: lc.logf})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	var ev *experiment.Evaluator // nil evaluator panics inside the task
	_, err := s.Manager().simulate(context.Background(), ev, experiment.RunSpec{}, "job-under-test", nil)
	if err == nil {
		t.Fatal("panicking simulation returned nil error")
	}
	log := lc.joined()
	if !strings.Contains(log, "job-under-test") {
		t.Fatalf("panic log does not name the job:\n%s", log)
	}
	if !strings.Contains(log, "goroutine") {
		t.Fatalf("panic log carries no stack trace:\n%s", log)
	}
}

// startFleetWorker boots a cluster worker with a real listener and
// registers it against the coordinator URL.
func startFleetWorker(t *testing.T, coordURL, id string) {
	t.Helper()
	ts := httptest.NewUnstartedServer(nil)
	t.Cleanup(ts.Close)
	w := cluster.NewWorker(cluster.WorkerConfig{
		ID:            id,
		Coordinator:   coordURL,
		AdvertiseAddr: "http://" + ts.Listener.Addr().String(),
		Workers:       2,
		Logf:          t.Logf,
		// Production workers always carry a tracer; without one the
		// worker ships no engine spans and fleet traces lose a level.
		Tracer: tracing.New(tracing.Config{}),
	})
	ts.Config.Handler = w.Handler()
	ts.Start()
	if err := w.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinatorRole is the serve-side fleet acceptance test: a
// coordinator-role server is unready until a worker registers, then
// delegates jobs to the fleet, serves a repeat of the same job from the
// fleet cache, rejects an over-limit tenant with 429, and exposes the
// cluster metric families on /metrics.
func TestCoordinatorRole(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations over a local fleet")
	}
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		TenantRate:  0.001, // effectively no refill within the test
		TenantBurst: 2,
		Logf:        t.Logf,
	})
	_, ts := testServer(t, Config{Workers: 2, Cluster: coord})

	// Unready while the fleet is empty.
	var rz readyzResponse
	if resp := getJSON(t, ts.URL+"/readyz", &rz); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("workerless coordinator /readyz status %d, want 503", resp.StatusCode)
	}
	if rz.FleetWorkers == nil || *rz.FleetWorkers != 0 {
		t.Fatalf("workerless /readyz = %+v", rz)
	}

	startFleetWorker(t, ts.URL, "w-1")
	if resp := getJSON(t, ts.URL+"/readyz", &rz); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz status %d after worker registration", resp.StatusCode)
	}

	// A delegated job must return exactly what a standalone server
	// produces for the same request.
	req := JobRequest{Combo: "Mid-Mid", Scheme: "hcapp", Limit: "package-pin", DurMS: 0.5, Seed: seedOf(42), Tenant: "acme"}
	st, resp := postJob(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	fleet := waitForJob(t, ts, st.ID)
	if fleet.State != StateDone {
		t.Fatalf("delegated job failed: %q", fleet.Error)
	}

	_, standaloneTS := testServer(t, Config{Workers: 2})
	st2, _ := postJob(t, standaloneTS, req)
	local := waitForJob(t, standaloneTS, st2.ID)
	if local.State != StateDone {
		t.Fatalf("standalone job failed: %q", local.Error)
	}
	if !reflect.DeepEqual(*fleet.Result, *local.Result) {
		t.Fatalf("fleet result diverged from standalone:\n fleet: %+v\n local: %+v",
			*fleet.Result, *local.Result)
	}

	// Same request again: the fleet cache answers it.
	st3, _ := postJob(t, ts, req)
	if got := waitForJob(t, ts, st3.ID); got.State != StateDone {
		t.Fatalf("repeat job failed: %q", got.Error)
	}

	// Both tokens (burst 2) spent on the two jobs above.
	if _, resp := postJob(t, ts, req); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit tenant got status %d, want 429", resp.StatusCode)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	samples, err := telemetry.ParseText(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := telemetry.GatherMap(samples)
	if got := m["hcapp_cluster_workers_live"]; got != 1 {
		t.Fatalf("hcapp_cluster_workers_live = %g, want 1", got)
	}
	if got := m["hcapp_cluster_cache_hits_total"]; got != 1 {
		t.Fatalf("hcapp_cluster_cache_hits_total = %g, want 1 (repeat job)", got)
	}
	if got := m[`hcapp_tenant_throttled_total{tenant=acme}`]; got != 1 {
		t.Fatalf("hcapp_tenant_throttled_total{tenant=acme} = %g, want 1", got)
	}
}
