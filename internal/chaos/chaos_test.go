package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// stubTransport returns a canned JSON response for every request
// without touching the network.
type stubTransport struct {
	body  string
	calls int
}

func (s *stubTransport) RoundTrip(*http.Request) (*http.Response, error) {
	s.calls++
	return &http.Response{
		StatusCode:    http.StatusOK,
		Body:          io.NopCloser(strings.NewReader(s.body)),
		ContentLength: int64(len(s.body)),
		Header:        make(http.Header),
	}, nil
}

func newTestInjector(seed int64, p Profile) *Injector {
	i := New(seed, p)
	i.sleep = func(context.Context, time.Duration) {}
	return i
}

// schedule classifies the first n request outcomes against one peer:
// "ok", "drop", "blackhole", "partition", "truncate", or "trickle".
func schedule(t *testing.T, i *Injector, n int) []string {
	t.Helper()
	const body = `{"results":[{"error":""}],"cache_hits":0}`
	rt := i.RoundTripper(&stubTransport{body: body})
	out := make([]string, n)
	for k := 0; k < n; k++ {
		req, err := http.NewRequest(http.MethodPost, "http://peer-a:1/v1/worker/run", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := rt.RoundTrip(req)
		if err != nil {
			var de *DroppedError
			if !errors.As(err, &de) {
				t.Fatalf("request %d: unexpected non-chaos error %v", k, err)
			}
			out[k] = de.Kind
			continue
		}
		got, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case rerr != nil:
			out[k] = KindTruncate
			if len(got) >= len(body) {
				t.Fatalf("request %d: truncated body not shorter (%d vs %d bytes)", k, len(got), len(body))
			}
		case string(got) != body:
			t.Fatalf("request %d: body corrupted: %q", k, got)
		default:
			out[k] = "ok"
		}
	}
	return out
}

var aggressive = Profile{
	Name:        "test",
	LatencyProb: 0.3, LatencyMin: time.Millisecond, LatencyMax: 2 * time.Millisecond,
	DropProb:     0.2,
	TruncateProb: 0.2,
	TrickleProb:  0.1, TrickleDelay: time.Millisecond,
	PartitionEvery: 16, PartitionLen: 3,
}

// TestScheduleDeterministic: the same seed yields the same fault
// schedule, request for request; a different seed yields a different
// one; and a different node identity derives a different one too.
func TestScheduleDeterministic(t *testing.T) {
	const n = 256
	a := schedule(t, newTestInjector(1337, aggressive), n)
	b := schedule(t, newTestInjector(1337, aggressive), n)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := schedule(t, newTestInjector(7, aggressive), n)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	d := schedule(t, newTestInjector(1337, aggressive).ForNode("w2"), n)
	if reflect.DeepEqual(a, d) {
		t.Fatal("ForNode did not derive a distinct schedule")
	}
	faults := 0
	for _, kind := range a {
		if kind != "ok" {
			faults++
		}
	}
	if faults == 0 || faults == n {
		t.Fatalf("degenerate schedule: %d/%d faulted", faults, n)
	}
}

// TestPartitionWindows: with PartitionEvery 16 / PartitionLen 3, the
// last 3 requests of every 16-request period are dropped as partitions,
// exactly and only those.
func TestPartitionWindows(t *testing.T) {
	p := Profile{PartitionEvery: 16, PartitionLen: 3}
	got := schedule(t, newTestInjector(1, p), 64)
	for k, kind := range got {
		want := "ok"
		if k%16 >= 13 {
			want = KindPartition
		}
		if kind != want {
			t.Fatalf("request %d: got %q, want %q", k, kind, want)
		}
	}
}

// TestMiddlewareBurstsAndRestarts: the server-side schedule answers the
// window requests with 500s (bursts) and 503+Retry-After (restarts)
// without invoking the handler, and passes everything else through.
func TestMiddlewareBurstsAndRestarts(t *testing.T) {
	p := Profile{ErrorBurstEvery: 10, ErrorBurstLen: 2, RestartEvery: 40, RestartLen: 4}
	i := newTestInjector(1, p)
	served := 0
	h := i.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.WriteHeader(http.StatusOK)
	}))
	for k := 0; k < 80; k++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/worker/run", nil))
		want := http.StatusOK
		switch {
		case k%40 >= 36:
			want = http.StatusServiceUnavailable
		case k%10 >= 8:
			want = http.StatusInternalServerError
		}
		if rec.Code != want {
			t.Fatalf("request %d: status %d, want %d", k, rec.Code, want)
		}
		if want == http.StatusServiceUnavailable && rec.Header().Get("Retry-After") == "" {
			t.Fatalf("request %d: restart-window 503 lacks Retry-After", k)
		}
	}
	expect := 0
	for k := 0; k < 80; k++ {
		if k%40 < 36 && k%10 < 8 {
			expect++
		}
	}
	if served != expect {
		t.Fatalf("handler served %d requests, want %d", served, expect)
	}
}

// TestMiddlewareExemptsProbes: /healthz, /readyz and /metrics bypass
// the schedule entirely — even inside a restart window — and do not
// advance the inbound sequence counter.
func TestMiddlewareExemptsProbes(t *testing.T) {
	p := Profile{RestartEvery: 1, RestartLen: 1} // every data request 503s
	i := newTestInjector(1, p)
	h := i.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s faulted with %d; probes must be exempt", path, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/cluster/run", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("data-plane request got %d, want 503 under restart-everything profile", rec.Code)
	}
}

// TestTruncateBreaksDecode: a truncated response must fail JSON
// decoding — the client sees an unexpected EOF, never a silently
// shorter but valid document.
func TestTruncateBreaksDecode(t *testing.T) {
	const body = `{"results":[{"error":"x"},{"error":"y"}],"cache_hits":3}`
	resp := &http.Response{
		StatusCode:    http.StatusOK,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
	}
	truncateBody(resp)
	var v map[string]any
	err := json.NewDecoder(resp.Body).Decode(&v)
	if err == nil {
		t.Fatal("decode of truncated body succeeded")
	}
}

// TestTrickleDeliversWholeBody: trickling slows delivery but the full
// body arrives intact.
func TestTrickleDeliversWholeBody(t *testing.T) {
	const body = `{"results":[],"cache_hits":0}`
	i := newTestInjector(1, Profile{TrickleDelay: 0})
	resp := &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader(body)),
	}
	req, _ := http.NewRequest(http.MethodGet, "http://p:1/", nil)
	trickleBody(resp, i, req)
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != body {
		t.Fatalf("trickled body = %q, want %q", got, body)
	}
}

// TestProfileByName: every catalogued profile resolves; unknown names
// error with the valid list.
func TestProfileByName(t *testing.T) {
	for _, name := range []string{"light", "soak", "heavy"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Fatalf("ProfileByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := ProfileByName("nope"); err == nil || !strings.Contains(err.Error(), "soak") {
		t.Fatalf("unknown profile error %v does not list valid names", err)
	}
}

// TestCountsTally: injections are tallied by kind.
func TestCountsTally(t *testing.T) {
	p := Profile{ErrorBurstEvery: 2, ErrorBurstLen: 1}
	i := newTestInjector(1, p)
	h := i.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	for k := 0; k < 10; k++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/x", nil))
	}
	if got := i.Counts()[KindError]; got != 5 {
		t.Fatalf("Counts()[%s] = %d, want 5", KindError, got)
	}
}
