package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Fault kinds, as counted by Counts() and the
// hcapp_chaos_faults_injected_total{kind} metric.
const (
	KindLatency   = "latency"
	KindDrop      = "drop"
	KindBlackhole = "blackhole"
	KindTruncate  = "truncate"
	KindTrickle   = "trickle"
	KindPartition = "partition"
	KindError     = "5xx"
	KindRestart   = "restart"
)

// DroppedError is the error a dropped or partitioned request fails
// with; it unwraps from the *url.Error the http.Client returns, so
// tests can tell injected faults from real ones.
type DroppedError struct {
	Peer string
	Kind string // KindDrop, KindBlackhole or KindPartition
}

func (e *DroppedError) Error() string {
	return fmt.Sprintf("chaos: %s request to %s", e.Kind, e.Peer)
}

// roundTripper applies client-side faults around an inner transport.
type roundTripper struct {
	inj  *Injector
	next http.RoundTripper
}

// RoundTripper wraps a transport with the injector's client-side
// schedule: per-peer partitions, drops/blackholes, added latency, and
// truncated or trickled response bodies. nil next means
// http.DefaultTransport. The peer identity is the request's host, so
// one wrapped client talking to three workers runs three independent
// schedules.
func (i *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &roundTripper{inj: i, next: next}
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	i := rt.inj
	p := i.profile
	peer := req.URL.Host
	seq := i.next(peer)
	d := i.drawFor(peer, seq)

	// Decision order is fixed: partition, drop, latency, then (after the
	// response arrives) truncate or trickle. Every branch consumes its
	// draws even when the fault is disabled, so schedules are stable
	// across profiles that differ only in one probability.
	if inWindow(seq, p.PartitionEvery, p.PartitionLen) {
		i.note(KindPartition)
		return nil, &DroppedError{Peer: peer, Kind: KindPartition}
	}
	if dropRoll := d.f64(); dropRoll < p.DropProb {
		if d.coin() {
			// Blackhole: the request "hangs" for the full latency budget
			// before failing, like a peer that died holding the socket.
			i.note(KindBlackhole)
			i.sleep(req.Context(), p.LatencyMax)
			return nil, &DroppedError{Peer: peer, Kind: KindBlackhole}
		}
		i.note(KindDrop)
		return nil, &DroppedError{Peer: peer, Kind: KindDrop}
	} else {
		d.coin() // keep the draw stream aligned with the drop branch
	}
	if lat := d.f64(); lat < p.LatencyProb {
		dur := d.between(p.LatencyMin, p.LatencyMax)
		i.note(KindLatency)
		i.sleep(req.Context(), dur)
		if err := req.Context().Err(); err != nil {
			return nil, err
		}
	} else {
		d.between(p.LatencyMin, p.LatencyMax)
	}

	resp, err := rt.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}

	switch {
	case d.f64() < p.TruncateProb:
		i.note(KindTruncate)
		truncateBody(resp)
	case d.f64() < p.TrickleProb:
		i.note(KindTrickle)
		trickleBody(resp, rt.inj, req)
	}
	return resp, nil
}

// truncateBody swallows the tail of the response: the reader yields
// roughly the first half of the body and then an unexpected EOF, so
// JSON decoders fail mid-object instead of seeing a short-but-valid
// document.
func truncateBody(resp *http.Response) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		// The real body already failed; nothing left to cut.
		resp.Body = io.NopCloser(bytes.NewReader(nil))
		return
	}
	cut := len(body) / 2
	resp.ContentLength = -1
	resp.Body = io.NopCloser(&truncatedReader{data: body[:cut]})
}

// truncatedReader serves its prefix then fails with ErrUnexpectedEOF —
// the signature of a connection cut mid-transfer.
type truncatedReader struct {
	data []byte
	off  int
}

func (r *truncatedReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// trickleBody delivers the body in four chunks with injector pauses
// between them — slow enough to exercise read paths, bounded enough
// not to stall CI.
func trickleBody(resp *http.Response, i *Injector, req *http.Request) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		resp.Body = io.NopCloser(bytes.NewReader(nil))
		return
	}
	resp.Body = io.NopCloser(&trickleReader{
		data:  body,
		chunk: len(body)/4 + 1,
		pause: func() { i.sleep(req.Context(), i.profile.TrickleDelay) },
	})
}

type trickleReader struct {
	data  []byte
	off   int
	chunk int
	pause func()
}

func (r *trickleReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	if r.off > 0 {
		r.pause()
	}
	n := r.chunk
	if n > len(p) {
		n = len(p)
	}
	if rest := len(r.data) - r.off; n > rest {
		n = rest
	}
	copy(p, r.data[r.off:r.off+n])
	r.off += n
	return n, nil
}

// exemptPaths are never faulted by the middleware: probes and scrapes
// stay observable so orchestration (and the CI harness) can watch the
// chaos instead of being blinded by it. The data plane — jobs, cluster
// control plane, worker slices — takes the full schedule.
var exemptPaths = []string{"/healthz", "/readyz", "/metrics"}

// Middleware wraps a handler with the injector's server-side schedule:
// recurring restart windows (everything answers 503 + Retry-After, as
// a restarting process would) and 5xx error bursts (consecutive 500s,
// the canonical circuit-breaker trigger). Inbound requests share one
// sequence counter per node — a restart window takes out the whole
// node, not one caller.
func (i *Injector) Middleware(next http.Handler) http.Handler {
	const inboundPeer = "inbound"
	p := i.profile
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, path := range exemptPaths {
			if strings.HasPrefix(r.URL.Path, path) {
				next.ServeHTTP(w, r)
				return
			}
		}
		seq := i.next(inboundPeer)
		if inWindow(seq, p.RestartEvery, p.RestartLen) {
			i.note(KindRestart)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "chaos: node restarting", http.StatusServiceUnavailable)
			return
		}
		if inWindow(seq, p.ErrorBurstEvery, p.ErrorBurstLen) {
			i.note(KindError)
			http.Error(w, "chaos: injected server error", http.StatusInternalServerError)
			return
		}
		next.ServeHTTP(w, r)
	})
}
