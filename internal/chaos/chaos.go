// Package chaos is a seed-driven, deterministic fault injector for the
// cluster transport. From a single seed it derives a reproducible
// schedule of transport faults — request latency, dropped and
// blackholed requests, truncated and slow-trickle response bodies, 5xx
// bursts, per-peer partitions, and node restart windows — and applies
// them through two wrappers:
//
//   - Injector.RoundTripper wraps an http.RoundTripper (client side:
//     the coordinator dialing workers, a worker dialing its
//     coordinator), perturbing outbound requests and inbound response
//     bodies.
//   - Injector.Middleware wraps an http.Handler (server side: the
//     coordinator's and workers' listeners), injecting 5xx bursts and
//     restart windows before the real handler runs.
//
// Determinism: every decision is a pure function of (seed, node id,
// peer, per-peer request sequence number). Two runs with the same seed,
// the same node ids, and the same request interleaving see the same
// fault schedule; the schedule never depends on wall-clock time, so a
// fast machine and a slow machine inject the same faults at the same
// request indices. The point is the acceptance bar in scripts/ci.sh:
// under an aggressive seeded schedule, fleet output must stay
// byte-identical to a standalone run — chaos may slow the fleet down,
// never change what it computes.
//
// The injector is off unless constructed; hcapp-serve enables it with
// -chaos-seed (see docs/CLUSTER.md).
package chaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// Profile parameterizes one fault mix. Probabilities are per request in
// [0,1]; windowed faults (partitions, bursts, restarts) are counted in
// requests, not time, so the schedule is reproducible under any timing.
type Profile struct {
	Name string

	// Client-side faults (RoundTripper).

	// LatencyProb delays a request by a uniform duration in
	// [LatencyMin, LatencyMax] before it is sent.
	LatencyProb float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration
	// DropProb fails a request without sending it. Half of the drops
	// (by a deterministic coin) are blackholes: the caller waits
	// LatencyMax first, modelling a request that vanished into a dead
	// peer instead of a fast connection refusal.
	DropProb float64
	// TruncateProb cuts the response body mid-stream: the caller sees a
	// prefix followed by an unexpected EOF, never a parseable whole.
	TruncateProb float64
	// TrickleProb delivers the response body in small chunks with
	// TrickleDelay pauses between them (slow-loris on the read side).
	TrickleProb  float64
	TrickleDelay time.Duration
	// Partitions: every PartitionEvery requests to one peer, the next
	// PartitionLen requests to that peer are dropped — a bidirectional
	// link cut lasts as long as both ends' windows overlap.
	PartitionEvery int
	PartitionLen   int

	// Server-side faults (Middleware).

	// ErrorBursts: every ErrorBurstEvery inbound requests, the next
	// ErrorBurstLen requests are answered 500 without reaching the
	// handler — consecutive failures, the circuit-breaker trigger.
	ErrorBurstEvery int
	ErrorBurstLen   int
	// Restarts: every RestartEvery inbound requests, the node "goes
	// down" for RestartLen requests, answering 503 + Retry-After to
	// everything — register, heartbeat, and run alike.
	RestartEvery int
	RestartLen   int
}

// profiles is the named catalogue, mildest first. CI's soak stage uses
// "soak"; "heavy" exists for manual torture runs.
var profiles = []Profile{
	{
		Name:        "light",
		LatencyProb: 0.05, LatencyMin: time.Millisecond, LatencyMax: 20 * time.Millisecond,
		DropProb:        0.01,
		TruncateProb:    0.005,
		ErrorBurstEvery: 200, ErrorBurstLen: 2,
	},
	{
		Name:        "soak",
		LatencyProb: 0.10, LatencyMin: 2 * time.Millisecond, LatencyMax: 60 * time.Millisecond,
		DropProb:     0.03,
		TruncateProb: 0.02,
		TrickleProb:  0.02, TrickleDelay: 3 * time.Millisecond,
		PartitionEvery: 90, PartitionLen: 5,
		ErrorBurstEvery: 15, ErrorBurstLen: 4,
		RestartEvery: 150, RestartLen: 6,
	},
	{
		Name:        "heavy",
		LatencyProb: 0.20, LatencyMin: 5 * time.Millisecond, LatencyMax: 250 * time.Millisecond,
		DropProb:     0.08,
		TruncateProb: 0.05,
		TrickleProb:  0.05, TrickleDelay: 5 * time.Millisecond,
		PartitionEvery: 50, PartitionLen: 10,
		ErrorBurstEvery: 25, ErrorBurstLen: 6,
		RestartEvery: 100, RestartLen: 12,
	},
}

// ProfileByName resolves a named profile; the error lists the valid
// names (CLI flag validation).
func ProfileByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("chaos: unknown profile %q (valid: %s)", name, profileNames())
}

func profileNames() string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// Injector derives the fault schedule and applies it. Build one per
// node with New(...).ForNode(id) so distinct nodes run distinct (but
// individually reproducible) schedules from the shared seed — otherwise
// every worker would restart in lockstep and a three-node fleet would
// behave like one.
type Injector struct {
	seed    uint64
	profile Profile
	metrics *Metrics
	// sleep is injectable so tests assert delays without serving them.
	sleep func(ctx context.Context, d time.Duration)

	mu     sync.Mutex
	seq    map[string]uint64 // per-peer request counters
	counts map[string]uint64 // per-kind injection tally
}

// New builds an injector for the given seed and profile.
func New(seed int64, profile Profile) *Injector {
	return &Injector{
		seed:    uint64(seed),
		profile: profile,
		sleep:   sleepCtx,
		seq:     make(map[string]uint64),
		counts:  make(map[string]uint64),
	}
}

// ForNode folds a node identity into the seed, deriving an independent
// schedule for this node. The profile and metrics hook carry over.
func (i *Injector) ForNode(id string) *Injector {
	n := New(int64(i.seed^hash64(id)), i.profile)
	n.metrics = i.metrics
	n.sleep = i.sleep
	return n
}

// WithMetrics publishes per-kind injection counters
// (hcapp_chaos_faults_injected_total) alongside the internal tally.
func (i *Injector) WithMetrics(m *Metrics) *Injector {
	i.metrics = m
	return i
}

// Profile reports the active profile (logging, flag echo).
func (i *Injector) Profile() Profile { return i.profile }

// Counts snapshots how many faults of each kind have been injected.
func (i *Injector) Counts() map[string]uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[string]uint64, len(i.counts))
	for k, v := range i.counts {
		out[k] = v
	}
	return out
}

func (i *Injector) note(kind string) {
	i.mu.Lock()
	i.counts[kind]++
	i.mu.Unlock()
	i.metrics.inject(kind)
}

// next claims the peer's next sequence number.
func (i *Injector) next(peer string) uint64 {
	i.mu.Lock()
	s := i.seq[peer]
	i.seq[peer] = s + 1
	i.mu.Unlock()
	return s
}

// draw is a deterministic stream of uniform variates for one (peer,
// seq) decision point: each fault type consumes draws in a fixed order,
// so adding a fault type never reshuffles the others' schedule.
type draw struct{ x uint64 }

func (i *Injector) drawFor(peer string, seq uint64) *draw {
	return &draw{x: splitmix64(i.seed ^ hash64(peer) ^ (seq+1)*0x9e3779b97f4a7c15)}
}

// f64 returns the next uniform variate in [0, 1).
func (d *draw) f64() float64 {
	d.x = splitmix64(d.x)
	return float64(d.x>>11) / float64(1<<53)
}

// coin returns the next uniform bit.
func (d *draw) coin() bool {
	d.x = splitmix64(d.x)
	return d.x&1 == 1
}

// between scales a variate into [lo, hi].
func (d *draw) between(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(d.f64()*float64(hi-lo))
}

// inWindow reports whether seq falls in a recurring closed window of
// length keep out of every period requests (the last keep of each
// period, so a fresh peer gets a clean warm-up run first).
func inWindow(seq uint64, period, keep int) bool {
	if period <= 0 || keep <= 0 {
		return false
	}
	return seq%uint64(period) >= uint64(period-keep)
}

// splitmix64 is the SplitMix64 mixer — tiny, stdlib-free, and plenty
// for schedule derivation (not cryptography).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
