package chaos

import "hcapp/internal/telemetry"

// Metrics publishes the injector's per-kind fault tally; docs/METRICS.md
// catalogues the family.
type Metrics struct {
	injected *telemetry.CounterVec // kind
}

// NewMetrics registers the chaos family on a registry.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		injected: reg.Counter("hcapp_chaos_faults_injected_total",
			"Transport faults injected by the chaos schedule, by kind.", "kind"),
	}
}

func (m *Metrics) inject(kind string) {
	if m != nil {
		m.injected.With(kind).Inc()
	}
}
