package chiplet

import (
	"testing"

	"hcapp/internal/sim"
	"hcapp/internal/thermal"
)

// hotModel returns a power model hot enough to trip the default thermal
// node at full tilt.
func hotTestChiplet(t *testing.T, th *thermal.Config, margin float64) *Chiplet {
	t.Helper()
	m := testModel()
	m.CEff *= 6 // crank per-unit power well past the thermal envelope
	specs := make([]UnitSpec, 8)
	for i := range specs {
		specs[i] = UnitSpec{Trace: steadyTrace(0.95)}
	}
	c, err := New(Config{
		Name: "hot", Units: specs, Model: m,
		LocalEpoch:    5 * sim.Microsecond,
		Thermal:       th,
		VoltageMargin: margin,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNoThermalNodeByDefault(t *testing.T) {
	c := testChiplet(t, 2, 0, false)
	if c.Temp() != 0 || c.PeakTemp() != 0 || c.ThermalTripped() {
		t.Fatal("thermal state without a node")
	}
}

func TestThermalBelowTDPNeverTrips(t *testing.T) {
	// The evaluation-power chiplet with the default node must never trip
	// (the paper's §3.5 assumption).
	th := thermal.DefaultChiplet()
	specs := []UnitSpec{{Trace: steadyTrace(0.8)}, {Trace: steadyTrace(0.8)}}
	c, err := New(Config{
		Name: "cool", Units: specs, Model: testModel(),
		LocalEpoch: 5 * sim.Microsecond, Thermal: &th,
	})
	if err != nil {
		t.Fatal(err)
	}
	for now := sim.Time(100); now <= 20*sim.Millisecond; now += 100 {
		c.Step(now, 100, 1.1)
	}
	if c.ThermalTripped() {
		t.Fatalf("tripped at %g °C under evaluation power", c.Temp())
	}
	if c.Temp() <= thermal.DefaultChiplet().AmbientC {
		t.Fatal("no heating observed")
	}
}

func TestThermalTripThrottles(t *testing.T) {
	th := thermal.DefaultChiplet()
	c := hotTestChiplet(t, &th, 0)
	var now sim.Time
	for !c.ThermalTripped() && now < 50*sim.Millisecond {
		now += 100
		c.Step(now, 100, 1.1)
	}
	if !c.ThermalTripped() {
		t.Fatalf("over-powered chiplet never tripped (%.1f °C)", c.Temp())
	}
	// While tripped, power must drop versus the untripped steady state:
	// the protective ratio caps the local voltage.
	preTrip := hotTestChiplet(t, nil, 0).Step(100, 100, 1.1).Power
	tripped := c.Step(now+100, 100, 1.1).Power
	if tripped >= preTrip {
		t.Fatalf("thermal throttle ineffective: %g vs %g", tripped, preTrip)
	}
	if c.PeakTemp() < th.TripC {
		t.Fatalf("peak %g below trip", c.PeakTemp())
	}
}

func TestThermalBadConfigRejected(t *testing.T) {
	bad := thermal.Config{} // invalid
	specs := []UnitSpec{{Trace: steadyTrace(0.5)}}
	if _, err := New(Config{
		Name: "x", Units: specs, Model: testModel(),
		LocalEpoch: 1000, Thermal: &bad,
	}); err == nil {
		t.Fatal("invalid thermal config accepted")
	}
}

func TestThrottleRatioValidation(t *testing.T) {
	specs := []UnitSpec{{Trace: steadyTrace(0.5)}}
	if _, err := New(Config{
		Name: "x", Units: specs, Model: testModel(),
		LocalEpoch: 1000, ThermalThrottleRatio: -0.5,
	}); err == nil {
		t.Fatal("negative throttle ratio accepted")
	}
	if _, err := New(Config{
		Name: "x", Units: specs, Model: testModel(),
		LocalEpoch: 1000, ThermalThrottleRatio: 1.5,
	}); err == nil {
		t.Fatal("throttle ratio above 1 accepted")
	}
}

func TestVoltageMarginCostsPerformance(t *testing.T) {
	// §3.5: a guardbanded design clocks at V − margin, so it retires
	// less work at the same rail than adaptive clocking.
	adaptive := testChiplet(t, 2, 0, false)
	margin := testChiplet(t, 2, 0, false)
	margin.cfg.VoltageMargin = 0.05

	var wAdaptive, wMargin float64
	for now := sim.Time(100); now <= 100*sim.Microsecond; now += 100 {
		wAdaptive += adaptive.Step(now, 100, 0.95).Work
		wMargin += margin.Step(now, 100, 0.95).Work
	}
	if wMargin >= wAdaptive {
		t.Fatalf("guardband did not cost work: %g vs %g", wMargin, wAdaptive)
	}
}

func TestVoltageMarginValidation(t *testing.T) {
	specs := []UnitSpec{{Trace: steadyTrace(0.5)}}
	if _, err := New(Config{
		Name: "x", Units: specs, Model: testModel(),
		LocalEpoch: 1000, VoltageMargin: -0.1,
	}); err == nil {
		t.Fatal("negative margin accepted")
	}
}

func TestThermalResetCools(t *testing.T) {
	th := thermal.DefaultChiplet()
	c := hotTestChiplet(t, &th, 0)
	for now := sim.Time(100); now <= 20*sim.Millisecond; now += 100 {
		c.Step(now, 100, 1.1)
	}
	hot := c.Temp()
	c.Reset()
	if c.Temp() >= hot || c.ThermalTripped() {
		t.Fatal("reset did not cool the node")
	}
}

func TestUnitActivityMeasured(t *testing.T) {
	c := testChiplet(t, 1, 0, true)
	for now := sim.Time(100); now <= 20*sim.Microsecond; now += 100 {
		c.Step(now, 100, 0.95)
	}
	if got := c.UnitActivity(0); got <= 0 || got > 1 {
		t.Fatalf("unit activity = %g", got)
	}
}
